// Package gridmutex is a Go implementation of the hierarchical composition
// of token-based mutual exclusion algorithms for grid applications
// described in Sopena, Legond-Aubry, Arantes and Sens, "A Composition
// Approach to Mutual Exclusion Algorithms for Grid Applications"
// (ICPP 2007).
//
// A grid is a federation of clusters: links inside a cluster are fast,
// links between clusters are slow and heterogeneous. The composition runs
// one classical mutual exclusion algorithm inside every cluster and a
// second one among per-cluster coordinators, so any two of Martin's ring,
// Naimi-Trehel's tree, Suzuki-Kasami's broadcast, Raymond's tree, a
// centralized server, or the permission-based Lamport and Ricart-Agrawala
// can be combined freely — plus a runtime-adaptive inter algorithm and
// hierarchies deeper than two levels.
//
// The package offers two entry points:
//
//   - New builds a live deployment (goroutines and channels, or UDP
//     sockets) and hands out blocking Lock/Unlock handles — the library a
//     grid application would link against.
//   - ReproduceFigure / ReproduceAll regenerate the paper's evaluation
//     figures on the deterministic discrete-event simulator.
package gridmutex

import (
	"context"
	"fmt"
	"time"

	"gridmutex/internal/algorithms"
	"gridmutex/internal/core"
	"gridmutex/internal/livenet"
	"gridmutex/internal/mutex"
	"gridmutex/internal/topology"
)

// Algorithms lists the algorithms available at either hierarchy level:
// "martin" (ring), "naimi" (tree), "suzuki" (broadcast), "raymond" (static
// tree), "central" (server) and the permission-based "ricart-agrawala".
func Algorithms() []string {
	return algorithms.Names()
}

// Transport selects how a live deployment communicates.
type Transport uint8

const (
	// InProcess runs every node as a goroutine with channel links and
	// modeled latencies — the default.
	InProcess Transport = iota
	// UDP runs every node on its own loopback UDP socket, mirroring the
	// paper's implementation.
	UDP
)

// Config describes a live grid deployment.
type Config struct {
	// Clusters and AppsPerCluster shape the grid; each cluster gets one
	// extra coordinator process. Defaults: 3 clusters of 4.
	Clusters, AppsPerCluster int
	// Intra and Inter name the algorithms of the two levels (defaults:
	// "naimi" and "naimi" — see Algorithms).
	Intra, Inter string
	// LocalRTT and RemoteRTT set link latencies (defaults 0: instant).
	// Grid5000 overrides them with the paper's measured matrix (requires
	// Clusters == 9 or 0).
	LocalRTT, RemoteRTT time.Duration
	Grid5000            bool
	// LatencyScale divides modeled latencies (InProcess transport only),
	// letting examples run the Grid'5000 delays faster than real time.
	LatencyScale int
	// Transport selects the runtime.
	Transport Transport
	// UDPBasePort fixes the UDP port scheme (base+processID); zero binds
	// ephemeral ports.
	UDPBasePort int
}

func (c *Config) fill() error {
	if c.Clusters == 0 {
		c.Clusters = 3
	}
	if c.AppsPerCluster == 0 {
		c.AppsPerCluster = 4
	}
	if c.Intra == "" {
		c.Intra = "naimi"
	}
	if c.Inter == "" {
		c.Inter = "naimi"
	}
	if c.Grid5000 && c.Clusters != 9 {
		return fmt.Errorf("gridmutex: Grid5000 topology has 9 clusters, not %d", c.Clusters)
	}
	if c.Clusters < 1 || c.AppsPerCluster < 1 {
		return fmt.Errorf("gridmutex: need at least 1 cluster and 1 app per cluster")
	}
	return nil
}

// Mutex is the application-facing distributed lock of one process.
type Mutex struct {
	h *livenet.Handle
}

// Lock acquires the grid-wide critical section, blocking until granted or
// ctx is cancelled.
func (m *Mutex) Lock(ctx context.Context) error { return m.h.Lock(ctx) }

// Unlock releases the critical section.
func (m *Mutex) Unlock() { m.h.Unlock() }

// Grid is a running live deployment.
type Grid struct {
	cfg     Config
	topo    *topology.Grid
	handles *livenet.Handles
	apps    []core.App
	closeFn func()
}

// New builds and starts a live deployment.
func New(cfg Config) (*Grid, error) {
	if err := cfg.fill(); err != nil {
		return nil, err
	}
	var topo *topology.Grid
	if cfg.Grid5000 {
		topo = topology.Grid5000(cfg.AppsPerCluster + 1)
	} else {
		local, remote := cfg.LocalRTT, cfg.RemoteRTT
		topo = topology.Uniform(cfg.Clusters, cfg.AppsPerCluster+1, local, remote)
	}

	var fabric mutex.Fabric
	var poster livenet.Poster
	var closeFn func()
	switch cfg.Transport {
	case InProcess:
		n := livenet.New(livenet.Options{
			Latency: func(a, b int) time.Duration { return topo.OneWay(a, b) },
			Scale:   cfg.LatencyScale,
		})
		fabric, poster, closeFn = n, n, n.Close
	case UDP:
		n := livenet.NewUDP("", cfg.UDPBasePort)
		fabric, poster, closeFn = n, n, n.Close
	default:
		return nil, fmt.Errorf("gridmutex: unknown transport %d", cfg.Transport)
	}

	hs := livenet.NewHandles(poster)
	d, err := core.BuildComposed(fabric, topo, core.Spec{Intra: cfg.Intra, Inter: cfg.Inter}, hs.Callbacks)
	if err != nil {
		closeFn()
		return nil, err
	}
	hs.Bind(d.Apps)
	return &Grid{cfg: cfg, topo: topo, handles: hs, apps: d.Apps, closeFn: closeFn}, nil
}

// Apps returns the number of application processes in the grid.
func (g *Grid) Apps() int { return len(g.apps) }

// Mutex returns the distributed lock handle of the i-th application
// process (0 <= i < Apps()).
func (g *Grid) Mutex(i int) *Mutex {
	if i < 0 || i >= len(g.apps) {
		panic(fmt.Sprintf("gridmutex: app index %d out of %d", i, len(g.apps)))
	}
	return &Mutex{h: g.handles.Get(g.apps[i].ID)}
}

// ClusterOf returns the cluster index hosting the i-th application
// process.
func (g *Grid) ClusterOf(i int) int { return g.apps[i].Cluster }

// Close shuts the deployment down. Locks must not be held or requested
// when Close is called.
func (g *Grid) Close() { g.closeFn() }
