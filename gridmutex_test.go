package gridmutex

import (
	"context"
	"strings"
	"sync"
	"testing"
	"time"
)

func TestLiveGridDefaults(t *testing.T) {
	g, err := New(Config{})
	if err != nil {
		t.Fatal(err)
	}
	defer g.Close()
	if g.Apps() != 12 {
		t.Fatalf("Apps = %d, want 12", g.Apps())
	}
	m := g.Mutex(0)
	if err := m.Lock(context.Background()); err != nil {
		t.Fatal(err)
	}
	m.Unlock()
}

func TestLiveGridMutualExclusion(t *testing.T) {
	g, err := New(Config{
		Clusters: 2, AppsPerCluster: 3,
		Intra: "suzuki", Inter: "martin",
		LocalRTT: time.Millisecond, RemoteRTT: 10 * time.Millisecond, LatencyScale: 100,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer g.Close()

	counter := 0
	var wg sync.WaitGroup
	for i := 0; i < g.Apps(); i++ {
		m := g.Mutex(i)
		wg.Add(1)
		go func() {
			defer wg.Done()
			for k := 0; k < 10; k++ {
				if err := m.Lock(context.Background()); err != nil {
					t.Error(err)
					return
				}
				counter++
				m.Unlock()
			}
		}()
	}
	wg.Wait()
	if want := g.Apps() * 10; counter != want {
		t.Fatalf("counter = %d, want %d", counter, want)
	}
}

func TestLiveGridOverUDP(t *testing.T) {
	g, err := New(Config{Clusters: 2, AppsPerCluster: 2, Transport: UDP})
	if err != nil {
		t.Fatal(err)
	}
	defer g.Close()
	var wg sync.WaitGroup
	for i := 0; i < g.Apps(); i++ {
		m := g.Mutex(i)
		wg.Add(1)
		go func() {
			defer wg.Done()
			for k := 0; k < 5; k++ {
				ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
				if err := m.Lock(ctx); err != nil {
					t.Error(err)
					cancel()
					return
				}
				cancel()
				m.Unlock()
			}
		}()
	}
	wg.Wait()
}

func TestGrid5000Topology(t *testing.T) {
	g, err := New(Config{Clusters: 9, AppsPerCluster: 1, Grid5000: true, LatencyScale: 1000})
	if err != nil {
		t.Fatal(err)
	}
	defer g.Close()
	if g.Apps() != 9 {
		t.Fatalf("Apps = %d", g.Apps())
	}
	if g.ClusterOf(0) == g.ClusterOf(1) {
		t.Fatal("apps 0 and 1 should be in different clusters (1 app per cluster)")
	}
	m := g.Mutex(8)
	if err := m.Lock(context.Background()); err != nil {
		t.Fatal(err)
	}
	m.Unlock()
}

func TestConfigValidation(t *testing.T) {
	if _, err := New(Config{Grid5000: true, Clusters: 4, AppsPerCluster: 1}); err == nil {
		t.Error("Grid5000 with 4 clusters accepted")
	}
	if _, err := New(Config{Intra: "bogus", Clusters: 2, AppsPerCluster: 1}); err == nil {
		t.Error("unknown intra accepted")
	}
	if _, err := New(Config{Transport: Transport(9), Clusters: 2, AppsPerCluster: 1}); err == nil {
		t.Error("unknown transport accepted")
	}
}

func TestMutexIndexPanics(t *testing.T) {
	g, err := New(Config{Clusters: 2, AppsPerCluster: 1})
	if err != nil {
		t.Fatal(err)
	}
	defer g.Close()
	defer func() {
		if recover() == nil {
			t.Error("out-of-range Mutex index did not panic")
		}
	}()
	g.Mutex(99)
}

func TestAlgorithmsList(t *testing.T) {
	algs := Algorithms()
	if len(algs) != 7 {
		t.Fatalf("Algorithms = %v", algs)
	}
}

func TestFiguresAndDescriptions(t *testing.T) {
	figs := Figures()
	want := []string{"adaptive", "bias", "fig3", "fig4a", "fig4b", "fig5a", "fig5b", "fig6a", "fig6b", "gridscale", "locality", "partition", "recovery", "scale"}
	if len(figs) != len(want) {
		t.Fatalf("Figures = %v", figs)
	}
	for i := range want {
		if figs[i] != want[i] {
			t.Fatalf("Figures = %v, want %v", figs, want)
		}
	}
	for _, f := range figs {
		d, err := DescribeFigure(f)
		if err != nil || d == "" {
			t.Errorf("DescribeFigure(%s): %q, %v", f, d, err)
		}
	}
	if _, err := DescribeFigure("nope"); err == nil {
		t.Error("unknown figure described")
	}
}

func TestReproduceFigureQuick(t *testing.T) {
	tab, err := ReproduceFigure("fig4a", ScaleQuick, nil)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(tab, "Figure 4(a)") || !strings.Contains(tab, "Naimi-Martin") {
		t.Fatalf("table malformed:\n%s", tab)
	}
	if _, err := ReproduceFigure("nope", ScaleQuick, nil); err == nil {
		t.Fatal("unknown figure reproduced")
	}
}

func TestReproduceAllQuick(t *testing.T) {
	tabs, err := ReproduceAll(ScaleQuick, nil)
	if err != nil {
		t.Fatal(err)
	}
	for _, f := range Figures() {
		if tabs[f] == "" {
			t.Errorf("no table for %s", f)
		}
	}
	if !strings.Contains(tabs["adaptive"], "Naimi-Adaptive") {
		t.Error("adaptive table missing the adaptive system")
	}
	if !strings.Contains(tabs["fig3"], "95.282") {
		t.Error("fig3 table missing latency data")
	}
}
