package gridmutex

import (
	"fmt"
	"sort"
	"time"

	"gridmutex/internal/harness"
)

// ExperimentScale selects the size of a figure regeneration.
type ExperimentScale uint8

const (
	// ScaleQuick runs a 3x4 synthetic grid — seconds, same qualitative
	// shapes.
	ScaleQuick ExperimentScale = iota
	// ScalePaper runs the paper's dimensions: 9 Grid'5000 clusters, 180
	// application processes, 100 CS each, 10 repetitions per point.
	ScalePaper
)

func (s ExperimentScale) scale() harness.Scale {
	if s == ScalePaper {
		return harness.PaperScale()
	}
	return harness.QuickScale()
}

// RunOptions tunes how figure experiments execute without changing what
// they compute.
type RunOptions struct {
	// Workers fans each experiment's repetitions out across this many
	// goroutines (0 or 1 = serial on the calling goroutine, negative =
	// GOMAXPROCS). Results are byte-identical for every setting.
	Workers int
	// LPs, when at least 1, runs eligible simulations on the conservative
	// parallel scheduler — one logical process per cluster, lookahead
	// windows, this many worker goroutines per run. Results are
	// byte-identical for every LPs >= 1 (but differ from LPs = 0, which
	// keeps the classic serial event loop: the LP path shards its random
	// streams per cluster).
	LPs int
}

// RunInfo reports the simulation work behind a regenerated figure, for
// benchmark records.
type RunInfo struct {
	// Cells is the number of (system, parameter) experiment cells.
	Cells int
	// Runs is the number of individual seeded simulations.
	Runs int
	// Events is the total DES events processed across all runs.
	Events int64
	// Memory holds the per-N machine measurements of the gridscale
	// experiment (nil for every other figure). These are deliberately
	// kept out of figure text — figures must reproduce byte for byte on
	// any machine — and surface only in benchmark records.
	Memory []MemSample
}

// MemSample is one grid-scale memory measurement: how much heap one
// simulated process costs at a given N, plus the run's peak footprint
// and throughput. JSON tags match the gridbench/1 record layout.
type MemSample struct {
	// N is the topology node count of the sweep point; Procs the total
	// simulated processes (applications plus all coordinators).
	N     int `json:"n"`
	Procs int `json:"procs"`
	// BytesPerProc is settled live heap added by the build divided by
	// Procs; LiveBytes the absolute settled live heap after the build;
	// PeakBytes the heap space obtained from the OS by the end of the run.
	BytesPerProc float64 `json:"bytes_per_proc"`
	LiveBytes    uint64  `json:"live_bytes"`
	PeakBytes    uint64  `json:"peak_bytes"`
	// WallMS and EventsPerSec time the point's simulation pass alone.
	WallMS       float64 `json:"wall_ms"`
	EventsPerSec float64 `json:"events_per_sec"`
}

func (a RunInfo) add(b RunInfo) RunInfo {
	return RunInfo{Cells: a.Cells + b.Cells, Runs: a.Runs + b.Runs,
		Events: a.Events + b.Events, Memory: append(a.Memory, b.Memory...)}
}

func infoOf(points []harness.Point, reps int) RunInfo {
	info := RunInfo{Cells: len(points), Runs: len(points) * reps}
	for i := range points {
		info.Events += points[i].Events
	}
	return info
}

// figureSpec wires one figure name to the experiment producing it.
type figureSpec struct {
	describe string
	run      func(scale harness.Scale, progress func(string)) (string, RunInfo, error)
}

var figureSpecs = map[string]figureSpec{
	"fig3": {
		describe: "Grid5000 RTT latency matrix (input data, encoded verbatim)",
		run: func(harness.Scale, func(string)) (string, RunInfo, error) {
			return harness.Figure3Table(), RunInfo{}, nil
		},
	},
	"fig4a": {describe: "obtaining time vs rho: original Naimi vs compositions",
		run: compositionFigure(harness.ObtainingMean, "Figure 4(a)")},
	"fig4b": {describe: "inter-cluster messages per CS vs rho",
		run: compositionFigure(harness.InterMsgs, "Figure 4(b)")},
	"fig5a": {describe: "obtaining time standard deviation vs rho",
		run: compositionFigure(harness.ObtainingStd, "Figure 5(a)")},
	"fig5b": {describe: "obtaining time relative deviation vs rho",
		run: compositionFigure(harness.ObtainingRelStd, "Figure 5(b)")},
	"fig6a": {describe: "intra algorithm choice: obtaining time vs rho",
		run: intraFigure(harness.ObtainingMean, "Figure 6(a)")},
	"fig6b": {describe: "intra algorithm choice: standard deviation vs rho",
		run: intraFigure(harness.ObtainingStd, "Figure 6(b)")},
	"scale": {describe: "section 4.7 scalability: messages per CS vs cluster count",
		run: func(scale harness.Scale, progress func(string)) (string, RunInfo, error) {
			clusters := []int{2, 3, 6, 9, 12}
			if scale.CSPerProcess >= 100 { // paper scale: keep runtime sane
				clusters = []int{3, 6, 9, 12, 15}
			}
			res, err := harness.RunScalability(harness.ScalabilitySystems(), scale, clusters, progress)
			if err != nil {
				return "", RunInfo{}, err
			}
			info := RunInfo{Cells: len(res.Points), Runs: len(res.Points) * scale.Repetitions}
			for i := range res.Points {
				info.Events += res.Points[i].Events
			}
			return res.Table("Section 4.7"), info, nil
		}},
	"locality": {describe: "locality analysis: per-cluster obtaining time under a hotspot workload",
		run: func(scale harness.Scale, progress func(string)) (string, RunInfo, error) {
			n := float64(scale.N())
			res, err := harness.RunLocality(harness.LocalitySystems(), scale, 8*n, 0, 8, progress)
			if err != nil {
				return "", RunInfo{}, err
			}
			return res.LocalityTable("Locality under an 8x hot cluster 0", 0),
				infoOf(res.Points, scale.Repetitions), nil
		}},
	"bias": {describe: "related-work extension (Bertier et al.): serve local requests before inter handoffs",
		run: func(scale harness.Scale, progress func(string)) (string, RunInfo, error) {
			// Two rhos spanning saturated and sparse regimes.
			n := float64(scale.N())
			scale.Rhos = []float64{n / 2, 4 * n}
			res, err := harness.Run(harness.BiasSystems(), scale, progress)
			if err != nil {
				return "", RunInfo{}, err
			}
			return res.BiasTable("Local bias ablation"), infoOf(res.Points, scale.Repetitions), nil
		}},
	"recovery": {describe: "robustness extension: token regeneration latency and detector overhead vs heartbeat period",
		run: func(scale harness.Scale, progress func(string)) (string, RunInfo, error) {
			params, scale := recoverySweep(scale)
			res, err := harness.RunRecovery(params, scale, progress)
			if err != nil {
				return "", RunInfo{}, err
			}
			info := RunInfo{
				Cells: len(res.Points),
				Runs:  len(res.Points) * scale.Repetitions,
			}
			return res.Table("Crash recovery"), info, nil
		}},
	"partition": {describe: "robustness extension: graceful minority degradation and rejoin under partition windows",
		run: func(scale harness.Scale, progress func(string)) (string, RunInfo, error) {
			params, scale := harness.PartitionSweep(scale)
			res, err := harness.RunPartition(params, scale, progress)
			if err != nil {
				return "", RunInfo{}, err
			}
			info := RunInfo{
				Cells: len(res.Points),
				Runs:  len(res.Points) * scale.Repetitions,
			}
			return res.Table("Partition tolerance"), info, nil
		}},
	"gridscale": {describe: "grid-scale memory axis: k-level trees, N swept over decades, memory per process recorded",
		run: func(scale harness.Scale, progress func(string)) (string, RunInfo, error) {
			// Paper scale reaches the 10⁵-node acceptance point; quick
			// stays at two decades. One repetition per point: the sweep
			// measures scaling shape and machine footprint, not
			// statistical aggregates.
			ns := harness.GridScaleNs(scale.CSPerProcess >= 100)
			res, err := harness.RunGridScale(ns, 1, scale.Alpha, scale.BaseSeed, progress)
			if err != nil {
				return "", RunInfo{}, err
			}
			info := RunInfo{Cells: len(res.Points), Runs: len(res.Points)}
			for i := range res.Points {
				p := &res.Points[i]
				info.Events += p.Events
				info.Memory = append(info.Memory, MemSample{
					N: p.N, Procs: p.Mem.Procs,
					BytesPerProc: p.Mem.BytesPerProc,
					LiveBytes:    p.Mem.LiveBytes,
					PeakBytes:    p.Mem.PeakBytes,
					WallMS:       p.Mem.WallMS,
					EventsPerSec: p.Mem.EventsPerSec,
				})
			}
			return res.Table("Grid-scale sweep"), info, nil
		}},
	"adaptive": {describe: "section 6 extension: adaptive inter algorithm on a phased workload",
		run: func(scale harness.Scale, progress func(string)) (string, RunInfo, error) {
			scale.Phases = harness.AdaptivePhases(scale)
			res, err := harness.RunPhased(harness.AdaptiveSystems(), scale, progress)
			if err != nil {
				return "", RunInfo{}, err
			}
			return res.PhasedTable("Adaptive composition"), infoOf(res.Points, scale.Repetitions), nil
		}},
}

// recoverySweep derives the crash-recovery sweep from a figure scale: a
// heartbeat-period axis bracketing the critical-section duration and two
// ρ values spanning the saturated and sparse regimes.
func recoverySweep(scale harness.Scale) (harness.RecoveryParams, harness.Scale) {
	n := float64(scale.N())
	scale.Rhos = []float64{n / 2, 4 * n}
	params := harness.RecoveryParams{
		Periods: []time.Duration{
			scale.Alpha / 2,
			2 * scale.Alpha,
			8 * scale.Alpha,
		},
	}
	return params, scale
}

func compositionFigure(m harness.Metric, title string) func(harness.Scale, func(string)) (string, RunInfo, error) {
	return func(scale harness.Scale, progress func(string)) (string, RunInfo, error) {
		res, err := harness.Run(harness.CompositionSystems(), scale, progress)
		if err != nil {
			return "", RunInfo{}, err
		}
		return tableAndChart(res, m, title), infoOf(res.Points, scale.Repetitions), nil
	}
}

func intraFigure(m harness.Metric, title string) func(harness.Scale, func(string)) (string, RunInfo, error) {
	return func(scale harness.Scale, progress func(string)) (string, RunInfo, error) {
		res, err := harness.Run(harness.IntraSystems(), scale, progress)
		if err != nil {
			return "", RunInfo{}, err
		}
		return tableAndChart(res, m, title), infoOf(res.Points, scale.Repetitions), nil
	}
}

// tableAndChart renders the numeric table followed by the ASCII plot the
// paper's figures correspond to.
func tableAndChart(res *harness.Result, m harness.Metric, title string) string {
	return res.Table(m, title) + "\n" + res.Chart(m, title)
}

// Figures lists the regenerable figure names.
func Figures() []string {
	out := make([]string, 0, len(figureSpecs))
	for name := range figureSpecs {
		out = append(out, name)
	}
	sort.Strings(out)
	return out
}

// DescribeFigure returns a one-line description of a figure name.
func DescribeFigure(name string) (string, error) {
	spec, ok := figureSpecs[name]
	if !ok {
		return "", fmt.Errorf("gridmutex: unknown figure %q (have %v)", name, Figures())
	}
	return spec.describe, nil
}

// ReproduceFigure regenerates one of the paper's figures as a text table.
// progress, when non-nil, receives a line per completed experiment cell.
func ReproduceFigure(name string, scale ExperimentScale, progress func(string)) (string, error) {
	out, _, err := ReproduceFigureWith(name, scale, RunOptions{}, progress)
	return out, err
}

// ReproduceFigureWith is ReproduceFigure with execution options, also
// reporting how much simulation work the figure required.
func ReproduceFigureWith(name string, scale ExperimentScale, opt RunOptions, progress func(string)) (string, RunInfo, error) {
	spec, ok := figureSpecs[name]
	if !ok {
		return "", RunInfo{}, fmt.Errorf("gridmutex: unknown figure %q (have %v)", name, Figures())
	}
	s := scale.scale()
	s.Workers = opt.Workers
	s.LPs = opt.LPs
	return spec.run(s, progress)
}

// ReproduceAll regenerates every figure, sharing the underlying experiment
// runs between figures that plot different metrics of the same data (4a/4b/
// 5a/5b come from one run; 6a/6b from another).
func ReproduceAll(scale ExperimentScale, progress func(string)) (map[string]string, error) {
	out, _, err := ReproduceAllWith(scale, RunOptions{}, progress)
	return out, err
}

// ReproduceAllWith is ReproduceAll with execution options, also reporting
// the total simulation work.
func ReproduceAllWith(scale ExperimentScale, opt RunOptions, progress func(string)) (map[string]string, RunInfo, error) {
	s := scale.scale()
	s.Workers = opt.Workers
	s.LPs = opt.LPs
	out := map[string]string{"fig3": harness.Figure3Table()}
	var info RunInfo

	comp, err := harness.Run(harness.CompositionSystems(), s, progress)
	if err != nil {
		return nil, info, fmt.Errorf("gridmutex: composition experiment: %w", err)
	}
	info = info.add(infoOf(comp.Points, s.Repetitions))
	out["fig4a"] = tableAndChart(comp, harness.ObtainingMean, "Figure 4(a)")
	out["fig4b"] = tableAndChart(comp, harness.InterMsgs, "Figure 4(b)")
	out["fig5a"] = tableAndChart(comp, harness.ObtainingStd, "Figure 5(a)")
	out["fig5b"] = tableAndChart(comp, harness.ObtainingRelStd, "Figure 5(b)")

	intra, err := harness.Run(harness.IntraSystems(), s, progress)
	if err != nil {
		return nil, info, fmt.Errorf("gridmutex: intra experiment: %w", err)
	}
	info = info.add(infoOf(intra.Points, s.Repetitions))
	out["fig6a"] = tableAndChart(intra, harness.ObtainingMean, "Figure 6(a)")
	out["fig6b"] = tableAndChart(intra, harness.ObtainingStd, "Figure 6(b)")

	for _, name := range []string{"scale", "gridscale", "adaptive", "bias", "locality", "recovery", "partition"} {
		tab, figInfo, err := figureSpecs[name].run(s, progress)
		if err != nil {
			return nil, info, fmt.Errorf("gridmutex: %s experiment: %w", name, err)
		}
		info = info.add(figInfo)
		out[name] = tab
	}
	return out, info, nil
}
