// Grid5000: reproduce the heart of the paper's evaluation in one program.
//
// Simulates the exact platform of section 4.1 — 9 Grid'5000 clusters with
// the measured RTT matrix of figure 3, 20 application processes per
// cluster (N = 180), 100 critical sections of 10 ms per process — and
// prints the figure 4 series: obtaining time and inter-cluster messages
// per critical section for the original Naimi-Trehel algorithm against
// the three compositions, across the three parallelism regimes.
//
// Run with: go run ./examples/grid5000
// (about a minute; pass -short for a reduced sweep)
package main

import (
	"flag"
	"fmt"
	"log"
	"os"

	"gridmutex/internal/harness"
)

func main() {
	short := flag.Bool("short", false, "run a reduced sweep (3 rhos, 2 repetitions)")
	flag.Parse()

	scale := harness.PaperScale()
	if *short {
		scale.Repetitions = 2
		scale.Rhos = []float64{90, 360, 1080} // one rho per parallelism regime
	}

	fmt.Printf("Simulating %d Grid'5000 clusters, N = %d application processes,\n",
		scale.Clusters, scale.N())
	fmt.Printf("%d critical sections of %v each, %d repetitions per point.\n\n",
		scale.CSPerProcess, scale.Alpha, scale.Repetitions)

	res, err := harness.Run(harness.CompositionSystems(), scale,
		func(line string) { fmt.Fprintln(os.Stderr, line) })
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println(res.Table(harness.ObtainingMean, "Figure 4(a)"))
	fmt.Println(res.Table(harness.InterMsgs, "Figure 4(b)"))
	fmt.Println(res.Table(harness.ObtainingStd, "Figure 5(a)"))
	fmt.Println(res.Table(harness.ObtainingRelStd, "Figure 5(b)"))

	fmt.Println("Reading the tables against the paper's conclusions:")
	fmt.Println("  - obtaining time falls as rho grows (figure 4(a));")
	fmt.Println("  - the original algorithm's inter-cluster traffic is flat, the")
	fmt.Println("    compositions' is lower and grows with rho (figure 4(b));")
	fmt.Println("  - Martin-inter is cheapest under saturation, Suzuki-inter has the")
	fmt.Println("    lowest obtaining time when requests are rare (sections 4.3-4.4).")
}
