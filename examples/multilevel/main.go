// Multilevel: hierarchies deeper than two levels.
//
// The paper's conclusion notes the approach "can be easily extended to
// multiple levels of algorithm hierarchy". This example builds a
// three-level deployment — Naimi-Trehel inside 6 clusters, Martin's ring
// within each 3-cluster region, Suzuki-Kasami between the two region
// coordinators — runs a contended workload on the simulator, verifies
// safety, and compares its cross-cluster traffic with the flat two-level
// equivalent.
//
// Run with: go run ./examples/multilevel
package main

import (
	"fmt"
	"log"
	"time"

	"gridmutex/internal/check"
	"gridmutex/internal/core"
	"gridmutex/internal/des"
	"gridmutex/internal/simnet"
	"gridmutex/internal/topology"
	"gridmutex/internal/workload"
)

func run(algs []string, groups []int) (obtainMS float64, interPerCS float64) {
	grid := topology.Uniform(6, 5, time.Millisecond, 25*time.Millisecond)
	sim := des.New()
	net := simnet.New(sim, grid, simnet.Options{Seed: 7, Jitter: 0.05})
	mon := check.NewMonitor(sim)
	runner, err := workload.NewRunner(sim, workload.Params{
		Alpha: 10 * time.Millisecond, Rho: 12, Dist: workload.Exponential,
		CSPerProcess: 40, Seed: 7,
	}, mon)
	if err != nil {
		log.Fatal(err)
	}
	d, err := core.BuildMultiLevel(net, grid, algs, groups, runner.Callbacks)
	if err != nil {
		log.Fatal(err)
	}
	runner.Bind(d.Apps)
	runner.Start()
	if err := sim.RunCapped(50_000_000); err != nil {
		log.Fatal(err)
	}
	mon.AssertQuiescent()
	if !mon.Ok() {
		log.Fatalf("property violation: %v", mon.Violations()[0])
	}
	var sum time.Duration
	for _, r := range runner.Records() {
		sum += r.Obtaining()
	}
	grants := len(runner.Records())
	return float64(sum.Milliseconds()) / float64(grants),
		float64(net.Counters().InterMessages) / float64(grants)
}

func main() {
	fmt.Println("6 clusters x 4 apps, 40 CS each, rho = 12 (saturated)")
	fmt.Println()

	o2, m2 := run([]string{"naimi", "suzuki"}, nil)
	fmt.Printf("two levels   naimi | suzuki             : obtain %7.2f ms, %5.2f inter msgs/CS\n", o2, m2)

	o3, m3 := run([]string{"naimi", "martin", "suzuki"}, []int{3})
	fmt.Printf("three levels naimi | martin | suzuki    : obtain %7.2f ms, %5.2f inter msgs/CS\n", o3, m3)

	fmt.Println()
	fmt.Printf("the middle level batches regional requests: cross-cluster traffic drops %.0f%%\n",
		100*(1-m3/m2))
	fmt.Println("(the same bridge automaton runs at every hierarchy boundary; safety is")
	fmt.Println("checked by the global monitor during the run)")
}
