// Lossy: running the composition over links that drop messages.
//
// The paper's C/UDP implementation assumes the testbed never loses a
// datagram — a single lost token deadlocks every algorithm in this family.
// This example injects 15% message loss into the simulated grid and runs
// the same composed workload twice: bare (it stalls and the liveness
// watchdog reports the exact virtual instant) and wrapped in the
// sequencing/ack/retransmission layer (it completes, at the cost of the
// retransmitted traffic it reports).
//
// Run with: go run ./examples/lossy
package main

import (
	"fmt"
	"log"
	"time"

	"gridmutex/internal/check"
	"gridmutex/internal/core"
	"gridmutex/internal/des"
	"gridmutex/internal/mutex"
	"gridmutex/internal/reliable"
	"gridmutex/internal/simnet"
	"gridmutex/internal/topology"
	"gridmutex/internal/workload"
)

func run(withReliability bool) {
	sim := des.New()
	grid := topology.Uniform(3, 4, time.Millisecond, 16*time.Millisecond)
	inner := simnet.New(sim, grid, simnet.Options{Loss: 0.15, Seed: 7})

	var fabric mutex.Fabric = inner
	var rel *reliable.Network
	if withReliability {
		rel = reliable.Wrap(inner, sim, reliable.Options{RTO: 60 * time.Millisecond})
		fabric = rel
	}

	mon := check.NewMonitor(sim)
	runner, err := workload.NewRunner(sim, workload.Params{
		Alpha: 5 * time.Millisecond, Rho: 15, Dist: workload.Exponential,
		CSPerProcess: 10, Seed: 7,
	}, mon)
	if err != nil {
		log.Fatal(err)
	}
	d, err := core.BuildComposed(fabric, grid, core.Spec{Intra: "naimi", Inter: "naimi"}, runner.Callbacks)
	if err != nil {
		log.Fatal(err)
	}
	runner.Bind(d.Apps)
	runner.Start()
	mon.WatchLiveness(runner.Waiting, runner.Done, 2*time.Second)
	if err := sim.RunCapped(20_000_000); err != nil {
		log.Fatal(err)
	}

	mode := "bare (no reliability layer)"
	if withReliability {
		mode = "with reliability layer"
	}
	fmt.Printf("%-28s: %3d/%d critical sections granted", mode,
		len(runner.Records()), runner.ExpectedTotal())
	if runner.Done() {
		fmt.Printf(" — completed")
	} else {
		fmt.Printf(" — STALLED (%s)", mon.Violations()[0])
	}
	fmt.Println()
	if rel != nil {
		st := rel.Stats()
		fmt.Printf("%-28s  %d data packets, %d retransmitted, %d duplicates dropped, %d messages lost by the network\n",
			"", st.DataSent, st.Retransmits, st.Duplicates, inner.Counters().Dropped)
	}
}

func main() {
	fmt.Println("3 clusters x 3 application processes (plus a coordinator each), 10 CS per process, 15% of all messages dropped")
	fmt.Println()
	run(false)
	run(true)
}
