// Adaptive: the paper's proposed future work, running.
//
// Section 6 proposes "a dynamic and adaptive composition scheme where the
// inter algorithm will be replaced according to the application behavior".
// This example drives a workload through three phases — saturated, sparse,
// intermediate — and compares the three static inter algorithms against
// the adaptive composition, which observes token-demand gaps and switches
// its inter algorithm at runtime (ring under saturation, broadcast when
// sparse, tree in between).
//
// Run with: go run ./examples/adaptive
package main

import (
	"fmt"
	"log"

	"gridmutex/internal/harness"
)

func main() {
	scale := harness.QuickScale()
	scale.Clusters = 4
	scale.AppsPerCluster = 5
	scale.CSPerProcess = 60
	scale.Repetitions = 3
	scale.Phases = harness.AdaptivePhases(scale)

	fmt.Printf("Workload phases over %d apps (alpha = %v):\n", scale.N(), scale.Alpha)
	for i, ph := range scale.Phases {
		until := "end of run"
		if i < len(scale.Phases)-1 {
			until = ph.Until.String()
		}
		fmt.Printf("  phase %d: rho = %5.0f  until %s\n", i+1, ph.Rho, until)
	}
	fmt.Println()

	res, err := harness.RunPhased(harness.AdaptiveSystems(), scale, nil)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println(res.PhasedTable("Static inter algorithms vs adaptive switching"))

	for _, p := range res.Points {
		if p.Switches > 0 {
			fmt.Printf("the adaptive composition committed %d algorithm switches over %d repetitions\n",
				p.Switches, scale.Repetitions)
		}
	}
}
