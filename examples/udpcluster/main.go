// UDPCluster: the composed lock over real sockets.
//
// The paper's implementation is C over UDP; this example runs the Go
// deployment the same way — every process owns a loopback UDP socket and
// all algorithm traffic is binary-encoded datagrams — and uses the lock to
// serialize appends to a shared log.
//
// Run with: go run ./examples/udpcluster
package main

import (
	"context"
	"fmt"
	"log"
	"sync"

	"gridmutex"
)

func main() {
	grid, err := gridmutex.New(gridmutex.Config{
		Clusters:       3,
		AppsPerCluster: 3,
		Intra:          "suzuki", // broadcast inside clusters (cheap on a LAN)
		Inter:          "naimi",  // tree among coordinators
		Transport:      gridmutex.UDP,
	})
	if err != nil {
		log.Fatal(err)
	}
	defer grid.Close()

	var journal []string // protected only by the distributed lock
	var wg sync.WaitGroup
	for i := 0; i < grid.Apps(); i++ {
		i := i
		m := grid.Mutex(i)
		wg.Add(1)
		go func() {
			defer wg.Done()
			for k := 0; k < 5; k++ {
				if err := m.Lock(context.Background()); err != nil {
					log.Fatal(err)
				}
				journal = append(journal, fmt.Sprintf("app %d (cluster %d) entry %d",
					i, grid.ClusterOf(i), k))
				m.Unlock()
			}
		}()
	}
	wg.Wait()

	fmt.Printf("journal has %d entries, appended race-free over UDP; last five:\n", len(journal))
	for _, line := range journal[len(journal)-5:] {
		fmt.Println(" ", line)
	}
}
