// Quickstart: a grid-wide distributed lock in a few lines.
//
// Builds a live in-process grid of 3 clusters x 4 application processes
// (plus one coordinator per cluster), then has every process increment a
// shared counter under the composed Naimi-Naimi lock.
//
// Run with: go run ./examples/quickstart
package main

import (
	"context"
	"fmt"
	"log"
	"sync"
	"time"

	"gridmutex"
)

func main() {
	grid, err := gridmutex.New(gridmutex.Config{
		Clusters:       3,
		AppsPerCluster: 4,
		Intra:          "naimi", // tree algorithm inside each cluster
		Inter:          "naimi", // tree algorithm among coordinators
		LocalRTT:       time.Millisecond,
		RemoteRTT:      20 * time.Millisecond,
		LatencyScale:   100, // run the modeled latencies 100x faster
	})
	if err != nil {
		log.Fatal(err)
	}
	defer grid.Close()

	const perProcess = 10
	counter := 0 // protected only by the distributed lock

	var wg sync.WaitGroup
	for i := 0; i < grid.Apps(); i++ {
		m := grid.Mutex(i)
		wg.Add(1)
		go func() {
			defer wg.Done()
			for k := 0; k < perProcess; k++ {
				if err := m.Lock(context.Background()); err != nil {
					log.Fatal(err)
				}
				counter++ // the critical section
				m.Unlock()
			}
		}()
	}
	wg.Wait()

	fmt.Printf("%d processes x %d critical sections: counter = %d (expected %d)\n",
		grid.Apps(), perProcess, counter, grid.Apps()*perProcess)
}
