// Command benchcmp compares a freshly generated gridbench record against
// a committed baseline (BENCH_5.json for the classic event loop,
// BENCH_8.json for the window-barrier scheduler) without touching it, so
// CI can verify the benchmark still reproduces instead of silently
// overwriting the audited record.
//
// Usage:
//
//	gridbench -experiment fig4a -scale quick -parallel 4 -json "$tmp" -q
//	benchcmp -baseline BENCH_5.json -fresh "$tmp"
//
//	gridbench -experiment fig4a -scale quick -lps 4 -json "$tmp" -q
//	benchcmp -baseline BENCH_8.json -fresh "$tmp"
//
// Three properties are checked, in decreasing order of strictness:
//
//   - determinism: the fresh record's figures and event count must match
//     the baseline byte for byte — the DES is a pure function of its
//     configuration, so any drift here is a correctness bug, not noise;
//   - integrity: both records must carry identical=true (gridbench's own
//     parallel-vs-serial cross-check) and agree on experiment, scale,
//     cells and runs;
//   - throughput: events_per_sec may vary with the machine, so it is
//     only held to a floor: fresh >= baseline*(1-tolerance). Override
//     the default with -tolerance or BENCHCMP_TOLERANCE. When both
//     records carry gomaxprocs (gridbench stamps it) and the fresh
//     machine has fewer cores than the baseline's, the floor is scaled
//     by the core ratio: a parallel record produced on 8 cores cannot
//     be reproduced at full speed on 1 (BENCH_8's 0.27x on a
//     single-core box is expected, not a regression);
//   - memory: when both records carry gridscale memory samples, each
//     fresh bytes_per_proc is held to a ceiling over the baseline's
//     sample at the same N: fresh <= baseline*(1+mem-tolerance),
//     overridable with -mem-tolerance or BENCHCMP_MEM_TOLERANCE. Bytes
//     per process is a property of the data structures, not the
//     machine, so its tolerance is much tighter than throughput's.
//
// Exit status: 0 on pass, 1 on any mismatch, 2 on usage/IO errors.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"strconv"
)

// record mirrors the gridbench/1 fields benchcmp judges.
type record struct {
	Schema       string            `json:"schema"`
	Experiment   string            `json:"experiment"`
	Scale        string            `json:"scale"`
	Cells        int               `json:"cells"`
	Runs         int               `json:"runs"`
	Events       int64             `json:"events"`
	Workers      int               `json:"workers"`
	GoMaxProcs   int               `json:"gomaxprocs"`
	LPs          int               `json:"lps"`
	EventsPerSec float64           `json:"events_per_sec"`
	Identical    bool              `json:"identical"`
	Memory       []memSample       `json:"memory"`
	Figures      map[string]string `json:"figures"`
}

// memSample is the slice of a gridscale memory sample benchcmp judges.
type memSample struct {
	N            int     `json:"n"`
	BytesPerProc float64 `json:"bytes_per_proc"`
}

func main() { os.Exit(run(os.Args[1:])) }

func run(args []string) int {
	fs := flag.NewFlagSet("benchcmp", flag.ExitOnError)
	basePath := fs.String("baseline", "BENCH_5.json", "committed benchmark record")
	freshPath := fs.String("fresh", "", "freshly generated record to compare")
	tolerance := fs.Float64("tolerance", defaultTolerance(), "allowed fractional throughput drop below baseline (BENCHCMP_TOLERANCE)")
	memTolerance := fs.Float64("mem-tolerance", defaultMemTolerance(), "allowed fractional bytes-per-process growth over baseline (BENCHCMP_MEM_TOLERANCE)")
	fs.Parse(args)
	if *freshPath == "" {
		fmt.Fprintln(os.Stderr, "benchcmp: -fresh is required")
		return 2
	}
	if *tolerance < 0 || *tolerance >= 1 {
		fmt.Fprintln(os.Stderr, "benchcmp: -tolerance must be in [0,1)")
		return 2
	}
	if *memTolerance < 0 {
		fmt.Fprintln(os.Stderr, "benchcmp: -mem-tolerance must be non-negative")
		return 2
	}

	base, err := read(*basePath)
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchcmp:", err)
		return 2
	}
	fresh, err := read(*freshPath)
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchcmp:", err)
		return 2
	}

	status := 0
	fail := func(format string, args ...any) {
		fmt.Fprintf(os.Stderr, "benchcmp: "+format+"\n", args...)
		status = 1
	}

	for _, r := range []struct {
		which string
		rec   *record
	}{{"baseline", base}, {"fresh", fresh}} {
		if r.rec.Schema != "gridbench/1" {
			fail("%s: unknown schema %q", r.which, r.rec.Schema)
		}
		if !r.rec.Identical {
			fail("%s: identical=false — the parallel pass diverged from the serial reference", r.which)
		}
	}
	if base.Experiment != fresh.Experiment || base.Scale != fresh.Scale {
		fail("configuration mismatch: baseline %s/%s vs fresh %s/%s", base.Experiment, base.Scale, fresh.Experiment, fresh.Scale)
	}
	if base.Cells != fresh.Cells || base.Runs != fresh.Runs {
		fail("coverage mismatch: baseline %d cells/%d runs vs fresh %d cells/%d runs", base.Cells, base.Runs, fresh.Cells, fresh.Runs)
	}
	// Any lps >= 1 replays the same windowed schedule, so records differing
	// only in LP worker count are comparable; the classic event loop
	// (lps = 0) draws differently-sharded random streams and is not.
	if (base.LPs >= 1) != (fresh.LPs >= 1) {
		fail("scheduler mismatch: baseline lps=%d vs fresh lps=%d — the window scheduler and the classic event loop draw different random streams", base.LPs, fresh.LPs)
	}
	if base.Events != fresh.Events {
		fail("determinism violation: baseline processed %d events, fresh %d — same configuration must replay the same schedule", base.Events, fresh.Events)
	}
	for name, want := range base.Figures {
		if got, ok := fresh.Figures[name]; !ok {
			fail("fresh record lacks figure %s", name)
		} else if got != want {
			fail("determinism violation: figure %s differs from the committed record", name)
		}
	}

	// Throughput floor, scaled by the core ratio when the fresh machine
	// has fewer cores than the baseline's and the baseline used them: a
	// record produced by a parallel pass on G cores cannot reproduce its
	// events/sec on fewer, and that is a property of the machine, not a
	// regression.
	coreRatio := 1.0
	if base.GoMaxProcs > 0 && fresh.GoMaxProcs > 0 &&
		fresh.GoMaxProcs < base.GoMaxProcs && (base.Workers > 1 || base.LPs > 1) {
		coreRatio = float64(fresh.GoMaxProcs) / float64(base.GoMaxProcs)
		fmt.Fprintf(os.Stderr, "benchcmp: note: fresh machine has %d of the baseline's %d cores; throughput floor scaled by %.2fx\n",
			fresh.GoMaxProcs, base.GoMaxProcs, coreRatio)
	}
	floor := base.EventsPerSec * (1 - *tolerance) * coreRatio
	if fresh.EventsPerSec < floor {
		fail("throughput regression: %.0f events/sec is below the floor %.0f (baseline %.0f, tolerance %.0f%%, core ratio %.2f)",
			fresh.EventsPerSec, floor, base.EventsPerSec, *tolerance*100, coreRatio)
	}

	// Memory ceiling: bytes per process is determined by the simulator's
	// data structures, so unlike throughput it must hold across machines.
	// Judged only when the baseline carries samples (gridscale records).
	for _, bs := range base.Memory {
		var fm *memSample
		for i := range fresh.Memory {
			if fresh.Memory[i].N == bs.N {
				fm = &fresh.Memory[i]
				break
			}
		}
		if fm == nil {
			fail("fresh record lacks the memory sample at N=%d", bs.N)
			continue
		}
		if ceiling := bs.BytesPerProc * (1 + *memTolerance); bs.BytesPerProc > 0 && fm.BytesPerProc > ceiling {
			fail("memory regression at N=%d: %.0f bytes/process exceeds the ceiling %.0f (baseline %.0f, tolerance %.0f%%)",
				bs.N, fm.BytesPerProc, ceiling, bs.BytesPerProc, *memTolerance*100)
		}
	}

	if status == 0 {
		fmt.Printf("benchcmp: ok — %d events byte-identical, %.2fx baseline throughput\n",
			fresh.Events, fresh.EventsPerSec/base.EventsPerSec)
	}
	return status
}

// defaultTolerance reads BENCHCMP_TOLERANCE, defaulting to 0.75: CI
// machines vary wildly, so by default only a >4x slowdown fails — the
// determinism checks, not the throughput floor, carry the regression
// burden.
func defaultTolerance() float64 {
	if s := os.Getenv("BENCHCMP_TOLERANCE"); s != "" {
		if v, err := strconv.ParseFloat(s, 64); err == nil {
			return v
		}
	}
	return 0.75
}

// defaultMemTolerance reads BENCHCMP_MEM_TOLERANCE, defaulting to 0.5:
// bytes per process is a data-structure property, but GC timing and
// allocator size classes still wiggle it across Go versions and machines,
// so the ceiling leaves 50% headroom — far below the order-of-magnitude
// jumps a reintroduced O(N) term causes.
func defaultMemTolerance() float64 {
	if s := os.Getenv("BENCHCMP_MEM_TOLERANCE"); s != "" {
		if v, err := strconv.ParseFloat(s, 64); err == nil {
			return v
		}
	}
	return 0.5
}

func read(path string) (*record, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var r record
	if err := json.Unmarshal(data, &r); err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	return &r, nil
}
