// Command benchcmp compares a freshly generated gridbench record against
// a committed baseline (BENCH_5.json for the classic event loop,
// BENCH_8.json for the window-barrier scheduler) without touching it, so
// CI can verify the benchmark still reproduces instead of silently
// overwriting the audited record.
//
// Usage:
//
//	gridbench -experiment fig4a -scale quick -parallel 4 -json "$tmp" -q
//	benchcmp -baseline BENCH_5.json -fresh "$tmp"
//
//	gridbench -experiment fig4a -scale quick -lps 4 -json "$tmp" -q
//	benchcmp -baseline BENCH_8.json -fresh "$tmp"
//
// Three properties are checked, in decreasing order of strictness:
//
//   - determinism: the fresh record's figures and event count must match
//     the baseline byte for byte — the DES is a pure function of its
//     configuration, so any drift here is a correctness bug, not noise;
//   - integrity: both records must carry identical=true (gridbench's own
//     parallel-vs-serial cross-check) and agree on experiment, scale,
//     cells and runs;
//   - throughput: events_per_sec may vary with the machine, so it is
//     only held to a floor: fresh >= baseline*(1-tolerance). Override
//     the default with -tolerance or BENCHCMP_TOLERANCE.
//
// Exit status: 0 on pass, 1 on any mismatch, 2 on usage/IO errors.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"strconv"
)

// record mirrors the gridbench/1 fields benchcmp judges.
type record struct {
	Schema       string            `json:"schema"`
	Experiment   string            `json:"experiment"`
	Scale        string            `json:"scale"`
	Cells        int               `json:"cells"`
	Runs         int               `json:"runs"`
	Events       int64             `json:"events"`
	LPs          int               `json:"lps"`
	EventsPerSec float64           `json:"events_per_sec"`
	Identical    bool              `json:"identical"`
	Figures      map[string]string `json:"figures"`
}

func main() { os.Exit(run(os.Args[1:])) }

func run(args []string) int {
	fs := flag.NewFlagSet("benchcmp", flag.ExitOnError)
	basePath := fs.String("baseline", "BENCH_5.json", "committed benchmark record")
	freshPath := fs.String("fresh", "", "freshly generated record to compare")
	tolerance := fs.Float64("tolerance", defaultTolerance(), "allowed fractional throughput drop below baseline (BENCHCMP_TOLERANCE)")
	fs.Parse(args)
	if *freshPath == "" {
		fmt.Fprintln(os.Stderr, "benchcmp: -fresh is required")
		return 2
	}
	if *tolerance < 0 || *tolerance >= 1 {
		fmt.Fprintln(os.Stderr, "benchcmp: -tolerance must be in [0,1)")
		return 2
	}

	base, err := read(*basePath)
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchcmp:", err)
		return 2
	}
	fresh, err := read(*freshPath)
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchcmp:", err)
		return 2
	}

	status := 0
	fail := func(format string, args ...any) {
		fmt.Fprintf(os.Stderr, "benchcmp: "+format+"\n", args...)
		status = 1
	}

	for _, r := range []struct {
		which string
		rec   *record
	}{{"baseline", base}, {"fresh", fresh}} {
		if r.rec.Schema != "gridbench/1" {
			fail("%s: unknown schema %q", r.which, r.rec.Schema)
		}
		if !r.rec.Identical {
			fail("%s: identical=false — the parallel pass diverged from the serial reference", r.which)
		}
	}
	if base.Experiment != fresh.Experiment || base.Scale != fresh.Scale {
		fail("configuration mismatch: baseline %s/%s vs fresh %s/%s", base.Experiment, base.Scale, fresh.Experiment, fresh.Scale)
	}
	if base.Cells != fresh.Cells || base.Runs != fresh.Runs {
		fail("coverage mismatch: baseline %d cells/%d runs vs fresh %d cells/%d runs", base.Cells, base.Runs, fresh.Cells, fresh.Runs)
	}
	// Any lps >= 1 replays the same windowed schedule, so records differing
	// only in LP worker count are comparable; the classic event loop
	// (lps = 0) draws differently-sharded random streams and is not.
	if (base.LPs >= 1) != (fresh.LPs >= 1) {
		fail("scheduler mismatch: baseline lps=%d vs fresh lps=%d — the window scheduler and the classic event loop draw different random streams", base.LPs, fresh.LPs)
	}
	if base.Events != fresh.Events {
		fail("determinism violation: baseline processed %d events, fresh %d — same configuration must replay the same schedule", base.Events, fresh.Events)
	}
	for name, want := range base.Figures {
		if got, ok := fresh.Figures[name]; !ok {
			fail("fresh record lacks figure %s", name)
		} else if got != want {
			fail("determinism violation: figure %s differs from the committed record", name)
		}
	}

	floor := base.EventsPerSec * (1 - *tolerance)
	if fresh.EventsPerSec < floor {
		fail("throughput regression: %.0f events/sec is below the floor %.0f (baseline %.0f, tolerance %.0f%%)",
			fresh.EventsPerSec, floor, base.EventsPerSec, *tolerance*100)
	}

	if status == 0 {
		fmt.Printf("benchcmp: ok — %d events byte-identical, %.2fx baseline throughput\n",
			fresh.Events, fresh.EventsPerSec/base.EventsPerSec)
	}
	return status
}

// defaultTolerance reads BENCHCMP_TOLERANCE, defaulting to 0.75: CI
// machines vary wildly, so by default only a >4x slowdown fails — the
// determinism checks, not the throughput floor, carry the regression
// burden.
func defaultTolerance() float64 {
	if s := os.Getenv("BENCHCMP_TOLERANCE"); s != "" {
		if v, err := strconv.ParseFloat(s, 64); err == nil {
			return v
		}
	}
	return 0.75
}

func read(path string) (*record, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var r record
	if err := json.Unmarshal(data, &r); err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	return &r, nil
}
