// Command gridlint runs the repo's determinism and concurrency analyzers
// (internal/lint) over module packages and exits non-zero on findings.
//
// Usage:
//
//	gridlint ./internal/... ./cmd/...  # whole program (the CI invocation)
//	gridlint ./internal/des            # specific packages
//	gridlint -json ./...               # machine-readable diagnostics
//	gridlint -audit ./...              # also audit //lint:allow pragmas
//	gridlint -exemptions ./...         # list every pragma with usage
//	gridlint -list                     # describe the analyzer suite
//
// All named packages are loaded and type-checked together as one
// program: the per-package analyzers run on each, and the whole-program
// analyzers (determinism taint, allocation hygiene) run on the combined
// call graph — so narrowing the package list narrows what the
// cross-package passes can see.
//
// Findings print in go vet style (file:line:col: analyzer: message),
// with the entry-point call chain appended for whole-program findings,
// and are suppressed only by an in-source //lint:allow comment; see the
// package documentation of internal/lint for the convention.
//
// Exit status: 0 clean, 1 findings, 2 load or usage errors.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"

	"gridmutex/internal/lint"
)

func main() { os.Exit(run(os.Args[1:], os.Stdout)) }

// jsonReport is the -json output shape, one object per run.
type jsonReport struct {
	// Diagnostics are the surviving (non-exempt) findings, including any
	// audit findings when -audit is set.
	Diagnostics []lint.Diagnostic `json:"diagnostics"`
	// Exemptions lists every //lint:allow pragma with usage accounting
	// when -exemptions is set (always populated under -audit runs too,
	// since the audit is about them).
	Exemptions []*lint.Exemption `json:"exemptions,omitempty"`
}

func run(args []string, stdout *os.File) int {
	fs := flag.NewFlagSet("gridlint", flag.ExitOnError)
	list := fs.Bool("list", false, "list the analyzer suite and exit")
	jsonOut := fs.Bool("json", false, "emit diagnostics as JSON")
	audit := fs.Bool("audit", false, "audit //lint:allow pragmas: stale, unknown analyzer, missing reason")
	exemptions := fs.Bool("exemptions", false, "list every //lint:allow pragma with usage")
	fs.Usage = func() {
		fmt.Fprintln(os.Stderr, "usage: gridlint [-list] [-json] [-audit] [-exemptions] [packages]")
		fs.PrintDefaults()
	}
	fs.Parse(args)

	suite := lint.DefaultSuite()
	if *list {
		for _, a := range suite.Analyzers {
			fmt.Fprintf(stdout, "%s\n\t%s\n", a.Name, strings.ReplaceAll(strings.TrimSpace(a.Doc), "\n", "\n\t"))
		}
		for _, a := range suite.Program {
			fmt.Fprintf(stdout, "%s (whole-program)\n\t%s\n", a.Name, strings.ReplaceAll(strings.TrimSpace(a.Doc), "\n", "\n\t"))
		}
		return 0
	}

	loader, err := lint.NewLoader(".")
	if err != nil {
		fmt.Fprintln(os.Stderr, "gridlint:", err)
		return 2
	}
	paths, err := resolve(loader, fs.Args())
	if err != nil {
		fmt.Fprintln(os.Stderr, "gridlint:", err)
		return 2
	}

	prog, err := loader.LoadProgram(paths)
	if err != nil {
		fmt.Fprintln(os.Stderr, "gridlint:", err)
		return 2
	}
	status := 0
	for _, pkg := range prog.Packages {
		for _, e := range pkg.TypeErrors {
			fmt.Fprintf(os.Stderr, "gridlint: %s: %v\n", pkg.Path, e)
			status = 2
		}
	}
	if status != 0 {
		return status
	}

	result := lint.RunSuite(prog, suite)
	diags := result.Diagnostics
	if *audit {
		diags = append(diags, lint.AuditExemptions(result.Exemptions, suite.Names())...)
	}
	for i := range diags {
		diags[i].Pos.Filename = relPath(diags[i].Pos.Filename)
		for j := range diags[i].Chain {
			diags[i].Chain[j].File = relPath(diags[i].Chain[j].File)
		}
	}
	for _, e := range result.Exemptions {
		e.Pos.Filename = relPath(e.Pos.Filename)
	}
	if len(diags) > 0 {
		status = 1
	}

	if *jsonOut {
		report := jsonReport{Diagnostics: diags}
		if report.Diagnostics == nil {
			report.Diagnostics = []lint.Diagnostic{}
		}
		if *exemptions || *audit {
			report.Exemptions = result.Exemptions
		}
		enc := json.NewEncoder(stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(report); err != nil {
			fmt.Fprintln(os.Stderr, "gridlint:", err)
			return 2
		}
		return status
	}

	for _, d := range diags {
		fmt.Fprintln(stdout, d)
	}
	if *exemptions {
		for _, e := range result.Exemptions {
			state := "used"
			if !e.Used {
				state = "STALE"
			}
			reason := e.Reason
			if reason == "" {
				reason = "(no reason recorded)"
			}
			fmt.Fprintf(stdout, "%s: allow %s [%s]: %s\n", e.Pos, strings.Join(e.Analyzers, ","), state, reason)
		}
	}
	return status
}

// resolve expands command-line package patterns into import paths. With
// no arguments it analyzes the whole module, like "./...".
func resolve(l *lint.Loader, args []string) ([]string, error) {
	if len(args) == 0 {
		args = []string{"./..."}
	}
	all, err := l.ModulePackages()
	if err != nil {
		return nil, err
	}
	seen := make(map[string]bool)
	var out []string
	add := func(p string) {
		if !seen[p] {
			seen[p] = true
			out = append(out, p)
		}
	}
	for _, arg := range args {
		switch {
		case arg == "./..." || arg == "...":
			for _, p := range all {
				add(p)
			}
		case strings.HasSuffix(arg, "/..."):
			prefix, err := importPath(l, strings.TrimSuffix(arg, "/..."))
			if err != nil {
				return nil, err
			}
			matched := false
			for _, p := range all {
				if lint.PathUnder(p, prefix) {
					add(p)
					matched = true
				}
			}
			if !matched {
				return nil, fmt.Errorf("no packages under %s", arg)
			}
		default:
			p, err := importPath(l, arg)
			if err != nil {
				return nil, err
			}
			add(p)
		}
	}
	sort.Strings(out)
	return out, nil
}

// importPath maps a directory argument (./internal/des) or bare import
// path (gridmutex/internal/des) to a module import path.
func importPath(l *lint.Loader, arg string) (string, error) {
	if lint.PathUnder(arg, l.ModulePath) {
		return arg, nil
	}
	abs, err := filepath.Abs(arg)
	if err != nil {
		return "", err
	}
	rel, err := filepath.Rel(l.ModuleRoot, abs)
	if err != nil || rel == ".." || strings.HasPrefix(rel, ".."+string(filepath.Separator)) {
		return "", fmt.Errorf("%s is outside module %s", arg, l.ModulePath)
	}
	if rel == "." {
		return l.ModulePath, nil
	}
	return l.ModulePath + "/" + filepath.ToSlash(rel), nil
}

// relPath shortens absolute diagnostic filenames relative to the current
// directory when that produces a shorter, in-tree path.
func relPath(name string) string {
	wd, err := os.Getwd()
	if err != nil {
		return name
	}
	rel, err := filepath.Rel(wd, name)
	if err != nil || strings.HasPrefix(rel, "..") {
		return name
	}
	return rel
}
