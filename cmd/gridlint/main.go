// Command gridlint runs the repo's determinism and concurrency analyzers
// (internal/lint) over module packages and exits non-zero on findings.
//
// Usage:
//
//	gridlint ./...            # whole module (the CI invocation)
//	gridlint ./internal/des   # specific packages
//	gridlint -list            # describe the analyzer suite
//
// Findings print in go vet style (file:line:col: analyzer: message) and
// are suppressed only by an in-source //lint:allow comment; see the
// package documentation of internal/lint for the convention.
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"

	"gridmutex/internal/lint"
)

func main() { os.Exit(run(os.Args[1:])) }

func run(args []string) int {
	fs := flag.NewFlagSet("gridlint", flag.ExitOnError)
	list := fs.Bool("list", false, "list the analyzer suite and exit")
	fs.Usage = func() {
		fmt.Fprintln(os.Stderr, "usage: gridlint [-list] [packages]")
		fs.PrintDefaults()
	}
	fs.Parse(args)

	if *list {
		for _, a := range lint.All() {
			fmt.Printf("%s\n\t%s\n", a.Name, strings.ReplaceAll(strings.TrimSpace(a.Doc), "\n", "\n\t"))
		}
		return 0
	}

	loader, err := lint.NewLoader(".")
	if err != nil {
		fmt.Fprintln(os.Stderr, "gridlint:", err)
		return 2
	}
	paths, err := resolve(loader, fs.Args())
	if err != nil {
		fmt.Fprintln(os.Stderr, "gridlint:", err)
		return 2
	}

	status := 0
	for _, path := range paths {
		pkg, err := loader.Load(path)
		if err != nil {
			fmt.Fprintln(os.Stderr, "gridlint:", err)
			status = 2
			continue
		}
		for _, e := range pkg.TypeErrors {
			fmt.Fprintf(os.Stderr, "gridlint: %s: %v\n", path, e)
			status = 2
		}
		for _, d := range lint.RunAnalyzers(pkg, lint.All()) {
			d.Pos.Filename = relPath(d.Pos.Filename)
			fmt.Println(d)
			if status == 0 {
				status = 1
			}
		}
	}
	return status
}

// resolve expands command-line package patterns into import paths. With
// no arguments it analyzes the whole module, like "./...".
func resolve(l *lint.Loader, args []string) ([]string, error) {
	if len(args) == 0 {
		args = []string{"./..."}
	}
	all, err := l.ModulePackages()
	if err != nil {
		return nil, err
	}
	seen := make(map[string]bool)
	var out []string
	add := func(p string) {
		if !seen[p] {
			seen[p] = true
			out = append(out, p)
		}
	}
	for _, arg := range args {
		switch {
		case arg == "./..." || arg == "...":
			for _, p := range all {
				add(p)
			}
		case strings.HasSuffix(arg, "/..."):
			prefix, err := importPath(l, strings.TrimSuffix(arg, "/..."))
			if err != nil {
				return nil, err
			}
			matched := false
			for _, p := range all {
				if lint.PathUnder(p, prefix) {
					add(p)
					matched = true
				}
			}
			if !matched {
				return nil, fmt.Errorf("no packages under %s", arg)
			}
		default:
			p, err := importPath(l, arg)
			if err != nil {
				return nil, err
			}
			add(p)
		}
	}
	sort.Strings(out)
	return out, nil
}

// importPath maps a directory argument (./internal/des) or bare import
// path (gridmutex/internal/des) to a module import path.
func importPath(l *lint.Loader, arg string) (string, error) {
	if lint.PathUnder(arg, l.ModulePath) {
		return arg, nil
	}
	abs, err := filepath.Abs(arg)
	if err != nil {
		return "", err
	}
	rel, err := filepath.Rel(l.ModuleRoot, abs)
	if err != nil || rel == ".." || strings.HasPrefix(rel, ".."+string(filepath.Separator)) {
		return "", fmt.Errorf("%s is outside module %s", arg, l.ModulePath)
	}
	if rel == "." {
		return l.ModulePath, nil
	}
	return l.ModulePath + "/" + filepath.ToSlash(rel), nil
}

// relPath shortens absolute diagnostic filenames relative to the current
// directory when that produces a shorter, in-tree path.
func relPath(name string) string {
	wd, err := os.Getwd()
	if err != nil {
		return name
	}
	rel, err := filepath.Rel(wd, name)
	if err != nil || strings.HasPrefix(rel, "..") {
		return name
	}
	return rel
}
