// Command gridbench regenerates the paper's evaluation figures.
//
// Every table and figure of the evaluation section maps to an experiment:
//
//	fig3   Grid5000 RTT matrix (input data, encoded verbatim)
//	fig4a  obtaining time vs rho (original Naimi vs compositions)
//	fig4b  inter-cluster messages per CS vs rho
//	fig5a  obtaining time standard deviation vs rho
//	fig5b  obtaining time relative standard deviation vs rho
//	fig6a  intra algorithm choice: obtaining time
//	fig6b  intra algorithm choice: standard deviation
//	scale  section 4.7 scalability discussion
//	adaptive  section 6 future work: adaptive inter algorithm
//	recovery  robustness extension: token regeneration vs heartbeat period
//	partition robustness extension: minority degradation vs cut duration
//
// Usage:
//
//	gridbench -experiment all -scale paper
//	gridbench -experiment fig4a -scale quick
//	gridbench -experiment fig4a -scale quick -parallel 8 -json bench.json
//	gridbench -experiment fig4a -scale quick -cpuprofile cpu.pprof -memprofile mem.pprof
//
// With -parallel N the harness fans repetitions out over N goroutines;
// results are byte-identical to a serial run. With -lps N each eligible
// simulation runs on the conservative parallel scheduler — one logical
// process per cluster, lookahead windows, N worker goroutines — and the
// figures are byte-identical to -lps 1 (the serial windowed reference;
// they intentionally differ from -lps 0, the classic event loop, whose
// random streams are not sharded per cluster). With -json the command
// also runs the matching serial reference pass, verifies the parallel
// output matches, and writes a machine-readable benchmark record (wall
// times, events/sec, speedup) to the given path.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"runtime"
	"runtime/debug"
	"runtime/pprof"
	"strings"
	"time"

	"gridmutex"
)

// benchRecord is the machine-readable benchmark result -json emits.
type benchRecord struct {
	// Schema versions the record layout.
	Schema string `json:"schema"`
	// Experiment and Scale echo the command line.
	Experiment string `json:"experiment"`
	Scale      string `json:"scale"`
	// Workers is the resolved -parallel value (GOMAXPROCS substituted for
	// 0 or negative).
	Workers int `json:"workers"`
	// GoMaxProcs and NumCPU record the machine the record was produced
	// on: speedup and events/sec are only comparable across records when
	// the core budgets are (benchcmp scales its expectations by these).
	GoMaxProcs int `json:"gomaxprocs"`
	NumCPU     int `json:"numcpu"`
	// LPs is the -lps value: worker goroutines of the window-barrier
	// scheduler inside each eligible simulation (0 = classic serial
	// event loop).
	LPs int `json:"lps,omitempty"`
	// Cells and Runs count experiment cells and seeded simulations.
	Cells int `json:"cells"`
	Runs  int `json:"runs"`
	// Events is the total DES events processed (one experiment pass).
	Events int64 `json:"events"`
	// WallMS is the wall-clock time of the parallel pass; EventsPerSec its
	// DES throughput.
	WallMS       float64 `json:"wall_ms"`
	EventsPerSec float64 `json:"events_per_sec"`
	// SerialWallMS and Speedup compare against the serial reference pass
	// (present only when workers > 1).
	SerialWallMS float64 `json:"serial_wall_ms,omitempty"`
	Speedup      float64 `json:"speedup,omitempty"`
	// Identical reports whether the parallel figures matched the serial
	// ones byte for byte (always true when the record is written by a
	// successful run; a mismatch aborts with exit 1).
	Identical bool `json:"identical"`
	// Memory holds the per-N machine measurements of the gridscale
	// experiment (absent for other figures). These are machine-dependent
	// by nature — benchcmp holds bytes_per_proc to a ceiling rather than
	// equality.
	Memory []gridmutex.MemSample `json:"memory,omitempty"`
	// Figures holds the rendered figure text keyed by figure name.
	Figures map[string]string `json:"figures"`
}

func main() {
	experiment := flag.String("experiment", "all", "figure to regenerate, or 'all' (one of: all "+strings.Join(gridmutex.Figures(), " ")+")")
	scaleName := flag.String("scale", "paper", "experiment scale: 'paper' (9 Grid5000 clusters, N=180, 100 CS, 10 reps) or 'quick'")
	parallel := flag.Int("parallel", 1, "worker goroutines for repetitions (0 = GOMAXPROCS); results are identical for every value")
	lps := flag.Int("lps", 0, "worker goroutines for the window-barrier scheduler inside each eligible simulation (0 = classic serial event loop); results are identical for every value >= 1")
	jsonPath := flag.String("json", "", "write a machine-readable benchmark record to this path (runs a serial reference pass for comparison when -parallel > 1)")
	quiet := flag.Bool("q", false, "suppress per-cell progress output")
	list := flag.Bool("list", false, "list available experiments and exit")
	cpuProfile := flag.String("cpuprofile", "", "write a CPU profile of the experiment pass to this path")
	memProfile := flag.String("memprofile", "", "write a heap profile taken after the experiment pass to this path")
	gcPercent := flag.Int("gcpercent", 400, "runtime GC target percentage; simulation heaps are small and short-lived, so a target above the default 100 trades a few MB of headroom for far fewer collection cycles")
	flag.Parse()

	if *gcPercent > 0 {
		debug.SetGCPercent(*gcPercent)
	}

	if *list {
		for _, f := range gridmutex.Figures() {
			d, _ := gridmutex.DescribeFigure(f)
			fmt.Printf("%-10s %s\n", f, d)
		}
		return
	}

	var scale gridmutex.ExperimentScale
	switch *scaleName {
	case "paper":
		scale = gridmutex.ScalePaper
	case "quick":
		scale = gridmutex.ScaleQuick
	default:
		fmt.Fprintf(os.Stderr, "gridbench: unknown scale %q (want paper or quick)\n", *scaleName)
		os.Exit(2)
	}

	progress := func(line string) { fmt.Fprintln(os.Stderr, line) }
	if *quiet {
		progress = nil
	}

	run := func(workers, lpWorkers int, prog func(string)) (map[string]string, gridmutex.RunInfo, time.Duration, error) {
		opt := gridmutex.RunOptions{Workers: workers, LPs: lpWorkers}
		start := time.Now()
		var figs map[string]string
		var info gridmutex.RunInfo
		var err error
		if *experiment == "all" {
			figs, info, err = gridmutex.ReproduceAllWith(scale, opt, prog)
		} else {
			var tab string
			tab, info, err = gridmutex.ReproduceFigureWith(*experiment, scale, opt, prog)
			figs = map[string]string{*experiment: tab}
		}
		return figs, info, time.Since(start), err
	}

	if *cpuProfile != "" {
		f, err := os.Create(*cpuProfile)
		if err != nil {
			fmt.Fprintln(os.Stderr, "gridbench:", err)
			os.Exit(1)
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			fmt.Fprintln(os.Stderr, "gridbench:", err)
			os.Exit(1)
		}
	}

	figs, info, wall, err := run(*parallel, *lps, progress)

	if *cpuProfile != "" {
		pprof.StopCPUProfile()
	}
	if *memProfile != "" {
		f, merr := os.Create(*memProfile)
		if merr != nil {
			fmt.Fprintln(os.Stderr, "gridbench:", merr)
			os.Exit(1)
		}
		runtime.GC() // settle live-heap accounting before the snapshot
		if merr := pprof.WriteHeapProfile(f); merr != nil {
			fmt.Fprintln(os.Stderr, "gridbench:", merr)
			os.Exit(1)
		}
		f.Close()
	}

	if err != nil {
		fmt.Fprintln(os.Stderr, "gridbench:", err)
		os.Exit(1)
	}

	if *jsonPath != "" {
		workers := *parallel
		if workers <= 0 {
			workers = runtime.GOMAXPROCS(0)
		}
		rec := benchRecord{
			Schema:     "gridbench/1",
			Experiment: *experiment,
			Scale:      *scaleName,
			Workers:    workers,
			GoMaxProcs: runtime.GOMAXPROCS(0),
			NumCPU:     runtime.NumCPU(),
			LPs:        *lps,
			Cells:      info.Cells,
			Runs:       info.Runs,
			Events:     info.Events,
			WallMS:     float64(wall) / float64(time.Millisecond),
			Identical:  true,
			Memory:     info.Memory,
			Figures:    figs,
		}
		if wall > 0 {
			rec.EventsPerSec = float64(info.Events) / wall.Seconds()
		}
		if workers > 1 || *lps > 1 {
			// Serial reference pass: same experiment, one repetition worker
			// and (when the window scheduler is on) one LP worker. The
			// figures must match byte for byte — that is the whole
			// deterministic-merge contract, on both axes of parallelism.
			refLPs := *lps
			if refLPs > 1 {
				refLPs = 1
			}
			serialFigs, _, serialWall, err := run(1, refLPs, nil)
			if err != nil {
				fmt.Fprintln(os.Stderr, "gridbench: serial reference pass:", err)
				os.Exit(1)
			}
			for name, tab := range figs {
				if serialFigs[name] != tab {
					fmt.Fprintf(os.Stderr, "gridbench: parallel output for %s differs from serial reference\n", name)
					os.Exit(1)
				}
			}
			rec.SerialWallMS = float64(serialWall) / float64(time.Millisecond)
			if wall > 0 {
				rec.Speedup = float64(serialWall) / float64(wall)
			}
		}
		buf, err := json.MarshalIndent(rec, "", "  ")
		if err != nil {
			fmt.Fprintln(os.Stderr, "gridbench:", err)
			os.Exit(1)
		}
		buf = append(buf, '\n')
		if err := os.WriteFile(*jsonPath, buf, 0o644); err != nil {
			fmt.Fprintln(os.Stderr, "gridbench:", err)
			os.Exit(1)
		}
		fmt.Fprintf(os.Stderr, "gridbench: wrote %s (%d cells, %d runs, %d events, %.0f ms)\n",
			*jsonPath, rec.Cells, rec.Runs, rec.Events, rec.WallMS)
	}

	if *experiment == "all" {
		for _, f := range gridmutex.Figures() {
			fmt.Println(figs[f])
		}
		return
	}
	fmt.Println(figs[*experiment])
}
