// Command gridbench regenerates the paper's evaluation figures.
//
// Every table and figure of the evaluation section maps to an experiment:
//
//	fig3   Grid5000 RTT matrix (input data, encoded verbatim)
//	fig4a  obtaining time vs rho (original Naimi vs compositions)
//	fig4b  inter-cluster messages per CS vs rho
//	fig5a  obtaining time standard deviation vs rho
//	fig5b  obtaining time relative standard deviation vs rho
//	fig6a  intra algorithm choice: obtaining time
//	fig6b  intra algorithm choice: standard deviation
//	scale  section 4.7 scalability discussion
//	adaptive  section 6 future work: adaptive inter algorithm
//
// Usage:
//
//	gridbench -experiment all -scale paper
//	gridbench -experiment fig4a -scale quick
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"gridmutex"
)

func main() {
	experiment := flag.String("experiment", "all", "figure to regenerate, or 'all' (one of: all "+strings.Join(gridmutex.Figures(), " ")+")")
	scaleName := flag.String("scale", "paper", "experiment scale: 'paper' (9 Grid5000 clusters, N=180, 100 CS, 10 reps) or 'quick'")
	quiet := flag.Bool("q", false, "suppress per-cell progress output")
	list := flag.Bool("list", false, "list available experiments and exit")
	flag.Parse()

	if *list {
		for _, f := range gridmutex.Figures() {
			d, _ := gridmutex.DescribeFigure(f)
			fmt.Printf("%-10s %s\n", f, d)
		}
		return
	}

	var scale gridmutex.ExperimentScale
	switch *scaleName {
	case "paper":
		scale = gridmutex.ScalePaper
	case "quick":
		scale = gridmutex.ScaleQuick
	default:
		fmt.Fprintf(os.Stderr, "gridbench: unknown scale %q (want paper or quick)\n", *scaleName)
		os.Exit(2)
	}

	progress := func(line string) { fmt.Fprintln(os.Stderr, line) }
	if *quiet {
		progress = nil
	}

	if *experiment == "all" {
		tabs, err := gridmutex.ReproduceAll(scale, progress)
		if err != nil {
			fmt.Fprintln(os.Stderr, "gridbench:", err)
			os.Exit(1)
		}
		for _, f := range gridmutex.Figures() {
			fmt.Println(tabs[f])
		}
		return
	}

	tab, err := gridmutex.ReproduceFigure(*experiment, scale, progress)
	if err != nil {
		fmt.Fprintln(os.Stderr, "gridbench:", err)
		os.Exit(1)
	}
	fmt.Println(tab)
}
