// Command gridsim runs one simulated deployment and prints its metrics:
// a scriptable single cell of the paper's experiment grid.
//
// Examples:
//
//	gridsim -intra naimi -inter martin -rho 180
//	gridsim -flat suzuki -clusters 5 -apps 10 -rho 50 -reps 3
//	gridsim -intra naimi -inter suzuki -grid5000 -rho 540 -json
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"time"

	"gridmutex/internal/core"
	"gridmutex/internal/des"
	"gridmutex/internal/harness"
	"gridmutex/internal/simnet"
	"gridmutex/internal/topology"
	"gridmutex/internal/trace"
	"gridmutex/internal/workload"
)

func main() {
	var (
		intra    = flag.String("intra", "naimi", "intra-cluster algorithm")
		inter    = flag.String("inter", "naimi", "inter-cluster algorithm")
		flat     = flag.String("flat", "", "run a flat original algorithm instead of a composition")
		adaptive = flag.Bool("adaptive", false, "wrap the inter level in the adaptive switching protocol")
		grid5000 = flag.Bool("grid5000", false, "use the paper's measured Grid5000 latency matrix (9 clusters)")
		clusters = flag.Int("clusters", 9, "number of clusters")
		apps     = flag.Int("apps", 20, "application processes per cluster")
		localMS  = flag.Float64("local-rtt", 0.1, "intra-cluster RTT in ms (synthetic topologies)")
		remoteMS = flag.Float64("remote-rtt", 20, "inter-cluster RTT in ms (synthetic topologies)")
		rho      = flag.Float64("rho", 180, "degree of parallelism (beta/alpha)")
		alphaMS  = flag.Float64("alpha", 10, "critical section duration in ms")
		cs       = flag.Int("cs", 100, "critical sections per process")
		reps     = flag.Int("reps", 1, "repetitions to average")
		seed     = flag.Int64("seed", 1, "base random seed")
		jitter   = flag.Float64("jitter", 0.05, "fractional latency jitter")
		matrix   = flag.String("matrix", "", "file with a measured cluster RTT matrix (Figure 3 text format); overrides -grid5000/-clusters")
		loss     = flag.Float64("loss", 0, "probability of dropping each message (requires -reliable to stay live)")
		reliab   = flag.Bool("reliable", false, "add the sequencing/ack/retransmission layer")
		asJSON   = flag.Bool("json", false, "emit the point as JSON")
		traceN   = flag.Int("trace", 0, "run one extra small traced simulation and dump its last N protocol events")
	)
	flag.Parse()

	var customMatrix *topology.Matrix
	if *matrix != "" {
		f, err := os.Open(*matrix)
		if err != nil {
			fmt.Fprintln(os.Stderr, "gridsim:", err)
			os.Exit(1)
		}
		customMatrix, err = topology.ParseMatrixSpec(f)
		f.Close()
		if err != nil {
			fmt.Fprintln(os.Stderr, "gridsim:", err)
			os.Exit(1)
		}
	}

	scale := harness.Scale{
		CustomMatrix:   customMatrix,
		Clusters:       *clusters,
		AppsPerCluster: *apps,
		UseGrid5000:    *grid5000,
		LocalRTT:       time.Duration(*localMS * float64(time.Millisecond)),
		RemoteRTT:      time.Duration(*remoteMS * float64(time.Millisecond)),
		CSPerProcess:   *cs,
		Repetitions:    *reps,
		Rhos:           []float64{*rho},
		Alpha:          time.Duration(*alphaMS * float64(time.Millisecond)),
		BaseSeed:       *seed,
		Jitter:         *jitter,
		Loss:           *loss,
		Reliable:       *reliab,
	}

	var sys harness.System
	switch {
	case *flat != "":
		sys = harness.Flat(*flat)
	case *adaptive:
		sys = harness.Adaptive(*intra, *inter)
	default:
		sys = harness.Composed(*intra, *inter)
	}

	res, err := harness.Run([]harness.System{sys}, scale, nil)
	if err != nil {
		fmt.Fprintln(os.Stderr, "gridsim:", err)
		os.Exit(1)
	}
	p := res.Points[0]

	if *traceN > 0 {
		if err := dumpTrace(*intra, *inter, *rho, *seed, *traceN); err != nil {
			fmt.Fprintln(os.Stderr, "gridsim:", err)
			os.Exit(1)
		}
	}

	if *asJSON {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(p); err != nil {
			fmt.Fprintln(os.Stderr, "gridsim:", err)
			os.Exit(1)
		}
		return
	}

	fmt.Printf("system:                 %s\n", p.System)
	fmt.Printf("N (apps):               %d\n", scale.N())
	fmt.Printf("rho:                    %g  (N=%d: low<=N, intermediate<=3N, high>=3N)\n", p.Rho, scale.N())
	fmt.Printf("grants:                 %d\n", p.Grants)
	fmt.Printf("obtaining mean:         %.3f ms\n", p.Obtaining.Mean)
	fmt.Printf("obtaining std dev:      %.3f ms\n", p.Obtaining.Std)
	fmt.Printf("obtaining rel std dev:  %.3f\n", p.Obtaining.RelStd)
	fmt.Printf("obtaining p50/p95/p99:  %.3f / %.3f / %.3f ms\n", p.Obtaining.P50, p.Obtaining.P95, p.Obtaining.P99)
	fmt.Printf("inter-cluster msgs/CS:  %.3f\n", p.InterMsgsPerCS)
	fmt.Printf("intra-cluster msgs/CS:  %.3f\n", p.IntraMsgsPerCS)
	fmt.Printf("total msgs/CS:          %.3f\n", p.TotalMsgsPerCS)
	fmt.Printf("inter-cluster bytes/CS: %.1f\n", p.InterBytesPerCS)
	if sys.AdaptiveInter {
		fmt.Printf("adaptive switches:      %d\n", p.Switches)
	}
}

// dumpTrace runs a small traced deployment and prints its last n protocol
// events — a quick way to watch the composition work.
func dumpTrace(intra, inter string, rho float64, seed int64, n int) error {
	sim := des.New()
	grid := topology.Uniform(2, 3, time.Millisecond, 15*time.Millisecond)
	tr := trace.New(sim.Now, n)
	net := simnet.New(sim, grid, simnet.Options{Seed: seed, Trace: tr})
	runner, err := workload.NewRunner(sim, workload.Params{
		Alpha: 5 * time.Millisecond, Rho: rho / 10, Dist: workload.Exponential,
		CSPerProcess: 3, Seed: seed,
	}, nil)
	if err != nil {
		return err
	}
	d, err := core.BuildComposed(net, grid, core.Spec{Intra: intra, Inter: inter}, runner.Callbacks)
	if err != nil {
		return err
	}
	for _, c := range d.Coordinators {
		c := c
		c.SetObserver(func(from, to core.CoordinatorState) {
			tr.Record(trace.CoordState, c.ID(), -1, from.String()+"->"+to.String())
		})
	}
	runner.Bind(d.Apps)
	runner.Start()
	if err := sim.RunCapped(1_000_000); err != nil {
		return err
	}
	fmt.Fprintf(os.Stderr, "--- trace of a 2x2 %s-%s run (last %d events) ---\n", intra, inter, n)
	fmt.Fprint(os.Stderr, tr.Dump())
	fmt.Fprintln(os.Stderr, "---")
	return nil
}
