// Command gridnode runs a live composed deployment over loopback UDP
// sockets — one socket per process, mirroring the paper's C/UDP
// implementation — and drives a lock/unlock workload through it, printing
// per-process grant counts and latency percentiles.
//
// Example:
//
//	gridnode -clusters 3 -apps 4 -intra naimi -inter suzuki -cs 50
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"sort"
	"sync"
	"time"

	"gridmutex"
)

func main() {
	var (
		clusters = flag.Int("clusters", 3, "number of clusters")
		apps     = flag.Int("apps", 4, "application processes per cluster")
		intra    = flag.String("intra", "naimi", "intra-cluster algorithm")
		inter    = flag.String("inter", "naimi", "inter-cluster algorithm")
		cs       = flag.Int("cs", 25, "critical sections per process")
		holdUS   = flag.Int("hold", 200, "critical section hold time in microseconds")
		basePort = flag.Int("port", 0, "UDP base port (0 = ephemeral)")
		timeout  = flag.Duration("timeout", 2*time.Minute, "per-lock timeout")
	)
	flag.Parse()

	g, err := gridmutex.New(gridmutex.Config{
		Clusters:       *clusters,
		AppsPerCluster: *apps,
		Intra:          *intra,
		Inter:          *inter,
		Transport:      gridmutex.UDP,
		UDPBasePort:    *basePort,
	})
	if err != nil {
		fmt.Fprintln(os.Stderr, "gridnode:", err)
		os.Exit(1)
	}
	defer g.Close()

	fmt.Printf("gridnode: %d clusters x %d apps over UDP, %s-%s, %d CS each\n",
		*clusters, *apps, *intra, *inter, *cs)

	type result struct {
		app       int
		latencies []time.Duration
	}
	results := make([]result, g.Apps())
	var wg sync.WaitGroup
	var mu sync.Mutex
	shared := 0 // protected by the distributed lock
	start := time.Now()

	for i := 0; i < g.Apps(); i++ {
		i := i
		m := g.Mutex(i)
		wg.Add(1)
		go func() {
			defer wg.Done()
			lat := make([]time.Duration, 0, *cs)
			for k := 0; k < *cs; k++ {
				ctx, cancel := context.WithTimeout(context.Background(), *timeout)
				t0 := time.Now()
				if err := m.Lock(ctx); err != nil {
					cancel()
					fmt.Fprintf(os.Stderr, "gridnode: app %d lock: %v\n", i, err)
					os.Exit(1)
				}
				lat = append(lat, time.Since(t0))
				cancel()
				shared++ // safe: we hold the grid-wide lock
				if *holdUS > 0 {
					time.Sleep(time.Duration(*holdUS) * time.Microsecond)
				}
				m.Unlock()
			}
			mu.Lock()
			results[i] = result{app: i, latencies: lat}
			mu.Unlock()
		}()
	}
	wg.Wait()
	elapsed := time.Since(start)

	total := g.Apps() * *cs
	if shared != total {
		fmt.Fprintf(os.Stderr, "gridnode: MUTUAL EXCLUSION VIOLATED: counter %d, want %d\n", shared, total)
		os.Exit(1)
	}

	fmt.Printf("completed %d critical sections in %v (%.0f CS/s); counter verified = %d\n",
		total, elapsed.Round(time.Millisecond), float64(total)/elapsed.Seconds(), shared)
	fmt.Printf("%6s %8s %12s %12s %12s\n", "app", "cluster", "p50", "p95", "max")
	for _, r := range results {
		sort.Slice(r.latencies, func(a, b int) bool { return r.latencies[a] < r.latencies[b] })
		p := func(q float64) time.Duration {
			idx := int(q * float64(len(r.latencies)-1))
			return r.latencies[idx].Round(time.Microsecond)
		}
		fmt.Printf("%6d %8d %12v %12v %12v\n", r.app, g.ClusterOf(r.app), p(0.5), p(0.95), p(1))
	}
}
