// Command gridnode runs a live composed deployment over loopback UDP
// sockets — one socket per process, mirroring the paper's C/UDP
// implementation — and drives a lock/unlock workload through it, printing
// per-process grant counts and latency percentiles.
//
// SIGINT or SIGTERM shuts down gracefully: no new critical sections are
// admitted, in-flight lock requests drain to completion, sockets close
// cleanly, and partial results are reported. A second signal forces an
// immediate exit.
//
// Example:
//
//	gridnode -clusters 3 -apps 4 -intra naimi -inter suzuki -cs 50
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"sort"
	"sync"
	"syscall"
	"time"

	"gridmutex"
)

func main() {
	var (
		clusters = flag.Int("clusters", 3, "number of clusters")
		apps     = flag.Int("apps", 4, "application processes per cluster")
		intra    = flag.String("intra", "naimi", "intra-cluster algorithm")
		inter    = flag.String("inter", "naimi", "inter-cluster algorithm")
		cs       = flag.Int("cs", 25, "critical sections per process")
		holdUS   = flag.Int("hold", 200, "critical section hold time in microseconds")
		basePort = flag.Int("port", 0, "UDP base port (0 = ephemeral)")
		timeout  = flag.Duration("timeout", 2*time.Minute, "per-lock timeout")
	)
	flag.Parse()

	g, err := gridmutex.New(gridmutex.Config{
		Clusters:       *clusters,
		AppsPerCluster: *apps,
		Intra:          *intra,
		Inter:          *inter,
		Transport:      gridmutex.UDP,
		UDPBasePort:    *basePort,
	})
	if err != nil {
		fmt.Fprintln(os.Stderr, "gridnode:", err)
		os.Exit(1)
	}

	fmt.Printf("gridnode: %d clusters x %d apps over UDP, %s-%s, %d CS each\n",
		*clusters, *apps, *intra, *inter, *cs)

	// Graceful shutdown: the first SIGINT/SIGTERM stops workers from
	// admitting new critical sections; lock requests already submitted to
	// the composition drain normally (the token keeps circulating until
	// every queued requester has been served). A second signal aborts.
	stop := make(chan struct{})
	sigc := make(chan os.Signal, 2)
	signal.Notify(sigc, os.Interrupt, syscall.SIGTERM)
	go func() {
		s := <-sigc
		fmt.Fprintf(os.Stderr, "\ngridnode: %v: draining in-flight critical sections (signal again to force quit)\n", s)
		close(stop)
		s = <-sigc
		fmt.Fprintf(os.Stderr, "gridnode: %v: forced exit\n", s)
		os.Exit(130)
	}()

	type result struct {
		app       int
		latencies []time.Duration
		err       error
	}
	results := make([]result, g.Apps())
	var wg sync.WaitGroup
	var mu sync.Mutex
	shared := 0 // protected by the distributed lock
	start := time.Now()

	for i := 0; i < g.Apps(); i++ {
		i := i
		m := g.Mutex(i)
		wg.Add(1)
		go func() {
			defer wg.Done()
			r := result{app: i}
			for k := 0; k < *cs; k++ {
				select {
				case <-stop:
					k = *cs // stop admitting new critical sections
					continue
				default:
				}
				ctx, cancel := context.WithTimeout(context.Background(), *timeout)
				t0 := time.Now()
				if err := m.Lock(ctx); err != nil {
					cancel()
					r.err = fmt.Errorf("lock: %w", err)
					break
				}
				r.latencies = append(r.latencies, time.Since(t0))
				cancel()
				shared++ // safe: we hold the grid-wide lock
				if *holdUS > 0 {
					time.Sleep(time.Duration(*holdUS) * time.Microsecond)
				}
				m.Unlock()
			}
			mu.Lock()
			results[i] = r
			mu.Unlock()
		}()
	}
	wg.Wait()
	signal.Stop(sigc)
	elapsed := time.Since(start)

	// Sockets close before any exit below so the UDP ports free up even on
	// the failure paths.
	g.Close()

	for _, r := range results {
		if r.err != nil {
			fmt.Fprintf(os.Stderr, "gridnode: app %d %v\n", r.app, r.err)
			os.Exit(1)
		}
	}

	total := g.Apps() * *cs
	completed := 0
	for _, r := range results {
		completed += len(r.latencies)
	}
	if shared != completed {
		fmt.Fprintf(os.Stderr, "gridnode: MUTUAL EXCLUSION VIOLATED: counter %d, want %d\n", shared, completed)
		os.Exit(1)
	}

	if completed < total {
		fmt.Printf("interrupted: completed %d of %d critical sections in %v; counter verified = %d\n",
			completed, total, elapsed.Round(time.Millisecond), shared)
	} else {
		fmt.Printf("completed %d critical sections in %v (%.0f CS/s); counter verified = %d\n",
			total, elapsed.Round(time.Millisecond), float64(total)/elapsed.Seconds(), shared)
	}
	fmt.Printf("%6s %8s %12s %12s %12s\n", "app", "cluster", "p50", "p95", "max")
	for _, r := range results {
		if len(r.latencies) == 0 {
			fmt.Printf("%6d %8d %12s %12s %12s\n", r.app, g.ClusterOf(r.app), "-", "-", "-")
			continue
		}
		sort.Slice(r.latencies, func(a, b int) bool { return r.latencies[a] < r.latencies[b] })
		p := func(q float64) time.Duration {
			idx := int(q * float64(len(r.latencies)-1))
			return r.latencies[idx].Round(time.Microsecond)
		}
		fmt.Printf("%6d %8d %12v %12v %12v\n", r.app, g.ClusterOf(r.app), p(0.5), p(0.95), p(1))
	}
}
