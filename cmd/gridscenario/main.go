// Command gridscenario runs declarative conformance scenarios
// (internal/scenario): each *.yaml file declares a topology, workload,
// fault schedule, system under test and expectation block; the engine
// runs it deterministically and judges the verdict.
//
// Usage:
//
//	gridscenario testdata/scenarios            # sweep a corpus directory
//	gridscenario testdata/scenarios/foo.yaml   # run one file
//	gridscenario -json testdata/scenarios      # machine-readable verdicts
//	gridscenario -workers 1 -v path...         # serial, verbose
//
// Directories are swept non-recursively over their *.yaml files in name
// order; results print in input order regardless of -workers, so output
// is byte-identical for every worker count.
//
// Exit status: 0 all verdicts pass, 1 any verdict fails, 2 load or usage
// errors.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"

	"gridmutex/internal/scenario"
)

func main() { os.Exit(run(os.Args[1:], os.Stdout)) }

func run(args []string, stdout *os.File) int {
	fs := flag.NewFlagSet("gridscenario", flag.ExitOnError)
	jsonOut := fs.Bool("json", false, "emit verdicts as a JSON array")
	workers := fs.Int("workers", 0, "concurrent runs (0 = GOMAXPROCS, 1 = serial)")
	lps := fs.Int("lps", 0, "worker goroutines for the window-barrier scheduler inside each eligible scenario (0 = classic serial event loop); verdicts are identical for every value >= 1")
	verbose := fs.Bool("v", false, "print every check, not only failures")
	fs.Usage = func() {
		fmt.Fprintln(os.Stderr, "usage: gridscenario [-json] [-workers N] [-lps N] [-v] <file-or-dir>...")
		fs.PrintDefaults()
	}
	if err := fs.Parse(args); err != nil {
		return 2
	}
	if fs.NArg() == 0 {
		fs.Usage()
		return 2
	}

	var scenarios []*scenario.Scenario
	for _, path := range fs.Args() {
		info, err := os.Stat(path)
		if err != nil {
			fmt.Fprintf(os.Stderr, "gridscenario: %v\n", err)
			return 2
		}
		if info.IsDir() {
			scs, err := scenario.LoadDir(path)
			if err != nil {
				fmt.Fprintf(os.Stderr, "gridscenario: %v\n", err)
				return 2
			}
			scenarios = append(scenarios, scs...)
		} else {
			sc, err := scenario.LoadFile(path)
			if err != nil {
				fmt.Fprintf(os.Stderr, "gridscenario: %v\n", err)
				return 2
			}
			scenarios = append(scenarios, sc)
		}
	}

	results, err := scenario.RunAll(scenarios, *workers, scenario.Options{LPs: *lps})
	if err != nil {
		fmt.Fprintf(os.Stderr, "gridscenario: %v\n", err)
		return 2
	}

	failed := 0
	for _, r := range results {
		if !r.Verdict.Pass {
			failed++
		}
	}
	if *jsonOut {
		verdicts := make([]*scenario.Verdict, len(results))
		for i := range results {
			verdicts[i] = &results[i].Verdict
		}
		enc := json.NewEncoder(stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(verdicts); err != nil {
			fmt.Fprintf(os.Stderr, "gridscenario: %v\n", err)
			return 2
		}
	} else {
		for _, r := range results {
			fmt.Fprint(stdout, r.Verdict.String())
			if *verbose {
				for _, c := range r.Verdict.Checks {
					if c.Pass {
						fmt.Fprintf(stdout, "  pass %s\n", c.Name)
					}
				}
				for _, m := range r.Verdict.Metrics {
					fmt.Fprintf(stdout, "       %-24s %g\n", m.Name, m.Value)
				}
			}
		}
		fmt.Fprintf(stdout, "%d scenarios, %d failed\n", len(results), failed)
	}
	if failed > 0 {
		return 1
	}
	return 0
}
