#!/usr/bin/env bash
# ci.sh is the repository's CI gate: build, vet, the full test suite under
# the race detector, and gridlint — the determinism/concurrency analyzer
# suite (cmd/gridlint, see DESIGN.md "Determinism rules"). Everything must
# pass with no findings for a change to land.
set -euo pipefail
cd "$(dirname "$0")/.."

echo "==> go build ./..."
go build ./...

echo "==> go vet ./..."
go vet ./...

echo "==> go test -race ./..."
go test -race ./...

echo "==> bounded schedule exploration (GRIDMUTEX_EXPLORE_LONG=1 for exhaustive)"
go test -race -run 'TestExplore' ./internal/explore/ ./internal/algorithms/ ./internal/core/

echo "==> bounded crash exploration (fail-stop safety under MaxCrashes)"
go test -race -run 'TestCrash' ./internal/explore/

echo "==> bounded crash->restart and partition exploration (safety-only resync-epoch model)"
# Every ordering of one crash, one amnesiac restart (rejoin resync epoch:
# global rebuild, epoch fence, claim never resurrected) and of one
# single-node cut plus heal must preserve mutual exclusion; liveness is
# out of scope because a dead or cut-off token legitimately stalls the
# raw algorithms (recovering is internal/recovery's job).
go test -race -run 'TestRestart|TestPartition|TestFaultExplore' ./internal/explore/

echo "==> crash-recovery subsystem under -race"
go test -race ./internal/recovery/ ./internal/faults/

echo "==> parallel harness equivalence under -race (incl. single-cell + recovery shards)"
go test -race -run 'TestParallel|TestMap' ./internal/harness/ ./internal/fleet/

echo "==> LP-equivalence under -race: window-barrier scheduler byte-identical for 1 vs N workers"
# The conservative parallel DES (DESIGN.md §12): one logical process per
# cluster, lookahead windows from the topology's minimum inter-cluster
# one-way delay. The harness and scenario identity tests assert traces,
# records, counters and verdicts match byte for byte across LP worker
# counts, with the race detector certifying the window fan-out.
go test -race -run 'TestLP' -count=1 ./internal/harness/ ./internal/scenario/ ./internal/des/ ./internal/simnet/

echo "==> allocation regression: steady-state send/deliver must stay <= 1 alloc/message"
go test -run 'Allocs' ./internal/des/ ./internal/simnet/

echo "==> benchmark guard: regenerate fig4a into a temp record, compare against committed BENCH_5.json"
# BENCH_3.json is the committed pre-optimization record and BENCH_5.json
# the committed post-optimization one (DESIGN.md §10). Neither is
# rewritten here: the fresh run lands in a temp file and benchcmp checks
# it reproduces the committed record byte for byte (figures, event
# count) with throughput above an environment-tunable floor
# (BENCHCMP_TOLERANCE) — so the audited records stay fixed and the
# worktree stays clean.
bench_tmp="$(mktemp -t bench5.XXXXXX.json)"
trap 'rm -f "$bench_tmp"' EXIT
go run ./cmd/gridbench -experiment fig4a -scale quick -parallel 4 -json "$bench_tmp" -q >/dev/null
go run ./cmd/benchcmp -baseline BENCH_5.json -fresh "$bench_tmp"

echo "==> benchmark guard: window scheduler fig4a vs committed BENCH_8.json"
# BENCH_8.json is the committed window-scheduler record (-lps 4). The
# same figures must reproduce from a fresh -lps 4 run AND from a serial
# -lps 1 run — the records are byte-identical for every LP worker count,
# which is the scheduler's whole determinism contract.
bench8_tmp="$(mktemp -t bench8.XXXXXX.json)"
trap 'rm -f "$bench_tmp" "$bench8_tmp"' EXIT
go run ./cmd/gridbench -experiment fig4a -scale quick -lps 4 -json "$bench8_tmp" -q >/dev/null
go run ./cmd/benchcmp -baseline BENCH_8.json -fresh "$bench8_tmp"
go run ./cmd/gridbench -experiment fig4a -scale quick -lps 1 -json "$bench8_tmp" -q >/dev/null
go run ./cmd/benchcmp -baseline BENCH_8.json -fresh "$bench8_tmp"

echo "==> memory guard: grid-scale sweep vs committed BENCH_10.json"
# BENCH_10.json is the committed grid-scale record (DESIGN.md §14): a
# k-level hierarchy swept over N = 100 .. 100,000 processes. benchcmp
# holds the fresh run to three properties — the deterministic sweep
# figure byte for byte, throughput above the machine-scaled floor, and
# bytes-per-process at every N under a ceiling (BENCHCMP_MEM_TOLERANCE)
# so a reintroduced O(N) or O(C^2) term in the simulator's per-process
# state fails CI long before it would fail a real deployment.
bench10_tmp="$(mktemp -t bench10.XXXXXX.json)"
trap 'rm -f "$bench_tmp" "$bench8_tmp" "$bench10_tmp"' EXIT
go run ./cmd/gridbench -experiment gridscale -scale paper -json "$bench10_tmp" -q >/dev/null
go run ./cmd/benchcmp -baseline BENCH_10.json -fresh "$bench10_tmp"

echo "==> scenario conformance corpus (parallel sweep under -race, JSON verdicts archived)"
# The declarative acceptance suite (DESIGN.md §11): every fixture under
# testdata/scenarios/ must produce a passing verdict, swept in parallel so
# the race detector sees the fleet fan-out. The JSON verdict dump is the
# CI artifact — byte-identical across runs by the determinism contract,
# so a diff against a previous run pinpoints exactly which invariant or
# metric moved.
go test -race -run 'TestCorpus|TestBroken|TestVerdictDeterminism|TestParallelCorpus' -count=1 ./internal/scenario/
go run ./cmd/gridscenario -json testdata/scenarios > scenario-verdicts.json
# The committed broken fixtures must FAIL (exit 1) and name their
# offending invariant — proving the checker library can reject, not just
# rubber-stamp. An exit status of 0 here is itself the failure.
if go run ./cmd/gridscenario testdata/scenarios/broken >/dev/null 2>&1; then
    echo "ci: broken scenario fixtures unexpectedly passed" >&2
    exit 1
fi

echo "==> fuzz targets, 10s each"
go test -fuzz=FuzzDecode -fuzztime=10s -run '^$' ./internal/livenet/wire
go test -fuzz=FuzzLoad -fuzztime=10s -run '^$' ./internal/topology
go test -fuzz=FuzzLoadScenario -fuzztime=10s -run '^$' ./internal/scenario

echo "==> gridlint (whole program: per-package + cross-package taint/alloc analyzers)"
# One program over internal/... and cmd/... so the call-graph analyzers
# see every cross-package edge; the JSON artifact keeps call chains for
# findings machine-readable.
go run ./cmd/gridlint -json ./internal/... ./cmd/... > gridlint.json || {
    cat gridlint.json
    echo "gridlint: non-exempt findings (see gridlint.json)" >&2
    exit 1
}

echo "==> gridlint exemption audit: every //lint:allow must be live, known, and reasoned"
go run ./cmd/gridlint -audit ./internal/... ./cmd/...

echo "CI green"
