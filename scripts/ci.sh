#!/usr/bin/env bash
# ci.sh is the repository's CI gate: build, vet, the full test suite under
# the race detector, and gridlint — the determinism/concurrency analyzer
# suite (cmd/gridlint, see DESIGN.md "Determinism rules"). Everything must
# pass with no findings for a change to land.
set -euo pipefail
cd "$(dirname "$0")/.."

echo "==> go build ./..."
go build ./...

echo "==> go vet ./..."
go vet ./...

echo "==> go test -race ./..."
go test -race ./...

echo "==> bounded schedule exploration (GRIDMUTEX_EXPLORE_LONG=1 for exhaustive)"
go test -race -run 'TestExplore' ./internal/explore/ ./internal/algorithms/ ./internal/core/

echo "==> bounded crash exploration (fail-stop safety under MaxCrashes)"
go test -race -run 'TestCrash' ./internal/explore/

echo "==> crash-recovery subsystem under -race"
go test -race ./internal/recovery/ ./internal/faults/

echo "==> parallel harness equivalence under -race (incl. single-cell + recovery shards)"
go test -race -run 'TestParallel|TestMap' ./internal/harness/ ./internal/fleet/

echo "==> allocation regression: steady-state send/deliver must stay <= 1 alloc/message"
go test -run 'Allocs' ./internal/des/ ./internal/simnet/

echo "==> benchmark record (BENCH_5.json): parallel vs serial figure regeneration"
# BENCH_3.json is the committed pre-optimization record; BENCH_5.json is
# regenerated here so the hot-path speedup (DESIGN.md §10) stays auditable.
go run ./cmd/gridbench -experiment fig4a -scale quick -parallel 4 -json BENCH_5.json -q >/dev/null

echo "==> fuzz targets, 10s each"
go test -fuzz=FuzzDecode -fuzztime=10s -run '^$' ./internal/livenet/wire
go test -fuzz=FuzzLoad -fuzztime=10s -run '^$' ./internal/topology

echo "==> gridlint ./..."
go run ./cmd/gridlint ./...

echo "CI green"
