module gridmutex

go 1.22
