// Package trace records structured protocol events — message sends,
// deliveries, critical section transitions, coordinator state changes —
// into a bounded ring buffer that can be dumped as text. Tracing is how a
// production operator reconstructs a token's journey after the fact:
// every event carries the virtual (or wall) timestamp of the clock the
// tracer was built with.
//
// A nil *Tracer is valid and records nothing, so call sites never need to
// guard their hooks.
package trace

import (
	"fmt"
	"strings"
	"time"

	"gridmutex/internal/mutex"
)

// Kind classifies an event.
type Kind uint8

const (
	// Send: a message left a process.
	Send Kind = iota
	// Deliver: a message reached its destination process.
	Deliver
	// Acquire: a process entered the critical section.
	Acquire
	// Release: a process left the critical section.
	Release
	// CoordState: a coordinator changed automaton state.
	CoordState
	// Custom: free-form annotation.
	Custom
)

// String names the kind.
func (k Kind) String() string {
	switch k {
	case Send:
		return "send"
	case Deliver:
		return "deliver"
	case Acquire:
		return "acquire"
	case Release:
		return "release"
	case CoordState:
		return "coord"
	case Custom:
		return "note"
	default:
		return fmt.Sprintf("Kind(%d)", uint8(k))
	}
}

// Event is one recorded protocol occurrence.
type Event struct {
	At   time.Duration
	Kind Kind
	// From and To identify the processes involved (To is None for
	// single-process events).
	From, To mutex.ID
	// Detail is the message kind, state name, or annotation.
	Detail string
}

// String renders the event as one log line.
func (e Event) String() string {
	switch e.Kind {
	case Send, Deliver:
		return fmt.Sprintf("%12v %-8s %4d -> %-4d %s", e.At, e.Kind, e.From, e.To, e.Detail)
	default:
		return fmt.Sprintf("%12v %-8s %4d         %s", e.At, e.Kind, e.From, e.Detail)
	}
}

// Tracer is a bounded ring buffer of events. It is not safe for
// concurrent use; on live transports wrap it or trace per process.
type Tracer struct {
	clock   func() time.Duration
	cap     int
	events  []Event
	start   int
	dropped int64
}

// New creates a tracer reading timestamps from clock and retaining the
// last capacity events.
func New(clock func() time.Duration, capacity int) *Tracer {
	if clock == nil {
		panic("trace: nil clock")
	}
	if capacity <= 0 {
		panic("trace: non-positive capacity")
	}
	return &Tracer{clock: clock, cap: capacity}
}

// Record appends an event; nil tracers ignore it.
func (t *Tracer) Record(kind Kind, from, to mutex.ID, detail string) {
	if t == nil {
		return
	}
	e := Event{At: t.clock(), Kind: kind, From: from, To: to, Detail: detail}
	if len(t.events) < t.cap {
		t.events = append(t.events, e)
		return
	}
	t.events[t.start] = e
	t.start = (t.start + 1) % t.cap
	t.dropped++
}

// Len returns how many events are retained.
func (t *Tracer) Len() int {
	if t == nil {
		return 0
	}
	return len(t.events)
}

// Dropped returns how many events were evicted by the ring.
func (t *Tracer) Dropped() int64 {
	if t == nil {
		return 0
	}
	return t.dropped
}

// Events returns the retained events in chronological order.
func (t *Tracer) Events() []Event {
	if t == nil {
		return nil
	}
	out := make([]Event, 0, len(t.events))
	out = append(out, t.events[t.start:]...)
	out = append(out, t.events[:t.start]...)
	return out
}

// Dump renders the retained events as text, one line each.
func (t *Tracer) Dump() string {
	if t == nil {
		return ""
	}
	var b strings.Builder
	if t.dropped > 0 {
		fmt.Fprintf(&b, "(%d earlier events dropped)\n", t.dropped)
	}
	for _, e := range t.Events() {
		b.WriteString(e.String())
		b.WriteByte('\n')
	}
	return b.String()
}

// Merge combines several tracers into one read-only tracer whose events
// are ordered by (timestamp, input index): events at the same instant
// keep the order of the tracers they came from. The window-barrier
// scheduler records per logical process and merges here, so the merged
// dump is a pure function of the inputs — never of goroutine timing.
// Nil tracers in the slice contribute nothing; the result must not be
// Recorded into.
func Merge(ts []*Tracer) *Tracer {
	total := 0
	var dropped int64
	for _, t := range ts {
		total += t.Len()
		dropped += t.Dropped()
	}
	if total == 0 {
		total = 1 // Tracer demands positive capacity
	}
	m := &Tracer{cap: total, dropped: dropped, events: make([]Event, 0, total)}
	// Index-ordered k-way merge: each input is already chronological, so
	// repeatedly taking the earliest head — ties broken by input index —
	// yields a stable global order.
	heads := make([][]Event, 0, len(ts))
	for _, t := range ts {
		if t.Len() > 0 {
			heads = append(heads, t.Events())
		}
	}
	for {
		best := -1
		for i, h := range heads {
			if len(h) == 0 {
				continue
			}
			if best < 0 || h[0].At < heads[best][0].At {
				best = i
			}
		}
		if best < 0 {
			return m
		}
		m.events = append(m.events, heads[best][0])
		heads[best] = heads[best][1:]
	}
}

// Filter returns the retained events matching kind, in order.
func (t *Tracer) Filter(kind Kind) []Event {
	var out []Event
	for _, e := range t.Events() {
		if e.Kind == kind {
			out = append(out, e)
		}
	}
	return out
}
