package trace

import (
	"strings"
	"testing"
	"time"
)

func fixedClock(t time.Duration) func() time.Duration {
	return func() time.Duration { return t }
}

func TestNilTracerIsSafe(t *testing.T) {
	var tr *Tracer
	tr.Record(Send, 1, 2, "x") // must not panic
	if tr.Len() != 0 || tr.Dropped() != 0 || tr.Events() != nil || tr.Dump() != "" {
		t.Fatal("nil tracer not inert")
	}
}

func TestRecordAndDump(t *testing.T) {
	now := time.Duration(0)
	tr := New(func() time.Duration { return now }, 16)
	tr.Record(Send, 1, 2, "naimi.request")
	now = 5 * time.Millisecond
	tr.Record(Deliver, 1, 2, "naimi.request")
	tr.Record(Acquire, 2, -1, "cs")
	tr.Record(CoordState, 0, -1, "OUT->WAIT_FOR_IN")

	if tr.Len() != 4 {
		t.Fatalf("Len = %d", tr.Len())
	}
	dump := tr.Dump()
	for _, want := range []string{"send", "deliver", "acquire", "coord", "naimi.request", "OUT->WAIT_FOR_IN", "5ms"} {
		if !strings.Contains(dump, want) {
			t.Errorf("dump missing %q:\n%s", want, dump)
		}
	}
	events := tr.Events()
	if events[0].At != 0 || events[1].At != 5*time.Millisecond {
		t.Error("timestamps wrong")
	}
}

func TestRingEviction(t *testing.T) {
	tr := New(fixedClock(0), 3)
	for i := 0; i < 10; i++ {
		tr.Record(Custom, 0, -1, strings.Repeat("x", i+1))
	}
	if tr.Len() != 3 {
		t.Fatalf("Len = %d, want 3", tr.Len())
	}
	if tr.Dropped() != 7 {
		t.Fatalf("Dropped = %d, want 7", tr.Dropped())
	}
	events := tr.Events()
	// The last three recorded have detail lengths 8, 9, 10.
	for i, wantLen := range []int{8, 9, 10} {
		if len(events[i].Detail) != wantLen {
			t.Fatalf("event %d detail %q", i, events[i].Detail)
		}
	}
	if !strings.Contains(tr.Dump(), "7 earlier events dropped") {
		t.Error("dump does not mention eviction")
	}
}

func TestFilter(t *testing.T) {
	tr := New(fixedClock(0), 16)
	tr.Record(Send, 0, 1, "a")
	tr.Record(Acquire, 1, -1, "b")
	tr.Record(Send, 1, 0, "c")
	sends := tr.Filter(Send)
	if len(sends) != 2 || sends[0].Detail != "a" || sends[1].Detail != "c" {
		t.Fatalf("Filter(Send) = %+v", sends)
	}
	if len(tr.Filter(Release)) != 0 {
		t.Fatal("phantom releases")
	}
}

func TestKindStrings(t *testing.T) {
	seen := map[string]bool{}
	for _, k := range []Kind{Send, Deliver, Acquire, Release, CoordState, Custom, Kind(99)} {
		s := k.String()
		if s == "" || seen[s] {
			t.Errorf("kind %d has bad/duplicate name %q", k, s)
		}
		seen[s] = true
	}
}

func TestConstructorPanics(t *testing.T) {
	for name, f := range map[string]func(){
		"nil clock":    func() { New(nil, 8) },
		"zero cap":     func() { New(fixedClock(0), 0) },
		"negative cap": func() { New(fixedClock(0), -1) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s did not panic", name)
				}
			}()
			f()
		}()
	}
}

func TestMergeOrdersByTimeThenIndex(t *testing.T) {
	mk := func(ats ...time.Duration) *Tracer {
		tr := New(fixedClock(0), 16)
		for _, at := range ats {
			tr.clock = fixedClock(at)
			tr.Record(Send, 1, 2, "m")
		}
		return tr
	}
	a := mk(1*time.Millisecond, 3*time.Millisecond, 3*time.Millisecond)
	b := mk(2*time.Millisecond, 3*time.Millisecond)
	m := Merge([]*Tracer{a, b, nil})
	got := m.Events()
	want := []time.Duration{1 * time.Millisecond, 2 * time.Millisecond,
		3 * time.Millisecond, 3 * time.Millisecond, 3 * time.Millisecond}
	if len(got) != len(want) {
		t.Fatalf("merged %d events, want %d", len(got), len(want))
	}
	for i, e := range got {
		if e.At != want[i] {
			t.Errorf("event %d at %v, want %v", i, e.At, want[i])
		}
	}
	// The three 3ms events must keep input order: a's two first, then b's.
	if got[2].At != got[3].At || got[3].At != got[4].At {
		t.Fatal("tie events not adjacent")
	}
}

func TestMergeEmpty(t *testing.T) {
	m := Merge(nil)
	if m.Len() != 0 || m.Dump() != "" {
		t.Fatalf("empty merge: len %d dump %q", m.Len(), m.Dump())
	}
	m = Merge([]*Tracer{nil, New(fixedClock(0), 4)})
	if m.Len() != 0 {
		t.Fatalf("merge of empty tracers retained %d events", m.Len())
	}
}
