package topology

import (
	"errors"
	"fmt"
	"io"
	"math"
	"strconv"
	"strings"
	"time"
)

// Matrix is a named cluster-to-cluster RTT matrix not yet bound to node
// counts: the reusable part of a measured topology.
type Matrix struct {
	Names []string
	RTT   [][]time.Duration
}

// Grid instantiates the matrix with nodesPerCluster nodes per cluster.
func (m *Matrix) Grid(nodesPerCluster int) (*Grid, error) {
	if nodesPerCluster <= 0 {
		return nil, fmt.Errorf("topology: nodesPerCluster %d must be positive", nodesPerCluster)
	}
	sizes := make([]int, len(m.Names))
	for i := range sizes {
		sizes[i] = nodesPerCluster
	}
	return New(m.Names, sizes, m.RTT)
}

// ParseMatrix reads a cluster RTT matrix in the textual format of the
// paper's Figure 3 and builds a Grid with nodesPerCluster nodes in each
// cluster:
//
//	# comment lines and blank lines are ignored
//	from      orsay  grenoble  lyon
//	orsay     0.034  15.039    9.128
//	grenoble  14.976 0.066     3.293
//	lyon      9.136  3.309     0.026
//
// The first non-comment line is the header naming the destination
// clusters; each following row starts with the source cluster name and
// lists the RTTs in milliseconds. Row names must match the header order.
// This is how an operator feeds measured latencies from their own grid
// into the simulator.
func ParseMatrix(r io.Reader, nodesPerCluster int) (*Grid, error) {
	m, err := ParseMatrixSpec(r)
	if err != nil {
		return nil, err
	}
	return m.Grid(nodesPerCluster)
}

// ParseMatrixSpec reads the same format as ParseMatrix but returns the
// unbound matrix, letting callers instantiate several grid sizes from one
// measurement file.
func ParseMatrixSpec(r io.Reader) (*Matrix, error) {
	data, err := io.ReadAll(r)
	if err != nil {
		return nil, fmt.Errorf("topology: reading matrix: %w", err)
	}
	var lines []string
	for _, line := range strings.Split(string(data), "\n") {
		line = strings.TrimSpace(line)
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		lines = append(lines, line)
	}
	if len(lines) == 0 {
		return nil, fmt.Errorf("topology: empty matrix")
	}
	header := strings.Fields(lines[0])
	if len(header) < 2 {
		return nil, fmt.Errorf("topology: header %q needs a label and at least one cluster", lines[0])
	}
	names := header[1:]
	seen := make(map[string]bool, len(names))
	for _, n := range names {
		// A name opening with '#' would render as a comment line and a
		// duplicate would make rows ambiguous: neither can round-trip
		// through the file format.
		if strings.HasPrefix(n, "#") {
			return nil, fmt.Errorf("topology: cluster name %q starts with the comment marker", n)
		}
		if seen[n] {
			return nil, fmt.Errorf("topology: duplicate cluster name %q", n)
		}
		seen[n] = true
	}
	if len(lines)-1 != len(names) {
		return nil, fmt.Errorf("topology: %d clusters in header but %d rows", len(names), len(lines)-1)
	}

	rtt := make([][]time.Duration, len(names))
	for i, line := range lines[1:] {
		fields := strings.Fields(line)
		if len(fields) != len(names)+1 {
			return nil, fmt.Errorf("topology: row %q has %d values, want %d", line, len(fields)-1, len(names))
		}
		if fields[0] != names[i] {
			return nil, fmt.Errorf("topology: row %d is %q, want %q (rows must follow header order)", i, fields[0], names[i])
		}
		row := make([]time.Duration, len(names))
		for j, f := range fields[1:] {
			d, err := parseMS(f)
			if err != nil {
				return nil, fmt.Errorf("topology: row %q column %d: %w", fields[0], j, err)
			}
			row[j] = d
		}
		rtt[i] = row
	}
	return &Matrix{Names: names, RTT: rtt}, nil
}

// Format renders the matrix in the format ParseMatrixSpec reads, so
// measured topologies round-trip through files. Durations are written in
// milliseconds with up to nanosecond (six decimal) precision, trimmed to
// at least the three decimals of the paper's measurements — so sub-
// millisecond RTTs survive the round trip exactly, and formatting a
// matrix of microsecond-resolution values (or an already-formatted file)
// is a fixed point.
func (m *Matrix) Format() string {
	var b strings.Builder
	b.WriteString("from")
	for _, n := range m.Names {
		fmt.Fprintf(&b, " %s", n)
	}
	b.WriteByte('\n')
	for i, n := range m.Names {
		b.WriteString(n)
		for j := range m.Names {
			b.WriteByte(' ')
			b.WriteString(formatMS(m.RTT[i][j]))
		}
		b.WriteByte('\n')
	}
	return b.String()
}

// parseMS converts one millisecond field to a duration. Plain decimals —
// the only form Format emits — convert exactly through integer
// arithmetic, so Format/parse is an identity for every representable
// duration; other accepted spellings (scientific notation) go through
// float64 and round to the nearest nanosecond.
func parseMS(f string) (time.Duration, error) {
	if d, ok := parseMSExact(f); ok {
		return d, nil
	}
	ms, err := strconv.ParseFloat(f, 64)
	if err != nil {
		return 0, err
	}
	if math.IsNaN(ms) || math.IsInf(ms, 0) {
		return 0, fmt.Errorf("RTT %q is not finite", f)
	}
	if ms < 0 {
		return 0, errors.New("negative RTT")
	}
	ns := ms * float64(time.Millisecond)
	if ns >= float64(math.MaxInt64) {
		return 0, fmt.Errorf("RTT %q overflows", f)
	}
	// Round instead of truncating: 0.0001 ms is 99.999… in binary
	// floating point, and truncation would turn it into 99ns.
	return time.Duration(math.Round(ns)), nil
}

// parseMSExact converts an unsigned plain-decimal millisecond value to a
// duration using integer arithmetic. It reports false — sending the
// caller to the float path — for any other spelling, for fractions finer
// than a nanosecond, and for values that do not fit a time.Duration.
func parseMSExact(s string) (time.Duration, bool) {
	ip, fp := s, ""
	if dot := strings.IndexByte(s, '.'); dot >= 0 {
		ip, fp = s[:dot], s[dot+1:]
	}
	if ip == "" && fp == "" {
		return 0, false
	}
	digits := func(s string) bool {
		for i := 0; i < len(s); i++ {
			if s[i] < '0' || s[i] > '9' {
				return false
			}
		}
		return true
	}
	if !digits(ip) || !digits(fp) {
		return 0, false
	}
	if len(fp) > 6 {
		for i := 6; i < len(fp); i++ {
			if fp[i] != '0' {
				return 0, false
			}
		}
		fp = fp[:6]
	}
	for len(fp) < 6 {
		fp += "0"
	}
	// ip.fp milliseconds is the integer ip||fp in nanoseconds.
	var ns uint64
	for _, part := range []string{ip, fp} {
		for i := 0; i < len(part); i++ {
			d := uint64(part[i] - '0')
			if ns > (math.MaxUint64-d)/10 {
				return 0, false
			}
			ns = ns*10 + d
		}
	}
	if ns > math.MaxInt64 {
		return 0, false
	}
	return time.Duration(ns), true
}

// formatMS renders a duration as decimal milliseconds with nanosecond
// precision, trailing zeros trimmed down to the three decimals of the
// paper's measurements. The rendering is exact (no float64 involved), so
// parseMSExact reads back the identical duration at any magnitude.
func formatMS(d time.Duration) string {
	sign, ns := "", uint64(d)
	if d < 0 {
		// Negative durations never come from the parser or a Grid, but
		// Format on a hand-built Matrix should still not emit garbage.
		sign, ns = "-", -uint64(d)
	}
	s := fmt.Sprintf("%s%d.%06d", sign, ns/1e6, ns%1e6)
	// Keep at least three decimals: "x.ddd000" trims to "x.ddd".
	dot := strings.IndexByte(s, '.')
	for s[len(s)-1] == '0' && len(s)-dot-1 > 3 {
		s = s[:len(s)-1]
	}
	return s
}

// FormatMatrix renders the grid's RTT matrix in the format ParseMatrix
// reads, so measured topologies round-trip through files.
func FormatMatrix(g *Grid) string {
	m := Matrix{Names: make([]string, g.NumClusters()), RTT: make([][]time.Duration, g.NumClusters())}
	for i := range m.Names {
		m.Names[i] = g.ClusterName(i)
		m.RTT[i] = make([]time.Duration, g.NumClusters())
		for j := range m.RTT[i] {
			m.RTT[i][j] = g.RTT(i, j)
		}
	}
	return m.Format()
}
