package topology

import (
	"fmt"
	"io"
	"math"
	"strconv"
	"strings"
	"time"
)

// Matrix is a named cluster-to-cluster RTT matrix not yet bound to node
// counts: the reusable part of a measured topology.
type Matrix struct {
	Names []string
	RTT   [][]time.Duration
}

// Grid instantiates the matrix with nodesPerCluster nodes per cluster.
func (m *Matrix) Grid(nodesPerCluster int) (*Grid, error) {
	if nodesPerCluster <= 0 {
		return nil, fmt.Errorf("topology: nodesPerCluster %d must be positive", nodesPerCluster)
	}
	sizes := make([]int, len(m.Names))
	for i := range sizes {
		sizes[i] = nodesPerCluster
	}
	return New(m.Names, sizes, m.RTT)
}

// ParseMatrix reads a cluster RTT matrix in the textual format of the
// paper's Figure 3 and builds a Grid with nodesPerCluster nodes in each
// cluster:
//
//	# comment lines and blank lines are ignored
//	from      orsay  grenoble  lyon
//	orsay     0.034  15.039    9.128
//	grenoble  14.976 0.066     3.293
//	lyon      9.136  3.309     0.026
//
// The first non-comment line is the header naming the destination
// clusters; each following row starts with the source cluster name and
// lists the RTTs in milliseconds. Row names must match the header order.
// This is how an operator feeds measured latencies from their own grid
// into the simulator.
func ParseMatrix(r io.Reader, nodesPerCluster int) (*Grid, error) {
	m, err := ParseMatrixSpec(r)
	if err != nil {
		return nil, err
	}
	return m.Grid(nodesPerCluster)
}

// ParseMatrixSpec reads the same format as ParseMatrix but returns the
// unbound matrix, letting callers instantiate several grid sizes from one
// measurement file.
func ParseMatrixSpec(r io.Reader) (*Matrix, error) {
	data, err := io.ReadAll(r)
	if err != nil {
		return nil, fmt.Errorf("topology: reading matrix: %w", err)
	}
	var lines []string
	for _, line := range strings.Split(string(data), "\n") {
		line = strings.TrimSpace(line)
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		lines = append(lines, line)
	}
	if len(lines) == 0 {
		return nil, fmt.Errorf("topology: empty matrix")
	}
	header := strings.Fields(lines[0])
	if len(header) < 2 {
		return nil, fmt.Errorf("topology: header %q needs a label and at least one cluster", lines[0])
	}
	names := header[1:]
	seen := make(map[string]bool, len(names))
	for _, n := range names {
		// A name opening with '#' would render as a comment line and a
		// duplicate would make rows ambiguous: neither can round-trip
		// through the file format.
		if strings.HasPrefix(n, "#") {
			return nil, fmt.Errorf("topology: cluster name %q starts with the comment marker", n)
		}
		if seen[n] {
			return nil, fmt.Errorf("topology: duplicate cluster name %q", n)
		}
		seen[n] = true
	}
	if len(lines)-1 != len(names) {
		return nil, fmt.Errorf("topology: %d clusters in header but %d rows", len(names), len(lines)-1)
	}

	rtt := make([][]time.Duration, len(names))
	for i, line := range lines[1:] {
		fields := strings.Fields(line)
		if len(fields) != len(names)+1 {
			return nil, fmt.Errorf("topology: row %q has %d values, want %d", line, len(fields)-1, len(names))
		}
		if fields[0] != names[i] {
			return nil, fmt.Errorf("topology: row %d is %q, want %q (rows must follow header order)", i, fields[0], names[i])
		}
		row := make([]time.Duration, len(names))
		for j, f := range fields[1:] {
			ms, err := strconv.ParseFloat(f, 64)
			if err != nil {
				return nil, fmt.Errorf("topology: row %q column %d: %w", fields[0], j, err)
			}
			if math.IsNaN(ms) || math.IsInf(ms, 0) {
				return nil, fmt.Errorf("topology: row %q column %d: RTT %q is not finite", fields[0], j, f)
			}
			if ms < 0 {
				return nil, fmt.Errorf("topology: row %q column %d: negative RTT", fields[0], j)
			}
			ns := ms * float64(time.Millisecond)
			if ns >= float64(math.MaxInt64) {
				return nil, fmt.Errorf("topology: row %q column %d: RTT %q overflows", fields[0], j, f)
			}
			row[j] = time.Duration(ns)
		}
		rtt[i] = row
	}
	return &Matrix{Names: names, RTT: rtt}, nil
}

// Format renders the matrix in the format ParseMatrixSpec reads, so
// measured topologies round-trip through files. Durations are written
// with microsecond (three decimal millisecond) precision — the resolution
// of the paper's measurements — so formatting an already-formatted matrix
// is a fixed point.
func (m *Matrix) Format() string {
	var b strings.Builder
	b.WriteString("from")
	for _, n := range m.Names {
		fmt.Fprintf(&b, " %s", n)
	}
	b.WriteByte('\n')
	for i, n := range m.Names {
		b.WriteString(n)
		for j := range m.Names {
			fmt.Fprintf(&b, " %.3f", float64(m.RTT[i][j])/float64(time.Millisecond))
		}
		b.WriteByte('\n')
	}
	return b.String()
}

// FormatMatrix renders the grid's RTT matrix in the format ParseMatrix
// reads, so measured topologies round-trip through files.
func FormatMatrix(g *Grid) string {
	m := Matrix{Names: make([]string, g.NumClusters()), RTT: make([][]time.Duration, g.NumClusters())}
	for i := range m.Names {
		m.Names[i] = g.ClusterName(i)
		m.RTT[i] = make([]time.Duration, g.NumClusters())
		for j := range m.RTT[i] {
			m.RTT[i][j] = g.RTT(i, j)
		}
	}
	return m.Format()
}
