package topology

import (
	"testing"
	"testing/quick"
	"time"
)

func TestGrid5000Shape(t *testing.T) {
	g := Grid5000(20)
	if g.NumClusters() != 9 {
		t.Fatalf("NumClusters = %d, want 9", g.NumClusters())
	}
	if g.NumNodes() != 180 {
		t.Fatalf("NumNodes = %d, want 180", g.NumNodes())
	}
	for c := 0; c < 9; c++ {
		if g.ClusterSize(c) != 20 {
			t.Errorf("cluster %d size %d, want 20", c, g.ClusterSize(c))
		}
	}
}

// Spot-check values straight out of Figure 3 of the paper.
func TestGrid5000Figure3Values(t *testing.T) {
	g := Grid5000(20)
	idx := map[string]int{}
	for c := 0; c < g.NumClusters(); c++ {
		idx[g.ClusterName(c)] = c
	}
	checks := []struct {
		from, to string
		want     time.Duration
	}{
		{"orsay", "orsay", 34 * time.Microsecond},
		{"orsay", "nancy", 95282 * time.Microsecond},
		{"nancy", "toulouse", 98398 * time.Microsecond},
		{"lille", "lille", 1 * time.Microsecond},
		{"toulouse", "bordeaux", 3131 * time.Microsecond},
		{"bordeaux", "toulouse", 3150 * time.Microsecond},
		{"sophia", "orsay", 20332 * time.Microsecond},
		{"grenoble", "lyon", 3293 * time.Microsecond},
	}
	for _, c := range checks {
		if got := g.RTT(idx[c.from], idx[c.to]); got != c.want {
			t.Errorf("RTT(%s,%s) = %v, want %v", c.from, c.to, got, c.want)
		}
	}
}

func TestGrid5000Asymmetry(t *testing.T) {
	// The measured matrix is not symmetric; make sure we did not
	// accidentally symmetrize it.
	g := Grid5000(1)
	if g.RTT(0, 1) == g.RTT(1, 0) {
		t.Error("orsay<->grenoble RTTs should differ (15.039 vs 14.976 ms)")
	}
}

func TestClusterMajorNumbering(t *testing.T) {
	g := Grid5000(20)
	for c := 0; c < g.NumClusters(); c++ {
		nodes := g.NodesIn(c)
		if len(nodes) != 20 {
			t.Fatalf("cluster %d: %d nodes", c, len(nodes))
		}
		for i, n := range nodes {
			if want := c*20 + i; n != want {
				t.Fatalf("cluster %d node %d = %d, want %d", c, i, n, want)
			}
			if g.ClusterOf(n) != c {
				t.Fatalf("ClusterOf(%d) = %d, want %d", n, g.ClusterOf(n), c)
			}
		}
	}
}

func TestOneWayIsHalfRTT(t *testing.T) {
	g := Grid5000(20)
	// node 0 is in orsay, node 100 is in nancy (cluster 5).
	if got, want := g.OneWay(0, 100), 95282*time.Microsecond/2; got != want {
		t.Errorf("OneWay(orsay,nancy) = %v, want %v", got, want)
	}
	if got, want := g.OneWay(0, 1), 17*time.Microsecond; got != want {
		t.Errorf("OneWay within orsay = %v, want %v", got, want)
	}
}

func TestSameCluster(t *testing.T) {
	g := Grid5000(20)
	if !g.SameCluster(0, 19) {
		t.Error("nodes 0 and 19 should share a cluster")
	}
	if g.SameCluster(19, 20) {
		t.Error("nodes 19 and 20 should be in different clusters")
	}
}

func TestUniform(t *testing.T) {
	g := Uniform(3, 4, time.Millisecond, 10*time.Millisecond)
	if g.NumNodes() != 12 {
		t.Fatalf("NumNodes = %d, want 12", g.NumNodes())
	}
	if got := g.OneWay(0, 3); got != 500*time.Microsecond {
		t.Errorf("intra one-way = %v, want 0.5ms", got)
	}
	if got := g.OneWay(0, 4); got != 5*time.Millisecond {
		t.Errorf("inter one-way = %v, want 5ms", got)
	}
}

func TestSingle(t *testing.T) {
	g := Single(7, 2*time.Millisecond)
	if g.NumClusters() != 1 || g.NumNodes() != 7 {
		t.Fatalf("Single(7) = %d clusters, %d nodes", g.NumClusters(), g.NumNodes())
	}
	if got := g.OneWay(2, 5); got != time.Millisecond {
		t.Errorf("one-way = %v, want 1ms", got)
	}
}

// TestMinInterOneWay: the lookahead of a cluster-partitioned parallel
// simulation is the smallest off-diagonal one-way delay.
func TestMinInterOneWay(t *testing.T) {
	// Grid'5000: smallest off-diagonal RTT is toulouse->bordeaux at
	// 3131µs (the reverse route measures 3150µs — asymmetry matters).
	g := Grid5000(2)
	min9, ok := g.MinInterOneWay()
	if !ok {
		t.Fatal("Grid5000: no inter-cluster link reported")
	}
	if want := 3131 * time.Microsecond / 2; min9 != want {
		t.Errorf("Grid5000 lookahead = %v, want %v", min9, want)
	}

	u := Uniform(3, 2, time.Millisecond, 10*time.Millisecond)
	if min3, ok := u.MinInterOneWay(); !ok || min3 != 5*time.Millisecond {
		t.Errorf("Uniform lookahead = %v, %v, want 5ms, true", min3, ok)
	}

	// A single cluster has no inter-cluster link at all.
	if _, ok := Single(4, time.Millisecond).MinInterOneWay(); ok {
		t.Error("Single: reported an inter-cluster delay")
	}

	// Zero remote latency: the link exists but admits no lookahead.
	z := Uniform(2, 2, time.Millisecond, 0)
	if min0, ok := z.MinInterOneWay(); !ok || min0 != 0 {
		t.Errorf("zero-remote lookahead = %v, %v, want 0, true", min0, ok)
	}
}

func TestNewValidation(t *testing.T) {
	ms := time.Millisecond
	cases := []struct {
		name  string
		names []string
		sizes []int
		rtt   [][]time.Duration
	}{
		{"no clusters", nil, nil, nil},
		{"size mismatch", []string{"a"}, []int{1, 2}, [][]time.Duration{{ms}}},
		{"ragged matrix", []string{"a", "b"}, []int{1, 1}, [][]time.Duration{{ms, ms}, {ms}}},
		{"zero size", []string{"a"}, []int{0}, [][]time.Duration{{ms}}},
		{"negative latency", []string{"a"}, []int{1}, [][]time.Duration{{-ms}}},
		{"missing rows", []string{"a", "b"}, []int{1, 1}, [][]time.Duration{{ms, ms}}},
	}
	for _, c := range cases {
		if _, err := New(c.names, c.sizes, c.rtt); err == nil {
			t.Errorf("%s: New accepted invalid input", c.name)
		}
	}
}

// Property: in any uniform grid, OneWay is symmetric and respects the
// intra/inter split implied by cluster membership.
func TestPropertyUniformLatencies(t *testing.T) {
	f := func(rawClusters, rawSize uint8, a, b uint16) bool {
		clusters := int(rawClusters%5) + 1
		size := int(rawSize%6) + 1
		g := Uniform(clusters, size, time.Millisecond, 20*time.Millisecond)
		n := g.NumNodes()
		na, nb := int(a)%n, int(b)%n
		ow := g.OneWay(na, nb)
		if ow != g.OneWay(nb, na) {
			return false
		}
		if g.SameCluster(na, nb) {
			return ow == 500*time.Microsecond
		}
		return ow == 10*time.Millisecond
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
