// Package topology models the physical layout of a grid: a federation of
// clusters whose intra-cluster links are fast (LAN) and whose inter-cluster
// links are slow and heterogeneous (WAN).
//
// Latencies are specified as cluster-to-cluster round-trip times, matching
// how the paper reports them (Figure 3); message transmission uses the
// one-way delay RTT/2.
package topology

import (
	"errors"
	"fmt"
	"time"
)

// Grid describes a federation of clusters. Nodes carry global indices in
// cluster-major order: cluster 0 owns nodes [0, size0), cluster 1 owns
// [size0, size0+size1), and so on.
type Grid struct {
	names   []string
	sizes   []int
	firsts  []int // first global node index of each cluster
	cluster []int // node -> cluster
	rtt     [][]time.Duration
	total   int
	// tree, when non-nil, replaces the materialized tables above: names,
	// cluster membership and latencies derive arithmetically from the
	// hierarchical spec (see NewTree), costing O(levels) memory however
	// many clusters the fan-out product yields.
	tree *treeModel
}

// New builds a grid from cluster names, per-cluster node counts and a
// cluster-to-cluster RTT matrix. The matrix need not be symmetric (real
// routes rarely are); rtt[i][i] is the intra-cluster RTT.
func New(names []string, sizes []int, rtt [][]time.Duration) (*Grid, error) {
	n := len(names)
	if n == 0 {
		return nil, errors.New("topology: no clusters")
	}
	if len(sizes) != n || len(rtt) != n {
		return nil, fmt.Errorf("topology: got %d names, %d sizes, %d matrix rows", n, len(sizes), len(rtt))
	}
	g := &Grid{
		names:  append([]string(nil), names...),
		sizes:  append([]int(nil), sizes...),
		firsts: make([]int, n),
		rtt:    make([][]time.Duration, n),
	}
	for i, row := range rtt {
		if len(row) != n {
			return nil, fmt.Errorf("topology: matrix row %d has %d entries, want %d", i, len(row), n)
		}
		for j, d := range row {
			if d < 0 {
				return nil, fmt.Errorf("topology: negative RTT %v between %s and %s", d, names[i], names[j])
			}
		}
		g.rtt[i] = append([]time.Duration(nil), row...)
	}
	for c, size := range sizes {
		if size <= 0 {
			return nil, fmt.Errorf("topology: cluster %s has size %d", names[c], size)
		}
		g.firsts[c] = g.total
		g.total += size
	}
	g.cluster = make([]int, g.total)
	for c := range sizes {
		for i := 0; i < sizes[c]; i++ {
			g.cluster[g.firsts[c]+i] = c
		}
	}
	return g, nil
}

// NumClusters returns the number of clusters in the grid.
func (g *Grid) NumClusters() int {
	if g.tree != nil {
		return g.tree.clusters
	}
	return len(g.names)
}

// NumNodes returns the total number of nodes across all clusters.
func (g *Grid) NumNodes() int { return g.total }

// ClusterName returns the name of cluster c.
func (g *Grid) ClusterName(c int) string {
	if g.tree != nil {
		return g.tree.clusterName(c)
	}
	return g.names[c]
}

// ClusterSize returns the number of nodes in cluster c.
func (g *Grid) ClusterSize(c int) int {
	if g.tree != nil {
		return g.tree.spec.LeafSize
	}
	return g.sizes[c]
}

// ClusterOf returns the cluster owning global node index n.
func (g *Grid) ClusterOf(n int) int {
	if g.tree != nil {
		return n / g.tree.spec.LeafSize
	}
	return g.cluster[n]
}

// NodesIn returns the global node indices of cluster c in ascending order.
func (g *Grid) NodesIn(c int) []int {
	if g.tree != nil {
		size := g.tree.spec.LeafSize
		out := make([]int, size)
		for i := range out {
			out[i] = c*size + i
		}
		return out
	}
	out := make([]int, g.sizes[c])
	for i := range out {
		out[i] = g.firsts[c] + i
	}
	return out
}

// RTT returns the round-trip latency between clusters a and b as measured
// from a.
func (g *Grid) RTT(a, b int) time.Duration {
	if g.tree != nil {
		return g.tree.rtt(a, b)
	}
	return g.rtt[a][b]
}

// OneWay returns the modeled one-way message delay between two global node
// indices: half the RTT between their clusters.
func (g *Grid) OneWay(from, to int) time.Duration {
	return g.RTT(g.ClusterOf(from), g.ClusterOf(to)) / 2
}

// SameCluster reports whether two global node indices live in one cluster.
func (g *Grid) SameCluster(a, b int) bool { return g.ClusterOf(a) == g.ClusterOf(b) }

// MinInterOneWay returns the smallest one-way delay between nodes in
// different clusters — the lookahead of a conservative parallel
// simulation partitioned by cluster: no inter-cluster message can arrive
// sooner after it was sent. The second result is false for single-cluster
// grids, where no inter-cluster link exists. A zero result means some
// cluster pair communicates instantly, leaving a window scheduler no
// concurrency to exploit; callers must then fall back to serial execution.
func (g *Grid) MinInterOneWay() (time.Duration, bool) {
	if g.tree != nil {
		// Trees always have >= 2 clusters (fan-outs are >= 2) and the
		// smallest inter-cluster RTT is the smallest level RTT — an
		// O(levels) scan instead of the O(C²) pair sweep below.
		return g.tree.minLevelRTT() / 2, true
	}
	n := len(g.names)
	if n < 2 {
		return 0, false
	}
	found := false
	var min time.Duration
	for a := 0; a < n; a++ {
		for b := 0; b < n; b++ {
			if a == b {
				continue
			}
			if d := g.rtt[a][b] / 2; !found || d < min {
				min, found = d, true
			}
		}
	}
	return min, true
}

// grid5000Names lists the 9 Grid'5000 sites used in the paper's evaluation.
var grid5000Names = []string{
	"orsay", "grenoble", "lyon", "rennes", "lille", "nancy", "toulouse", "sophia", "bordeaux",
}

// grid5000RTTMicros is the Figure 3 RTT matrix, in microseconds (the paper
// prints milliseconds with three decimals). Row = from, column = to.
var grid5000RTTMicros = [9][9]int64{
	{34, 15039, 9128, 8881, 4489, 95282, 15556, 20239, 7900},
	{14976, 66, 3293, 15269, 12954, 13246, 10582, 9904, 16288},
	{9136, 3309, 26, 12672, 10377, 10634, 7956, 7289, 10078},
	{8913, 15258, 12617, 59, 11269, 11654, 19911, 19224, 8114},
	{10000, 10001, 10001, 10001, 1, 10001, 20000, 20001, 10001},
	{5657, 13279, 10623, 11679, 9228, 32, 98398, 17215, 12827},
	{15547, 10586, 7934, 19888, 19102, 17886, 43, 14540, 3131},
	{20332, 9889, 7254, 19215, 16811, 17238, 14529, 51, 10629},
	{7925, 16338, 10043, 8129, 10845, 12795, 3150, 10640, 45},
}

// Grid5000 returns the paper's experimental platform: the 9 clusters of
// Figure 3 with nodesPerCluster nodes each (the paper uses 20, for 180
// application processes).
func Grid5000(nodesPerCluster int) *Grid {
	sizes := make([]int, len(grid5000Names))
	rtt := make([][]time.Duration, len(grid5000Names))
	for i := range grid5000Names {
		sizes[i] = nodesPerCluster
		row := make([]time.Duration, len(grid5000Names))
		for j, us := range grid5000RTTMicros[i] {
			row[j] = time.Duration(us) * time.Microsecond
		}
		rtt[i] = row
	}
	g, err := New(grid5000Names, sizes, rtt)
	if err != nil {
		panic("topology: invalid built-in Grid5000 matrix: " + err.Error())
	}
	return g
}

// Uniform returns a synthetic grid of clusters clusters with size nodes
// each, localRTT within every cluster and remoteRTT between any two distinct
// clusters. Useful for tests and scalability sweeps where Grid'5000's
// heterogeneity would obscure the effect under study.
func Uniform(clusters, size int, localRTT, remoteRTT time.Duration) *Grid {
	names := make([]string, clusters)
	sizes := make([]int, clusters)
	rtt := make([][]time.Duration, clusters)
	for i := range names {
		names[i] = fmt.Sprintf("c%d", i)
		sizes[i] = size
		row := make([]time.Duration, clusters)
		for j := range row {
			if i == j {
				row[j] = localRTT
			} else {
				row[j] = remoteRTT
			}
		}
		rtt[i] = row
	}
	g, err := New(names, sizes, rtt)
	if err != nil {
		panic("topology: invalid uniform grid: " + err.Error())
	}
	return g
}

// Single returns a one-cluster grid of size nodes with the given local RTT.
// It lets a plain (non-composed) algorithm run on the simulated network.
func Single(size int, localRTT time.Duration) *Grid {
	return Uniform(1, size, localRTT, 0)
}
