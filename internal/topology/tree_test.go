package topology

import (
	"math"
	"strings"
	"testing"
	"time"
)

// treeSpec3 is the canonical three-level test tree: 2 regions x 3 zones x
// 2 clusters of 4 nodes = 12 clusters, 48 nodes.
func treeSpec3() TreeSpec {
	return TreeSpec{
		Fanouts:  []int{2, 3, 2},
		LeafSize: 4,
		LeafRTT:  100 * time.Microsecond,
		LevelRTT: []time.Duration{40 * time.Millisecond, 12 * time.Millisecond, 4 * time.Millisecond},
	}
}

// materialize builds the explicit matrix grid equivalent to a tree spec,
// the reference the factored model must match pairwise.
func materialize(t *testing.T, spec TreeSpec) *Grid {
	t.Helper()
	tree, err := NewTree(spec)
	if err != nil {
		t.Fatal(err)
	}
	c := tree.NumClusters()
	names := make([]string, c)
	sizes := make([]int, c)
	rtt := make([][]time.Duration, c)
	for i := 0; i < c; i++ {
		names[i] = tree.ClusterName(i)
		sizes[i] = spec.LeafSize
		rtt[i] = make([]time.Duration, c)
		for j := 0; j < c; j++ {
			rtt[i][j] = tree.RTT(i, j)
		}
	}
	g, err := New(names, sizes, rtt)
	if err != nil {
		t.Fatal(err)
	}
	return g
}

// TestTreeMatchesMaterialized: every accessor of the factored tree grid
// must agree with the explicit-matrix grid built from its own RTTs — the
// two representations are interchangeable everywhere a *Grid flows.
func TestTreeMatchesMaterialized(t *testing.T) {
	spec := treeSpec3()
	tree, err := NewTree(spec)
	if err != nil {
		t.Fatal(err)
	}
	dense := materialize(t, spec)
	if tree.NumClusters() != 12 || tree.NumNodes() != 48 {
		t.Fatalf("tree has %d clusters, %d nodes; want 12, 48", tree.NumClusters(), tree.NumNodes())
	}
	if tree.NumNodes() != dense.NumNodes() || tree.NumClusters() != dense.NumClusters() {
		t.Fatal("dimension mismatch")
	}
	for c := 0; c < tree.NumClusters(); c++ {
		if tree.ClusterSize(c) != dense.ClusterSize(c) {
			t.Fatalf("cluster %d size %d vs %d", c, tree.ClusterSize(c), dense.ClusterSize(c))
		}
		a, b := tree.NodesIn(c), dense.NodesIn(c)
		for i := range a {
			if a[i] != b[i] {
				t.Fatalf("cluster %d nodes differ at %d: %d vs %d", c, i, a[i], b[i])
			}
		}
	}
	for a := 0; a < tree.NumNodes(); a++ {
		if tree.ClusterOf(a) != dense.ClusterOf(a) {
			t.Fatalf("node %d cluster %d vs %d", a, tree.ClusterOf(a), dense.ClusterOf(a))
		}
		for b := 0; b < tree.NumNodes(); b++ {
			if tree.OneWay(a, b) != dense.OneWay(a, b) {
				t.Fatalf("OneWay(%d,%d) %v vs %v", a, b, tree.OneWay(a, b), dense.OneWay(a, b))
			}
			if tree.SameCluster(a, b) != dense.SameCluster(a, b) {
				t.Fatalf("SameCluster(%d,%d) differs", a, b)
			}
		}
	}
	tMin, tOk := tree.MinInterOneWay()
	dMin, dOk := dense.MinInterOneWay()
	if tMin != dMin || tOk != dOk {
		t.Fatalf("MinInterOneWay %v,%v vs %v,%v", tMin, tOk, dMin, dOk)
	}
	if want := 2 * time.Millisecond; tMin != want {
		t.Fatalf("MinInterOneWay %v, want %v", tMin, want)
	}
}

// TestTreeLCALatency pins the level arithmetic directly: cluster pairs at
// each co-ancestry depth get that level's RTT.
func TestTreeLCALatency(t *testing.T) {
	tree, err := NewTree(treeSpec3())
	if err != nil {
		t.Fatal(err)
	}
	cases := []struct {
		a, b int
		want time.Duration
	}{
		{0, 0, 100 * time.Microsecond}, // same cluster
		{0, 1, 4 * time.Millisecond},   // siblings under one zone
		{0, 2, 12 * time.Millisecond},  // same region, different zones
		{0, 6, 40 * time.Millisecond},  // across the root
		{5, 6, 40 * time.Millisecond},  // adjacent indices, different regions
		{6, 7, 4 * time.Millisecond},
	}
	for _, c := range cases {
		if got := tree.RTT(c.a, c.b); got != c.want {
			t.Errorf("RTT(%d,%d) = %v, want %v", c.a, c.b, got, c.want)
		}
		if got := tree.RTT(c.b, c.a); got != c.want {
			t.Errorf("RTT(%d,%d) = %v, want %v (symmetry)", c.b, c.a, got, c.want)
		}
	}
}

func TestTreeClusterNames(t *testing.T) {
	tree, err := NewTree(treeSpec3())
	if err != nil {
		t.Fatal(err)
	}
	cases := map[int]string{0: "t0.0.0", 1: "t0.0.1", 2: "t0.1.0", 6: "t1.0.0", 11: "t1.2.1"}
	for c, want := range cases {
		if got := tree.ClusterName(c); got != want {
			t.Errorf("ClusterName(%d) = %q, want %q", c, got, want)
		}
	}
}

func TestTreeValidation(t *testing.T) {
	base := treeSpec3()
	cases := []struct {
		name   string
		mutate func(*TreeSpec)
	}{
		{"no levels", func(s *TreeSpec) { s.Fanouts, s.LevelRTT = nil, nil }},
		{"mismatched RTTs", func(s *TreeSpec) { s.LevelRTT = s.LevelRTT[:2] }},
		{"fan-out one", func(s *TreeSpec) { s.Fanouts[1] = 1 }},
		{"fan-out zero", func(s *TreeSpec) { s.Fanouts[0] = 0 }},
		{"negative fan-out", func(s *TreeSpec) { s.Fanouts[2] = -2 }},
		{"zero level RTT", func(s *TreeSpec) { s.LevelRTT[1] = 0 }},
		{"negative level RTT", func(s *TreeSpec) { s.LevelRTT[0] = -time.Millisecond }},
		{"zero leaf size", func(s *TreeSpec) { s.LeafSize = 0 }},
		{"negative leaf RTT", func(s *TreeSpec) { s.LeafRTT = -time.Microsecond }},
		{"fan-out product overflows", func(s *TreeSpec) {
			s.Fanouts = []int{1 << 21, 1 << 21, 1 << 21, 1 << 21}
			s.LevelRTT = []time.Duration{time.Millisecond, time.Millisecond, time.Millisecond, time.Millisecond}
		}},
		{"node count overflows", func(s *TreeSpec) {
			s.Fanouts = []int{1 << 31, 1 << 31}
			s.LevelRTT = []time.Duration{time.Millisecond, time.Millisecond}
			s.LeafSize = 4
		}},
	}
	for _, tc := range cases {
		spec := base
		spec.Fanouts = append([]int(nil), base.Fanouts...)
		spec.LevelRTT = append([]time.Duration(nil), base.LevelRTT...)
		tc.mutate(&spec)
		if _, err := NewTree(spec); err == nil {
			t.Errorf("%s: accepted", tc.name)
		}
	}
}

// TestTreeMemoryIsFlat: a tree grid's footprint must not scale with the
// cluster count — the whole point of the factored representation. A
// million-cluster tree must build instantly in O(levels) space.
func TestTreeMemoryIsFlat(t *testing.T) {
	tree, err := NewTree(TreeSpec{
		Fanouts:  []int{64, 128, 128},
		LeafSize: 1,
		LeafRTT:  100 * time.Microsecond,
		LevelRTT: []time.Duration{80 * time.Millisecond, 20 * time.Millisecond, 5 * time.Millisecond},
	})
	if err != nil {
		t.Fatal(err)
	}
	if got, want := tree.NumClusters(), 64*128*128; got != want {
		t.Fatalf("%d clusters, want %d", got, want)
	}
	// Spot-check latencies at the extremes without touching all pairs.
	if got := tree.RTT(0, tree.NumClusters()-1); got != 80*time.Millisecond {
		t.Fatalf("far RTT %v", got)
	}
	if got := tree.RTT(0, 1); got != 5*time.Millisecond {
		t.Fatalf("near RTT %v", got)
	}
	if min, ok := tree.MinInterOneWay(); !ok || min != 2500*time.Microsecond {
		t.Fatalf("MinInterOneWay %v %v", min, ok)
	}
}

func TestTreeFormatRoundTrip(t *testing.T) {
	specs := []TreeSpec{
		treeSpec3(),
		{Fanouts: []int{8, 16}, LeafSize: 782, LeafRTT: 489 * time.Microsecond,
			LevelRTT: []time.Duration{40 * time.Millisecond, 12345678 * time.Nanosecond}},
		{Fanouts: []int{2}, LeafSize: 1, LeafRTT: 0, LevelRTT: []time.Duration{math.MaxInt64}},
	}
	for _, spec := range specs {
		text := FormatTreeSpec(spec)
		got, err := ParseTreeSpec(strings.NewReader(text))
		if err != nil {
			t.Fatalf("formatted spec does not parse: %v\n%s", err, text)
		}
		if got.LeafSize != spec.LeafSize || got.LeafRTT != spec.LeafRTT {
			t.Fatalf("leaf round trip: %+v -> %+v", spec, got)
		}
		if len(got.Fanouts) != len(spec.Fanouts) {
			t.Fatalf("level count round trip: %+v -> %+v", spec, got)
		}
		for i := range spec.Fanouts {
			if got.Fanouts[i] != spec.Fanouts[i] || got.LevelRTT[i] != spec.LevelRTT[i] {
				t.Fatalf("level %d round trip: %+v -> %+v", i, spec, got)
			}
		}
		if again := FormatTreeSpec(got); again != text {
			t.Fatalf("format not a fixed point:\n%s\nvs\n%s", text, again)
		}
	}
}

func TestParseTreeSpecRejects(t *testing.T) {
	cases := []string{
		"",
		"# only comments\n",
		"matrix v1\n",
		"tree v2\n",
		"tree v1\n",             // no leaf
		"tree v1\nleaf 4 0.1\n", // no levels
		"tree v1\nleaf 4 0.1\nleaf 4 0.1\nlevel 2 1\n",                             // duplicate leaf
		"tree v1\nleaf 4 0.1\nlevel 1 1\n",                                         // fan-out 1
		"tree v1\nleaf 4 0.1\nlevel 2 0\n",                                         // zero inter RTT
		"tree v1\nleaf 4 0.1\nlevel 2 -1\n",                                        // negative RTT
		"tree v1\nleaf 4 0.1\nlevel 2\n",                                           // missing field
		"tree v1\nleaf 4 0.1\nlevel two 1\n",                                       // non-numeric
		"tree v1\nleaf 4 NaN\nlevel 2 1\n",                                         // NaN latency
		"tree v1\nleaf 4 0.1\nbranch 2 1\n",                                        // unknown keyword
		"tree v1\nleaf 4 0.1\nlevel 4194304 1\nlevel 4194304 1\nlevel 4194304 1\n", // overflow
	}
	for _, in := range cases {
		if _, err := ParseTreeSpec(strings.NewReader(in)); err == nil {
			t.Errorf("accepted %q", in)
		}
	}
}
