package topology

import (
	"strings"
	"testing"
)

// FuzzLoad feeds arbitrary text to the RTT matrix parser: it must never
// panic, and any input it accepts must round-trip — formatting the parsed
// matrix and parsing that again must reproduce the identical matrix, and
// the formatted text must be a fixed point of parse∘format. `go test`
// runs the seed corpus; `go test -fuzz=FuzzLoad ./internal/topology`
// explores.
func FuzzLoad(f *testing.F) {
	f.Add("from a\na 0\n")
	f.Add("# comment\nfrom orsay grenoble lyon\norsay 0.034 15.039 9.128\ngrenoble 14.976 0.066 3.293\nlyon 9.136 3.309 0.026\n")
	f.Add("from x y\nx 0 1.5\ny 1.5 0\n")
	f.Add("from a\nb 0\n")            // row name mismatch
	f.Add("from a a\na 0 0\na 0 0\n") // duplicate cluster
	f.Add("from a\na NaN\n")
	f.Add("from a\na +Inf\n")
	f.Add("from a\na 1e300\n")
	f.Add("from a\na -1\n")
	f.Add("from a b\na 0\n")
	f.Add("")
	f.Add("# only comments\n")
	f.Add("from a b\na 0.000001 0.0001\nb 0.0005 0\n") // sub-millisecond RTTs
	f.Add("from a\na 0.000489\n")
	f.Add("from a b\na 0 9223372036854.775807\nb 1 0\n") // at the time.Duration edge
	f.Add("from a\na 9223372036854.775808\n")            // one ns past MaxInt64: must reject
	f.Add("from a\na 1e15\n")                            // overflows time.Duration

	f.Fuzz(func(t *testing.T, data string) {
		m, err := ParseMatrixSpec(strings.NewReader(data))
		if err != nil {
			return // rejected input is fine; panics are not
		}
		if len(m.Names) == 0 || len(m.RTT) != len(m.Names) {
			t.Fatalf("accepted but inconsistent: %d names, %d rows", len(m.Names), len(m.RTT))
		}
		text := m.Format()
		m2, err := ParseMatrixSpec(strings.NewReader(text))
		if err != nil {
			t.Fatalf("formatted matrix does not re-parse: %v\n%s", err, text)
		}
		if len(m2.Names) != len(m.Names) {
			t.Fatalf("round trip changed cluster count: %d -> %d", len(m.Names), len(m2.Names))
		}
		for i, n := range m.Names {
			if m2.Names[i] != n {
				t.Fatalf("round trip changed name %d: %q -> %q", i, n, m2.Names[i])
			}
		}
		// Formatting carries nanosecond precision, so parsed durations
		// must survive the trip exactly and one more round must be the
		// identity.
		for i := range m.RTT {
			for j := range m.RTT[i] {
				if m2.RTT[i][j] != m.RTT[i][j] {
					t.Fatalf("round trip changed RTT[%d][%d]: %v -> %v", i, j, m.RTT[i][j], m2.RTT[i][j])
				}
			}
		}
		if text2 := m2.Format(); text2 != text {
			t.Fatalf("format not a fixed point:\n%s\nvs\n%s", text, text2)
		}
		// The spec must instantiate: Grid performs its own validation and
		// anything the parser accepts has to satisfy it.
		if _, err := m.Grid(2); err != nil {
			t.Fatalf("accepted matrix does not build a grid: %v", err)
		}
	})
}

// FuzzParseTree gives the hierarchical topology parser the same contract
// as the matrix loader: never panic, and any accepted spec must round-trip
// exactly — FormatTreeSpec of the parsed spec re-parses to the identical
// spec and is a fixed point of parse∘format.
func FuzzParseTree(f *testing.F) {
	f.Add("tree v1\nleaf 4 0.1\nlevel 2 1\n")
	f.Add("# deep tree\ntree v1\nleaf 20 0.1\nlevel 8 40.0\nlevel 16 12.0\n")
	f.Add("tree v1\nleaf 782 0.489\nlevel 8 40.000\nlevel 16 12.345678\n")
	f.Add("tree v1\nleaf 1 0\nlevel 2 9223372036854.775807\n")
	f.Add("tree v1\nleaf 1 0\nlevel 2 9223372036854.775808\n") // past MaxInt64
	f.Add("tree v1\nleaf 4 0.1\nlevel 1 1\n")                  // fan-out 1
	f.Add("tree v1\nleaf 4 0.1\nlevel 2 0\n")                  // zero inter RTT
	f.Add("tree v1\nleaf 4 NaN\nlevel 2 1\n")
	f.Add("tree v1\nleaf 4 1e300\nlevel 2 1\n")
	f.Add("tree v1\nleaf 4 0.1\nlevel 4194304 1\nlevel 4194304 1\nlevel 4194304 1\n") // product overflow
	f.Add("tree v1\nlevel 2 1\n")
	f.Add("tree v2\nleaf 4 0.1\nlevel 2 1\n")
	f.Add("")

	f.Fuzz(func(t *testing.T, data string) {
		spec, err := ParseTreeSpec(strings.NewReader(data))
		if err != nil {
			return // rejected input is fine; panics are not
		}
		if err := spec.Validate(); err != nil {
			t.Fatalf("accepted spec fails validation: %v", err)
		}
		text := FormatTreeSpec(spec)
		spec2, err := ParseTreeSpec(strings.NewReader(text))
		if err != nil {
			t.Fatalf("formatted spec does not re-parse: %v\n%s", err, text)
		}
		if spec2.LeafSize != spec.LeafSize || spec2.LeafRTT != spec.LeafRTT || len(spec2.Fanouts) != len(spec.Fanouts) {
			t.Fatalf("round trip changed spec: %+v -> %+v", spec, spec2)
		}
		for i := range spec.Fanouts {
			if spec2.Fanouts[i] != spec.Fanouts[i] || spec2.LevelRTT[i] != spec.LevelRTT[i] {
				t.Fatalf("round trip changed level %d: %+v -> %+v", i, spec, spec2)
			}
		}
		if text2 := FormatTreeSpec(spec2); text2 != text {
			t.Fatalf("format not a fixed point:\n%s\nvs\n%s", text, text2)
		}
		// Anything the parser accepts must build (the node-count product
		// was already overflow-checked by validation).
		if _, err := NewTree(spec); err != nil {
			t.Fatalf("accepted spec does not build a grid: %v", err)
		}
	})
}
