package topology

import (
	"fmt"
	"io"
	"strconv"
	"strings"
	"time"
)

// TreeSpec describes a synthetic hierarchical topology as a balanced tree
// of switching levels: a root whose Fanouts[0] children are regions, each
// region split into Fanouts[1] zones, and so on down to leaf clusters of
// LeafSize nodes. Latency between two nodes is a function of the deepest
// tree level their clusters share — exactly how structured platforms
// (region → zone → rack) behave — so the topology needs no explicit
// cluster-to-cluster matrix: RTT(a, b) is computed from cluster indices in
// O(levels) and the whole grid costs O(levels) memory regardless of how
// many clusters the fan-out product yields.
type TreeSpec struct {
	// Fanouts lists the children per internal tree level, root first. The
	// product of all fan-outs is the number of leaf clusters.
	Fanouts []int
	// LeafSize is the number of nodes in every leaf cluster.
	LeafSize int
	// LeafRTT is the round-trip time between nodes of one cluster.
	LeafRTT time.Duration
	// LevelRTT[i] is the round-trip time between nodes whose lowest common
	// ancestor sits at depth i: LevelRTT[0] applies to traffic crossing the
	// root, LevelRTT[len-1] to traffic between sibling clusters. It must
	// have exactly one entry per fan-out level.
	LevelRTT []time.Duration
}

// Levels returns the number of internal switching levels.
func (s TreeSpec) Levels() int { return len(s.Fanouts) }

// Clusters returns the number of leaf clusters (the fan-out product), or
// an error when the product overflows int.
func (s TreeSpec) Clusters() (int, error) {
	c := 1
	for i, f := range s.Fanouts {
		p, ok := mulInt(c, f)
		if !ok {
			return 0, fmt.Errorf("topology: tree fan-out product overflows int at level %d (%v)", i, s.Fanouts)
		}
		c = p
	}
	return c, nil
}

// Validate checks the spec without building a grid.
func (s TreeSpec) Validate() error {
	if len(s.Fanouts) == 0 {
		return fmt.Errorf("topology: tree needs at least one fan-out level")
	}
	if len(s.LevelRTT) != len(s.Fanouts) {
		return fmt.Errorf("topology: %d level RTTs for %d fan-out levels", len(s.LevelRTT), len(s.Fanouts))
	}
	for i, f := range s.Fanouts {
		if f < 2 {
			return fmt.Errorf("topology: tree fan-out %d at level %d (want >= 2; a one-child level adds nothing)", f, i)
		}
	}
	for i, d := range s.LevelRTT {
		if d <= 0 {
			return fmt.Errorf("topology: tree level %d RTT %v (inter-cluster links need positive latency)", i, d)
		}
	}
	if s.LeafSize <= 0 {
		return fmt.Errorf("topology: tree leaf size %d", s.LeafSize)
	}
	if s.LeafRTT < 0 {
		return fmt.Errorf("topology: negative leaf RTT %v", s.LeafRTT)
	}
	clusters, err := s.Clusters()
	if err != nil {
		return err
	}
	if _, ok := mulInt(clusters, s.LeafSize); !ok {
		return fmt.Errorf("topology: %d clusters x %d nodes overflows int", clusters, s.LeafSize)
	}
	return nil
}

// treeModel is the factored latency model a tree grid dispatches to
// instead of materialized name/cluster/RTT tables.
type treeModel struct {
	spec TreeSpec
	// strides[i] is the number of leaf clusters under one subtree rooted
	// at depth i+1 — the divisor extracting the level-i digit of a cluster
	// index. strides[len-1] is always 1.
	strides  []int
	clusters int
}

// NewTree builds a grid from a hierarchical spec. The grid behaves exactly
// like one built from the equivalent explicit matrix — same node indexing,
// same accessors — but stores O(levels) latency state instead of O(C²),
// and O(1) node→cluster state instead of O(N): cluster membership is pure
// arithmetic on the balanced layout.
func NewTree(spec TreeSpec) (*Grid, error) {
	if err := spec.Validate(); err != nil {
		return nil, err
	}
	clusters, err := spec.Clusters()
	if err != nil {
		return nil, err
	}
	t := &treeModel{
		spec: TreeSpec{
			Fanouts:  append([]int(nil), spec.Fanouts...),
			LeafSize: spec.LeafSize,
			LeafRTT:  spec.LeafRTT,
			LevelRTT: append([]time.Duration(nil), spec.LevelRTT...),
		},
		strides:  make([]int, len(spec.Fanouts)),
		clusters: clusters,
	}
	stride := 1
	for i := len(spec.Fanouts) - 1; i >= 0; i-- {
		t.strides[i] = stride
		stride *= spec.Fanouts[i]
	}
	return &Grid{tree: t, total: clusters * spec.LeafSize}, nil
}

// Tree returns the spec of a tree-built grid, or false for matrix grids.
func (g *Grid) Tree() (TreeSpec, bool) {
	if g.tree == nil {
		return TreeSpec{}, false
	}
	return g.tree.spec, true
}

// rtt returns the round trip between leaf clusters a and b: the RTT of
// the deepest level both share, found by comparing cluster-index prefixes
// top-down.
func (t *treeModel) rtt(a, b int) time.Duration {
	if a == b {
		return t.spec.LeafRTT
	}
	for i, s := range t.strides {
		if a/s != b/s {
			return t.spec.LevelRTT[i]
		}
	}
	// Unreachable: a != b always differ at the last level (stride 1).
	return t.spec.LevelRTT[len(t.spec.LevelRTT)-1]
}

// clusterName renders the root-to-leaf digit path of cluster c, e.g.
// "t0.2.1" for child 1 of zone 2 of region 0.
func (t *treeModel) clusterName(c int) string {
	var b strings.Builder
	b.WriteByte('t')
	for i, s := range t.strides {
		if i > 0 {
			b.WriteByte('.')
		}
		b.WriteString(strconv.Itoa(c / s % t.spec.Fanouts[i]))
	}
	return b.String()
}

// minLevelRTT returns the smallest inter-cluster RTT of the tree.
func (t *treeModel) minLevelRTT() time.Duration {
	min := t.spec.LevelRTT[0]
	for _, d := range t.spec.LevelRTT[1:] {
		if d < min {
			min = d
		}
	}
	return min
}

// mulInt multiplies two non-negative ints, reporting false on overflow.
func mulInt(a, b int) (int, bool) {
	if a < 0 || b < 0 {
		return 0, false
	}
	if a == 0 || b == 0 {
		return 0, true
	}
	p := a * b
	if p/b != a {
		return 0, false
	}
	return p, true
}

// ParseTreeSpec reads a tree topology description:
//
//	# comment lines and blank lines are ignored
//	tree v1
//	leaf 20 0.1
//	level 8 40.0
//	level 16 12.0
//
// The header line names the format. The single leaf line gives nodes per
// cluster and the intra-cluster RTT in milliseconds; each level line gives
// one internal tree level root-first — fan-out and the RTT crossing that
// level. Plain-decimal RTTs convert exactly through integer arithmetic,
// so FormatTreeSpec/ParseTreeSpec is an identity (the same round-trip
// guarantee the matrix loader gives).
func ParseTreeSpec(r io.Reader) (TreeSpec, error) {
	data, err := io.ReadAll(r)
	if err != nil {
		return TreeSpec{}, fmt.Errorf("topology: reading tree spec: %w", err)
	}
	var lines []string
	for _, line := range strings.Split(string(data), "\n") {
		line = strings.TrimSpace(line)
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		lines = append(lines, line)
	}
	if len(lines) == 0 {
		return TreeSpec{}, fmt.Errorf("topology: empty tree spec")
	}
	if fields := strings.Fields(lines[0]); len(fields) != 2 || fields[0] != "tree" || fields[1] != "v1" {
		return TreeSpec{}, fmt.Errorf("topology: tree spec header %q, want \"tree v1\"", lines[0])
	}
	var spec TreeSpec
	haveLeaf := false
	for _, line := range lines[1:] {
		fields := strings.Fields(line)
		if len(fields) != 3 {
			return TreeSpec{}, fmt.Errorf("topology: tree spec line %q, want \"leaf <size> <rtt-ms>\" or \"level <fanout> <rtt-ms>\"", line)
		}
		count, err := strconv.Atoi(fields[1])
		if err != nil {
			return TreeSpec{}, fmt.Errorf("topology: tree spec line %q: %w", line, err)
		}
		d, err := parseMS(fields[2])
		if err != nil {
			return TreeSpec{}, fmt.Errorf("topology: tree spec line %q: %w", line, err)
		}
		switch fields[0] {
		case "leaf":
			if haveLeaf {
				return TreeSpec{}, fmt.Errorf("topology: duplicate leaf line %q", line)
			}
			haveLeaf = true
			spec.LeafSize, spec.LeafRTT = count, d
		case "level":
			spec.Fanouts = append(spec.Fanouts, count)
			spec.LevelRTT = append(spec.LevelRTT, d)
		default:
			return TreeSpec{}, fmt.Errorf("topology: tree spec line %q, want leaf or level", line)
		}
	}
	if !haveLeaf {
		return TreeSpec{}, fmt.Errorf("topology: tree spec has no leaf line")
	}
	if err := spec.Validate(); err != nil {
		return TreeSpec{}, err
	}
	return spec, nil
}

// FormatTreeSpec renders the spec in the format ParseTreeSpec reads.
// Durations use the exact decimal-millisecond rendering of the matrix
// format, so parsing the output reproduces the spec bit for bit.
func FormatTreeSpec(s TreeSpec) string {
	var b strings.Builder
	b.WriteString("tree v1\n")
	fmt.Fprintf(&b, "leaf %d %s\n", s.LeafSize, formatMS(s.LeafRTT))
	for i, f := range s.Fanouts {
		fmt.Fprintf(&b, "level %d %s\n", f, formatMS(s.LevelRTT[i]))
	}
	return b.String()
}
