package topology

import (
	"strings"
	"testing"
	"time"
)

const sampleMatrix = `
# measured on our lab grid
from      paris  lyon   nice
paris     0.050  4.2    9.0
lyon      4.1    0.030  6.5
nice      9.2    6.6    0.040
`

func TestParseMatrix(t *testing.T) {
	g, err := ParseMatrix(strings.NewReader(sampleMatrix), 5)
	if err != nil {
		t.Fatal(err)
	}
	if g.NumClusters() != 3 || g.NumNodes() != 15 {
		t.Fatalf("clusters=%d nodes=%d", g.NumClusters(), g.NumNodes())
	}
	if g.ClusterName(1) != "lyon" {
		t.Errorf("ClusterName(1) = %q", g.ClusterName(1))
	}
	if got, want := g.RTT(0, 2), 9*time.Millisecond; got != want {
		t.Errorf("RTT(paris,nice) = %v, want %v", got, want)
	}
	if got, want := g.RTT(1, 1), 30*time.Microsecond; got != want {
		t.Errorf("RTT(lyon,lyon) = %v, want %v", got, want)
	}
}

func TestParseMatrixErrors(t *testing.T) {
	cases := map[string]string{
		"empty":          "",
		"comments only":  "# nothing here\n",
		"header only":    "from a b\n",
		"no clusters":    "from\nx 1\n",
		"missing row":    "from a b\na 0 1\n",
		"ragged row":     "from a b\na 0 1\nb 1\n",
		"row name order": "from a b\nb 0 1\na 1 0\n",
		"bad number":     "from a\na x\n",
		"negative":       "from a\na -1\n",
	}
	for name, input := range cases {
		if _, err := ParseMatrix(strings.NewReader(input), 2); err == nil {
			t.Errorf("%s: parsed successfully", name)
		}
	}
	if _, err := ParseMatrix(strings.NewReader(sampleMatrix), 0); err == nil {
		t.Error("zero nodes per cluster accepted")
	}
}

// TestMatrixRoundTrip: FormatMatrix output parses back to identical
// latencies, including the built-in Grid'5000 matrix.
func TestMatrixRoundTrip(t *testing.T) {
	orig := Grid5000(3)
	text := FormatMatrix(orig)
	parsed, err := ParseMatrix(strings.NewReader(text), 3)
	if err != nil {
		t.Fatalf("round trip parse: %v\n%s", err, text)
	}
	if parsed.NumClusters() != orig.NumClusters() {
		t.Fatal("cluster count changed")
	}
	for i := 0; i < orig.NumClusters(); i++ {
		if parsed.ClusterName(i) != orig.ClusterName(i) {
			t.Fatalf("name %d changed", i)
		}
		for j := 0; j < orig.NumClusters(); j++ {
			if parsed.RTT(i, j) != orig.RTT(i, j) {
				t.Fatalf("RTT(%d,%d): %v != %v", i, j, parsed.RTT(i, j), orig.RTT(i, j))
			}
		}
	}
}
