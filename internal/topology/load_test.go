package topology

import (
	"strings"
	"testing"
	"time"
)

const sampleMatrix = `
# measured on our lab grid
from      paris  lyon   nice
paris     0.050  4.2    9.0
lyon      4.1    0.030  6.5
nice      9.2    6.6    0.040
`

func TestParseMatrix(t *testing.T) {
	g, err := ParseMatrix(strings.NewReader(sampleMatrix), 5)
	if err != nil {
		t.Fatal(err)
	}
	if g.NumClusters() != 3 || g.NumNodes() != 15 {
		t.Fatalf("clusters=%d nodes=%d", g.NumClusters(), g.NumNodes())
	}
	if g.ClusterName(1) != "lyon" {
		t.Errorf("ClusterName(1) = %q", g.ClusterName(1))
	}
	if got, want := g.RTT(0, 2), 9*time.Millisecond; got != want {
		t.Errorf("RTT(paris,nice) = %v, want %v", got, want)
	}
	if got, want := g.RTT(1, 1), 30*time.Microsecond; got != want {
		t.Errorf("RTT(lyon,lyon) = %v, want %v", got, want)
	}
}

// TestParseMatrixSubMillisecond pins the regression where sub-ms values
// were truncated instead of rounded: 0.0001 ms is 99.999… in binary
// floating point and used to parse as 99ns.
func TestParseMatrixSubMillisecond(t *testing.T) {
	const input = "from a b\na 0.000001 0.0001\nb 0.000489 0\n"
	m, err := ParseMatrixSpec(strings.NewReader(input))
	if err != nil {
		t.Fatal(err)
	}
	want := [][]time.Duration{
		{1 * time.Nanosecond, 100 * time.Nanosecond},
		{489 * time.Nanosecond, 0},
	}
	for i := range want {
		for j := range want[i] {
			if m.RTT[i][j] != want[i][j] {
				t.Errorf("RTT[%d][%d] = %v, want %v", i, j, m.RTT[i][j], want[i][j])
			}
		}
	}
	// And the full trip: format, reparse, compare exactly.
	m2, err := ParseMatrixSpec(strings.NewReader(m.Format()))
	if err != nil {
		t.Fatalf("reparse: %v", err)
	}
	for i := range want {
		for j := range want[i] {
			if m2.RTT[i][j] != m.RTT[i][j] {
				t.Errorf("round trip changed RTT[%d][%d]: %v -> %v", i, j, m.RTT[i][j], m2.RTT[i][j])
			}
		}
	}
}

// TestFormatMS: nanosecond-exact rendering, trailing zeros trimmed to no
// fewer than three decimals so existing three-decimal files stay fixed
// points.
func TestFormatMS(t *testing.T) {
	cases := []struct {
		d    time.Duration
		want string
	}{
		{0, "0.000"},
		{34 * time.Microsecond, "0.034"},
		{15039 * time.Microsecond, "15.039"},
		{time.Nanosecond, "0.000001"},
		{100 * time.Nanosecond, "0.0001"},
		{489 * time.Nanosecond, "0.000489"},
		{time.Millisecond, "1.000"},
		{1500 * time.Nanosecond, "0.0015"},
		{time.Duration(1<<63 - 1), "9223372036854.775807"},
	}
	for _, c := range cases {
		if got := formatMS(c.d); got != c.want {
			t.Errorf("formatMS(%v) = %q, want %q", c.d, got, c.want)
		}
		// Every rendered value must reparse exactly.
		if d, ok := parseMSExact(formatMS(c.d)); !ok || d != c.d {
			t.Errorf("parseMSExact(formatMS(%v)) = %v, %v", c.d, d, ok)
		}
	}
}

// TestParseMSOverflow: values past time.Duration's range are rejected,
// not wrapped.
func TestParseMSOverflow(t *testing.T) {
	for _, f := range []string{"9223372036854.775808", "1e15", "99999999999999999999"} {
		if _, err := ParseMatrixSpec(strings.NewReader("from a\na " + f + "\n")); err == nil {
			t.Errorf("%q: accepted, want overflow error", f)
		}
	}
	// The exact edge of the range must still parse.
	m, err := ParseMatrixSpec(strings.NewReader("from a\na 9223372036854.775807\n"))
	if err != nil {
		t.Fatal(err)
	}
	if m.RTT[0][0] != time.Duration(1<<63-1) {
		t.Errorf("edge value parsed as %v", m.RTT[0][0])
	}
}

func TestParseMatrixErrors(t *testing.T) {
	cases := map[string]string{
		"empty":          "",
		"comments only":  "# nothing here\n",
		"header only":    "from a b\n",
		"no clusters":    "from\nx 1\n",
		"missing row":    "from a b\na 0 1\n",
		"ragged row":     "from a b\na 0 1\nb 1\n",
		"row name order": "from a b\nb 0 1\na 1 0\n",
		"bad number":     "from a\na x\n",
		"negative":       "from a\na -1\n",
	}
	for name, input := range cases {
		if _, err := ParseMatrix(strings.NewReader(input), 2); err == nil {
			t.Errorf("%s: parsed successfully", name)
		}
	}
	if _, err := ParseMatrix(strings.NewReader(sampleMatrix), 0); err == nil {
		t.Error("zero nodes per cluster accepted")
	}
}

// TestMatrixRoundTrip: FormatMatrix output parses back to identical
// latencies, including the built-in Grid'5000 matrix.
func TestMatrixRoundTrip(t *testing.T) {
	orig := Grid5000(3)
	text := FormatMatrix(orig)
	parsed, err := ParseMatrix(strings.NewReader(text), 3)
	if err != nil {
		t.Fatalf("round trip parse: %v\n%s", err, text)
	}
	if parsed.NumClusters() != orig.NumClusters() {
		t.Fatal("cluster count changed")
	}
	for i := 0; i < orig.NumClusters(); i++ {
		if parsed.ClusterName(i) != orig.ClusterName(i) {
			t.Fatalf("name %d changed", i)
		}
		for j := 0; j < orig.NumClusters(); j++ {
			if parsed.RTT(i, j) != orig.RTT(i, j) {
				t.Fatalf("RTT(%d,%d): %v != %v", i, j, parsed.RTT(i, j), orig.RTT(i, j))
			}
		}
	}
}
