// Package simnet provides the simulated grid network: a mutex.Env
// implementation on top of the discrete-event simulator, with per-link
// latencies taken from a topology.Grid and the message accounting the
// paper's evaluation reports (total / intra-cluster / inter-cluster message
// and byte counts).
//
// Addresses are process identifiers: mutex.ID values equal to the global
// node index in the topology. One handler is registered per process; the
// composition layer multiplexes several algorithm instances behind a single
// process handler.
//
// The send→deliver path is the innermost loop of every experiment, so the
// package keeps it allocation-free and map-free on small grids: routing
// state lives in dense slices indexed by process ID, per-pair latencies and
// cluster co-membership are precomputed into flat node×node tables, and
// deliveries are scheduled as typed des events rather than per-message
// closures (see DESIGN.md §10). Above Options.Tables' auto threshold the
// node×node tables switch to a byte-identical cluster-factored
// representation — O(C²) latency matrix, O(N) membership index, sparse
// FIFO watermarks — so grid-scale topologies (10⁵+ nodes) fit in memory
// (DESIGN.md §14).
package simnet

import (
	"fmt"
	"math/rand"
	"time"

	"gridmutex/internal/des"
	"gridmutex/internal/mutex"
	"gridmutex/internal/rng"
	"gridmutex/internal/trace"
)

// Handler receives messages addressed to a process; it is the fabric-wide
// handler contract of the mutex package.
type Handler = mutex.Handler

// HandlerFunc adapts a function to the Handler interface.
type HandlerFunc func(from mutex.ID, m mutex.Message)

// Deliver calls f(from, m).
func (f HandlerFunc) Deliver(from mutex.ID, m mutex.Message) { f(from, m) }

// Options tune the network model.
type Options struct {
	// Jitter is the maximum fractional latency increase applied per
	// message: the delay of each message is multiplied by a uniform
	// factor in [1, 1+Jitter]. Zero means fixed latencies.
	Jitter float64
	// Seed seeds the jitter generator; runs with equal seeds are
	// identical.
	Seed int64
	// Trace, when non-nil, records every send and delivery.
	Trace *trace.Tracer
	// Loss drops each message with this probability (deterministic per
	// Seed). The token algorithms assume reliable channels, so a lossy
	// network needs the reliable wrapper on top to stay live.
	Loss float64
	// KindCounts enables the per-Message.Kind counter map
	// (Counters.ByKind). It is opt-in because the map insert — a string
	// hash per message — is the single most expensive accounting step;
	// the default hot path touches no maps at all. Unsupported on LP
	// networks (NewLP), whose counter shards merge numerically.
	KindCounts bool
	// Tables selects the routing-table representation; the default
	// TablesAuto picks dense node×node tables for small grids and the
	// factored O(C²+N) representation above DenseNodeLimit nodes. Both
	// produce byte-identical simulations (see DESIGN.md §14); the switch
	// trades per-send indexed loads against quadratic memory.
	Tables TableMode
	// Traces, for NewLP networks only, records per logical process: entry
	// i receives the sends and deliveries executed by LP i. Per-LP tracers
	// keep tracing race-free and deterministic under parallel window
	// execution; merge them with trace.Merge. Either empty or one entry
	// per LP (nil entries disable tracing for that LP).
	Traces []*trace.Tracer
}

// Network simulates the grid's message fabric. It runs either over a
// single simulator (New) or sharded across the logical processes of a
// des.Windows scheduler (NewLP); in the latter case every piece of
// mutable per-message state — rng streams, counters, tracers — is
// partitioned by LP so parallel window execution stays race-free and
// the outcome is independent of worker count.
type Network struct {
	sims []*des.Simulator // one per LP; classic networks have exactly one
	win  *des.Windows     // nil for classic single-simulator networks
	grid gridModel
	opts Options
	rngs []*rand.Rand // per-LP jitter/loss streams

	// Dense per-process routing state, indexed by mutex.ID. The tables
	// grow on demand because hierarchical deployments register
	// coordinator processes with IDs beyond the topology's node count.
	handlers []Handler // nil entry = unregistered
	nodeOf   []int32   // logical process -> physical node; -1 = unregistered
	sinks    []*sink   // per-process delivery interposers (typed des events)
	// lastAt is the flat FIFO watermark of dense-table networks,
	// lastAt[from*len(handlers)+to]: the latest delivery instant scheduled
	// on the ordered link, or -1 when the link has carried nothing yet.
	// Each entry is written only while executing the sender's LP, so the
	// table needs no locking. Factored networks replace the procs² table
	// with lastTo — one map per sender, materializing entries only for
	// links that have actually carried a message. The per-sender split
	// preserves the locking-free contract: a sender's map is touched only
	// on its own LP.
	lastAt []des.Time
	lastTo []map[mutex.ID]des.Time

	// Routing tables precomputed from the gridModel once, so the
	// per-message latency and intra/inter classification are indexed
	// loads instead of interface calls into nested slices. Dense networks
	// fill the flat node×node tables oneWay/sameCl; factored networks
	// (factored == true) fill the O(N) node→cluster index clOf and the
	// O(C²) cluster pair matrix clOneWay instead, and classify
	// same-cluster by index equality. Both paths compute identical delays
	// — RTT(cluster(from), cluster(to))/2 — so the representations are
	// observably interchangeable.
	nodes    int
	oneWay   []des.Time
	sameCl   []bool
	factored bool
	clOf     []int32
	clOneWay []des.Time
	clC      int
	// clModel, when non-nil, replaces the clOneWay matrix: the factored
	// network computes RTT(ca,cb)/2 per send straight from the cluster
	// model. It is set when even the O(C²) matrix would dominate memory
	// (clusterPairLimit); topology models answer RTT in O(1) (explicit
	// matrices) or O(levels) (trees), so the per-send cost stays flat.
	// The arithmetic is the same division either way, so all three
	// representations schedule identical instants.
	clModel  clusterModel
	lpOfNode []int32 // physical node -> LP index; all zero when classic
	jittery  bool    // opts.Jitter > 0
	lossy    bool    // opts.Loss > 0

	// shards holds per-LP message accounting, merged by Counters().
	shards  []Counters
	tracers []*trace.Tracer // per-LP; entry nil = tracing off for that LP

	// Crash state: down is nil until the first Crash, and anyDown caches
	// len(down-set) > 0 so fault-free runs pay one branch per send.
	down    []bool
	anyDown bool

	// Partition state: side is nil until the first Partition, and anyPart
	// caches whether a cut is active so partition-free runs pay one branch
	// per delivery. side[node] is 1 on the cut-off side, 0 on the rest.
	side    []uint8
	anyPart bool
}

// gridModel is the slice of topology.Grid the network needs; an interface
// keeps simnet testable with synthetic latency functions.
type gridModel interface {
	NumNodes() int
	OneWay(from, to int) time.Duration
	SameCluster(a, b int) bool
}

// clusterModel is the richer slice a grid must expose for the factored
// tables: cluster membership and cluster-pair round trips, from which the
// network derives every per-node quantity. topology.Grid implements it.
type clusterModel interface {
	NumClusters() int
	ClusterOf(n int) int
	RTT(a, b int) time.Duration
}

// TableMode selects the routing-table representation.
type TableMode uint8

const (
	// TablesAuto (the default) uses dense tables up to DenseNodeLimit
	// nodes and the factored representation beyond — provided the grid
	// implements the cluster interfaces; synthetic latency models that
	// don't stay dense at any size.
	TablesAuto TableMode = iota
	// TablesDense forces the node×node tables (O(N²) memory).
	TablesDense
	// TablesFactored forces the cluster-factored tables (O(C²+N) memory).
	// Panics if the grid does not expose cluster structure.
	TablesFactored
)

// DenseNodeLimit is the TablesAuto crossover: grids at or below this node
// count precompute dense node×node tables (fastest per send, O(N²)
// memory — every committed figure runs far below the limit), larger
// grids use the factored representation. 512 nodes puts the dense tables
// at a few MB, well under any modern cache-of-consequence while still
// covering the paper's 189-node deployments with headroom.
const DenseNodeLimit = 512

// clusterPairLimit bounds the precomputed cluster-pair matrix of factored
// networks: up to this many C² entries the one-way delays are cached (2 MB
// at the limit); beyond it the network keeps the cluster model and derives
// each delay per send. Without this tier the factored tables would turn
// quadratic again on fine-grained grids — 10⁵ nodes in 10-node clusters is
// 10⁸ pair entries. A var, not a const, so tests can lower the crossover
// and compare both representations on small grids.
var clusterPairLimit = 1 << 18

// New builds a network over sim using grid latencies.
func New(sim *des.Simulator, grid gridModel, opts Options) *Network {
	if len(opts.Traces) > 0 {
		panic("simnet: Options.Traces is for NewLP; classic networks use Options.Trace")
	}
	n := newNetwork(grid, opts)
	n.sims = []*des.Simulator{sim}
	n.rngs = []*rand.Rand{rng.New(opts.Seed)}
	n.shards = make([]Counters, 1)
	n.tracers = []*trace.Tracer{opts.Trace}
	n.lpOfNode = make([]int32, n.nodes)
	n.growProcs(n.nodes)
	return n
}

// NewLP builds a network sharded across the logical processes of a
// window scheduler: lpOf assigns each physical node to an LP (the
// cluster partition, in the harness), messages between nodes of one LP
// schedule on that LP's simulator, and messages crossing LPs route
// through win.CrossSend so they arrive at the next window barrier.
// Every inter-LP one-way latency must be at least the scheduler's
// lookahead — the caller guarantees this by using the topology's
// MinInterOneWay as the lookahead.
//
// Per-LP rng streams are derived from opts.Seed, so an LP network is a
// different (but per-seed deterministic) random universe than a classic
// network with the same seed: runs compare LP-vs-LP, not LP-vs-classic.
func NewLP(win *des.Windows, grid gridModel, lpOf func(node int) int, opts Options) *Network {
	if opts.KindCounts {
		panic("simnet: KindCounts is unsupported on LP networks")
	}
	if opts.Trace != nil {
		panic("simnet: Options.Trace is for New; LP networks trace per LP via Options.Traces")
	}
	k := win.NumLPs()
	if len(opts.Traces) != 0 && len(opts.Traces) != k {
		panic(fmt.Sprintf("simnet: %d tracers for %d LPs", len(opts.Traces), k))
	}
	n := newNetwork(grid, opts)
	n.win = win
	n.sims = make([]*des.Simulator, k)
	n.rngs = make([]*rand.Rand, k)
	for i := 0; i < k; i++ {
		n.sims[i] = win.LP(i)
		n.rngs[i] = rng.New(lpSeed(opts.Seed, i))
	}
	n.shards = make([]Counters, k)
	n.tracers = make([]*trace.Tracer, k)
	copy(n.tracers, opts.Traces)
	n.lpOfNode = make([]int32, n.nodes)
	for node := 0; node < n.nodes; node++ {
		lp := lpOf(node)
		if lp < 0 || lp >= k {
			panic(fmt.Sprintf("simnet: node %d assigned to LP %d of %d", node, lp, k))
		}
		n.lpOfNode[node] = int32(lp)
	}
	n.growProcs(n.nodes)
	return n
}

// newNetwork validates the options and builds the LP-independent part.
func newNetwork(grid gridModel, opts Options) *Network {
	if opts.Jitter < 0 {
		panic("simnet: negative jitter")
	}
	if opts.Loss < 0 || opts.Loss >= 1 {
		panic(fmt.Sprintf("simnet: loss %v outside [0, 1)", opts.Loss))
	}
	nodes := grid.NumNodes()
	n := &Network{
		grid:    grid,
		opts:    opts,
		nodes:   nodes,
		jittery: opts.Jitter > 0,
		lossy:   opts.Loss > 0,
	}
	cm, clustered := grid.(clusterModel)
	switch opts.Tables {
	case TablesFactored:
		if !clustered {
			panic("simnet: TablesFactored needs a grid exposing cluster structure (NumClusters/ClusterOf/RTT)")
		}
		n.factored = true
	case TablesAuto:
		n.factored = clustered && nodes > DenseNodeLimit
	case TablesDense:
	default:
		panic(fmt.Sprintf("simnet: unknown table mode %d", opts.Tables))
	}
	if n.factored {
		// O(N) node→cluster index plus O(C²) cluster-pair one-way delays.
		// The entries are the same divisions the dense path performs per
		// node pair — RTT/2 — so both modes schedule identical instants.
		// When even the pair matrix would dominate memory, skip it and
		// keep the model itself: delays derive per send.
		c := cm.NumClusters()
		n.clC = c
		n.clOf = make([]int32, nodes)
		for i := 0; i < nodes; i++ {
			n.clOf[i] = int32(cm.ClusterOf(i))
		}
		if c > clusterPairLimit/c { // c*c > limit, overflow-safe
			n.clModel = cm
			return n
		}
		n.clOneWay = make([]des.Time, c*c)
		for a := 0; a < c; a++ {
			row := a * c
			for b := 0; b < c; b++ {
				n.clOneWay[row+b] = cm.RTT(a, b) / 2
			}
		}
		return n
	}
	n.oneWay = make([]des.Time, nodes*nodes)
	n.sameCl = make([]bool, nodes*nodes)
	for f := 0; f < nodes; f++ {
		row := f * nodes
		for t := 0; t < nodes; t++ {
			n.oneWay[row+t] = grid.OneWay(f, t)
			n.sameCl[row+t] = grid.SameCluster(f, t)
		}
	}
	return n
}

// lpSeed derives LP i's rng seed from the run seed through the
// SplitMix64 finalizer, so neighbouring LPs draw unrelated streams.
func lpSeed(base int64, i int) int64 {
	z := uint64(base) + 0x9e3779b97f4a7c15*uint64(i+1)
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return int64(z ^ (z >> 31))
}

// growProcs widens the per-process tables to hold at least size IDs,
// re-striding the FIFO watermark array (dense mode) or extending the
// per-sender watermark maps (factored mode). Registration happens during
// deployment wiring, so the rebuild never runs on the message hot path.
func (n *Network) growProcs(size int) {
	old := len(n.handlers)
	if size <= old {
		return
	}
	n.handlers = append(n.handlers, make([]Handler, size-old)...)
	n.sinks = append(n.sinks, make([]*sink, size-old)...)
	for i := old; i < size; i++ {
		n.nodeOf = append(n.nodeOf, -1)
	}
	if n.factored {
		// Sparse watermarks: one map per sender, entries appear only for
		// links that carry traffic. Allocating the (empty) maps here keeps
		// the send path free of nil checks and lazy construction.
		n.lastTo = append(n.lastTo, make([]map[mutex.ID]des.Time, size-old)...)
		for i := old; i < size; i++ {
			n.lastTo[i] = make(map[mutex.ID]des.Time)
		}
		return
	}
	last := make([]des.Time, size*size)
	for i := range last {
		last[i] = -1
	}
	for f := 0; f < old; f++ {
		copy(last[f*size:f*size+old], n.lastAt[f*old:(f+1)*old])
	}
	n.lastAt = last
}

// Register installs the handler for process id, hosted on the physical node
// with the same index. Registering an id twice or an id outside the
// topology panics: both are wiring bugs.
func (n *Network) Register(id mutex.ID, h Handler) {
	n.RegisterAt(id, int(id), h)
}

// RegisterAt installs the handler for logical process id hosted on physical
// topology node. Several logical processes may share one physical node
// (e.g. a multi-level hierarchy co-locating a region coordinator with a
// cluster coordinator); latency and intra/inter classification follow the
// physical node.
func (n *Network) RegisterAt(id mutex.ID, node int, h Handler) {
	if node < 0 || node >= n.nodes {
		panic(fmt.Sprintf("simnet: node %d outside topology of %d nodes", node, n.nodes))
	}
	if id < 0 {
		panic(fmt.Sprintf("simnet: negative process id %d", id))
	}
	if int(id) < len(n.handlers) && n.handlers[id] != nil {
		panic(fmt.Sprintf("simnet: process %d registered twice", id))
	}
	if h == nil {
		panic("simnet: nil handler")
	}
	n.growProcs(int(id) + 1)
	n.handlers[id] = h
	n.nodeOf[id] = int32(node)
	n.sinks[id] = &sink{net: n, to: id, toNode: int32(node), lp: n.lpOfNode[node]}
}

// Endpoint returns the mutex.Env bound to process id. The process must be
// Registered before any message addressed to it arrives.
func (n *Network) Endpoint(id mutex.ID) mutex.Env {
	return &endpoint{net: n, self: id}
}

// Counters returns a snapshot of the message accounting so far. On LP
// networks the per-LP shards are summed; do not call while a window is
// executing in parallel.
func (n *Network) Counters() Counters {
	c := n.shards[0]
	for i := 1; i < len(n.shards); i++ {
		s := &n.shards[i]
		c.Messages += s.Messages
		c.Bytes += s.Bytes
		c.IntraMessages += s.IntraMessages
		c.IntraBytes += s.IntraBytes
		c.InterMessages += s.InterMessages
		c.InterBytes += s.InterBytes
		c.Dropped += s.Dropped
		c.DroppedDead += s.DroppedDead
		c.DroppedPartition += s.DroppedPartition
	}
	return c
}

// ResetCounters zeroes the accounting (used to exclude warm-up phases).
func (n *Network) ResetCounters() {
	for i := range n.shards {
		n.shards[i] = Counters{}
	}
}

// Crash marks a physical node as failed: from this instant its processes
// emit nothing, and any message addressed to it — whether sent before or
// after the crash — is discarded if the node is still down when the
// message would arrive; the fail-stop model. A node that Restarts while
// a message is in flight receives it: whether a message is lost is a
// property of the receiver's state at delivery time, never of the
// instant it was sent. Crashing a crashed node is a no-op.
func (n *Network) Crash(node int) {
	n.checkNode(node)
	if n.down == nil {
		n.down = make([]bool, n.nodes)
	}
	n.down[node] = true
	n.anyDown = true
}

// Restart clears a node's crashed state: processes hosted on it can send
// and receive again. The processes' protocol state is whatever the owner
// rebuilds — the network only restores connectivity.
func (n *Network) Restart(node int) {
	n.checkNode(node)
	if n.down == nil {
		return
	}
	n.down[node] = false
	n.anyDown = false
	for _, d := range n.down {
		if d {
			n.anyDown = true
			break
		}
	}
}

// Down reports whether a physical node is currently crashed.
func (n *Network) Down(node int) bool {
	n.checkNode(node)
	return n.anyDown && n.down[node]
}

// ProcessDown reports whether the physical node hosting logical process id
// is currently crashed. Unregistered processes panic: asking about them is
// a wiring bug.
func (n *Network) ProcessDown(id mutex.ID) bool {
	if id < 0 || int(id) >= len(n.nodeOf) || n.nodeOf[id] < 0 {
		panic(fmt.Sprintf("simnet: ProcessDown for unregistered process %d", id))
	}
	return n.anyDown && n.down[n.nodeOf[id]]
}

// Partition cuts the network into two sides: the given node set and the
// rest. A message whose sender-side node and receiver-side node fall on
// opposite sides of the cut when the message would *arrive* is discarded
// (counted in Counters.DroppedPartition) — the same delivery-time
// classification as crashed destinations, so a message in flight across
// the cut when Heal runs is delivered, and a message sent just before the
// cut but arriving during it is lost. The send path is untouched: loss
// and jitter rng draws are consumed and FIFO watermarks advance exactly
// as on an unpartitioned network, so traces stay byte-identical per seed
// up to the dropped deliveries themselves.
//
// Only one cut is active at a time; calling Partition again replaces the
// previous cut. An empty node set panics — it would be a no-op cut and is
// always a caller bug.
func (n *Network) Partition(nodes []int) {
	if len(nodes) == 0 {
		panic("simnet: Partition with empty node set")
	}
	if n.side == nil {
		n.side = make([]uint8, n.nodes)
	}
	for i := range n.side {
		n.side[i] = 0
	}
	for _, node := range nodes {
		n.checkNode(node)
		n.side[node] = 1
	}
	n.anyPart = true
}

// Heal removes the active partition cut. Messages already in flight across
// the former cut are delivered normally — link state is evaluated at
// delivery time. Healing an unpartitioned network is a no-op.
func (n *Network) Heal() {
	n.anyPart = false
}

// Partitioned reports whether the two physical nodes are currently on
// opposite sides of an active cut.
func (n *Network) Partitioned(a, b int) bool {
	n.checkNode(a)
	n.checkNode(b)
	return n.anyPart && n.side[a] != n.side[b]
}

func (n *Network) checkNode(node int) {
	if node < 0 || node >= n.nodes {
		panic(fmt.Sprintf("simnet: node %d outside topology of %d nodes", node, n.nodes))
	}
}

// send implements transmission with latency, jitter, FIFO per ordered link
// and accounting. The steady-state path allocates nothing: every lookup is
// an indexed load on a dense slice and the delivery is a typed des event.
func (n *Network) send(from, to mutex.ID, m mutex.Message) {
	if m == nil {
		panic("simnet: nil message")
	}
	procs := len(n.handlers)
	if to < 0 || int(to) >= procs || n.handlers[to] == nil {
		panic(fmt.Sprintf("simnet: message %s from %d to unregistered process %d", m.Kind(), from, to))
	}
	if from < 0 || int(from) >= procs || n.nodeOf[from] < 0 {
		panic(fmt.Sprintf("simnet: message %s sent by unregistered process %d", m.Kind(), from))
	}
	fromNode, toNode := n.nodeOf[from], n.nodeOf[to]
	// Fail-stop fault model: a dead sender emits nothing (its still-queued
	// timers may fire, but nothing leaves the node). anyDown is false until
	// the first Crash, so fault-free runs are byte-identical to builds
	// without the fault model. There is deliberately no dead-*destination*
	// check here: whether a message is lost depends on the receiver's
	// state when it arrives, not when it leaves — sink.Deliver classifies.
	if n.anyDown && n.down[fromNode] {
		return
	}
	srcLP := n.lpOfNode[fromNode]
	var sameCl bool
	var delay des.Time
	if n.factored {
		ca, cb := n.clOf[fromNode], n.clOf[toNode]
		sameCl = ca == cb
		if n.clModel != nil {
			delay = n.clModel.RTT(int(ca), int(cb)) / 2
		} else {
			delay = n.clOneWay[int(ca)*n.clC+int(cb)]
		}
	} else {
		pair := int(fromNode)*n.nodes + int(toNode)
		sameCl = n.sameCl[pair]
		delay = n.oneWay[pair]
	}
	n.shards[srcLP].note(m, sameCl, n.opts.KindCounts)
	if t := n.tracers[srcLP]; t != nil {
		t.Record(trace.Send, from, to, m.Kind())
	}
	if n.lossy && n.rngs[srcLP].Float64() < n.opts.Loss {
		n.shards[srcLP].Dropped++
		return
	}
	if n.jittery {
		delay = time.Duration(float64(delay) * (1 + n.opts.Jitter*n.rngs[srcLP].Float64()))
	}
	at := n.sims[srcLP].Now() + delay
	// FIFO per ordered pair: never deliver before an earlier message on
	// the same link. Dense watermarks are -1 on untouched links, below
	// any schedulable instant; sparse watermarks simply have no entry —
	// both paths bump identically on links that have carried a message.
	if n.factored {
		if last, ok := n.lastTo[from][to]; ok && at <= last {
			at = last + time.Nanosecond
		}
		n.lastTo[from][to] = at
	} else {
		link := int(from)*procs + int(to)
		if last := n.lastAt[link]; at <= last {
			at = last + time.Nanosecond
		}
		n.lastAt[link] = at
	}
	s := n.sinks[to]
	if s.lp != srcLP {
		// Crossing LPs: buffer on the scheduler, which injects the
		// delivery into the destination LP at the next window barrier.
		// The inter-LP one-way delay is at least the lookahead, so `at`
		// always lands beyond the destination's current window.
		n.win.CrossSend(int(srcLP), int(s.lp), at, s, from, m)
		return
	}
	n.sims[srcLP].AtDeliver(at, s, from, m)
}

// sink is the per-destination delivery interposer: it is the handler typed
// des delivery events dispatch to, and applies the checks that must happen
// at delivery time (the receiver may have crashed while the message was in
// flight) plus tracing, before handing the message to the registered
// process handler. One sink exists per process, so scheduling a delivery
// stores a pre-existing interface value — no per-message state.
type sink struct {
	net    *Network
	to     mutex.ID
	toNode int32
	lp     int32 // LP owning the destination node
}

// Deliver implements mutex.Handler for the delivery event. It always
// runs on the destination's LP — locally scheduled or injected at a
// window barrier — so the shard and tracer indexed by s.lp are owned by
// the executing goroutine.
func (s *sink) Deliver(from mutex.ID, m mutex.Message) {
	n := s.net
	if n.anyDown && n.down[s.toNode] {
		n.shards[s.lp].DroppedDead++
		return
	}
	if n.anyPart && n.side[s.toNode] != n.side[n.nodeOf[from]] {
		n.shards[s.lp].DroppedPartition++
		return
	}
	if t := n.tracers[s.lp]; t != nil {
		t.Record(trace.Deliver, from, s.to, m.Kind())
	}
	n.handlers[s.to].Deliver(from, m)
}

// endpoint is the per-process mutex.Env.
type endpoint struct {
	net  *Network
	self mutex.ID
}

func (e *endpoint) Send(to mutex.ID, m mutex.Message) { e.net.send(e.self, to, m) }

// DeliversOnce advertises the recycling contract core.Process keys on:
// simnet hands each sent message to its destination handler at most once
// (drops lose it entirely) and keeps no reference afterwards — the trace
// and counters read only Kind and Size, at send or delivery time.
func (e *endpoint) DeliversOnce() {}

// Local schedules f at the current instant on the process's own LP;
// FIFO ordering of the event queue guarantees it runs after the handler
// that scheduled it.
func (e *endpoint) Local(f func()) {
	n := e.net
	if e.self < 0 || int(e.self) >= len(n.nodeOf) || n.nodeOf[e.self] < 0 {
		panic(fmt.Sprintf("simnet: Local on unregistered process %d", e.self))
	}
	n.sims[n.lpOfNode[n.nodeOf[e.self]]].After(0, f)
}

// Counters aggregates message traffic, split the way the paper reports it.
type Counters struct {
	// Messages and Bytes count every message sent.
	Messages, Bytes int64
	// Intra* count messages whose sender and receiver share a cluster.
	IntraMessages, IntraBytes int64
	// Inter* count messages crossing a cluster boundary — the quantity
	// of Figure 4(b).
	InterMessages, InterBytes int64
	// ByKind counts messages per Message.Kind. It is populated only when
	// Options.KindCounts is set; the default hot path skips the map.
	ByKind map[string]int64
	// Dropped counts messages lost to injected loss (they are included
	// in the send counts above).
	Dropped int64
	// DroppedDead counts messages discarded because their destination
	// node was crashed when the message arrived (fail-stop fault model);
	// classification happens at delivery time, so a message in flight
	// toward a node that restarts before it lands is delivered, not
	// counted here. Messages a *dead sender* tries to emit are suppressed
	// before any accounting and appear in no counter.
	DroppedDead int64
	// DroppedPartition counts messages discarded because their link
	// crossed an active partition cut when the message arrived. Like
	// DroppedDead, classification is a delivery-time property: a message
	// in flight across the cut when the partition heals is delivered.
	DroppedPartition int64
}

func (c *Counters) note(m mutex.Message, sameCluster, kinds bool) {
	size := int64(m.Size())
	c.Messages++
	c.Bytes += size
	if sameCluster {
		c.IntraMessages++
		c.IntraBytes += size
	} else {
		c.InterMessages++
		c.InterBytes += size
	}
	if kinds {
		if c.ByKind == nil {
			//lint:allow allochygiene built once per counter when KindCounts tracing is opted into; steady-state sends with tracing off never reach this branch
			c.ByKind = make(map[string]int64)
		}
		c.ByKind[m.Kind()]++
	}
}
