// Package simnet provides the simulated grid network: a mutex.Env
// implementation on top of the discrete-event simulator, with per-link
// latencies taken from a topology.Grid and the message accounting the
// paper's evaluation reports (total / intra-cluster / inter-cluster message
// and byte counts).
//
// Addresses are process identifiers: mutex.ID values equal to the global
// node index in the topology. One handler is registered per process; the
// composition layer multiplexes several algorithm instances behind a single
// process handler.
package simnet

import (
	"fmt"
	"math/rand"
	"time"

	"gridmutex/internal/des"
	"gridmutex/internal/mutex"
	"gridmutex/internal/trace"
)

// Handler receives messages addressed to a process; it is the fabric-wide
// handler contract of the mutex package.
type Handler = mutex.Handler

// HandlerFunc adapts a function to the Handler interface.
type HandlerFunc func(from mutex.ID, m mutex.Message)

// Deliver calls f(from, m).
func (f HandlerFunc) Deliver(from mutex.ID, m mutex.Message) { f(from, m) }

// Options tune the network model.
type Options struct {
	// Jitter is the maximum fractional latency increase applied per
	// message: the delay of each message is multiplied by a uniform
	// factor in [1, 1+Jitter]. Zero means fixed latencies.
	Jitter float64
	// Seed seeds the jitter generator; runs with equal seeds are
	// identical.
	Seed int64
	// Trace, when non-nil, records every send and delivery.
	Trace *trace.Tracer
	// Loss drops each message with this probability (deterministic per
	// Seed). The token algorithms assume reliable channels, so a lossy
	// network needs the reliable wrapper on top to stay live.
	Loss float64
}

// link identifies an ordered sender/receiver pair for FIFO enforcement.
type link struct{ from, to mutex.ID }

// Network simulates the grid's message fabric.
type Network struct {
	sim      *des.Simulator
	grid     gridModel
	opts     Options
	rng      *rand.Rand
	handlers map[mutex.ID]Handler
	nodeOf   map[mutex.ID]int // logical process -> physical topology node
	lastAt   map[link]des.Time
	counters Counters
	down     map[int]bool // physical nodes currently crashed
}

// gridModel is the slice of topology.Grid the network needs; an interface
// keeps simnet testable with synthetic latency functions.
type gridModel interface {
	NumNodes() int
	OneWay(from, to int) time.Duration
	SameCluster(a, b int) bool
}

// New builds a network over sim using grid latencies.
func New(sim *des.Simulator, grid gridModel, opts Options) *Network {
	if opts.Jitter < 0 {
		panic("simnet: negative jitter")
	}
	if opts.Loss < 0 || opts.Loss >= 1 {
		if opts.Loss != 0 {
			panic("simnet: loss must be in [0, 1)")
		}
	}
	return &Network{
		sim:      sim,
		grid:     grid,
		opts:     opts,
		rng:      rand.New(rand.NewSource(opts.Seed)),
		handlers: make(map[mutex.ID]Handler),
		nodeOf:   make(map[mutex.ID]int),
		lastAt:   make(map[link]des.Time),
	}
}

// Register installs the handler for process id, hosted on the physical node
// with the same index. Registering an id twice or an id outside the
// topology panics: both are wiring bugs.
func (n *Network) Register(id mutex.ID, h Handler) {
	n.RegisterAt(id, int(id), h)
}

// RegisterAt installs the handler for logical process id hosted on physical
// topology node. Several logical processes may share one physical node
// (e.g. a multi-level hierarchy co-locating a region coordinator with a
// cluster coordinator); latency and intra/inter classification follow the
// physical node.
func (n *Network) RegisterAt(id mutex.ID, node int, h Handler) {
	if node < 0 || node >= n.grid.NumNodes() {
		panic(fmt.Sprintf("simnet: node %d outside topology of %d nodes", node, n.grid.NumNodes()))
	}
	if _, dup := n.handlers[id]; dup {
		panic(fmt.Sprintf("simnet: process %d registered twice", id))
	}
	if h == nil {
		panic("simnet: nil handler")
	}
	n.handlers[id] = h
	n.nodeOf[id] = node
}

// Endpoint returns the mutex.Env bound to process id. The process must be
// Registered before any message addressed to it arrives.
func (n *Network) Endpoint(id mutex.ID) mutex.Env {
	return &endpoint{net: n, self: id}
}

// Counters returns a snapshot of the message accounting so far.
func (n *Network) Counters() Counters { return n.counters }

// ResetCounters zeroes the accounting (used to exclude warm-up phases).
func (n *Network) ResetCounters() { n.counters = Counters{} }

// Crash marks a physical node as failed: from this instant every message
// sent by or addressed to a process hosted on it is silently discarded —
// the fail-stop model. Messages already in flight still arrive (they left
// before the crash); deliveries *to* a dead node are suppressed at
// delivery time. Crashing a crashed node is a no-op.
func (n *Network) Crash(node int) {
	n.checkNode(node)
	if n.down == nil {
		n.down = make(map[int]bool)
	}
	n.down[node] = true
}

// Restart clears a node's crashed state: processes hosted on it can send
// and receive again. The processes' protocol state is whatever the owner
// rebuilds — the network only restores connectivity.
func (n *Network) Restart(node int) {
	n.checkNode(node)
	delete(n.down, node)
}

// Down reports whether a physical node is currently crashed.
func (n *Network) Down(node int) bool {
	n.checkNode(node)
	return n.down[node]
}

// ProcessDown reports whether the physical node hosting logical process id
// is currently crashed. Unregistered processes panic: asking about them is
// a wiring bug.
func (n *Network) ProcessDown(id mutex.ID) bool {
	node, ok := n.nodeOf[id]
	if !ok {
		panic(fmt.Sprintf("simnet: ProcessDown for unregistered process %d", id))
	}
	return n.down[node]
}

func (n *Network) checkNode(node int) {
	if node < 0 || node >= n.grid.NumNodes() {
		panic(fmt.Sprintf("simnet: node %d outside topology of %d nodes", node, n.grid.NumNodes()))
	}
}

// send implements transmission with latency, jitter, FIFO per ordered link
// and accounting.
func (n *Network) send(from, to mutex.ID, m mutex.Message) {
	if m == nil {
		panic("simnet: nil message")
	}
	h, ok := n.handlers[to]
	if !ok {
		panic(fmt.Sprintf("simnet: message %s from %d to unregistered process %d", m.Kind(), from, to))
	}
	fromNode, ok := n.nodeOf[from]
	if !ok {
		panic(fmt.Sprintf("simnet: message %s sent by unregistered process %d", m.Kind(), from))
	}
	toNode := n.nodeOf[to]
	// Fail-stop fault model: a dead sender emits nothing (its still-queued
	// timers may fire, but nothing leaves the node), and anything addressed
	// to a dead node vanishes. The guards are plain map lookups on a map
	// that is nil until the first Crash, so fault-free runs are
	// byte-identical to builds without the fault model.
	if len(n.down) > 0 && n.down[fromNode] {
		return
	}
	n.counters.note(m, n.grid.SameCluster(fromNode, toNode))
	n.opts.Trace.Record(trace.Send, from, to, m.Kind())
	if len(n.down) > 0 && n.down[toNode] {
		n.counters.DroppedDead++
		return
	}
	if n.opts.Loss > 0 && n.rng.Float64() < n.opts.Loss {
		n.counters.Dropped++
		return
	}
	delay := n.grid.OneWay(fromNode, toNode)
	if n.opts.Jitter > 0 {
		delay = time.Duration(float64(delay) * (1 + n.opts.Jitter*n.rng.Float64()))
	}
	at := n.sim.Now() + delay
	// FIFO per ordered pair: never deliver before an earlier message on
	// the same link.
	l := link{from, to}
	if last, ok := n.lastAt[l]; ok && at <= last {
		at = last + time.Nanosecond
	}
	n.lastAt[l] = at
	n.sim.At(at, func() {
		// The receiver may have crashed while the message was in flight.
		if len(n.down) > 0 && n.down[toNode] {
			n.counters.DroppedDead++
			return
		}
		n.opts.Trace.Record(trace.Deliver, from, to, m.Kind())
		h.Deliver(from, m)
	})
}

// endpoint is the per-process mutex.Env.
type endpoint struct {
	net  *Network
	self mutex.ID
}

func (e *endpoint) Send(to mutex.ID, m mutex.Message) { e.net.send(e.self, to, m) }

// Local schedules f at the current instant; FIFO ordering of the event
// queue guarantees it runs after the handler that scheduled it.
func (e *endpoint) Local(f func()) { e.net.sim.After(0, f) }

// Counters aggregates message traffic, split the way the paper reports it.
type Counters struct {
	// Messages and Bytes count every message sent.
	Messages, Bytes int64
	// Intra* count messages whose sender and receiver share a cluster.
	IntraMessages, IntraBytes int64
	// Inter* count messages crossing a cluster boundary — the quantity
	// of Figure 4(b).
	InterMessages, InterBytes int64
	// ByKind counts messages per Message.Kind.
	ByKind map[string]int64
	// Dropped counts messages lost to injected loss (they are included
	// in the send counts above).
	Dropped int64
	// DroppedDead counts messages discarded because their destination
	// node was crashed at send or delivery time (fail-stop fault model).
	// Messages a *dead sender* tries to emit are suppressed before any
	// accounting and appear in no counter.
	DroppedDead int64
}

func (c *Counters) note(m mutex.Message, sameCluster bool) {
	size := int64(m.Size())
	c.Messages++
	c.Bytes += size
	if sameCluster {
		c.IntraMessages++
		c.IntraBytes += size
	} else {
		c.InterMessages++
		c.InterBytes += size
	}
	if c.ByKind == nil {
		c.ByKind = make(map[string]int64)
	}
	c.ByKind[m.Kind()]++
}
