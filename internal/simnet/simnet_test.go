package simnet

import (
	"fmt"
	"testing"
	"time"

	"gridmutex/internal/des"
	"gridmutex/internal/mutex"
	"gridmutex/internal/topology"
	"gridmutex/internal/trace"
)

// ping is a minimal message for transport tests.
type ping struct {
	kind string
	size int
}

func (p ping) Kind() string { return p.kind }
func (p ping) Size() int    { return p.size }

type delivery struct {
	at   des.Time
	from mutex.ID
	m    mutex.Message
}

type recorder struct {
	sim *des.Simulator
	got []delivery
}

func (r *recorder) Deliver(from mutex.ID, m mutex.Message) {
	r.got = append(r.got, delivery{r.sim.Now(), from, m})
}

func twoClusterNet(t *testing.T, opts Options) (*des.Simulator, *Network, *recorder, *recorder) {
	t.Helper()
	sim := des.New()
	// 2 clusters of 2 nodes; 2ms local RTT, 20ms remote RTT.
	g := topology.Uniform(2, 2, 2*time.Millisecond, 20*time.Millisecond)
	n := New(sim, g, opts)
	r0, r2 := &recorder{sim: sim}, &recorder{sim: sim}
	n.Register(0, r0)
	n.Register(2, r2)
	return sim, n, r0, r2
}

func TestLatencyIntraVsInter(t *testing.T) {
	sim, n, r0, r2 := twoClusterNet(t, Options{})
	n.Register(1, HandlerFunc(func(mutex.ID, mutex.Message) {}))
	ep1 := n.Endpoint(1)
	ep1.Send(0, ping{"p", 10}) // intra: one-way 1ms
	ep1.Send(2, ping{"p", 10}) // inter: one-way 10ms
	sim.Run()
	if len(r0.got) != 1 || r0.got[0].at != time.Millisecond {
		t.Fatalf("intra delivery %+v, want at 1ms", r0.got)
	}
	if len(r2.got) != 1 || r2.got[0].at != 10*time.Millisecond {
		t.Fatalf("inter delivery %+v, want at 10ms", r2.got)
	}
	if r2.got[0].from != 1 {
		t.Fatalf("from = %d, want 1", r2.got[0].from)
	}
}

func TestCounters(t *testing.T) {
	sim, n, _, _ := twoClusterNet(t, Options{KindCounts: true})
	n.Register(1, HandlerFunc(func(mutex.ID, mutex.Message) {}))
	ep1 := n.Endpoint(1)
	ep1.Send(0, ping{"a", 10})
	ep1.Send(2, ping{"b", 100})
	ep1.Send(2, ping{"b", 100})
	sim.Run()
	c := n.Counters()
	if c.Messages != 3 || c.Bytes != 210 {
		t.Errorf("total = %d msgs / %d bytes, want 3 / 210", c.Messages, c.Bytes)
	}
	if c.IntraMessages != 1 || c.IntraBytes != 10 {
		t.Errorf("intra = %d / %d, want 1 / 10", c.IntraMessages, c.IntraBytes)
	}
	if c.InterMessages != 2 || c.InterBytes != 200 {
		t.Errorf("inter = %d / %d, want 2 / 200", c.InterMessages, c.InterBytes)
	}
	if c.ByKind["a"] != 1 || c.ByKind["b"] != 2 {
		t.Errorf("ByKind = %v", c.ByKind)
	}
	n.ResetCounters()
	if got := n.Counters(); got.Messages != 0 || got.ByKind != nil {
		t.Errorf("ResetCounters left %+v", got)
	}
}

// Without KindCounts the hot path must touch no maps: ByKind stays nil
// while the scalar counters still accumulate.
func TestCountersByKindOptIn(t *testing.T) {
	sim, n, _, _ := twoClusterNet(t, Options{})
	n.Register(1, HandlerFunc(func(mutex.ID, mutex.Message) {}))
	ep1 := n.Endpoint(1)
	ep1.Send(0, ping{"a", 10})
	ep1.Send(2, ping{"b", 100})
	sim.Run()
	c := n.Counters()
	if c.Messages != 2 || c.Bytes != 110 {
		t.Errorf("total = %d msgs / %d bytes, want 2 / 110", c.Messages, c.Bytes)
	}
	if c.ByKind != nil {
		t.Errorf("ByKind = %v, want nil without KindCounts", c.ByKind)
	}
}

func TestFIFOPerLinkUnderJitter(t *testing.T) {
	sim, n, _, r2 := twoClusterNet(t, Options{Jitter: 0.9, Seed: 42})
	ep0 := n.Endpoint(0)
	const k = 50
	for i := 0; i < k; i++ {
		i := i
		sim.At(des.Time(i)*time.Microsecond, func() { ep0.Send(2, ping{"seq", i}) })
	}
	sim.Run()
	if len(r2.got) != k {
		t.Fatalf("delivered %d, want %d", len(r2.got), k)
	}
	for i, d := range r2.got {
		if d.m.(ping).size != i {
			t.Fatalf("message %d delivered out of order (got payload %d)", i, d.m.(ping).size)
		}
		if i > 0 && d.at <= r2.got[i-1].at {
			t.Fatalf("non-increasing delivery times at %d: %v then %v", i, r2.got[i-1].at, d.at)
		}
	}
}

func TestJitterDeterministicPerSeed(t *testing.T) {
	run := func(seed int64) []des.Time {
		sim, n, _, r2 := twoClusterNet(t, Options{Jitter: 0.5, Seed: seed})
		ep0 := n.Endpoint(0)
		for i := 0; i < 10; i++ {
			sim.At(des.Time(i)*time.Millisecond, func() { ep0.Send(2, ping{"p", 1}) })
		}
		sim.Run()
		out := make([]des.Time, len(r2.got))
		for i, d := range r2.got {
			out[i] = d.at
		}
		return out
	}
	a, b := run(7), run(7)
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("same seed diverged at %d: %v vs %v", i, a[i], b[i])
		}
	}
	c := run(8)
	same := true
	for i := range a {
		if a[i] != c[i] {
			same = false
		}
	}
	if same {
		t.Fatal("different seeds produced identical jitter")
	}
}

func TestLocalRunsAfterCurrentHandler(t *testing.T) {
	sim := des.New()
	g := topology.Single(2, time.Millisecond)
	n := New(sim, g, Options{})
	var order []string
	ep0 := n.Endpoint(0)
	n.Register(0, HandlerFunc(func(mutex.ID, mutex.Message) {}))
	n.Register(1, HandlerFunc(func(from mutex.ID, m mutex.Message) {
		ep1 := n.Endpoint(1)
		ep1.Local(func() { order = append(order, "local") })
		order = append(order, "handler")
	}))
	ep0.Send(1, ping{"p", 1})
	sim.Run()
	if len(order) != 2 || order[0] != "handler" || order[1] != "local" {
		t.Fatalf("order = %v, want [handler local]", order)
	}
}

func TestSelfSendDelivers(t *testing.T) {
	sim := des.New()
	g := topology.Single(1, 2*time.Millisecond)
	n := New(sim, g, Options{})
	r := &recorder{sim: sim}
	n.Register(0, r)
	n.Endpoint(0).Send(0, ping{"self", 1})
	sim.Run()
	if len(r.got) != 1 || r.got[0].at != time.Millisecond {
		t.Fatalf("self-send: %+v", r.got)
	}
}

func TestPanics(t *testing.T) {
	sim := des.New()
	g := topology.Single(2, time.Millisecond)
	n := New(sim, g, Options{})
	n.Register(0, HandlerFunc(func(mutex.ID, mutex.Message) {}))

	expectPanic := func(name string, f func()) {
		t.Helper()
		defer func() {
			if recover() == nil {
				t.Errorf("%s did not panic", name)
			}
		}()
		f()
	}
	expectPanic("duplicate register", func() { n.Register(0, HandlerFunc(func(mutex.ID, mutex.Message) {})) })
	expectPanic("out of range register", func() { n.Register(99, HandlerFunc(func(mutex.ID, mutex.Message) {})) })
	expectPanic("nil handler", func() { n.Register(1, nil) })
	expectPanic("send to unregistered", func() { n.Endpoint(0).Send(1, ping{"p", 1}) })
	expectPanic("nil message", func() { n.Endpoint(0).Send(0, nil) })
	expectPanic("negative jitter", func() { New(sim, g, Options{Jitter: -1}) })
}

func TestLossInjection(t *testing.T) {
	sim := des.New()
	g := topology.Single(2, 2*time.Millisecond)
	n := New(sim, g, Options{Loss: 0.5, Seed: 11})
	delivered := 0
	n.Register(0, HandlerFunc(func(mutex.ID, mutex.Message) {}))
	n.Register(1, HandlerFunc(func(mutex.ID, mutex.Message) { delivered++ }))
	ep := n.Endpoint(0)
	const k = 400
	for i := 0; i < k; i++ {
		ep.Send(1, ping{"p", 1})
	}
	sim.Run()
	c := n.Counters()
	if c.Messages != k {
		t.Fatalf("sent accounting %d, want %d (drops still count as sends)", c.Messages, k)
	}
	if c.Dropped == 0 || c.Dropped == k {
		t.Fatalf("Dropped = %d, want strictly between 0 and %d", c.Dropped, k)
	}
	if int64(delivered)+c.Dropped != k {
		t.Fatalf("delivered %d + dropped %d != %d", delivered, c.Dropped, k)
	}
	// 50% loss: expect within generous bounds.
	if c.Dropped < k/4 || c.Dropped > 3*k/4 {
		t.Fatalf("Dropped = %d, implausible for 50%% loss of %d", c.Dropped, k)
	}
}

func TestLossValidation(t *testing.T) {
	g := topology.Single(1, time.Millisecond)
	cases := []struct {
		loss float64
		ok   bool
	}{
		{0, true},
		{0.5, true},
		{0.999, true},
		{1.0, false},
		{1.5, false},
		{-0.1, false},
	}
	for _, c := range cases {
		func() {
			defer func() {
				if r := recover(); (r == nil) != c.ok {
					t.Errorf("loss %v: panic=%v, want ok=%v", c.loss, r, c.ok)
				}
			}()
			New(des.New(), g, Options{Loss: c.loss})
		}()
	}
}

// TestRegisterAtColocation: two logical processes on one physical node
// exchange messages at intra-node latency.
func TestRegisterAtColocation(t *testing.T) {
	sim := des.New()
	g := topology.Uniform(2, 1, 2*time.Millisecond, 20*time.Millisecond)
	n := New(sim, g, Options{})
	var at des.Time
	n.RegisterAt(0, 0, HandlerFunc(func(mutex.ID, mutex.Message) {}))
	n.RegisterAt(7, 0, HandlerFunc(func(mutex.ID, mutex.Message) { at = sim.Now() })) // co-located logical process
	n.Endpoint(0).Send(7, ping{"p", 1})
	sim.Run()
	if at != time.Millisecond {
		t.Fatalf("co-located delivery at %v, want 1ms (local latency)", at)
	}
	if n.Counters().InterMessages != 0 {
		t.Fatal("co-located traffic misclassified as inter-cluster")
	}
}

// TestSendDeliverAllocs pins the steady-state send→deliver path: once the
// event queue has grown to its high-water mark, sending a message through
// the network and delivering it allocates at most one heap object per
// message (the interface boxing of the message value itself when the
// caller constructs it; the transport adds nothing).
func TestSendDeliverAllocs(t *testing.T) {
	sim := des.New()
	g := topology.Uniform(2, 2, 2*time.Millisecond, 20*time.Millisecond)
	n := New(sim, g, Options{Jitter: 0.2, Seed: 3})
	for id := mutex.ID(0); id < 4; id++ {
		n.Register(id, HandlerFunc(func(mutex.ID, mutex.Message) {}))
	}
	ep := n.Endpoint(0)
	msg := mutex.Message(ping{"p", 16}) // box once, outside the measured loop
	// Warm the queue's backing array.
	for i := 0; i < 256; i++ {
		ep.Send(mutex.ID(i%4), msg)
	}
	sim.Run()
	const batch = 256
	allocs := testing.AllocsPerRun(100, func() {
		for i := 0; i < batch; i++ {
			ep.Send(mutex.ID(i%4), msg)
		}
		sim.Run()
	})
	if perMsg := allocs / batch; perMsg > 1 {
		t.Errorf("send→deliver allocates %.2f objects per message, want <= 1", perMsg)
	}
}

// BenchmarkSendDeliver measures the raw transport hot path: one send and
// its delivery through the simulator, jitter enabled (the realistic
// configuration used by every experiment).
func BenchmarkSendDeliver(b *testing.B) {
	sim := des.New()
	g := topology.Uniform(2, 2, 2*time.Millisecond, 20*time.Millisecond)
	n := New(sim, g, Options{Jitter: 0.2, Seed: 3})
	for id := mutex.ID(0); id < 4; id++ {
		n.Register(id, HandlerFunc(func(mutex.ID, mutex.Message) {}))
	}
	ep := n.Endpoint(0)
	msg := mutex.Message(ping{"p", 16})
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ep.Send(mutex.ID(i%4), msg)
		if i%256 == 255 {
			sim.Run()
		}
	}
	sim.Run()
}

// TestCrashClassifiedAtDelivery pins the fail-stop boundary semantics:
// whether a message is lost depends on the destination's state when the
// message *arrives*, never on its state at the send instant.
func TestCrashClassifiedAtDelivery(t *testing.T) {
	t.Run("crash mid-flight drops", func(t *testing.T) {
		sim, n, _, r2 := twoClusterNet(t, Options{})
		n.Register(1, HandlerFunc(func(mutex.ID, mutex.Message) {}))
		n.Endpoint(1).Send(2, ping{"p", 8}) // in flight until 10ms
		sim.At(5*time.Millisecond, func() { n.Crash(2) })
		sim.Run()
		if len(r2.got) != 0 {
			t.Fatalf("dead node received %+v", r2.got)
		}
		if c := n.Counters(); c.DroppedDead != 1 || c.Messages != 1 {
			t.Fatalf("counters %+v, want DroppedDead=1 Messages=1", c)
		}
	})
	t.Run("restart before delivery receives", func(t *testing.T) {
		sim, n, _, r2 := twoClusterNet(t, Options{})
		n.Register(1, HandlerFunc(func(mutex.ID, mutex.Message) {}))
		n.Endpoint(1).Send(2, ping{"p", 8})
		sim.At(2*time.Millisecond, func() { n.Crash(2) })
		sim.At(8*time.Millisecond, func() { n.Restart(2) })
		sim.Run()
		if len(r2.got) != 1 || r2.got[0].at != 10*time.Millisecond {
			t.Fatalf("delivery %+v, want one at 10ms", r2.got)
		}
		if c := n.Counters(); c.DroppedDead != 0 {
			t.Fatalf("DroppedDead = %d, want 0", c.DroppedDead)
		}
	})
	t.Run("sent while down, up at arrival, receives", func(t *testing.T) {
		// The regression: a send-time check used to discard this message
		// even though the destination was back up when it arrived.
		sim, n, _, r2 := twoClusterNet(t, Options{})
		n.Register(1, HandlerFunc(func(mutex.ID, mutex.Message) {}))
		n.Crash(2)
		sim.At(time.Millisecond, func() { n.Endpoint(1).Send(2, ping{"p", 8}) })
		sim.At(5*time.Millisecond, func() { n.Restart(2) })
		sim.Run()
		if len(r2.got) != 1 || r2.got[0].at != 11*time.Millisecond {
			t.Fatalf("delivery %+v, want one at 11ms", r2.got)
		}
		if c := n.Counters(); c.DroppedDead != 0 || c.Messages != 1 {
			t.Fatalf("counters %+v, want DroppedDead=0 Messages=1", c)
		}
	})
}

// lpRecorder records deliveries with the clock of its own LP.
type lpRecorder struct {
	now func() des.Time
	got []delivery
}

func (r *lpRecorder) Deliver(from mutex.ID, m mutex.Message) {
	r.got = append(r.got, delivery{r.now(), from, m})
}

// TestLPRouting: intra-LP messages schedule locally, inter-LP messages
// cross at the barrier, and both land at the topology's latency.
func TestLPRouting(t *testing.T) {
	g := topology.Uniform(2, 2, 2*time.Millisecond, 20*time.Millisecond)
	lookahead, ok := g.MinInterOneWay()
	if !ok || lookahead != 10*time.Millisecond {
		t.Fatalf("lookahead %v, %v", lookahead, ok)
	}
	win := des.NewWindows(g.NumClusters(), lookahead, 1)
	n := NewLP(win, g, g.ClusterOf, Options{})
	recs := make([]*lpRecorder, 4)
	for id := 0; id < 4; id++ {
		lp := win.LP(g.ClusterOf(id))
		recs[id] = &lpRecorder{now: lp.Now}
		n.Register(mutex.ID(id), recs[id])
	}
	ep := n.Endpoint(0)
	ep.Send(1, ping{"intra", 8})
	ep.Send(2, ping{"inter", 8})
	if err := win.RunCapped(100); err != nil {
		t.Fatal(err)
	}
	if len(recs[1].got) != 1 || recs[1].got[0].at != time.Millisecond {
		t.Fatalf("intra delivery %+v, want at 1ms", recs[1].got)
	}
	if len(recs[2].got) != 1 || recs[2].got[0].at != 10*time.Millisecond {
		t.Fatalf("inter delivery %+v, want at 10ms", recs[2].got)
	}
	c := n.Counters()
	if c.Messages != 2 || c.IntraMessages != 1 || c.InterMessages != 1 {
		t.Fatalf("counters %+v", c)
	}
}

// bouncer returns every message to its sender with one fewer hop,
// logging each delivery. Logs are per node, hence per LP: safe under
// parallel window execution.
type bouncer struct {
	ep   mutex.Env
	self mutex.ID
	now  func() des.Time
	log  []string
}

func (b *bouncer) Deliver(from mutex.ID, m mutex.Message) {
	p := m.(ping)
	b.log = append(b.log, fmt.Sprintf("%d<-%d@%v", b.self, from, b.now()))
	if p.size > 0 {
		b.ep.Send(from, ping{p.kind, p.size - 1})
	}
}

// runLPBounce drives a jittered 2-cluster bounce storm and returns the
// per-node delivery logs and merged counters.
func runLPBounce(t *testing.T, workers int) ([][]string, Counters) {
	t.Helper()
	g := topology.Uniform(2, 2, 2*time.Millisecond, 20*time.Millisecond)
	lookahead, _ := g.MinInterOneWay()
	win := des.NewWindows(g.NumClusters(), lookahead, workers)
	n := NewLP(win, g, g.ClusterOf, Options{Jitter: 0.3, Seed: 42})
	bs := make([]*bouncer, 4)
	for id := 0; id < 4; id++ {
		bs[id] = &bouncer{ep: n.Endpoint(mutex.ID(id)), self: mutex.ID(id), now: win.LP(g.ClusterOf(id)).Now}
		n.Register(mutex.ID(id), bs[id])
	}
	bs[0].ep.Send(1, ping{"a", 20}) // intra ping-pong in cluster 0
	bs[0].ep.Send(2, ping{"b", 20}) // inter ping-pong across clusters
	bs[3].ep.Send(1, ping{"c", 20}) // inter, reverse direction
	if err := win.RunCapped(10_000); err != nil {
		t.Fatal(err)
	}
	logs := make([][]string, 4)
	for i, b := range bs {
		logs[i] = b.log
	}
	return logs, n.Counters()
}

// TestLPWorkerEquivalence is simnet's end of the determinism contract:
// the same seeded model must produce identical deliveries and counters
// whether the windows run serially or on many workers.
func TestLPWorkerEquivalence(t *testing.T) {
	serialLogs, serialC := runLPBounce(t, 1)
	total := 0
	for _, l := range serialLogs {
		total += len(l)
	}
	if total == 0 {
		t.Fatal("bounce storm delivered nothing")
	}
	for _, workers := range []int{2, 4} {
		logs, c := runLPBounce(t, workers)
		if fmt.Sprintf("%+v", c) != fmt.Sprintf("%+v", serialC) {
			t.Fatalf("workers=%d: counters %+v, want %+v", workers, c, serialC)
		}
		for node := range serialLogs {
			if len(logs[node]) != len(serialLogs[node]) {
				t.Fatalf("workers=%d node %d: %d deliveries, want %d", workers, node, len(logs[node]), len(serialLogs[node]))
			}
			for i := range serialLogs[node] {
				if logs[node][i] != serialLogs[node][i] {
					t.Fatalf("workers=%d node %d delivery %d = %q, want %q", workers, node, i, logs[node][i], serialLogs[node][i])
				}
			}
		}
	}
}

// TestLPTracers: each LP's tracer sees exactly its own LP's sends and
// deliveries, and trace.Merge yields one chronological log.
func TestLPTracers(t *testing.T) {
	g := topology.Uniform(2, 1, 2*time.Millisecond, 20*time.Millisecond)
	lookahead, _ := g.MinInterOneWay()
	win := des.NewWindows(2, lookahead, 1)
	tracers := []*trace.Tracer{
		trace.New(func() time.Duration { return win.LP(0).Now() }, 64),
		trace.New(func() time.Duration { return win.LP(1).Now() }, 64),
	}
	n := NewLP(win, g, g.ClusterOf, Options{Traces: tracers})
	for id := 0; id < 2; id++ {
		id := mutex.ID(id)
		ep := n.Endpoint(id)
		n.Register(id, HandlerFunc(func(from mutex.ID, m mutex.Message) {
			if m.(ping).size > 0 {
				ep.Send(from, ping{"p", m.(ping).size - 1})
			}
		}))
	}
	n.Endpoint(0).Send(1, ping{"p", 2})
	if err := win.RunCapped(100); err != nil {
		t.Fatal(err)
	}
	// LP0: send@0, deliver@20ms; LP1: deliver@10ms, send@10ms, deliver... —
	// count events rather than script them all: 3 sends, 3 delivers total.
	merged := trace.Merge(tracers)
	if got := len(merged.Filter(trace.Send)); got != 3 {
		t.Errorf("%d sends traced, want 3\n%s", got, merged.Dump())
	}
	if got := len(merged.Filter(trace.Deliver)); got != 3 {
		t.Errorf("%d delivers traced, want 3\n%s", got, merged.Dump())
	}
	evs := merged.Events()
	for i := 1; i < len(evs); i++ {
		if evs[i].At < evs[i-1].At {
			t.Fatalf("merged trace out of order:\n%s", merged.Dump())
		}
	}
}

// runTableStorm drives a deterministic jittered, lossy bounce storm with a
// mid-run crash and partition window under the given table mode, returning
// per-node delivery logs and counters. The observable outcome must be
// independent of the representation — the factored tables' whole contract.
func runTableStorm(t *testing.T, mode TableMode) ([][]string, Counters) {
	t.Helper()
	sim := des.New()
	g := topology.Uniform(3, 3, 2*time.Millisecond, 20*time.Millisecond)
	n := New(sim, g, Options{Jitter: 0.3, Seed: 17, Loss: 0.05, Tables: mode})
	bs := make([]*bouncer, 9)
	for id := 0; id < 9; id++ {
		bs[id] = &bouncer{ep: n.Endpoint(mutex.ID(id)), self: mutex.ID(id), now: sim.Now}
		n.Register(mutex.ID(id), bs[id])
	}
	// A co-located coordinator process beyond the topology node count, so
	// the sparse watermarks cover hierarchical registration too.
	coord := &bouncer{ep: n.Endpoint(100), self: 100, now: sim.Now}
	n.RegisterAt(100, 4, coord)
	bs[0].ep.Send(1, ping{"a", 30})
	bs[0].ep.Send(3, ping{"b", 30})
	bs[8].ep.Send(2, ping{"c", 30})
	bs[5].ep.Send(100, ping{"d", 30})
	sim.At(40*time.Millisecond, func() { n.Crash(7) })
	sim.At(80*time.Millisecond, func() { n.Restart(7) })
	sim.At(100*time.Millisecond, func() { n.Partition([]int{0, 1, 2}) })
	sim.At(160*time.Millisecond, func() { n.Heal() })
	if err := sim.RunCapped(50_000); err != nil {
		t.Fatal(err)
	}
	logs := make([][]string, 0, 10)
	for _, b := range bs {
		logs = append(logs, b.log)
	}
	return append(logs, coord.log), n.Counters()
}

// TestFactoredMatchesDense is the byte-identity half of the grid-scale
// memory work (DESIGN.md §14): forcing the O(C²+N) factored tables must
// reproduce the dense run event for event — same delivery instants, same
// loss draws, same crash/partition classification, same counters.
func TestFactoredMatchesDense(t *testing.T) {
	denseLogs, denseC := runTableStorm(t, TablesDense)
	total := 0
	for _, l := range denseLogs {
		total += len(l)
	}
	if total == 0 {
		t.Fatal("storm delivered nothing")
	}
	factLogs, factC := runTableStorm(t, TablesFactored)
	if fmt.Sprintf("%+v", factC) != fmt.Sprintf("%+v", denseC) {
		t.Fatalf("counters diverge:\nfactored %+v\ndense    %+v", factC, denseC)
	}
	for node := range denseLogs {
		if len(factLogs[node]) != len(denseLogs[node]) {
			t.Fatalf("node %d: %d deliveries factored, %d dense", node, len(factLogs[node]), len(denseLogs[node]))
		}
		for i := range denseLogs[node] {
			if factLogs[node][i] != denseLogs[node][i] {
				t.Fatalf("node %d delivery %d: %q factored, %q dense", node, i, factLogs[node][i], denseLogs[node][i])
			}
		}
	}
}

// TestFactoredDirectMatchesMatrix is the byte-identity proof of the third
// table tier: when the cluster-pair matrix itself is too large to cache
// (clusterPairLimit), the factored network derives each delay from the
// cluster model per send — and the storm must reproduce the matrix-backed
// run event for event. The limit is lowered so a small grid exercises the
// direct path.
func TestFactoredDirectMatchesMatrix(t *testing.T) {
	matrixLogs, matrixC := runTableStorm(t, TablesFactored)
	old := clusterPairLimit
	clusterPairLimit = 1 // any C > 1 goes matrix-free
	defer func() { clusterPairLimit = old }()
	directLogs, directC := runTableStorm(t, TablesFactored)
	if fmt.Sprintf("%+v", directC) != fmt.Sprintf("%+v", matrixC) {
		t.Fatalf("counters diverge:\ndirect %+v\nmatrix %+v", directC, matrixC)
	}
	for node := range matrixLogs {
		if len(directLogs[node]) != len(matrixLogs[node]) {
			t.Fatalf("node %d: %d deliveries direct, %d matrix", node, len(directLogs[node]), len(matrixLogs[node]))
		}
		for i := range matrixLogs[node] {
			if directLogs[node][i] != matrixLogs[node][i] {
				t.Fatalf("node %d delivery %d: %q direct, %q matrix", node, i, directLogs[node][i], matrixLogs[node][i])
			}
		}
	}
	// And the representation really was matrix-free.
	n := New(des.New(), topology.Uniform(3, 3, time.Millisecond, 10*time.Millisecond), Options{Tables: TablesFactored})
	if n.clModel == nil || len(n.clOneWay) != 0 {
		t.Errorf("limit %d: clModel=%v with %d matrix entries, want direct mode", clusterPairLimit, n.clModel != nil, len(n.clOneWay))
	}
}

// TestTablesAutoThreshold pins the auto selection: at or below
// DenseNodeLimit nodes the network keeps dense tables, above it the
// factored representation takes over, and grids without cluster structure
// stay dense at any size.
func TestTablesAutoThreshold(t *testing.T) {
	small := New(des.New(), topology.Uniform(2, 2, time.Millisecond, 10*time.Millisecond), Options{})
	if small.factored {
		t.Error("small grid selected factored tables")
	}
	big := New(des.New(), topology.Uniform(40, 16, time.Millisecond, 10*time.Millisecond), Options{})
	if !big.factored {
		t.Error("640-node grid kept dense tables")
	}
	if got := len(big.oneWay); got != 0 {
		t.Errorf("factored network materialized %d dense entries", got)
	}
	if got := len(big.clOneWay); got != 40*40 {
		t.Errorf("factored matrix has %d entries, want 1600", got)
	}
	// A synthetic gridModel without cluster accessors cannot factor.
	flat := New(des.New(), flatModel{n: DenseNodeLimit + 1}, Options{})
	if flat.factored {
		t.Error("cluster-less grid selected factored tables")
	}
	defer func() {
		if recover() == nil {
			t.Error("TablesFactored on a cluster-less grid did not panic")
		}
	}()
	New(des.New(), flatModel{n: 4}, Options{Tables: TablesFactored})
}

// flatModel is a gridModel with no cluster structure.
type flatModel struct{ n int }

func (f flatModel) NumNodes() int                     { return f.n }
func (f flatModel) OneWay(from, to int) time.Duration { return time.Millisecond }
func (f flatModel) SameCluster(a, b int) bool         { return true }

// TestFactoredSendDeliverAllocs pins the factored hot path: after the
// sparse watermark entries for the active links exist, steady-state
// send→deliver stays at <= 1 allocation per message, same as dense.
func TestFactoredSendDeliverAllocs(t *testing.T) {
	sim := des.New()
	g := topology.Uniform(2, 2, 2*time.Millisecond, 20*time.Millisecond)
	n := New(sim, g, Options{Jitter: 0.2, Seed: 3, Tables: TablesFactored})
	for id := mutex.ID(0); id < 4; id++ {
		n.Register(id, HandlerFunc(func(mutex.ID, mutex.Message) {}))
	}
	ep := n.Endpoint(0)
	msg := mutex.Message(ping{"p", 16})
	for i := 0; i < 256; i++ {
		ep.Send(mutex.ID(i%4), msg)
	}
	sim.Run()
	const batch = 256
	allocs := testing.AllocsPerRun(100, func() {
		for i := 0; i < batch; i++ {
			ep.Send(mutex.ID(i%4), msg)
		}
		sim.Run()
	})
	if perMsg := allocs / batch; perMsg > 1 {
		t.Errorf("factored send→deliver allocates %.2f objects per message, want <= 1", perMsg)
	}
}

// TestLPFactoredEquivalence: the factored tables compose with the window
// scheduler — per-sender watermark maps are written only on the sender's
// LP — and remain byte-identical across worker counts.
func TestLPFactoredEquivalence(t *testing.T) {
	run := func(workers int) ([][]string, Counters) {
		t.Helper()
		g := topology.Uniform(2, 2, 2*time.Millisecond, 20*time.Millisecond)
		lookahead, _ := g.MinInterOneWay()
		win := des.NewWindows(g.NumClusters(), lookahead, workers)
		n := NewLP(win, g, g.ClusterOf, Options{Jitter: 0.3, Seed: 42, Tables: TablesFactored})
		bs := make([]*bouncer, 4)
		for id := 0; id < 4; id++ {
			bs[id] = &bouncer{ep: n.Endpoint(mutex.ID(id)), self: mutex.ID(id), now: win.LP(g.ClusterOf(id)).Now}
			n.Register(mutex.ID(id), bs[id])
		}
		bs[0].ep.Send(1, ping{"a", 20})
		bs[0].ep.Send(2, ping{"b", 20})
		bs[3].ep.Send(1, ping{"c", 20})
		if err := win.RunCapped(10_000); err != nil {
			t.Fatal(err)
		}
		logs := make([][]string, 4)
		for i, b := range bs {
			logs[i] = b.log
		}
		return logs, n.Counters()
	}
	serialLogs, serialC := run(1)
	// The factored LP run must also match the dense LP run (same seed):
	// runLPBounce uses default tables on an identical model.
	denseLogs, denseC := runLPBounce(t, 1)
	if fmt.Sprintf("%+v", serialC) != fmt.Sprintf("%+v", denseC) {
		t.Fatalf("factored LP counters %+v, dense %+v", serialC, denseC)
	}
	for node := range denseLogs {
		for i := range denseLogs[node] {
			if serialLogs[node][i] != denseLogs[node][i] {
				t.Fatalf("node %d delivery %d: %q factored, %q dense", node, i, serialLogs[node][i], denseLogs[node][i])
			}
		}
	}
	for _, workers := range []int{2, 4} {
		logs, c := run(workers)
		if fmt.Sprintf("%+v", c) != fmt.Sprintf("%+v", serialC) {
			t.Fatalf("workers=%d: counters %+v, want %+v", workers, c, serialC)
		}
		for node := range serialLogs {
			for i := range serialLogs[node] {
				if logs[node][i] != serialLogs[node][i] {
					t.Fatalf("workers=%d node %d delivery %d diverges", workers, node, i)
				}
			}
		}
	}
}

// TestNewLPValidation: the LP constructor rejects configurations whose
// semantics would be undefined under sharding.
func TestNewLPValidation(t *testing.T) {
	g := topology.Uniform(2, 1, 2*time.Millisecond, 20*time.Millisecond)
	win := des.NewWindows(2, 10*time.Millisecond, 1)
	expectPanic := func(name string, f func()) {
		defer func() {
			if recover() == nil {
				t.Errorf("%s: no panic", name)
			}
		}()
		f()
	}
	expectPanic("KindCounts", func() { NewLP(win, g, g.ClusterOf, Options{KindCounts: true}) })
	expectPanic("Trace", func() {
		tr := trace.New(win.LP(0).Now, 8)
		NewLP(win, g, g.ClusterOf, Options{Trace: tr})
	})
	expectPanic("Traces length", func() {
		NewLP(win, g, g.ClusterOf, Options{Traces: make([]*trace.Tracer, 3)})
	})
	expectPanic("bad lpOf", func() { NewLP(win, g, func(int) int { return 7 }, Options{}) })
	expectPanic("Traces on classic", func() {
		New(des.New(), g, Options{Traces: make([]*trace.Tracer, 2)})
	})
}
