// Package fleet is the bounded worker pool the experiment harness fans
// out on: it runs independent jobs on up to GOMAXPROCS goroutines and
// hands the results back strictly by job index, never by completion
// order.
//
// fleet is the one deliberate goroutine island in the simulation stack,
// and therefore the one DES-adjacent package exempt from gridlint's
// desdeterminism pass (see DESIGN.md §8). The exemption is sound because
// the pool adds no shared state to the jobs it runs: every harness job
// is a pure function of (topology, composition, workload, seed) executing
// on its own private des.Simulator, and Map's only outputs — the result
// slice, the returned error, and a re-raised panic — are selected by
// job index, so callers observe the exact sequence a serial loop would
// have produced.
package fleet

import (
	"fmt"
	"runtime"
	"runtime/debug"
	"sync"
	"sync/atomic"
)

// jobPanic carries a panic value from a worker goroutine back to the
// caller together with the worker's stack.
type jobPanic struct {
	val   any
	stack []byte
}

// Map runs fn(0) … fn(n-1) on up to workers goroutines and returns the
// results in index order. workers <= 0 means GOMAXPROCS.
//
// Error semantics mirror a serial loop: the returned error is the one
// from the lowest failing index, and no job with a higher index than a
// known failure is started (jobs already in flight run to completion).
// A panicking job is re-raised on the calling goroutine, again lowest
// index first, with the worker's stack attached.
func Map[T any](n, workers int, fn func(i int) (T, error)) ([]T, error) {
	if n <= 0 {
		return nil, nil
	}
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > n {
		workers = n
	}
	results := make([]T, n)
	errs := make([]error, n)
	panics := make([]*jobPanic, n)

	// next hands out job indices in increasing order; stop is the lowest
	// index known to have failed. Because indices are claimed in order,
	// every job below a recorded failure has already been claimed, so
	// skipping indices above stop can never hide an earlier error.
	var next atomic.Int64
	var stop atomic.Int64
	stop.Store(int64(n))

	lower := func(i int) {
		for {
			cur := stop.Load()
			if int64(i) >= cur || stop.CompareAndSwap(cur, int64(i)) {
				return
			}
		}
	}

	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		//lint:allow desdeterminism worker-pool island (DESIGN.md §8): each job is a pure function of its seed on a private Simulator, and results merge by job index, so scheduler order cannot reach any aggregate
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1) - 1)
				if i >= n || int64(i) > stop.Load() {
					return
				}
				func() {
					defer func() {
						if v := recover(); v != nil {
							panics[i] = &jobPanic{val: v, stack: debug.Stack()}
							lower(i)
						}
					}()
					r, err := fn(i)
					if err != nil {
						errs[i] = err
						lower(i)
						return
					}
					results[i] = r
				}()
			}
		}()
	}
	wg.Wait()

	for i := 0; i < n; i++ {
		if p := panics[i]; p != nil {
			panic(fmt.Sprintf("fleet: job %d panicked: %v\n\nworker stack:\n%s", i, p.val, p.stack))
		}
		if errs[i] != nil {
			return nil, errs[i]
		}
	}
	return results, nil
}
