package fleet

import (
	"errors"
	"fmt"
	"runtime"
	"strings"
	"sync/atomic"
	"testing"
)

func TestMapReturnsResultsInIndexOrder(t *testing.T) {
	got, err := Map(100, 8, func(i int) (int, error) { return i * i, nil })
	if err != nil {
		t.Fatalf("Map failed: %v", err)
	}
	if len(got) != 100 {
		t.Fatalf("got %d results, want 100", len(got))
	}
	for i, v := range got {
		if v != i*i {
			t.Fatalf("result %d is %d, want %d", i, v, i*i)
		}
	}
}

func TestMapEmpty(t *testing.T) {
	got, err := Map(0, 4, func(i int) (int, error) { return i, nil })
	if err != nil || got != nil {
		t.Fatalf("Map(0) = (%v, %v), want (nil, nil)", got, err)
	}
}

func TestMapMoreJobsThanWorkers(t *testing.T) {
	// Far more jobs than workers, with a shared counter touched from every
	// job; meaningful mostly under -race.
	var ran atomic.Int64
	got, err := Map(500, 3, func(i int) (int, error) {
		ran.Add(1)
		return i, nil
	})
	if err != nil {
		t.Fatalf("Map failed: %v", err)
	}
	if ran.Load() != 500 || len(got) != 500 {
		t.Fatalf("ran %d jobs, returned %d results, want 500 each", ran.Load(), len(got))
	}
}

func TestMapWorkersClampedToJobs(t *testing.T) {
	// More workers than jobs must not deadlock or run anything twice.
	var ran atomic.Int64
	if _, err := Map(2, 64, func(i int) (int, error) {
		ran.Add(1)
		return i, nil
	}); err != nil {
		t.Fatalf("Map failed: %v", err)
	}
	if ran.Load() != 2 {
		t.Fatalf("ran %d jobs, want 2", ran.Load())
	}
}

func TestMapDefaultWorkers(t *testing.T) {
	// workers <= 0 means GOMAXPROCS; just verify it completes correctly.
	got, err := Map(10, 0, func(i int) (int, error) { return i, nil })
	if err != nil {
		t.Fatalf("Map failed: %v", err)
	}
	if len(got) != 10 {
		t.Fatalf("got %d results, want 10", len(got))
	}
	_ = runtime.GOMAXPROCS(0)
}

func TestMapLowestIndexErrorWins(t *testing.T) {
	// Several jobs fail; the reported error must be the lowest index's,
	// matching what a serial loop would have returned first.
	wantErr := errors.New("boom 7")
	_, err := Map(64, 8, func(i int) (int, error) {
		switch i {
		case 7:
			return 0, wantErr
		case 23, 41:
			return 0, fmt.Errorf("boom %d", i)
		}
		return i, nil
	})
	if !errors.Is(err, wantErr) {
		t.Fatalf("Map error = %v, want the index-7 error", err)
	}
}

func TestMapErrorStopsLaterJobs(t *testing.T) {
	// After an early failure, far-later indices must not start. With one
	// worker the claim order is strictly sequential, so nothing past the
	// failing index may run.
	var ran atomic.Int64
	_, err := Map(100, 1, func(i int) (int, error) {
		ran.Add(1)
		if i == 3 {
			return 0, errors.New("stop here")
		}
		return i, nil
	})
	if err == nil {
		t.Fatal("Map did not report the error")
	}
	if got := ran.Load(); got > 5 {
		t.Fatalf("%d jobs ran after an index-3 failure with 1 worker, want <= 5", got)
	}
}

func TestMapPanicPropagates(t *testing.T) {
	defer func() {
		v := recover()
		if v == nil {
			t.Fatal("worker panic was swallowed")
		}
		msg, ok := v.(string)
		if !ok {
			t.Fatalf("panic value %T, want string", v)
		}
		if !strings.Contains(msg, "job 5 panicked: kaboom") {
			t.Fatalf("panic message %q does not name job 5", msg)
		}
		if !strings.Contains(msg, "worker stack:") {
			t.Fatalf("panic message %q is missing the worker stack", msg)
		}
	}()
	Map(16, 4, func(i int) (int, error) {
		if i == 5 {
			panic("kaboom")
		}
		return i, nil
	})
}
