package scenario

import (
	"fmt"
	"math"
	"strconv"
	"strings"
	"time"

	"gridmutex/internal/topology"
	"gridmutex/internal/workload"
)

// Scenario is one declarative conformance case: everything a run needs —
// topology, workload, system under test, fault schedule — plus the
// expectation block the verdict is judged against.
type Scenario struct {
	// Name identifies the scenario; corpus names must be unique.
	Name string
	// Doc is a free-text description carried into verdicts.
	Doc string
	// Seed drives every random stream of the run (network jitter, loss,
	// workload idle times, seeded fault draws).
	Seed int64

	Topology Topology
	Workload Workload
	System   System
	Network  Network
	Faults   []Fault
	Run      RunSpec
	Expect   Expect
}

// Topology declares the physical grid. The scenario counts application
// processes; the engine adds the infrastructure nodes the system under
// test reserves per cluster (coordinator, standby).
type Topology struct {
	// Kind is "uniform", "grid5000", "matrix" or "tree".
	Kind string
	// Clusters is the cluster count (uniform only; grid5000 has 9, a
	// matrix brings its own and a tree's is its fan-out product).
	Clusters int
	// AppsPerCluster is the number of application processes per cluster.
	AppsPerCluster int
	// LocalRTT / RemoteRTT shape the uniform grid. For a tree, LocalRTT
	// is the intra-cluster (leaf) round trip.
	LocalRTT, RemoteRTT time.Duration
	// Matrix is the inline cluster RTT matrix ("matrix" kind), in the
	// textual format of topology.ParseMatrixSpec.
	Matrix *topology.Matrix
	// Fanouts and LevelRTT declare a synthetic switching tree ("tree"
	// kind): Fanouts[0] regions under the root, each split into
	// Fanouts[1] zones, and so on; LevelRTT[i] is the round trip between
	// nodes whose lowest common switch sits at depth i. One RTT per
	// fan-out level (topology.TreeSpec).
	Fanouts  []int
	LevelRTT []time.Duration
}

// Workload declares the application behaviour (workload.Params minus the
// seed, which the scenario owns).
type Workload struct {
	Alpha        time.Duration
	Rho          float64
	Dist         workload.Distribution
	CSPerProcess int
	HotCluster   int
	HotSkew      float64
	Phases       []workload.Phase
}

// System declares what runs on the grid.
type System struct {
	// Intra / Inter name the two-level composition.
	Intra, Inter string
	// Flat names an original (non-hierarchical) algorithm instead.
	Flat string
	// Levels names the algorithms of a generalized k-level hierarchy,
	// deepest first: Levels[0] runs inside every cluster, Levels[1] among
	// cluster coordinators grouped Groups[0] to a region, and so on; the
	// last algorithm spans the top-level coordinators. Mutually exclusive
	// with Intra/Inter/Flat; len(Levels) must be len(Groups)+2
	// (core.BuildMultiLevel).
	Levels []string
	// Groups lists the consecutive-unit group sizes of the intermediate
	// hierarchy levels (tree-aligned when the topology is a tree: the
	// fan-outs deepest first, excluding the root).
	Groups []int
	// Adaptive wraps the inter level in the runtime-switching protocol;
	// Inter is then only the initial algorithm.
	Adaptive bool
	// LocalBias configures extra local serving rounds per inter handoff.
	LocalBias int
	// Recovery deploys the crash-tolerant composition: a primary
	// coordinator plus a standby per cluster, heartbeat failure
	// detectors and epoch-fenced token regeneration.
	Recovery bool
	// Heartbeat is the failure-detector period (recovery only; default
	// 20ms). Intra/inter timeouts derive via recovery.StaggeredTimeouts.
	Heartbeat time.Duration
}

// Network declares the fabric conditions.
type Network struct {
	// Jitter is the fractional per-message latency jitter in [0, 1].
	Jitter float64
	// Loss drops each message with this probability in [0, 1).
	Loss float64
	// Reliable wraps the fabric in the sequencing/ack/retransmission
	// layer; required whenever Loss > 0.
	Reliable bool
	// RTO is the retransmission timeout (default 3× the largest RTT).
	RTO time.Duration
	// MaxRetries bounds retransmissions per packet (0 = layer default).
	MaxRetries int
}

// Fault kinds.
const (
	// FaultCrash fail-stops one node at a fixed virtual instant.
	FaultCrash = "crash"
	// FaultRestart revives a node's connectivity at a fixed instant.
	FaultRestart = "restart"
	// FaultCrashWindow draws a seeded schedule of distinct victims
	// crashing at uniform instants within a horizon (faults.Windows).
	FaultCrashWindow = "crash_window"
	// FaultHolderKill crashes a victim the instant it enters its k-th
	// critical section — the worst case for token algorithms. With
	// Target "coordinator" the crash is redirected to the victim's
	// cluster primary at that same instant (the primary is IN).
	FaultHolderKill = "holder_kill"
	// FaultPartition cuts the listed clusters off from the rest of the
	// grid at a fixed instant; heal_at (when positive) heals the cut.
	// Links crossing the cut drop at delivery time; nodes stay alive on
	// both sides, so the minority freezes rather than crashes.
	FaultPartition = "partition"
)

// Victim candidate sets for crash_window faults.
const (
	VictimsApps         = "apps"
	VictimsCoordinators = "coordinators"
	VictimsStandbys     = "standbys"
)

// Fault is one entry of the fault schedule.
type Fault struct {
	Kind string

	// crash / restart
	Node int
	At   time.Duration

	// crash_window
	Victims          string // apps | coordinators | standbys
	Crashes          int
	Horizon          time.Duration
	MinDown, MaxDown time.Duration

	// holder_kill
	Victim int    // application node index; -1 draws from the seed
	Entry  int    // 1-based CS-entry ordinal; 0 draws from the seed
	Target string // "app" (default) or "coordinator"

	// partition
	Clusters []int         // the side cut off from the rest of the grid
	HealAt   time.Duration // heal instant; 0 means the cut never heals
}

// RunSpec bounds the run.
type RunSpec struct {
	// Horizon, when positive, runs the simulation for a fixed stretch of
	// virtual time instead of to workload completion — the shape for
	// scenarios where starvation is expected (frozen clusters).
	Horizon time.Duration
	// EventLimit caps processed DES events (0 derives the harness
	// default from the expected grant count).
	EventLimit uint64
}

// Completion modes.
const (
	// CompleteAll: every application process finishes its critical
	// sections.
	CompleteAll = "all"
	// CompleteSurvivors: every non-crashed application process finishes.
	CompleteSurvivors = "survivors"
	// CompleteNone: no completion requirement (bounded-horizon runs).
	CompleteNone = "none"
)

// Envelope bounds one named metric (see metrics.go for the registry).
type Envelope struct {
	Metric   string
	Min, Max float64
	HasMin   bool
	HasMax   bool
}

// Expect is the expectation block. Counters set to -1 are unchecked.
type Expect struct {
	// Quiescent asserts the monitor's quiescence invariant after the run
	// drains (default true; set false for bounded-horizon runs that
	// leave requests starved by design).
	Quiescent bool
	// Complete is CompleteAll (default), CompleteSurvivors or
	// CompleteNone.
	Complete string
	// CrashExits is the exact number of critical sections that must end
	// by their holder crashing (-1 unchecked).
	CrashExits int
	// MinEpochs / MaxEpochs bound token-regeneration epochs (-1
	// unchecked).
	MinEpochs, MaxEpochs int
	// StandbyActivated lists clusters whose standby must take over;
	// StandbyQuiet lists clusters whose standby must not.
	StandbyActivated, StandbyQuiet []int
	// FrozenGroups lists recovery group names (e.g. "intra1") that must
	// report frozen after the run.
	FrozenGroups []string
	// MinSwitches is the least number of committed adaptive algorithm
	// switches (-1 unchecked).
	MinSwitches int
	// MinRetransmits asserts the reliable layer was exercised (-1
	// unchecked); MaxGivenUp bounds abandoned packets (-1 unchecked).
	MinRetransmits, MaxGivenUp int
	// ClusterComplete lists clusters whose every application must finish
	// even when Complete is "none" (frozen-cluster scenarios assert the
	// survivors this way).
	ClusterComplete []int
	// Envelopes bound named metrics.
	Envelopes []Envelope
}

// defaultExpect returns the unchecked expectation block.
func defaultExpect() Expect {
	return Expect{
		Quiescent:      true,
		Complete:       CompleteAll,
		CrashExits:     -1,
		MinEpochs:      -1,
		MaxEpochs:      -1,
		MinSwitches:    -1,
		MinRetransmits: -1,
		MaxGivenUp:     -1,
	}
}

// Load parses, decodes and validates one scenario document.
func Load(data []byte) (*Scenario, error) {
	root, err := Parse(data)
	if err != nil {
		return nil, err
	}
	sc, err := decode(root)
	if err != nil {
		return nil, err
	}
	if err := sc.Validate(); err != nil {
		return nil, err
	}
	return sc, nil
}

// decode walks the node tree into the typed model, rejecting unknown
// keys — a typo in an expectation must fail the load, not silently pass
// the run.
func decode(root *node) (*Scenario, error) {
	sc := &Scenario{Expect: defaultExpect()}
	if err := eachKey(root, "document", map[string]func(*node) error{
		"name":     func(n *node) error { return str(n, &sc.Name) },
		"doc":      func(n *node) error { return str(n, &sc.Doc) },
		"seed":     func(n *node) error { return i64(n, &sc.Seed) },
		"topology": func(n *node) error { return decodeTopology(n, &sc.Topology) },
		"workload": func(n *node) error { return decodeWorkload(n, &sc.Workload) },
		"system":   func(n *node) error { return decodeSystem(n, &sc.System) },
		"network":  func(n *node) error { return decodeNetwork(n, &sc.Network) },
		"faults":   func(n *node) error { return decodeFaults(n, &sc.Faults) },
		"run":      func(n *node) error { return decodeRun(n, &sc.Run) },
		"expect":   func(n *node) error { return decodeExpect(n, &sc.Expect) },
	}); err != nil {
		return nil, err
	}
	return sc, nil
}

func decodeTopology(n *node, t *Topology) error {
	return eachKey(n, "topology", map[string]func(*node) error{
		"kind":             func(n *node) error { return str(n, &t.Kind) },
		"clusters":         func(n *node) error { return intval(n, &t.Clusters) },
		"apps_per_cluster": func(n *node) error { return intval(n, &t.AppsPerCluster) },
		"local_rtt":        func(n *node) error { return dur(n, &t.LocalRTT) },
		"remote_rtt":       func(n *node) error { return dur(n, &t.RemoteRTT) },
		"fanouts":          func(n *node) error { return intList(n, &t.Fanouts) },
		"level_rtt":        func(n *node) error { return durList(n, &t.LevelRTT) },
		"matrix": func(n *node) error {
			rows, err := strList(n)
			if err != nil {
				return err
			}
			m, err := topology.ParseMatrixSpec(strings.NewReader(strings.Join(rows, "\n") + "\n"))
			if err != nil {
				return fmt.Errorf("%v (%s)", err, line1(n.line))
			}
			t.Matrix = m
			return nil
		},
	})
}

func decodeWorkload(n *node, w *Workload) error {
	err := eachKey(n, "workload", map[string]func(*node) error{
		"alpha":          func(n *node) error { return dur(n, &w.Alpha) },
		"rho":            func(n *node) error { return f64(n, &w.Rho) },
		"dist":           func(n *node) error { return distVal(n, &w.Dist) },
		"cs_per_process": func(n *node) error { return intval(n, &w.CSPerProcess) },
		"hot_cluster":    func(n *node) error { return intval(n, &w.HotCluster) },
		"hot_skew":       func(n *node) error { return f64(n, &w.HotSkew) },
		"phases": func(n *node) error {
			return eachItem(n, "phases", func(item *node) error {
				var ph workload.Phase
				if err := eachKey(item, "phase", map[string]func(*node) error{
					"rho":   func(n *node) error { return f64(n, &ph.Rho) },
					"until": func(n *node) error { return dur(n, &ph.Until) },
				}); err != nil {
					return err
				}
				w.Phases = append(w.Phases, ph)
				return nil
			})
		},
	})
	if err != nil {
		return err
	}
	// β = ρ·α must fit a time.Duration: past 2^63 nanoseconds the idle
	// draws saturate and the workload degenerates to "never request
	// again" — reject the parameters instead of running a vacuous
	// scenario. The check uses the effective alpha (the default applies
	// when the key is omitted).
	alpha := w.Alpha
	if alpha == 0 {
		alpha = defaultAlpha
	}
	if w.Rho*float64(alpha) >= float64(math.MaxInt64) {
		return fmt.Errorf("scenario: %s: rho %g with alpha %v overflows the idle time", line1(n.line), w.Rho, alpha)
	}
	for i, ph := range w.Phases {
		if ph.Rho*float64(alpha) >= float64(math.MaxInt64) {
			return fmt.Errorf("scenario: %s: phase %d rho %g with alpha %v overflows the idle time", line1(n.line), i, ph.Rho, alpha)
		}
	}
	return nil
}

func decodeSystem(n *node, s *System) error {
	return eachKey(n, "system", map[string]func(*node) error{
		"intra": func(n *node) error { return str(n, &s.Intra) },
		"inter": func(n *node) error { return str(n, &s.Inter) },
		"flat":  func(n *node) error { return str(n, &s.Flat) },
		"levels": func(n *node) error {
			rows, err := strList(n)
			if err != nil {
				return err
			}
			s.Levels = rows
			return nil
		},
		"groups":     func(n *node) error { return intList(n, &s.Groups) },
		"adaptive":   func(n *node) error { return boolean(n, &s.Adaptive) },
		"local_bias": func(n *node) error { return intval(n, &s.LocalBias) },
		"recovery":   func(n *node) error { return boolean(n, &s.Recovery) },
		"heartbeat":  func(n *node) error { return dur(n, &s.Heartbeat) },
	})
}

func decodeNetwork(n *node, nw *Network) error {
	return eachKey(n, "network", map[string]func(*node) error{
		"jitter":      func(n *node) error { return f64(n, &nw.Jitter) },
		"loss":        func(n *node) error { return f64(n, &nw.Loss) },
		"reliable":    func(n *node) error { return boolean(n, &nw.Reliable) },
		"rto":         func(n *node) error { return dur(n, &nw.RTO) },
		"max_retries": func(n *node) error { return intval(n, &nw.MaxRetries) },
	})
}

func decodeFaults(n *node, out *[]Fault) error {
	return eachItem(n, "faults", func(item *node) error {
		f := Fault{Victim: -1, Target: "app"}
		if err := eachKey(item, "fault", map[string]func(*node) error{
			"kind":     func(n *node) error { return str(n, &f.Kind) },
			"node":     func(n *node) error { return intval(n, &f.Node) },
			"at":       func(n *node) error { return dur(n, &f.At) },
			"victims":  func(n *node) error { return str(n, &f.Victims) },
			"crashes":  func(n *node) error { return intval(n, &f.Crashes) },
			"horizon":  func(n *node) error { return dur(n, &f.Horizon) },
			"min_down": func(n *node) error { return dur(n, &f.MinDown) },
			"max_down": func(n *node) error { return dur(n, &f.MaxDown) },
			"victim":   func(n *node) error { return intval(n, &f.Victim) },
			"entry":    func(n *node) error { return intval(n, &f.Entry) },
			"target":   func(n *node) error { return str(n, &f.Target) },
			"clusters": func(n *node) error { return intList(n, &f.Clusters) },
			"heal_at":  func(n *node) error { return dur(n, &f.HealAt) },
		}); err != nil {
			return err
		}
		*out = append(*out, f)
		return nil
	})
}

func decodeRun(n *node, r *RunSpec) error {
	return eachKey(n, "run", map[string]func(*node) error{
		"horizon": func(n *node) error { return dur(n, &r.Horizon) },
		"event_limit": func(n *node) error {
			var v int64
			if err := i64(n, &v); err != nil {
				return err
			}
			if v < 0 {
				return fmt.Errorf("scenario: %s: event_limit must be non-negative", line1(n.line))
			}
			r.EventLimit = uint64(v)
			return nil
		},
	})
}

func decodeExpect(n *node, e *Expect) error {
	return eachKey(n, "expect", map[string]func(*node) error{
		"quiescent":         func(n *node) error { return boolean(n, &e.Quiescent) },
		"complete":          func(n *node) error { return str(n, &e.Complete) },
		"crash_exits":       func(n *node) error { return intval(n, &e.CrashExits) },
		"min_epochs":        func(n *node) error { return intval(n, &e.MinEpochs) },
		"max_epochs":        func(n *node) error { return intval(n, &e.MaxEpochs) },
		"standby_activated": func(n *node) error { return intList(n, &e.StandbyActivated) },
		"standby_quiet":     func(n *node) error { return intList(n, &e.StandbyQuiet) },
		"frozen_groups": func(n *node) error {
			rows, err := strList(n)
			if err != nil {
				return err
			}
			e.FrozenGroups = rows
			return nil
		},
		"min_switches":     func(n *node) error { return intval(n, &e.MinSwitches) },
		"min_retransmits":  func(n *node) error { return intval(n, &e.MinRetransmits) },
		"max_given_up":     func(n *node) error { return intval(n, &e.MaxGivenUp) },
		"cluster_complete": func(n *node) error { return intList(n, &e.ClusterComplete) },
		"envelopes": func(n *node) error {
			return eachItem(n, "envelopes", func(item *node) error {
				env := Envelope{}
				if err := eachKey(item, "envelope", map[string]func(*node) error{
					"metric": func(n *node) error { return str(n, &env.Metric) },
					"min": func(n *node) error {
						env.HasMin = true
						return f64signed(n, &env.Min)
					},
					"max": func(n *node) error {
						env.HasMax = true
						return f64signed(n, &env.Max)
					},
				}); err != nil {
					return err
				}
				e.Envelopes = append(e.Envelopes, env)
				return nil
			})
		},
	})
}

// --- scalar decoding helpers; every rejection names the source line ---

// eachKey dispatches a mapping's keys to handlers, rejecting unknown keys.
func eachKey(n *node, ctx string, handlers map[string]func(*node) error) error {
	if n.kind != mapNode {
		return fmt.Errorf("scenario: %s: %s must be a mapping", line1(n.line), ctx)
	}
	for _, k := range n.keys {
		h, ok := handlers[k]
		if !ok {
			return fmt.Errorf("scenario: %s: unknown key %q in %s", line1(n.vals[k].line), k, ctx)
		}
		if err := h(n.vals[k]); err != nil {
			return err
		}
	}
	return nil
}

// eachItem iterates a list node.
func eachItem(n *node, ctx string, fn func(*node) error) error {
	if n.kind != listNode {
		return fmt.Errorf("scenario: %s: %s must be a list", line1(n.line), ctx)
	}
	for _, item := range n.items {
		if err := fn(item); err != nil {
			return err
		}
	}
	return nil
}

func scalarOf(n *node) (string, error) {
	if n.kind != scalarNode {
		return "", fmt.Errorf("scenario: %s: expected a scalar value", line1(n.line))
	}
	return n.scalar, nil
}

func str(n *node, out *string) error {
	s, err := scalarOf(n)
	if err != nil {
		return err
	}
	*out = s
	return nil
}

func boolean(n *node, out *bool) error {
	s, err := scalarOf(n)
	if err != nil {
		return err
	}
	switch s {
	case "true":
		*out = true
	case "false":
		*out = false
	default:
		return fmt.Errorf("scenario: %s: %q is not a boolean (true/false)", line1(n.line), s)
	}
	return nil
}

func i64(n *node, out *int64) error {
	s, err := scalarOf(n)
	if err != nil {
		return err
	}
	v, err := strconv.ParseInt(s, 10, 64)
	if err != nil {
		return fmt.Errorf("scenario: %s: %q is not an integer", line1(n.line), s)
	}
	*out = v
	return nil
}

func intval(n *node, out *int) error {
	var v int64
	if err := i64(n, &v); err != nil {
		return err
	}
	if v > math.MaxInt32 || v < math.MinInt32 {
		return fmt.Errorf("scenario: %s: %d out of range", line1(n.line), v)
	}
	*out = int(v)
	return nil
}

// f64 parses a non-negative finite float — the shape every rate in the
// format has. NaN, infinities and negatives are rejected at decode time
// so they can never reach an engine division.
func f64(n *node, out *float64) error {
	if err := f64signed(n, out); err != nil {
		return err
	}
	if *out < 0 {
		return fmt.Errorf("scenario: %s: %q must be non-negative", line1(n.line), n.scalar)
	}
	return nil
}

// f64signed parses a finite float of either sign (envelope bounds).
func f64signed(n *node, out *float64) error {
	s, err := scalarOf(n)
	if err != nil {
		return err
	}
	v, err := strconv.ParseFloat(s, 64)
	if err != nil {
		return fmt.Errorf("scenario: %s: %q is not a number", line1(n.line), s)
	}
	if math.IsNaN(v) || math.IsInf(v, 0) {
		return fmt.Errorf("scenario: %s: %q is not finite", line1(n.line), s)
	}
	*out = v
	return nil
}

// dur parses a non-negative time.Duration ("50ms", "4s").
func dur(n *node, out *time.Duration) error {
	s, err := scalarOf(n)
	if err != nil {
		return err
	}
	d, err := time.ParseDuration(s)
	if err != nil {
		return fmt.Errorf("scenario: %s: %q is not a duration", line1(n.line), s)
	}
	if d < 0 {
		return fmt.Errorf("scenario: %s: duration %q must be non-negative", line1(n.line), s)
	}
	*out = d
	return nil
}

func distVal(n *node, out *workload.Distribution) error {
	s, err := scalarOf(n)
	if err != nil {
		return err
	}
	switch s {
	case "exponential":
		*out = workload.Exponential
	case "constant":
		*out = workload.Constant
	case "uniform":
		*out = workload.Uniform
	default:
		return fmt.Errorf("scenario: %s: unknown distribution %q (exponential/constant/uniform)", line1(n.line), s)
	}
	return nil
}

func strList(n *node) ([]string, error) {
	var out []string
	err := eachItem(n, "list", func(item *node) error {
		s, err := scalarOf(item)
		if err != nil {
			return err
		}
		out = append(out, s)
		return nil
	})
	return out, err
}

func intList(n *node, out *[]int) error {
	return eachItem(n, "list", func(item *node) error {
		var v int
		if err := intval(item, &v); err != nil {
			return err
		}
		*out = append(*out, v)
		return nil
	})
}

func durList(n *node, out *[]time.Duration) error {
	return eachItem(n, "list", func(item *node) error {
		var d time.Duration
		if err := dur(item, &d); err != nil {
			return err
		}
		*out = append(*out, d)
		return nil
	})
}
