package scenario

import (
	"strings"
	"testing"
	"time"
)

// minimal is the smallest loadable scenario.
const minimal = `name: t
system:
  intra: naimi
  inter: naimi
`

func TestLoadMinimalDefaults(t *testing.T) {
	sc, err := Load([]byte(minimal))
	if err != nil {
		t.Fatal(err)
	}
	if sc.Topology.Kind != TopoUniform || sc.Topology.Clusters != 3 || sc.Topology.AppsPerCluster != 3 {
		t.Errorf("topology defaults wrong: %+v", sc.Topology)
	}
	if sc.Topology.LocalRTT != time.Millisecond || sc.Topology.RemoteRTT != 20*time.Millisecond {
		t.Errorf("RTT defaults wrong: %+v", sc.Topology)
	}
	if sc.Workload.Alpha != 5*time.Millisecond || sc.Workload.CSPerProcess != 6 {
		t.Errorf("workload defaults wrong: %+v", sc.Workload)
	}
	if !sc.Expect.Quiescent || sc.Expect.Complete != CompleteAll {
		t.Errorf("expect defaults wrong: %+v", sc.Expect)
	}
	if sc.Expect.CrashExits != -1 || sc.Expect.MinEpochs != -1 || sc.Expect.MinSwitches != -1 {
		t.Errorf("counters must default unchecked: %+v", sc.Expect)
	}
	if sc.ReservedNodes() != 1 || sc.NodesPerCluster() != 4 {
		t.Errorf("composed deployment reserves 1 node: reserved=%d per=%d",
			sc.ReservedNodes(), sc.NodesPerCluster())
	}
}

func TestLoadFullDocument(t *testing.T) {
	doc := `# full-surface document
name: full-case
doc: everything at once
seed: 42
topology:
  kind: uniform
  clusters: 2
  apps_per_cluster: 4
  local_rtt: 2ms
  remote_rtt: 30ms
workload:
  alpha: 10ms
  dist: constant
  cs_per_process: 7
  hot_cluster: 1
  hot_skew: 3.5
  phases:
    - rho: 2
      until: 100ms
    - rho: 20
system:
  intra: naimi
  inter: martin
network:
  jitter: 0.1
  loss: 0.05
  reliable: true
  rto: 50ms
  max_retries: 12
faults:
  - kind: crash
    node: 3
    at: 40ms
  - kind: restart
    node: 3
    at: 200ms
  - kind: crash_window
    victims: apps
    crashes: 2
    horizon: 150ms
    min_down: 10ms
    max_down: 20ms
  - kind: holder_kill
    victim: 6
    entry: 3
run:
  horizon: 2s
  event_limit: 500000
expect:
  quiescent: false
  complete: none
  envelopes:
    - metric: grants
      min: 1
      max: 100
`
	sc, err := Load([]byte(doc))
	if err != nil {
		t.Fatal(err)
	}
	if sc.Seed != 42 || sc.Workload.Phases[1].Rho != 20 || len(sc.Faults) != 4 {
		t.Errorf("decoded model wrong: %+v", sc)
	}
	if sc.Faults[3].Victim != 6 || sc.Faults[3].Entry != 3 || sc.Faults[3].Target != "app" {
		t.Errorf("holder_kill decoded wrong: %+v", sc.Faults[3])
	}
	if sc.Run.EventLimit != 500000 || sc.Run.Horizon != 2*time.Second {
		t.Errorf("run spec wrong: %+v", sc.Run)
	}
	if !sc.Expect.Envelopes[0].HasMin || !sc.Expect.Envelopes[0].HasMax {
		t.Errorf("envelope bounds not flagged: %+v", sc.Expect.Envelopes[0])
	}
}

func TestLoadMatrixTopology(t *testing.T) {
	doc := `name: m
topology:
  kind: matrix
  apps_per_cluster: 2
  matrix:
    - from a b
    - a 0.5 9.0
    - b 9.0 0.5
system:
  flat: suzuki
`
	sc, err := Load([]byte(doc))
	if err != nil {
		t.Fatal(err)
	}
	if sc.Clusters() != 2 || sc.Topology.Matrix == nil {
		t.Fatalf("matrix not decoded: %+v", sc.Topology)
	}
	if sc.ReservedNodes() != 0 {
		t.Errorf("flat deployment reserves no nodes, got %d", sc.ReservedNodes())
	}
}

func TestLoadTreeLevels(t *testing.T) {
	doc := `name: deep
topology:
  kind: tree
  fanouts:
    - 2
    - 3
  level_rtt:
    - 40ms
    - 10ms
  apps_per_cluster: 2
system:
  levels:
    - naimi
    - suzuki
    - naimi
  groups:
    - 3
`
	sc, err := Load([]byte(doc))
	if err != nil {
		t.Fatal(err)
	}
	if got := sc.Clusters(); got != 6 {
		t.Fatalf("fan-out product clusters = %d, want 6", got)
	}
	if sc.ReservedNodes() != 1 {
		t.Errorf("a hierarchy reserves one coordinator per cluster, got %d", sc.ReservedNodes())
	}
	spec := sc.treeSpec()
	if spec.LeafSize != 3 {
		t.Errorf("leaf size = %d, want apps + coordinator = 3", spec.LeafSize)
	}
	if spec.LeafRTT != time.Millisecond {
		t.Errorf("leaf RTT default = %v, want 1ms", spec.LeafRTT)
	}
	if len(sc.System.Levels) != 3 || sc.System.Levels[1] != "suzuki" {
		t.Errorf("levels not decoded: %v", sc.System.Levels)
	}
}

// TestLoadRejects drives every loader layer's rejection path: parser
// (structure), decoder (types, unknown keys), validation (cross-field
// rules). Each rejected document names its problem.
func TestLoadRejects(t *testing.T) {
	cases := []struct {
		name, doc, want string
	}{
		{"empty", "", "empty document"},
		{"tab indent", "name: t\n\tx: 1\n", "tab"},
		{"odd indent", "topology:\n   kind: uniform\n", "multiple of two"},
		{"over indent", "topology:\n    kind: uniform\n", "exactly two"},
		{"dup key", "name: a\nname: b\n", "duplicate key"},
		{"unknown key", "name: t\nbogus: 1\n", `unknown key "bogus"`},
		{"unknown nested", "name: t\ntopology:\n  size: 3\n", `unknown key "size"`},
		{"key no value", "name: t\ntopology:\n", `"topology" has no value`},
		{"bare dash", "faults:\n  -\n", "bare dash"},
		{"list amid map", "topology:\n  kind: uniform\n  - x\n", "list item amid mapping"},
		{"root list", "- a\n- b\n", "must be a mapping"},
		{"bad bool", "name: t\nsystem:\n  recovery: yes\n  intra: naimi\n  inter: naimi\n", "not a boolean"},
		{"bad int", "name: t\nseed: 1.5\n", "not an integer"},
		{"nan rho", "name: t\nworkload:\n  rho: NaN\nsystem:\n  intra: naimi\n  inter: naimi\n", "not finite"},
		{"inf jitter", "name: t\nnetwork:\n  jitter: +Inf\nsystem:\n  intra: naimi\n  inter: naimi\n", "not finite"},
		{"negative rho", "name: t\nworkload:\n  rho: -3\nsystem:\n  intra: naimi\n  inter: naimi\n", "non-negative"},
		{"negative duration", "name: t\nworkload:\n  alpha: -5ms\nsystem:\n  intra: naimi\n  inter: naimi\n", "non-negative"},
		{"bad duration", "name: t\nworkload:\n  alpha: 5 ms\nsystem:\n  intra: naimi\n  inter: naimi\n", "not a duration"},
		{"beta overflow", "name: t\nworkload:\n  alpha: 1h\n  rho: 1e18\nsystem:\n  intra: naimi\n  inter: naimi\n", "overflows the idle time"},
		{"beta overflow default alpha", "name: t\nworkload:\n  rho: 1e18\nsystem:\n  intra: naimi\n  inter: naimi\n", "overflows the idle time"},
		{"phase beta overflow", "name: t\nworkload:\n  alpha: 1h\n  phases:\n    - rho: 1\n      until: 1s\n    - rho: 1e18\n      until: 2s\nsystem:\n  intra: naimi\n  inter: naimi\n  adaptive: true\n", "phase 1 rho"},
		{"no name", "system:\n  intra: naimi\n  inter: naimi\n", "name is required"},
		{"bad name", "name: Has Spaces\nsystem:\n  intra: naimi\n  inter: naimi\n", "lowercase"},
		{"no system", "name: t\n", "needs intra and inter"},
		{"flat plus intra", "name: t\nsystem:\n  flat: suzuki\n  intra: naimi\n", "flat excludes"},
		{"unknown algorithm", "name: t\nsystem:\n  intra: nope\n  inter: naimi\n", "nope"},
		{"adaptive recovery", "name: t\nsystem:\n  intra: naimi\n  inter: naimi\n  adaptive: true\n  recovery: true\n", "cannot combine"},
		{"heartbeat no recovery", "name: t\nsystem:\n  intra: naimi\n  inter: naimi\n  heartbeat: 5ms\n", "needs recovery"},
		{"loss no reliable", "name: t\nsystem:\n  intra: naimi\n  inter: naimi\nnetwork:\n  loss: 0.1\n", "needs reliable"},
		{"loss one", "name: t\nsystem:\n  intra: naimi\n  inter: naimi\nnetwork:\n  loss: 1\n  reliable: true\n", "outside"},
		{"unknown fault", "name: t\nsystem:\n  intra: naimi\n  inter: naimi\nfaults:\n  - kind: meteor\n    node: 0\n    at: 1ms\n", "unknown kind"},
		{"crash no at", "name: t\nsystem:\n  intra: naimi\n  inter: naimi\nfaults:\n  - kind: crash\n    node: 0\n", "positive at"},
		{"crash node range", "name: t\nsystem:\n  intra: naimi\n  inter: naimi\nfaults:\n  - kind: crash\n    node: 99\n    at: 1ms\n", "outside the"},
		{"holder kill infra victim", "name: t\nsystem:\n  intra: naimi\n  inter: naimi\nfaults:\n  - kind: holder_kill\n    victim: 0\n    entry: 1\n", "infrastructure node"},
		{"standby victims no recovery", "name: t\nsystem:\n  intra: naimi\n  inter: naimi\nfaults:\n  - kind: crash_window\n    victims: standbys\n    crashes: 1\n    horizon: 10ms\n", "need recovery"},
		{"unknown completion", "name: t\nsystem:\n  intra: naimi\n  inter: naimi\nexpect:\n  complete: most\n", "unknown completion"},
		{"unknown metric", "name: t\nsystem:\n  intra: naimi\n  inter: naimi\nexpect:\n  envelopes:\n    - metric: vibes\n      max: 1\n", `unknown metric "vibes"`},
		{"empty envelope", "name: t\nsystem:\n  intra: naimi\n  inter: naimi\nexpect:\n  envelopes:\n    - metric: grants\n", "neither min nor max"},
		{"inverted envelope", "name: t\nsystem:\n  intra: naimi\n  inter: naimi\nexpect:\n  envelopes:\n    - metric: grants\n      min: 5\n      max: 1\n", "above max"},
		{"dup envelope", "name: t\nsystem:\n  intra: naimi\n  inter: naimi\nexpect:\n  envelopes:\n    - metric: grants\n      max: 1\n    - metric: grants\n      min: 0\n", "duplicate envelope"},
		{"switches no adaptive", "name: t\nsystem:\n  intra: naimi\n  inter: naimi\nexpect:\n  min_switches: 1\n", "needs adaptive"},
		{"standby no recovery", "name: t\nsystem:\n  intra: naimi\n  inter: naimi\nexpect:\n  standby_activated:\n    - 0\n", "need recovery"},
		{"cluster out of range", "name: t\nsystem:\n  intra: naimi\n  inter: naimi\nexpect:\n  cluster_complete:\n    - 7\n", "outside the 3-cluster"},
		{"levels plus intra", "name: t\nsystem:\n  intra: naimi\n  levels:\n    - naimi\n    - naimi\n", "levels excludes"},
		{"levels adaptive", "name: t\nsystem:\n  adaptive: true\n  levels:\n    - naimi\n    - naimi\n", "levels excludes adaptive"},
		{"one level", "name: t\nsystem:\n  levels:\n    - naimi\n", "at least 2 levels"},
		{"levels groups mismatch", "name: t\nsystem:\n  levels:\n    - naimi\n    - naimi\n  groups:\n    - 2\n", "group sizes"},
		{"groups no levels", "name: t\nsystem:\n  intra: naimi\n  inter: naimi\n  groups:\n    - 2\n", "groups need a levels list"},
		{"unknown level algorithm", "name: t\nsystem:\n  levels:\n    - naimi\n    - nope\n", "nope"},
		{"group of one", "name: t\nsystem:\n  levels:\n    - naimi\n    - naimi\n    - naimi\n  groups:\n    - 1\n", "one-child group"},
		{"tree no fanouts", "name: t\ntopology:\n  kind: tree\nsystem:\n  intra: naimi\n  inter: naimi\n", "requires a fanouts list"},
		{"fanouts no tree", "name: t\ntopology:\n  fanouts:\n    - 2\nsystem:\n  intra: naimi\n  inter: naimi\n", "require kind: tree"},
		{"tree missing level rtt", "name: t\ntopology:\n  kind: tree\n  fanouts:\n    - 2\n    - 2\n  level_rtt:\n    - 20ms\nsystem:\n  intra: naimi\n  inter: naimi\n", "level RTTs"},
		{"tree fanout one", "name: t\ntopology:\n  kind: tree\n  fanouts:\n    - 1\n  level_rtt:\n    - 20ms\nsystem:\n  intra: naimi\n  inter: naimi\n", "fan-out 1"},
		{"tree clusters contradiction", "name: t\ntopology:\n  kind: tree\n  clusters: 5\n  fanouts:\n    - 2\n    - 2\n  level_rtt:\n    - 20ms\n    - 5ms\nsystem:\n  intra: naimi\n  inter: naimi\n", "contradicts the fan-out product"},
		{"tree inline matrix", "name: t\ntopology:\n  kind: tree\n  fanouts:\n    - 2\n  level_rtt:\n    - 20ms\n  matrix:\n    - from a b\n    - a 0.5 9.0\n    - b 9.0 0.5\nsystem:\n  intra: naimi\n  inter: naimi\n", "requires kind: matrix"},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			_, err := Load([]byte(c.doc))
			if err == nil {
				t.Fatalf("accepted:\n%s", c.doc)
			}
			if !strings.Contains(err.Error(), c.want) {
				t.Fatalf("error %q does not mention %q", err, c.want)
			}
		})
	}
}

// TestParseErrorsNameLines: structural rejections point at the offending
// source line.
func TestParseErrorsNameLines(t *testing.T) {
	_, err := Load([]byte("name: t\nsystem:\n  intra: naimi\n  inter: naimi\n  intra: dup\n"))
	if err == nil || !strings.Contains(err.Error(), "line 5") {
		t.Fatalf("error %v does not name line 5", err)
	}
}

func TestCommentsAndBlanks(t *testing.T) {
	doc := "# leading comment\n\nname: t # trailing comment\n\nsystem:\n  intra: naimi\n  inter: naimi  # another\n"
	sc, err := Load([]byte(doc))
	if err != nil {
		t.Fatal(err)
	}
	if sc.System.Inter != "naimi" {
		t.Fatalf("trailing comment leaked into value: %q", sc.System.Inter)
	}
}

func TestKnownMetricRegistry(t *testing.T) {
	names := MetricNames()
	if len(names) < 20 {
		t.Fatalf("registry suspiciously small: %v", names)
	}
	seen := map[string]bool{}
	for _, n := range names {
		if seen[n] {
			t.Fatalf("duplicate metric %q", n)
		}
		seen[n] = true
		if !KnownMetric(n) {
			t.Fatalf("registry name %q not known", n)
		}
	}
	if KnownMetric("no-such-metric") {
		t.Fatal("unknown name accepted")
	}
}
