// Package scenario implements the declarative conformance suite: a
// scenario file declares a topology, a workload, a fault schedule, the
// algorithm pair under test and an expectation block (invariants plus
// metric envelopes); the engine compiles it onto the simnet / faults /
// recovery stack, runs it deterministically and emits a structured
// verdict with per-invariant pass/fail and measured-vs-envelope deltas.
//
// The package splits loader / engine / checker-library:
//
//   - parse.go   — strict stdlib-only parser for the YAML-subset format
//   - scenario.go — the typed model, strict decoding and validation
//   - engine.go  — compiles a scenario onto a private Simulator and runs it
//   - checkers.go — the invariant library evaluating expectations
//   - metrics.go — the named-metric registry envelope checks draw from
//   - verdict.go — the structured, byte-deterministic verdict
//   - corpus.go  — directory sweeps with index-ordered parallel fan-out
//
// Determinism contract: running the same scenario file with the same seed
// produces a byte-identical verdict JSON and (when tracing is enabled) a
// byte-identical event trace, for every worker count — the same pinning
// discipline as internal/fleet.
package scenario

import (
	"fmt"
	"strings"
)

// The scenario file format is a small, strict YAML subset — just enough
// structure for mappings, lists and scalars, with none of YAML's
// ambiguity:
//
//	# comments run to end of line
//	name: app-holder-crash
//	topology:
//	  kind: uniform        # nested mapping: exactly two more spaces
//	  clusters: 3
//	faults:
//	  - kind: crash        # list of mappings: "- " plus aligned keys
//	    node: 0
//	    at: 50ms
//	  - kind: restart
//	    node: 0
//	    at: 300ms
//
// Rules enforced by the parser (anything else is an error, never a
// guess): indentation is spaces only, each nesting level is exactly two
// columns deeper; duplicate keys in one mapping are rejected; a key with
// no value on its line must be followed by a deeper block; list items and
// mapping keys cannot mix at one level.

// nodeKind discriminates parsed nodes.
type nodeKind uint8

const (
	scalarNode nodeKind = iota
	mapNode
	listNode
)

// node is one vertex of the parsed document tree.
type node struct {
	kind   nodeKind
	scalar string // scalarNode
	line   int    // 1-based source line (for error messages)

	keys []string         // mapNode: keys in file order
	vals map[string]*node // mapNode

	items []*node // listNode
}

// child returns the mapping value for key, or nil.
func (n *node) child(key string) *node {
	if n == nil || n.kind != mapNode {
		return nil
	}
	return n.vals[key]
}

// line1 names a source line in errors.
func line1(line int) string { return fmt.Sprintf("line %d", line) }

// srcLine is one logical (non-blank, non-comment) line.
type srcLine struct {
	indent  int
	content string
	line    int
}

// Parse reads a scenario document into its node tree. It never panics on
// malformed input; every rejection names the offending line.
func Parse(data []byte) (*node, error) {
	lines, err := splitLines(string(data))
	if err != nil {
		return nil, err
	}
	if len(lines) == 0 {
		return nil, fmt.Errorf("scenario: empty document")
	}
	if lines[0].indent != 0 {
		return nil, fmt.Errorf("scenario: %s: document must start at column 0", line1(lines[0].line))
	}
	root, next, err := parseBlock(lines, 0, 0)
	if err != nil {
		return nil, err
	}
	if next != len(lines) {
		return nil, fmt.Errorf("scenario: %s: unexpected indentation", line1(lines[next].line))
	}
	if root.kind != mapNode {
		return nil, fmt.Errorf("scenario: document root must be a mapping, not a list")
	}
	return root, nil
}

// splitLines strips comments and blanks and measures indentation. Tabs in
// leading whitespace are rejected — silently treating a tab as one column
// is how YAML indentation bugs are born.
func splitLines(text string) ([]srcLine, error) {
	var out []srcLine
	for i, raw := range strings.Split(text, "\n") {
		lineNo := i + 1
		// Strip comments: a '#' at line start or preceded by a space.
		// Values never contain '#' in this format, so no quoting is
		// needed.
		if idx := commentStart(raw); idx >= 0 {
			raw = raw[:idx]
		}
		if strings.TrimSpace(raw) == "" {
			continue
		}
		indent := 0
		for indent < len(raw) && raw[indent] == ' ' {
			indent++
		}
		if indent < len(raw) && raw[indent] == '\t' {
			return nil, fmt.Errorf("scenario: %s: tab in indentation (spaces only)", line1(lineNo))
		}
		content := strings.TrimRight(raw[indent:], " \t")
		if strings.ContainsRune(content, '\t') {
			return nil, fmt.Errorf("scenario: %s: tab character in content", line1(lineNo))
		}
		if indent%2 != 0 {
			return nil, fmt.Errorf("scenario: %s: indentation of %d columns is not a multiple of two", line1(lineNo), indent)
		}
		out = append(out, srcLine{indent: indent, content: content, line: lineNo})
	}
	return out, nil
}

// commentStart returns the byte offset where a comment begins, or -1.
func commentStart(raw string) int {
	for i := 0; i < len(raw); i++ {
		if raw[i] != '#' {
			continue
		}
		if i == 0 || raw[i-1] == ' ' || raw[i-1] == '\t' {
			return i
		}
	}
	return -1
}

// parseBlock parses the maximal run of lines at exactly the given indent
// into one node (a mapping or a list, depending on the first line), and
// returns the index of the first unconsumed line.
func parseBlock(lines []srcLine, i, indent int) (*node, int, error) {
	if isListItem(lines[i].content) {
		return parseList(lines, i, indent)
	}
	return parseMap(lines, i, indent)
}

// isListItem reports whether a content line introduces a list element.
func isListItem(content string) bool {
	return content == "-" || strings.HasPrefix(content, "- ")
}

// parseMap parses `key: value` lines at one indent level.
func parseMap(lines []srcLine, i, indent int) (*node, int, error) {
	n := &node{kind: mapNode, vals: make(map[string]*node), line: lines[i].line}
	for i < len(lines) {
		ln := lines[i]
		if ln.indent < indent {
			break
		}
		if ln.indent > indent {
			return nil, 0, fmt.Errorf("scenario: %s: unexpected indentation (expected %d columns, got %d)",
				line1(ln.line), indent, ln.indent)
		}
		if isListItem(ln.content) {
			return nil, 0, fmt.Errorf("scenario: %s: list item amid mapping keys", line1(ln.line))
		}
		key, rest, err := splitKey(ln)
		if err != nil {
			return nil, 0, err
		}
		if _, dup := n.vals[key]; dup {
			return nil, 0, fmt.Errorf("scenario: %s: duplicate key %q", line1(ln.line), key)
		}
		var child *node
		if rest != "" {
			child = &node{kind: scalarNode, scalar: rest, line: ln.line}
			i++
		} else {
			// Block value: the next line must be exactly one level deeper.
			if i+1 >= len(lines) || lines[i+1].indent <= indent {
				return nil, 0, fmt.Errorf("scenario: %s: key %q has no value", line1(ln.line), key)
			}
			if lines[i+1].indent != indent+2 {
				return nil, 0, fmt.Errorf("scenario: %s: block under %q must be indented exactly two more columns",
					line1(lines[i+1].line), key)
			}
			child, i, err = parseBlock(lines, i+1, indent+2)
			if err != nil {
				return nil, 0, err
			}
		}
		n.keys = append(n.keys, key)
		n.vals[key] = child
	}
	return n, i, nil
}

// parseList parses `- item` lines at one indent level. A dash followed by
// `key: value` opens a mapping item whose further keys sit two columns
// deeper than the dash, aligned with the first key:
//
//   - kind: crash
//     node: 0
func parseList(lines []srcLine, i, indent int) (*node, int, error) {
	n := &node{kind: listNode, line: lines[i].line}
	for i < len(lines) {
		ln := lines[i]
		if ln.indent < indent {
			break
		}
		if ln.indent > indent {
			return nil, 0, fmt.Errorf("scenario: %s: unexpected indentation (expected %d columns, got %d)",
				line1(ln.line), indent, ln.indent)
		}
		if !isListItem(ln.content) {
			return nil, 0, fmt.Errorf("scenario: %s: mapping key amid list items", line1(ln.line))
		}
		if ln.content == "-" {
			return nil, 0, fmt.Errorf("scenario: %s: bare dash (empty list item)", line1(ln.line))
		}
		rest := strings.TrimPrefix(ln.content, "- ")
		if rest == "" || strings.HasPrefix(rest, " ") {
			return nil, 0, fmt.Errorf("scenario: %s: malformed list item", line1(ln.line))
		}
		if looksLikeKey(rest) {
			// Mapping item: replay the inline first entry as a virtual
			// line at indent+2 and let parseMap consume the aligned
			// continuation keys.
			virtual := srcLine{indent: indent + 2, content: rest, line: ln.line}
			sub := []srcLine{virtual}
			j := i + 1
			for j < len(lines) && lines[j].indent >= indent+2 && !(lines[j].indent == indent && isListItem(lines[j].content)) {
				sub = append(sub, lines[j])
				j++
			}
			item, consumed, err := parseMap(sub, 0, indent+2)
			if err != nil {
				return nil, 0, err
			}
			if consumed != len(sub) {
				return nil, 0, fmt.Errorf("scenario: %s: unexpected indentation in list item", line1(sub[consumed].line))
			}
			n.items = append(n.items, item)
			i = j
		} else {
			n.items = append(n.items, &node{kind: scalarNode, scalar: rest, line: ln.line})
			i++
		}
	}
	return n, i, nil
}

// looksLikeKey reports whether a list-item body opens a mapping
// (`key: value` or `key:`). A colon inside a plain scalar (e.g. a matrix
// row) does not count: keys are bare identifiers.
func looksLikeKey(s string) bool {
	idx := strings.Index(s, ":")
	if idx <= 0 {
		return false
	}
	if idx+1 < len(s) && s[idx+1] != ' ' {
		return false
	}
	return validKey(s[:idx])
}

// splitKey splits a mapping line into key and (possibly empty) value.
func splitKey(ln srcLine) (key, rest string, err error) {
	idx := strings.Index(ln.content, ":")
	if idx <= 0 {
		return "", "", fmt.Errorf("scenario: %s: expected `key: value`, got %q", line1(ln.line), ln.content)
	}
	key = ln.content[:idx]
	if !validKey(key) {
		return "", "", fmt.Errorf("scenario: %s: invalid key %q", line1(ln.line), key)
	}
	rest = strings.TrimSpace(ln.content[idx+1:])
	return key, rest, nil
}

// validKey accepts lower_snake identifiers — the only key shape the
// schema uses.
func validKey(s string) bool {
	if s == "" {
		return false
	}
	for i := 0; i < len(s); i++ {
		c := s[i]
		switch {
		case c >= 'a' && c <= 'z':
		case c >= '0' && c <= '9':
		case c == '_':
		default:
			return false
		}
	}
	return true
}
