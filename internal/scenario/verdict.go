package scenario

import (
	"encoding/json"
	"fmt"
	"strings"
)

// Check is one evaluated invariant or envelope of a verdict.
type Check struct {
	// Name identifies the check: "safety", "liveness", "completion",
	// "envelope:<metric>", ...
	Name string `json:"name"`
	Pass bool   `json:"pass"`
	// Detail explains a failure (first violation, measured-vs-envelope
	// delta); empty on pass unless the check has something to report.
	Detail string `json:"detail,omitempty"`
}

// Verdict is the structured outcome of one scenario run. Its JSON
// rendering is byte-deterministic: checks appear in fixed evaluation
// order, metrics in registry order, and no map is ever marshalled.
type Verdict struct {
	Scenario string   `json:"scenario"`
	Doc      string   `json:"doc,omitempty"`
	Seed     int64    `json:"seed"`
	Pass     bool     `json:"pass"`
	Checks   []Check  `json:"checks"`
	Metrics  []Metric `json:"metrics"`
}

// Failing returns the checks that failed, in evaluation order.
func (v *Verdict) Failing() []Check {
	var out []Check
	for _, c := range v.Checks {
		if !c.Pass {
			out = append(out, c)
		}
	}
	return out
}

// JSON renders the verdict as indented JSON with a trailing newline.
func (v *Verdict) JSON() []byte {
	b, err := json.MarshalIndent(v, "", "  ")
	if err != nil {
		// Verdict contains no unmarshalable types; this cannot happen.
		panic(err)
	}
	return append(b, '\n')
}

// String renders a compact human-readable report.
func (v *Verdict) String() string {
	var b strings.Builder
	status := "PASS"
	if !v.Pass {
		status = "FAIL"
	}
	fmt.Fprintf(&b, "%s %s (seed %d, %d checks)\n", status, v.Scenario, v.Seed, len(v.Checks))
	for _, c := range v.Checks {
		if c.Pass {
			continue
		}
		fmt.Fprintf(&b, "  FAIL %-24s %s\n", c.Name, c.Detail)
	}
	return b.String()
}
