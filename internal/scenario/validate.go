package scenario

import (
	"fmt"
	"sort"
	"time"

	"gridmutex/internal/algorithms"
	"gridmutex/internal/topology"
	"gridmutex/internal/workload"
)

// Topology kinds.
const (
	TopoUniform  = "uniform"
	TopoGrid5000 = "grid5000"
	TopoMatrix   = "matrix"
	TopoTree     = "tree"
)

// Clusters returns the scenario's cluster count.
func (sc *Scenario) Clusters() int {
	switch sc.Topology.Kind {
	case TopoGrid5000:
		return 9
	case TopoMatrix:
		if sc.Topology.Matrix != nil {
			return len(sc.Topology.Matrix.Names)
		}
		return 0
	case TopoTree:
		c, err := sc.treeSpec().Clusters()
		if err != nil {
			return 0
		}
		return c
	default:
		return sc.Topology.Clusters
	}
}

// treeSpec assembles the topology.TreeSpec of a tree scenario: fan-outs
// and level RTTs from the file, leaf size from the application count plus
// the reserved infrastructure nodes (same accounting as every other
// kind), leaf RTT from local_rtt.
func (sc *Scenario) treeSpec() topology.TreeSpec {
	return topology.TreeSpec{
		Fanouts:  sc.Topology.Fanouts,
		LeafSize: sc.NodesPerCluster(),
		LeafRTT:  sc.Topology.LocalRTT,
		LevelRTT: sc.Topology.LevelRTT,
	}
}

// ReservedNodes returns how many infrastructure nodes the system under
// test occupies at the front of every cluster: none for a flat
// deployment, the coordinator for a composition, coordinator plus
// standby for a crash-tolerant one.
func (sc *Scenario) ReservedNodes() int {
	switch {
	case sc.System.Flat != "":
		return 0
	case sc.System.Recovery:
		return 2
	default:
		return 1
	}
}

// NodesPerCluster returns application processes plus reserved nodes.
func (sc *Scenario) NodesPerCluster() int {
	return sc.Topology.AppsPerCluster + sc.ReservedNodes()
}

// Validate normalizes defaults and rejects every inconsistency the
// engine would otherwise have to guess about. It is called by Load; a
// hand-built Scenario must call it before Run.
func (sc *Scenario) Validate() error {
	if sc.Name == "" {
		return fmt.Errorf("scenario: name is required")
	}
	if !validName(sc.Name) {
		return fmt.Errorf("scenario: name %q must be lowercase letters, digits and dashes", sc.Name)
	}
	if err := sc.validateTopology(); err != nil {
		return err
	}
	if err := sc.validateSystem(); err != nil {
		return err
	}
	if err := sc.validateWorkload(); err != nil {
		return err
	}
	if err := sc.validateNetwork(); err != nil {
		return err
	}
	if err := sc.validateFaults(); err != nil {
		return err
	}
	return sc.validateExpect()
}

func validName(s string) bool {
	for i := 0; i < len(s); i++ {
		c := s[i]
		switch {
		case c >= 'a' && c <= 'z':
		case c >= '0' && c <= '9':
		case c == '-':
		default:
			return false
		}
	}
	return true
}

func (sc *Scenario) validateTopology() error {
	t := &sc.Topology
	if t.Kind == "" {
		t.Kind = TopoUniform
	}
	switch t.Kind {
	case TopoUniform:
		if t.Clusters == 0 {
			t.Clusters = 3
		}
		if t.Clusters < 1 {
			return fmt.Errorf("scenario: topology needs at least one cluster")
		}
		if t.Matrix != nil {
			return fmt.Errorf("scenario: inline matrix requires kind: matrix")
		}
		if t.LocalRTT == 0 {
			t.LocalRTT = time.Millisecond
		}
		if t.RemoteRTT == 0 {
			t.RemoteRTT = 20 * time.Millisecond
		}
	case TopoGrid5000:
		if t.Clusters != 0 && t.Clusters != 9 {
			return fmt.Errorf("scenario: grid5000 has 9 clusters, not %d", t.Clusters)
		}
		t.Clusters = 9
		if t.Matrix != nil {
			return fmt.Errorf("scenario: inline matrix requires kind: matrix")
		}
	case TopoMatrix:
		if t.Matrix == nil {
			return fmt.Errorf("scenario: kind: matrix requires an inline matrix block")
		}
		if t.Clusters != 0 && t.Clusters != len(t.Matrix.Names) {
			return fmt.Errorf("scenario: clusters %d contradicts the %d-cluster inline matrix",
				t.Clusters, len(t.Matrix.Names))
		}
		t.Clusters = len(t.Matrix.Names)
	case TopoTree:
		if len(t.Fanouts) == 0 {
			return fmt.Errorf("scenario: kind: tree requires a fanouts list")
		}
		if t.Matrix != nil {
			return fmt.Errorf("scenario: inline matrix requires kind: matrix")
		}
		if t.LocalRTT == 0 {
			t.LocalRTT = time.Millisecond
		}
	default:
		return fmt.Errorf("scenario: unknown topology kind %q (uniform/grid5000/matrix/tree)", t.Kind)
	}
	if t.Kind != TopoTree && (len(t.Fanouts) > 0 || len(t.LevelRTT) > 0) {
		return fmt.Errorf("scenario: fanouts/level_rtt require kind: tree")
	}
	if t.AppsPerCluster == 0 {
		t.AppsPerCluster = 3
	}
	if t.AppsPerCluster < 1 {
		return fmt.Errorf("scenario: apps_per_cluster must be at least 1")
	}
	if t.Kind == TopoTree {
		// The leaf size folds in the reserved infrastructure nodes, so the
		// full spec is only checkable after the apps_per_cluster default.
		if err := sc.treeSpec().Validate(); err != nil {
			return fmt.Errorf("scenario: %v", err)
		}
		if c, _ := sc.treeSpec().Clusters(); t.Clusters != 0 && t.Clusters != c {
			return fmt.Errorf("scenario: clusters %d contradicts the fan-out product %d", t.Clusters, c)
		}
	}
	return nil
}

func (sc *Scenario) validateSystem() error {
	s := &sc.System
	if len(s.Groups) > 0 && len(s.Levels) == 0 {
		return fmt.Errorf("scenario: groups need a levels list")
	}
	switch {
	case len(s.Levels) > 0:
		if s.Flat != "" || s.Intra != "" || s.Inter != "" {
			return fmt.Errorf("scenario: levels excludes intra/inter/flat")
		}
		if s.Adaptive || s.Recovery {
			return fmt.Errorf("scenario: levels excludes adaptive and recovery")
		}
		if len(s.Levels) < 2 {
			return fmt.Errorf("scenario: a hierarchy needs at least 2 levels, got %d", len(s.Levels))
		}
		if len(s.Levels) != len(s.Groups)+2 {
			return fmt.Errorf("scenario: %d levels need %d group sizes, got %d",
				len(s.Levels), len(s.Levels)-2, len(s.Groups))
		}
		for i, name := range s.Levels {
			if _, err := algorithms.Factory(name); err != nil {
				return fmt.Errorf("scenario: level %d: %v", i, err)
			}
		}
		for i, g := range s.Groups {
			if g < 2 {
				return fmt.Errorf("scenario: group size %d at level %d (a one-child group adds nothing)", g, i+1)
			}
		}
	case s.Flat != "":
		if s.Intra != "" || s.Inter != "" {
			return fmt.Errorf("scenario: flat excludes intra/inter")
		}
		if s.Adaptive || s.Recovery {
			return fmt.Errorf("scenario: flat excludes adaptive and recovery")
		}
		if s.LocalBias != 0 {
			return fmt.Errorf("scenario: local_bias needs a composition")
		}
		if _, err := algorithms.Factory(s.Flat); err != nil {
			return fmt.Errorf("scenario: %v", err)
		}
	default:
		if s.Intra == "" || s.Inter == "" {
			return fmt.Errorf("scenario: system needs intra and inter (or flat, or levels)")
		}
		if _, err := algorithms.Factory(s.Intra); err != nil {
			return fmt.Errorf("scenario: intra: %v", err)
		}
		if _, err := algorithms.Factory(s.Inter); err != nil {
			return fmt.Errorf("scenario: inter: %v", err)
		}
	}
	if s.Adaptive && s.Recovery {
		return fmt.Errorf("scenario: adaptive and recovery cannot combine (the recovery layer wraps static members)")
	}
	if s.LocalBias < 0 {
		return fmt.Errorf("scenario: local_bias must be non-negative")
	}
	if s.LocalBias > 0 && s.Recovery {
		return fmt.Errorf("scenario: local_bias is not supported under recovery")
	}
	if s.Heartbeat != 0 && !s.Recovery {
		return fmt.Errorf("scenario: heartbeat needs recovery: true")
	}
	if s.Recovery {
		if s.Heartbeat == 0 {
			s.Heartbeat = 20 * time.Millisecond
		}
		if s.Heartbeat <= 0 {
			return fmt.Errorf("scenario: heartbeat must be positive")
		}
	}
	return nil
}

// defaultAlpha is the critical-section duration assumed when a scenario
// omits alpha; the loader's overflow check uses the same value.
const defaultAlpha = 5 * time.Millisecond

func (sc *Scenario) validateWorkload() error {
	w := &sc.Workload
	if w.Alpha == 0 {
		w.Alpha = defaultAlpha
	}
	if w.CSPerProcess == 0 {
		w.CSPerProcess = 6
	}
	// Delegate the cross-field rules to the workload package so the
	// scenario format can never accept parameters the runner rejects.
	params := workload.Params{
		Alpha: w.Alpha, Rho: w.Rho, Phases: w.Phases, Dist: w.Dist,
		CSPerProcess: w.CSPerProcess, HotCluster: w.HotCluster, HotSkew: w.HotSkew,
	}
	if err := params.Validate(); err != nil {
		return fmt.Errorf("scenario: %v", err)
	}
	if w.HotCluster < 0 || w.HotCluster >= sc.Clusters() {
		if w.HotSkew > 1 {
			return fmt.Errorf("scenario: hot_cluster %d outside the %d-cluster grid", w.HotCluster, sc.Clusters())
		}
	}
	return nil
}

func (sc *Scenario) validateNetwork() error {
	n := &sc.Network
	if n.Jitter < 0 || n.Jitter > 1 {
		return fmt.Errorf("scenario: jitter %v outside [0, 1]", n.Jitter)
	}
	if n.Loss < 0 || n.Loss >= 1 {
		return fmt.Errorf("scenario: loss %v outside [0, 1)", n.Loss)
	}
	if n.Loss > 0 && !n.Reliable {
		return fmt.Errorf("scenario: loss %v needs reliable: true (the algorithms assume reliable channels)", n.Loss)
	}
	if !n.Reliable && (n.RTO != 0 || n.MaxRetries != 0) {
		return fmt.Errorf("scenario: rto/max_retries need reliable: true")
	}
	if n.MaxRetries < 0 {
		return fmt.Errorf("scenario: max_retries must be non-negative")
	}
	return nil
}

func (sc *Scenario) validateFaults() error {
	total := sc.Clusters() * sc.NodesPerCluster()
	for i, f := range sc.Faults {
		ctx := fmt.Sprintf("scenario: fault %d (%s)", i, f.Kind)
		switch f.Kind {
		case FaultCrash, FaultRestart:
			if f.Node < 0 || f.Node >= total {
				return fmt.Errorf("%s: node %d outside the %d-node grid", ctx, f.Node, total)
			}
			if f.At <= 0 {
				return fmt.Errorf("%s: needs a positive at instant", ctx)
			}
		case FaultCrashWindow:
			switch f.Victims {
			case VictimsApps:
			case VictimsCoordinators, VictimsStandbys:
				if sc.ReservedNodes() == 0 {
					return fmt.Errorf("%s: %s victims need a composed deployment", ctx, f.Victims)
				}
				if f.Victims == VictimsStandbys && !sc.System.Recovery {
					return fmt.Errorf("%s: standby victims need recovery: true", ctx)
				}
			default:
				return fmt.Errorf("%s: unknown victim set %q (apps/coordinators/standbys)", ctx, f.Victims)
			}
			if f.Crashes < 1 {
				return fmt.Errorf("%s: needs at least one crash", ctx)
			}
			if f.Horizon <= 0 {
				return fmt.Errorf("%s: needs a positive horizon", ctx)
			}
			if f.MaxDown < f.MinDown {
				return fmt.Errorf("%s: max_down %v before min_down %v", ctx, f.MaxDown, f.MinDown)
			}
		case FaultHolderKill:
			if f.Target != "app" && f.Target != "coordinator" {
				return fmt.Errorf("%s: unknown target %q (app/coordinator)", ctx, f.Target)
			}
			if f.Target == "coordinator" && sc.ReservedNodes() == 0 {
				return fmt.Errorf("%s: coordinator target needs a composed deployment", ctx)
			}
			if f.Entry < 0 || f.Entry > sc.Workload.CSPerProcess {
				return fmt.Errorf("%s: entry %d outside [0, %d] (0 draws from the seed)",
					ctx, f.Entry, sc.Workload.CSPerProcess)
			}
			if f.Victim >= 0 {
				if f.Victim >= total {
					return fmt.Errorf("%s: victim %d outside the %d-node grid", ctx, f.Victim, total)
				}
				if f.Victim%sc.NodesPerCluster() < sc.ReservedNodes() {
					return fmt.Errorf("%s: victim %d is an infrastructure node (apps start at offset %d per cluster)",
						ctx, f.Victim, sc.ReservedNodes())
				}
			}
		case FaultPartition:
			if len(f.Clusters) == 0 {
				return fmt.Errorf("%s: needs a non-empty clusters list", ctx)
			}
			clusters := sc.Clusters()
			seen := make(map[int]bool, len(f.Clusters))
			for _, c := range f.Clusters {
				if c < 0 || c >= clusters {
					return fmt.Errorf("%s: cluster %d outside the %d-cluster grid", ctx, c, clusters)
				}
				if seen[c] {
					return fmt.Errorf("%s: cluster %d listed twice", ctx, c)
				}
				seen[c] = true
			}
			if len(f.Clusters) >= clusters {
				return fmt.Errorf("%s: cutting off every cluster leaves nothing on the other side", ctx)
			}
			if f.At <= 0 {
				return fmt.Errorf("%s: needs a positive at instant", ctx)
			}
			if f.HealAt != 0 && f.HealAt <= f.At {
				return fmt.Errorf("%s: heal_at %v not after at %v", ctx, f.HealAt, f.At)
			}
			if !sc.System.Recovery {
				return fmt.Errorf("%s: needs recovery: true (without detectors a cut just starves both sides)", ctx)
			}
		case "":
			return fmt.Errorf("scenario: fault %d has no kind", i)
		default:
			return fmt.Errorf("scenario: fault %d has unknown kind %q", i, f.Kind)
		}
	}
	// The fabric models a single active cut, so partition windows must not
	// overlap: each cut has to heal before the next one starts.
	var parts []Fault
	for _, f := range sc.Faults {
		if f.Kind == FaultPartition {
			parts = append(parts, f)
		}
	}
	sort.Slice(parts, func(i, j int) bool { return parts[i].At < parts[j].At })
	for i := 1; i < len(parts); i++ {
		prev := parts[i-1]
		if prev.HealAt == 0 || prev.HealAt > parts[i].At {
			return fmt.Errorf("scenario: partition at %v overlaps the cut starting at %v (one cut at a time)",
				prev.At, parts[i].At)
		}
	}
	return nil
}

func (sc *Scenario) validateExpect() error {
	e := &sc.Expect
	switch e.Complete {
	case CompleteAll, CompleteSurvivors, CompleteNone:
	default:
		return fmt.Errorf("scenario: unknown completion mode %q (all/survivors/none)", e.Complete)
	}
	for _, v := range []struct {
		name string
		v    int
	}{
		{"crash_exits", e.CrashExits}, {"min_epochs", e.MinEpochs}, {"max_epochs", e.MaxEpochs},
		{"min_switches", e.MinSwitches}, {"min_retransmits", e.MinRetransmits}, {"max_given_up", e.MaxGivenUp},
	} {
		if v.v < -1 {
			return fmt.Errorf("scenario: expect.%s must be -1 (unchecked) or non-negative", v.name)
		}
	}
	if e.MinEpochs >= 0 && e.MaxEpochs >= 0 && e.MinEpochs > e.MaxEpochs {
		return fmt.Errorf("scenario: min_epochs %d above max_epochs %d", e.MinEpochs, e.MaxEpochs)
	}
	clusters := sc.Clusters()
	for _, set := range [][]int{e.StandbyActivated, e.StandbyQuiet, e.ClusterComplete} {
		for _, c := range set {
			if c < 0 || c >= clusters {
				return fmt.Errorf("scenario: expect names cluster %d outside the %d-cluster grid", c, clusters)
			}
		}
	}
	if !sc.System.Recovery && (len(e.StandbyActivated) > 0 || len(e.StandbyQuiet) > 0 || len(e.FrozenGroups) > 0) {
		return fmt.Errorf("scenario: standby/frozen expectations need recovery: true")
	}
	if !sc.System.Recovery && (e.CrashExits > 0 || e.MinEpochs > 0) {
		return fmt.Errorf("scenario: crash_exits/min_epochs expectations need recovery: true")
	}
	if e.MinSwitches >= 0 && !sc.System.Adaptive {
		return fmt.Errorf("scenario: min_switches needs adaptive: true")
	}
	if (e.MinRetransmits >= 0 || e.MaxGivenUp >= 0) && !sc.Network.Reliable {
		return fmt.Errorf("scenario: retransmit expectations need reliable: true")
	}
	seen := make(map[string]bool, len(e.Envelopes))
	for i, env := range e.Envelopes {
		if !KnownMetric(env.Metric) {
			return fmt.Errorf("scenario: envelope %d bounds unknown metric %q (known: %v)",
				i, env.Metric, MetricNames())
		}
		if !env.HasMin && !env.HasMax {
			return fmt.Errorf("scenario: envelope %d on %q has neither min nor max", i, env.Metric)
		}
		if env.HasMin && env.HasMax && env.Min > env.Max {
			return fmt.Errorf("scenario: envelope %d on %q has min %v above max %v", i, env.Metric, env.Min, env.Max)
		}
		if seen[env.Metric] {
			return fmt.Errorf("scenario: duplicate envelope for metric %q", env.Metric)
		}
		seen[env.Metric] = true
	}
	return nil
}
