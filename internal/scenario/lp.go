package scenario

import (
	"fmt"

	"gridmutex/internal/core"
	"gridmutex/internal/des"
	"gridmutex/internal/mutex"
	"gridmutex/internal/simnet"
	"gridmutex/internal/topology"
	"gridmutex/internal/trace"
	"gridmutex/internal/workload"
)

// lpEligible reports whether a scenario can run on the window-barrier
// scheduler. The LP path shards every run-scoped structure by cluster,
// so features that thread one shared mutable object through the run —
// recovery detectors, the adaptive switching policy, the reliable layer
// and its loss model, fault injection — stay on the classic
// single-simulator path. A multi-cluster topology with a zero
// inter-cluster latency admits no lookahead and also falls back, as does
// a k-level hierarchy: its intermediate coordinators carry IDs above the
// topology's node range, which the per-cluster sharding cannot place.
func lpEligible(sc *Scenario, opts Options, g *topology.Grid) bool {
	if opts.LPs < 1 || sc.System.Recovery || sc.System.Adaptive ||
		len(sc.System.Levels) > 0 ||
		sc.Network.Reliable || sc.Network.Loss > 0 || len(sc.Faults) > 0 {
		return false
	}
	if g.NumClusters() == 1 {
		return true
	}
	lookahead, ok := g.MinInterOneWay()
	return ok && lookahead > 0
}

// lpRunnerSeed derives the workload seed of one logical process (same
// derivation as the harness: the salt keeps these streams disjoint from
// simnet's per-LP jitter streams, which mix the same scenario seed).
func lpRunnerSeed(seed int64, lp int) int64 {
	z := splitmix64(uint64(seed) ^ 0x6c62272e07bb0142)
	return int64(splitmix64(z + 0x9e3779b97f4a7c15*uint64(lp+1)))
}

// runLP executes an eligible scenario on the conservative parallel
// scheduler: one logical process per cluster, lookahead from the
// topology's minimum inter-cluster one-way delay, opts.LPs worker
// goroutines executing the lookahead windows. Safety is re-derived from
// the merged grant records after the parallel phase (a live monitor
// would be shared mutable state across LPs). The outcome is
// byte-identical for every worker count; the random streams differ from
// the classic path's by construction, so LP results compare against LP
// results, never classic.
func runLP(sc *Scenario, opts Options, g *topology.Grid) (*Result, error) {
	clusters := g.NumClusters()
	lookahead, _ := g.MinInterOneWay() // zero for single-cluster grids: legal with one LP
	win := des.NewWindows(clusters, lookahead, opts.LPs)

	var tracers []*trace.Tracer
	if opts.TraceCapacity > 0 {
		tracers = make([]*trace.Tracer, clusters)
		for i := range tracers {
			tracers[i] = trace.New(win.LP(i).Now, opts.TraceCapacity)
		}
	}
	net := simnet.NewLP(win, g, g.ClusterOf, simnet.Options{
		Jitter: sc.Network.Jitter, Seed: sc.Seed, Traces: tracers,
	})

	w := sc.Workload
	runners := make([]*workload.Runner, clusters)
	for i := range runners {
		var err error
		runners[i], err = workload.NewRunner(win.LP(i), workload.Params{
			Alpha: w.Alpha, Rho: w.Rho, Phases: w.Phases, Dist: w.Dist,
			CSPerProcess: w.CSPerProcess, Seed: lpRunnerSeed(sc.Seed, i),
			HotCluster: w.HotCluster, HotSkew: w.HotSkew,
		}, nil)
		if err != nil {
			return nil, fmt.Errorf("scenario %s: %v", sc.Name, err)
		}
	}
	callbacks := func(id mutex.ID) mutex.Callbacks {
		// Application IDs are topology node indices, so the owning
		// runner is the node's cluster's.
		return runners[g.ClusterOf(int(id))].Callbacks(id)
	}

	var coordOpts []func(*core.Coordinator)
	if k := sc.System.LocalBias; k > 0 {
		coordOpts = append(coordOpts, func(c *core.Coordinator) { c.SetLocalBias(k) })
	}
	var (
		coreDep *core.Deployment
		err     error
	)
	if sc.System.Flat != "" {
		coreDep, err = core.BuildFlat(net, g, sc.System.Flat, callbacks)
	} else {
		coreDep, err = core.BuildComposed(net, g, core.Spec{Intra: sc.System.Intra, Inter: sc.System.Inter},
			callbacks, coordOpts...)
	}
	if err != nil {
		return nil, fmt.Errorf("scenario %s: %v", sc.Name, err)
	}

	byCluster := make([][]core.App, clusters)
	for _, a := range coreDep.Apps {
		byCluster[a.Cluster] = append(byCluster[a.Cluster], a)
	}
	expected := 0
	for i, r := range runners {
		r.Bind(byCluster[i])
		r.Start()
		expected += r.ExpectedTotal()
	}

	driveErr := driveLP(sc, win, runners, expected)

	parts := make([][]workload.Record, clusters)
	for i, r := range runners {
		parts[i] = r.Records()
	}
	records := workload.MergeRecords(parts)
	mon := workload.ReplayMonitor(records, w.Alpha)
	if sc.Expect.Quiescent {
		mon.AssertQuiescent()
	}

	o := &runOutcome{
		sc:       sc,
		records:  records,
		events:   win.Processed(),
		elapsed:  win.Now(),
		counters: net.Counters(),
		mon:      mon,
		apps:     coreDep.Apps,
		crashed:  map[int]bool{},
		driveErr: driveErr,
	}
	var dump string
	if opts.TraceCapacity > 0 {
		dump = trace.Merge(tracers).Dump()
	}
	return &Result{Verdict: evaluate(o), Trace: dump}, nil
}

// driveLP is drive for the windowed scheduler. Recovery never reaches
// this path, so only the bounded-horizon and plain-to-completion modes
// exist. There is no liveness watchdog — its periodic tick is global
// state — so a stall surfaces through the event cap or the final Done
// check instead, with the same message shapes as the classic drive.
func driveLP(sc *Scenario, win *des.Windows, runners []*workload.Runner, expected int) string {
	limit := sc.Run.EventLimit
	if limit == 0 {
		limit = uint64(expected)*10_000 + 1_000_000
	}
	outstanding := func() int {
		n := 0
		for _, r := range runners {
			n += r.Outstanding()
		}
		return n
	}
	if sc.Run.Horizon > 0 {
		win.RunUntil(des.Time(sc.Run.Horizon))
		if err := win.RunCapped(limit); err != nil {
			return fmt.Sprintf("liveness: did not drain after horizon: %v", err)
		}
		return ""
	}
	if err := win.RunCapped(limit); err != nil {
		return fmt.Sprintf("liveness: did not drain: %v (outstanding %d)", err, outstanding())
	}
	for _, r := range runners {
		if !r.Done() {
			return fmt.Sprintf("liveness: %d requests unsatisfied", outstanding())
		}
	}
	return ""
}
