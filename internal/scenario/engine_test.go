package scenario

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

const corpusDir = "../../testdata/scenarios"

// TestCorpusGreen sweeps the committed corpus in parallel — every
// scenario's verdict must pass. This is the data-driven replacement for
// the hand-coded acceptance tests it ported.
func TestCorpusGreen(t *testing.T) {
	scs, err := LoadDir(corpusDir)
	if err != nil {
		t.Fatal(err)
	}
	if len(scs) < 12 {
		t.Fatalf("corpus shrank to %d scenarios; want at least 12", len(scs))
	}
	results, err := RunAll(scs, 0, Options{})
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range results {
		if !r.Verdict.Pass {
			t.Errorf("scenario %s failed:\n%s", r.Verdict.Scenario, r.Verdict.String())
		}
	}
}

// TestBrokenFixturesFail: the committed negative fixtures must produce
// failing verdicts that name the offending invariant — and only it.
func TestBrokenFixturesFail(t *testing.T) {
	wants := map[string]string{
		"broken-envelope-violated":       "envelope:grants",
		"broken-standby-never-activates": "standbys",
		"broken-minority-regenerates":    "envelope:regenerations",
		"broken-three-tier-no-inter":     "envelope:inter_msgs_per_cs",
	}
	scs, err := LoadDir(filepath.Join(corpusDir, "broken"))
	if err != nil {
		t.Fatal(err)
	}
	if len(scs) != len(wants) {
		t.Fatalf("broken corpus has %d fixtures, want %d", len(scs), len(wants))
	}
	for _, sc := range scs {
		res, err := Run(sc, Options{})
		if err != nil {
			t.Fatalf("%s: %v", sc.Name, err)
		}
		v := res.Verdict
		want, ok := wants[v.Scenario]
		if !ok {
			t.Fatalf("unexpected fixture %q", v.Scenario)
		}
		if v.Pass {
			t.Fatalf("%s passed; it is supposed to fail", v.Scenario)
		}
		failing := v.Failing()
		if len(failing) != 1 || failing[0].Name != want {
			t.Fatalf("%s: failing checks %v, want exactly [%s]", v.Scenario, checkNames(failing), want)
		}
		if failing[0].Detail == "" {
			t.Fatalf("%s: failing check has no detail", v.Scenario)
		}
	}
}

func checkNames(cs []Check) []string {
	names := make([]string, len(cs))
	for i, c := range cs {
		names[i] = c.Name
	}
	return names
}

// TestVerdictDeterminism: the same scenario and seed must yield
// byte-identical verdict JSON and a byte-identical event trace — the
// property that makes corpus verdicts diffable across CI runs.
func TestVerdictDeterminism(t *testing.T) {
	for _, name := range []string{"app-holder-crash.yaml", "lossy-composition-20.yaml", "restart-rejoin.yaml", "partition-heal.yaml", "three-tier.yaml"} {
		t.Run(name, func(t *testing.T) {
			sc, err := LoadFile(filepath.Join(corpusDir, name))
			if err != nil {
				t.Fatal(err)
			}
			opts := Options{TraceCapacity: 1 << 16}
			a, err := Run(sc, opts)
			if err != nil {
				t.Fatal(err)
			}
			b, err := Run(sc, opts)
			if err != nil {
				t.Fatal(err)
			}
			if !bytes.Equal(a.Verdict.JSON(), b.Verdict.JSON()) {
				t.Error("verdict JSON differs between identical runs")
			}
			if a.Trace != b.Trace {
				t.Error("event trace differs between identical runs")
			}
			if len(a.Trace) == 0 {
				t.Error("trace capacity set but no events captured")
			}
		})
	}
}

// TestParallelCorpusDeterminism: verdict bytes must not depend on worker
// count or scheduling — serial and parallel sweeps agree byte for byte.
func TestParallelCorpusDeterminism(t *testing.T) {
	if testing.Short() {
		t.Skip("full corpus sweep")
	}
	scs, err := LoadDir(corpusDir)
	if err != nil {
		t.Fatal(err)
	}
	serial, err := RunAll(scs, 1, Options{})
	if err != nil {
		t.Fatal(err)
	}
	parallel, err := RunAll(scs, 0, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if len(serial) != len(parallel) {
		t.Fatalf("verdict counts differ: %d vs %d", len(serial), len(parallel))
	}
	for i := range serial {
		if !bytes.Equal(serial[i].Verdict.JSON(), parallel[i].Verdict.JSON()) {
			t.Errorf("scenario %s: serial and parallel verdicts differ", serial[i].Verdict.Scenario)
		}
	}
}

func TestSeedChangesOutcomeBytes(t *testing.T) {
	sc, err := LoadFile(filepath.Join(corpusDir, "baseline-naimi-naimi.yaml"))
	if err != nil {
		t.Fatal(err)
	}
	a, err := Run(sc, Options{})
	if err != nil {
		t.Fatal(err)
	}
	sc.Seed++
	b, err := Run(sc, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if !a.Verdict.Pass || !b.Verdict.Pass {
		t.Fatal("baseline must pass under either seed")
	}
	if bytes.Equal(a.Verdict.JSON(), b.Verdict.JSON()) {
		t.Error("different seeds produced identical verdict bytes; jitter not seeded?")
	}
}

func TestLoadDirRejectsDuplicates(t *testing.T) {
	dir := t.TempDir()
	for _, f := range []string{"a.yaml", "b.yaml"} {
		if err := os.WriteFile(filepath.Join(dir, f), []byte(minimal), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := LoadDir(dir); err == nil || !strings.Contains(err.Error(), "already used by") {
		t.Fatalf("duplicate names not rejected: %v", err)
	}
}

func TestLoadDirEmpty(t *testing.T) {
	if _, err := LoadDir(t.TempDir()); err == nil || !strings.Contains(err.Error(), "no *.yaml scenarios") {
		t.Fatalf("empty dir not rejected: %v", err)
	}
}
