package scenario

import (
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"

	"gridmutex/internal/fleet"
)

// LoadFile loads one scenario file.
func LoadFile(path string) (*Scenario, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	sc, err := Load(data)
	if err != nil {
		return nil, fmt.Errorf("%s: %v", path, err)
	}
	return sc, nil
}

// LoadDir loads every *.yaml file directly under dir (not recursing —
// testdata/scenarios/broken/ holds intentionally failing fixtures that a
// sweep of the green corpus must not pick up), sorted by file name, and
// rejects duplicate scenario names across the corpus.
func LoadDir(dir string) ([]*Scenario, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var paths []string
	for _, e := range entries {
		if e.IsDir() || !strings.HasSuffix(e.Name(), ".yaml") {
			continue
		}
		paths = append(paths, filepath.Join(dir, e.Name()))
	}
	sort.Strings(paths)
	if len(paths) == 0 {
		return nil, fmt.Errorf("scenario: no *.yaml scenarios in %s", dir)
	}
	seen := make(map[string]string, len(paths))
	var out []*Scenario
	for _, p := range paths {
		sc, err := LoadFile(p)
		if err != nil {
			return nil, err
		}
		if prev, dup := seen[sc.Name]; dup {
			return nil, fmt.Errorf("%s: scenario name %q already used by %s", p, sc.Name, prev)
		}
		seen[sc.Name] = p
		out = append(out, sc)
	}
	return out, nil
}

// RunAll executes the scenarios, fanning out across workers goroutines —
// each run on its own private Simulator — and returns results in input
// order, never completion order, so a parallel sweep renders the same
// bytes as a serial one. workers <= 0 means GOMAXPROCS; 1 stays serial.
func RunAll(scs []*Scenario, workers int, opts Options) ([]*Result, error) {
	if workers == 1 {
		out := make([]*Result, len(scs))
		for i, sc := range scs {
			r, err := Run(sc, opts)
			if err != nil {
				return nil, err
			}
			out[i] = r
		}
		return out, nil
	}
	return fleet.Map(len(scs), workers, func(i int) (*Result, error) {
		return Run(scs[i], opts)
	})
}
