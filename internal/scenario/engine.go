package scenario

import (
	"fmt"
	"sort"
	"time"

	"gridmutex/internal/adaptive"
	"gridmutex/internal/algorithms"
	"gridmutex/internal/check"
	"gridmutex/internal/core"
	"gridmutex/internal/des"
	"gridmutex/internal/faults"
	"gridmutex/internal/mutex"
	"gridmutex/internal/recovery"
	"gridmutex/internal/reliable"
	"gridmutex/internal/simnet"
	"gridmutex/internal/stats"
	"gridmutex/internal/topology"
	"gridmutex/internal/trace"
	"gridmutex/internal/workload"
)

// Options tune a run beyond what the scenario file declares.
type Options struct {
	// TraceCapacity, when positive, attaches an event trace ring buffer
	// of that many events to the run's fabric; the dump lands in
	// Result.Trace. The determinism regression compares these dumps.
	TraceCapacity int
	// LPs, when at least 1, runs eligible scenarios on the conservative
	// parallel scheduler with that many worker goroutines (see lp.go).
	// The result is byte-identical for every LPs >= 1; scenarios the LP
	// path cannot shard fall back to the classic serial run. Zero keeps
	// everything on the classic path.
	LPs int
}

// Result is one executed scenario: the verdict plus the optional trace.
type Result struct {
	Verdict Verdict
	Trace   string
}

// runOutcome carries everything the checker library and the metric
// registry read after a run.
type runOutcome struct {
	sc       *Scenario
	records  []workload.Record
	events   uint64
	elapsed  time.Duration
	counters simnet.Counters
	mon      *check.Monitor
	recovery bool
	rel      *reliable.Network    // nil unless the fabric is wrapped
	dep      *recovery.Deployment // nil unless recovery
	apps     []core.App
	crashed  map[int]bool
	switches int64
	driveErr string

	obtainSummary *stats.Summary // lazily built by obtaining()
}

// Run compiles the scenario onto a private simulator, executes it
// deterministically and judges the outcome. A drive failure (stall, event
// cap, premature drain) becomes a failing liveness check in the verdict,
// not a Go error — broken fixtures must yield verdicts. The returned
// error covers only infrastructure problems an expectation cannot
// describe (an unvalidated scenario, a build failure).
func Run(sc *Scenario, opts Options) (*Result, error) {
	g, err := buildGrid(sc)
	if err != nil {
		return nil, err
	}
	if lpEligible(sc, opts, g) {
		return runLP(sc, opts, g)
	}
	sim := des.New()
	var tr *trace.Tracer
	if opts.TraceCapacity > 0 {
		tr = trace.New(sim.Now, opts.TraceCapacity)
	}
	net := simnet.New(sim, g, simnet.Options{
		Jitter: sc.Network.Jitter, Seed: sc.Seed, Loss: sc.Network.Loss, Trace: tr,
		// The detector_share metric reads ByKind on recovery runs.
		KindCounts: sc.System.Recovery,
	})
	var fabric mutex.Fabric = net
	var rel *reliable.Network
	if sc.Network.Reliable {
		rto := sc.Network.RTO
		if rto <= 0 {
			rto = 3 * maxRTT(g)
		}
		rel = reliable.Wrap(net, sim, reliable.Options{RTO: rto, MaxRetries: sc.Network.MaxRetries})
		fabric = rel
	}
	mon := check.NewMonitor(sim)
	w := sc.Workload
	runner, err := workload.NewRunner(sim, workload.Params{
		Alpha: w.Alpha, Rho: w.Rho, Phases: w.Phases, Dist: w.Dist,
		CSPerProcess: w.CSPerProcess, Seed: sc.Seed,
		HotCluster: w.HotCluster, HotSkew: w.HotSkew,
	}, mon)
	if err != nil {
		return nil, fmt.Errorf("scenario %s: %v", sc.Name, err)
	}

	crashed := make(map[int]bool)
	crash := func(node int) {
		crashed[node] = true
		net.Crash(node)
		runner.Crash(mutex.ID(node))
		mon.Crashed(mutex.ID(node))
	}
	// Restart restores connectivity and opens the rejoin-latency sample;
	// the workload process stays dead until the recovery layer re-admits
	// it (OnRejoin below revives it). The node leaves the crashed set:
	// from here on its completion and frozen state count as evidence
	// again.
	restart := func(node int) {
		delete(crashed, node)
		net.Restart(node)
		mon.Restarted(mutex.ID(node))
	}
	appCB := wireHolderKills(sc, g, runner, crash)
	if sched := buildSchedule(sc, g); len(sched) > 0 {
		sched.Apply(sim, faults.Actions{
			Crash: crash, Restart: restart,
			Partition: net.Partition, Heal: net.Heal,
		})
	}

	var coordOpts []func(*core.Coordinator)
	if k := sc.System.LocalBias; k > 0 {
		coordOpts = append(coordOpts, func(c *core.Coordinator) { c.SetLocalBias(k) })
	}
	var (
		coreDep *core.Deployment
		recDep  *recovery.Deployment
		apps    []core.App
	)
	switch {
	case len(sc.System.Levels) > 0:
		coreDep, err = core.BuildMultiLevel(fabric, g, sc.System.Levels, sc.System.Groups, appCB, coordOpts...)
	case sc.System.Flat != "":
		coreDep, err = core.BuildFlat(fabric, g, sc.System.Flat, appCB)
	case sc.System.Recovery:
		intra, inter := recovery.StaggeredTimeouts(sc.System.Heartbeat, maxRTT(g)/2)
		recDep, err = recovery.Build(fabric, g, core.Spec{Intra: sc.System.Intra, Inter: sc.System.Inter},
			appCB, sim, recovery.BuildOptions{
				Intra:    intra,
				Inter:    inter,
				NodeDown: net.Down,
				OnEpoch: func(group string, self mutex.ID, e recovery.Epoch, members []mutex.ID, holder mutex.ID) {
					mon.BeginEpoch(group)
				},
				OnRejoin: func(group string, self mutex.ID, e recovery.Epoch) {
					mon.Rejoined(self)
					runner.Revive(self)
				},
			})
	case sc.System.Adaptive:
		var intraF, adaptF mutex.Factory
		intraF, err = algorithms.Factory(sc.System.Intra)
		if err == nil {
			adaptF, err = adaptive.NewFactory(adaptive.Config{
				Initial: sc.System.Inter,
				NewPolicy: func() adaptive.Policy {
					return adaptive.NewGapPolicy(sim.Now, w.Alpha)
				},
			})
		}
		if err == nil {
			coreDep, err = core.BuildMultiLevelWith(fabric, g, []mutex.Factory{intraF, adaptF}, nil, appCB, coordOpts...)
		}
	default:
		coreDep, err = core.BuildComposed(fabric, g, core.Spec{Intra: sc.System.Intra, Inter: sc.System.Inter},
			appCB, coordOpts...)
	}
	if err != nil {
		return nil, fmt.Errorf("scenario %s: %v", sc.Name, err)
	}
	if recDep != nil {
		apps = recDep.Apps
	} else {
		apps = coreDep.Apps
	}
	runner.Bind(apps)
	runner.Start()

	driveErr := drive(sc, sim, mon, runner, recDep)
	if sc.Expect.Quiescent {
		mon.AssertQuiescent()
	}

	o := &runOutcome{
		sc:       sc,
		records:  runner.Records(),
		events:   sim.Processed(),
		elapsed:  sim.Now(),
		counters: net.Counters(),
		mon:      mon,
		recovery: sc.System.Recovery,
		rel:      rel,
		dep:      recDep,
		apps:     apps,
		crashed:  crashed,
		driveErr: driveErr,
	}
	if sc.System.Adaptive && len(coreDep.Coordinators) > 0 {
		proc := coreDep.Procs[coreDep.Coordinators[0].ID()]
		if inst, ok := proc.Instance(1).(*adaptive.Instance); ok {
			o.switches = inst.Generation()
		}
	}
	return &Result{Verdict: evaluate(o), Trace: tr.Dump()}, nil
}

// drive advances the simulation per the scenario's run mode and returns a
// non-empty description on liveness failure.
//
//   - Bounded horizon: run for a fixed stretch of virtual time (starved
//     requests are expected), then stop detectors and drain.
//   - Recovery to completion: heartbeats keep the event queue non-empty
//     forever, so step until the surviving workload completes, then stop
//     the detectors and drain.
//   - Plain to completion: a liveness watchdog plus a capped run.
func drive(sc *Scenario, sim *des.Simulator, mon *check.Monitor, runner *workload.Runner, dep *recovery.Deployment) string {
	limit := sc.Run.EventLimit
	if limit == 0 {
		limit = uint64(runner.ExpectedTotal())*10_000 + 1_000_000
	}
	if sc.Run.Horizon > 0 {
		sim.RunFor(sc.Run.Horizon)
		if dep != nil {
			dep.Stop()
		}
		if err := sim.RunCapped(limit); err != nil {
			return fmt.Sprintf("liveness: did not drain after horizon: %v", err)
		}
		return ""
	}
	if dep != nil {
		for !runner.Done() {
			if sim.Processed() > limit {
				dep.Stop()
				return fmt.Sprintf("liveness: %d requests unsatisfied after %d events",
					runner.Outstanding(), sim.Processed())
			}
			if !sim.Step() {
				dep.Stop()
				return fmt.Sprintf("liveness: queue drained with %d requests unsatisfied", runner.Outstanding())
			}
		}
		dep.Stop()
		if err := sim.RunCapped(limit); err != nil {
			return fmt.Sprintf("liveness: did not drain: %v", err)
		}
		return ""
	}
	// The watchdog reports a precise stall instant long before the event
	// cap would (same interval rule as the harness).
	mon.WatchLiveness(runner.Waiting, runner.Done, 2000*sc.Workload.Alpha)
	if err := sim.RunCapped(limit); err != nil {
		return fmt.Sprintf("liveness: did not drain: %v (outstanding %d)", err, runner.Outstanding())
	}
	if !runner.Done() {
		return fmt.Sprintf("liveness: %d requests unsatisfied", runner.Outstanding())
	}
	return ""
}

// buildGrid realizes the scenario topology, adding the reserved
// infrastructure nodes per cluster so the application process count is
// what the file declares regardless of the system under test.
func buildGrid(sc *Scenario) (*topology.Grid, error) {
	per := sc.NodesPerCluster()
	t := &sc.Topology
	switch t.Kind {
	case TopoGrid5000:
		return topology.Grid5000(per), nil
	case TopoMatrix:
		return t.Matrix.Grid(per)
	case TopoTree:
		return topology.NewTree(sc.treeSpec())
	default:
		return topology.Uniform(t.Clusters, per, t.LocalRTT, t.RemoteRTT), nil
	}
}

// maxRTT returns the largest cluster-pair round trip of the grid — the
// scale for retransmission and failure-detector timeouts.
func maxRTT(g *topology.Grid) time.Duration {
	var max time.Duration
	for a := 0; a < g.NumClusters(); a++ {
		for b := 0; b < g.NumClusters(); b++ {
			if rtt := g.RTT(a, b); rtt > max {
				max = rtt
			}
		}
	}
	if max <= 0 {
		max = time.Millisecond
	}
	return max
}

// appNodes lists the application node indices (cluster by cluster,
// skipping reserved infrastructure nodes).
func appNodes(sc *Scenario, g *topology.Grid) []int {
	reserved := sc.ReservedNodes()
	var out []int
	for c := 0; c < g.NumClusters(); c++ {
		out = append(out, g.NodesIn(c)[reserved:]...)
	}
	return out
}

// buildSchedule collects the scenario's scheduled faults (fixed crashes
// and restarts plus seeded crash windows) into one faults.Schedule.
func buildSchedule(sc *Scenario, g *topology.Grid) faults.Schedule {
	var sched faults.Schedule
	for i, f := range sc.Faults {
		switch f.Kind {
		case FaultCrash:
			sched = append(sched, faults.Event{At: des.Time(f.At), Node: f.Node, Kind: faults.Crash})
		case FaultRestart:
			sched = append(sched, faults.Event{At: des.Time(f.At), Node: f.Node, Kind: faults.Restart})
		case FaultCrashWindow:
			sched = append(sched, faults.Windows(faults.WindowsConfig{
				Seed:    faultSeed(sc.Seed, i),
				Nodes:   victimSet(sc, g, f.Victims),
				Crashes: f.Crashes,
				Horizon: f.Horizon,
				MinDown: f.MinDown,
				MaxDown: f.MaxDown,
			})...)
		case FaultPartition:
			var cut []int
			for _, c := range f.Clusters {
				cut = append(cut, g.NodesIn(c)...)
			}
			sort.Ints(cut)
			sched = append(sched, faults.Event{At: des.Time(f.At), Node: -1, Kind: faults.PartitionStart, Nodes: cut})
			if f.HealAt > 0 {
				sched = append(sched, faults.Event{At: des.Time(f.HealAt), Node: -1, Kind: faults.PartitionEnd})
			}
		}
	}
	return sched
}

// victimSet resolves a crash_window candidate set name.
func victimSet(sc *Scenario, g *topology.Grid, name string) []int {
	switch name {
	case VictimsCoordinators:
		var out []int
		for c := 0; c < g.NumClusters(); c++ {
			out = append(out, g.NodesIn(c)[0])
		}
		return out
	case VictimsStandbys:
		var out []int
		for c := 0; c < g.NumClusters(); c++ {
			out = append(out, g.NodesIn(c)[1])
		}
		return out
	default:
		return appNodes(sc, g)
	}
}

// holderKill is one armed crash-on-CS-entry trigger.
type holderKill struct {
	victim, entry int
	coordinator   bool
	fired         bool
}

// wireHolderKills wraps the runner's callbacks so each holder_kill fault
// fires the instant its victim enters its k-th critical section.
// Unspecified victims and ordinals are drawn from the scenario seed,
// mixed per fault index so multiple seeded kills draw independently.
func wireHolderKills(sc *Scenario, g *topology.Grid, runner *workload.Runner, crash func(int)) core.CallbackFunc {
	candidates := appNodes(sc, g)
	byVictim := make(map[int][]*holderKill)
	for i, f := range sc.Faults {
		if f.Kind != FaultHolderKill {
			continue
		}
		t := faults.OnCSEntry(faultSeed(sc.Seed, i), candidates, sc.Workload.CSPerProcess)
		if f.Victim >= 0 {
			t.Victim = f.Victim
		}
		if f.Entry > 0 {
			t.Entry = f.Entry
		}
		byVictim[t.Victim] = append(byVictim[t.Victim],
			&holderKill{victim: t.Victim, entry: t.Entry, coordinator: f.Target == "coordinator"})
	}
	if len(byVictim) == 0 {
		return runner.Callbacks
	}
	return func(id mutex.ID) mutex.Callbacks {
		inner := runner.Callbacks(id)
		kills := byVictim[int(id)]
		if len(kills) == 0 {
			return inner
		}
		entries := 0
		return mutex.Callbacks{OnAcquire: func() {
			inner.OnAcquire()
			entries++
			for _, k := range kills {
				if k.fired || entries != k.entry {
					continue
				}
				k.fired = true
				if k.coordinator {
					crash(g.NodesIn(g.ClusterOf(k.victim))[0])
				} else {
					crash(k.victim)
				}
			}
		}}
	}
}

// splitmix64 is the Steele et al. finalizer (same mix as the harness's
// seed derivation).
func splitmix64(z uint64) uint64 {
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// faultSeed derives an independent stream for the i-th fault entry.
func faultSeed(seed int64, i int) int64 {
	z := splitmix64(uint64(seed) + 0x9e3779b97f4a7c15)
	return int64(splitmix64(z ^ uint64(i+1)))
}
