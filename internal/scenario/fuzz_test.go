package scenario

import (
	"bytes"
	"testing"
)

// FuzzLoadScenario hardens the whole loader stack — parser, decoder,
// validation — against adversarial documents. Properties: Load never
// panics, and anything it accepts re-validates and re-loads to the same
// model (the strict subset has no ambiguous spellings).
func FuzzLoadScenario(f *testing.F) {
	// A valid document exercising most of the schema.
	f.Add(`name: fuzz-seed
seed: 7
topology:
  clusters: 2
  apps_per_cluster: 2
workload:
  rho: 4
  cs_per_process: 3
system:
  intra: naimi
  inter: martin
expect:
  envelopes:
    - metric: grants
      min: 1
`)
	f.Add(minimal)
	// Structural malformations the parser must reject, not crash on.
	f.Add("name: a\nname: b\n")                // duplicate key
	f.Add("name: t\n\tbad: tab\n")             // tab indentation
	f.Add("topology:\n   kind: uniform\n")     // odd indent
	f.Add("faults:\n  -\n")                    // bare dash
	f.Add("- just\n- a\n- list\n")             // non-mapping root
	f.Add("name: t\ntopology:\n")              // key with no block
	f.Add("a:\n  b:\n    c:\n      d: deep\n") // deep nesting
	// Semantic malformations the decoder/validator must reject.
	f.Add("name: t\nworkload:\n  rho: NaN\n")      // NaN rate
	f.Add("name: t\nworkload:\n  rho: -Inf\n")     // infinite rate
	f.Add("name: t\nworkload:\n  alpha: -5ms\n")   // negative duration
	f.Add("name: t\nrun:\n  horizon: 99999999h\n") // overflowing duration
	f.Add("name: t\nexpect:\n  envelopes:\n    - metric: no_such_invariant\n      max: 1\n")
	f.Add("name: t\nsystem:\n  intra: bogus-algo\n  inter: naimi\n")
	f.Add("name: t\nseed: 99999999999999999999\n")                                                   // integer overflow
	f.Add("name: t\nworkload:\n  alpha: 1h\n  rho: 1e18\nsystem:\n  intra: naimi\n  inter: naimi\n") // beta overflow
	f.Add("name: t\nworkload:\n  rho: 1e300\nsystem:\n  intra: naimi\n  inter: naimi\n")
	f.Add("name: t\nworkload:\n  alpha: 9h\n  phases:\n    - rho: 1e17\n      until: 1s\nsystem:\n  intra: naimi\n  inter: naimi\n  adaptive: true\n")
	f.Add("name: \x00\x01\x02\n") // control bytes

	f.Fuzz(func(t *testing.T, doc string) {
		sc, err := Load([]byte(doc))
		if err != nil {
			return // rejection is fine; panicking is not
		}
		// Accepted documents are normalized: re-validation is a no-op.
		if err := sc.Validate(); err != nil {
			t.Fatalf("accepted scenario fails re-validation: %v\ndoc:\n%s", err, doc)
		}
		// Loading the same bytes again yields the same model (the loader
		// has no hidden state).
		again, err := Load([]byte(doc))
		if err != nil {
			t.Fatalf("second load of accepted doc rejected: %v", err)
		}
		if sc.Name != again.Name || sc.Seed != again.Seed ||
			len(sc.Faults) != len(again.Faults) ||
			len(sc.Expect.Envelopes) != len(again.Expect.Envelopes) {
			t.Fatalf("loads of identical bytes disagree:\n%+v\n%+v", sc, again)
		}
		// Every accepted matrix topology round-trips through its own
		// formatter, mirroring the topology fuzz contract.
		if sc.Topology.Matrix != nil {
			formatted := sc.Topology.Matrix.Format()
			if !bytes.Contains([]byte(formatted), []byte("from")) {
				t.Fatalf("matrix formats without header: %q", formatted)
			}
		}
	})
}
