package scenario

import (
	"fmt"
	"sort"
	"strconv"
	"strings"

	"gridmutex/internal/mutex"
)

// evaluate is the checker library: it judges a run outcome against the
// scenario's expectation block, producing checks in a fixed order so the
// verdict is byte-deterministic.
func evaluate(o *runOutcome) Verdict {
	sc := o.sc
	v := Verdict{Scenario: sc.Name, Doc: sc.Doc, Seed: sc.Seed, Pass: true}
	add := func(name string, pass bool, detail string) {
		if !pass {
			v.Pass = false
		} else {
			detail = ""
		}
		v.Checks = append(v.Checks, Check{Name: name, Pass: pass, Detail: detail})
	}

	safety, liveness, quiescence := bucketViolations(o.mon.Violations())
	if o.driveErr != "" {
		liveness = append([]string{o.driveErr}, liveness...)
	}
	add("safety", len(safety) == 0, summarize(safety))
	add("liveness", len(liveness) == 0, summarize(liveness))
	if sc.Expect.Quiescent {
		add("quiescence", len(quiescence) == 0, summarize(quiescence))
	}

	checkCompletion(o, add)
	e := &sc.Expect
	if e.CrashExits >= 0 {
		got := int(o.mon.CrashExits())
		add("crash_exits", got == e.CrashExits,
			fmt.Sprintf("%d critical sections ended by a crash, want %d", got, e.CrashExits))
	}
	if e.MinEpochs >= 0 || e.MaxEpochs >= 0 {
		got := int(o.mon.Epochs())
		pass := (e.MinEpochs < 0 || got >= e.MinEpochs) && (e.MaxEpochs < 0 || got <= e.MaxEpochs)
		add("epochs", pass, fmt.Sprintf("%d regeneration epochs, want %s", got,
			rangeWant(e.MinEpochs, e.MaxEpochs)))
	}
	checkStandbys(o, add)
	checkFrozen(o, add)
	if e.MinSwitches >= 0 {
		add("switches", o.switches >= int64(e.MinSwitches),
			fmt.Sprintf("%d committed adaptive switches, want at least %d", o.switches, e.MinSwitches))
	}
	if e.MinRetransmits >= 0 || e.MaxGivenUp >= 0 {
		st := o.rel.Stats()
		var bad []string
		if e.MinRetransmits >= 0 && st.Retransmits < int64(e.MinRetransmits) {
			bad = append(bad, fmt.Sprintf("%d retransmits, want at least %d", st.Retransmits, e.MinRetransmits))
		}
		if e.MaxGivenUp >= 0 && st.GivenUp > int64(e.MaxGivenUp) {
			bad = append(bad, fmt.Sprintf("%d abandoned packets, want at most %d", st.GivenUp, e.MaxGivenUp))
		}
		add("reliable", len(bad) == 0, strings.Join(bad, "; "))
	}
	for _, env := range e.Envelopes {
		val, ok := metricValue(o, env.Metric)
		name := "envelope:" + env.Metric
		if !ok {
			add(name, false, "metric not produced by this run")
			continue
		}
		pass := (!env.HasMin || val >= env.Min) && (!env.HasMax || val <= env.Max)
		add(name, pass, fmt.Sprintf("measured %s, want %s",
			fmtF(val), envelopeWant(env)))
	}

	v.Metrics = measure(o)
	return v
}

// bucketViolations splits the monitor's violations by their message
// prefix. Anything unrecognized counts as a safety problem — the
// conservative bucket.
func bucketViolations(all []string) (safety, liveness, quiescence []string) {
	for _, msg := range all {
		switch {
		case strings.HasPrefix(msg, "liveness:"):
			liveness = append(liveness, msg)
		case strings.HasPrefix(msg, "quiescence:"):
			quiescence = append(quiescence, msg)
		default: // "safety:", "protocol:" and anything new
			safety = append(safety, msg)
		}
	}
	return safety, liveness, quiescence
}

// summarize renders a violation list as "first (and N more)".
func summarize(msgs []string) string {
	switch len(msgs) {
	case 0:
		return ""
	case 1:
		return msgs[0]
	default:
		return fmt.Sprintf("%s (and %d more)", msgs[0], len(msgs)-1)
	}
}

// checkCompletion evaluates the completion mode and the per-cluster
// completion list against the grant records.
func checkCompletion(o *runOutcome, add func(string, bool, string)) {
	e := &o.sc.Expect
	per := make(map[mutex.ID]int, len(o.apps))
	for _, r := range o.records {
		per[r.ID]++
	}
	want := o.sc.Workload.CSPerProcess
	// Walk apps in slice order (ascending ID) so failure details are
	// deterministic.
	incomplete := func(include func(cluster int, node int) bool) []string {
		var out []string
		for _, a := range o.apps {
			if !include(a.Cluster, int(a.ID)) {
				continue
			}
			if got := per[a.ID]; got < want {
				out = append(out, fmt.Sprintf("process %d (cluster %d) completed %d/%d", a.ID, a.Cluster, got, want))
			}
		}
		return out
	}
	switch e.Complete {
	case CompleteAll:
		missing := incomplete(func(int, int) bool { return true })
		add("completion", len(missing) == 0, summarize(missing))
	case CompleteSurvivors:
		missing := incomplete(func(_ int, node int) bool { return !o.crashed[node] })
		add("completion", len(missing) == 0, summarize(missing))
	}
	if len(e.ClusterComplete) > 0 {
		set := make(map[int]bool, len(e.ClusterComplete))
		for _, c := range e.ClusterComplete {
			set[c] = true
		}
		missing := incomplete(func(cluster int, node int) bool { return set[cluster] && !o.crashed[node] })
		add("completion:clusters", len(missing) == 0, summarize(missing))
	}
}

// checkStandbys verifies the per-cluster takeover expectations.
func checkStandbys(o *runOutcome, add func(string, bool, string)) {
	e := &o.sc.Expect
	if len(e.StandbyActivated) == 0 && len(e.StandbyQuiet) == 0 {
		return
	}
	var bad []string
	for _, c := range e.StandbyActivated {
		if !o.dep.Standbys[c].Activated() {
			bad = append(bad, fmt.Sprintf("standby of cluster %d did not take over", c))
		}
	}
	for _, c := range e.StandbyQuiet {
		if o.dep.Standbys[c].Activated() {
			bad = append(bad, fmt.Sprintf("standby of cluster %d took over unexpectedly", c))
		}
	}
	add("standbys", len(bad) == 0, strings.Join(bad, "; "))
}

// checkFrozen verifies which recovery groups froze: every group named in
// frozen_groups must have a live member reporting frozen, and no other
// group may. The check materializes on every recovery run — an unexpected
// freeze is a finding even when the scenario names none.
func checkFrozen(o *runOutcome, add func(string, bool, string)) {
	if !o.sc.System.Recovery {
		return
	}
	want := make(map[string]bool, len(o.sc.Expect.FrozenGroups))
	for _, g := range o.sc.Expect.FrozenGroups {
		want[g] = true
	}
	// Members is a slice in deployment order, so collecting frozen group
	// names here (deduplicated, then sorted) never iterates a map.
	frozen := make(map[string]bool)
	var frozenNames []string
	for _, m := range o.dep.Members {
		if o.crashed[int(m.ID())] {
			continue // a dead member's state is not evidence
		}
		if m.Stats().Frozen && !frozen[m.Group()] {
			frozen[m.Group()] = true
			frozenNames = append(frozenNames, m.Group())
		}
	}
	sort.Strings(frozenNames)
	var bad []string
	for _, g := range o.sc.Expect.FrozenGroups {
		if !frozen[g] {
			bad = append(bad, fmt.Sprintf("group %q did not freeze", g))
		}
	}
	for _, g := range frozenNames {
		if !want[g] {
			bad = append(bad, fmt.Sprintf("group %q froze unexpectedly", g))
		}
	}
	add("frozen", len(bad) == 0, strings.Join(bad, "; "))
}

// rangeWant renders a [min, max] expectation where either side may be
// unchecked (-1).
func rangeWant(min, max int) string {
	switch {
	case min >= 0 && max >= 0:
		return fmt.Sprintf("[%d, %d]", min, max)
	case min >= 0:
		return fmt.Sprintf("at least %d", min)
	default:
		return fmt.Sprintf("at most %d", max)
	}
}

// envelopeWant renders an envelope's bound.
func envelopeWant(env Envelope) string {
	switch {
	case env.HasMin && env.HasMax:
		return fmt.Sprintf("[%s, %s]", fmtF(env.Min), fmtF(env.Max))
	case env.HasMin:
		return "at least " + fmtF(env.Min)
	default:
		return "at most " + fmtF(env.Max)
	}
}

// fmtF formats a float deterministically and compactly.
func fmtF(v float64) string { return strconv.FormatFloat(v, 'g', -1, 64) }
