package scenario

import (
	"time"

	"gridmutex/internal/stats"
)

// Metric is one named measurement of a run, in registry order.
type Metric struct {
	Name  string  `json:"name"`
	Value float64 `json:"value"`
}

// metricDef is one entry of the registry: an extractor returning the
// value and whether the run produced it (a recovery metric is undefined
// on a plain run, a reliable metric on an unwrapped fabric).
type metricDef struct {
	name    string
	extract func(o *runOutcome) (float64, bool)
}

// metricRegistry is the checker library's vocabulary: the names an
// envelope may bound. Order is fixed — it is the order metrics appear in
// verdicts, part of the byte-determinism contract.
var metricRegistry = []metricDef{
	{"grants", func(o *runOutcome) (float64, bool) {
		return float64(len(o.records)), true
	}},
	{"events", func(o *runOutcome) (float64, bool) {
		return float64(o.events), true
	}},
	{"virtual_ms", func(o *runOutcome) (float64, bool) {
		return float64(o.elapsed) / float64(time.Millisecond), true
	}},
	{"mean_obtaining_ms", func(o *runOutcome) (float64, bool) {
		return o.obtaining().Mean, len(o.records) > 0
	}},
	{"std_obtaining_ms", func(o *runOutcome) (float64, bool) {
		return o.obtaining().Std, len(o.records) > 0
	}},
	{"p50_obtaining_ms", func(o *runOutcome) (float64, bool) {
		return o.obtaining().P50, len(o.records) > 0
	}},
	{"p95_obtaining_ms", func(o *runOutcome) (float64, bool) {
		return o.obtaining().P95, len(o.records) > 0
	}},
	{"p99_obtaining_ms", func(o *runOutcome) (float64, bool) {
		return o.obtaining().P99, len(o.records) > 0
	}},
	{"max_obtaining_ms", func(o *runOutcome) (float64, bool) {
		return o.obtaining().Max, len(o.records) > 0
	}},
	{"inter_msgs_per_cs", func(o *runOutcome) (float64, bool) {
		return perCS(float64(o.counters.InterMessages), o), true
	}},
	{"intra_msgs_per_cs", func(o *runOutcome) (float64, bool) {
		return perCS(float64(o.counters.IntraMessages), o), true
	}},
	{"total_msgs_per_cs", func(o *runOutcome) (float64, bool) {
		return perCS(float64(o.counters.Messages), o), true
	}},
	{"inter_bytes_per_cs", func(o *runOutcome) (float64, bool) {
		return perCS(float64(o.counters.InterBytes), o), true
	}},
	{"crashes", func(o *runOutcome) (float64, bool) {
		return float64(o.mon.Crashes()), true
	}},
	{"crash_exits", func(o *runOutcome) (float64, bool) {
		return float64(o.mon.CrashExits()), true
	}},
	{"epochs", func(o *runOutcome) (float64, bool) {
		return float64(o.mon.Epochs()), o.recovery
	}},
	{"mean_recovery_ms", func(o *runOutcome) (float64, bool) {
		s, ok := o.recoveryLatency()
		return s.Mean, ok
	}},
	{"max_recovery_ms", func(o *runOutcome) (float64, bool) {
		s, ok := o.recoveryLatency()
		return s.Max, ok
	}},
	{"detector_share", func(o *runOutcome) (float64, bool) {
		if !o.recovery || o.counters.Messages == 0 {
			return 0, false
		}
		return float64(o.detectorMsgs()) / float64(o.counters.Messages), true
	}},
	{"retransmits", func(o *runOutcome) (float64, bool) {
		if o.rel == nil {
			return 0, false
		}
		return float64(o.rel.Stats().Retransmits), true
	}},
	{"given_up", func(o *runOutcome) (float64, bool) {
		if o.rel == nil {
			return 0, false
		}
		return float64(o.rel.Stats().GivenUp), true
	}},
	{"switches", func(o *runOutcome) (float64, bool) {
		return float64(o.switches), o.sc.System.Adaptive
	}},
	{"dropped", func(o *runOutcome) (float64, bool) {
		return float64(o.counters.Dropped), true
	}},
	{"dropped_dead", func(o *runOutcome) (float64, bool) {
		return float64(o.counters.DroppedDead), true
	}},
	// Registry order is append-only: the entries below postdate the ones
	// above and must stay after them.
	{"dropped_partition", func(o *runOutcome) (float64, bool) {
		return float64(o.counters.DroppedPartition), true
	}},
	{"restarts", func(o *runOutcome) (float64, bool) {
		return float64(o.mon.Restarts()), true
	}},
	{"rejoins", func(o *runOutcome) (float64, bool) {
		return float64(o.mon.Rejoins()), o.recovery
	}},
	{"mean_rejoin_ms", func(o *runOutcome) (float64, bool) {
		s, ok := o.rejoinLatency()
		return s.Mean, ok
	}},
	{"max_rejoin_ms", func(o *runOutcome) (float64, bool) {
		s, ok := o.rejoinLatency()
		return s.Max, ok
	}},
	{"minority_freezes", func(o *runOutcome) (float64, bool) {
		if o.dep == nil {
			return 0, false
		}
		var n int64
		for _, m := range o.dep.Members {
			n += m.Stats().MinorityFreezes
		}
		return float64(n), true
	}},
	{"regenerations", func(o *runOutcome) (float64, bool) {
		if o.dep == nil {
			return 0, false
		}
		var n int64
		for _, m := range o.dep.Members {
			n += m.Stats().Regenerations
		}
		return float64(n), true
	}},
}

// perCS normalizes a counter by the number of critical sections entered.
func perCS(v float64, o *runOutcome) float64 {
	if len(o.records) == 0 {
		return 0
	}
	return v / float64(len(o.records))
}

// KnownMetric reports whether name is in the registry — validation
// rejects envelopes over unknown names at load time.
func KnownMetric(name string) bool {
	for _, d := range metricRegistry {
		if d.name == name {
			return true
		}
	}
	return false
}

// MetricNames returns the registry vocabulary in registry order.
func MetricNames() []string {
	out := make([]string, len(metricRegistry))
	for i, d := range metricRegistry {
		out[i] = d.name
	}
	return out
}

// measure extracts every defined metric in registry order.
func measure(o *runOutcome) []Metric {
	var out []Metric
	for _, d := range metricRegistry {
		if v, ok := d.extract(o); ok {
			out = append(out, Metric{Name: d.name, Value: v})
		}
	}
	return out
}

// metricValue resolves one named metric against an outcome.
func metricValue(o *runOutcome, name string) (float64, bool) {
	for _, d := range metricRegistry {
		if d.name == name {
			return d.extract(o)
		}
	}
	return 0, false
}

// obtaining lazily summarizes the obtaining-time distribution in
// milliseconds with exact percentiles (Retain sorts once; sample counts
// per scenario are small by design).
func (o *runOutcome) obtaining() stats.Summary {
	if o.obtainSummary == nil {
		acc := stats.Accumulator{Retain: true}
		for _, r := range o.records {
			acc.Push(float64(r.Obtaining()) / float64(time.Millisecond))
		}
		s := acc.Summarize()
		o.obtainSummary = &s
	}
	return *o.obtainSummary
}

// recoveryLatency summarizes crash-to-regeneration delays in ms.
func (o *runOutcome) recoveryLatency() (stats.Summary, bool) {
	lats := o.mon.RecoveryLatencies()
	if len(lats) == 0 {
		return stats.Summary{}, false
	}
	acc := stats.Accumulator{}
	for _, d := range lats {
		acc.Push(float64(d) / float64(time.Millisecond))
	}
	return acc.Summarize(), true
}

// rejoinLatency summarizes restart-to-readmission delays in ms.
func (o *runOutcome) rejoinLatency() (stats.Summary, bool) {
	lats := o.mon.RejoinLatencies()
	if len(lats) == 0 {
		return stats.Summary{}, false
	}
	acc := stats.Accumulator{}
	for _, d := range lats {
		acc.Push(float64(d) / float64(time.Millisecond))
	}
	return acc.Summarize(), true
}

// detectorKinds are the message kinds the recovery layer adds (mirrors
// harness.detectorKinds).
var detectorKinds = []string{"rec.hb", "rec.probe", "rec.ack", "rec.epoch", "rec.join"}

// detectorMsgs totals failure-detector traffic (KindCounts is enabled on
// recovery runs).
func (o *runOutcome) detectorMsgs() int64 {
	var n int64
	for _, k := range detectorKinds {
		n += o.counters.ByKind[k]
	}
	return n
}
