package scenario

import (
	"bytes"
	"path/filepath"
	"testing"
)

// TestLPCorpusIdentity is the tentpole contract at the scenario layer:
// sweeping the whole committed corpus with one LP worker and with many
// must produce byte-identical verdict JSON and event traces per
// scenario. Eligible scenarios exercise the window-barrier scheduler;
// ineligible ones fall back to the classic path on both sides and are
// trivially identical. Run with -race to also certify the parallel
// window execution is properly synchronized.
func TestLPCorpusIdentity(t *testing.T) {
	scs, err := LoadDir(corpusDir)
	if err != nil {
		t.Fatal(err)
	}
	eligible := 0
	for _, sc := range scs {
		g, err := buildGrid(sc)
		if err != nil {
			t.Fatal(err)
		}
		if lpEligible(sc, Options{LPs: 1}, g) {
			eligible++
		}
	}
	if eligible < 4 {
		t.Fatalf("only %d corpus scenarios are LP-eligible; the identity sweep is near-vacuous", eligible)
	}
	for _, sc := range scs {
		sc := sc
		t.Run(sc.Name, func(t *testing.T) {
			t.Parallel()
			serial, err := Run(sc, Options{TraceCapacity: 1 << 16, LPs: 1})
			if err != nil {
				t.Fatal(err)
			}
			for _, lps := range []int{2, 4} {
				par, err := Run(sc, Options{TraceCapacity: 1 << 16, LPs: lps})
				if err != nil {
					t.Fatalf("lps=%d: %v", lps, err)
				}
				if !bytes.Equal(serial.Verdict.JSON(), par.Verdict.JSON()) {
					t.Errorf("lps=1 vs lps=%d: verdict JSON differs:\n%s\n%s",
						lps, serial.Verdict.JSON(), par.Verdict.JSON())
				}
				if serial.Trace != par.Trace {
					t.Errorf("lps=1 vs lps=%d: event trace differs", lps)
				}
			}
		})
	}
}

// TestLPFaultScenariosFallBack pins the eligibility rule for the fault
// model: any scenario with a fault schedule — in particular the restart
// and partition fixtures, whose recovery detectors and network cut are
// global mutable state — must fall back to the classic serial path at
// every LP setting.
func TestLPFaultScenariosFallBack(t *testing.T) {
	for _, name := range []string{
		"restart-rejoin.yaml", "partition-heal.yaml", "partition-minority-freeze.yaml",
		"staggered-multi-crash.yaml",
	} {
		sc, err := LoadFile(filepath.Join(corpusDir, name))
		if err != nil {
			t.Fatal(err)
		}
		g, err := buildGrid(sc)
		if err != nil {
			t.Fatal(err)
		}
		for _, lps := range []int{1, 4} {
			if lpEligible(sc, Options{LPs: lps}, g) {
				t.Errorf("%s: LP-eligible at lps=%d; fault-bearing scenarios must stay serial", name, lps)
			}
		}
	}
}

// TestLPEligibleScenariosPass: every LP-eligible corpus scenario still
// meets its declared expectations when run on the window scheduler —
// the replay monitor, merged records and counters feed the checkers the
// same way the live path does.
func TestLPEligibleScenariosPass(t *testing.T) {
	scs, err := LoadDir(corpusDir)
	if err != nil {
		t.Fatal(err)
	}
	for _, sc := range scs {
		g, err := buildGrid(sc)
		if err != nil {
			t.Fatal(err)
		}
		if !lpEligible(sc, Options{LPs: 4}, g) {
			continue
		}
		res, err := Run(sc, Options{LPs: 4})
		if err != nil {
			t.Fatalf("%s: %v", sc.Name, err)
		}
		if !res.Verdict.Pass {
			t.Errorf("scenario %s failed under the LP scheduler:\n%s", sc.Name, res.Verdict.String())
		}
	}
}

// TestLPRepeatDeterminism: the LP path is deterministic per seed and
// seed-sensitive, like the classic path.
func TestLPRepeatDeterminism(t *testing.T) {
	sc, err := LoadFile(filepath.Join(corpusDir, "baseline-naimi-naimi.yaml"))
	if err != nil {
		t.Fatal(err)
	}
	opts := Options{TraceCapacity: 1 << 16, LPs: 4}
	a, err := Run(sc, opts)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Run(sc, opts)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a.Verdict.JSON(), b.Verdict.JSON()) || a.Trace != b.Trace {
		t.Error("identical LP runs disagree")
	}
	if len(a.Trace) == 0 {
		t.Error("trace capacity set but no events captured")
	}
	sc.Seed++
	c, err := Run(sc, opts)
	if err != nil {
		t.Fatal(err)
	}
	if a.Trace == c.Trace {
		t.Error("different seeds produced identical LP traces")
	}
}
