// Package mutex defines the abstractions shared by every token-based mutual
// exclusion algorithm in this repository.
//
// An algorithm instance is a reactive state machine: it never blocks and
// never spawns goroutines. It is driven by three entry points — Request,
// Release and Deliver — and produces effects only through its Env (sending
// messages, scheduling local continuations) and its callbacks (OnAcquire,
// OnPending). This makes one implementation runnable unchanged on the
// discrete-event simulator, on in-process channels, and over UDP.
//
// Entry points and callbacks of one instance must be invoked serially: on
// the simulator this is automatic, on live transports a per-process mailbox
// provides it. Callbacks are always dispatched through Env.Local rather
// than invoked synchronously, so an instance is never re-entered from
// within one of its own handlers.
package mutex

import "fmt"

// ID identifies a participant of one algorithm instance. IDs are unique per
// instance (the composition layer maps them onto processes).
type ID int32

// None is the sentinel for "no node" (an unset next/father pointer).
const None ID = -1

// Message is a unit of algorithm communication. Implementations are plain
// data structs; they must be self-contained values (no pointers shared with
// sender state) because transports may retain or re-encode them.
type Message interface {
	// Kind returns a short stable name used for tracing and counters,
	// e.g. "ring.request".
	Kind() string
	// Size returns the modeled wire size in bytes, used by the message
	// accounting the paper reports (Suzuki-Kasami's token is O(N)).
	Size() int
}

// Env is what an instance sees of the outside world.
type Env interface {
	// Send transmits m to participant to of the same instance. Delivery
	// is reliable and FIFO per (sender, receiver) pair.
	Send(to ID, m Message)
	// Local schedules f to run after the current handler returns, on the
	// same serial context as the instance's handlers. All callback
	// invocations go through Local.
	Local(f func())
}

// State is the classical mutual exclusion state of a participant.
type State uint8

const (
	// NoReq: not interested in the critical section (may hold the token
	// idle).
	NoReq State = iota
	// Req: waiting for the token.
	Req
	// InCS: executing the critical section.
	InCS
)

// String returns the conventional name of the state.
func (s State) String() string {
	switch s {
	case NoReq:
		return "NO_REQ"
	case Req:
		return "REQ"
	case InCS:
		return "CS"
	default:
		return fmt.Sprintf("State(%d)", uint8(s))
	}
}

// Callbacks are the upcalls from an instance to its owner. Both are invoked
// via Env.Local. Either may be nil.
type Callbacks struct {
	// OnAcquire fires when a Request is granted: the node now holds the
	// token and is in the critical section.
	OnAcquire func()
	// OnPending fires when this node — as current or imminent token
	// holder — learns that at least one other participant is waiting for
	// the token and the grant is deferred until this node releases. It
	// is the one extension over the classical API that hierarchical
	// composition needs: a coordinator holding a token "in CS" must be
	// told that somebody wants it. Spurious invocations are allowed;
	// owners should treat it as a nudge and consult HasPending.
	OnPending func()
}

// Config carries everything needed to construct an algorithm instance.
type Config struct {
	// Self is this participant's ID.
	Self ID
	// Members lists all participants of the instance, including Self.
	// Every member must use the same order (algorithms derive ring order
	// and array indices from it).
	Members []ID
	// Holder is the participant that holds the token initially (idle).
	Holder ID
	// Env provides communication and local scheduling.
	Env Env
	// Callbacks receive acquire/pending upcalls.
	Callbacks Callbacks
}

// Validate reports whether the configuration is usable.
func (c Config) Validate() error {
	if c.Env == nil {
		return fmt.Errorf("mutex: nil Env")
	}
	if len(c.Members) == 0 {
		return fmt.Errorf("mutex: no members")
	}
	selfOK, holderOK := false, false
	seen := make(map[ID]bool, len(c.Members))
	for _, m := range c.Members {
		if seen[m] {
			return fmt.Errorf("mutex: duplicate member %d", m)
		}
		seen[m] = true
		if m == c.Self {
			selfOK = true
		}
		if m == c.Holder {
			holderOK = true
		}
	}
	if !selfOK {
		return fmt.Errorf("mutex: self %d not in members", c.Self)
	}
	if !holderOK {
		return fmt.Errorf("mutex: holder %d not in members", c.Holder)
	}
	return nil
}

// Index returns the position of id in Members, or -1.
func (c Config) Index(id ID) int {
	for i, m := range c.Members {
		if m == id {
			return i
		}
	}
	return -1
}

// Instance is a participant-side endpoint of one mutual exclusion
// algorithm.
//
// Protocol, from the owner's point of view:
//
//	Request() ... OnAcquire fires ... critical section ... Release()
//
// Request must not be called while a request is outstanding or the node is
// in the critical section; Release must only be called from the critical
// section. Instances panic on protocol violations — they indicate a bug in
// the owner, not a runtime condition to tolerate.
type Instance interface {
	// Request asks for the critical section.
	Request()
	// Release leaves the critical section.
	Release()
	// Deliver hands the instance a message from participant from.
	Deliver(from ID, m Message)
	// HasPending reports whether this node knows of other participants'
	// requests that its own token possession is blocking.
	HasPending() bool
	// HoldsToken reports whether the token is currently at this node.
	HoldsToken() bool
	// State returns the classical mutual exclusion state of this node.
	State() State
}

// Factory builds an algorithm instance from a configuration.
type Factory func(Config) (Instance, error)

// Handler receives messages addressed to a process.
type Handler interface {
	Deliver(from ID, m Message)
}

// Fabric is a message network that deployment builders can wire processes
// onto: the discrete-event simulator's network, the in-process goroutine
// network, and the UDP network all implement it.
type Fabric interface {
	// Endpoint returns the Env bound to logical process id.
	Endpoint(id ID) Env
	// RegisterAt installs the handler for logical process id hosted on
	// physical topology node.
	RegisterAt(id ID, node int, h Handler)
}
