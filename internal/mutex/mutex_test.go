package mutex

import (
	"strings"
	"testing"
)

type nopEnv struct{}

func (nopEnv) Send(ID, Message) {}
func (nopEnv) Local(func())     {}

func validConfig() Config {
	return Config{Self: 1, Members: []ID{0, 1, 2}, Holder: 0, Env: nopEnv{}}
}

func TestConfigValidateOK(t *testing.T) {
	if err := validConfig().Validate(); err != nil {
		t.Fatalf("valid config rejected: %v", err)
	}
}

func TestConfigValidateErrors(t *testing.T) {
	cases := []struct {
		name   string
		mutate func(*Config)
	}{
		{"nil env", func(c *Config) { c.Env = nil }},
		{"no members", func(c *Config) { c.Members = nil }},
		{"self not member", func(c *Config) { c.Self = 9 }},
		{"holder not member", func(c *Config) { c.Holder = 9 }},
		{"duplicate member", func(c *Config) { c.Members = []ID{0, 1, 1} }},
	}
	for _, tc := range cases {
		c := validConfig()
		tc.mutate(&c)
		if err := c.Validate(); err == nil {
			t.Errorf("%s: Validate accepted bad config", tc.name)
		}
	}
}

func TestConfigIndex(t *testing.T) {
	c := Config{Members: []ID{5, 7, 9}}
	for i, id := range c.Members {
		if got := c.Index(id); got != i {
			t.Errorf("Index(%d) = %d, want %d", id, got, i)
		}
	}
	if got := c.Index(42); got != -1 {
		t.Errorf("Index(42) = %d, want -1", got)
	}
}

func TestStateString(t *testing.T) {
	for s, want := range map[State]string{NoReq: "NO_REQ", Req: "REQ", InCS: "CS", State(9): "State(9)"} {
		if got := s.String(); got != want {
			t.Errorf("State(%d).String() = %q, want %q", s, got, want)
		}
	}
}

// TestConfigValidateEdges pins the boundary semantics of Validate beyond
// the plain error cases: which degenerate-but-legal configurations are
// accepted, and that every rejection names the offending field.
func TestConfigValidateEdges(t *testing.T) {
	cases := []struct {
		name    string
		cfg     Config
		wantErr string // substring of the error, "" for accepted
	}{
		{
			name: "single member that is self and holder",
			cfg:  Config{Self: 3, Members: []ID{3}, Holder: 3, Env: nopEnv{}},
		},
		{
			name:    "empty non-nil member list",
			cfg:     Config{Self: 0, Members: []ID{}, Holder: 0, Env: nopEnv{}},
			wantErr: "no members",
		},
		{
			name:    "duplicate of self still rejected",
			cfg:     Config{Self: 1, Members: []ID{0, 1, 1}, Holder: 0, Env: nopEnv{}},
			wantErr: "duplicate member 1",
		},
		{
			name:    "duplicate of holder still rejected",
			cfg:     Config{Self: 1, Members: []ID{0, 0, 1}, Holder: 0, Env: nopEnv{}},
			wantErr: "duplicate member 0",
		},
		{
			name:    "holder None sentinel is not a member",
			cfg:     Config{Self: 0, Members: []ID{0, 1}, Holder: None, Env: nopEnv{}},
			wantErr: "holder -1 not in members",
		},
		{
			name:    "self None sentinel is not a member",
			cfg:     Config{Self: None, Members: []ID{0, 1}, Holder: 0, Env: nopEnv{}},
			wantErr: "self -1 not in members",
		},
		{
			name: "negative IDs are legal when consistent",
			cfg:  Config{Self: -7, Members: []ID{-7, -3}, Holder: -3, Env: nopEnv{}},
		},
		{
			name:    "nil env reported before member problems",
			cfg:     Config{Self: 0, Members: nil, Holder: 0, Env: nil},
			wantErr: "nil Env",
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			err := tc.cfg.Validate()
			if tc.wantErr == "" {
				if err != nil {
					t.Fatalf("Validate rejected legal config: %v", err)
				}
				return
			}
			if err == nil {
				t.Fatalf("Validate accepted bad config, want error containing %q", tc.wantErr)
			}
			if !strings.Contains(err.Error(), tc.wantErr) {
				t.Fatalf("Validate error = %q, want substring %q", err, tc.wantErr)
			}
		})
	}
}

// TestConfigIndexEdges pins Index on degenerate receivers: Index must be
// callable on configurations Validate would reject (algorithms index
// before validation in some constructors) and must return the first
// occurrence when the member list is malformed.
func TestConfigIndexEdges(t *testing.T) {
	var zero Config
	if got := zero.Index(0); got != -1 {
		t.Errorf("zero-value Index(0) = %d, want -1", got)
	}
	empty := Config{Members: []ID{}}
	if got := empty.Index(0); got != -1 {
		t.Errorf("empty Index(0) = %d, want -1", got)
	}
	dup := Config{Members: []ID{4, 2, 4}}
	if got := dup.Index(4); got != 0 {
		t.Errorf("duplicate-member Index(4) = %d, want first occurrence 0", got)
	}
	if got := dup.Index(None); got != -1 {
		t.Errorf("Index(None) = %d, want -1", got)
	}
	sentinel := Config{Members: []ID{None, 1}}
	if got := sentinel.Index(None); got != 0 {
		t.Errorf("Index(None) with None member = %d, want 0", got)
	}
}

// selfSendEnv records sends so tests can assert an instance never sends
// to itself — the Env contract leaves self-delivery undefined, so the
// single-member configuration must short-circuit locally.
type selfSendEnv struct{ sent []ID }

func (e *selfSendEnv) Send(to ID, _ Message) { e.sent = append(e.sent, to) }
func (e *selfSendEnv) Local(f func())        { f() }

// TestSingleMemberNoSelfSend drives a request/release cycle on a
// single-member configuration of the zero-dependency reference shape (a
// trivial inline instance is enough — the property under test is that the
// config machinery supports the degenerate instance without any Send).
func TestSingleMemberNoSelfSend(t *testing.T) {
	env := &selfSendEnv{}
	cfg := Config{Self: 0, Members: []ID{0}, Holder: 0, Env: env}
	if err := cfg.Validate(); err != nil {
		t.Fatal(err)
	}
	acquired := 0
	cfg.Callbacks = Callbacks{OnAcquire: func() { acquired++ }}
	// The degenerate holder-of-one: request grants immediately via Local.
	if cfg.Self == cfg.Holder && len(cfg.Members) == 1 {
		cfg.Env.Local(cfg.Callbacks.OnAcquire)
	}
	if acquired != 1 {
		t.Fatalf("acquired %d times, want 1", acquired)
	}
	if len(env.sent) != 0 {
		t.Fatalf("single-member cycle sent %d messages (to %v), want none", len(env.sent), env.sent)
	}
}
