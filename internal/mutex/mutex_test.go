package mutex

import "testing"

type nopEnv struct{}

func (nopEnv) Send(ID, Message) {}
func (nopEnv) Local(func())     {}

func validConfig() Config {
	return Config{Self: 1, Members: []ID{0, 1, 2}, Holder: 0, Env: nopEnv{}}
}

func TestConfigValidateOK(t *testing.T) {
	if err := validConfig().Validate(); err != nil {
		t.Fatalf("valid config rejected: %v", err)
	}
}

func TestConfigValidateErrors(t *testing.T) {
	cases := []struct {
		name   string
		mutate func(*Config)
	}{
		{"nil env", func(c *Config) { c.Env = nil }},
		{"no members", func(c *Config) { c.Members = nil }},
		{"self not member", func(c *Config) { c.Self = 9 }},
		{"holder not member", func(c *Config) { c.Holder = 9 }},
		{"duplicate member", func(c *Config) { c.Members = []ID{0, 1, 1} }},
	}
	for _, tc := range cases {
		c := validConfig()
		tc.mutate(&c)
		if err := c.Validate(); err == nil {
			t.Errorf("%s: Validate accepted bad config", tc.name)
		}
	}
}

func TestConfigIndex(t *testing.T) {
	c := Config{Members: []ID{5, 7, 9}}
	for i, id := range c.Members {
		if got := c.Index(id); got != i {
			t.Errorf("Index(%d) = %d, want %d", id, got, i)
		}
	}
	if got := c.Index(42); got != -1 {
		t.Errorf("Index(42) = %d, want -1", got)
	}
}

func TestStateString(t *testing.T) {
	for s, want := range map[State]string{NoReq: "NO_REQ", Req: "REQ", InCS: "CS", State(9): "State(9)"} {
		if got := s.String(); got != want {
			t.Errorf("State(%d).String() = %q, want %q", s, got, want)
		}
	}
}
