package workload

import (
	"math"
	"testing"
	"time"

	"gridmutex/internal/check"
	"gridmutex/internal/core"
	"gridmutex/internal/des"
	"gridmutex/internal/simnet"
	"gridmutex/internal/topology"
)

func TestParamsValidate(t *testing.T) {
	good := Params{Alpha: 10 * time.Millisecond, Rho: 5, CSPerProcess: 10}
	if err := good.Validate(); err != nil {
		t.Fatalf("valid params rejected: %v", err)
	}
	bad := []Params{
		{Alpha: 0, Rho: 5, CSPerProcess: 10},
		{Alpha: time.Millisecond, Rho: -1, CSPerProcess: 10},
		{Alpha: time.Millisecond, Rho: 5, CSPerProcess: 0},
	}
	for i, p := range bad {
		if err := p.Validate(); err == nil {
			t.Errorf("bad params %d accepted", i)
		}
	}
}

func TestBeta(t *testing.T) {
	p := Params{Alpha: 10 * time.Millisecond, Rho: 180}
	if got, want := p.Beta(), 1800*time.Millisecond; got != want {
		t.Fatalf("Beta = %v, want %v", got, want)
	}
}

func TestRecordObtaining(t *testing.T) {
	r := Record{RequestedAt: 100 * time.Millisecond, AcquiredAt: 250 * time.Millisecond}
	if got := r.Obtaining(); got != 150*time.Millisecond {
		t.Fatalf("Obtaining = %v", got)
	}
}

func TestDistributionString(t *testing.T) {
	for d, want := range map[Distribution]string{
		Exponential: "exponential", Constant: "constant", Uniform: "uniform",
		Distribution(9): "Distribution(9)",
	} {
		if d.String() != want {
			t.Errorf("%d.String() = %q", d, d.String())
		}
	}
}

// runFlat runs a full workload over a flat central deployment and returns
// the runner.
func runFlat(t *testing.T, params Params, dist Distribution) *Runner {
	t.Helper()
	params.Dist = dist
	sim := des.New()
	grid := topology.Single(4, time.Millisecond)
	net := simnet.New(sim, grid, simnet.Options{})
	mon := check.NewMonitor(sim)
	runner, err := NewRunner(sim, params, mon)
	if err != nil {
		t.Fatal(err)
	}
	d, err := core.BuildFlat(net, grid, "central", runner.Callbacks)
	if err != nil {
		t.Fatal(err)
	}
	runner.Bind(d.Apps)
	runner.Start()
	if err := sim.RunCapped(1_000_000); err != nil {
		t.Fatal(err)
	}
	mon.AssertQuiescent()
	if !mon.Ok() {
		t.Fatalf("violations: %v", mon.Violations())
	}
	return runner
}

func TestFullRunAllDistributions(t *testing.T) {
	params := Params{Alpha: 2 * time.Millisecond, Rho: 10, CSPerProcess: 12, Seed: 3}
	for _, dist := range []Distribution{Exponential, Constant, Uniform} {
		t.Run(dist.String(), func(t *testing.T) {
			r := runFlat(t, params, dist)
			if !r.Done() {
				t.Fatalf("%d outstanding", r.Outstanding())
			}
			recs := r.Records()
			if len(recs) != r.ExpectedTotal() {
				t.Fatalf("%d records, want %d", len(recs), r.ExpectedTotal())
			}
			for i, rec := range recs {
				if rec.AcquiredAt < rec.RequestedAt {
					t.Fatalf("record %d acquired before requested: %+v", i, rec)
				}
				if i > 0 && rec.AcquiredAt < recs[i-1].AcquiredAt {
					t.Fatalf("records not in grant order at %d", i)
				}
			}
		})
	}
}

func TestZeroRhoMeansBackToBack(t *testing.T) {
	params := Params{Alpha: 2 * time.Millisecond, Rho: 0, CSPerProcess: 5, Seed: 1}
	r := runFlat(t, params, Exponential)
	if !r.Done() {
		t.Fatal("zero-rho run incomplete")
	}
}

// TestExponentialIdleMean: the generated idle times must average β.
func TestExponentialIdleMean(t *testing.T) {
	sim := des.New()
	params := Params{Alpha: 10 * time.Millisecond, Rho: 20, CSPerProcess: 1, Seed: 42}
	r, err := NewRunner(sim, params, nil)
	if err != nil {
		t.Fatal(err)
	}
	const n = 20000
	var sum time.Duration
	for i := 0; i < n; i++ {
		sum += r.idle(0)
	}
	mean := float64(sum) / n
	want := float64(params.Beta())
	if math.Abs(mean-want)/want > 0.05 {
		t.Fatalf("exponential idle mean %.3gms, want ~%.3gms",
			mean/1e6, want/1e6)
	}
}

func TestUniformIdleBounds(t *testing.T) {
	sim := des.New()
	params := Params{Alpha: 10 * time.Millisecond, Rho: 10, Dist: Uniform, CSPerProcess: 1, Seed: 7}
	r, err := NewRunner(sim, params, nil)
	if err != nil {
		t.Fatal(err)
	}
	beta := params.Beta()
	for i := 0; i < 5000; i++ {
		d := r.idle(0)
		if d < 0 || d >= 2*beta {
			t.Fatalf("uniform idle %v outside [0, 2β)", d)
		}
	}
}

func TestConstantIdleExact(t *testing.T) {
	sim := des.New()
	params := Params{Alpha: 10 * time.Millisecond, Rho: 3, Dist: Constant, CSPerProcess: 1, Seed: 7}
	r, err := NewRunner(sim, params, nil)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 100; i++ {
		if d := r.idle(0); d != params.Beta() {
			t.Fatalf("constant idle %v, want %v", d, params.Beta())
		}
	}
}

func TestRunnerProtocolPanics(t *testing.T) {
	mk := func() *Runner {
		r, err := NewRunner(des.New(), Params{Alpha: time.Millisecond, Rho: 1, CSPerProcess: 1}, nil)
		if err != nil {
			t.Fatal(err)
		}
		return r
	}
	t.Run("start before bind", func(t *testing.T) {
		r := mk()
		defer func() {
			if recover() == nil {
				t.Error("no panic")
			}
		}()
		r.Start()
	})
	t.Run("double bind", func(t *testing.T) {
		r := mk()
		r.Bind(nil)
		defer func() {
			if recover() == nil {
				t.Error("no panic")
			}
		}()
		r.Bind(nil)
	})
	t.Run("double start", func(t *testing.T) {
		r := mk()
		r.Bind(nil)
		r.Start()
		defer func() {
			if recover() == nil {
				t.Error("no panic")
			}
		}()
		r.Start()
	})
	t.Run("nil instance", func(t *testing.T) {
		r := mk()
		defer func() {
			if recover() == nil {
				t.Error("no panic")
			}
		}()
		r.Bind([]core.App{{ID: 1}})
	})
}

func TestNewRunnerRejectsBadParams(t *testing.T) {
	if _, err := NewRunner(des.New(), Params{}, nil); err == nil {
		t.Fatal("bad params accepted")
	}
}

func TestPhasedRhoSchedule(t *testing.T) {
	sim := des.New()
	params := Params{
		Alpha: 10 * time.Millisecond,
		Phases: []Phase{
			{Rho: 2, Until: time.Second},
			{Rho: 100, Until: 2 * time.Second},
			{Rho: 10},
		},
		CSPerProcess: 1, Seed: 1,
	}
	r, err := NewRunner(sim, params, nil)
	if err != nil {
		t.Fatal(err)
	}
	if got := r.currentRho(); got != 2 {
		t.Errorf("rho at t=0: %v, want 2", got)
	}
	sim.RunUntil(1500 * time.Millisecond)
	if got := r.currentRho(); got != 100 {
		t.Errorf("rho at t=1.5s: %v, want 100", got)
	}
	sim.RunUntil(5 * time.Second)
	if got := r.currentRho(); got != 10 {
		t.Errorf("rho at t=5s: %v, want 10 (final phase)", got)
	}
}

func TestPhasedRunCompletes(t *testing.T) {
	params := Params{
		Alpha: 2 * time.Millisecond,
		Phases: []Phase{
			{Rho: 1, Until: 50 * time.Millisecond},
			{Rho: 50},
		},
		CSPerProcess: 10, Seed: 2,
	}
	r := runFlat(t, params, Exponential)
	if !r.Done() {
		t.Fatalf("phased run incomplete: %d outstanding", r.Outstanding())
	}
}

func TestPhaseValidation(t *testing.T) {
	bad := Params{
		Alpha: time.Millisecond, CSPerProcess: 1,
		Phases: []Phase{{Rho: -1, Until: time.Second}, {Rho: 1}},
	}
	if err := bad.Validate(); err == nil {
		t.Fatal("negative phase rho accepted")
	}
	unordered := Params{
		Alpha: time.Millisecond, CSPerProcess: 1,
		Phases: []Phase{{Rho: 1, Until: 2 * time.Second}, {Rho: 1, Until: time.Second}, {Rho: 1}},
	}
	if err := unordered.Validate(); err == nil {
		t.Fatal("unordered phase boundaries accepted")
	}
}

func TestOutstandingAndWaiting(t *testing.T) {
	sim := des.New()
	grid := topology.Single(3, time.Millisecond)
	net := simnet.New(sim, grid, simnet.Options{})
	runner, err := NewRunner(sim, Params{
		Alpha: 2 * time.Millisecond, Rho: 2, CSPerProcess: 4, Seed: 8,
	}, nil)
	if err != nil {
		t.Fatal(err)
	}
	d, err := core.BuildFlat(net, grid, "central", runner.Callbacks)
	if err != nil {
		t.Fatal(err)
	}
	runner.Bind(d.Apps)
	if got := runner.Outstanding(); got != 12 {
		t.Fatalf("Outstanding before start = %d, want 12", got)
	}
	if runner.Waiting() != 0 {
		t.Fatal("Waiting before start should be 0")
	}
	if runner.Done() {
		t.Fatal("Done before start")
	}
	runner.Start()
	sim.RunFor(20 * time.Millisecond)
	// Mid-run: releases have happened (20ms covers several 2ms critical
	// sections at rho = 2), so the remaining-CS count must have shrunk.
	if got := runner.Outstanding(); got >= 12 || got == 0 {
		t.Fatalf("Outstanding mid-run = %d, want in (0, 12)", got)
	}
	if w := runner.Waiting(); w < 0 || w > 3 {
		t.Fatalf("Waiting = %d out of range", w)
	}
	sim.Run()
	if !runner.Done() || runner.Outstanding() != 0 || runner.Waiting() != 0 {
		t.Fatalf("final state: done=%v outstanding=%d waiting=%d",
			runner.Done(), runner.Outstanding(), runner.Waiting())
	}
}

// TestIdleClampsOverflow: a β (or a draw above it) past 2^63 ns must
// saturate, not wrap into a negative duration scheduled in the past.
func TestIdleClampsOverflow(t *testing.T) {
	sim := des.New()
	for _, dist := range []Distribution{Constant, Uniform, Exponential} {
		r, err := NewRunner(sim, Params{
			Alpha: time.Hour, Rho: 1e18, Dist: dist, CSPerProcess: 1, Seed: 9,
		}, nil)
		if err != nil {
			t.Fatal(err)
		}
		for i := 0; i < 50; i++ {
			if d := r.idle(0); d < 0 {
				t.Fatalf("%v: idle() = %v, wrapped negative", dist, d)
			}
		}
	}
	if b := (Params{Alpha: time.Hour, Rho: 1e18}).Beta(); b != time.Duration(math.MaxInt64) {
		t.Errorf("Beta() = %v, want saturation", b)
	}
}

// TestMergeRecords: per-runner streams interleave by AcquiredAt, ties
// keeping input order.
func TestMergeRecords(t *testing.T) {
	ms := func(n int) des.Time { return des.Time(n) * time.Millisecond }
	a := []Record{{ID: 0, AcquiredAt: ms(1)}, {ID: 0, AcquiredAt: ms(5)}, {ID: 1, AcquiredAt: ms(5)}}
	b := []Record{{ID: 2, AcquiredAt: ms(2)}, {ID: 3, AcquiredAt: ms(5)}}
	got := MergeRecords([][]Record{a, b, nil})
	wantIDs := []int{0, 2, 0, 1, 3} // 5ms tie: both of part a before part b
	if len(got) != len(wantIDs) {
		t.Fatalf("merged %d records, want %d", len(got), len(wantIDs))
	}
	for i, id := range wantIDs {
		if int(got[i].ID) != id {
			t.Errorf("merged[%d].ID = %d, want %d", i, got[i].ID, id)
		}
	}
	for i := 1; i < len(got); i++ {
		if got[i].AcquiredAt < got[i-1].AcquiredAt {
			t.Fatalf("merged records out of order at %d", i)
		}
	}
	if out := MergeRecords(nil); len(out) != 0 {
		t.Errorf("MergeRecords(nil) = %v", out)
	}
}

// TestReplayMonitor: serialized records replay clean; overlapping
// records are flagged as the safety violation they are.
func TestReplayMonitor(t *testing.T) {
	alpha := 10 * time.Millisecond
	ms := func(n int) des.Time { return des.Time(n) * time.Millisecond }
	good := []Record{
		{ID: 0, AcquiredAt: ms(0)},
		{ID: 1, AcquiredAt: ms(10)}, // back-to-back: enter at the exit instant
		{ID: 2, AcquiredAt: ms(25)},
	}
	mon := ReplayMonitor(good, alpha)
	if !mon.Ok() {
		t.Fatalf("clean records flagged: %v", mon.Violations())
	}
	if mon.Entries() != 3 || mon.Exits() != 3 {
		t.Fatalf("entries/exits = %d/%d, want 3/3", mon.Entries(), mon.Exits())
	}
	mon.AssertQuiescent()
	if !mon.Ok() {
		t.Fatalf("quiescence check failed: %v", mon.Violations())
	}

	overlap := []Record{
		{ID: 0, AcquiredAt: ms(0)},
		{ID: 1, AcquiredAt: ms(5)}, // enters while 0 still holds
	}
	if mon := ReplayMonitor(overlap, alpha); mon.Ok() {
		t.Fatal("overlapping critical sections not flagged")
	}
}
