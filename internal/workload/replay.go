package workload

import (
	"sort"
	"time"

	"gridmutex/internal/check"
	"gridmutex/internal/des"
)

// MergeRecords combines per-runner record slices — each already in grant
// order, as Records returns them — into one slice ordered by
// (AcquiredAt, input index). The window-barrier harness runs one
// workload runner per logical process and merges here, so the combined
// record stream is a pure function of the inputs, independent of how
// many workers executed the windows.
func MergeRecords(parts [][]Record) []Record {
	total := 0
	for _, p := range parts {
		total += len(p)
	}
	out := make([]Record, 0, total)
	heads := make([][]Record, len(parts))
	copy(heads, parts)
	for {
		best := -1
		for i, h := range heads {
			if len(h) == 0 {
				continue
			}
			if best < 0 || h[0].AcquiredAt < heads[best][0].AcquiredAt {
				best = i
			}
		}
		if best < 0 {
			return out
		}
		out = append(out, heads[best][0])
		heads[best] = heads[best][1:]
	}
}

// replayClock is the check.Clock of an offline replay: it reads whatever
// instant the replay loop last set.
type replayClock struct{ now des.Time }

func (c *replayClock) Now() des.Time { return c.now }

// ReplayMonitor re-derives the safety verdict of a fault-free run from
// its grant records: every record is an Enter at AcquiredAt and an Exit
// at AcquiredAt+alpha (the workload holds the critical section for
// exactly alpha, and without faults every section runs to completion).
// Events replay in (instant, Exit-before-Enter, record order) order —
// the order the live monitor would have observed them — into a
// clock-backed check.Monitor, which is returned for the caller to
// interrogate.
//
// The window-barrier harness needs this because a live monitor is
// shared mutable state: per-LP runners record locally and the merged
// records are checked here, after the parallel phase is over.
func ReplayMonitor(records []Record, alpha time.Duration) *check.Monitor {
	type event struct {
		at    des.Time
		enter bool
		rec   int // index into records, for stable ordering
	}
	events := make([]event, 0, 2*len(records))
	for i, r := range records {
		events = append(events, event{r.AcquiredAt, true, i})
		events = append(events, event{r.AcquiredAt + des.Time(alpha), false, i})
	}
	sort.SliceStable(events, func(i, j int) bool {
		a, b := events[i], events[j]
		if a.at != b.at {
			return a.at < b.at
		}
		if a.enter != b.enter {
			return !a.enter // an exit at t precedes an enter at t
		}
		return a.rec < b.rec
	})
	clock := &replayClock{}
	mon := check.NewMonitorWithClock(clock)
	for _, e := range events {
		clock.now = e.at
		if e.enter {
			mon.Enter(records[e.rec].ID)
		} else {
			mon.Exit(records[e.rec].ID)
		}
	}
	return mon
}
