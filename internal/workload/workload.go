// Package workload implements the paper's application model (section 4.1):
// every application process executes a fixed number of critical sections of
// duration α, separated by idle periods of mean β, with ρ = β/α expressing
// the degree of parallelism (ρ ≤ N: low parallelism / high contention,
// N < ρ ≤ 3N: intermediate, ρ ≥ 3N: high parallelism / rare contention).
package workload

import (
	"fmt"
	"math"
	"math/rand"
	"time"

	"gridmutex/internal/check"
	"gridmutex/internal/core"
	"gridmutex/internal/des"
	"gridmutex/internal/mutex"
	"gridmutex/internal/rng"
)

// Distribution selects the shape of the idle-time distribution.
type Distribution uint8

const (
	// Exponential idle times with mean β (a Poisson request process, the
	// usual model for the paper's workload).
	Exponential Distribution = iota
	// Constant idle times of exactly β.
	Constant
	// Uniform idle times over [0, 2β] (mean β).
	Uniform
)

// String names the distribution.
func (d Distribution) String() string {
	switch d {
	case Exponential:
		return "exponential"
	case Constant:
		return "constant"
	case Uniform:
		return "uniform"
	default:
		return fmt.Sprintf("Distribution(%d)", uint8(d))
	}
}

// Phase is one segment of a phased workload: Rho applies until the virtual
// instant Until.
type Phase struct {
	// Rho is β/α during this phase.
	Rho float64
	// Until is the virtual time at which the next phase begins. The
	// last phase's Until is ignored (it runs to completion).
	Until time.Duration
}

// Params describes one run's application behaviour.
type Params struct {
	// Alpha is the critical section duration (10 ms in the paper).
	Alpha time.Duration
	// Rho is β/α; β = Rho*Alpha is the mean idle time between a release
	// and the next request.
	Rho float64
	// Phases, when non-empty, makes the degree of parallelism vary over
	// virtual time (used by the adaptive-composition experiments); Rho
	// is then ignored.
	Phases []Phase
	// Dist shapes the idle time distribution.
	Dist Distribution
	// CSPerProcess is how many critical sections each process executes
	// (100 in the paper).
	CSPerProcess int
	// HotCluster and HotSkew model locality skew: processes in
	// HotCluster use an idle time of beta/HotSkew, requesting HotSkew
	// times more often than the rest. HotSkew <= 1 disables the skew.
	HotCluster int
	HotSkew    float64
	// Seed drives the workload's randomness.
	Seed int64
}

// Validate reports whether the parameters are usable.
func (p Params) Validate() error {
	if p.Alpha <= 0 {
		return fmt.Errorf("workload: alpha %v must be positive", p.Alpha)
	}
	if p.Rho < 0 {
		return fmt.Errorf("workload: rho %v must be non-negative", p.Rho)
	}
	if p.HotSkew < 0 {
		return fmt.Errorf("workload: hot skew %v must be non-negative", p.HotSkew)
	}
	for i, ph := range p.Phases {
		if ph.Rho < 0 {
			return fmt.Errorf("workload: phase %d rho %v must be non-negative", i, ph.Rho)
		}
		if i > 0 && ph.Until <= p.Phases[i-1].Until && i != len(p.Phases)-1 {
			return fmt.Errorf("workload: phase %d boundary %v not after previous", i, ph.Until)
		}
	}
	if p.CSPerProcess <= 0 {
		return fmt.Errorf("workload: CSPerProcess %d must be positive", p.CSPerProcess)
	}
	return nil
}

// Beta returns the mean idle time β = ρ·α, saturating at the maximum
// representable duration.
func (p Params) Beta() time.Duration {
	return clampDur(p.Rho * float64(p.Alpha))
}

// Record captures one satisfied critical section request.
type Record struct {
	// ID is the application process.
	ID mutex.ID
	// Cluster is the process's cluster.
	Cluster int
	// RequestedAt and AcquiredAt bound the obtaining time.
	RequestedAt, AcquiredAt des.Time
}

// Obtaining returns the request-to-grant delay — the paper's central
// metric.
func (r Record) Obtaining() time.Duration {
	return time.Duration(r.AcquiredAt - r.RequestedAt)
}

// Runner drives a deployment's application processes through the workload.
// Construction order matters because callbacks bind at instance build time:
//
//	r := workload.NewRunner(sim, params, monitor)
//	d, err := core.BuildComposed(net, grid, spec, r.Callbacks)
//	r.Bind(d.Apps)
//	r.Start()
//	sim.Run()  // or RunCapped
//	records := r.Records()
type Runner struct {
	sim     *des.Simulator
	params  Params
	rng     *rand.Rand
	monitor *check.Monitor
	procs   map[mutex.ID]*appProc
	order   []mutex.ID
	records []Record
	bound   bool
	started bool
}

type appProc struct {
	app       core.App
	remaining int
	lostCS    int  // critical sections forfeited by a crash, restored on Revive
	waiting   bool // a request is outstanding and not yet granted
	dead      bool // crashed: all scheduled activity becomes a no-op
	reqAt     des.Time
	// request and exitCS are the process's two timer callbacks, bound
	// once at Bind time: every critical section schedules both, so
	// building fresh closures per CS was the harness's largest
	// allocation site.
	request func()
	exitCS  func()
}

// NewRunner creates a runner; monitor may be nil to skip safety checking.
func NewRunner(sim *des.Simulator, params Params, monitor *check.Monitor) (*Runner, error) {
	if err := params.Validate(); err != nil {
		return nil, err
	}
	return &Runner{
		sim:     sim,
		params:  params,
		rng:     rng.New(params.Seed),
		monitor: monitor,
		procs:   make(map[mutex.ID]*appProc),
	}, nil
}

// Callbacks is the core.CallbackFunc to pass to the deployment builder.
func (r *Runner) Callbacks(id mutex.ID) mutex.Callbacks {
	return mutex.Callbacks{OnAcquire: func() { r.onAcquire(id) }}
}

// Bind attaches the built application processes to the runner.
func (r *Runner) Bind(apps []core.App) {
	if r.bound {
		panic("workload: Bind called twice")
	}
	r.bound = true
	r.records = make([]Record, 0, len(apps)*r.params.CSPerProcess)
	for _, a := range apps {
		if a.Instance == nil {
			panic(fmt.Sprintf("workload: app %d has no instance", a.ID))
		}
		p := &appProc{app: a, remaining: r.params.CSPerProcess}
		p.request = func() { r.request(p) }
		p.exitCS = func() { r.exitCS(p) }
		r.procs[a.ID] = p
		r.order = append(r.order, a.ID)
	}
}

// Start schedules every process's first request after an initial idle
// period, staggering arrivals the way the paper's free-running processes
// do.
func (r *Runner) Start() {
	if !r.bound {
		panic("workload: Start before Bind")
	}
	if r.started {
		panic("workload: Start called twice")
	}
	r.started = true
	for _, id := range r.order {
		p := r.procs[id]
		r.sim.After(r.idle(p.app.Cluster), p.request)
	}
}

// currentRho returns the degree of parallelism in force now.
func (r *Runner) currentRho() float64 {
	if len(r.params.Phases) == 0 {
		return r.params.Rho
	}
	now := r.sim.Now()
	for i, ph := range r.params.Phases {
		if i == len(r.params.Phases)-1 || now < ph.Until {
			return ph.Rho
		}
	}
	return r.params.Phases[len(r.params.Phases)-1].Rho
}

// idle draws one idle period from the configured distribution for a
// process in the given cluster.
func (r *Runner) idle(cluster int) time.Duration {
	beta := r.currentRho() * float64(r.params.Alpha)
	if r.params.HotSkew > 1 && cluster == r.params.HotCluster {
		beta /= r.params.HotSkew
	}
	if beta <= 0 {
		return 0
	}
	switch r.params.Dist {
	case Constant:
		return clampDur(beta)
	case Uniform:
		return clampDur(2 * beta * r.rng.Float64())
	default:
		return clampDur(beta * r.rng.ExpFloat64())
	}
}

// clampDur converts a non-negative float64 of nanoseconds to a duration,
// saturating at the maximum. A direct conversion of a value at or above
// 2^63 is undefined (in practice it wraps negative), which turned huge
// ρ·α products — or an unlucky exponential draw on top of one — into
// events scheduled in the past. The scenario loader rejects parameters
// whose β already overflows; the clamp covers the distribution tail.
func clampDur(v float64) time.Duration {
	if v >= float64(math.MaxInt64) {
		return time.Duration(math.MaxInt64)
	}
	return time.Duration(v)
}

// Crash marks the process dead: it abandons any outstanding request, runs
// no further critical sections, and its already-scheduled closures become
// no-ops. Unknown ids (coordinators, standbys, fresh hierarchy processes)
// are ignored so fault injection can target any node. Call Monitor.Crashed
// separately — the runner does not know whether the process was inside its
// critical section from the monitor's point of view.
func (r *Runner) Crash(id mutex.ID) {
	p, ok := r.procs[id]
	if !ok {
		return
	}
	p.dead = true
	p.lostCS = p.remaining
	p.remaining = 0
	p.waiting = false
}

// Revive resumes a crashed process after its node restarted and its group
// re-admitted it: the critical sections forfeited by the crash are restored
// and a fresh request cycle starts after one idle period. The rejoined
// member holds no claim (restart is amnesiac), so the process resumes from
// a clean request. Unknown or never-crashed ids are ignored, mirroring
// Crash.
func (r *Runner) Revive(id mutex.ID) {
	p, ok := r.procs[id]
	if !ok || !p.dead {
		return
	}
	p.dead = false
	p.remaining = p.lostCS
	p.lostCS = 0
	if p.remaining > 0 {
		r.sim.After(r.idle(p.app.Cluster), p.request)
	}
}

func (r *Runner) request(p *appProc) {
	if p.dead {
		return
	}
	p.reqAt = r.sim.Now()
	p.waiting = true
	p.app.Instance.Request()
}

func (r *Runner) onAcquire(id mutex.ID) {
	p, ok := r.procs[id]
	if !ok {
		panic(fmt.Sprintf("workload: acquire for unknown process %d", id))
	}
	if p.dead {
		return // a grant racing a crash: the dead process ignores it
	}
	p.waiting = false
	if r.monitor != nil {
		r.monitor.Enter(id)
	}
	r.records = append(r.records, Record{
		ID: id, Cluster: p.app.Cluster,
		RequestedAt: p.reqAt, AcquiredAt: r.sim.Now(),
	})
	r.sim.After(r.params.Alpha, p.exitCS)
}

// exitCS ends p's critical section: exit the monitor, release the lock,
// and schedule the next request after an idle period.
func (r *Runner) exitCS(p *appProc) {
	if p.dead {
		return // crashed inside the CS: no exit, no release
	}
	if r.monitor != nil {
		r.monitor.Exit(p.app.ID)
	}
	p.app.Instance.Release()
	p.remaining--
	if p.remaining > 0 {
		r.sim.After(r.idle(p.app.Cluster), p.request)
	}
}

// Records returns every satisfied request so far, in grant order.
func (r *Runner) Records() []Record { return r.records }

// Done reports whether every process has finished its critical sections.
func (r *Runner) Done() bool {
	for _, p := range r.procs {
		if p.remaining > 0 {
			return false
		}
	}
	return true
}

// Outstanding returns how many critical sections remain across all
// processes.
func (r *Runner) Outstanding() int {
	n := 0
	for _, p := range r.procs {
		n += p.remaining
	}
	return n
}

// Waiting returns how many processes have an outstanding request that has
// not been granted yet — the quantity a liveness watchdog should monitor
// (idle processes between critical sections do not count).
func (r *Runner) Waiting() int {
	n := 0
	for _, p := range r.procs {
		if p.waiting {
			n++
		}
	}
	return n
}

// ExpectedTotal returns the number of grants a complete run produces.
func (r *Runner) ExpectedTotal() int {
	return len(r.procs) * r.params.CSPerProcess
}
