package adaptive

import (
	"testing"
	"time"
)

// fakeClock is an advanceable virtual clock for GapPolicy tests.
type fakeClock struct{ now time.Duration }

func (c *fakeClock) fn() func() time.Duration { return func() time.Duration { return c.now } }

const alpha = 10 * time.Millisecond

// recommendStable consults the policy until its Patience hysteresis is
// satisfied, returning the final recommendation.
func recommendStable(p *GapPolicy, current string) string {
	out := current
	for i := 0; i < p.Patience+1; i++ {
		out = p.Recommend(current)
		if out != current {
			return out
		}
	}
	return out
}

// feedGaps runs the grant/pending cycle Window times with the given gap.
func feedGaps(p *GapPolicy, c *fakeClock, gap time.Duration) {
	for i := 0; i < p.Window; i++ {
		p.ObserveGrant()
		c.now += gap
		p.ObservePending()
		c.now += alpha
		p.ObserveRelease(true)
	}
}

func TestGapPolicyShortGapsRecommendMartin(t *testing.T) {
	c := &fakeClock{}
	p := NewGapPolicy(c.fn(), alpha)
	feedGaps(p, c, alpha) // gaps of 1*alpha < ShortGap*alpha
	if got := recommendStable(p, "naimi"); got != "martin" {
		t.Fatalf("short gaps recommend %q, want martin", got)
	}
}

func TestGapPolicyLongGapsRecommendSuzuki(t *testing.T) {
	c := &fakeClock{}
	p := NewGapPolicy(c.fn(), alpha)
	feedGaps(p, c, 100*alpha) // far above LongGap*alpha
	if got := recommendStable(p, "naimi"); got != "suzuki" {
		t.Fatalf("long gaps recommend %q, want suzuki", got)
	}
}

func TestGapPolicyMediumGapsRecommendNaimi(t *testing.T) {
	c := &fakeClock{}
	p := NewGapPolicy(c.fn(), alpha)
	feedGaps(p, c, 10*alpha) // between ShortGap (3) and LongGap (30)
	if got := recommendStable(p, "martin"); got != "naimi" {
		t.Fatalf("medium gaps recommend %q, want naimi", got)
	}
}

func TestGapPolicyWarmup(t *testing.T) {
	c := &fakeClock{}
	p := NewGapPolicy(c.fn(), alpha)
	p.ObserveGrant()
	c.now += alpha
	p.ObservePending()
	if got := p.Recommend("naimi"); got != "naimi" {
		t.Fatalf("under-filled window recommends %q, want current", got)
	}
}

// TestGapPolicyReleaseWithoutPending: a holding period that ends without an
// observed pending still contributes its full duration as a gap sample.
func TestGapPolicyReleaseWithoutPending(t *testing.T) {
	c := &fakeClock{}
	p := NewGapPolicy(c.fn(), alpha)
	for i := 0; i < p.Window; i++ {
		p.ObserveGrant()
		c.now += 200 * alpha // long quiet holding
		p.ObserveRelease(false)
	}
	if got := recommendStable(p, "naimi"); got != "suzuki" {
		t.Fatalf("quiet holdings recommend %q, want suzuki", got)
	}
}

// TestGapPolicySecondPendingIgnored: only the first pending per holding
// period samples the gap.
func TestGapPolicySecondPendingIgnored(t *testing.T) {
	c := &fakeClock{}
	p := NewGapPolicy(c.fn(), alpha)
	p.ObserveGrant()
	c.now += alpha
	p.ObservePending()
	c.now += 1000 * alpha
	p.ObservePending() // must not add a second (huge) sample
	p.ObserveRelease(true)
	if len(p.gaps) != 1 || p.gaps[0] != alpha {
		t.Fatalf("gaps = %v, want [%v]", p.gaps, alpha)
	}
}

func TestGapPolicyWindowSlides(t *testing.T) {
	c := &fakeClock{}
	p := NewGapPolicy(c.fn(), alpha)
	feedGaps(p, c, alpha)      // martin territory
	feedGaps(p, c, 1000*alpha) // overwrite with suzuki territory
	if got := recommendStable(p, "martin"); got != "suzuki" {
		t.Fatalf("slid window recommends %q, want suzuki", got)
	}
	if len(p.gaps) != p.Window {
		t.Fatalf("window holds %d samples, want %d", len(p.gaps), p.Window)
	}
}

func TestGapPolicyPendingWithoutHoldingIgnored(t *testing.T) {
	c := &fakeClock{}
	p := NewGapPolicy(c.fn(), alpha)
	p.ObservePending() // never granted: no sample
	if len(p.gaps) != 0 {
		t.Fatalf("gaps = %v, want none", p.gaps)
	}
}

// TestGapPolicyHysteresis: a single deviant consultation does not flip the
// recommendation.
func TestGapPolicyHysteresis(t *testing.T) {
	c := &fakeClock{}
	p := NewGapPolicy(c.fn(), alpha)
	feedGaps(p, c, alpha) // martin territory
	if got := p.Recommend("naimi"); got != "naimi" {
		t.Fatalf("first consultation switched immediately to %q", got)
	}
	if got := p.Recommend("naimi"); got != "naimi" {
		t.Fatalf("second consultation switched early to %q", got)
	}
	if got := p.Recommend("naimi"); got != "martin" {
		t.Fatalf("third consistent consultation gave %q, want martin", got)
	}
	// Streak resets after a switch recommendation.
	if got := p.Recommend("martin"); got != "martin" {
		t.Fatalf("matching current should stay, got %q", got)
	}
}
