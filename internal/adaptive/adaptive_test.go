package adaptive

import (
	"testing"
	"time"

	"gridmutex/internal/algorithms"
	"gridmutex/internal/algorithms/algotest"
	"gridmutex/internal/algorithms/naimitrehel"
	"gridmutex/internal/algorithms/suzukikasami"
	"gridmutex/internal/check"
	"gridmutex/internal/core"
	"gridmutex/internal/des"
	"gridmutex/internal/mutex"
	"gridmutex/internal/simnet"
	"gridmutex/internal/topology"
	"gridmutex/internal/workload"
)

func TestNewFactoryRejectsUnknownInitial(t *testing.T) {
	if _, err := NewFactory(Config{Initial: "bogus"}); err == nil {
		t.Fatal("unknown initial algorithm accepted")
	}
}

func TestFactoryRejectsBadConfig(t *testing.T) {
	f, err := NewFactory(Config{Initial: "naimi"})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f(mutex.Config{}); err == nil {
		t.Fatal("invalid mutex config accepted")
	}
}

// scriptedPolicy recommends a fixed sequence of targets, advancing on each
// successful... it simply recommends targets[i] and advances every time it
// is consulted.
type scriptedPolicy struct {
	targets []string
	i       int
}

func (p *scriptedPolicy) ObserveGrant()       {}
func (p *scriptedPolicy) ObservePending()     {}
func (p *scriptedPolicy) ObserveRelease(bool) {}
func (p *scriptedPolicy) Recommend(current string) string {
	if p.i >= len(p.targets) {
		return current
	}
	t := p.targets[p.i]
	if t != current {
		// keep recommending this target until it is installed
		return t
	}
	p.i++
	if p.i < len(p.targets) {
		return p.targets[p.i]
	}
	return current
}

// buildAdaptiveGrid assembles a composed deployment whose inter level is
// adaptive.
func buildAdaptiveGrid(t *testing.T, grid *topology.Grid, cfg Config, runner *workload.Runner, net *simnet.Network) *core.Deployment {
	t.Helper()
	intraF, err := algorithms.Factory("naimi")
	if err != nil {
		t.Fatal(err)
	}
	adaptF, err := NewFactory(cfg)
	if err != nil {
		t.Fatal(err)
	}
	d, err := core.BuildMultiLevelWith(net, grid, []mutex.Factory{intraF, adaptF}, nil, runner.Callbacks)
	if err != nil {
		t.Fatal(err)
	}
	return d
}

// TestSwitchHappensAndStaysSafe: a scripted policy drives the composition
// through naimi -> suzuki -> martin while a workload runs; every grant stays
// mutually exclusive and all requests complete.
func TestSwitchHappensAndStaysSafe(t *testing.T) {
	grid := topology.Uniform(3, 4, time.Millisecond, 16*time.Millisecond)
	sim := des.New()
	net := simnet.New(sim, grid, simnet.Options{})
	mon := check.NewMonitor(sim)
	runner, err := workload.NewRunner(sim, workload.Params{
		Alpha: 3 * time.Millisecond, Rho: 30, Dist: workload.Exponential,
		CSPerProcess: 20, Seed: 5,
	}, mon)
	if err != nil {
		t.Fatal(err)
	}
	cfg := Config{
		Initial:   "naimi",
		NewPolicy: func() Policy { return &scriptedPolicy{targets: []string{"suzuki", "martin"}} },
	}
	d := buildAdaptiveGrid(t, grid, cfg, runner, net)
	runner.Bind(d.Apps)
	runner.Start()
	if err := sim.RunCapped(5_000_000); err != nil {
		t.Fatalf("did not drain: %v", err)
	}
	mon.AssertQuiescent()
	if !mon.Ok() {
		t.Fatalf("violations: %v", mon.Violations()[0])
	}
	if !runner.Done() {
		t.Fatalf("liveness: %d outstanding", runner.Outstanding())
	}
	// Every coordinator's inter instance must have converged to the same
	// generation and algorithm, with at least one switch committed.
	var alg string
	var gen int64 = -1
	for _, c := range d.Coordinators {
		proc := d.Procs[c.ID()]
		w, ok := proc.Instance(1).(*Instance)
		if !ok {
			t.Fatalf("inter instance is %T, want adaptive", proc.Instance(1))
		}
		if gen == -1 {
			gen, alg = w.Generation(), w.Algorithm()
		}
		if w.Generation() != gen || w.Algorithm() != alg {
			t.Fatalf("coordinator %d at gen %d/%s, others at %d/%s",
				c.ID(), w.Generation(), w.Algorithm(), gen, alg)
		}
	}
	if gen == 0 {
		t.Fatal("no switch ever committed")
	}
	t.Logf("converged after %d generations on %s", gen, alg)
}

// TestChurnPolicyStaysCorrect: a policy that permanently wants to rotate
// algorithms switches as often as quiescence allows; safety and liveness
// must survive the churn.
func TestChurnPolicyStaysCorrect(t *testing.T) {
	rotation := []string{"naimi", "suzuki", "martin", "raymond", "central"}
	grid := topology.Uniform(3, 3, time.Millisecond, 10*time.Millisecond)
	sim := des.New()
	net := simnet.New(sim, grid, simnet.Options{})
	mon := check.NewMonitor(sim)
	runner, err := workload.NewRunner(sim, workload.Params{
		Alpha: 2 * time.Millisecond, Rho: 40, Dist: workload.Exponential,
		CSPerProcess: 30, Seed: 9,
	}, mon)
	if err != nil {
		t.Fatal(err)
	}
	next := func(current string) string {
		for i, a := range rotation {
			if a == current {
				return rotation[(i+1)%len(rotation)]
			}
		}
		return rotation[0]
	}
	cfg := Config{
		Initial:   "naimi",
		NewPolicy: func() Policy { return policyFunc{rec: next} },
	}
	d := buildAdaptiveGrid(t, grid, cfg, runner, net)
	runner.Bind(d.Apps)
	runner.Start()
	if err := sim.RunCapped(8_000_000); err != nil {
		t.Fatalf("did not drain: %v", err)
	}
	mon.AssertQuiescent()
	if !mon.Ok() {
		t.Fatalf("violations under churn: %v", mon.Violations()[0])
	}
	if !runner.Done() {
		t.Fatalf("liveness under churn: %d outstanding", runner.Outstanding())
	}
	w := d.Procs[d.Coordinators[0].ID()].Instance(1).(*Instance)
	if w.Generation() < 2 {
		t.Fatalf("churn produced only %d switches", w.Generation())
	}
	t.Logf("churn run committed %d switches", w.Generation())
}

type policyFunc struct {
	rec func(string) string
}

func (policyFunc) ObserveGrant()                 {}
func (policyFunc) ObservePending()               {}
func (policyFunc) ObserveRelease(bool)           {}
func (p policyFunc) Recommend(cur string) string { return p.rec(cur) }

// TestNoPolicyNeverSwitches: with a nil policy the wrapper is a transparent
// pass-through.
func TestNoPolicyNeverSwitches(t *testing.T) {
	grid := topology.Uniform(2, 3, time.Millisecond, 10*time.Millisecond)
	sim := des.New()
	// KindCounts: the no-protocol-messages check below reads ByKind.
	net := simnet.New(sim, grid, simnet.Options{KindCounts: true})
	runner, err := workload.NewRunner(sim, workload.Params{
		Alpha: 2 * time.Millisecond, Rho: 10, Dist: workload.Exponential,
		CSPerProcess: 10, Seed: 3,
	}, nil)
	if err != nil {
		t.Fatal(err)
	}
	d := buildAdaptiveGrid(t, grid, Config{Initial: "martin"}, runner, net)
	runner.Bind(d.Apps)
	runner.Start()
	if err := sim.RunCapped(2_000_000); err != nil {
		t.Fatal(err)
	}
	if !runner.Done() {
		t.Fatal("incomplete")
	}
	for _, c := range d.Coordinators {
		w := d.Procs[c.ID()].Instance(1).(*Instance)
		if w.Generation() != 0 || w.Algorithm() != "martin" {
			t.Fatalf("nil policy switched: gen %d alg %s", w.Generation(), w.Algorithm())
		}
	}
	// No protocol messages may appear on the wire.
	for kind := range net.Counters().ByKind {
		if kind == "adaptive.prepare" || kind == "adaptive.vote" || kind == "adaptive.commit" || kind == "adaptive.abort" {
			t.Fatalf("nil policy sent %s", kind)
		}
	}
}

// TestAbortPath drives a Prepare into a member with an outstanding request
// using the manual world, verifying the Nack/Abort path leaves everyone
// consistent.
func TestAbortPath(t *testing.T) {
	w := algotest.NewWorld()
	members := []mutex.ID{0, 1, 2}
	cfg := Config{Initial: "naimi", NewPolicy: func() Policy {
		return policyFunc{rec: func(cur string) string { return "suzuki" }}
	}}
	factory, err := NewFactory(cfg)
	if err != nil {
		t.Fatal(err)
	}
	insts, err := w.Build(factory, members, 0, nil)
	if err != nil {
		t.Fatal(err)
	}
	a0 := insts[0].(*Instance)
	a1 := insts[1].(*Instance)

	// Member 1 requests; its request is in flight toward 0.
	a1.Request()
	// Member 0 cycles through a CS; on release its policy proposes
	// switching to suzuki (it holds the token, idle, no pending known).
	a0.Request()
	w.Settle()
	a0.Release()
	// Prepare messages are now in flight alongside member 1's request.
	prepares := 0
	for _, s := range w.Inflight() {
		if s.Msg.Kind() == "adaptive.prepare" {
			prepares++
		}
	}
	if prepares != 2 {
		t.Fatalf("%d prepares in flight, want 2", prepares)
	}
	if err := w.Drain(100); err != nil {
		t.Fatal(err)
	}
	// Member 1 must have Nacked (outstanding request), the proposal must
	// have aborted, and member 1's request must still be served by the
	// original algorithm.
	if a1.State() != mutex.InCS {
		t.Fatalf("member 1 state %v, want CS (request served despite proposal)", a1.State())
	}
	for i, inst := range insts {
		ai := inst.(*Instance)
		if ai.Generation() != 0 || ai.Algorithm() != "naimi" {
			t.Fatalf("member %d switched after abort: gen %d alg %s", i, ai.Generation(), ai.Algorithm())
		}
		if ai.frozen {
			t.Fatalf("member %d still frozen after abort", i)
		}
	}
	a1.Release()
	if err := w.Drain(100); err != nil {
		t.Fatal(err)
	}
}

// TestCommitPathManual: with no contention the proposal commits and all
// members install the new algorithm with the proposer as holder.
func TestCommitPathManual(t *testing.T) {
	w := algotest.NewWorld()
	members := []mutex.ID{0, 1, 2}
	cfg := Config{Initial: "naimi", NewPolicy: func() Policy {
		return policyFunc{rec: func(cur string) string {
			if cur == "naimi" {
				return "martin"
			}
			return cur
		}}
	}}
	factory, err := NewFactory(cfg)
	if err != nil {
		t.Fatal(err)
	}
	insts, err := w.Build(factory, members, 0, nil)
	if err != nil {
		t.Fatal(err)
	}
	a0 := insts[0].(*Instance)
	a0.Request()
	w.Settle()
	a0.Release()
	if err := w.Drain(100); err != nil {
		t.Fatal(err)
	}
	for i, inst := range insts {
		ai := inst.(*Instance)
		if ai.Algorithm() != "martin" || ai.Generation() != 1 {
			t.Fatalf("member %d: alg %s gen %d, want martin gen 1", i, ai.Algorithm(), ai.Generation())
		}
	}
	if !a0.HoldsToken() {
		t.Fatal("proposer does not hold the new token")
	}
	// The new ring must work: member 2 requests and gets the CS.
	a2 := insts[2].(*Instance)
	a2.Request()
	if err := w.Drain(100); err != nil {
		t.Fatal(err)
	}
	if a2.State() != mutex.InCS {
		t.Fatalf("member 2 state %v on the new ring", a2.State())
	}
}

// TestBufferedRequestDuringSwitch: a Request issued between Ack and Commit
// is buffered and replayed on the new instance.
func TestBufferedRequestDuringSwitch(t *testing.T) {
	w := algotest.NewWorld()
	members := []mutex.ID{0, 1}
	cfg := Config{Initial: "naimi", NewPolicy: func() Policy {
		return policyFunc{rec: func(cur string) string {
			if cur == "naimi" {
				return "suzuki"
			}
			return cur
		}}
	}}
	factory, err := NewFactory(cfg)
	if err != nil {
		t.Fatal(err)
	}
	insts, err := w.Build(factory, members, 0, nil)
	if err != nil {
		t.Fatal(err)
	}
	a0, a1 := insts[0].(*Instance), insts[1].(*Instance)
	a0.Request()
	w.Settle()
	a0.Release() // proposes switch to suzuki
	// Deliver prepare to member 1; it Acks and freezes.
	w.DeliverNext()
	if !a1.frozen {
		t.Fatal("member 1 not frozen after Ack")
	}
	// Frozen member 1 requests: buffered.
	a1.Request()
	if a1.State() != mutex.Req {
		t.Fatalf("buffered request not visible in State: %v", a1.State())
	}
	if err := w.Drain(100); err != nil {
		t.Fatal(err)
	}
	if a1.Algorithm() != "suzuki" {
		t.Fatalf("member 1 on %s, want suzuki", a1.Algorithm())
	}
	if a1.State() != mutex.InCS {
		t.Fatalf("buffered request not granted on new instance: %v", a1.State())
	}
}

func TestThresholdPolicyMapping(t *testing.T) {
	p := NewThresholdPolicy()
	// Fill the window with busy releases: low parallelism -> martin.
	for i := 0; i < p.Window; i++ {
		p.ObserveRelease(true)
	}
	if got := p.Recommend("naimi"); got != "martin" {
		t.Errorf("all-busy window recommends %q, want martin", got)
	}
	// All idle: high parallelism -> suzuki.
	p2 := NewThresholdPolicy()
	for i := 0; i < p2.Window; i++ {
		p2.ObserveRelease(false)
	}
	if got := p2.Recommend("naimi"); got != "suzuki" {
		t.Errorf("all-idle window recommends %q, want suzuki", got)
	}
	// Mixed: tree.
	p3 := NewThresholdPolicy()
	for i := 0; i < p3.Window; i++ {
		p3.ObserveRelease(i%2 == 0)
	}
	if got := p3.Recommend("martin"); got != "naimi" {
		t.Errorf("mixed window recommends %q, want naimi", got)
	}
}

func TestThresholdPolicyWarmup(t *testing.T) {
	p := NewThresholdPolicy()
	p.ObserveRelease(true)
	if got := p.Recommend("naimi"); got != "naimi" {
		t.Errorf("under-filled window recommends %q, want current", got)
	}
}

func TestThresholdPolicySlidingWindow(t *testing.T) {
	p := NewThresholdPolicy()
	for i := 0; i < p.Window; i++ {
		p.ObserveRelease(true)
	}
	// Overwrite the window with idle observations.
	for i := 0; i < p.Window; i++ {
		p.ObserveRelease(false)
	}
	if got := p.Recommend("martin"); got != "suzuki" {
		t.Errorf("slid window recommends %q, want suzuki", got)
	}
}

func TestMessageMetadata(t *testing.T) {
	at := Attempt{Proposer: 1, Seq: 2}
	msgs := []mutex.Message{
		Prepare{Attempt: at, Alg: "naimi"},
		Vote{Attempt: at, Ok: true},
		Commit{Attempt: at, Gen: 1, Alg: "naimi"},
		Abort{Attempt: at},
	}
	seen := map[string]bool{}
	for _, m := range msgs {
		if m.Size() <= 0 {
			t.Errorf("%T has non-positive size", m)
		}
		if seen[m.Kind()] {
			t.Errorf("duplicate kind %q", m.Kind())
		}
		seen[m.Kind()] = true
	}
	in := Inner{Gen: 3, M: Prepare{}}
	if in.Kind() != "adaptive.prepare" {
		t.Errorf("Inner.Kind = %q", in.Kind())
	}
	if in.Size() != (Prepare{}).Size()+8 {
		t.Errorf("Inner.Size = %d", in.Size())
	}
}

// switchWorld builds a 3-member manual world whose member 0 proposes
// switching naimi -> suzuki on its first release.
func switchWorld(t *testing.T) (*algotest.World, []*Instance) {
	t.Helper()
	w := algotest.NewWorld()
	cfg := Config{Initial: "naimi", NewPolicy: func() Policy {
		return policyFunc{rec: func(cur string) string {
			if cur == "naimi" {
				return "suzuki"
			}
			return cur
		}}
	}}
	factory, err := NewFactory(cfg)
	if err != nil {
		t.Fatal(err)
	}
	insts, err := w.Build(factory, []mutex.ID{0, 1, 2}, 0, nil)
	if err != nil {
		t.Fatal(err)
	}
	out := make([]*Instance, len(insts))
	for i, in := range insts {
		out[i] = in.(*Instance)
	}
	return w, out
}

// TestStaleGenerationDropped: after a committed switch, traffic from the
// replaced generation is discarded.
func TestStaleGenerationDropped(t *testing.T) {
	w, a := switchWorld(t)
	a[0].Request()
	w.Settle()
	a[0].Release()
	if err := w.Drain(100); err != nil {
		t.Fatal(err)
	}
	if a[1].Generation() != 1 || a[1].Algorithm() != "suzuki" {
		t.Fatalf("switch did not commit: gen %d alg %s", a[1].Generation(), a[1].Algorithm())
	}
	// A late gen-0 naimi request arrives at member 1: must be dropped
	// without disturbing the new instance.
	a[1].Deliver(2, Inner{Gen: 0, M: naimitrehel.Request{Origin: 2}})
	w.Settle()
	if len(w.Inflight()) != 0 {
		t.Fatal("stale message caused traffic")
	}
	// The new instance still works end to end.
	a[2].Request()
	if err := w.Drain(100); err != nil {
		t.Fatal(err)
	}
	if a[2].State() != mutex.InCS {
		t.Fatalf("member 2 state %v on new instance", a[2].State())
	}
}

// TestFutureGenerationBuffered: a new-generation message racing ahead of
// the local Commit is buffered and replayed once the Commit lands.
func TestFutureGenerationBuffered(t *testing.T) {
	w, a := switchWorld(t)
	a[0].Request()
	w.Settle()
	a[0].Release()  // proposes; two prepares in flight
	w.DeliverNext() // prepare -> member 1 (acks, freezes)
	w.DeliverNext() // prepare -> member 2 (acks, freezes)
	if !a[1].frozen || !a[2].frozen {
		t.Fatal("members not frozen after acks")
	}
	// Member 1 sees gen-1 traffic from member 2 before its own commit.
	a[1].Deliver(2, Inner{Gen: 1, M: suzukikasami.Request{Seq: 1}})
	if len(a[1].future) != 1 {
		t.Fatalf("future buffer has %d entries, want 1", len(a[1].future))
	}
	if err := w.Drain(100); err != nil {
		t.Fatal(err)
	}
	if len(a[1].future) != 0 {
		t.Fatal("future buffer not replayed at commit")
	}
	if a[1].Generation() != 1 || a[1].Algorithm() != "suzuki" {
		t.Fatalf("member 1 gen %d alg %s", a[1].Generation(), a[1].Algorithm())
	}
}

func TestSwitchesAccessor(t *testing.T) {
	w, a := switchWorld(t)
	if a[0].Switches() != 0 {
		t.Fatal("fresh instance reports switches")
	}
	a[0].Request()
	w.Settle()
	a[0].Release()
	if err := w.Drain(100); err != nil {
		t.Fatal(err)
	}
	for i, inst := range a {
		if inst.Switches() != 1 {
			t.Fatalf("member %d Switches = %d, want 1", i, inst.Switches())
		}
	}
}

func TestAdaptiveProtocolPanics(t *testing.T) {
	t.Run("double request", func(t *testing.T) {
		_, a := switchWorld(t)
		a[1].Request()
		defer func() {
			if recover() == nil {
				t.Error("no panic")
			}
		}()
		a[1].Request()
	})
	t.Run("unknown message", func(t *testing.T) {
		_, a := switchWorld(t)
		defer func() {
			if recover() == nil {
				t.Error("no panic")
			}
		}()
		a[1].Deliver(0, badMsg{})
	})
	t.Run("policy recommends unknown algorithm", func(t *testing.T) {
		w := algotest.NewWorld()
		factory, err := NewFactory(Config{Initial: "naimi", NewPolicy: func() Policy {
			return policyFunc{rec: func(string) string { return "bogus" }}
		}})
		if err != nil {
			t.Fatal(err)
		}
		insts, err := w.Build(factory, []mutex.ID{0, 1}, 0, nil)
		if err != nil {
			t.Fatal(err)
		}
		a0 := insts[0].(*Instance)
		defer func() {
			if recover() == nil {
				t.Error("no panic")
			}
		}()
		// The proposal opportunity right after the immediate grant
		// already consults the policy.
		a0.Request()
		w.Settle()
		a0.Release()
		w.Settle()
	})
}

// TestSingleMemberNeverProposes: proposals need at least two members.
func TestSingleMemberNeverProposes(t *testing.T) {
	w := algotest.NewWorld()
	factory, err := NewFactory(Config{Initial: "naimi", NewPolicy: func() Policy {
		return policyFunc{rec: func(string) string { return "suzuki" }}
	}})
	if err != nil {
		t.Fatal(err)
	}
	insts, err := w.Build(factory, []mutex.ID{0}, 0, nil)
	if err != nil {
		t.Fatal(err)
	}
	a0 := insts[0].(*Instance)
	a0.Request()
	w.Settle()
	a0.Release()
	w.Settle()
	if len(w.Log()) != 0 {
		t.Fatalf("single member sent %d messages", len(w.Log()))
	}
	if a0.Generation() != 0 {
		t.Fatal("single member switched")
	}
}

type badMsg struct{}

func (badMsg) Kind() string { return "bad" }
func (badMsg) Size() int    { return 0 }

// TestAdaptiveInsideMultiLevel places the adaptive wrapper at the middle
// level of a three-level hierarchy: regions switch their algorithm while
// cluster and top levels stay static.
func TestAdaptiveInsideMultiLevel(t *testing.T) {
	grid := topology.Uniform(4, 3, time.Millisecond, 12*time.Millisecond)
	sim := des.New()
	net := simnet.New(sim, grid, simnet.Options{})
	mon := check.NewMonitor(sim)
	runner, err := workload.NewRunner(sim, workload.Params{
		Alpha: 3 * time.Millisecond, Rho: 30, Dist: workload.Exponential,
		CSPerProcess: 15, Seed: 17,
	}, mon)
	if err != nil {
		t.Fatal(err)
	}
	naimiF, err := algorithms.Factory("naimi")
	if err != nil {
		t.Fatal(err)
	}
	adaptF, err := NewFactory(Config{
		Initial:   "naimi",
		NewPolicy: func() Policy { return &scriptedPolicy{targets: []string{"martin"}} },
	})
	if err != nil {
		t.Fatal(err)
	}
	d, err := core.BuildMultiLevelWith(net, grid,
		[]mutex.Factory{naimiF, adaptF, naimiF}, []int{2}, runner.Callbacks)
	if err != nil {
		t.Fatal(err)
	}
	runner.Bind(d.Apps)
	runner.Start()
	if err := sim.RunCapped(8_000_000); err != nil {
		t.Fatalf("did not drain: %v", err)
	}
	mon.AssertQuiescent()
	if !mon.Ok() {
		t.Fatalf("violations: %v", mon.Violations()[0])
	}
	if !runner.Done() {
		t.Fatalf("liveness: %d outstanding", runner.Outstanding())
	}
	// At least one region committed a switch to martin.
	switched := false
	for _, c := range d.Coordinators {
		proc := d.Procs[c.ID()]
		if w, ok := proc.Instance(1).(*Instance); ok && w.Generation() > 0 {
			if w.Algorithm() != "martin" {
				t.Fatalf("region switched to %s, want martin", w.Algorithm())
			}
			switched = true
		}
	}
	if !switched {
		t.Log("no region switch committed this run (allowed but unexpected)")
	}
}
