// Package adaptive implements the paper's proposed future work (section
// 6): a dynamic composition scheme in which the inter-cluster algorithm is
// replaced at runtime according to the observed application behaviour.
//
// Every participant wraps its inter instance in an Instance from this
// package. The wrapper runs an epoch-based reconfiguration protocol:
//
//  1. A participant that holds the token idle with no pending requests may
//     propose a switch (its Policy recommends a different algorithm). It
//     broadcasts a Prepare carrying a fresh Attempt identifier.
//  2. Every other participant votes: Nack if it has an outstanding request
//     (or is itself mid-switch), otherwise Ack — freezing new requests
//     (they are buffered, not issued) until the decision.
//  3. All Acks: the proposer installs a fresh instance of the new
//     algorithm with itself as holder, bumps the generation, and
//     broadcasts Commit; each receiver installs the same instance
//     configuration, then replays buffered traffic and requests. Any Nack:
//     the proposer broadcasts Abort and everyone thaws.
//
// Inner-algorithm messages are tagged with the generation that produced
// them: messages from a replaced generation are dropped (their state is
// gone), messages from a future generation — possible because Commit
// travels on a different link than the first new-generation traffic — are
// buffered until the local Commit arrives.
//
// The protocol only commits when no participant has an outstanding
// request, so a switch can never strand a request. The flip side is that
// switches need a quiescent moment: a permanently saturated system keeps
// its current algorithm. Section 6 of the paper leaves the mechanism
// unspecified; this conservative design favours safety.
package adaptive

import (
	"fmt"

	"gridmutex/internal/algorithms"
	"gridmutex/internal/mutex"
)

// Config describes the adaptive wrapper shared by all participants.
type Config struct {
	// Initial is the algorithm the composition starts with.
	Initial string
	// Policy decides when to switch; nil disables switching (the
	// wrapper then adds no messages). Each participant receives its own
	// Policy instance from NewPolicy.
	NewPolicy func() Policy
}

// Policy observes local token activity and recommends switches. Policies
// are per-participant and consulted only while that participant holds the
// token.
//
// In the composed architecture the inter token is never idle: its holder
// (a coordinator) is logically in the critical section for as long as its
// cluster owns the right. The wrapper therefore consults the policy both
// when the holder is idle (plain usage) and right after it acquires the
// token (coordinator usage), and the observation hooks cover the events a
// coordinator-side wrapper actually sees.
type Policy interface {
	// ObserveGrant is called when this participant's request is
	// granted.
	ObserveGrant()
	// ObservePending is called when another participant's request
	// reaches this participant while it holds the token.
	ObservePending()
	// ObserveRelease is called on every wrapper Release; busy reports
	// whether other requests were already pending at that moment.
	ObserveRelease(busy bool)
	// Recommend is consulted at proposal opportunities; returning a
	// name different from current proposes a switch.
	Recommend(current string) string
}

// NewFactory returns a mutex.Factory producing adaptive wrappers. Use it
// with core.BuildMultiLevelWith at the inter level.
func NewFactory(cfg Config) (mutex.Factory, error) {
	if _, err := algorithms.Factory(cfg.Initial); err != nil {
		return nil, fmt.Errorf("adaptive: %w", err)
	}
	return func(mc mutex.Config) (mutex.Instance, error) {
		if err := mc.Validate(); err != nil {
			return nil, err
		}
		inst := &Instance{cfg: cfg, mc: mc, alg: cfg.Initial}
		if cfg.NewPolicy != nil {
			inst.policy = cfg.NewPolicy()
		}
		if err := inst.install(cfg.Initial, mc.Holder); err != nil {
			return nil, err
		}
		return inst, nil
	}, nil
}

// Attempt uniquely identifies one switch proposal.
type Attempt struct {
	Proposer mutex.ID
	Seq      int64
}

// Wrapper wire messages. They share the instance's channel with wrapped
// inner messages.

// Prepare proposes switching to Alg.
type Prepare struct {
	Attempt Attempt
	Alg     string
}

// Kind implements mutex.Message.
func (Prepare) Kind() string { return "adaptive.prepare" }

// Size implements mutex.Message.
func (Prepare) Size() int { return 32 }

// Vote answers a Prepare.
type Vote struct {
	Attempt Attempt
	Ok      bool
}

// Kind implements mutex.Message.
func (Vote) Kind() string { return "adaptive.vote" }

// Size implements mutex.Message.
func (Vote) Size() int { return 28 }

// Commit installs generation Gen of algorithm Alg with the proposer as
// holder.
type Commit struct {
	Attempt Attempt
	Gen     int64
	Alg     string
}

// Kind implements mutex.Message.
func (Commit) Kind() string { return "adaptive.commit" }

// Size implements mutex.Message.
func (Commit) Size() int { return 36 }

// Abort cancels a proposal.
type Abort struct {
	Attempt Attempt
}

// Kind implements mutex.Message.
func (Abort) Kind() string { return "adaptive.abort" }

// Size implements mutex.Message.
func (Abort) Size() int { return 24 }

// Inner carries a wrapped inner-algorithm message of generation Gen.
type Inner struct {
	Gen int64
	M   mutex.Message
}

// Kind implements mutex.Message.
func (i Inner) Kind() string { return i.M.Kind() }

// Size implements mutex.Message: inner size plus the generation tag.
func (i Inner) Size() int { return i.M.Size() + 8 }

// bufferedInner is a future-generation message awaiting its Commit.
type bufferedInner struct {
	gen  int64
	from mutex.ID
	m    mutex.Message
}

// Instance is the per-participant adaptive wrapper.
type Instance struct {
	cfg    Config
	mc     mutex.Config
	policy Policy

	inner mutex.Instance
	alg   string
	gen   int64

	// Owner-visible request state: the wrapper must answer State()
	// coherently even while a request is frozen in the buffer.
	reqOutstanding  bool
	inCS            bool // the owner is logically inside the CS
	suppressAcquire bool // swallow the re-grant after an in-CS switch
	frozen          bool
	frozenBy        Attempt // proposal the freeze belongs to
	buffered        bool    // a Request arrived while frozen

	// Proposer state.
	proposing   bool
	curAttempt  Attempt
	pendingAlg  string
	votes       int
	nacked      bool
	attemptSeq  int64
	switchCount int64

	// Future-generation traffic awaiting the local Commit.
	future []bufferedInner
}

// compile-time interface check
var _ mutex.Instance = (*Instance)(nil)

// install replaces the inner instance with a fresh one.
func (a *Instance) install(alg string, holder mutex.ID) error {
	factory, err := algorithms.Factory(alg)
	if err != nil {
		return err
	}
	inner, err := factory(mutex.Config{
		Self:    a.mc.Self,
		Members: a.mc.Members,
		Holder:  holder,
		Env:     &innerEnv{a: a},
		Callbacks: mutex.Callbacks{
			OnAcquire: a.onInnerAcquire,
			OnPending: a.onInnerPending,
		},
	})
	if err != nil {
		return err
	}
	a.inner = inner
	a.alg = alg
	return nil
}

// innerEnv tags outgoing inner messages with the current generation.
type innerEnv struct{ a *Instance }

func (e *innerEnv) Send(to mutex.ID, m mutex.Message) {
	e.a.mc.Env.Send(to, Inner{Gen: e.a.gen, M: m})
}

func (e *innerEnv) Local(f func()) { e.a.mc.Env.Local(f) }

func (a *Instance) onInnerAcquire() {
	if a.suppressAcquire {
		// Re-acquisition of the critical section on a freshly
		// installed instance after an in-CS switch: the owner never
		// logically left the CS, so the grant is internal.
		a.suppressAcquire = false
		return
	}
	a.inCS = true
	if a.policy != nil {
		a.policy.ObserveGrant()
	}
	if f := a.mc.Callbacks.OnAcquire; f != nil {
		f()
	}
	// A coordinator holds the token "in CS" for as long as its cluster
	// owns the right, so right after a grant is the natural proposal
	// opportunity in composed deployments.
	a.maybePropose()
}

func (a *Instance) onInnerPending() {
	if a.policy != nil {
		a.policy.ObservePending()
	}
	if f := a.mc.Callbacks.OnPending; f != nil {
		f()
	}
}

// Algorithm returns the name of the algorithm currently installed.
func (a *Instance) Algorithm() string { return a.alg }

// Generation returns the number of committed switches.
func (a *Instance) Generation() int64 { return a.gen }

// Switches returns how many switches this participant has committed.
func (a *Instance) Switches() int64 { return a.switchCount }

// Request implements mutex.Instance; while a switch decision is pending
// the request is buffered and replayed afterwards.
func (a *Instance) Request() {
	if a.reqOutstanding {
		panic("adaptive: Request while outstanding")
	}
	a.reqOutstanding = true
	if a.frozen {
		a.buffered = true
		return
	}
	a.inner.Request()
}

// Release implements mutex.Instance. After releasing, an idle
// token-holding participant consults its policy and may propose a switch.
func (a *Instance) Release() {
	busy := a.inner.HasPending()
	a.reqOutstanding = false
	a.inCS = false
	a.inner.Release()
	if a.policy != nil {
		a.policy.ObserveRelease(busy)
	}
	a.maybePropose()
}

// maybePropose starts a switch proposal when allowed: this participant
// holds the token with no pending requests, either idle or inside the
// critical section (the composed coordinator case).
func (a *Instance) maybePropose() {
	if a.policy == nil || a.frozen || a.proposing {
		return
	}
	if !a.inner.HoldsToken() || a.inner.HasPending() {
		return
	}
	switch a.inner.State() {
	case mutex.NoReq:
		if a.reqOutstanding {
			return
		}
	case mutex.InCS:
		// Allowed: the holder stays in its CS across the switch.
	default:
		return
	}
	if len(a.mc.Members) < 2 {
		return
	}
	target := a.policy.Recommend(a.alg)
	if target == "" || target == a.alg {
		return
	}
	if _, err := algorithms.Factory(target); err != nil {
		panic(fmt.Sprintf("adaptive: policy recommended unknown algorithm %q", target))
	}
	a.attemptSeq++
	a.curAttempt = Attempt{Proposer: a.mc.Self, Seq: a.attemptSeq}
	a.proposing = true
	a.frozen = true
	a.frozenBy = a.curAttempt
	a.votes = 0
	a.nacked = false
	p := Prepare{Attempt: a.curAttempt, Alg: target}
	for _, m := range a.mc.Members {
		if m != a.mc.Self {
			a.mc.Env.Send(m, p)
		}
	}
	a.pendingAlg = target
}

// Deliver implements mutex.Instance, demultiplexing protocol messages from
// wrapped inner traffic.
func (a *Instance) Deliver(from mutex.ID, m mutex.Message) {
	switch msg := m.(type) {
	case Inner:
		a.onInner(from, msg)
	case Prepare:
		a.onPrepare(from, msg)
	case Vote:
		a.onVote(msg)
	case Commit:
		a.onCommit(msg)
	case Abort:
		a.onAbort(msg)
	default:
		panic(fmt.Sprintf("adaptive: unexpected message %T", m))
	}
}

func (a *Instance) onInner(from mutex.ID, msg Inner) {
	switch {
	case msg.Gen == a.gen:
		a.inner.Deliver(from, msg.M)
		// Inner activity can create the quiescence a pending
		// recommendation was waiting for — nothing to do here; the
		// next Release re-checks.
	case msg.Gen < a.gen:
		// Stale generation: that instance's state is gone everywhere.
	default:
		a.future = append(a.future, bufferedInner{gen: msg.Gen, from: from, m: msg.M})
	}
}

func (a *Instance) onPrepare(from mutex.ID, p Prepare) {
	ok := !a.reqOutstanding && !a.frozen && !a.proposing
	if ok {
		a.frozen = true
		a.frozenBy = p.Attempt
	}
	a.mc.Env.Send(from, Vote{Attempt: p.Attempt, Ok: ok})
}

func (a *Instance) onVote(v Vote) {
	if !a.proposing || v.Attempt != a.curAttempt {
		return
	}
	if !v.Ok {
		a.nacked = true
	}
	a.votes++
	if a.votes < len(a.mc.Members)-1 {
		return
	}
	// All votes in: decide.
	a.proposing = false
	if a.nacked {
		for _, m := range a.mc.Members {
			if m != a.mc.Self {
				a.mc.Env.Send(m, Abort{Attempt: a.curAttempt})
			}
		}
		a.thaw()
		return
	}
	a.gen++
	a.switchCount++
	if err := a.install(a.pendingAlg, a.mc.Self); err != nil {
		panic(fmt.Sprintf("adaptive: commit install: %v", err))
	}
	if a.inCS {
		// The proposer never logically left the critical section:
		// re-enter it on the fresh instance (immediate, it is the
		// holder) and swallow the resulting grant callback.
		a.suppressAcquire = true
		a.inner.Request()
	}
	c := Commit{Attempt: a.curAttempt, Gen: a.gen, Alg: a.pendingAlg}
	for _, m := range a.mc.Members {
		if m != a.mc.Self {
			a.mc.Env.Send(m, c)
		}
	}
	a.thaw()
}

func (a *Instance) onCommit(c Commit) {
	if !a.frozen || c.Attempt != a.frozenBy {
		// A commit for an Attempt we Nacked cannot exist: commits
		// require unanimous Acks.
		panic(fmt.Sprintf("adaptive: unexpected commit for Attempt %+v", c.Attempt))
	}
	a.gen = c.Gen
	a.switchCount++
	if err := a.install(c.Alg, c.Attempt.Proposer); err != nil {
		panic(fmt.Sprintf("adaptive: commit install: %v", err))
	}
	a.thaw()
}

func (a *Instance) onAbort(ab Abort) {
	if !a.frozen || ab.Attempt != a.frozenBy {
		return
	}
	a.thaw()
}

// thaw leaves the frozen state: replay buffered future-generation traffic
// that now matches, then the buffered request.
func (a *Instance) thaw() {
	a.frozen = false
	a.frozenBy = Attempt{}
	if len(a.future) > 0 {
		pending := a.future
		a.future = nil
		for _, b := range pending {
			a.onInner(b.from, Inner{Gen: b.gen, M: b.m})
		}
	}
	if a.buffered {
		a.buffered = false
		a.inner.Request()
	}
}

// HasPending implements mutex.Instance.
func (a *Instance) HasPending() bool { return a.inner.HasPending() }

// HoldsToken implements mutex.Instance.
func (a *Instance) HoldsToken() bool { return a.inner.HoldsToken() }

// State implements mutex.Instance: a buffered request reads as Req even
// though the inner instance has not seen it yet.
func (a *Instance) State() mutex.State {
	if a.buffered {
		return mutex.Req
	}
	return a.inner.State()
}
