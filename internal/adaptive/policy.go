package adaptive

import "time"

// ThresholdPolicy implements the paper's conclusion as a control rule: the
// logical topology should match the observed degree of parallelism. It
// watches the fraction of this participant's releases that found another
// request already pending ("busy releases") over a sliding window:
//
//   - mostly busy releases  -> low parallelism  -> ring (Martin)
//   - mostly idle releases  -> high parallelism -> broadcast (Suzuki)
//   - in between            -> intermediate     -> tree (Naimi-Trehel)
//
// The thresholds map directly onto section 4.7's recommendation table.
type ThresholdPolicy struct {
	// Window is how many recent releases are considered (default 8).
	Window int
	// HighContention is the busy fraction at or above which Martin's
	// ring is recommended (default 0.75).
	HighContention float64
	// LowContention is the busy fraction at or below which
	// Suzuki-Kasami's broadcast is recommended (default 0.25).
	LowContention float64

	history []bool
	next    int
	filled  bool
}

// NewThresholdPolicy returns a policy with the default thresholds.
func NewThresholdPolicy() *ThresholdPolicy {
	return &ThresholdPolicy{Window: 8, HighContention: 0.75, LowContention: 0.25}
}

// ObserveGrant implements Policy; grants carry no signal for this policy.
func (p *ThresholdPolicy) ObserveGrant() {}

// ObservePending implements Policy; pendings carry no signal for this
// policy.
func (p *ThresholdPolicy) ObservePending() {}

// ObserveRelease implements Policy.
func (p *ThresholdPolicy) ObserveRelease(busy bool) {
	if p.Window <= 0 {
		p.Window = 8
	}
	if len(p.history) < p.Window {
		p.history = append(p.history, busy)
		return
	}
	p.history[p.next] = busy
	p.next = (p.next + 1) % p.Window
	p.filled = true
}

// busyFraction returns the busy ratio over the current window.
func (p *ThresholdPolicy) busyFraction() float64 {
	if len(p.history) == 0 {
		return 0
	}
	busy := 0
	for _, b := range p.history {
		if b {
			busy++
		}
	}
	return float64(busy) / float64(len(p.history))
}

// Recommend implements Policy. It stays with the current algorithm until
// the window is full, then maps the busy fraction to the recommended
// topology.
func (p *ThresholdPolicy) Recommend(current string) string {
	if !p.filled && len(p.history) < p.Window {
		return current
	}
	f := p.busyFraction()
	switch {
	case f >= p.HighContention:
		return "martin"
	case f <= p.LowContention:
		return "suzuki"
	default:
		return "naimi"
	}
}

// compile-time interface check
var _ Policy = (*ThresholdPolicy)(nil)

// GapPolicy is the switching policy for composed deployments, where the
// inter token holder is logically in the critical section the whole time
// its cluster owns the right. It measures, with an injected clock (the
// simulator's virtual clock or wall time), the delay between acquiring the
// token and the first remote request for it:
//
//   - short gaps: other clusters are already waiting — low parallelism —
//     ring (Martin);
//   - long gaps (or none): requests are rare — high parallelism —
//     broadcast (Suzuki);
//   - in between: tree (Naimi-Trehel).
//
// Gap thresholds are expressed as multiples of the critical section
// duration α so the policy is workload-scale free.
type GapPolicy struct {
	// Clock returns the current time; required.
	Clock func() time.Duration
	// Alpha is the application's critical section duration.
	Alpha time.Duration
	// ShortGap (default 3): gaps below ShortGap*Alpha vote for Martin.
	ShortGap float64
	// LongGap (default 30): gaps above LongGap*Alpha vote for Suzuki.
	LongGap float64
	// Window is how many recent gaps are considered (default 4).
	Window int
	// Patience is how many consecutive consultations must agree on the
	// same different algorithm before a switch is recommended (default
	// 3) — hysteresis against flapping at regime boundaries, where each
	// switch costs a prepare/vote/commit round.
	Patience int

	grantAt    time.Duration
	holding    bool
	sawPending bool
	gaps       []time.Duration
	lastRec    string
	streak     int
}

// NewGapPolicy returns a GapPolicy with default thresholds.
func NewGapPolicy(clock func() time.Duration, alpha time.Duration) *GapPolicy {
	return &GapPolicy{Clock: clock, Alpha: alpha, ShortGap: 3, LongGap: 30, Window: 4, Patience: 3}
}

// ObserveGrant implements Policy.
func (p *GapPolicy) ObserveGrant() {
	p.grantAt = p.Clock()
	p.holding = true
	p.sawPending = false
}

// ObservePending implements Policy: the first pending per holding period
// contributes one gap sample.
func (p *GapPolicy) ObservePending() {
	if !p.holding || p.sawPending {
		return
	}
	p.sawPending = true
	p.push(p.Clock() - p.grantAt)
}

// ObserveRelease implements Policy. A release without any observed pending
// still means a request arrived (it is what triggers handoff), so it
// contributes the gap up to now.
func (p *GapPolicy) ObserveRelease(busy bool) {
	if p.holding && !p.sawPending {
		p.push(p.Clock() - p.grantAt)
	}
	p.holding = false
}

func (p *GapPolicy) push(gap time.Duration) {
	if p.Window <= 0 {
		p.Window = 4
	}
	p.gaps = append(p.gaps, gap)
	if len(p.gaps) > p.Window {
		p.gaps = p.gaps[1:]
	}
}

// Recommend implements Policy using the mean of the recent gaps, with
// Patience consecutive agreements required before recommending a change.
func (p *GapPolicy) Recommend(current string) string {
	if len(p.gaps) < p.Window {
		return current
	}
	var sum time.Duration
	for _, g := range p.gaps {
		sum += g
	}
	mean := float64(sum) / float64(len(p.gaps))
	alpha := float64(p.Alpha)
	var rec string
	switch {
	case mean <= p.ShortGap*alpha:
		rec = "martin"
	case mean >= p.LongGap*alpha:
		rec = "suzuki"
	default:
		rec = "naimi"
	}
	if rec == current {
		p.lastRec, p.streak = "", 0
		return current
	}
	if rec == p.lastRec {
		p.streak++
	} else {
		p.lastRec, p.streak = rec, 1
	}
	if p.streak < p.Patience {
		return current
	}
	p.lastRec, p.streak = "", 0
	return rec
}

// compile-time interface check
var _ Policy = (*GapPolicy)(nil)
