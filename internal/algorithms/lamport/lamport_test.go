package lamport

import (
	"testing"

	"gridmutex/internal/algorithms/algotest"
	"gridmutex/internal/mutex"
)

func build(t *testing.T, w *algotest.World, n int) []mutex.Instance {
	t.Helper()
	members := make([]mutex.ID, n)
	for i := range members {
		members[i] = mutex.ID(i)
	}
	insts, err := w.Build(New, members, 0, nil)
	if err != nil {
		t.Fatal(err)
	}
	return insts
}

// TestExactMessageComplexity: every critical section costs exactly 3(N-1)
// messages — request, reply and release broadcast rounds.
func TestExactMessageComplexity(t *testing.T) {
	w := algotest.NewWorld()
	m := build(t, w, 5)
	m[2].Request()
	if err := w.Drain(50); err != nil {
		t.Fatal(err)
	}
	if m[2].State() != mutex.InCS {
		t.Fatalf("state %v after reply round", m[2].State())
	}
	// 4 requests + 4 replies so far.
	if got := len(w.Log()); got != 8 {
		t.Fatalf("%d messages before release, want 8: %v", got, w.Kinds())
	}
	m[2].Release()
	if err := w.Drain(50); err != nil {
		t.Fatal(err)
	}
	if got := len(w.Log()); got != 12 {
		t.Fatalf("%d messages per CS, want 3(N-1)=12: %v", got, w.Kinds())
	}
}

// TestTimestampOrder: concurrent requests are served in (timestamp, id)
// order, so the lower ID wins a clock tie.
func TestTimestampOrder(t *testing.T) {
	w := algotest.NewWorld()
	order := []mutex.ID{}
	members := []mutex.ID{0, 1, 2}
	insts, err := w.Build(New, members, 0, func(self mutex.ID) mutex.Callbacks {
		return mutex.Callbacks{OnAcquire: func() { order = append(order, self) }}
	})
	if err != nil {
		t.Fatal(err)
	}
	// All three request with clock 1, before any delivery.
	insts[2].Request()
	insts[0].Request()
	insts[1].Request()
	for {
		if err := w.Drain(500); err != nil {
			t.Fatal(err)
		}
		progressed := false
		for _, in := range insts {
			if in.State() == mutex.InCS {
				in.Release()
				progressed = true
			}
		}
		if !progressed {
			break
		}
	}
	want := []mutex.ID{0, 1, 2}
	if len(order) != 3 {
		t.Fatalf("grant order %v", order)
	}
	for i := range want {
		if order[i] != want[i] {
			t.Fatalf("grant order %v, want ID tie-break %v", order, want)
		}
	}
}

// TestQueueHeadAloneInsufficient: heading the queue without later
// timestamps from everyone must not admit entry (the classic condition
// (b)).
func TestQueueHeadAloneInsufficient(t *testing.T) {
	w := algotest.NewWorld()
	m := build(t, w, 3)
	m[0].Request()
	// Deliver 0's requests to 1 and 2, but hold their replies back.
	w.DeliverAt(0)
	w.DeliverAt(0)
	if m[0].State() != mutex.Req {
		t.Fatalf("entered CS without replies: %v", m[0].State())
	}
	// Release one reply: still insufficient.
	w.DeliverNext()
	if m[0].State() != mutex.Req {
		t.Fatal("entered CS with one of two replies")
	}
	w.DeliverNext()
	w.Settle()
	if m[0].State() != mutex.InCS {
		t.Fatal("did not enter CS once all replies arrived")
	}
}

func TestOnPendingWhileInCS(t *testing.T) {
	w := algotest.NewWorld()
	pendings := 0
	members := []mutex.ID{0, 1}
	insts, err := w.Build(New, members, 0, func(self mutex.ID) mutex.Callbacks {
		if self != 0 {
			return mutex.Callbacks{}
		}
		return mutex.Callbacks{OnPending: func() { pendings++ }}
	})
	if err != nil {
		t.Fatal(err)
	}
	insts[0].Request()
	if err := w.Drain(20); err != nil {
		t.Fatal(err)
	}
	insts[1].Request()
	if err := w.Drain(20); err != nil {
		t.Fatal(err)
	}
	if pendings != 1 {
		t.Fatalf("OnPending fired %d times, want 1", pendings)
	}
	if !insts[0].HasPending() {
		t.Fatal("occupant does not report the queued request")
	}
	insts[0].Release()
	if err := w.Drain(20); err != nil {
		t.Fatal(err)
	}
	if insts[1].State() != mutex.InCS {
		t.Fatal("queued requester not admitted after release")
	}
	if insts[0].HasPending() {
		t.Fatal("HasPending true outside the critical section")
	}
}

func TestSingleMember(t *testing.T) {
	w := algotest.NewWorld()
	m := build(t, w, 1)
	m[0].Request()
	w.Settle()
	if m[0].State() != mutex.InCS {
		t.Fatal("single member did not self-admit")
	}
	m[0].Release()
	if len(w.Log()) != 0 {
		t.Fatal("single member sent messages")
	}
}

func TestProtocolPanics(t *testing.T) {
	cases := []struct {
		name string
		run  func(m []mutex.Instance)
	}{
		{"double request", func(m []mutex.Instance) { m[1].Request(); m[1].Request() }},
		{"release without CS", func(m []mutex.Instance) { m[1].Release() }},
		{"release without request", func(m []mutex.Instance) { m[1].Deliver(0, Release{Clock: 1}) }},
		{"non-member", func(m []mutex.Instance) { m[1].Deliver(99, Request{Clock: 1}) }},
		{"unexpected message", func(m []mutex.Instance) { m[1].Deliver(0, bogus{}) }},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			w := algotest.NewWorld()
			m := build(t, w, 3)
			defer func() {
				if recover() == nil {
					t.Errorf("%s did not panic", tc.name)
				}
			}()
			tc.run(m)
		})
	}
}

type bogus struct{}

func (bogus) Kind() string { return "bogus" }
func (bogus) Size() int    { return 0 }

func TestNewRejectsInvalidConfig(t *testing.T) {
	if _, err := New(mutex.Config{}); err == nil {
		t.Fatal("New accepted an invalid config")
	}
}
