// Package lamport implements Lamport's mutual exclusion algorithm
// (Lamport 1978), the permission-based ancestor the paper's introduction
// cites: requests are stamped with logical clocks, broadcast, and served
// in global timestamp order.
//
// Every participant keeps a queue of outstanding requests ordered by
// (timestamp, id). A requester broadcasts its timestamped request and
// enters the critical section once (a) its request heads its local queue
// and (b) it has received a message with a later timestamp from every
// other participant (replies guarantee this). Releases are broadcast and
// remove the corresponding queue entry everywhere. Each critical section
// costs exactly 3(N-1) messages.
//
// The algorithm requires FIFO channels (a release must not overtake its
// own request); every fabric in this repository provides per-link FIFO.
// As with Ricart-Agrawala, Config.Holder is accepted but ignored — there
// is no token to place.
package lamport

import (
	"fmt"
	"sort"

	"gridmutex/internal/mutex"
)

// Request announces a critical section request with the sender's clock.
type Request struct {
	Clock int64
}

// Kind implements mutex.Message.
func (Request) Kind() string { return "lamport.request" }

// Size implements mutex.Message.
func (Request) Size() int { return 24 }

// Reply acknowledges a request with a later timestamp.
type Reply struct {
	Clock int64
}

// Kind implements mutex.Message.
func (Reply) Kind() string { return "lamport.reply" }

// Size implements mutex.Message.
func (Reply) Size() int { return 24 }

// Release withdraws the sender's request from every queue.
type Release struct {
	Clock int64
}

// Kind implements mutex.Message.
func (Release) Kind() string { return "lamport.release" }

// Size implements mutex.Message.
func (Release) Size() int { return 24 }

// entry is one queued request.
type entry struct {
	ts int64
	id mutex.ID
}

// before implements the (timestamp, id) total order.
func (e entry) before(o entry) bool {
	if e.ts != o.ts {
		return e.ts < o.ts
	}
	return e.id < o.id
}

type node struct {
	cfg      mutex.Config
	clock    int64
	state    mutex.State
	myTS     int64
	queue    []entry
	lastSeen []int64 // highest clock received from each member index
}

// New builds a Lamport instance.
func New(cfg mutex.Config) (mutex.Instance, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	return &node{cfg: cfg, lastSeen: make([]int64, len(cfg.Members))}, nil
}

func (n *node) Request() {
	if n.state != mutex.NoReq {
		panic(fmt.Sprintf("lamport: Request in state %v", n.state))
	}
	n.state = mutex.Req
	n.clock++
	n.myTS = n.clock
	n.insert(entry{ts: n.myTS, id: n.cfg.Self})
	req := Request{Clock: n.myTS}
	for _, m := range n.cfg.Members {
		if m != n.cfg.Self {
			n.cfg.Env.Send(m, req)
		}
	}
	n.maybeEnter()
}

func (n *node) Release() {
	if n.state != mutex.InCS {
		panic(fmt.Sprintf("lamport: Release in state %v", n.state))
	}
	n.state = mutex.NoReq
	n.remove(n.cfg.Self)
	n.clock++
	rel := Release{Clock: n.clock}
	for _, m := range n.cfg.Members {
		if m != n.cfg.Self {
			n.cfg.Env.Send(m, rel)
		}
	}
}

func (n *node) Deliver(from mutex.ID, m mutex.Message) {
	fi := n.cfg.Index(from)
	if fi < 0 {
		panic(fmt.Sprintf("lamport: message from non-member %d", from))
	}
	switch msg := m.(type) {
	case Request:
		n.observe(fi, msg.Clock)
		n.insert(entry{ts: msg.Clock, id: from})
		if n.state == mutex.InCS {
			n.firePending()
		}
		n.clock++
		n.cfg.Env.Send(from, Reply{Clock: n.clock})
	case Reply:
		n.observe(fi, msg.Clock)
	case Release:
		n.observe(fi, msg.Clock)
		n.remove(from)
	default:
		panic(fmt.Sprintf("lamport: unexpected message %T", m))
	}
	n.maybeEnter()
}

// observe advances the clock and the per-sender watermark.
func (n *node) observe(fi int, ts int64) {
	if ts > n.clock {
		n.clock = ts
	}
	if ts > n.lastSeen[fi] {
		n.lastSeen[fi] = ts
	}
}

func (n *node) insert(e entry) {
	i := sort.Search(len(n.queue), func(i int) bool { return e.before(n.queue[i]) })
	n.queue = append(n.queue, entry{})
	copy(n.queue[i+1:], n.queue[i:])
	n.queue[i] = e
}

func (n *node) remove(id mutex.ID) {
	for i, e := range n.queue {
		if e.id == id {
			n.queue = append(n.queue[:i], n.queue[i+1:]...)
			return
		}
	}
	panic(fmt.Sprintf("lamport: release for %d with no queued request", id))
}

// maybeEnter applies Lamport's entry condition.
func (n *node) maybeEnter() {
	if n.state != mutex.Req {
		return
	}
	if len(n.queue) == 0 || n.queue[0].id != n.cfg.Self {
		return
	}
	for i, m := range n.cfg.Members {
		if m == n.cfg.Self {
			continue
		}
		if n.lastSeen[i] <= n.myTS {
			return
		}
	}
	n.state = mutex.InCS
	if f := n.cfg.Callbacks.OnAcquire; f != nil {
		n.cfg.Env.Local(f)
	}
}

func (n *node) firePending() {
	if f := n.cfg.Callbacks.OnPending; f != nil {
		n.cfg.Env.Local(f)
	}
}

// HasPending reports queued requests that this participant's occupancy of
// the critical section is blocking. Outside the critical section other
// queue entries are not blocked by this node, so it reports false.
func (n *node) HasPending() bool {
	if n.state != mutex.InCS {
		return false
	}
	for _, e := range n.queue {
		if e.id != n.cfg.Self {
			return true
		}
	}
	return false
}

// HoldsToken reports whether this participant could enter (or is in) the
// critical section without communicating; like all permission-based
// algorithms, only the occupant qualifies.
func (n *node) HoldsToken() bool { return n.state == mutex.InCS }

func (n *node) State() mutex.State { return n.state }
