package suzukikasami

import (
	"math/rand"
	"testing"
	"testing/quick"

	"gridmutex/internal/algorithms/algotest"
	"gridmutex/internal/mutex"
)

func build(t *testing.T, w *algotest.World, n int, holder mutex.ID) []mutex.Instance {
	t.Helper()
	members := make([]mutex.ID, n)
	for i := range members {
		members[i] = mutex.ID(i)
	}
	insts, err := w.Build(New, members, holder, nil)
	if err != nil {
		t.Fatal(err)
	}
	return insts
}

func TestRequestBroadcastsToAllOthers(t *testing.T) {
	w := algotest.NewWorld()
	m := build(t, w, 5, 0)
	m[3].Request()
	inflight := w.Inflight()
	if len(inflight) != 4 {
		t.Fatalf("broadcast %d messages, want 4", len(inflight))
	}
	targets := map[mutex.ID]bool{}
	for _, s := range inflight {
		if s.From != 3 {
			t.Errorf("request from %d, want 3", s.From)
		}
		if s.Msg.(Request).Seq != 1 {
			t.Errorf("first request seq = %d, want 1", s.Msg.(Request).Seq)
		}
		targets[s.To] = true
	}
	for _, id := range []mutex.ID{0, 1, 2, 4} {
		if !targets[id] {
			t.Errorf("no request sent to %d", id)
		}
	}
	if err := w.Drain(20); err != nil {
		t.Fatal(err)
	}
	if m[3].State() != mutex.InCS {
		t.Fatal("requester not in CS")
	}
}

// TestNMessagesPerCS: a CS whose token must move costs exactly N messages
// (N-1 requests plus the token), per section 2.3.
func TestNMessagesPerCS(t *testing.T) {
	w := algotest.NewWorld()
	m := build(t, w, 7, 0)
	m[4].Request()
	if err := w.Drain(30); err != nil {
		t.Fatal(err)
	}
	if got := len(w.Log()); got != 7 {
		t.Fatalf("%d messages, want 7: %v", got, w.Kinds())
	}
	_ = m
}

// TestSparseStateMaterialization pins the grid-scale memory bound: RN/LN
// entries exist only for members that ever requested (plus the releasing
// holder's own LN entry), never for the full membership — while the token
// on the wire still carries the dense LN array with its modeled O(N) size.
func TestSparseStateMaterialization(t *testing.T) {
	w := algotest.NewWorld()
	const members = 50
	m := build(t, w, members, 0)
	for _, requester := range []int{7, 23, 7} {
		m[requester].Request()
		if err := w.Drain(400); err != nil {
			t.Fatal(err)
		}
		if m[requester].State() != mutex.InCS {
			t.Fatalf("node %d did not enter CS", requester)
		}
		m[requester].Release()
		if err := w.Drain(400); err != nil {
			t.Fatal(err)
		}
	}
	var lastToken Token
	found := false
	for _, s := range w.Log() {
		if tok, ok := s.Msg.(Token); ok {
			lastToken, found = tok, true
		}
	}
	if !found {
		t.Fatal("no token transfer observed")
	}
	if len(lastToken.LN) != members {
		t.Fatalf("wire token LN has %d entries, want the dense %d", len(lastToken.LN), members)
	}
	if got, want := lastToken.Size(), 16+8*members+4*len(lastToken.Q); got != want {
		t.Fatalf("token Size() = %d, want %d", got, want)
	}
	// Requesters were {7, 23}; releases happened at 7 and 23, and the
	// initial holder 0 granted without releasing. RN can materialize only
	// for requesters; LN only for requesters and releasing holders.
	for i := range m {
		nd := m[i].(*node)
		if got := nd.rn.materialized(); got > 2 {
			t.Errorf("node %d materialized %d RN entries, want <= 2 of %d members", i, got, members)
		}
		if got := nd.ln.materialized(); got > 3 {
			t.Errorf("node %d materialized %d LN entries, want <= 3 of %d members", i, got, members)
		}
	}
}

func TestHolderReentryIsFree(t *testing.T) {
	w := algotest.NewWorld()
	m := build(t, w, 4, 2)
	m[2].Request()
	w.Settle()
	if m[2].State() != mutex.InCS {
		t.Fatal("holder could not re-enter")
	}
	m[2].Release()
	if len(w.Log()) != 0 {
		t.Fatalf("holder re-entry sent %d messages", len(w.Log()))
	}
}

// TestQueueIsIndexOrdered documents the arrival-blind queue construction
// the paper's section 4.6 blames for Suzuki's weaker regularity: requests
// are appended in member-index order at release, not in arrival order.
func TestQueueIsIndexOrdered(t *testing.T) {
	w := algotest.NewWorld()
	order := []mutex.ID{}
	members := []mutex.ID{0, 1, 2, 3}
	insts, err := w.Build(New, members, 0, func(self mutex.ID) mutex.Callbacks {
		return mutex.Callbacks{OnAcquire: func() { order = append(order, self) }}
	})
	if err != nil {
		t.Fatal(err)
	}
	insts[0].Request()
	w.Settle() // holder enters CS
	// Requests arrive in order 3, then 1, while 0 is inside the CS.
	insts[3].Request()
	insts[1].Request()
	for w.DeliverNext() {
	}
	insts[0].Release()
	if err := w.Drain(40); err != nil {
		t.Fatal(err)
	}
	insts[1].Release()
	if err := w.Drain(40); err != nil {
		t.Fatal(err)
	}
	insts[3].Release()
	if err := w.Drain(40); err != nil {
		t.Fatal(err)
	}
	want := []mutex.ID{0, 1, 3} // index order, despite 3 asking first
	if len(order) != len(want) {
		t.Fatalf("grant order %v, want %v", order, want)
	}
	for i := range want {
		if order[i] != want[i] {
			t.Fatalf("grant order %v, want %v (arrival-blind index scan)", order, want)
		}
	}
}

// TestStaleRequestAtHolder replays an already-satisfied request at the
// holder and checks it is not granted twice.
func TestStaleRequestAtHolder(t *testing.T) {
	w := algotest.NewWorld()
	m := build(t, w, 3, 0)
	m[1].Request()
	if err := w.Drain(20); err != nil {
		t.Fatal(err)
	}
	m[1].Release()
	if err := w.Drain(20); err != nil {
		t.Fatal(err)
	}
	// Token is idle at node 1 now. Replay node 1's satisfied request at
	// node 0 — node 0 has no token, must only update RN.
	before := len(w.Log())
	m[0].Deliver(1, Request{Seq: 1})
	if err := w.Drain(20); err != nil {
		t.Fatal(err)
	}
	if got := len(w.Log()) - before; got != 0 {
		t.Fatalf("stale request caused %d messages", got)
	}
	// And replay at the idle holder itself: seq 1 == LN[1], not LN[1]+1,
	// so no grant.
	m[1].Deliver(0, Request{Seq: 0})
	if err := w.Drain(20); err != nil {
		t.Fatal(err)
	}
	if !m[1].HoldsToken() {
		t.Fatal("idle holder gave the token away on a stale request")
	}
}

func TestOnPendingWhileInCS(t *testing.T) {
	w := algotest.NewWorld()
	pendings := 0
	members := []mutex.ID{0, 1}
	insts, err := w.Build(New, members, 0, func(self mutex.ID) mutex.Callbacks {
		if self != 0 {
			return mutex.Callbacks{}
		}
		return mutex.Callbacks{OnPending: func() { pendings++ }}
	})
	if err != nil {
		t.Fatal(err)
	}
	insts[0].Request()
	w.Settle()
	insts[1].Request()
	if err := w.Drain(10); err != nil {
		t.Fatal(err)
	}
	if pendings != 1 {
		t.Fatalf("OnPending fired %d times, want 1", pendings)
	}
	if !insts[0].HasPending() {
		t.Fatal("holder does not report pending request")
	}
}

func TestTokenSizeGrowsWithMembership(t *testing.T) {
	small := Token{LN: make([]int64, 4)}
	big := Token{LN: make([]int64, 64)}
	if small.Size() >= big.Size() {
		t.Errorf("token size does not grow with N: %d vs %d", small.Size(), big.Size())
	}
	queued := Token{LN: make([]int64, 4), Q: []mutex.ID{1, 2, 3}}
	if queued.Size() <= small.Size() {
		t.Error("queue entries do not contribute to token size")
	}
}

func TestTokenStateTransfersWithToken(t *testing.T) {
	w := algotest.NewWorld()
	m := build(t, w, 3, 0)
	// 1 and 2 request while 0 is in CS; on release, 1 gets the token
	// with 2 still queued, and 1's release grants 2 without any new
	// request.
	m[0].Request()
	w.Settle()
	m[1].Request()
	m[2].Request()
	for w.DeliverNext() {
	}
	m[0].Release()
	if err := w.Drain(30); err != nil {
		t.Fatal(err)
	}
	if m[1].State() != mutex.InCS {
		t.Fatalf("node 1 state %v", m[1].State())
	}
	if !m[1].HasPending() {
		t.Fatal("node 1 should see node 2 pending via the token queue")
	}
	before := len(w.Log())
	m[1].Release()
	if err := w.Drain(30); err != nil {
		t.Fatal(err)
	}
	if m[2].State() != mutex.InCS {
		t.Fatal("queued node 2 not served")
	}
	var tokens, others int
	for _, s := range w.Log()[before:] {
		if s.Msg.Kind() == "suzuki.token" {
			tokens++
		} else {
			others++
		}
	}
	if tokens != 1 || others != 0 {
		t.Fatalf("handover cost %d tokens + %d other messages, want 1 + 0", tokens, others)
	}
}

func TestProtocolPanics(t *testing.T) {
	cases := []struct {
		name string
		run  func(m []mutex.Instance)
	}{
		{"double request", func(m []mutex.Instance) { m[1].Request(); m[1].Request() }},
		{"release without CS", func(m []mutex.Instance) { m[1].Release() }},
		{"token while not requesting", func(m []mutex.Instance) {
			m[1].Deliver(0, Token{LN: make([]int64, 3)})
		}},
		{"request from non-member", func(m []mutex.Instance) { m[0].Deliver(99, Request{Seq: 1}) }},
		{"unexpected message", func(m []mutex.Instance) { m[1].Deliver(0, bogus{}) }},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			w := algotest.NewWorld()
			m := build(t, w, 3, 0)
			defer func() {
				if recover() == nil {
					t.Errorf("%s did not panic", tc.name)
				}
			}()
			tc.run(m)
		})
	}
}

type bogus struct{}

func (bogus) Kind() string { return "bogus" }
func (bogus) Size() int    { return 0 }

func TestNewRejectsInvalidConfig(t *testing.T) {
	if _, err := New(mutex.Config{}); err == nil {
		t.Fatal("New accepted an invalid config")
	}
}

// TestPropertyTokenStateInvariant: after any random execution drains, the
// token's LN array equals every node's RN view (all requests satisfied),
// the token queue is empty, and exactly one node holds the token.
func TestPropertyTokenStateInvariant(t *testing.T) {
	f := func(seed int64, rawN, rawOps uint8) bool {
		n := int(rawN%6) + 2
		ops := int(rawOps%25) + 5
		rng := rand.New(rand.NewSource(seed))
		w := algotest.NewWorld()
		members := make([]mutex.ID, n)
		for i := range members {
			members[i] = mutex.ID(i)
		}
		insts, err := w.Build(New, members, 0, nil)
		if err != nil {
			return false
		}
		for k := 0; k < ops; k++ {
			switch rng.Intn(3) {
			case 0:
				i := rng.Intn(n)
				if insts[i].State() == mutex.NoReq {
					insts[i].Request()
				}
			case 1:
				i := rng.Intn(n)
				if insts[i].State() == mutex.InCS {
					insts[i].Release()
				}
			default:
				if fl := w.Inflight(); len(fl) > 0 {
					w.DeliverAt(rng.Intn(len(fl)))
				}
			}
		}
		for round := 0; round < 10*n*ops+100; round++ {
			if err := w.Drain(100000); err != nil {
				return false
			}
			progressed := false
			for _, inst := range insts {
				if inst.State() == mutex.InCS {
					inst.Release()
					progressed = true
				}
			}
			if !progressed && len(w.Inflight()) == 0 {
				break
			}
		}
		holders := 0
		var holder *node
		for _, inst := range insts {
			nd := inst.(*node)
			if nd.State() != mutex.NoReq {
				return false
			}
			if nd.HoldsToken() {
				holders++
				holder = nd
			}
		}
		if holders != 1 || holder == nil {
			return false
		}
		if len(holder.queue) != 0 || holder.HasPending() {
			return false
		}
		// Every node's RN must match the token's LN: no satisfied
		// request is remembered as outstanding anywhere.
		for _, inst := range insts {
			nd := inst.(*node)
			for i := range members {
				if nd.rn.get(int32(i)) != holder.ln.get(int32(i)) {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}
