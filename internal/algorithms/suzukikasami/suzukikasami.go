// Package suzukikasami implements the Suzuki-Kasami broadcast-based token
// algorithm (Suzuki, Kasami 1985), as described in section 2.3 of the
// paper.
//
// A requester broadcasts its request, stamped with a per-node sequence
// number, to the N-1 other participants; every node tracks the highest
// request number it has seen from each node in RN. The token carries LN —
// the sequence number of the most recently satisfied request of every node
// — and a queue Q of nodes with granted-pending requests. A critical
// section costs N messages (N-1 requests plus one token transfer), and both
// the request and the grant take a single message delay.
//
// Requests are appended to Q in member-index order, ignoring arrival times;
// this is the fairness weakness the paper observes in section 4.6.
package suzukikasami

import (
	"fmt"

	"gridmutex/internal/mutex"
)

// Request announces the Seq-th critical section invocation of its sender.
type Request struct {
	Seq int64
}

// Kind implements mutex.Message.
func (Request) Kind() string { return "suzuki.request" }

// Size implements mutex.Message: header, node id and sequence number.
func (Request) Size() int { return 24 }

// Token carries the satisfied-request array LN (indexed like
// Config.Members) and the queue Q of pending grantees.
type Token struct {
	LN []int64
	Q  []mutex.ID
}

// Kind implements mutex.Message.
func (Token) Kind() string { return "suzuki.token" }

// Size implements mutex.Message: header plus 8 bytes per LN entry plus 4
// per queued node — the O(N) payload the paper's scalability discussion
// refers to.
func (t Token) Size() int { return 16 + 8*len(t.LN) + 4*len(t.Q) }

type node struct {
	cfg   mutex.Config
	self  int // index of Self in Members
	rn    []int64
	state mutex.State
	token bool
	ln    []int64    // meaningful only while token is true
	queue []mutex.ID // meaningful only while token is true
}

// New builds a Suzuki-Kasami instance.
func New(cfg mutex.Config) (mutex.Instance, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	n := &node{
		cfg:  cfg,
		self: cfg.Index(cfg.Self),
		rn:   make([]int64, len(cfg.Members)),
	}
	if cfg.Self == cfg.Holder {
		n.token = true
		n.ln = make([]int64, len(cfg.Members))
	}
	return n, nil
}

func (n *node) Request() {
	if n.state != mutex.NoReq {
		panic(fmt.Sprintf("suzukikasami: Request in state %v", n.state))
	}
	n.state = mutex.Req
	if n.token {
		n.enterCS()
		return
	}
	n.rn[n.self]++
	req := Request{Seq: n.rn[n.self]}
	for _, m := range n.cfg.Members {
		if m != n.cfg.Self {
			n.cfg.Env.Send(m, req)
		}
	}
}

func (n *node) Release() {
	if n.state != mutex.InCS {
		panic(fmt.Sprintf("suzukikasami: Release in state %v", n.state))
	}
	n.state = mutex.NoReq
	n.ln[n.self] = n.rn[n.self]
	// Append every node with an outstanding request that is not queued
	// yet, scanning in member-index order (deliberately arrival-blind).
	for i, m := range n.cfg.Members {
		if n.rn[i] == n.ln[i]+1 && !n.queued(m) {
			n.queue = append(n.queue, m)
		}
	}
	if len(n.queue) > 0 {
		head := n.queue[0]
		n.queue = n.queue[1:]
		n.sendToken(head)
	}
}

func (n *node) queued(id mutex.ID) bool {
	for _, q := range n.queue {
		if q == id {
			return true
		}
	}
	return false
}

func (n *node) sendToken(to mutex.ID) {
	t := Token{
		LN: append([]int64(nil), n.ln...),
		Q:  append([]mutex.ID(nil), n.queue...),
	}
	n.token = false
	n.ln = nil
	n.queue = nil
	n.cfg.Env.Send(to, t)
}

func (n *node) Deliver(from mutex.ID, m mutex.Message) {
	switch msg := m.(type) {
	case Request:
		n.onRequest(from, msg.Seq)
	case Token:
		n.onToken(msg)
	default:
		panic(fmt.Sprintf("suzukikasami: unexpected message %T", m))
	}
}

func (n *node) onRequest(from mutex.ID, seq int64) {
	fi := n.cfg.Index(from)
	if fi < 0 {
		panic(fmt.Sprintf("suzukikasami: request from non-member %d", from))
	}
	if seq > n.rn[fi] {
		n.rn[fi] = seq
	}
	if !n.token {
		return
	}
	if n.state == mutex.NoReq && n.rn[fi] == n.ln[fi]+1 {
		// Idle holder with a fresh outstanding request: grant now.
		n.sendToken(from)
		return
	}
	if n.state == mutex.InCS && n.rn[fi] == n.ln[fi]+1 {
		n.firePending()
	}
}

func (n *node) onToken(t Token) {
	if n.state != mutex.Req {
		panic(fmt.Sprintf("suzukikasami: token received in state %v", n.state))
	}
	n.token = true
	n.ln = append([]int64(nil), t.LN...)
	n.queue = append([]mutex.ID(nil), t.Q...)
	n.enterCS()
}

func (n *node) enterCS() {
	n.state = mutex.InCS
	if f := n.cfg.Callbacks.OnAcquire; f != nil {
		n.cfg.Env.Local(f)
	}
}

func (n *node) firePending() {
	if f := n.cfg.Callbacks.OnPending; f != nil {
		n.cfg.Env.Local(f)
	}
}

func (n *node) HasPending() bool {
	if !n.token {
		return false
	}
	if len(n.queue) > 0 {
		return true
	}
	for i := range n.cfg.Members {
		if i != n.self && n.rn[i] > n.ln[i] {
			return true
		}
	}
	return false
}

func (n *node) HoldsToken() bool   { return n.token }
func (n *node) State() mutex.State { return n.state }
