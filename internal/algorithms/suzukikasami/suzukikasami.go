// Package suzukikasami implements the Suzuki-Kasami broadcast-based token
// algorithm (Suzuki, Kasami 1985), as described in section 2.3 of the
// paper.
//
// A requester broadcasts its request, stamped with a per-node sequence
// number, to the N-1 other participants; every node tracks the highest
// request number it has seen from each node in RN. The token carries LN —
// the sequence number of the most recently satisfied request of every node
// — and a queue Q of nodes with granted-pending requests. A critical
// section costs N messages (N-1 requests plus one token transfer), and both
// the request and the grant take a single message delay.
//
// Requests are appended to Q in member-index order, ignoring arrival times;
// this is the fairness weakness the paper observes in section 4.6.
//
// The in-memory RN/LN vectors are sparse: entries materialize only for
// members that have ever requested, so a node's state is O(requesters
// heard from) instead of O(N) — at grid scale the dense vectors are the
// token-state memory wall (N processes × N entries). The token on the
// wire still carries the dense LN array the 1985 algorithm defines, with
// identical contents and the same modeled O(N) Size; only the resident
// representation is factored. Iteration over sparse entries always walks
// a sorted index list, never the map, so outcomes stay independent of
// Go's randomized map order.
package suzukikasami

import (
	"fmt"

	"gridmutex/internal/mutex"
)

// Request announces the Seq-th critical section invocation of its sender.
type Request struct {
	Seq int64
}

// Kind implements mutex.Message.
func (Request) Kind() string { return "suzuki.request" }

// Size implements mutex.Message: header, node id and sequence number.
func (Request) Size() int { return 24 }

// Token carries the satisfied-request array LN (indexed like
// Config.Members) and the queue Q of pending grantees.
type Token struct {
	LN []int64
	Q  []mutex.ID
}

// Kind implements mutex.Message.
func (Token) Kind() string { return "suzuki.token" }

// Size implements mutex.Message: header plus 8 bytes per LN entry plus 4
// per queued node — the O(N) payload the paper's scalability discussion
// refers to.
func (t Token) Size() int { return 16 + 8*len(t.LN) + 4*len(t.Q) }

// seqVec is a sparse member-indexed sequence vector: the map materializes
// an entry only for members whose value has ever been set, and the sorted
// index slice provides deterministic member-index-order iteration — code
// must range over active, never over the map, so no simulation outcome
// depends on Go's randomized map order. Both RN and LN start as all-zero
// vectors of which only ever-requesting members deviate, so a node's
// footprint is O(requesters it has heard from), not O(N): the token-state
// memory wall at grid scale (DESIGN.md §14).
type seqVec struct {
	seq    map[int32]int64
	active []int32 // sorted member indexes with materialized entries
}

// get returns the value at member index i (zero when unmaterialized).
func (v *seqVec) get(i int32) int64 { return v.seq[i] }

// set stores the value at member index i, materializing the entry.
func (v *seqVec) set(i int32, x int64) {
	if v.seq == nil {
		v.seq = make(map[int32]int64, 4)
	}
	if _, ok := v.seq[i]; !ok {
		v.insert(i)
	}
	v.seq[i] = x
}

// insert adds i to the sorted active list (binary search + shift; the
// list grows once per member that ever requests, never on steady state).
func (v *seqVec) insert(i int32) {
	lo, hi := 0, len(v.active)
	for lo < hi {
		mid := (lo + hi) / 2
		if v.active[mid] < i {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	v.active = append(v.active, 0)
	copy(v.active[lo+1:], v.active[lo:])
	v.active[lo] = i
}

// materialized returns the number of sparse entries (tests assert the
// bound: never more than the members that ever requested, plus self).
func (v *seqVec) materialized() int { return len(v.active) }

// reset drops all entries, returning the vector to all-zero.
func (v *seqVec) reset() {
	v.seq = nil
	v.active = nil
}

type node struct {
	cfg   mutex.Config
	self  int32 // index of Self in Members
	rn    seqVec
	state mutex.State
	token bool
	ln    seqVec     // meaningful only while token is true
	queue []mutex.ID // meaningful only while token is true
}

// New builds a Suzuki-Kasami instance.
func New(cfg mutex.Config) (mutex.Instance, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	n := &node{
		cfg:  cfg,
		self: int32(cfg.Index(cfg.Self)),
	}
	if cfg.Self == cfg.Holder {
		n.token = true
	}
	return n, nil
}

func (n *node) Request() {
	if n.state != mutex.NoReq {
		panic(fmt.Sprintf("suzukikasami: Request in state %v", n.state))
	}
	n.state = mutex.Req
	if n.token {
		n.enterCS()
		return
	}
	seq := n.rn.get(n.self) + 1
	n.rn.set(n.self, seq)
	req := Request{Seq: seq}
	for _, m := range n.cfg.Members {
		if m != n.cfg.Self {
			n.cfg.Env.Send(m, req)
		}
	}
}

func (n *node) Release() {
	if n.state != mutex.InCS {
		panic(fmt.Sprintf("suzukikasami: Release in state %v", n.state))
	}
	n.state = mutex.NoReq
	n.ln.set(n.self, n.rn.get(n.self))
	// Append every node with an outstanding request that is not queued
	// yet, scanning in member-index order (deliberately arrival-blind).
	// Only members with a materialized RN or LN entry can satisfy
	// rn == ln+1 — both are zero for everyone else — so merging the two
	// sorted active lists visits exactly the candidates, in the same
	// member order the dense scan used.
	ra, la := n.rn.active, n.ln.active
	i, j := 0, 0
	for i < len(ra) || j < len(la) {
		var mi int32
		switch {
		case j >= len(la) || (i < len(ra) && ra[i] < la[j]):
			mi = ra[i]
			i++
		case i >= len(ra) || la[j] < ra[i]:
			mi = la[j]
			j++
		default:
			mi = ra[i]
			i++
			j++
		}
		if m := n.cfg.Members[mi]; n.rn.get(mi) == n.ln.get(mi)+1 && !n.queued(m) {
			n.queue = append(n.queue, m)
		}
	}
	if len(n.queue) > 0 {
		head := n.queue[0]
		n.queue = n.queue[1:]
		n.sendToken(head)
	}
}

func (n *node) queued(id mutex.ID) bool {
	for _, q := range n.queue {
		if q == id {
			return true
		}
	}
	return false
}

func (n *node) sendToken(to mutex.ID) {
	// The wire token carries the dense LN array — the algorithm's
	// intrinsic O(N) payload, which Size() models and the live codec
	// encodes — materialized here from the sparse state. Its contents are
	// identical to what a dense implementation would send: zeros for
	// members that never requested.
	ln := make([]int64, len(n.cfg.Members))
	for _, i := range n.ln.active {
		ln[i] = n.ln.get(i)
	}
	t := Token{
		LN: ln,
		Q:  append([]mutex.ID(nil), n.queue...),
	}
	n.token = false
	n.ln.reset()
	n.queue = nil
	n.cfg.Env.Send(to, t)
}

func (n *node) Deliver(from mutex.ID, m mutex.Message) {
	switch msg := m.(type) {
	case Request:
		n.onRequest(from, msg.Seq)
	case Token:
		n.onToken(msg)
	default:
		panic(fmt.Sprintf("suzukikasami: unexpected message %T", m))
	}
}

func (n *node) onRequest(from mutex.ID, seq int64) {
	fi := int32(n.cfg.Index(from))
	if fi < 0 {
		panic(fmt.Sprintf("suzukikasami: request from non-member %d", from))
	}
	if seq > n.rn.get(fi) {
		n.rn.set(fi, seq)
	}
	if !n.token {
		return
	}
	if n.state == mutex.NoReq && n.rn.get(fi) == n.ln.get(fi)+1 {
		// Idle holder with a fresh outstanding request: grant now.
		n.sendToken(from)
		return
	}
	if n.state == mutex.InCS && n.rn.get(fi) == n.ln.get(fi)+1 {
		n.firePending()
	}
}

func (n *node) onToken(t Token) {
	if n.state != mutex.Req {
		panic(fmt.Sprintf("suzukikasami: token received in state %v", n.state))
	}
	n.token = true
	n.ln.reset()
	for i, x := range t.LN {
		if x != 0 {
			n.ln.set(int32(i), x)
		}
	}
	n.queue = append([]mutex.ID(nil), t.Q...)
	n.enterCS()
}

func (n *node) enterCS() {
	n.state = mutex.InCS
	if f := n.cfg.Callbacks.OnAcquire; f != nil {
		n.cfg.Env.Local(f)
	}
}

func (n *node) firePending() {
	if f := n.cfg.Callbacks.OnPending; f != nil {
		n.cfg.Env.Local(f)
	}
}

func (n *node) HasPending() bool {
	if !n.token {
		return false
	}
	if len(n.queue) > 0 {
		return true
	}
	// rn > ln needs rn > 0, so only members with a materialized RN entry
	// can have an outstanding request.
	for _, i := range n.rn.active {
		if i != n.self && n.rn.get(i) > n.ln.get(i) {
			return true
		}
	}
	return false
}

func (n *node) HoldsToken() bool   { return n.token }
func (n *node) State() mutex.State { return n.state }
