// Package algorithms is the registry of the mutual exclusion algorithms
// available to the composition layer, keyed by the short names used
// throughout the paper ("martin", "naimi", "suzuki") plus the extra
// plug-ins this repository adds ("raymond", "central", and the
// permission-based "ricart-agrawala" and "lamport").
package algorithms

import (
	"fmt"
	"sort"

	"gridmutex/internal/algorithms/central"
	"gridmutex/internal/algorithms/lamport"
	"gridmutex/internal/algorithms/naimitrehel"
	"gridmutex/internal/algorithms/raymond"
	"gridmutex/internal/algorithms/ricartagrawala"
	"gridmutex/internal/algorithms/ring"
	"gridmutex/internal/algorithms/suzukikasami"
	"gridmutex/internal/mutex"
)

// factories maps algorithm names to constructors. Aliases map the authors'
// names onto the same factories as the paper's shorthand.
var factories = map[string]mutex.Factory{
	"martin":          ring.New,
	"ring":            ring.New,
	"naimi":           naimitrehel.New,
	"naimi-trehel":    naimitrehel.New,
	"suzuki":          suzukikasami.New,
	"suzuki-kasami":   suzukikasami.New,
	"raymond":         raymond.New,
	"central":         central.New,
	"ricart-agrawala": ricartagrawala.New,
	"ra":              ricartagrawala.New,
	"lamport":         lamport.New,
}

// canonical lists one name per distinct algorithm, in a stable order.
var canonical = []string{"martin", "naimi", "suzuki", "raymond", "central", "ricart-agrawala", "lamport"}

// permissionBased marks the algorithms with no circulating token.
var permissionBased = map[string]bool{
	"ricart-agrawala": true,
	"ra":              true,
	"lamport":         true,
}

// TokenBased reports whether the named algorithm circulates a token (as
// opposed to collecting permissions). Unknown names report true.
func TokenBased(name string) bool { return !permissionBased[name] }

// Names returns the canonical algorithm names, sorted.
func Names() []string {
	out := append([]string(nil), canonical...)
	sort.Strings(out)
	return out
}

// Factory returns the constructor registered under name.
func Factory(name string) (mutex.Factory, error) {
	f, ok := factories[name]
	if !ok {
		return nil, fmt.Errorf("algorithms: unknown algorithm %q (have %v)", name, Names())
	}
	return f, nil
}

// New builds an instance of the named algorithm.
func New(name string, cfg mutex.Config) (mutex.Instance, error) {
	f, err := Factory(name)
	if err != nil {
		return nil, err
	}
	return f(cfg)
}
