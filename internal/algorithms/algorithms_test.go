package algorithms

import (
	"math"
	"testing"
	"testing/quick"
	"time"

	"gridmutex/internal/algorithms/algotest"
	"gridmutex/internal/mutex"
)

func TestNames(t *testing.T) {
	names := Names()
	if len(names) != 7 {
		t.Fatalf("Names() = %v, want 7 algorithms", names)
	}
	for _, n := range names {
		if _, err := Factory(n); err != nil {
			t.Errorf("canonical name %q not constructible: %v", n, err)
		}
	}
}

func TestAliases(t *testing.T) {
	for _, alias := range []string{"ring", "naimi-trehel", "suzuki-kasami", "ra"} {
		if _, err := Factory(alias); err != nil {
			t.Errorf("alias %q rejected: %v", alias, err)
		}
	}
}

func TestUnknownAlgorithm(t *testing.T) {
	if _, err := Factory("maekawa"); err == nil {
		t.Fatal("Factory accepted an unknown name")
	}
	if _, err := New("nope", mutex.Config{}); err == nil {
		t.Fatal("New accepted an unknown name")
	}
}

func TestNewRejectsBadConfig(t *testing.T) {
	for _, name := range Names() {
		if _, err := New(name, mutex.Config{}); err == nil {
			t.Errorf("%s: accepted an empty config", name)
		}
	}
}

// factoryFor returns a mutex.Factory for the named algorithm, failing the
// test on registry errors.
func factoryFor(t *testing.T, name string) mutex.Factory {
	t.Helper()
	f, err := Factory(name)
	if err != nil {
		t.Fatal(err)
	}
	return f
}

// TestConformance runs every algorithm through the shared safety/liveness
// driver under several workload shapes.
func TestConformance(t *testing.T) {
	shapes := map[string]algotest.Workload{
		"default": algotest.DefaultWorkload(),
		"high-contention": {
			Nodes: 10, RequestsPerNode: 30, CS: time.Millisecond,
			MaxThink: 0, Seed: 2, LocalRTT: 2 * time.Millisecond,
		},
		"low-contention": {
			Nodes: 10, RequestsPerNode: 10, CS: time.Millisecond,
			MaxThink: 200 * time.Millisecond, Seed: 3, LocalRTT: 2 * time.Millisecond,
		},
		"two-nodes": {
			Nodes: 2, RequestsPerNode: 50, CS: time.Millisecond,
			MaxThink: 3 * time.Millisecond, Seed: 4, LocalRTT: 2 * time.Millisecond,
		},
		"single-node": {
			Nodes: 1, RequestsPerNode: 20, CS: time.Millisecond,
			MaxThink: time.Millisecond, Seed: 5, LocalRTT: 2 * time.Millisecond,
		},
		"wide": {
			Nodes: 40, RequestsPerNode: 5, CS: time.Millisecond,
			MaxThink: 20 * time.Millisecond, Seed: 6, LocalRTT: 2 * time.Millisecond,
		},
	}
	for _, name := range Names() {
		factory := factoryFor(t, name)
		for shapeName, w := range shapes {
			w.PermissionBased = !TokenBased(name)
			t.Run(name+"/"+shapeName, func(t *testing.T) {
				algotest.Run(factory, w, t.Fatalf)
			})
		}
	}
}

// TestPropertyRandomWorkloads drives every algorithm with
// randomly-generated workloads; any safety or liveness violation fails.
func TestPropertyRandomWorkloads(t *testing.T) {
	for _, name := range Names() {
		factory := factoryFor(t, name)
		t.Run(name, func(t *testing.T) {
			f := func(seed int64, rawNodes, rawReqs uint8, rawThink uint16) bool {
				w := algotest.Workload{
					Nodes:           int(rawNodes%12) + 1,
					RequestsPerNode: int(rawReqs%15) + 1,
					CS:              time.Millisecond,
					MaxThink:        time.Duration(rawThink%30) * time.Millisecond,
					Seed:            seed,
					LocalRTT:        2 * time.Millisecond,
					PermissionBased: !TokenBased(name),
				}
				var c algotest.Collector
				algotest.Run(factory, w, c.Fail)
				if len(c.Failures) > 0 {
					t.Logf("workload %+v failed: %v", w, c.Failures[0])
					return false
				}
				return true
			}
			if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
				t.Fatal(err)
			}
		})
	}
}

// TestDeterminism: identical seeds must yield identical CS orders and
// message counts for every algorithm.
func TestDeterminism(t *testing.T) {
	for _, name := range Names() {
		factory := factoryFor(t, name)
		t.Run(name, func(t *testing.T) {
			w := algotest.DefaultWorkload()
			w.PermissionBased = !TokenBased(name)
			a := algotest.Run(factory, w, t.Fatalf)
			b := algotest.Run(factory, w, t.Fatalf)
			if a.Counters.Messages != b.Counters.Messages {
				t.Fatalf("message counts differ: %d vs %d", a.Counters.Messages, b.Counters.Messages)
			}
			if len(a.Order) != len(b.Order) {
				t.Fatalf("order lengths differ")
			}
			for i := range a.Order {
				if a.Order[i] != b.Order[i] {
					t.Fatalf("CS order diverges at %d: %d vs %d", i, a.Order[i], b.Order[i])
				}
			}
		})
	}
}

// TestMessageComplexity checks the per-CS message costs against the
// complexities of section 2 of the paper.
func TestMessageComplexity(t *testing.T) {
	// The paper's per-CS complexities hold for isolated invocations, so
	// make the mean idle time enormous relative to ring traversal: with
	// 16 nodes and 1 ms hops, requests overlap only rarely.
	w := algotest.Workload{
		Nodes: 16, RequestsPerNode: 8, CS: time.Millisecond,
		MaxThink: 5 * time.Second, Seed: 11, LocalRTT: 2 * time.Millisecond,
	}
	n := float64(w.Nodes)

	perCS := func(name string) float64 {
		res := algotest.Run(factoryFor(t, name), w, t.Fatalf)
		return res.MessagesPerCS()
	}

	// Suzuki-Kasami: exactly N messages per CS when the token moves
	// (N-1 requests + 1 token); fewer only when the holder re-enters.
	if got := perCS("suzuki"); got < n-2 || got > n {
		t.Errorf("suzuki: %.2f messages/CS, want ~%v", got, n)
	}
	// Martin: 2(x+1) with x uniform over ring distance: ~N on average.
	if got := perCS("martin"); got < 0.5*n || got > 1.5*n {
		t.Errorf("martin: %.2f messages/CS, want ~N=%v", got, n)
	}
	// Naimi-Trehel: O(log N) — allow generous constants but require
	// clearly sublinear behaviour.
	if got, bound := perCS("naimi"), 3*math.Log2(n); got > bound {
		t.Errorf("naimi: %.2f messages/CS, want O(log N) <= %.2f", got, bound)
	}
	// Raymond: O(log N) on the balanced tree (request+privilege per
	// edge of the path).
	if got, bound := perCS("raymond"), 4*math.Log2(n); got > bound {
		t.Errorf("raymond: %.2f messages/CS, want O(log N) <= %.2f", got, bound)
	}
	// Central: request, grant, release, plus at most one nudge per CS
	// when requests queue.
	if got := perCS("central"); got > 4 {
		t.Errorf("central: %.2f messages/CS, want <= 4", got)
	}
}

// TestSuzukiTokenDominatesBytes: Suzuki's token is O(N) bytes, so its byte
// traffic per CS must grow faster with N than Naimi's.
func TestByteAccountingGrowsWithN(t *testing.T) {
	bytesPerCS := func(name string, nodes int) float64 {
		w := algotest.Workload{
			Nodes: nodes, RequestsPerNode: 5, CS: time.Millisecond,
			MaxThink: 100 * time.Millisecond, Seed: 21, LocalRTT: 2 * time.Millisecond,
		}
		res := algotest.Run(factoryFor(t, name), w, t.Fatalf)
		return float64(res.Counters.Bytes) / float64(res.Grants)
	}
	suzukiGrowth := bytesPerCS("suzuki", 40) / bytesPerCS("suzuki", 10)
	naimiGrowth := bytesPerCS("naimi", 40) / bytesPerCS("naimi", 10)
	if suzukiGrowth <= naimiGrowth {
		t.Errorf("suzuki byte growth %.2fx not above naimi %.2fx", suzukiGrowth, naimiGrowth)
	}
}
