package algorithms

import (
	"testing"
	"time"

	"gridmutex/internal/algorithms/algotest"
)

// benchWorkload is a fixed medium-contention run used to compare the
// algorithms' simulation cost.
func benchWorkload() algotest.Workload {
	return algotest.Workload{
		Nodes: 16, RequestsPerNode: 50, CS: time.Millisecond,
		MaxThink: 5 * time.Millisecond, Seed: 1, LocalRTT: 2 * time.Millisecond,
	}
}

// BenchmarkAlgorithm measures full simulated runs per algorithm: the
// b.N loop re-executes 800 critical sections each iteration, and the
// reported metric is messages per CS.
func BenchmarkAlgorithm(b *testing.B) {
	for _, name := range Names() {
		name := name
		b.Run(name, func(b *testing.B) {
			f, err := Factory(name)
			if err != nil {
				b.Fatal(err)
			}
			w := benchWorkload()
			w.PermissionBased = !TokenBased(name)
			var res algotest.Result
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				var c algotest.Collector
				res = algotest.Run(f, w, c.Fail)
				if len(c.Failures) > 0 {
					b.Fatal(c.Failures[0])
				}
			}
			b.ReportMetric(res.MessagesPerCS(), "msgs/CS")
			b.ReportMetric(float64(res.Counters.Bytes)/float64(res.Grants), "bytes/CS")
		})
	}
}
