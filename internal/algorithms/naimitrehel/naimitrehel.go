// Package naimitrehel implements the Naimi-Trehel token- and tree-based
// mutual exclusion algorithm (Naimi, Trehel, Arnold 1996), as described in
// section 2.2 of the paper.
//
// Each node keeps two pointers:
//
//   - father ("last"): the probable owner of the token. The father pointers
//     form a dynamic logical tree whose root is the last node that will
//     obtain the token among the current requesters; requests are forwarded
//     along father pointers and reverse the path as they go.
//   - next: the distributed queue of unsatisfied requests. When a root that
//     cannot grant immediately receives a request, it records the requester
//     in next and hands the token over on release.
//
// The average number of messages per critical section is O(log N); granting
// the token always takes a single message.
package naimitrehel

import (
	"fmt"

	"gridmutex/internal/mutex"
)

// Request is the message forwarded along the father tree; Origin is the
// requesting node on whose behalf it travels.
type Request struct {
	Origin mutex.ID
}

// Kind implements mutex.Message.
func (Request) Kind() string { return "naimi.request" }

// Size implements mutex.Message: header plus one node identifier.
func (Request) Size() int { return 20 }

// Token is the token-granting message.
type Token struct{}

// Kind implements mutex.Message.
func (Token) Kind() string { return "naimi.token" }

// Size implements mutex.Message.
func (Token) Size() int { return 16 }

type node struct {
	cfg    mutex.Config
	father mutex.ID // probable owner; None when this node is the root
	next   mutex.ID // next node to grant the token to; None if none
	token  bool
	state  mutex.State
}

// New builds a Naimi-Trehel instance.
func New(cfg mutex.Config) (mutex.Instance, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	n := &node{cfg: cfg, next: mutex.None}
	if cfg.Self == cfg.Holder {
		n.father = mutex.None // initial root holds the token idle
		n.token = true
	} else {
		n.father = cfg.Holder
	}
	return n, nil
}

func (n *node) Request() {
	if n.state != mutex.NoReq {
		panic(fmt.Sprintf("naimitrehel: Request in state %v", n.state))
	}
	n.state = mutex.Req
	if n.token {
		n.enterCS()
		return
	}
	// Ask the probable owner and become the new root.
	n.cfg.Env.Send(n.father, Request{Origin: n.cfg.Self})
	n.father = mutex.None
}

func (n *node) Release() {
	if n.state != mutex.InCS {
		panic(fmt.Sprintf("naimitrehel: Release in state %v", n.state))
	}
	n.state = mutex.NoReq
	if n.next != mutex.None {
		n.token = false
		n.cfg.Env.Send(n.next, Token{})
		n.next = mutex.None
	}
}

func (n *node) Deliver(from mutex.ID, m mutex.Message) {
	switch msg := m.(type) {
	case Request:
		n.onRequest(msg.Origin)
	case Token:
		n.onToken()
	default:
		panic(fmt.Sprintf("naimitrehel: unexpected message %T", m))
	}
}

func (n *node) onRequest(origin mutex.ID) {
	if n.father == mutex.None {
		// This node is the root: it either grants directly or queues
		// the requester behind itself.
		if n.state == mutex.NoReq {
			n.token = false
			n.cfg.Env.Send(origin, Token{})
		} else {
			if n.next != mutex.None {
				// A root queues at most one requester before the
				// path reversal below redirects later requests.
				panic("naimitrehel: second pending next at root")
			}
			n.next = origin
			if n.state == mutex.InCS {
				n.firePending()
			}
		}
	} else {
		n.cfg.Env.Send(n.father, Request{Origin: origin})
	}
	// Path reversal: the requester is the new probable owner.
	n.father = origin
}

func (n *node) onToken() {
	if n.state != mutex.Req {
		panic(fmt.Sprintf("naimitrehel: token received in state %v", n.state))
	}
	n.token = true
	n.enterCS()
}

func (n *node) enterCS() {
	n.state = mutex.InCS
	if f := n.cfg.Callbacks.OnAcquire; f != nil {
		n.cfg.Env.Local(f)
	}
}

func (n *node) firePending() {
	if f := n.cfg.Callbacks.OnPending; f != nil {
		n.cfg.Env.Local(f)
	}
}

func (n *node) HasPending() bool   { return n.next != mutex.None }
func (n *node) HoldsToken() bool   { return n.token }
func (n *node) State() mutex.State { return n.state }

// Father exposes the current probable-owner pointer for tests and tracing.
func (n *node) Father() mutex.ID { return n.father }

// Next exposes the next pointer for tests and tracing.
func (n *node) Next() mutex.ID { return n.next }
