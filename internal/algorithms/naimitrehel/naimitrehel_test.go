package naimitrehel

import (
	"math/rand"
	"testing"
	"testing/quick"

	"gridmutex/internal/algorithms/algotest"
	"gridmutex/internal/mutex"
)

func ids(ns ...int) []mutex.ID {
	out := make([]mutex.ID, len(ns))
	for i, n := range ns {
		out[i] = mutex.ID(n)
	}
	return out
}

func build(t *testing.T, w *algotest.World, members []mutex.ID, holder mutex.ID) map[mutex.ID]mutex.Instance {
	t.Helper()
	insts, err := w.Build(New, members, holder, nil)
	if err != nil {
		t.Fatal(err)
	}
	out := make(map[mutex.ID]mutex.Instance, len(insts))
	for i, id := range members {
		out[id] = insts[i]
	}
	return out
}

func TestInitialState(t *testing.T) {
	w := algotest.NewWorld()
	m := build(t, w, ids(0, 1, 2), 0)
	if !m[0].HoldsToken() {
		t.Error("holder does not hold the token")
	}
	if m[1].HoldsToken() || m[2].HoldsToken() {
		t.Error("non-holder holds the token")
	}
	for id, inst := range m {
		if inst.State() != mutex.NoReq {
			t.Errorf("node %d starts in %v", id, inst.State())
		}
		if inst.HasPending() {
			t.Errorf("node %d starts with pending requests", id)
		}
	}
	if f := m[1].(*node).Father(); f != 0 {
		t.Errorf("node 1 father = %d, want 0", f)
	}
	if f := m[0].(*node).Father(); f != mutex.None {
		t.Errorf("root father = %d, want None", f)
	}
}

func TestDirectGrantFromIdleRoot(t *testing.T) {
	w := algotest.NewWorld()
	m := build(t, w, ids(0, 1), 0)
	m[1].Request()
	if got := w.Inflight(); len(got) != 1 || got[0].To != 0 || got[0].Msg.Kind() != "naimi.request" {
		t.Fatalf("unexpected traffic after Request: %+v", got)
	}
	if err := w.Drain(10); err != nil {
		t.Fatal(err)
	}
	if m[1].State() != mutex.InCS || !m[1].HoldsToken() {
		t.Fatalf("requester state %v, token %v", m[1].State(), m[1].HoldsToken())
	}
	if m[0].HoldsToken() {
		t.Error("old root still holds the token")
	}
	// Path reversal: the old root now believes the requester owns it.
	if f := m[0].(*node).Father(); f != 1 {
		t.Errorf("old root father = %d, want 1", f)
	}
	// Exactly 2 messages: one request, one token.
	if kinds := w.Kinds(); len(kinds) != 2 || kinds[0] != "naimi.request" || kinds[1] != "naimi.token" {
		t.Errorf("message kinds = %v", kinds)
	}
}

func TestRootInCSQueuesNext(t *testing.T) {
	w := algotest.NewWorld()
	acquired := map[mutex.ID]int{}
	pendings := 0
	insts, err := w.Build(New, ids(0, 1), 0, func(self mutex.ID) mutex.Callbacks {
		return mutex.Callbacks{
			OnAcquire: func() { acquired[self]++ },
			OnPending: func() { pendings++ },
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	root, other := insts[0], insts[1]

	root.Request() // immediate: root holds token idle
	w.Settle()
	if acquired[0] != 1 || root.State() != mutex.InCS {
		t.Fatalf("root did not enter CS immediately (acquired=%v state=%v)", acquired[0], root.State())
	}
	other.Request()
	if err := w.Drain(10); err != nil {
		t.Fatal(err)
	}
	if pendings != 1 {
		t.Fatalf("OnPending fired %d times, want 1", pendings)
	}
	if !root.HasPending() {
		t.Fatal("root does not report the queued next")
	}
	if nx := root.(*node).Next(); nx != 1 {
		t.Fatalf("root next = %d, want 1", nx)
	}
	if other.State() != mutex.Req {
		t.Fatalf("waiter state = %v, want REQ", other.State())
	}
	root.Release()
	if err := w.Drain(10); err != nil {
		t.Fatal(err)
	}
	if acquired[1] != 1 || other.State() != mutex.InCS {
		t.Fatal("queued requester did not get the token after release")
	}
	if root.HasPending() {
		t.Error("root still reports pending after handing the token over")
	}
}

func TestRequestForwardingAndPathReversal(t *testing.T) {
	w := algotest.NewWorld()
	m := build(t, w, ids(0, 1, 2), 0)
	// 1 requests, then (before anything is delivered) 2 requests. Both
	// requests point at 0 — the probable owner both know.
	m[1].Request()
	m[2].Request()
	inflight := w.Inflight()
	if len(inflight) != 2 || inflight[0].To != 0 || inflight[1].To != 0 {
		t.Fatalf("both requests should target node 0: %+v", inflight)
	}
	// Deliver 1's request: 0 is idle root, grants; father(0)=1.
	w.DeliverAt(0)
	// Deliver 2's request to 0: 0 is no longer root, forwards to 1;
	// father(0)=2.
	w.DeliverAt(0)
	if f := m[0].(*node).Father(); f != 2 {
		t.Fatalf("node 0 father = %d, want 2 after reversal", f)
	}
	if err := w.Drain(20); err != nil {
		t.Fatal(err)
	}
	// 1 holds the token in CS with next=2.
	if m[1].State() != mutex.InCS {
		t.Fatalf("node 1 state %v, want CS", m[1].State())
	}
	if nx := m[1].(*node).Next(); nx != 2 {
		t.Fatalf("node 1 next = %d, want 2", nx)
	}
	m[1].Release()
	if err := w.Drain(20); err != nil {
		t.Fatal(err)
	}
	if m[2].State() != mutex.InCS {
		t.Fatalf("node 2 state %v, want CS", m[2].State())
	}
}

func TestTokenGrantIsSingleMessage(t *testing.T) {
	// T_token = T in Naimi-Trehel (section 2.2): releasing to next is one
	// message regardless of tree shape.
	w := algotest.NewWorld()
	m := build(t, w, ids(0, 1, 2, 3, 4), 0)
	m[3].Request()
	if err := w.Drain(20); err != nil {
		t.Fatal(err)
	}
	before := len(w.Log())
	m[4].Request()
	if err := w.Drain(20); err != nil {
		t.Fatal(err)
	}
	m[3].Release()
	if err := w.Drain(20); err != nil {
		t.Fatal(err)
	}
	var tokens int
	for _, s := range w.Log()[before:] {
		if s.Msg.Kind() == "naimi.token" {
			tokens++
		}
	}
	if tokens != 1 {
		t.Fatalf("granting took %d token messages, want 1", tokens)
	}
	if m[4].State() != mutex.InCS {
		t.Fatal("node 4 not in CS")
	}
}

func TestProtocolPanics(t *testing.T) {
	cases := []struct {
		name string
		run  func(w *algotest.World, m map[mutex.ID]mutex.Instance)
	}{
		{"double request", func(w *algotest.World, m map[mutex.ID]mutex.Instance) {
			m[1].Request()
			m[1].Request()
		}},
		{"release without CS", func(w *algotest.World, m map[mutex.ID]mutex.Instance) {
			m[1].Release()
		}},
		{"unexpected message type", func(w *algotest.World, m map[mutex.ID]mutex.Instance) {
			m[1].Deliver(0, bogus{})
		}},
		{"token while not requesting", func(w *algotest.World, m map[mutex.ID]mutex.Instance) {
			m[1].Deliver(0, Token{})
		}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			w := algotest.NewWorld()
			m := build(t, w, ids(0, 1, 2), 0)
			defer func() {
				if recover() == nil {
					t.Errorf("%s did not panic", tc.name)
				}
			}()
			tc.run(w, m)
		})
	}
}

type bogus struct{}

func (bogus) Kind() string { return "bogus" }
func (bogus) Size() int    { return 0 }

func TestMessageMetadata(t *testing.T) {
	if (Request{}).Kind() != "naimi.request" || (Request{}).Size() <= 0 {
		t.Error("bad Request metadata")
	}
	if (Token{}).Kind() != "naimi.token" || (Token{}).Size() <= 0 {
		t.Error("bad Token metadata")
	}
}

func TestNewRejectsInvalidConfig(t *testing.T) {
	if _, err := New(mutex.Config{}); err == nil {
		t.Fatal("New accepted an invalid config")
	}
}

// TestPropertyTreeInvariant: after any random execution drains, the father
// pointers form a tree rooted at the token holder — every node's father
// chain reaches the unique root (father == None) without cycles, and the
// root holds the token.
func TestPropertyTreeInvariant(t *testing.T) {
	f := func(seed int64, rawN uint8, rawOps uint8) bool {
		n := int(rawN%8) + 2
		ops := int(rawOps%30) + 5
		rng := rand.New(rand.NewSource(seed))

		w := algotest.NewWorld()
		members := make([]mutex.ID, n)
		for i := range members {
			members[i] = mutex.ID(i)
		}
		insts, err := w.Build(New, members, 0, nil)
		if err != nil {
			return false
		}
		// Random ops: request on an idle node, release on an in-CS
		// node, or deliver a pending message.
		for k := 0; k < ops; k++ {
			switch rng.Intn(3) {
			case 0:
				i := rng.Intn(n)
				if insts[i].State() == mutex.NoReq {
					insts[i].Request()
				}
			case 1:
				i := rng.Intn(n)
				if insts[i].State() == mutex.InCS {
					insts[i].Release()
				}
			default:
				if fl := w.Inflight(); len(fl) > 0 {
					w.DeliverAt(rng.Intn(len(fl)))
				}
			}
		}
		// Finish every outstanding cycle: drain, release whoever is in
		// CS, repeat until quiescent.
		for round := 0; round < 10*n*ops+100; round++ {
			if err := w.Drain(100000); err != nil {
				return false
			}
			progressed := false
			for _, inst := range insts {
				if inst.State() == mutex.InCS {
					inst.Release()
					progressed = true
				}
			}
			if !progressed && len(w.Inflight()) == 0 {
				break
			}
		}
		// Invariant check.
		roots := 0
		var root mutex.ID = mutex.None
		for i, inst := range insts {
			nd := inst.(*node)
			if nd.State() != mutex.NoReq {
				return false // someone never finished
			}
			if nd.Father() == mutex.None {
				roots++
				root = members[i]
			}
		}
		if roots != 1 {
			return false
		}
		for _, inst := range insts {
			if inst.(*node).Father() == mutex.None != inst.HoldsToken() {
				return false // root and holder must coincide at rest
			}
		}
		if !insts[root].HoldsToken() {
			return false
		}
		// Father chains reach the root without cycles.
		for i := range insts {
			cur := mutex.ID(i)
			for steps := 0; cur != root; steps++ {
				if steps > n {
					return false // cycle
				}
				cur = insts[cur].(*node).Father()
				if cur == mutex.None {
					// Only the root may have a nil father, and the
					// loop stops at the root before reading it.
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}
