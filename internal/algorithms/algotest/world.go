package algotest

import (
	"fmt"

	"gridmutex/internal/mutex"
)

// Sent is a recorded message transmission.
type Sent struct {
	From, To mutex.ID
	Msg      mutex.Message
}

// World is a hand-stepped execution environment for white-box protocol
// tests: every Send is queued instead of delivered, and tests choose when
// (and in which order) messages and local callbacks run. This makes
// adversarial interleavings — crossing messages, delayed grants —
// constructible deterministically.
type World struct {
	instances map[mutex.ID]mutex.Handler
	inflight  []Sent
	locals    []func()
	log       []Sent // every send ever made, for assertions
	down      map[mutex.ID]bool
	isolated  mutex.ID // single-node partition cut, valid while cut is true
	cut       bool
}

// World is a mutex.Fabric, so deployment builders (core.BuildComposed and
// friends) can be wired directly onto it and hand-stepped.
var _ mutex.Fabric = (*World)(nil)

// NewWorld returns an empty world.
func NewWorld() *World {
	return &World{instances: make(map[mutex.ID]mutex.Handler)}
}

// Env returns the mutex.Env to configure an instance with, bound to self.
func (w *World) Env(self mutex.ID) mutex.Env {
	return &worldEnv{w: w, self: self}
}

// Add registers a message handler — usually a constructed algorithm
// instance, for compositions a core.Process — under its ID.
func (w *World) Add(id mutex.ID, h mutex.Handler) {
	if _, dup := w.instances[id]; dup {
		panic(fmt.Sprintf("algotest: instance %d added twice", id))
	}
	w.instances[id] = h
}

// Endpoint implements mutex.Fabric.
func (w *World) Endpoint(id mutex.ID) mutex.Env { return w.Env(id) }

// RegisterAt implements mutex.Fabric. The world has no notion of placement
// or latency, so the topology node is ignored.
func (w *World) RegisterAt(id mutex.ID, _ int, h mutex.Handler) { w.Add(id, h) }

// Build constructs and registers an instance for every listed member with
// the shared holder, returning them in member order.
func (w *World) Build(factory mutex.Factory, members []mutex.ID, holder mutex.ID, cb func(self mutex.ID) mutex.Callbacks) ([]mutex.Instance, error) {
	out := make([]mutex.Instance, len(members))
	for i, id := range members {
		var cbs mutex.Callbacks
		if cb != nil {
			cbs = cb(id)
		}
		inst, err := factory(mutex.Config{
			Self: id, Members: members, Holder: holder,
			Env: w.Env(id), Callbacks: cbs,
		})
		if err != nil {
			return nil, err
		}
		w.Add(id, inst)
		out[i] = inst
	}
	return out, nil
}

type worldEnv struct {
	w    *World
	self mutex.ID
}

func (e *worldEnv) Send(to mutex.ID, m mutex.Message) {
	if e.w.down[e.self] {
		return // a crashed process emits nothing
	}
	s := Sent{From: e.self, To: to, Msg: m}
	e.w.inflight = append(e.w.inflight, s)
	e.w.log = append(e.w.log, s)
}

func (e *worldEnv) Local(f func()) { e.w.locals = append(e.w.locals, f) }

// Settle runs queued local callbacks (including ones queued while
// settling) and returns how many ran.
func (w *World) Settle() int {
	n := 0
	for len(w.locals) > 0 {
		f := w.locals[0]
		w.locals = w.locals[1:]
		f()
		n++
	}
	return n
}

// Inflight returns the currently undelivered messages in send order.
func (w *World) Inflight() []Sent { return append([]Sent(nil), w.inflight...) }

// Log returns every message sent since the world was created.
func (w *World) Log() []Sent { return append([]Sent(nil), w.log...) }

// DeliverNext pops the oldest in-flight message and delivers it, settling
// local callbacks first and afterwards. It reports whether a message was
// delivered.
func (w *World) DeliverNext() bool {
	w.Settle()
	if len(w.inflight) == 0 {
		return false
	}
	s := w.inflight[0]
	w.inflight = w.inflight[1:]
	w.deliver(s)
	w.Settle()
	return true
}

// DeliverAt pops the in-flight message at index i (into the current
// Inflight order) and delivers it — the hook for building reorderings.
func (w *World) DeliverAt(i int) {
	w.Settle()
	s := w.inflight[i]
	w.inflight = append(w.inflight[:i], w.inflight[i+1:]...)
	w.deliver(s)
	w.Settle()
}

// DuplicateAt re-enqueues a copy of the in-flight message at index i (into
// the current Inflight order) at the tail of the queue without delivering
// it: the original still arrives first on its link, the copy arrives again
// later — the duplication fault of an at-least-once network. The copy is
// not recorded in the log (it is not a send).
func (w *World) DuplicateAt(i int) {
	w.Settle()
	w.inflight = append(w.inflight, w.inflight[i])
}

// DropAt removes the in-flight message at index i without delivering it —
// the loss fault of a best-effort network.
func (w *World) DropAt(i int) {
	w.Settle()
	w.inflight = append(w.inflight[:i], w.inflight[i+1:]...)
}

// PendingLocals reports how many queued local callbacks have not yet run.
func (w *World) PendingLocals() int { return len(w.locals) }

// Crash fail-stops a process: in-flight messages addressed to it are
// purged, future sends from it are suppressed, and late deliveries to it
// are discarded. Messages it already sent stay in flight — they are on
// the wire, exactly as in simnet's fail-stop model — so a token emitted
// just before the crash still arrives. There is no restart.
func (w *World) Crash(id mutex.ID) {
	if w.down == nil {
		w.down = make(map[mutex.ID]bool)
	}
	w.down[id] = true
	kept := w.inflight[:0]
	for _, s := range w.inflight {
		if s.To != id {
			kept = append(kept, s)
		}
	}
	w.inflight = kept
}

// Down reports whether a process has crashed.
func (w *World) Down(id mutex.ID) bool { return w.down[id] }

// Restart clears a process's crashed state: deliveries reach it again and
// its sends go out again. In-flight messages still addressed to it are
// purged — they were sent to the previous incarnation, and the recovery
// layer's epoch fence discards exactly those on rejoin (a pre-crash token
// grant must not land on an amnesiac instance). Like simnet, the world
// only restores connectivity — the amnesiac protocol state is the
// caller's business (see Replace).
func (w *World) Restart(id mutex.ID) {
	delete(w.down, id)
	kept := w.inflight[:0]
	for _, s := range w.inflight {
		if s.To != id {
			kept = append(kept, s)
		}
	}
	w.inflight = kept
}

// Replace swaps the handler registered under id — the restart hook: a
// revived process comes back with a freshly built (amnesiac) instance,
// not the state it crashed with.
func (w *World) Replace(id mutex.ID, h mutex.Handler) {
	if _, ok := w.instances[id]; !ok {
		panic(fmt.Sprintf("algotest: Replace of unregistered instance %d", id))
	}
	w.instances[id] = h
}

// PurgeInflight discards every in-flight message undelivered — the epoch
// fence: a resync epoch invalidates all traffic of the previous epoch.
func (w *World) PurgeInflight() { w.inflight = nil }

// Isolate cuts a single node off from everyone else: messages crossing
// the cut in either direction are discarded at delivery time (the
// in-flight queue is untouched — a message already on the wire dies only
// when it would arrive during the cut, exactly like simnet's
// delivery-time classification). One cut at a time.
func (w *World) Isolate(id mutex.ID) {
	w.isolated = id
	w.cut = true
}

// Heal removes the active cut; messages still in flight deliver normally.
func (w *World) Heal() { w.cut = false }

// Isolated returns the currently cut-off node, if any.
func (w *World) Isolated() (mutex.ID, bool) { return w.isolated, w.cut }

func (w *World) deliver(s Sent) {
	if w.down[s.To] {
		return // messages to a crashed process vanish
	}
	if w.cut && (s.From == w.isolated) != (s.To == w.isolated) {
		return // the link crosses the partition cut: delivery-time drop
	}
	inst, ok := w.instances[s.To]
	if !ok {
		panic(fmt.Sprintf("algotest: message %s to unknown instance %d", s.Msg.Kind(), s.To))
	}
	inst.Deliver(s.From, s.Msg)
}

// Drain delivers messages FIFO until nothing is in flight, with a step cap
// to catch livelocks.
func (w *World) Drain(cap int) error {
	for i := 0; ; i++ {
		if i > cap {
			return fmt.Errorf("algotest: still draining after %d deliveries", cap)
		}
		if !w.DeliverNext() {
			return nil
		}
	}
}

// Kinds summarizes the log as a list of message kind strings.
func (w *World) Kinds() []string {
	out := make([]string, len(w.log))
	for i, s := range w.log {
		out[i] = s.Msg.Kind()
	}
	return out
}
