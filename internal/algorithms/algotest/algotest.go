// Package algotest provides a reusable simulation driver for exercising any
// mutex.Instance implementation: it runs a set of application processes on
// the discrete-event simulator, continuously asserts the safety property
// (at most one process in the critical section) and checks liveness (every
// request is eventually granted).
package algotest

import (
	"fmt"
	"math/rand"
	"time"

	"gridmutex/internal/des"
	"gridmutex/internal/mutex"
	"gridmutex/internal/simnet"
	"gridmutex/internal/topology"
)

// Workload describes the synthetic application each node runs.
type Workload struct {
	// Nodes is the number of participants.
	Nodes int
	// RequestsPerNode is how many critical sections each node executes.
	RequestsPerNode int
	// CS is the critical section duration (α in the paper).
	CS time.Duration
	// MaxThink bounds the uniformly random idle time between a release
	// and the next request (related to β in the paper). Zero means
	// back-to-back requests.
	MaxThink time.Duration
	// Seed drives all randomness in the run.
	Seed int64
	// PermissionBased relaxes the quiescence check: permission-based
	// algorithms leave no token anywhere after the run.
	PermissionBased bool
	// LocalRTT is the round-trip latency between any two nodes.
	LocalRTT time.Duration
}

// DefaultWorkload is a medium-contention configuration that finishes fast.
func DefaultWorkload() Workload {
	return Workload{
		Nodes:           8,
		RequestsPerNode: 25,
		CS:              2 * time.Millisecond,
		MaxThink:        10 * time.Millisecond,
		Seed:            1,
		LocalRTT:        2 * time.Millisecond,
	}
}

// Result summarizes a completed run.
type Result struct {
	// Grants counts successful critical section entries (should equal
	// Nodes*RequestsPerNode).
	Grants int
	// Counters is the network traffic accounting.
	Counters simnet.Counters
	// VirtualTime is the instant the last event fired.
	VirtualTime des.Time
	// Order records the sequence of node IDs that entered the CS.
	Order []mutex.ID
}

// MessagesPerCS returns average messages sent per critical section entry.
func (r Result) MessagesPerCS() float64 {
	if r.Grants == 0 {
		return 0
	}
	return float64(r.Counters.Messages) / float64(r.Grants)
}

// proc is one application process driving one instance.
type proc struct {
	id        mutex.ID
	inst      mutex.Instance
	remaining int
}

// Run executes the workload against the algorithm built by factory and
// verifies safety and liveness, reporting any violation through fail
// (typically t.Fatalf or a collector). It returns the run's Result.
func Run(factory mutex.Factory, w Workload, fail func(format string, args ...any)) Result {
	sim := des.New()
	grid := topology.Single(w.Nodes, w.LocalRTT)
	net := simnet.New(sim, grid, simnet.Options{})
	rng := rand.New(rand.NewSource(w.Seed))

	inCS := mutex.None // safety monitor: who is in the CS right now
	res := Result{}
	procs := make([]*proc, w.Nodes)
	members := make([]mutex.ID, w.Nodes)
	for i := range members {
		members[i] = mutex.ID(i)
	}

	think := func() time.Duration {
		if w.MaxThink <= 0 {
			return 0
		}
		return time.Duration(rng.Int63n(int64(w.MaxThink)))
	}

	for i := 0; i < w.Nodes; i++ {
		p := &proc{id: mutex.ID(i), remaining: w.RequestsPerNode}
		env := net.Endpoint(p.id)
		inst, err := factory(mutex.Config{
			Self:    p.id,
			Members: members,
			Holder:  0,
			Env:     env,
			Callbacks: mutex.Callbacks{
				OnAcquire: func() {
					if inCS != mutex.None {
						fail("safety violation: node %d acquired while node %d is in CS (t=%v)", p.id, inCS, sim.Now())
						return
					}
					if p.inst.State() != mutex.InCS {
						fail("node %d: OnAcquire fired but State() = %v", p.id, p.inst.State())
					}
					if !p.inst.HoldsToken() {
						fail("node %d: in CS without holding the token", p.id)
					}
					inCS = p.id
					res.Grants++
					res.Order = append(res.Order, p.id)
					sim.After(w.CS, func() {
						inCS = mutex.None
						p.inst.Release()
						p.remaining--
						if p.remaining > 0 {
							sim.After(think(), p.inst.Request)
						}
					})
				},
			},
		})
		if err != nil {
			fail("factory: %v", err)
			return res
		}
		p.inst = inst
		procs[i] = p
		net.Register(p.id, simnet.HandlerFunc(inst.Deliver))
		sim.After(think(), inst.Request)
	}

	// Generous cap: a livelocked algorithm would spin forever otherwise.
	limit := uint64(w.Nodes*w.RequestsPerNode)*1000 + 100000
	if err := sim.RunCapped(limit); err != nil {
		fail("livelock suspected: %v", err)
	}

	for _, p := range procs {
		if p.remaining != 0 {
			fail("liveness violation: node %d still has %d requests outstanding", p.id, p.remaining)
		}
		if p.inst.State() != mutex.NoReq {
			fail("node %d finished in state %v", p.id, p.inst.State())
		}
	}
	if want := w.Nodes * w.RequestsPerNode; res.Grants != want {
		fail("granted %d critical sections, want %d", res.Grants, want)
	}
	holders := 0
	for _, p := range procs {
		if p.inst.HoldsToken() {
			holders++
		}
	}
	wantHolders := 1
	if w.PermissionBased {
		wantHolders = 0
	}
	if holders != wantHolders {
		fail("%d token holders at quiescence, want exactly %d", holders, wantHolders)
	}
	res.Counters = net.Counters()
	res.VirtualTime = sim.Now()
	return res
}

// FailFunc adapts a testing.TB-style fatal function; it exists so non-test
// callers (fuzzers, examples) can collect violations instead of aborting.
type FailFunc func(format string, args ...any)

// Collector accumulates failures as strings.
type Collector struct{ Failures []string }

// Fail records a formatted failure.
func (c *Collector) Fail(format string, args ...any) {
	c.Failures = append(c.Failures, fmt.Sprintf(format, args...))
}
