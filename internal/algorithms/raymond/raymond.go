// Package raymond implements Raymond's token-based mutual exclusion
// algorithm on a static spanning tree (Raymond 1989).
//
// It is not one of the three algorithms the paper evaluates, but it is the
// intra-group algorithm of Housni-Trehel's hybrid scheme discussed in the
// related-work section, and this repository includes it both as an
// additional plug-in for the composition layer and as an ablation baseline.
//
// Every node keeps a holder pointer toward the token along a static tree
// (built here as a binary heap over the member list, rooted at the initial
// holder), a FIFO request queue of neighbours (possibly including itself),
// and an asked flag that suppresses duplicate requests to the current
// holder direction. Messages travel only between tree neighbours, giving
// O(log N) messages per critical section on balanced trees.
package raymond

import (
	"fmt"

	"gridmutex/internal/mutex"
)

// Request asks the holder-direction neighbour for the privilege.
type Request struct{}

// Kind implements mutex.Message.
func (Request) Kind() string { return "raymond.request" }

// Size implements mutex.Message.
func (Request) Size() int { return 16 }

// Privilege transfers the token to a tree neighbour.
type Privilege struct{}

// Kind implements mutex.Message.
func (Privilege) Kind() string { return "raymond.privilege" }

// Size implements mutex.Message.
func (Privilege) Size() int { return 16 }

type node struct {
	cfg    mutex.Config
	holder mutex.ID // tree neighbour toward the token; Self if held here
	reqQ   []mutex.ID
	asked  bool
	state  mutex.State
}

// New builds a Raymond instance. The spanning tree is a binary heap over
// cfg.Members re-rooted at cfg.Holder, so every participant derives an
// identical tree from identical configuration.
func New(cfg mutex.Config) (mutex.Instance, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	n := &node{cfg: cfg}
	if cfg.Self == cfg.Holder {
		n.holder = cfg.Self
	} else {
		n.holder = parentOf(cfg)
	}
	return n, nil
}

// parentOf computes the tree parent of cfg.Self: members are laid out as a
// binary heap on logical indices, logical 0 being the initial holder.
func parentOf(cfg mutex.Config) mutex.ID {
	k := len(cfg.Members)
	holderIdx := cfg.Index(cfg.Holder)
	selfIdx := cfg.Index(cfg.Self)
	logical := (selfIdx - holderIdx + k) % k
	parentLogical := (logical - 1) / 2
	return cfg.Members[(parentLogical+holderIdx)%k]
}

func (n *node) Request() {
	if n.state != mutex.NoReq {
		panic(fmt.Sprintf("raymond: Request in state %v", n.state))
	}
	n.state = mutex.Req
	n.reqQ = append(n.reqQ, n.cfg.Self)
	n.assignPrivilege()
	n.makeRequest()
}

func (n *node) Release() {
	if n.state != mutex.InCS {
		panic(fmt.Sprintf("raymond: Release in state %v", n.state))
	}
	n.state = mutex.NoReq
	n.assignPrivilege()
	n.makeRequest()
}

func (n *node) Deliver(from mutex.ID, m mutex.Message) {
	switch m.(type) {
	case Request:
		n.reqQ = append(n.reqQ, from)
		if n.holder == n.cfg.Self && n.state == mutex.InCS {
			n.firePending()
		}
		n.assignPrivilege()
		n.makeRequest()
	case Privilege:
		n.holder = n.cfg.Self
		n.asked = false
		n.assignPrivilege()
		n.makeRequest()
	default:
		panic(fmt.Sprintf("raymond: unexpected message %T", m))
	}
}

// assignPrivilege hands the token to the head of the queue if this node
// holds it and is not using it.
func (n *node) assignPrivilege() {
	if n.holder != n.cfg.Self || n.state == mutex.InCS || len(n.reqQ) == 0 {
		return
	}
	head := n.reqQ[0]
	n.reqQ = n.reqQ[1:]
	if head == n.cfg.Self {
		n.enterCS()
		return
	}
	n.holder = head
	n.asked = false
	n.cfg.Env.Send(head, Privilege{})
}

// makeRequest forwards a request toward the holder if one is needed and
// none is outstanding.
func (n *node) makeRequest() {
	if n.holder == n.cfg.Self || len(n.reqQ) == 0 || n.asked {
		return
	}
	n.asked = true
	n.cfg.Env.Send(n.holder, Request{})
}

func (n *node) enterCS() {
	n.state = mutex.InCS
	if f := n.cfg.Callbacks.OnAcquire; f != nil {
		n.cfg.Env.Local(f)
	}
}

func (n *node) firePending() {
	if f := n.cfg.Callbacks.OnPending; f != nil {
		n.cfg.Env.Local(f)
	}
}

func (n *node) HasPending() bool {
	if n.holder != n.cfg.Self {
		return false
	}
	for _, q := range n.reqQ {
		if q != n.cfg.Self {
			return true
		}
	}
	return false
}

func (n *node) HoldsToken() bool   { return n.holder == n.cfg.Self }
func (n *node) State() mutex.State { return n.state }
