package raymond

import (
	"testing"

	"gridmutex/internal/algorithms/algotest"
	"gridmutex/internal/mutex"
)

func build(t *testing.T, w *algotest.World, n int, holder mutex.ID) []mutex.Instance {
	t.Helper()
	members := make([]mutex.ID, n)
	for i := range members {
		members[i] = mutex.ID(i)
	}
	insts, err := w.Build(New, members, holder, nil)
	if err != nil {
		t.Fatal(err)
	}
	return insts
}

func TestTreeParents(t *testing.T) {
	members := []mutex.ID{10, 11, 12, 13, 14, 15, 16}
	mk := func(self mutex.ID, holder mutex.ID) mutex.Config {
		return mutex.Config{Self: self, Members: members, Holder: holder, Env: algotest.NewWorld().Env(self)}
	}
	// Holder 10 at logical 0: heap parents are (l-1)/2.
	wantParent := map[mutex.ID]mutex.ID{
		11: 10, 12: 10, // logical 1,2 -> 0
		13: 11, 14: 11, // logical 3,4 -> 1
		15: 12, 16: 12, // logical 5,6 -> 2
	}
	for self, want := range wantParent {
		if got := parentOf(mk(self, 10)); got != want {
			t.Errorf("parentOf(%d) = %d, want %d", self, got, want)
		}
	}
	// Re-rooted at 12: logical index shifts by the holder offset.
	if got := parentOf(mk(13, 12)); got != 12 {
		t.Errorf("re-rooted parentOf(13) = %d, want 12", got)
	}
}

func TestDirectNeighbourGrant(t *testing.T) {
	w := algotest.NewWorld()
	m := build(t, w, 3, 0)
	m[1].Request()
	if err := w.Drain(10); err != nil {
		t.Fatal(err)
	}
	if m[1].State() != mutex.InCS {
		t.Fatalf("state %v, want CS", m[1].State())
	}
	kinds := w.Kinds()
	if len(kinds) != 2 || kinds[0] != "raymond.request" || kinds[1] != "raymond.privilege" {
		t.Fatalf("kinds = %v", kinds)
	}
	if m[0].HoldsToken() {
		t.Error("old holder still claims the privilege")
	}
}

func TestDeepRequestTravelsTreePath(t *testing.T) {
	w := algotest.NewWorld()
	m := build(t, w, 7, 0)
	// Node 5 is a leaf under 2 under 0: request should take 2 hops up,
	// privilege 2 hops down.
	m[5].Request()
	if err := w.Drain(20); err != nil {
		t.Fatal(err)
	}
	if m[5].State() != mutex.InCS {
		t.Fatal("leaf not granted")
	}
	log := w.Log()
	if len(log) != 4 {
		t.Fatalf("%d messages, want 4: %v", len(log), w.Kinds())
	}
	if log[0].From != 5 || log[0].To != 2 || log[1].From != 2 || log[1].To != 0 {
		t.Errorf("request path wrong: %+v", log[:2])
	}
	if log[2].From != 0 || log[2].To != 2 || log[3].From != 2 || log[3].To != 5 {
		t.Errorf("privilege path wrong: %+v", log[2:])
	}
}

func TestIntermediateNodeServesItselfFirstInFIFO(t *testing.T) {
	w := algotest.NewWorld()
	m := build(t, w, 7, 0)
	// 2 requests, then 5 (child of 2) requests. 2's queue: [self, 5].
	m[2].Request()
	m[5].Request()
	if err := w.Drain(30); err != nil {
		t.Fatal(err)
	}
	if m[2].State() != mutex.InCS {
		t.Fatalf("node 2 state %v", m[2].State())
	}
	if m[5].State() != mutex.Req {
		t.Fatalf("node 5 state %v", m[5].State())
	}
	if !m[2].HasPending() {
		t.Fatal("node 2 should report node 5 pending")
	}
	m[2].Release()
	if err := w.Drain(30); err != nil {
		t.Fatal(err)
	}
	if m[5].State() != mutex.InCS {
		t.Fatal("node 5 not served after 2's release")
	}
}

func TestAskedFlagSuppressesDuplicateRequests(t *testing.T) {
	w := algotest.NewWorld()
	m := build(t, w, 7, 0)
	// 5 and 6 are both children of 2. Their requests both enqueue at 2,
	// but 2 must send only one request up to 0.
	m[5].Request()
	m[6].Request()
	// Deliver both children's requests to 2 before anything else moves.
	w.DeliverAt(0)
	w.DeliverAt(0)
	upward := 0
	for _, s := range w.Inflight() {
		if s.From == 2 && s.To == 0 {
			upward++
		}
	}
	if upward != 1 {
		t.Fatalf("node 2 sent %d upward requests, want 1 (asked flag)", upward)
	}
	if err := w.Drain(40); err != nil {
		t.Fatal(err)
	}
	// Eventually both get the CS: 5 first (FIFO at 2), then 6 after 5
	// releases.
	if m[5].State() != mutex.InCS {
		t.Fatalf("node 5 state %v", m[5].State())
	}
	m[5].Release()
	if err := w.Drain(40); err != nil {
		t.Fatal(err)
	}
	if m[6].State() != mutex.InCS {
		t.Fatalf("node 6 state %v", m[6].State())
	}
}

func TestOnPendingWhileUsing(t *testing.T) {
	w := algotest.NewWorld()
	pendings := 0
	members := []mutex.ID{0, 1}
	insts, err := w.Build(New, members, 0, func(self mutex.ID) mutex.Callbacks {
		if self != 0 {
			return mutex.Callbacks{}
		}
		return mutex.Callbacks{OnPending: func() { pendings++ }}
	})
	if err != nil {
		t.Fatal(err)
	}
	insts[0].Request()
	w.Settle()
	insts[1].Request()
	if err := w.Drain(10); err != nil {
		t.Fatal(err)
	}
	if pendings != 1 {
		t.Fatalf("OnPending fired %d times, want 1", pendings)
	}
	if !insts[0].HasPending() {
		t.Fatal("holder does not report pending")
	}
}

func TestProtocolPanics(t *testing.T) {
	cases := []struct {
		name string
		run  func(m []mutex.Instance)
	}{
		{"double request", func(m []mutex.Instance) { m[1].Request(); m[1].Request() }},
		{"release without CS", func(m []mutex.Instance) { m[1].Release() }},
		{"unexpected message", func(m []mutex.Instance) { m[1].Deliver(0, bogus{}) }},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			w := algotest.NewWorld()
			m := build(t, w, 3, 0)
			defer func() {
				if recover() == nil {
					t.Errorf("%s did not panic", tc.name)
				}
			}()
			tc.run(m)
		})
	}
}

type bogus struct{}

func (bogus) Kind() string { return "bogus" }
func (bogus) Size() int    { return 0 }

func TestNewRejectsInvalidConfig(t *testing.T) {
	if _, err := New(mutex.Config{}); err == nil {
		t.Fatal("New accepted an invalid config")
	}
}
