package central

import (
	"testing"

	"gridmutex/internal/algorithms/algotest"
	"gridmutex/internal/mutex"
)

func build(t *testing.T, w *algotest.World, n int, holder mutex.ID) []mutex.Instance {
	t.Helper()
	members := make([]mutex.ID, n)
	for i := range members {
		members[i] = mutex.ID(i)
	}
	insts, err := w.Build(New, members, holder, nil)
	if err != nil {
		t.Fatal(err)
	}
	return insts
}

func TestClientGrantCycle(t *testing.T) {
	w := algotest.NewWorld()
	m := build(t, w, 3, 0)
	m[1].Request()
	if err := w.Drain(10); err != nil {
		t.Fatal(err)
	}
	if m[1].State() != mutex.InCS || !m[1].HoldsToken() {
		t.Fatalf("client not granted: state %v", m[1].State())
	}
	m[1].Release()
	if err := w.Drain(10); err != nil {
		t.Fatal(err)
	}
	kinds := w.Kinds()
	want := []string{"central.request", "central.grant", "central.release"}
	if len(kinds) != 3 {
		t.Fatalf("kinds = %v, want %v", kinds, want)
	}
	for i := range want {
		if kinds[i] != want[i] {
			t.Fatalf("kinds = %v, want %v", kinds, want)
		}
	}
}

func TestServerSelfGrant(t *testing.T) {
	w := algotest.NewWorld()
	m := build(t, w, 3, 0)
	m[0].Request()
	w.Settle()
	if m[0].State() != mutex.InCS {
		t.Fatal("server could not self-grant")
	}
	m[0].Release()
	if len(w.Log()) != 0 {
		t.Fatalf("server self-grant cost %d messages", len(w.Log()))
	}
}

func TestFIFOGrantOrder(t *testing.T) {
	w := algotest.NewWorld()
	order := []mutex.ID{}
	members := []mutex.ID{0, 1, 2, 3}
	insts, err := w.Build(New, members, 0, func(self mutex.ID) mutex.Callbacks {
		return mutex.Callbacks{OnAcquire: func() { order = append(order, self) }}
	})
	if err != nil {
		t.Fatal(err)
	}
	insts[0].Request()
	w.Settle()
	// Arrival order 3, 2, 1 at the server while it is in CS.
	insts[3].Request()
	insts[2].Request()
	insts[1].Request()
	for w.DeliverNext() {
	}
	insts[0].Release()
	if err := w.Drain(40); err != nil {
		t.Fatal(err)
	}
	insts[3].Release()
	if err := w.Drain(40); err != nil {
		t.Fatal(err)
	}
	insts[2].Release()
	if err := w.Drain(40); err != nil {
		t.Fatal(err)
	}
	insts[1].Release()
	if err := w.Drain(40); err != nil {
		t.Fatal(err)
	}
	want := []mutex.ID{0, 3, 2, 1}
	if len(order) != len(want) {
		t.Fatalf("grant order %v, want %v", order, want)
	}
	for i := range want {
		if order[i] != want[i] {
			t.Fatalf("grant order %v, want FIFO %v", order, want)
		}
	}
}

func TestNudgeReachesRemoteHolder(t *testing.T) {
	w := algotest.NewWorld()
	pendings := 0
	members := []mutex.ID{0, 1, 2}
	insts, err := w.Build(New, members, 0, func(self mutex.ID) mutex.Callbacks {
		if self != 1 {
			return mutex.Callbacks{}
		}
		return mutex.Callbacks{OnPending: func() { pendings++ }}
	})
	if err != nil {
		t.Fatal(err)
	}
	insts[1].Request()
	if err := w.Drain(10); err != nil {
		t.Fatal(err)
	}
	if insts[1].State() != mutex.InCS {
		t.Fatal("client 1 not granted")
	}
	// Client 2 requests while 1 holds the section: the server must
	// nudge 1 exactly once.
	insts[2].Request()
	if err := w.Drain(10); err != nil {
		t.Fatal(err)
	}
	if pendings != 1 {
		t.Fatalf("OnPending fired %d times at remote holder, want 1", pendings)
	}
	if !insts[1].HasPending() {
		t.Fatal("remote holder does not report pending")
	}
	nudges := 0
	for _, k := range w.Kinds() {
		if k == "central.nudge" {
			nudges++
		}
	}
	if nudges != 1 {
		t.Fatalf("%d nudges on the wire, want 1", nudges)
	}
	insts[1].Release()
	if err := w.Drain(10); err != nil {
		t.Fatal(err)
	}
	if insts[2].State() != mutex.InCS {
		t.Fatal("client 2 not served after release")
	}
}

func TestNudgeOncePerGrantPeriod(t *testing.T) {
	w := algotest.NewWorld()
	m := build(t, w, 4, 0)
	m[1].Request()
	if err := w.Drain(10); err != nil {
		t.Fatal(err)
	}
	// Two further requests during one grant period: one nudge only.
	m[2].Request()
	m[3].Request()
	if err := w.Drain(10); err != nil {
		t.Fatal(err)
	}
	nudges := 0
	for _, k := range w.Kinds() {
		if k == "central.nudge" {
			nudges++
		}
	}
	if nudges != 1 {
		t.Fatalf("%d nudges, want 1", nudges)
	}
	// After the handover to 2, 3 is still queued: a fresh nudge fires
	// for the new grant period.
	m[1].Release()
	if err := w.Drain(10); err != nil {
		t.Fatal(err)
	}
	nudges = 0
	for _, k := range w.Kinds() {
		if k == "central.nudge" {
			nudges++
		}
	}
	if nudges != 2 {
		t.Fatalf("%d total nudges after handover, want 2", nudges)
	}
}

func TestServerHasPendingOnlyWhileHoldingItself(t *testing.T) {
	w := algotest.NewWorld()
	m := build(t, w, 3, 0)
	m[0].Request()
	w.Settle()
	m[1].Request()
	if err := w.Drain(10); err != nil {
		t.Fatal(err)
	}
	if !m[0].HasPending() {
		t.Fatal("server in CS with queue should report pending")
	}
	m[0].Release()
	if err := w.Drain(10); err != nil {
		t.Fatal(err)
	}
	if m[0].HasPending() {
		t.Fatal("server reports pending for a section it no longer holds")
	}
}

func TestNudgeAfterReleaseIsIgnored(t *testing.T) {
	w := algotest.NewWorld()
	m := build(t, w, 3, 0)
	// A nudge racing with the holder's release arrives while NoReq.
	m[1].Deliver(0, Nudge{})
	w.Settle()
	if m[1].HasPending() {
		t.Fatal("stale nudge set pending on a non-holder")
	}
}

func TestProtocolPanics(t *testing.T) {
	cases := []struct {
		name string
		run  func(w *algotest.World, m []mutex.Instance)
	}{
		{"double request", func(w *algotest.World, m []mutex.Instance) { m[1].Request(); m[1].Request() }},
		{"release without CS", func(w *algotest.World, m []mutex.Instance) { m[1].Release() }},
		{"request at non-server", func(w *algotest.World, m []mutex.Instance) { m[1].Deliver(2, Request{}) }},
		{"release at non-server", func(w *algotest.World, m []mutex.Instance) { m[1].Deliver(2, ReleaseMsg{}) }},
		{"grant while not requesting", func(w *algotest.World, m []mutex.Instance) { m[1].Deliver(0, Grant{}) }},
		{"release from wrong client", func(w *algotest.World, m []mutex.Instance) {
			m[1].Request()
			if err := w.Drain(10); err != nil {
				t.Fatal(err)
			}
			m[0].Deliver(2, ReleaseMsg{})
		}},
		{"unexpected message", func(w *algotest.World, m []mutex.Instance) { m[1].Deliver(0, bogus{}) }},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			w := algotest.NewWorld()
			m := build(t, w, 3, 0)
			defer func() {
				if recover() == nil {
					t.Errorf("%s did not panic", tc.name)
				}
			}()
			tc.run(w, m)
		})
	}
}

type bogus struct{}

func (bogus) Kind() string { return "bogus" }
func (bogus) Size() int    { return 0 }

func TestNewRejectsInvalidConfig(t *testing.T) {
	if _, err := New(mutex.Config{}); err == nil {
		t.Fatal("New accepted an invalid config")
	}
}
