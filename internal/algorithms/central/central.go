// Package central implements a centralized mutual exclusion algorithm: one
// fixed server (the initial holder) grants the critical section to clients
// in FIFO order.
//
// The related-work section of the paper cites hybrid schemes (Madhuram and
// Kumar 1994) that use a centralized algorithm at the lower level; this
// package provides that building block as an extra plug-in and baseline.
// A critical section costs at most 3 messages (request, grant, release) and
// the server is a serial bottleneck — exactly the properties ablation
// experiments want to contrast with the distributed algorithms.
package central

import (
	"fmt"

	"gridmutex/internal/mutex"
)

// Request asks the server for the critical section.
type Request struct{}

// Kind implements mutex.Message.
func (Request) Kind() string { return "central.request" }

// Size implements mutex.Message.
func (Request) Size() int { return 16 }

// Grant gives the requester the critical section.
type Grant struct{}

// Kind implements mutex.Message.
func (Grant) Kind() string { return "central.grant" }

// Size implements mutex.Message.
func (Grant) Size() int { return 16 }

// ReleaseMsg tells the server the critical section is free again.
type ReleaseMsg struct{}

// Kind implements mutex.Message.
func (ReleaseMsg) Kind() string { return "central.release" }

// Size implements mutex.Message.
func (ReleaseMsg) Size() int { return 16 }

// Nudge tells the current grantee that other requests are queued at the
// server. Classical centralized mutual exclusion does not need it, but the
// composition layer's OnPending contract does: a coordinator holding the
// critical section must learn that someone is waiting.
type Nudge struct{}

// Kind implements mutex.Message.
func (Nudge) Kind() string { return "central.nudge" }

// Size implements mutex.Message.
func (Nudge) Size() int { return 16 }

type node struct {
	cfg     mutex.Config
	server  mutex.ID
	state   mutex.State
	pending bool // grantee side: server signalled waiting requests
	// Server-only fields.
	granted mutex.ID // node currently in CS; None if free
	queue   []mutex.ID
	nudged  bool // current grantee has been told about the queue
}

// New builds a centralized instance; cfg.Holder acts as the server.
func New(cfg mutex.Config) (mutex.Instance, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	return &node{cfg: cfg, server: cfg.Holder, granted: mutex.None}, nil
}

func (n *node) isServer() bool { return n.cfg.Self == n.server }

func (n *node) Request() {
	if n.state != mutex.NoReq {
		panic(fmt.Sprintf("central: Request in state %v", n.state))
	}
	n.state = mutex.Req
	if n.isServer() {
		n.serverRequest(n.cfg.Self)
		return
	}
	n.cfg.Env.Send(n.server, Request{})
}

func (n *node) Release() {
	if n.state != mutex.InCS {
		panic(fmt.Sprintf("central: Release in state %v", n.state))
	}
	n.state = mutex.NoReq
	n.pending = false
	if n.isServer() {
		n.serverRelease()
		return
	}
	n.cfg.Env.Send(n.server, ReleaseMsg{})
}

func (n *node) Deliver(from mutex.ID, m mutex.Message) {
	switch m.(type) {
	case Request:
		if !n.isServer() {
			panic("central: request delivered to non-server")
		}
		n.serverRequest(from)
	case ReleaseMsg:
		if !n.isServer() {
			panic("central: release delivered to non-server")
		}
		if from != n.granted {
			panic(fmt.Sprintf("central: release from %d but CS granted to %d", from, n.granted))
		}
		n.serverRelease()
	case Grant:
		if n.state != mutex.Req {
			panic(fmt.Sprintf("central: grant received in state %v", n.state))
		}
		n.pending = false
		n.enterCS()
	case Nudge:
		// May race with our own release; only meaningful if we still
		// hold the critical section.
		if n.state == mutex.InCS {
			n.pending = true
			n.firePending()
		}
	default:
		panic(fmt.Sprintf("central: unexpected message %T", m))
	}
}

// serverRequest processes a request at the server, from a client or from
// the server's own Request call.
func (n *node) serverRequest(who mutex.ID) {
	if n.granted == mutex.None {
		n.grant(who)
		return
	}
	n.queue = append(n.queue, who)
	n.maybeNudge()
}

// serverRelease frees the critical section and serves the queue head.
func (n *node) serverRelease() {
	n.granted = mutex.None
	if len(n.queue) == 0 {
		return
	}
	head := n.queue[0]
	n.queue = n.queue[1:]
	n.grant(head)
}

func (n *node) grant(who mutex.ID) {
	n.granted = who
	n.nudged = false
	if who == n.cfg.Self {
		n.pending = false
		n.enterCS()
	} else {
		n.cfg.Env.Send(who, Grant{})
	}
	n.maybeNudge()
}

// maybeNudge informs the current grantee, once per grant, that requests are
// queued behind it.
func (n *node) maybeNudge() {
	if n.granted == mutex.None || len(n.queue) == 0 || n.nudged {
		return
	}
	n.nudged = true
	if n.granted == n.cfg.Self {
		n.pending = true
		n.firePending()
	} else {
		n.cfg.Env.Send(n.granted, Nudge{})
	}
}

func (n *node) enterCS() {
	n.state = mutex.InCS
	if f := n.cfg.Callbacks.OnAcquire; f != nil {
		n.cfg.Env.Local(f)
	}
}

func (n *node) firePending() {
	if f := n.cfg.Callbacks.OnPending; f != nil {
		n.cfg.Env.Local(f)
	}
}

func (n *node) HasPending() bool {
	if n.isServer() {
		// The queue is never non-empty while the section is free, so
		// a non-empty queue means this node's own possession (or a
		// client's) blocks the queued requesters.
		return len(n.queue) > 0 && n.granted == n.cfg.Self
	}
	return n.pending && n.state == mutex.InCS
}

// HoldsToken reports whether this node could enter the critical section
// without communicating: the server while the section is free or its own,
// or any node currently inside the critical section.
func (n *node) HoldsToken() bool {
	if n.isServer() {
		return n.granted == mutex.None || n.granted == n.cfg.Self
	}
	return n.state == mutex.InCS
}

func (n *node) State() mutex.State { return n.state }
