package algorithms_test

import (
	"os"
	"testing"

	"gridmutex/internal/algorithms"
	"gridmutex/internal/explore"
)

// TestExploreAlgorithms drives a 3-process instance of every registered
// algorithm through systematic schedule exploration: every bounded
// interleaving of message deliveries and application requests/releases
// must stay free of safety, liveness, and terminal-state violations.
//
// The default run bounds the schedule count so `go test ./...` stays
// fast; set GRIDMUTEX_EXPLORE_LONG=1 to require the space to be fully
// exhausted (this is the mode the acceptance numbers in EXPERIMENTS.md
// quote).
func TestExploreAlgorithms(t *testing.T) {
	long := os.Getenv("GRIDMUTEX_EXPLORE_LONG") != ""
	// Requests per app are sized so the exhaustive space is large enough
	// to be meaningful (>=1000 schedules) but still exhausts in seconds:
	// raymond's tree collapses many interleavings so it gets an extra
	// round, while lamport's double broadcast per entry explodes past two
	// million schedules at two rounds, so it gets one.
	requests := map[string]int{"raymond": 3, "lamport": 1}
	for _, name := range algorithms.Names() {
		t.Run(name, func(t *testing.T) {
			factory, err := algorithms.Factory(name)
			if err != nil {
				t.Fatal(err)
			}
			want := 0
			if algorithms.TokenBased(name) {
				want = 1
			}
			reqs := requests[name]
			if reqs == 0 {
				reqs = 2
			}
			opts := explore.Options{
				RequestsPerApp:    reqs,
				MaxSteps:          128,
				CheckTokenHolders: true,
				WantTokenHolders:  want,
			}
			if !long {
				opts.MaxSchedules = 2000
			}
			res, err := explore.ExploreDFS(explore.FlatBuilder(factory, 3), opts)
			if err != nil {
				t.Fatal(err)
			}
			if res.Counterexample != nil {
				t.Fatalf("violation in %d schedules: %v\nschedule: %s\n%s",
					res.Schedules, res.Counterexample.Violations,
					res.Counterexample.Schedule, res.Counterexample.JSON())
			}
			if long {
				if !res.Exhausted {
					t.Fatalf("space not exhausted after %d schedules", res.Schedules)
				}
				if res.Schedules < 1000 {
					t.Fatalf("exhausted too quickly for the acceptance bar: %d schedules", res.Schedules)
				}
			}
			t.Logf("%d schedules, %d states, %d steps, %d pruned, %d truncated, exhausted=%v",
				res.Schedules, res.States, res.Steps, res.Pruned, res.Truncated, res.Exhausted)
		})
	}
}

// TestExploreAlgorithmsRandom samples each algorithm's schedule space with
// the PCT-style randomized scheduler as a complement to the bounded DFS:
// different schedules, same zero-violation requirement.
func TestExploreAlgorithmsRandom(t *testing.T) {
	for _, name := range algorithms.Names() {
		t.Run(name, func(t *testing.T) {
			factory, err := algorithms.Factory(name)
			if err != nil {
				t.Fatal(err)
			}
			want := 0
			if algorithms.TokenBased(name) {
				want = 1
			}
			res, err := explore.ExploreRandom(explore.FlatBuilder(factory, 3), explore.Options{
				RequestsPerApp:    2,
				MaxSteps:          96,
				MaxSchedules:      100,
				Seed:              1,
				CheckTokenHolders: true,
				WantTokenHolders:  want,
			})
			if err != nil {
				t.Fatal(err)
			}
			if res.Counterexample != nil {
				t.Fatalf("violation: %v\nschedule: %s",
					res.Counterexample.Violations, res.Counterexample.Schedule)
			}
		})
	}
}
