package ring

import (
	"testing"

	"gridmutex/internal/algorithms/algotest"
	"gridmutex/internal/mutex"
)

func ids(ns ...int) []mutex.ID {
	out := make([]mutex.ID, len(ns))
	for i, n := range ns {
		out[i] = mutex.ID(n)
	}
	return out
}

func build(t *testing.T, w *algotest.World, n int, holder mutex.ID) []mutex.Instance {
	t.Helper()
	members := make([]mutex.ID, n)
	for i := range members {
		members[i] = mutex.ID(i)
	}
	insts, err := w.Build(New, members, holder, nil)
	if err != nil {
		t.Fatal(err)
	}
	return insts
}

func TestInitialState(t *testing.T) {
	w := algotest.NewWorld()
	m := build(t, w, 4, 2)
	for i, inst := range m {
		if got, want := inst.HoldsToken(), i == 2; got != want {
			t.Errorf("node %d HoldsToken = %v, want %v", i, got, want)
		}
		if inst.State() != mutex.NoReq || inst.HasPending() {
			t.Errorf("node %d not quiescent at start", i)
		}
	}
}

// TestExactMessageCount checks the 2(x+1) cost of section 2.1: requester 1,
// holder 4, ring of 5. The request travels 1→2→3→4 (x+1 = 3 hops, x = 2
// intermediate nodes) and the token returns 4→3→2→1.
func TestExactMessageCount(t *testing.T) {
	w := algotest.NewWorld()
	m := build(t, w, 5, 4)
	m[1].Request()
	if err := w.Drain(20); err != nil {
		t.Fatal(err)
	}
	if m[1].State() != mutex.InCS {
		t.Fatalf("requester state %v", m[1].State())
	}
	log := w.Log()
	if len(log) != 6 {
		t.Fatalf("%d messages, want 2*(2+1)=6: %+v", len(log), w.Kinds())
	}
	wantPath := []struct {
		from, to mutex.ID
		kind     string
	}{
		{1, 2, "martin.request"},
		{2, 3, "martin.request"},
		{3, 4, "martin.request"},
		{4, 3, "martin.token"},
		{3, 2, "martin.token"},
		{2, 1, "martin.token"},
	}
	for i, want := range wantPath {
		got := log[i]
		if got.From != want.from || got.To != want.to || got.Msg.Kind() != want.kind {
			t.Errorf("hop %d = %d->%d %s, want %d->%d %s",
				i, got.From, got.To, got.Msg.Kind(), want.from, want.to, want.kind)
		}
	}
}

func TestIdleHolderGrantsImmediately(t *testing.T) {
	w := algotest.NewWorld()
	m := build(t, w, 3, 0)
	// Node 2's request goes to its successor 0, the idle holder.
	m[2].Request()
	if err := w.Drain(10); err != nil {
		t.Fatal(err)
	}
	if len(w.Log()) != 2 {
		t.Fatalf("%d messages, want 2 (request + token): %v", len(w.Log()), w.Kinds())
	}
	if m[2].State() != mutex.InCS {
		t.Fatal("requester did not enter CS")
	}
}

func TestHolderInCSDefersAndOnPendingFires(t *testing.T) {
	w := algotest.NewWorld()
	members := ids(0, 1)
	pendings := 0
	insts, err := w.Build(New, members, 0, func(self mutex.ID) mutex.Callbacks {
		if self != 0 {
			return mutex.Callbacks{}
		}
		return mutex.Callbacks{OnPending: func() { pendings++ }}
	})
	if err != nil {
		t.Fatal(err)
	}
	holder, other := insts[0], insts[1]
	holder.Request()
	w.Settle()
	if holder.State() != mutex.InCS {
		t.Fatal("holder did not enter its own CS")
	}
	other.Request()
	if err := w.Drain(10); err != nil {
		t.Fatal(err)
	}
	if pendings != 1 {
		t.Fatalf("OnPending fired %d times, want 1", pendings)
	}
	if !holder.HasPending() {
		t.Fatal("holder does not report pending")
	}
	holder.Release()
	if err := w.Drain(10); err != nil {
		t.Fatal(err)
	}
	if other.State() != mutex.InCS {
		t.Fatal("waiter did not get the token on release")
	}
	if holder.HasPending() {
		t.Error("pending flag not cleared after pass-on")
	}
}

// TestRequestAbsorption: a requesting node does not forward its
// predecessor's request (the optimization of section 2.1) and a collective
// token pass serves both.
func TestRequestAbsorption(t *testing.T) {
	w := algotest.NewWorld()
	m := build(t, w, 4, 3)
	// Node 2 requests: request would travel 2->3. Node 1 requests:
	// request travels 1->2, where it must be absorbed because 2 is
	// requesting.
	m[2].Request()
	m[1].Request()
	// Deliver 1's request to 2 first: absorbed, no forward.
	w.DeliverAt(1)
	if got := len(w.Inflight()); got != 1 {
		t.Fatalf("absorption still forwarded something: %d in flight", got)
	}
	if err := w.Drain(20); err != nil {
		t.Fatal(err)
	}
	// 2 is closer to the holder in token direction, so it is served
	// first.
	if m[2].State() != mutex.InCS {
		t.Fatalf("node 2 state %v, want CS", m[2].State())
	}
	if m[1].State() != mutex.Req {
		t.Fatalf("node 1 state %v, want REQ", m[1].State())
	}
	m[2].Release()
	if err := w.Drain(20); err != nil {
		t.Fatal(err)
	}
	if m[1].State() != mutex.InCS {
		t.Fatal("node 1 not served by the collective pass")
	}
	// Total: 1 request 2->3, 1 request 1->2 (absorbed), token 3->2,
	// token 2->1.
	if n := len(w.Log()); n != 4 {
		t.Fatalf("%d messages, want 4: %v", n, w.Kinds())
	}
}

// TestTokenParksOnCrossing: when a request and the token cross in flight,
// the pass-on chain may deliver the token to a node that no longer needs to
// relay it; the token parks there and stays available.
func TestTokenParksOnCrossing(t *testing.T) {
	w := algotest.NewWorld()
	m := build(t, w, 3, 0)
	// Hand-deliver a token to node 1 (NoReq, no passOn) as the tail end
	// of a consumed pass-on chain.
	m[1].Deliver(2, Token{})
	w.Settle()
	if !m[1].HoldsToken() {
		t.Fatal("token not parked")
	}
	if m[1].State() != mutex.NoReq {
		t.Fatalf("parked node state %v", m[1].State())
	}
	if len(w.Inflight()) != 0 {
		t.Fatalf("parking still sent messages: %v", w.Kinds())
	}
	// The parked token serves the next request that reaches it.
	m[0].Request()
	if err := w.Drain(10); err != nil {
		t.Fatal(err)
	}
	if m[0].State() != mutex.InCS {
		t.Fatal("request not served by parked token")
	}
}

func TestSingleNodeRing(t *testing.T) {
	w := algotest.NewWorld()
	m := build(t, w, 1, 0)
	m[0].Request()
	w.Settle()
	if m[0].State() != mutex.InCS {
		t.Fatal("single node did not self-grant")
	}
	m[0].Release()
	if len(w.Log()) != 0 {
		t.Fatalf("single-node ring sent %d messages", len(w.Log()))
	}
}

func TestProtocolPanics(t *testing.T) {
	cases := []struct {
		name string
		run  func(m []mutex.Instance)
	}{
		{"double request", func(m []mutex.Instance) { m[1].Request(); m[1].Request() }},
		{"release without CS", func(m []mutex.Instance) { m[1].Release() }},
		{"duplicate token", func(m []mutex.Instance) { m[0].Deliver(1, Token{}) }},
		{"unexpected message", func(m []mutex.Instance) { m[1].Deliver(0, bogus{}) }},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			w := algotest.NewWorld()
			m := build(t, w, 3, 0)
			defer func() {
				if recover() == nil {
					t.Errorf("%s did not panic", tc.name)
				}
			}()
			tc.run(m)
		})
	}
}

type bogus struct{}

func (bogus) Kind() string { return "bogus" }
func (bogus) Size() int    { return 0 }

func TestMessageMetadata(t *testing.T) {
	if (Request{}).Kind() != "martin.request" || (Request{}).Size() <= 0 {
		t.Error("bad Request metadata")
	}
	if (Token{}).Kind() != "martin.token" || (Token{}).Size() <= 0 {
		t.Error("bad Token metadata")
	}
}

func TestNewRejectsInvalidConfig(t *testing.T) {
	if _, err := New(mutex.Config{}); err == nil {
		t.Fatal("New accepted an invalid config")
	}
}
