// Package ring implements Martin's token-based mutual exclusion algorithm
// on a logical ring (Martin 1985), as described in section 2.1 of the paper.
//
// Nodes are arranged in the ring order given by Config.Members. Requests
// travel in one direction (to the successor) until they reach the token
// holder; the token travels in the opposite direction (to the predecessor)
// back to the requester, satisfying the pending requests of every node it
// crosses on the way.
//
// The paper's optimization is included: a node that is itself requesting
// (or that has already forwarded a request) does not forward further
// requests — it only remembers that, once served, it must pass the token on
// to its predecessor. With x nodes between requester and holder, a critical
// section costs 2(x+1) messages, i.e. N on average.
package ring

import (
	"fmt"

	"gridmutex/internal/mutex"
)

// Request asks for the token; it travels from predecessor to successor and
// carries no payload (the receiver serves its predecessor side as a whole).
type Request struct{}

// Kind implements mutex.Message.
func (Request) Kind() string { return "martin.request" }

// Size implements mutex.Message.
func (Request) Size() int { return 16 }

// Token grants the right to enter the critical section; it travels from
// successor to predecessor.
type Token struct{}

// Kind implements mutex.Message.
func (Token) Kind() string { return "martin.token" }

// Size implements mutex.Message.
func (Token) Size() int { return 16 }

type node struct {
	cfg    mutex.Config
	succ   mutex.ID
	pred   mutex.ID
	token  bool
	state  mutex.State
	passOn bool // a request from the predecessor side awaits the token
}

// New builds a Martin ring instance. Ring order is the order of
// cfg.Members.
func New(cfg mutex.Config) (mutex.Instance, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	idx := cfg.Index(cfg.Self)
	k := len(cfg.Members)
	return &node{
		cfg:   cfg,
		succ:  cfg.Members[(idx+1)%k],
		pred:  cfg.Members[(idx-1+k)%k],
		token: cfg.Self == cfg.Holder,
	}, nil
}

func (n *node) Request() {
	if n.state != mutex.NoReq {
		panic(fmt.Sprintf("ring: Request in state %v", n.state))
	}
	n.state = mutex.Req
	if n.token {
		n.enterCS()
		return
	}
	n.cfg.Env.Send(n.succ, Request{})
}

func (n *node) Release() {
	if n.state != mutex.InCS {
		panic(fmt.Sprintf("ring: Release in state %v", n.state))
	}
	n.state = mutex.NoReq
	if n.passOn {
		n.sendTokenBack()
	}
}

func (n *node) Deliver(from mutex.ID, m mutex.Message) {
	switch m.(type) {
	case Request:
		n.onRequest()
	case Token:
		n.onToken()
	default:
		panic(fmt.Sprintf("ring: unexpected message %T", m))
	}
}

// onRequest handles a request arriving from the predecessor.
func (n *node) onRequest() {
	switch {
	case n.token && n.state == mutex.NoReq:
		// Idle holder: hand the token straight back.
		n.token = false
		n.cfg.Env.Send(n.pred, Token{})
	case n.token:
		// Holder inside the critical section: serve on release.
		if !n.passOn {
			n.passOn = true
			n.firePending()
		}
	case n.passOn || n.state == mutex.Req:
		// Already requesting or already forwarded: the token will
		// pass through here anyway; absorb the request.
		n.passOn = true
	default:
		// Disinterested node: forward toward the holder and remember
		// to pass the token back through.
		n.passOn = true
		n.cfg.Env.Send(n.succ, Request{})
	}
}

// onToken handles the token arriving from the successor.
func (n *node) onToken() {
	if n.token {
		panic("ring: duplicate token")
	}
	n.token = true
	if n.state == mutex.Req {
		n.enterCS()
		return
	}
	if n.passOn {
		n.sendTokenBack()
		return
	}
	// A request and the token crossed on a link: the request went the
	// long way around the ring and a pass-on chain delivered the token
	// to the end of that chain. The token parks here idle; the next
	// request travelling the ring stops at it. (Safety and liveness are
	// unaffected: every passOn chain is consumed by exactly one token
	// traversal, so no node is left waiting on a promise.)
}

func (n *node) sendTokenBack() {
	n.token = false
	n.passOn = false
	n.cfg.Env.Send(n.pred, Token{})
}

func (n *node) enterCS() {
	n.state = mutex.InCS
	if f := n.cfg.Callbacks.OnAcquire; f != nil {
		n.cfg.Env.Local(f)
	}
}

func (n *node) firePending() {
	if f := n.cfg.Callbacks.OnPending; f != nil {
		n.cfg.Env.Local(f)
	}
}

func (n *node) HasPending() bool   { return n.passOn }
func (n *node) HoldsToken() bool   { return n.token }
func (n *node) State() mutex.State { return n.state }
