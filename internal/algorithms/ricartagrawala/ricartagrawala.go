// Package ricartagrawala implements the Ricart-Agrawala permission-based
// mutual exclusion algorithm (Ricart, Agrawala 1981).
//
// Unlike the token algorithms, there is no circulating object: a requester
// timestamps its request with a Lamport clock, broadcasts it, and enters
// the critical section after collecting a reply from every other
// participant. A participant defers its reply while it is inside the
// critical section, or while its own outstanding request has priority
// (smaller timestamp, ties broken by ID); deferred replies are sent on
// release. Each critical section costs exactly 2(N-1) messages.
//
// The paper's composition approach is described for token algorithms, but
// its contract is satisfied here too — OnPending fires when a reply is
// deferred inside the critical section, and HasPending reports deferred
// replies — so Ricart-Agrawala plugs into either hierarchy level. That
// reproduces the flavour of Housni-Trehel's hybrid (Raymond inside groups,
// Ricart-Agrawala between groups) discussed in the related-work section.
//
// There is no meaningful "initial holder" in a permission-based algorithm:
// Config.Holder is accepted (the shared contract validates it) but ignored
// — the first acquisition, including a coordinator's boot acquisition,
// runs a normal request round. Granting it for free would be unsound: it
// is only safe if it happens-before every other request, which a library
// cannot assume of its callers.
package ricartagrawala

import (
	"fmt"

	"gridmutex/internal/mutex"
)

// Request asks every other participant for permission; Clock is the
// sender's Lamport timestamp.
type Request struct {
	Clock int64
}

// Kind implements mutex.Message.
func (Request) Kind() string { return "ra.request" }

// Size implements mutex.Message.
func (Request) Size() int { return 24 }

// Reply grants permission to the requester.
type Reply struct{}

// Kind implements mutex.Message.
func (Reply) Kind() string { return "ra.reply" }

// Size implements mutex.Message.
func (Reply) Size() int { return 16 }

type node struct {
	cfg      mutex.Config
	clock    int64
	myTS     int64 // timestamp of the outstanding request
	state    mutex.State
	replies  int
	deferred []mutex.ID
}

// New builds a Ricart-Agrawala instance.
func New(cfg mutex.Config) (mutex.Instance, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	return &node{cfg: cfg}, nil
}

func (n *node) Request() {
	if n.state != mutex.NoReq {
		panic(fmt.Sprintf("ricartagrawala: Request in state %v", n.state))
	}
	n.state = mutex.Req
	if len(n.cfg.Members) == 1 {
		n.enterCS()
		return
	}
	n.clock++
	n.myTS = n.clock
	n.replies = 0
	req := Request{Clock: n.myTS}
	for _, m := range n.cfg.Members {
		if m != n.cfg.Self {
			n.cfg.Env.Send(m, req)
		}
	}
}

func (n *node) Release() {
	if n.state != mutex.InCS {
		panic(fmt.Sprintf("ricartagrawala: Release in state %v", n.state))
	}
	n.state = mutex.NoReq
	for _, d := range n.deferred {
		n.cfg.Env.Send(d, Reply{})
	}
	n.deferred = n.deferred[:0]
}

func (n *node) Deliver(from mutex.ID, m mutex.Message) {
	switch msg := m.(type) {
	case Request:
		n.onRequest(from, msg.Clock)
	case Reply:
		n.onReply()
	default:
		panic(fmt.Sprintf("ricartagrawala: unexpected message %T", m))
	}
}

func (n *node) onRequest(from mutex.ID, ts int64) {
	if ts > n.clock {
		n.clock = ts
	}
	granting := false
	switch n.state {
	case mutex.NoReq:
		granting = true
	case mutex.Req:
		// Lexicographic (timestamp, id) priority; the smaller wins.
		if ts < n.myTS || (ts == n.myTS && from < n.cfg.Self) {
			granting = true
		}
	case mutex.InCS:
		granting = false
	}
	if granting {
		n.cfg.Env.Send(from, Reply{})
		return
	}
	n.deferred = append(n.deferred, from)
	if n.state == mutex.InCS {
		n.firePending()
	}
}

func (n *node) onReply() {
	if n.state != mutex.Req {
		panic(fmt.Sprintf("ricartagrawala: reply received in state %v", n.state))
	}
	n.replies++
	if n.replies == len(n.cfg.Members)-1 {
		n.enterCS()
	}
}

func (n *node) enterCS() {
	n.state = mutex.InCS
	if f := n.cfg.Callbacks.OnAcquire; f != nil {
		n.cfg.Env.Local(f)
	}
}

func (n *node) firePending() {
	if f := n.cfg.Callbacks.OnPending; f != nil {
		n.cfg.Env.Local(f)
	}
}

func (n *node) HasPending() bool { return len(n.deferred) > 0 }

// HoldsToken reports whether this participant could enter (or is in) the
// critical section without communicating. Permission-based algorithms
// have no token; only the occupant qualifies.
func (n *node) HoldsToken() bool { return n.state == mutex.InCS }

func (n *node) State() mutex.State { return n.state }
