package ricartagrawala

import (
	"testing"

	"gridmutex/internal/algorithms/algotest"
	"gridmutex/internal/mutex"
)

func build(t *testing.T, w *algotest.World, n int) []mutex.Instance {
	t.Helper()
	members := make([]mutex.ID, n)
	for i := range members {
		members[i] = mutex.ID(i)
	}
	insts, err := w.Build(New, members, 0, nil)
	if err != nil {
		t.Fatal(err)
	}
	return insts
}

func TestUncontendedAcquisition(t *testing.T) {
	w := algotest.NewWorld()
	m := build(t, w, 4)
	m[2].Request()
	// 3 requests broadcast, 3 replies back.
	if err := w.Drain(20); err != nil {
		t.Fatal(err)
	}
	if m[2].State() != mutex.InCS || !m[2].HoldsToken() {
		t.Fatalf("state %v after full reply round", m[2].State())
	}
	if got := len(w.Log()); got != 6 {
		t.Fatalf("%d messages, want 2(N-1)=6: %v", got, w.Kinds())
	}
	m[2].Release()
	if len(w.Inflight()) != 0 {
		t.Fatal("release with no deferred replies sent messages")
	}
}

// TestExactMessageComplexity: every CS costs exactly 2(N-1) messages, even
// under contention.
func TestExactMessageComplexity(t *testing.T) {
	w := algotest.NewWorld()
	m := build(t, w, 5)
	m[1].Request()
	m[3].Request()
	if err := w.Drain(100); err != nil {
		t.Fatal(err)
	}
	// One of them is in CS, the other waiting.
	inCS, waiting := m[1], m[3]
	if m[3].State() == mutex.InCS {
		inCS, waiting = m[3], m[1]
	}
	if inCS.State() != mutex.InCS || waiting.State() != mutex.Req {
		t.Fatalf("states: %v / %v", m[1].State(), m[3].State())
	}
	inCS.Release()
	if err := w.Drain(100); err != nil {
		t.Fatal(err)
	}
	if waiting.State() != mutex.InCS {
		t.Fatal("deferred reply did not grant the waiter")
	}
	waiting.Release()
	if err := w.Drain(100); err != nil {
		t.Fatal(err)
	}
	// Two critical sections, 2*2*(N-1) = 16 messages total.
	if got := len(w.Log()); got != 16 {
		t.Fatalf("%d messages for 2 CS, want 16: %v", got, w.Kinds())
	}
}

// TestTimestampPriority: the request with the smaller Lamport timestamp
// wins; ties break toward the smaller ID.
func TestTimestampPriority(t *testing.T) {
	w := algotest.NewWorld()
	m := build(t, w, 2)
	// Both request concurrently with clock 1: node 0 must win the tie.
	m[0].Request()
	m[1].Request()
	if err := w.Drain(50); err != nil {
		t.Fatal(err)
	}
	if m[0].State() != mutex.InCS {
		t.Fatalf("node 0 state %v, want CS (tie-break by ID)", m[0].State())
	}
	if m[1].State() != mutex.Req {
		t.Fatalf("node 1 state %v, want REQ", m[1].State())
	}
	if !m[0].HasPending() {
		t.Fatal("winner does not report the deferred loser")
	}
	m[0].Release()
	if err := w.Drain(50); err != nil {
		t.Fatal(err)
	}
	if m[1].State() != mutex.InCS {
		t.Fatal("loser never granted")
	}
}

// TestClockCatchUp: a node that was idle for many rounds still loses to an
// earlier-timestamped request in flight.
func TestClockCatchUp(t *testing.T) {
	w := algotest.NewWorld()
	m := build(t, w, 3)
	// Node 1 runs two full CS cycles, pushing clocks up at nodes that
	// hear its requests.
	for i := 0; i < 2; i++ {
		m[1].Request()
		if err := w.Drain(50); err != nil {
			t.Fatal(err)
		}
		m[1].Release()
		if err := w.Drain(50); err != nil {
			t.Fatal(err)
		}
	}
	// Node 2's clock advanced by receiving 1's requests; its next
	// request is timestamped after them.
	m[2].Request()
	if err := w.Drain(50); err != nil {
		t.Fatal(err)
	}
	if m[2].State() != mutex.InCS {
		t.Fatal("node 2 not granted in quiescent system")
	}
	m[2].Release()
	if err := w.Drain(50); err != nil {
		t.Fatal(err)
	}
}

func TestOnPendingFiresOnlyInCS(t *testing.T) {
	w := algotest.NewWorld()
	pendings := 0
	members := []mutex.ID{0, 1}
	insts, err := w.Build(New, members, 0, func(self mutex.ID) mutex.Callbacks {
		if self != 0 {
			return mutex.Callbacks{}
		}
		return mutex.Callbacks{OnPending: func() { pendings++ }}
	})
	if err != nil {
		t.Fatal(err)
	}
	insts[0].Request()
	if err := w.Drain(20); err != nil {
		t.Fatal(err)
	}
	insts[1].Request()
	if err := w.Drain(20); err != nil {
		t.Fatal(err)
	}
	if pendings != 1 {
		t.Fatalf("OnPending fired %d times, want 1", pendings)
	}
}

func TestSingleMember(t *testing.T) {
	w := algotest.NewWorld()
	m := build(t, w, 1)
	m[0].Request()
	w.Settle()
	if m[0].State() != mutex.InCS {
		t.Fatal("single member did not self-grant")
	}
	m[0].Release()
	if len(w.Log()) != 0 {
		t.Fatal("single member sent messages")
	}
}

func TestProtocolPanics(t *testing.T) {
	cases := []struct {
		name string
		run  func(m []mutex.Instance)
	}{
		{"double request", func(m []mutex.Instance) { m[1].Request(); m[1].Request() }},
		{"release without CS", func(m []mutex.Instance) { m[1].Release() }},
		{"reply while not requesting", func(m []mutex.Instance) { m[1].Deliver(0, Reply{}) }},
		{"unexpected message", func(m []mutex.Instance) { m[1].Deliver(0, bogus{}) }},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			w := algotest.NewWorld()
			m := build(t, w, 3)
			defer func() {
				if recover() == nil {
					t.Errorf("%s did not panic", tc.name)
				}
			}()
			tc.run(m)
		})
	}
}

type bogus struct{}

func (bogus) Kind() string { return "bogus" }
func (bogus) Size() int    { return 0 }

func TestNewRejectsInvalidConfig(t *testing.T) {
	if _, err := New(mutex.Config{}); err == nil {
		t.Fatal("New accepted an invalid config")
	}
}
