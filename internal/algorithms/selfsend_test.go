package algorithms_test

import (
	"testing"

	"gridmutex/internal/algorithms"
	"gridmutex/internal/mutex"
)

// recordEnv records sends and runs local callbacks synchronously.
type recordEnv struct{ sent []mutex.ID }

func (e *recordEnv) Send(to mutex.ID, _ mutex.Message) { e.sent = append(e.sent, to) }
func (e *recordEnv) Local(f func())                    { f() }

// TestNoSelfSend drives a request/release cycle on a single-member
// instance of every registered algorithm: the grant must short-circuit
// locally — mutex.Env leaves self-delivery undefined, so an instance that
// Sends to its own ID is broken on every transport.
func TestNoSelfSend(t *testing.T) {
	for _, name := range algorithms.Names() {
		t.Run(name, func(t *testing.T) {
			env := &recordEnv{}
			acquired := 0
			inst, err := algorithms.New(name, mutex.Config{
				Self: 0, Members: []mutex.ID{0}, Holder: 0, Env: env,
				Callbacks: mutex.Callbacks{OnAcquire: func() { acquired++ }},
			})
			if err != nil {
				t.Fatal(err)
			}
			for cycle := 1; cycle <= 2; cycle++ {
				inst.Request()
				if acquired != cycle {
					t.Fatalf("cycle %d: acquired %d times", cycle, acquired)
				}
				if inst.State() != mutex.InCS {
					t.Fatalf("cycle %d: state %v after grant", cycle, inst.State())
				}
				inst.Release()
			}
			if len(env.sent) != 0 {
				t.Fatalf("single-member instance sent %d messages (to %v), want none", len(env.sent), env.sent)
			}
		})
	}
}
