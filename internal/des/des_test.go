package des

import (
	"math/rand"
	"sort"
	"testing"
	"testing/quick"
	"time"

	"gridmutex/internal/mutex"
)

func TestEmptySimulator(t *testing.T) {
	s := New()
	if s.Now() != 0 {
		t.Fatalf("fresh simulator at %v, want 0", s.Now())
	}
	if s.Step() {
		t.Fatal("Step on empty queue reported an event")
	}
	s.Run() // must return immediately
	if s.Processed() != 0 {
		t.Fatalf("processed %d events on empty queue", s.Processed())
	}
}

func TestEventsFireInTimeOrder(t *testing.T) {
	s := New()
	var got []Time
	for _, d := range []time.Duration{30, 10, 20, 5, 25} {
		d := d * time.Millisecond
		s.At(d, func() { got = append(got, s.Now()) })
	}
	s.Run()
	want := []Time{5 * time.Millisecond, 10 * time.Millisecond, 20 * time.Millisecond,
		25 * time.Millisecond, 30 * time.Millisecond}
	if len(got) != len(want) {
		t.Fatalf("got %d events, want %d", len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("event %d fired at %v, want %v", i, got[i], want[i])
		}
	}
}

func TestSameInstantFIFO(t *testing.T) {
	s := New()
	var order []int
	for i := 0; i < 100; i++ {
		i := i
		s.At(time.Millisecond, func() { order = append(order, i) })
	}
	s.Run()
	for i, v := range order {
		if v != i {
			t.Fatalf("same-instant events reordered: position %d has %d", i, v)
		}
	}
}

func TestAfterSchedulesRelative(t *testing.T) {
	s := New()
	var fired Time
	s.At(10*time.Millisecond, func() {
		s.After(5*time.Millisecond, func() { fired = s.Now() })
	})
	s.Run()
	if fired != 15*time.Millisecond {
		t.Fatalf("nested After fired at %v, want 15ms", fired)
	}
}

func TestEventsScheduledDuringRun(t *testing.T) {
	s := New()
	count := 0
	var ping func()
	ping = func() {
		count++
		if count < 10 {
			s.After(time.Millisecond, ping)
		}
	}
	s.After(0, ping)
	s.Run()
	if count != 10 {
		t.Fatalf("chain executed %d times, want 10", count)
	}
	if s.Now() != 9*time.Millisecond {
		t.Fatalf("clock at %v, want 9ms", s.Now())
	}
}

func TestSchedulingIntoPastPanics(t *testing.T) {
	s := New()
	s.At(10*time.Millisecond, func() {
		defer func() {
			if recover() == nil {
				t.Error("scheduling into the past did not panic")
			}
		}()
		s.At(5*time.Millisecond, func() {})
	})
	s.Run()
}

func TestNilFuncPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("At(nil) did not panic")
		}
	}()
	New().At(0, nil)
}

func TestRunUntilStopsAtDeadline(t *testing.T) {
	s := New()
	var fired []Time
	for _, d := range []time.Duration{1, 2, 3, 4, 5} {
		d := d * time.Second
		s.At(d, func() { fired = append(fired, s.Now()) })
	}
	s.RunUntil(3 * time.Second)
	if len(fired) != 3 {
		t.Fatalf("fired %d events before deadline, want 3", len(fired))
	}
	if s.Now() != 3*time.Second {
		t.Fatalf("clock at %v after RunUntil, want 3s", s.Now())
	}
	if s.Pending() != 2 {
		t.Fatalf("%d events pending, want 2", s.Pending())
	}
	s.Run()
	if len(fired) != 5 {
		t.Fatalf("fired %d events total, want 5", len(fired))
	}
}

func TestRunUntilAdvancesIdleClock(t *testing.T) {
	s := New()
	s.RunUntil(time.Hour)
	if s.Now() != time.Hour {
		t.Fatalf("idle clock at %v, want 1h", s.Now())
	}
}

func TestRunForIsRelative(t *testing.T) {
	s := New()
	s.RunUntil(time.Second)
	hit := false
	s.After(500*time.Millisecond, func() { hit = true })
	s.RunFor(400 * time.Millisecond)
	if hit {
		t.Fatal("event fired before its instant")
	}
	if s.Now() != 1400*time.Millisecond {
		t.Fatalf("clock at %v, want 1.4s", s.Now())
	}
	s.RunFor(100 * time.Millisecond)
	if !hit {
		t.Fatal("event did not fire at its instant")
	}
}

func TestRunCappedDetectsLivelock(t *testing.T) {
	s := New()
	var loop func()
	loop = func() { s.After(time.Microsecond, loop) }
	s.After(0, loop)
	err := s.RunCapped(1000)
	if err == nil {
		t.Fatal("RunCapped did not report the livelock")
	}
	if _, ok := err.(MaxEventsExceeded); !ok {
		t.Fatalf("error %T, want MaxEventsExceeded", err)
	}
	if err.Error() == "" {
		t.Fatal("empty error string")
	}
}

func TestRunCappedFinishesUnderBudget(t *testing.T) {
	s := New()
	n := 0
	for i := 0; i < 50; i++ {
		s.At(Time(i)*time.Millisecond, func() { n++ })
	}
	if err := s.RunCapped(1000); err != nil {
		t.Fatalf("RunCapped failed: %v", err)
	}
	if n != 50 {
		t.Fatalf("executed %d events, want 50", n)
	}
}

// TestRunCappedBoundary pins the cap's boundary semantics: the error
// means "the budget ran out with work still pending", so a queue that
// drains on exactly the limit-th event is a clean nil — only a queue
// that still holds events once limit have run is a livelock finding.
func TestRunCappedBoundary(t *testing.T) {
	const events = 10
	for _, tc := range []struct {
		limit   uint64
		wantErr bool
	}{
		{limit: events - 1, wantErr: true},
		{limit: events, wantErr: false},
		{limit: events + 1, wantErr: false},
	} {
		s := New()
		ran := 0
		for i := 0; i < events; i++ {
			s.At(Time(i)*time.Millisecond, func() { ran++ })
		}
		err := s.RunCapped(tc.limit)
		if tc.wantErr {
			if _, ok := err.(MaxEventsExceeded); !ok {
				t.Errorf("limit %d: error %v, want MaxEventsExceeded", tc.limit, err)
			}
			if ran != int(tc.limit) {
				t.Errorf("limit %d: executed %d events before stopping, want %d", tc.limit, ran, tc.limit)
			}
			continue
		}
		if err != nil {
			t.Errorf("limit %d: drained queue reported %v, want nil", tc.limit, err)
		}
		if ran != events {
			t.Errorf("limit %d: executed %d events, want %d", tc.limit, ran, events)
		}
	}
}

func TestReentrantRunPanics(t *testing.T) {
	s := New()
	s.After(0, func() {
		defer func() {
			if recover() == nil {
				t.Error("reentrant Run did not panic")
			}
		}()
		s.Run()
	})
	s.Run()
}

// Property: for any set of delays, events fire in nondecreasing time order
// and the processed count matches the number of scheduled events.
func TestPropertyOrderedExecution(t *testing.T) {
	f := func(raw []uint32) bool {
		if len(raw) > 500 {
			raw = raw[:500]
		}
		s := New()
		var fired []Time
		for _, r := range raw {
			d := time.Duration(r%1_000_000) * time.Microsecond
			s.At(d, func() { fired = append(fired, s.Now()) })
		}
		s.Run()
		if len(fired) != len(raw) {
			return false
		}
		if !sort.SliceIsSorted(fired, func(i, j int) bool { return fired[i] < fired[j] }) {
			return false
		}
		return s.Processed() == uint64(len(raw))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

// Property: two simulators fed the same schedule execute identically.
func TestPropertyDeterminism(t *testing.T) {
	f := func(seed int64) bool {
		run := func() []Time {
			rng := rand.New(rand.NewSource(seed))
			s := New()
			var fired []Time
			var spawn func(depth int)
			spawn = func(depth int) {
				fired = append(fired, s.Now())
				if depth < 3 {
					for i := 0; i < 2; i++ {
						s.After(time.Duration(rng.Intn(1000))*time.Microsecond, func() { spawn(depth + 1) })
					}
				}
			}
			for i := 0; i < 10; i++ {
				s.At(time.Duration(rng.Intn(1000))*time.Microsecond, func() { spawn(0) })
			}
			s.Run()
			return fired
		}
		a, b := run(), run()
		if len(a) != len(b) {
			return false
		}
		for i := range a {
			if a[i] != b[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Fatal(err)
	}
}

// TestSteadyStateSchedulingAllocs pins the event queue's allocation
// behavior: once the backing array has grown to the high-water mark,
// scheduling and draining events allocates nothing (events are stored by
// value in the heap slice, not boxed per At call).
func TestSteadyStateSchedulingAllocs(t *testing.T) {
	s := New()
	fn := func() {}
	// Grow the queue to its high-water mark once.
	for j := 0; j < 1024; j++ {
		s.At(s.Now()+Time(j%13)*time.Millisecond, fn)
	}
	s.Run()
	allocs := testing.AllocsPerRun(100, func() {
		for j := 0; j < 1024; j++ {
			s.At(s.Now()+Time(j%13)*time.Millisecond, fn)
		}
		s.Run()
	})
	if allocs > 1 {
		t.Errorf("steady-state schedule+run of 1024 events allocates %.1f times, want ~0", allocs)
	}
}

// TestHeapOrderAfterInterleavedPops stresses the hand-rolled sift
// routines: interleaved pushes and pops must still drain in (at, seq)
// order.
func TestHeapOrderAfterInterleavedPops(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	s := New()
	var fired []Time
	record := func() { fired = append(fired, s.Now()) }
	for round := 0; round < 20; round++ {
		for j := 0; j < 50; j++ {
			s.At(s.Now()+time.Duration(rng.Intn(5000))*time.Microsecond, record)
		}
		for j := 0; j < 25; j++ {
			s.Step()
		}
	}
	s.Run()
	if !sort.SliceIsSorted(fired, func(i, j int) bool { return fired[i] < fired[j] }) {
		t.Fatal("events fired out of time order after interleaved pops")
	}
	if got := uint64(len(fired)); s.Processed() != got || got != 20*50 {
		t.Fatalf("processed %d events, fired %d, want %d", s.Processed(), got, 20*50)
	}
}

func BenchmarkScheduleAndRun(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		s := New()
		for j := 0; j < 1000; j++ {
			s.At(Time(j%17)*time.Millisecond, func() {})
		}
		s.Run()
	}
}

// deliverRec records typed deliveries for AtDeliver tests.
type deliverRec struct {
	s   *Simulator
	got []struct {
		at   Time
		from mutex.ID
		m    mutex.Message
	}
}

func (d *deliverRec) Deliver(from mutex.ID, m mutex.Message) {
	d.got = append(d.got, struct {
		at   Time
		from mutex.ID
		m    mutex.Message
	}{d.s.Now(), from, m})
}

type testMsg struct{ n int }

func (testMsg) Kind() string { return "test" }
func (testMsg) Size() int    { return 8 }

// TestAtDeliverOrderingWithClosures interleaves typed delivery events with
// closure events at mixed instants: both variants must drain in (at, seq)
// order through the same queue.
func TestAtDeliverOrderingWithClosures(t *testing.T) {
	s := New()
	rec := &deliverRec{s: s}
	var order []string
	s.At(2*time.Millisecond, func() { order = append(order, "fn@2") })
	s.AtDeliver(time.Millisecond, rec, 7, testMsg{1})
	s.AtDeliver(2*time.Millisecond, rec, 8, testMsg{2}) // same instant as fn@2, scheduled after
	s.At(time.Millisecond, func() { order = append(order, "fn@1") }) // same instant as first delivery, after
	s.Run()
	if len(rec.got) != 2 {
		t.Fatalf("deliveries %d, want 2", len(rec.got))
	}
	if rec.got[0].at != time.Millisecond || rec.got[0].from != 7 || rec.got[0].m.(testMsg).n != 1 {
		t.Fatalf("first delivery %+v", rec.got[0])
	}
	if rec.got[1].at != 2*time.Millisecond || rec.got[1].from != 8 {
		t.Fatalf("second delivery %+v", rec.got[1])
	}
	if len(order) != 2 || order[0] != "fn@1" || order[1] != "fn@2" {
		t.Fatalf("closure order %v, want [fn@1 fn@2]", order)
	}
	if s.Processed() != 4 {
		t.Fatalf("processed %d, want 4", s.Processed())
	}
}

// TestAtDeliverPanics: nil handlers and past instants are never accepted.
func TestAtDeliverPanics(t *testing.T) {
	s := New()
	s.At(time.Millisecond, func() {})
	s.Run() // now = 1ms
	expectPanic := func(name string, f func()) {
		t.Helper()
		defer func() {
			if recover() == nil {
				t.Errorf("%s did not panic", name)
			}
		}()
		f()
	}
	rec := &deliverRec{s: s}
	expectPanic("nil handler", func() { s.AtDeliver(2*time.Millisecond, nil, 0, testMsg{}) })
	expectPanic("past instant", func() { s.AtDeliver(0, rec, 0, testMsg{}) })
}

// TestAtDeliverSteadyStateAllocs pins the typed delivery variant: unlike a
// closure capturing (handler, from, msg), AtDeliver stores everything by
// value in the queue slice, so the steady state allocates nothing.
func TestAtDeliverSteadyStateAllocs(t *testing.T) {
	s := New()
	rec := &deliverRec{s: s}
	rec.got = make([]struct {
		at   Time
		from mutex.ID
		m    mutex.Message
	}, 0, 4096)
	msg := mutex.Message(testMsg{1}) // box once, outside the measured loop
	for j := 0; j < 1024; j++ {
		s.AtDeliver(s.Now()+Time(j%13)*time.Millisecond, rec, 0, msg)
	}
	s.Run()
	allocs := testing.AllocsPerRun(100, func() {
		rec.got = rec.got[:0]
		for j := 0; j < 1024; j++ {
			s.AtDeliver(s.Now()+Time(j%13)*time.Millisecond, rec, 0, msg)
		}
		s.Run()
	})
	if allocs > 1 {
		t.Errorf("steady-state AtDeliver of 1024 messages allocates %.1f times, want ~0", allocs)
	}
}
