// windows.go implements conservative parallel simulation in the
// Chandy-Misra style: the event space is partitioned into logical
// processes (LPs), each owning a private Simulator, and a lookahead — a
// lower bound on the latency of any cross-LP message — defines windows
// of virtual time inside which the LPs cannot affect each other and may
// therefore execute concurrently.
//
// Each window starts at base, the earliest pending instant across all
// LPs, and ends at base+lookahead. Every cross-LP message is emitted at
// or after base and arrives at least lookahead later, i.e. at or after
// the window's end — so no message sent during a window can be due
// inside it, and every LP can safely drain its queue up to (exclusive)
// the window end without synchronizing. Cross-LP sends are buffered per
// source LP during the window and flushed into the destination queues at
// the barrier, in source-index order, so the sequence numbers a
// destination assigns — and with them the whole simulation — are a pure
// function of the inputs, independent of how many OS threads ran the
// window. The fan-out itself reuses internal/fleet, the one documented
// goroutine island (DESIGN.md §8): jobs share no state, and the barrier
// (fleet's WaitGroup) orders every buffered write before the flush reads
// it.
package des

import (
	"fmt"
	"math"

	"gridmutex/internal/fleet"
	"gridmutex/internal/mutex"
)

// maxTime is the largest representable virtual instant.
const maxTime = Time(math.MaxInt64)

// crossMsg is one buffered inter-LP delivery, staged in the sending LP's
// buffer until the window barrier.
type crossMsg struct {
	at   Time
	dst  int32
	from mutex.ID
	h    mutex.Handler
	msg  mutex.Message
}

// Windows schedules n logical processes under lookahead windows. It is
// the parallel counterpart of Simulator's run loop: construct the LPs,
// wire every model object to its home LP, then drive the whole system
// with RunUntil/RunCapped on the Windows value instead of on a single
// Simulator.
type Windows struct {
	lps       []*Simulator
	lookahead Time
	workers   int
	// cross[src] is appended to only by src's LP while a window runs and
	// drained only at the barrier, so the buffers need no locks.
	cross [][]crossMsg
}

// NewWindows builds a window scheduler over n logical processes.
// lookahead must be positive when n > 1 — a zero lookahead admits no
// concurrency, and callers must fall back to a single Simulator instead.
// workers caps how many LPs execute concurrently per window; 1 keeps
// every event on the calling goroutine (the serial reference mode that
// parallel runs must match byte for byte).
func NewWindows(n int, lookahead Time, workers int) *Windows {
	if n <= 0 {
		panic(fmt.Sprintf("des: NewWindows with %d logical processes", n))
	}
	if n > 1 && lookahead <= 0 {
		panic(fmt.Sprintf("des: NewWindows with %d LPs needs positive lookahead, got %v", n, lookahead))
	}
	w := &Windows{
		lps:       make([]*Simulator, n),
		lookahead: lookahead,
		workers:   workers,
		cross:     make([][]crossMsg, n),
	}
	for i := range w.lps {
		w.lps[i] = New()
	}
	return w
}

// NumLPs returns the number of logical processes.
func (w *Windows) NumLPs() int { return len(w.lps) }

// LP returns the i-th logical process's simulator. Model objects homed
// on LP i must schedule exclusively through it.
func (w *Windows) LP(i int) *Simulator { return w.lps[i] }

// CrossSend stages a typed delivery from LP src to LP dst at instant at.
// It must be called from src's event context (the network layer calls it
// while one of src's events executes), and at must be at least lookahead
// beyond the current window's start — which any message whose latency is
// at least the lookahead satisfies by construction. The delivery is
// enqueued on dst at the next window barrier.
func (w *Windows) CrossSend(src, dst int, at Time, h mutex.Handler, from mutex.ID, m mutex.Message) {
	if h == nil {
		panic("des: CrossSend with nil handler")
	}
	if dst < 0 || dst >= len(w.lps) {
		panic(fmt.Sprintf("des: CrossSend to LP %d of %d", dst, len(w.lps)))
	}
	w.cross[src] = append(w.cross[src], crossMsg{at: at, dst: int32(dst), from: from, h: h, msg: m})
}

// flush drains every cross-LP buffer into the destination queues, in
// source-index order — the deterministic merge that fixes the sequence
// numbers destinations assign. Like the event queue's slots, drained
// entries are not zeroed: the next window overwrites them.
func (w *Windows) flush() {
	for src := range w.cross {
		buf := w.cross[src]
		for i := range buf {
			c := &buf[i]
			w.lps[c.dst].AtDeliver(c.at, c.h, c.from, c.msg)
		}
		w.cross[src] = buf[:0]
	}
}

// nextInstant returns the earliest pending instant across all LPs, or
// false when every queue is empty.
func (w *Windows) nextInstant() (Time, bool) {
	var min Time
	found := false
	for _, lp := range w.lps {
		if len(lp.queue.keys) == 0 {
			continue
		}
		if at := lp.queue.keys[0].at; !found || at < min {
			min, found = at, true
		}
	}
	return min, found
}

// windowEnd computes the exclusive end of the window opening at base. A
// single LP has no cross traffic to wait for, so its window is unbounded.
func (w *Windows) windowEnd(base Time) Time {
	if len(w.lps) == 1 {
		return maxTime
	}
	end := base + w.lookahead
	if end < base { // overflow: the rest of virtual time is one window
		return maxTime
	}
	return end
}

// runWindow executes one window on every LP. Each LP's execution is a
// pure function of its own queue — cross-LP output goes to the staging
// buffers — so running them on one goroutine or several is
// indistinguishable afterwards. budget bounds the events per LP within
// the window (the livelock guard); the caller re-checks the global
// budget at the barrier.
func (w *Windows) runWindow(end Time, budget uint64) {
	if len(w.lps) == 1 || w.workers <= 1 {
		for _, lp := range w.lps {
			lp.runBounded(end, budget)
		}
		return
	}
	// fleet.Map is the barrier: it returns only after every LP finished
	// its window, and its WaitGroup orders all buffered cross-LP writes
	// before the flush that reads them. Jobs never error; a panic
	// re-raises lowest-index-first on this goroutine.
	fleet.Map(len(w.lps), w.workers, func(i int) (struct{}, error) {
		w.lps[i].runBounded(end, budget)
		return struct{}{}, nil
	})
}

// RunCapped drives windows until every queue drains, or the total event
// budget is exhausted with work still pending — then it returns
// MaxEventsExceeded, exactly like Simulator.RunCapped: a run whose
// queues drain on the limit-th event is a clean nil.
func (w *Windows) RunCapped(limit uint64) error {
	start := w.Processed()
	for {
		w.flush()
		base, ok := w.nextInstant()
		if !ok {
			return nil
		}
		done := w.Processed() - start
		if done >= limit {
			return MaxEventsExceeded{Limit: limit, Now: base}
		}
		w.runWindow(w.windowEnd(base), limit-done)
	}
}

// RunUntil drives windows until no pending event is due at or before
// deadline, then advances every LP's clock to the deadline — the
// windowed counterpart of Simulator.RunUntil.
func (w *Windows) RunUntil(deadline Time) {
	limit := deadline + 1 // runBounded is exclusive; include events at the deadline
	if limit < deadline {
		limit = maxTime
	}
	for {
		w.flush()
		base, ok := w.nextInstant()
		if !ok || base > deadline {
			break
		}
		end := w.windowEnd(base)
		if end > limit {
			end = limit
		}
		w.runWindow(end, math.MaxUint64)
	}
	for _, lp := range w.lps {
		lp.RunUntil(deadline)
	}
}

// Processed returns the total events executed across all LPs.
func (w *Windows) Processed() uint64 {
	var sum uint64
	for _, lp := range w.lps {
		sum += lp.processed
	}
	return sum
}

// Pending returns the total events waiting across all LPs and staging
// buffers.
func (w *Windows) Pending() int {
	n := 0
	for _, lp := range w.lps {
		n += len(lp.queue.keys)
	}
	for _, buf := range w.cross {
		n += len(buf)
	}
	return n
}

// Now returns the frontier of virtual time: the latest LP clock.
func (w *Windows) Now() Time {
	var max Time
	for _, lp := range w.lps {
		if lp.now > max {
			max = lp.now
		}
	}
	return max
}
