// Package des implements a deterministic discrete-event simulator.
//
// The simulator owns a virtual clock and a priority queue of events. Events
// scheduled for the same instant fire in scheduling order (FIFO), which makes
// every simulation a pure function of its inputs: same events in, same
// trajectory out. All times are virtual and expressed as time.Duration
// offsets from the start of the simulation; no wall-clock time is consulted.
package des

import (
	"fmt"
	"time"
)

// Time is an instant in virtual time, measured from the start of the
// simulation.
type Time = time.Duration

// event is a closure scheduled to run at a virtual instant.
type event struct {
	at  Time
	seq uint64 // FIFO tie-break for events at the same instant
	fn  func()
}

// eventQueue is a binary min-heap of events by value, ordered by
// (at, seq). The heap is hand-rolled rather than built on container/heap
// because that interface moves every element through `any`, boxing each
// event onto the garbage-collected heap; storing values in one slice
// makes scheduling allocation-free once the queue's backing array has
// grown to the simulation's high-water mark.
type eventQueue []event

func (q eventQueue) less(i, j int) bool {
	if q[i].at != q[j].at {
		return q[i].at < q[j].at
	}
	return q[i].seq < q[j].seq
}

// push adds e and restores the heap invariant (sift-up).
func (q *eventQueue) push(e event) {
	h := append(*q, e)
	i := len(h) - 1
	for i > 0 {
		parent := (i - 1) / 2
		if !h.less(i, parent) {
			break
		}
		h[i], h[parent] = h[parent], h[i]
		i = parent
	}
	*q = h
}

// pop removes and returns the minimum event (sift-down).
func (q *eventQueue) pop() event {
	h := *q
	top := h[0]
	n := len(h) - 1
	h[0] = h[n]
	h[n] = event{} // release the closure for the collector
	h = h[:n]
	i := 0
	for {
		left := 2*i + 1
		if left >= n {
			break
		}
		min := left
		if right := left + 1; right < n && h.less(right, left) {
			min = right
		}
		if !h.less(min, i) {
			break
		}
		h[i], h[min] = h[min], h[i]
		i = min
	}
	*q = h
	return top
}

// Simulator is a single-threaded discrete-event scheduler. It is not safe
// for concurrent use; all node state machines hosted on one Simulator run
// serially, which is what makes their interleaving reproducible.
type Simulator struct {
	now       Time
	queue     eventQueue
	seq       uint64
	processed uint64
	running   bool
}

// New returns a simulator with an empty event queue at virtual time zero.
func New() *Simulator {
	return &Simulator{}
}

// Now returns the current virtual time.
func (s *Simulator) Now() Time { return s.now }

// Processed returns the number of events executed so far.
func (s *Simulator) Processed() uint64 { return s.processed }

// Pending returns the number of events waiting in the queue.
func (s *Simulator) Pending() int { return len(s.queue) }

// At schedules fn to run at virtual time t. Scheduling in the past panics:
// it would silently corrupt causality, which is never recoverable.
func (s *Simulator) At(t Time, fn func()) {
	if fn == nil {
		panic("des: At called with nil function")
	}
	if t < s.now {
		panic(fmt.Sprintf("des: scheduling into the past (now=%v, at=%v)", s.now, t))
	}
	s.seq++
	s.queue.push(event{at: t, seq: s.seq, fn: fn})
}

// After schedules fn to run d after the current virtual time. A negative d
// panics.
func (s *Simulator) After(d time.Duration, fn func()) {
	s.At(s.now+d, fn)
}

// Step executes the earliest pending event, advancing the clock to its
// instant. It reports whether an event was executed.
func (s *Simulator) Step() bool {
	if len(s.queue) == 0 {
		return false
	}
	e := s.queue.pop()
	s.now = e.at
	s.processed++
	e.fn()
	return true
}

// Run executes events until the queue is empty.
func (s *Simulator) Run() {
	s.guardRun()
	defer func() { s.running = false }()
	for s.Step() {
	}
}

// RunUntil executes events with instants <= deadline, then advances the
// clock to deadline. Events scheduled beyond the deadline remain queued.
func (s *Simulator) RunUntil(deadline Time) {
	s.guardRun()
	defer func() { s.running = false }()
	for len(s.queue) > 0 && s.queue[0].at <= deadline {
		s.Step()
	}
	if s.now < deadline {
		s.now = deadline
	}
}

// RunFor executes events for d of virtual time from the current instant.
func (s *Simulator) RunFor(d time.Duration) {
	s.RunUntil(s.now + d)
}

// MaxEventsExceeded is the panic value used by RunCapped when the event
// budget is exhausted; it almost always indicates a livelock (two nodes
// bouncing messages forever).
type MaxEventsExceeded struct {
	Limit uint64
	Now   Time
}

func (m MaxEventsExceeded) Error() string {
	return fmt.Sprintf("des: exceeded %d events at virtual time %v", m.Limit, m.Now)
}

// RunCapped executes events until the queue is empty or limit events have
// been executed during this call, in which case it returns a
// MaxEventsExceeded error. Useful as a livelock guard in tests.
func (s *Simulator) RunCapped(limit uint64) error {
	s.guardRun()
	defer func() { s.running = false }()
	start := s.processed
	for len(s.queue) > 0 {
		if s.processed-start >= limit {
			return MaxEventsExceeded{Limit: limit, Now: s.now}
		}
		s.Step()
	}
	return nil
}

func (s *Simulator) guardRun() {
	if s.running {
		panic("des: reentrant Run on the same Simulator")
	}
	s.running = true
}
