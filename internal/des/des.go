// Package des implements a deterministic discrete-event simulator.
//
// The simulator owns a virtual clock and a priority queue of events. Events
// scheduled for the same instant fire in scheduling order (FIFO), which makes
// every simulation a pure function of its inputs: same events in, same
// trajectory out. All times are virtual and expressed as time.Duration
// offsets from the start of the simulation; no wall-clock time is consulted.
package des

import (
	"fmt"
	"time"

	"gridmutex/internal/mutex"
)

// Time is an instant in virtual time, measured from the start of the
// simulation.
type Time = time.Duration

// payload is the work carried by a scheduled event. It is one of two
// variants, discriminated by fn:
//
//   - a closure event (fn non-nil), scheduled with At/After;
//   - a typed delivery event (fn nil), scheduled with AtDeliver: the
//     handler, sender and message are stored by value in the slot array,
//     so a network layer delivering millions of messages never boxes a
//     per-message closure onto the garbage-collected heap.
type payload struct {
	fn func()
	// Typed delivery fields (fn == nil). h and msg are interface values:
	// copying them moves two words each, no allocation.
	h    mutex.Handler
	msg  mutex.Message
	from mutex.ID
}

// run executes the payload's variant.
func (p *payload) run() {
	if p.fn != nil {
		p.fn()
		return
	}
	p.h.Deliver(p.from, p.msg)
}

// eventKey is a heap element: the ordering fields plus the index of the
// event's payload slot. It is pointer-free on purpose — sifting a key up
// or down copies 24 bytes and emits no GC write barriers, where sifting
// a full event (five pointer words of closure/handler/message) made the
// runtime's bulk barrier the hottest frame in the scheduler profile.
type eventKey struct {
	at   Time
	seq  uint64 // FIFO tie-break for events at the same instant
	slot int32
}

// before orders two keys by (at, seq). seq is unique per simulator, so
// the order is total and the slot index never participates.
func (k eventKey) before(o eventKey) bool {
	if k.at != o.at {
		return k.at < o.at
	}
	return k.seq < o.seq
}

// eventQueue is a 4-ary min-heap in structure-of-arrays form: keys sift
// through the heap, payloads stay put in their slot until popped, and
// freed slots recycle through a stack. The heap is hand-rolled rather
// than built on container/heap because that interface moves every
// element through `any`, boxing each event onto the garbage-collected
// heap; here scheduling is allocation-free once the backing arrays have
// grown to the simulation's high-water mark. The fan-out of four halves
// the tree depth of the pop-heavy workload, and the four child keys it
// scans per level sit in adjacent cache lines.
type eventQueue struct {
	keys  []eventKey
	slots []payload
	free  []int32 // stack of reusable indices into slots
}

// push adds an event and restores the heap invariant. The sift-up moves
// a hole toward the root and writes the key exactly once; the payload is
// written once into its slot and never moves.
func (q *eventQueue) push(at Time, seq uint64, p payload) {
	var slot int32
	if n := len(q.free); n > 0 {
		slot = q.free[n-1]
		q.free = q.free[:n-1]
	} else {
		slot = int32(len(q.slots))
		q.slots = append(q.slots, payload{})
	}
	q.slots[slot] = p
	k := eventKey{at: at, seq: seq, slot: slot}
	keys := append(q.keys, eventKey{})
	i := len(keys) - 1
	for i > 0 {
		parent := (i - 1) / 4
		if !k.before(keys[parent]) {
			break
		}
		keys[i] = keys[parent]
		i = parent
	}
	keys[i] = k
	q.keys = keys
}

// pop removes and returns the minimum event's instant and payload. Like
// push, the sift-down moves a hole instead of swapping pairs.
func (q *eventQueue) pop() (Time, payload) {
	keys := q.keys
	top := keys[0]
	n := len(keys) - 1
	last := keys[n]
	keys = keys[:n]
	i := 0
	for {
		first := 4*i + 1
		if first >= n {
			break
		}
		min := first
		end := min4(first+4, n)
		for c := first + 1; c < end; c++ {
			if keys[c].before(keys[min]) {
				min = c
			}
		}
		if !last.before(keys[min]) {
			keys[i] = keys[min]
			i = min
			continue
		}
		break
	}
	if n > 0 {
		keys[i] = last
	}
	q.keys = keys
	p := q.slots[top.slot]
	// The slot is NOT zeroed here: the next push into it overwrites every
	// field, and skipping the clear saves a bulk write barrier per event.
	// The popped closure/message stays reachable until then — acceptable,
	// because a queue lives only as long as its (short) simulation.
	q.free = append(q.free, top.slot)
	return top.at, p
}

func min4(a, b int) int {
	if a < b {
		return a
	}
	return b
}

// Simulator is a single-threaded discrete-event scheduler. It is not safe
// for concurrent use; all node state machines hosted on one Simulator run
// serially, which is what makes their interleaving reproducible.
type Simulator struct {
	now       Time
	queue     eventQueue
	seq       uint64
	processed uint64
	running   bool
}

// New returns a simulator with an empty event queue at virtual time zero.
func New() *Simulator {
	return &Simulator{}
}

// Now returns the current virtual time.
func (s *Simulator) Now() Time { return s.now }

// Processed returns the number of events executed so far.
func (s *Simulator) Processed() uint64 { return s.processed }

// Pending returns the number of events waiting in the queue.
func (s *Simulator) Pending() int { return len(s.queue.keys) }

// At schedules fn to run at virtual time t. Scheduling in the past panics:
// it would silently corrupt causality, which is never recoverable.
func (s *Simulator) At(t Time, fn func()) {
	if fn == nil {
		panic("des: At called with nil function")
	}
	if t < s.now {
		panic(fmt.Sprintf("des: scheduling into the past (now=%v, at=%v)", s.now, t))
	}
	s.seq++
	s.queue.push(t, s.seq, payload{fn: fn})
}

// After schedules fn to run d after the current virtual time. A negative d
// panics.
func (s *Simulator) After(d time.Duration, fn func()) {
	s.At(s.now+d, fn)
}

// AtDeliver schedules a typed message delivery at virtual time t: when the
// event fires, h.Deliver(from, m) runs. Unlike At with a closure, the
// handler, sender and message are stored by value inside the event queue,
// so the steady-state send path of a network layer allocates nothing.
// Scheduling in the past or with a nil handler panics.
func (s *Simulator) AtDeliver(t Time, h mutex.Handler, from mutex.ID, m mutex.Message) {
	if h == nil {
		panic("des: AtDeliver called with nil handler")
	}
	if t < s.now {
		panic(fmt.Sprintf("des: scheduling into the past (now=%v, at=%v)", s.now, t))
	}
	s.seq++
	s.queue.push(t, s.seq, payload{h: h, from: from, msg: m})
}

// Step executes the earliest pending event, advancing the clock to its
// instant. It reports whether an event was executed.
func (s *Simulator) Step() bool {
	if len(s.queue.keys) == 0 {
		return false
	}
	at, p := s.queue.pop()
	s.now = at
	s.processed++
	p.run()
	return true
}

// Run executes events until the queue is empty.
func (s *Simulator) Run() {
	s.guardRun()
	defer func() { s.running = false }()
	for s.Step() {
	}
}

// RunUntil executes events with instants <= deadline, then advances the
// clock to deadline. Events scheduled beyond the deadline remain queued.
func (s *Simulator) RunUntil(deadline Time) {
	s.guardRun()
	defer func() { s.running = false }()
	for len(s.queue.keys) > 0 && s.queue.keys[0].at <= deadline {
		s.Step()
	}
	if s.now < deadline {
		s.now = deadline
	}
}

// RunFor executes events for d of virtual time from the current instant.
func (s *Simulator) RunFor(d time.Duration) {
	s.RunUntil(s.now + d)
}

// MaxEventsExceeded is the panic value used by RunCapped when the event
// budget is exhausted; it almost always indicates a livelock (two nodes
// bouncing messages forever).
type MaxEventsExceeded struct {
	Limit uint64
	Now   Time
}

func (m MaxEventsExceeded) Error() string {
	return fmt.Sprintf("des: exceeded %d events at virtual time %v", m.Limit, m.Now)
}

// RunCapped executes events until the queue is empty or limit events have
// been executed during this call, in which case it returns a
// MaxEventsExceeded error. Useful as a livelock guard in tests.
func (s *Simulator) RunCapped(limit uint64) error {
	s.guardRun()
	defer func() { s.running = false }()
	start := s.processed
	for len(s.queue.keys) > 0 {
		if s.processed-start >= limit {
			return MaxEventsExceeded{Limit: limit, Now: s.now}
		}
		s.Step()
	}
	return nil
}

// runBounded executes events with instants strictly before end, up to
// budget events, and stops. Unlike RunUntil it never advances the clock
// past the last executed event: the caller (the window scheduler) owns
// the decision of when an idle LP's clock may move, because moving it
// early would make subsequent scheduling panics depend on window shape.
func (s *Simulator) runBounded(end Time, budget uint64) {
	s.guardRun()
	defer func() { s.running = false }()
	for budget > 0 && len(s.queue.keys) > 0 && s.queue.keys[0].at < end {
		s.Step()
		budget--
	}
}

func (s *Simulator) guardRun() {
	if s.running {
		panic("des: reentrant Run on the same Simulator")
	}
	s.running = true
}
