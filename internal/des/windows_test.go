package des

import (
	"fmt"
	"testing"
	"time"

	"gridmutex/internal/mutex"
)

// pingMsg is a minimal typed message for cross-LP traffic.
type pingMsg struct{ n int }

func (pingMsg) Kind() string { return "ping" }
func (pingMsg) Size() int    { return 8 }

// lpNode is a toy model process pinned to one LP: on every delivery it
// logs the instant and bounces the message to the peer LP after the
// link latency, until hops runs out.
type lpNode struct {
	w       *Windows
	lp      int
	peer    *lpNode
	latency Time
	log     *[]string
}

func (n *lpNode) Deliver(from mutex.ID, m mutex.Message) {
	msg := m.(pingMsg)
	sim := n.w.LP(n.lp)
	*n.log = append(*n.log, fmt.Sprintf("lp%d@%v:%d", n.lp, sim.Now(), msg.n))
	if msg.n == 0 {
		return
	}
	n.w.CrossSend(n.lp, n.peer.lp, sim.Now()+n.latency, n.peer, mutex.ID(n.lp), pingMsg{n: msg.n - 1})
}

// pingPong builds a 2-LP system bouncing a message hops times over a
// link of the given latency and returns the delivery log.
func pingPong(workers int, hops int, latency Time) []string {
	w := NewWindows(2, latency, workers)
	var log []string
	a := &lpNode{w: w, lp: 0, latency: latency, log: &log}
	b := &lpNode{w: w, lp: 1, latency: latency, log: &log}
	a.peer, b.peer = b, a
	w.LP(0).AtDeliver(0, a, 1, pingMsg{n: hops})
	if err := w.RunCapped(1_000_000); err != nil {
		panic(err)
	}
	return log
}

// TestWindowsCrossLPDelivery drives a deterministic two-LP ping-pong and
// checks instants and order.
func TestWindowsCrossLPDelivery(t *testing.T) {
	log := pingPong(1, 3, 5*time.Millisecond)
	want := []string{
		"lp0@0s:3",
		"lp1@5ms:2",
		"lp0@10ms:1",
		"lp1@15ms:0",
	}
	if len(log) != len(want) {
		t.Fatalf("log %v, want %v", log, want)
	}
	for i := range want {
		if log[i] != want[i] {
			t.Errorf("log[%d] = %q, want %q", i, log[i], want[i])
		}
	}
}

// TestWindowsWorkerEquivalence is the core determinism contract: the
// same model run with 1 worker and with many workers must produce the
// same delivery sequence.
func TestWindowsWorkerEquivalence(t *testing.T) {
	serial := pingPong(1, 40, 3*time.Millisecond)
	for _, workers := range []int{2, 4, 8} {
		parallel := pingPong(workers, 40, 3*time.Millisecond)
		if len(parallel) != len(serial) {
			t.Fatalf("workers=%d: %d deliveries, want %d", workers, len(parallel), len(serial))
		}
		for i := range serial {
			if parallel[i] != serial[i] {
				t.Fatalf("workers=%d: delivery %d = %q, want %q", workers, i, parallel[i], serial[i])
			}
		}
	}
}

// TestWindowsSingleLPUnbounded: one LP has no cross traffic, so its
// window is the whole of virtual time regardless of the lookahead.
func TestWindowsSingleLPUnbounded(t *testing.T) {
	w := NewWindows(1, 0, 4) // zero lookahead is legal with a single LP
	var fired []Time
	for _, d := range []time.Duration{5, 1, 3} {
		d := d * time.Hour
		w.LP(0).At(d, func() { fired = append(fired, w.LP(0).Now()) })
	}
	if err := w.RunCapped(100); err != nil {
		t.Fatalf("RunCapped: %v", err)
	}
	want := []Time{time.Hour, 3 * time.Hour, 5 * time.Hour}
	if len(fired) != len(want) {
		t.Fatalf("fired %v, want %v", fired, want)
	}
	for i := range want {
		if fired[i] != want[i] {
			t.Errorf("fired[%d] = %v, want %v", i, fired[i], want[i])
		}
	}
	if w.Processed() != 3 {
		t.Errorf("processed %d, want 3", w.Processed())
	}
}

// TestWindowsZeroLookaheadPanics: multiple LPs with no lookahead admit
// no concurrency; the constructor must refuse rather than deadlock or
// serialize silently.
func TestWindowsZeroLookaheadPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("NewWindows(2, 0, 1) did not panic")
		}
	}()
	NewWindows(2, 0, 1)
}

// TestWindowsRunCappedBoundary mirrors the Simulator boundary test: a
// system draining on exactly the limit-th event returns nil.
func TestWindowsRunCappedBoundary(t *testing.T) {
	// The 3-hop ping-pong processes exactly 4 events.
	run := func(limit uint64) error {
		w := NewWindows(2, time.Millisecond, 1)
		var log []string
		a := &lpNode{w: w, lp: 0, latency: time.Millisecond, log: &log}
		b := &lpNode{w: w, lp: 1, latency: time.Millisecond, log: &log}
		a.peer, b.peer = b, a
		w.LP(0).AtDeliver(0, a, 1, pingMsg{n: 3})
		return w.RunCapped(limit)
	}
	if err := run(3); err == nil {
		t.Error("limit 3: want MaxEventsExceeded, got nil")
	}
	if err := run(4); err != nil {
		t.Errorf("limit 4 (exact drain): want nil, got %v", err)
	}
	if err := run(5); err != nil {
		t.Errorf("limit 5: want nil, got %v", err)
	}
}

// TestWindowsRunUntil: events at or before the deadline run, later ones
// stay queued, and every LP clock lands on the deadline.
func TestWindowsRunUntil(t *testing.T) {
	w := NewWindows(2, time.Millisecond, 2)
	var fired []string
	w.LP(0).At(2*time.Millisecond, func() { fired = append(fired, "a") })
	w.LP(1).At(4*time.Millisecond, func() { fired = append(fired, "b") })
	w.LP(1).At(9*time.Millisecond, func() { fired = append(fired, "late") })
	w.RunUntil(4 * time.Millisecond)
	if len(fired) != 2 || fired[0] != "a" || fired[1] != "b" {
		t.Fatalf("fired %v, want [a b] (deadline-instant event must run)", fired)
	}
	for i := 0; i < 2; i++ {
		if now := w.LP(i).Now(); now != 4*time.Millisecond {
			t.Errorf("LP %d clock at %v after RunUntil, want 4ms", i, now)
		}
	}
	if w.Pending() != 1 {
		t.Errorf("%d events pending, want 1", w.Pending())
	}
	w.RunUntil(10 * time.Millisecond)
	if len(fired) != 3 {
		t.Fatalf("fired %v, want the late event too", fired)
	}
}

// TestWindowsLivelockGuard: a same-instant self-rescheduling loop inside
// one LP must trip the cap, not spin forever.
func TestWindowsLivelockGuard(t *testing.T) {
	w := NewWindows(2, time.Millisecond, 1)
	var loop func()
	loop = func() { w.LP(0).After(time.Microsecond, loop) }
	w.LP(0).After(0, loop)
	err := w.RunCapped(500)
	if _, ok := err.(MaxEventsExceeded); !ok {
		t.Fatalf("error %v, want MaxEventsExceeded", err)
	}
}
