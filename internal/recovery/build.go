package recovery

import (
	"fmt"
	"sort"
	"time"

	"gridmutex/internal/algorithms"
	"gridmutex/internal/core"
	"gridmutex/internal/mutex"
	"gridmutex/internal/topology"
)

// BuildOptions tune a crash-tolerant deployment.
type BuildOptions struct {
	// Intra tunes the failure detectors of the per-cluster intra groups.
	Intra Options
	// Inter tunes the inter group's detector. A zero Timeout derives a
	// staggered default: intra Timeout ×2 plus the intra probe timeout.
	// The stagger matters for safety — when a primary dies while its
	// cluster owns the global CS right, the cluster's intra recovery (and
	// the standby's claim on the inter token, see Member.AdoptCS) must
	// complete before the inter group's census runs, or the inter token
	// would be regenerated in another cluster while this one's
	// application is still inside its critical section.
	Inter Options
	// NodeDown is the crash oracle (typically simnet's (*Network).Down);
	// nil means nodes never crash.
	NodeDown func(node int) bool
	// OnEpoch, when non-nil, observes every epoch application of every
	// member — the hook monitors and tracers attach to.
	OnEpoch func(group string, self mutex.ID, e Epoch, members []mutex.ID, holder mutex.ID)
}

// Standby is a cluster's backup coordinator: a passive member of both the
// cluster's intra group and the inter group that activates — creates a
// coordinator automaton and takes over both memberships — when its
// primary is excluded from the intra group.
type Standby struct {
	id      mutex.ID
	primary mutex.ID
	cluster int
	intraM  *Member
	interM  *Member
	coord   *core.Coordinator

	activated bool
}

// ID returns the standby's process id.
func (s *Standby) ID() mutex.ID { return s.id }

// Activated reports whether the standby has taken over.
func (s *Standby) Activated() bool { return s.activated }

// Coordinator returns the automaton created at takeover, or nil.
func (s *Standby) Coordinator() *core.Coordinator { return s.coord }

// onIntraEpoch is the takeover trigger, installed as the OnEpoch hook of
// the standby's intra member: it fires inside the epoch application,
// before any buffered traffic is flushed, so the new coordinator's
// callbacks are in place ahead of queued requests.
func (s *Standby) onIntraEpoch(e Epoch, members []mutex.ID, holder mutex.ID) {
	if s.activated || containsID(members, s.primary) || !containsID(members, s.id) {
		return
	}
	s.activated = true
	c := core.NewCoordinator(s.id)
	s.coord = c
	s.intraM.SetCallbacks(c.IntraCallbacks())
	s.interM.SetCallbacks(c.InterCallbacks())
	if holder != s.id && holder != mutex.None {
		// The intra token is out with an application process, so the dead
		// primary was IN: the cluster still owns the global CS right.
		// Inherit the primary's inter possession as a claim — the inter
		// census will regenerate the inter token here — and resume the
		// automaton from IN.
		s.interM.AdoptCS()
		c.Adopt(s.intraM, s.interM, core.In)
		return
	}
	// The token was regenerated at the standby (or the epoch froze, in
	// which case Adopt's request simply stays recorded): the cluster does
	// not own the CS right, boot normally.
	c.Adopt(s.intraM, s.interM, core.Booting)
}

// Deployment is a wired crash-tolerant grid.
type Deployment struct {
	// Apps lists the application processes in ascending ID order; each
	// Instance is a recovery Member.
	Apps []core.App
	// Coordinators lists the primary coordinators, in cluster order.
	Coordinators []*core.Coordinator
	// Standbys lists the backup coordinators, in cluster order.
	Standbys []*Standby
	// Procs maps process IDs to their dispatchers.
	Procs map[mutex.ID]*core.Process
	// Members lists every recovery member in deterministic order (intra
	// groups by cluster then id, then inter members by id).
	Members []*Member
}

// Stop halts every member's failure detector so a driven simulation can
// drain (heartbeats otherwise keep the event queue non-empty forever).
func (d *Deployment) Stop() {
	for _, m := range d.Members {
		m.Stop()
	}
}

// Build assembles the paper's two-level composition with crash recovery:
// within every cluster the first node hosts the primary coordinator, the
// second node the standby, and the remaining nodes application processes.
// The spec's intra algorithm runs per cluster under a recovery group
// whose regeneration preference is [primary, standby]; the inter
// algorithm runs among all primaries and standbys (standbys passive)
// under a recovery group regenerating at the lowest live member.
//
// Every cluster needs at least 3 nodes (primary, standby, one
// application). Fault-free runs of this deployment behave exactly like
// core.BuildComposed apart from heartbeat traffic and the standby's
// passive memberships.
func Build(fab mutex.Fabric, grid *topology.Grid, spec core.Spec, appCB core.CallbackFunc, clock Clock, bopts BuildOptions) (*Deployment, error) {
	intraF, err := algorithms.Factory(spec.Intra)
	if err != nil {
		return nil, fmt.Errorf("recovery: %w", err)
	}
	interF, err := algorithms.Factory(spec.Inter)
	if err != nil {
		return nil, fmt.Errorf("recovery: %w", err)
	}
	intraOpts := bopts.Intra.withDefaults()
	interOpts := bopts.Inter
	if interOpts.Period <= 0 {
		interOpts.Period = intraOpts.Period
	}
	if interOpts.Timeout <= 0 {
		interOpts.Timeout = 2*intraOpts.Timeout + intraOpts.ProbeTimeout
	}
	interOpts = interOpts.withDefaults()

	down := func(id mutex.ID) func() bool {
		if bopts.NodeDown == nil {
			return nil
		}
		node := int(id)
		return func() bool { return bopts.NodeDown(node) }
	}
	observe := func(group string, self mutex.ID) func(Epoch, []mutex.ID, mutex.ID) {
		if bopts.OnEpoch == nil {
			return nil
		}
		return func(e Epoch, members []mutex.ID, holder mutex.ID) {
			bopts.OnEpoch(group, self, e, members, holder)
		}
	}

	// The inter group spans every primary and standby.
	var interIDs []mutex.ID
	for c := 0; c < grid.NumClusters(); c++ {
		if grid.ClusterSize(c) < 3 {
			return nil, fmt.Errorf("recovery: cluster %d has %d nodes; need a primary, a standby and at least one application process", c, grid.ClusterSize(c))
		}
		nodes := grid.NodesIn(c)
		interIDs = append(interIDs, mutex.ID(nodes[0]), mutex.ID(nodes[1]))
	}
	sort.Slice(interIDs, func(i, j int) bool { return interIDs[i] < interIDs[j] })
	interHolder := mutex.ID(grid.NodesIn(0)[0])

	d := &Deployment{Procs: make(map[mutex.ID]*core.Process)}
	for c := 0; c < grid.NumClusters(); c++ {
		nodes := grid.NodesIn(c)
		members := make([]mutex.ID, len(nodes))
		for i, n := range nodes {
			members[i] = mutex.ID(n)
		}
		primary, standbyID := members[0], members[1]
		coord := core.NewCoordinator(primary)
		sb := &Standby{id: standbyID, primary: primary, cluster: c}
		group := fmt.Sprintf("intra%d", c)
		for _, id := range members {
			proc := core.NewProcess(id, fab.Endpoint(id))
			d.Procs[id] = proc
			fab.RegisterAt(id, int(id), proc)
			var cbs mutex.Callbacks
			switch id {
			case primary:
				cbs = coord.IntraCallbacks()
			case standbyID:
				// Passive until takeover.
			default:
				if appCB != nil {
					cbs = appCB(id)
				}
			}
			onEpoch := observe(group, id)
			if id == standbyID {
				obs := onEpoch
				onEpoch = func(e Epoch, ms []mutex.ID, holder mutex.ID) {
					if obs != nil {
						obs(e, ms, holder)
					}
					sb.onIntraEpoch(e, ms, holder)
				}
			}
			m, err := NewMember(Config{
				Group: group, Self: id, Members: members, Holder: primary,
				Factory: intraF, Env: proc.Env(0), Clock: clock,
				Callbacks:   cbs,
				HolderPrefs: []mutex.ID{primary, standbyID},
				CrashedSelf: down(id),
				OnEpoch:     onEpoch,
				Opts:        intraOpts,
			})
			if err != nil {
				return nil, err
			}
			proc.Attach(0, m)
			d.Members = append(d.Members, m)
			switch id {
			case primary:
				// wired below, with the inter member
			case standbyID:
				sb.intraM = m
			default:
				d.Apps = append(d.Apps, core.App{ID: id, Cluster: c, Instance: m})
			}
		}
		d.Coordinators = append(d.Coordinators, coord)
		d.Standbys = append(d.Standbys, sb)
	}

	// Inter members: one per primary and standby, attached at level 1.
	var interMembers []*Member
	for c := 0; c < grid.NumClusters(); c++ {
		nodes := grid.NodesIn(c)
		for i, role := range []mutex.ID{mutex.ID(nodes[0]), mutex.ID(nodes[1])} {
			id := role
			var cbs mutex.Callbacks
			if i == 0 {
				cbs = d.Coordinators[c].InterCallbacks()
			}
			m, err := NewMember(Config{
				Group: "inter", Self: id, Members: interIDs, Holder: interHolder,
				Factory: interF, Env: d.Procs[id].Env(1), Clock: clock,
				Callbacks:   cbs,
				CrashedSelf: down(id),
				OnEpoch:     observe("inter", id),
				Opts:        interOpts,
			})
			if err != nil {
				return nil, err
			}
			d.Procs[id].Attach(1, m)
			interMembers = append(interMembers, m)
			if i == 1 {
				d.Standbys[c].interM = m
			} else {
				// Start the primary's automaton on its serial context,
				// exactly like core's builder.
				coord, intraM := d.Coordinators[c], d.memberOf(id, 0)
				interM := m
				d.Procs[id].Env(0).Local(func() { coord.Start(intraM, interM) })
			}
		}
	}
	d.Members = append(d.Members, interMembers...)
	for _, m := range d.Members {
		m.Start()
	}
	return d, nil
}

// memberOf finds the already-built member hosted by proc id at the given
// level (its Attach slot).
func (d *Deployment) memberOf(id mutex.ID, level core.Level) *Member {
	inst := d.Procs[id].Instance(level)
	m, ok := inst.(*Member)
	if !ok {
		panic(fmt.Sprintf("recovery: process %d level %d is %T", id, level, inst))
	}
	return m
}

// StaggeredTimeouts returns detector options where the inter group's
// timeout is staggered after the intra group's worst-case recovery, for a
// given heartbeat period and maximum one-way latency. Helper for harness
// experiments sweeping the period.
func StaggeredTimeouts(period, maxDelay time.Duration) (intra, inter Options) {
	intra = Options{
		Period:       period,
		Timeout:      2*period + 4*maxDelay,
		ProbeTimeout: 2*period + 4*maxDelay,
	}
	inter = Options{
		Period:       period,
		Timeout:      2*intra.Timeout + intra.ProbeTimeout,
		ProbeTimeout: 2*period + 4*maxDelay,
	}
	return intra, inter
}
