package recovery

import (
	"fmt"
	"sort"
	"time"

	"gridmutex/internal/algorithms"
	"gridmutex/internal/core"
	"gridmutex/internal/mutex"
	"gridmutex/internal/topology"
)

// BuildOptions tune a crash-tolerant deployment.
type BuildOptions struct {
	// Intra tunes the failure detectors of the per-cluster intra groups.
	Intra Options
	// Inter tunes the inter group's detector. A zero Timeout derives a
	// staggered default: intra Timeout ×2 plus the intra probe timeout.
	// The stagger matters for safety — when a primary dies while its
	// cluster owns the global CS right, the cluster's intra recovery (and
	// the standby's claim on the inter token, see Member.AdoptCS) must
	// complete before the inter group's census runs, or the inter token
	// would be regenerated in another cluster while this one's
	// application is still inside its critical section.
	Inter Options
	// NodeDown is the crash oracle (typically simnet's (*Network).Down);
	// nil means nodes never crash.
	NodeDown func(node int) bool
	// OnEpoch, when non-nil, observes every epoch application of every
	// member — the hook monitors and tracers attach to.
	OnEpoch func(group string, self mutex.ID, e Epoch, members []mutex.ID, holder mutex.ID)
	// OnRejoin, when non-nil, observes every re-admission of a restarted
	// member — run harnesses use it to revive workloads and sample
	// rejoin latency.
	OnRejoin func(group string, self mutex.ID, e Epoch)
}

// Standby is a cluster's backup coordinator and the keeper of the
// cluster's bridge roles: a passive member of both the cluster's intra
// group and the inter group that activates — creates a coordinator
// automaton and takes over both memberships — when its primary is
// excluded from the intra group (or rejoined passively). It also handles
// the rejoin side: a restarted primary or standby re-enters its groups
// passively or re-coordinates, and a minority freeze parks whichever
// automaton currently drives the cluster.
type Standby struct {
	id       mutex.ID
	primary  mutex.ID
	cluster  int
	intraM   *Member
	interM   *Member
	priIntra *Member
	priInter *Member
	d        *Deployment
	coord    *core.Coordinator

	activated bool
	// priPassive marks a primary that rejoined while the standby was
	// active: alive, a group member, but not driving the automaton.
	priPassive bool
}

// ID returns the standby's process id.
func (s *Standby) ID() mutex.ID { return s.id }

// Activated reports whether the standby has taken over.
func (s *Standby) Activated() bool { return s.activated }

// Coordinator returns the automaton created at takeover, or nil.
func (s *Standby) Coordinator() *core.Coordinator { return s.coord }

// onIntraEpoch is the takeover trigger, installed as the OnEpoch hook of
// the standby's intra member: it fires inside the epoch application,
// before any buffered traffic is flushed, so the new coordinator's
// callbacks are in place ahead of queued requests.
func (s *Standby) onIntraEpoch(e Epoch, members []mutex.ID, holder mutex.ID) {
	if s.activated || !containsID(members, s.id) {
		return
	}
	if containsID(members, s.primary) && !s.priPassive {
		return
	}
	s.activated = true
	c := core.NewCoordinator(s.id)
	s.coord = c
	s.intraM.SetCallbacks(c.IntraCallbacks())
	s.interM.SetCallbacks(c.InterCallbacks())
	if holder != s.id && holder != mutex.None && holder != s.primary {
		// The intra token is out with an application process, so the dead
		// primary was IN: the cluster still owns the global CS right.
		// Inherit the primary's inter possession as a claim — the inter
		// census will regenerate the inter token here — and resume the
		// automaton from IN.
		s.interM.AdoptCS()
		c.Adopt(s.intraM, s.interM, core.In)
		return
	}
	// The token was regenerated at the standby (or the epoch froze, in
	// which case Adopt's request simply stays recorded): the cluster does
	// not own the CS right, boot normally.
	c.Adopt(s.intraM, s.interM, core.Booting)
}

// onPrimaryRejoin re-couples the bridge when the restarted primary is
// re-admitted to the intra group. If the standby took over, the primary
// rejoins passively; otherwise a fresh automaton is adopted — always
// from Booting, because a primary restart never resurrects the cluster's
// critical-section claim (amnesia forfeited it; the join cooldown
// guarantees the inter group's regeneration runs only after this
// re-adoption, so the claim cannot be doubled).
func (s *Standby) onPrimaryRejoin(e Epoch, members []mutex.ID, holder mutex.ID) {
	if s.activated {
		s.priPassive = true
		s.priIntra.SetCallbacks(mutex.Callbacks{})
		s.priInter.SetCallbacks(mutex.Callbacks{})
		return
	}
	s.priPassive = false
	c := core.NewCoordinator(s.primary)
	s.d.Coordinators[s.cluster] = c
	s.priIntra.SetCallbacks(c.IntraCallbacks())
	s.priInter.SetCallbacks(c.InterCallbacks())
	c.Adopt(s.priIntra, s.priInter, core.Booting)
}

// onStandbyRejoin re-couples the bridge when the restarted standby is
// re-admitted: it always rejoins passively. If the primary is still
// gone, the very epoch that re-admits the standby re-triggers the
// takeover (OnRejoin runs before OnEpoch, where onIntraEpoch hangs).
func (s *Standby) onStandbyRejoin(e Epoch, members []mutex.ID, holder mutex.ID) {
	s.activated = false
	s.coord = nil
	s.intraM.SetCallbacks(mutex.Callbacks{})
	s.interM.SetCallbacks(mutex.Callbacks{})
}

// onPrimaryEpoch re-activates a passive primary when the active standby
// dies: the epoch that excludes the standby while the primary is a
// member hands coordination back (mirroring the standby takeover,
// including the inheritance of the cluster's critical-section claim).
func (s *Standby) onPrimaryEpoch(e Epoch, members []mutex.ID, holder mutex.ID) {
	if !s.priPassive || containsID(members, s.id) || !containsID(members, s.primary) {
		return
	}
	s.priPassive = false
	s.activated = false
	s.coord = nil
	c := core.NewCoordinator(s.primary)
	s.d.Coordinators[s.cluster] = c
	s.priIntra.SetCallbacks(c.IntraCallbacks())
	s.priInter.SetCallbacks(c.InterCallbacks())
	if holder != s.primary && holder != mutex.None && holder != s.id {
		s.priInter.AdoptCS()
		c.Adopt(s.priIntra, s.priInter, core.In)
		return
	}
	c.Adopt(s.priIntra, s.priInter, core.Booting)
}

// onMinority parks or resumes whichever automaton currently drives the
// cluster. Installed as the OnMinority hook of both inter members; the
// role flags decide which one acts.
func (s *Standby) onMinority(standbySide bool, entered bool) {
	var c *core.Coordinator
	if standbySide {
		if !s.activated || s.coord == nil {
			return
		}
		c = s.coord
	} else {
		if s.activated || s.priPassive {
			return
		}
		c = s.d.Coordinators[s.cluster]
	}
	if entered {
		c.Isolate()
	} else {
		c.Reconnect()
	}
}

// Deployment is a wired crash-tolerant grid.
type Deployment struct {
	// Apps lists the application processes in ascending ID order; each
	// Instance is a recovery Member.
	Apps []core.App
	// Coordinators lists the primary coordinators, in cluster order.
	Coordinators []*core.Coordinator
	// Standbys lists the backup coordinators, in cluster order.
	Standbys []*Standby
	// Procs maps process IDs to their dispatchers.
	Procs map[mutex.ID]*core.Process
	// Members lists every recovery member in deterministic order (intra
	// groups by cluster then id, then inter members by id).
	Members []*Member
}

// Stop halts every member's failure detector so a driven simulation can
// drain (heartbeats otherwise keep the event queue non-empty forever).
func (d *Deployment) Stop() {
	for _, m := range d.Members {
		m.Stop()
	}
}

// Build assembles the paper's two-level composition with crash recovery:
// within every cluster the first node hosts the primary coordinator, the
// second node the standby, and the remaining nodes application processes.
// The spec's intra algorithm runs per cluster under a recovery group
// whose regeneration preference is [primary, standby]; the inter
// algorithm runs among all primaries and standbys (standbys passive)
// under a recovery group regenerating at the lowest live member.
//
// Every cluster needs at least 3 nodes (primary, standby, one
// application). Fault-free runs of this deployment behave exactly like
// core.BuildComposed apart from heartbeat traffic and the standby's
// passive memberships.
func Build(fab mutex.Fabric, grid *topology.Grid, spec core.Spec, appCB core.CallbackFunc, clock Clock, bopts BuildOptions) (*Deployment, error) {
	intraF, err := algorithms.Factory(spec.Intra)
	if err != nil {
		return nil, fmt.Errorf("recovery: %w", err)
	}
	interF, err := algorithms.Factory(spec.Inter)
	if err != nil {
		return nil, fmt.Errorf("recovery: %w", err)
	}
	intraOpts := bopts.Intra.withDefaults()
	interOpts := bopts.Inter
	if interOpts.Period <= 0 {
		interOpts.Period = intraOpts.Period
	}
	if interOpts.Timeout <= 0 {
		interOpts.Timeout = 2*intraOpts.Timeout + intraOpts.ProbeTimeout
	}
	interOpts = interOpts.withDefaults()

	down := func(id mutex.ID) func() bool {
		if bopts.NodeDown == nil {
			return nil
		}
		node := int(id)
		return func() bool { return bopts.NodeDown(node) }
	}
	observe := func(group string, self mutex.ID) func(Epoch, []mutex.ID, mutex.ID) {
		if bopts.OnEpoch == nil {
			return nil
		}
		return func(e Epoch, members []mutex.ID, holder mutex.ID) {
			bopts.OnEpoch(group, self, e, members, holder)
		}
	}
	observeRejoin := func(group string, self mutex.ID) func(Epoch, []mutex.ID, mutex.ID) {
		if bopts.OnRejoin == nil {
			return nil
		}
		return func(e Epoch, _ []mutex.ID, _ mutex.ID) {
			bopts.OnRejoin(group, self, e)
		}
	}
	// chain composes two epoch hooks in order; nil links collapse away.
	chain := func(first, second func(Epoch, []mutex.ID, mutex.ID)) func(Epoch, []mutex.ID, mutex.ID) {
		if first == nil {
			return second
		}
		if second == nil {
			return first
		}
		return func(e Epoch, members []mutex.ID, holder mutex.ID) {
			first(e, members, holder)
			second(e, members, holder)
		}
	}

	// The inter group spans every primary and standby.
	var interIDs []mutex.ID
	for c := 0; c < grid.NumClusters(); c++ {
		if grid.ClusterSize(c) < 3 {
			return nil, fmt.Errorf("recovery: cluster %d has %d nodes; need a primary, a standby and at least one application process", c, grid.ClusterSize(c))
		}
		nodes := grid.NodesIn(c)
		interIDs = append(interIDs, mutex.ID(nodes[0]), mutex.ID(nodes[1]))
	}
	sort.Slice(interIDs, func(i, j int) bool { return interIDs[i] < interIDs[j] })
	interHolder := mutex.ID(grid.NodesIn(0)[0])

	d := &Deployment{Procs: make(map[mutex.ID]*core.Process)}
	for c := 0; c < grid.NumClusters(); c++ {
		nodes := grid.NodesIn(c)
		members := make([]mutex.ID, len(nodes))
		for i, n := range nodes {
			members[i] = mutex.ID(n)
		}
		primary, standbyID := members[0], members[1]
		coord := core.NewCoordinator(primary)
		sb := &Standby{id: standbyID, primary: primary, cluster: c, d: d}
		group := fmt.Sprintf("intra%d", c)
		for _, id := range members {
			proc := core.NewProcess(id, fab.Endpoint(id))
			d.Procs[id] = proc
			fab.RegisterAt(id, int(id), proc)
			var cbs mutex.Callbacks
			var onRole, onRejoin func(Epoch, []mutex.ID, mutex.ID)
			switch id {
			case primary:
				cbs = coord.IntraCallbacks()
				onRole = sb.onPrimaryEpoch
				onRejoin = sb.onPrimaryRejoin
			case standbyID:
				// Passive until takeover.
				onRole = sb.onIntraEpoch
				onRejoin = sb.onStandbyRejoin
			default:
				if appCB != nil {
					cbs = appCB(id)
				}
			}
			m, err := NewMember(Config{
				Group: group, Self: id, Members: members, Holder: primary,
				Factory: intraF, Env: proc.Env(0), Clock: clock,
				Callbacks:   cbs,
				HolderPrefs: []mutex.ID{primary, standbyID},
				CrashedSelf: down(id),
				OnEpoch:     chain(observe(group, id), onRole),
				OnRejoin:    chain(onRejoin, observeRejoin(group, id)),
				Opts:        intraOpts,
			})
			if err != nil {
				return nil, err
			}
			proc.Attach(0, m)
			d.Members = append(d.Members, m)
			switch id {
			case primary:
				sb.priIntra = m
			case standbyID:
				sb.intraM = m
			default:
				d.Apps = append(d.Apps, core.App{ID: id, Cluster: c, Instance: m})
			}
		}
		d.Coordinators = append(d.Coordinators, coord)
		d.Standbys = append(d.Standbys, sb)
	}

	// Inter members: one per primary and standby, attached at level 1.
	var interMembers []*Member
	for c := 0; c < grid.NumClusters(); c++ {
		nodes := grid.NodesIn(c)
		sb := d.Standbys[c]
		for i, role := range []mutex.ID{mutex.ID(nodes[0]), mutex.ID(nodes[1])} {
			id := role
			standbySide := i == 1
			var cbs mutex.Callbacks
			if !standbySide {
				cbs = d.Coordinators[c].InterCallbacks()
			}
			m, err := NewMember(Config{
				Group: "inter", Self: id, Members: interIDs, Holder: interHolder,
				Factory: interF, Env: d.Procs[id].Env(1), Clock: clock,
				Callbacks:   cbs,
				CrashedSelf: down(id),
				OnEpoch:     observe("inter", id),
				OnRejoin:    observeRejoin("inter", id),
				OnMinority:  func(entered bool) { sb.onMinority(standbySide, entered) },
				Opts:        interOpts,
			})
			if err != nil {
				return nil, err
			}
			d.Procs[id].Attach(1, m)
			interMembers = append(interMembers, m)
			if standbySide {
				sb.interM = m
			} else {
				sb.priInter = m
				// Start the primary's automaton on its serial context,
				// exactly like core's builder.
				coord, intraM := d.Coordinators[c], d.memberOf(id, 0)
				interM := m
				d.Procs[id].Env(0).Local(func() { coord.Start(intraM, interM) })
			}
		}
	}
	d.Members = append(d.Members, interMembers...)
	for _, m := range d.Members {
		m.Start()
	}
	return d, nil
}

// memberOf finds the already-built member hosted by proc id at the given
// level (its Attach slot).
func (d *Deployment) memberOf(id mutex.ID, level core.Level) *Member {
	inst := d.Procs[id].Instance(level)
	m, ok := inst.(*Member)
	if !ok {
		panic(fmt.Sprintf("recovery: process %d level %d is %T", id, level, inst))
	}
	return m
}

// StaggeredTimeouts returns detector options where the inter group's
// timeout is staggered after the intra group's worst-case recovery, for a
// given heartbeat period and maximum one-way latency. Helper for harness
// experiments sweeping the period.
func StaggeredTimeouts(period, maxDelay time.Duration) (intra, inter Options) {
	intra = Options{
		Period:       period,
		Timeout:      2*period + 4*maxDelay,
		ProbeTimeout: 2*period + 4*maxDelay,
	}
	inter = Options{
		Period:       period,
		Timeout:      2*intra.Timeout + intra.ProbeTimeout,
		ProbeTimeout: 2*period + 4*maxDelay,
	}
	return intra, inter
}
