package recovery

import (
	"strings"
	"testing"
	"time"

	"gridmutex/internal/check"
	"gridmutex/internal/core"
	"gridmutex/internal/des"
	"gridmutex/internal/mutex"
	"gridmutex/internal/simnet"
	"gridmutex/internal/topology"
	"gridmutex/internal/trace"
	"gridmutex/internal/workload"
)

func TestEpochOrder(t *testing.T) {
	cases := []struct {
		a, b Epoch
		less bool
	}{
		{Epoch{0, mutex.None}, Epoch{1, 3}, true},
		{Epoch{1, 3}, Epoch{0, mutex.None}, false},
		{Epoch{2, 1}, Epoch{2, 4}, true},
		{Epoch{2, 4}, Epoch{2, 4}, false},
		{Epoch{3, 9}, Epoch{4, 0}, true},
	}
	for _, c := range cases {
		if got := c.a.Less(c.b); got != c.less {
			t.Errorf("%v.Less(%v) = %v, want %v", c.a, c.b, got, c.less)
		}
	}
}

func TestWrappedTransparency(t *testing.T) {
	inner := Heartbeat{} // any message will do
	w := Wrapped{E: Epoch{3, 7}, Inner: inner}
	if w.Kind() != inner.Kind() {
		t.Errorf("wrapped kind %q, want inner kind %q", w.Kind(), inner.Kind())
	}
	if w.Size() != inner.Size()+8 {
		t.Errorf("wrapped size %d, want inner+8 = %d", w.Size(), inner.Size()+8)
	}
}

// rig is one simulated crash-tolerant deployment under workload.
type rig struct {
	sim    *des.Simulator
	net    *simnet.Network
	grid   *topology.Grid
	mon    *check.Monitor
	runner *workload.Runner
	dep    *Deployment
	tr     *trace.Tracer
}

// buildRig assembles a 3-cluster deployment (5 nodes each: primary,
// standby, 3 apps) running naimi-naimi under a short-period detector.
// wrapCB, when non-nil, may wrap the workload callbacks per app id.
func buildRig(t *testing.T, seed int64, wrapCB func(r *rig, id mutex.ID, inner mutex.Callbacks) mutex.Callbacks) *rig {
	t.Helper()
	g := topology.Uniform(3, 5, time.Millisecond, 20*time.Millisecond)
	sim := des.New()
	tr := trace.New(func() time.Duration { return sim.Now() }, 1<<18)
	net := simnet.New(sim, g, simnet.Options{Seed: seed, Trace: tr})
	mon := check.NewMonitor(sim)
	runner, err := workload.NewRunner(sim, workload.Params{
		Alpha: 5 * time.Millisecond, Rho: 6, CSPerProcess: 6, Seed: seed,
	}, mon)
	if err != nil {
		t.Fatal(err)
	}
	r := &rig{sim: sim, net: net, grid: g, mon: mon, runner: runner, tr: tr}
	appCB := func(id mutex.ID) mutex.Callbacks {
		inner := runner.Callbacks(id)
		if wrapCB == nil {
			return inner
		}
		return wrapCB(r, id, inner)
	}
	intra, inter := StaggeredTimeouts(20*time.Millisecond, 10*time.Millisecond)
	dep, err := Build(net, g, core.Spec{Intra: "naimi", Inter: "naimi"}, appCB, sim, BuildOptions{
		Intra:    intra,
		Inter:    inter,
		NodeDown: net.Down,
		OnEpoch: func(group string, self mutex.ID, e Epoch, members []mutex.ID, holder mutex.ID) {
			tr.Record(trace.Custom, self, holder, "epoch "+group+" "+e.String())
			mon.BeginEpoch(group)
		},
		OnRejoin: func(group string, self mutex.ID, e Epoch) {
			tr.Record(trace.Custom, self, mutex.None, "rejoin "+group+" "+e.String())
			mon.Rejoined(self)
			runner.Revive(self)
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	r.dep = dep
	runner.Bind(dep.Apps)
	runner.Start()
	return r
}

// crash fail-stops a node: network, workload and monitor bookkeeping.
func (r *rig) crash(id mutex.ID) {
	r.net.Crash(int(id))
	r.runner.Crash(id)
	r.mon.Crashed(id)
	r.tr.Record(trace.Custom, id, mutex.None, "crash")
}

// restart brings a crashed node back up: network connectivity returns and
// the monitor opens a rejoin-latency sample; the node's members notice the
// up edge on their next tick and run the rejoin protocol.
func (r *rig) restart(id mutex.ID) {
	r.net.Restart(int(id))
	r.mon.Restarted(id)
	r.tr.Record(trace.Custom, id, mutex.None, "restart")
}

// drive steps the simulation until the workload completes (heartbeats
// keep the queue non-empty, so Run would never return), then stops the
// detectors and drains.
func (r *rig) drive(t *testing.T) {
	t.Helper()
	const limit = 5_000_000
	for !r.runner.Done() {
		if r.sim.Processed() > limit {
			t.Fatalf("workload not done after %d events at %v; outstanding=%d waiting=%d",
				r.sim.Processed(), r.sim.Now(), r.runner.Outstanding(), r.runner.Waiting())
		}
		if !r.sim.Step() {
			t.Fatal("event queue drained before workload completion")
		}
	}
	r.dep.Stop()
	if err := r.sim.RunCapped(limit); err != nil {
		t.Fatal(err)
	}
}

func (r *rig) assertClean(t *testing.T) {
	t.Helper()
	for _, v := range r.mon.Violations() {
		t.Errorf("violation: %s", v)
	}
	r.mon.AssertQuiescent()
	if !r.mon.Ok() {
		t.Fatalf("monitor not ok after quiescence check: %v", r.mon.Violations())
	}
}

// TestFaultFreeComplete: with no faults the deployment behaves like the
// plain composition — full completion, no violations, no epochs.
func TestFaultFreeComplete(t *testing.T) {
	r := buildRig(t, 1, nil)
	r.drive(t)
	r.assertClean(t)
	if got, want := int64(len(r.runner.Records())), int64(9*6); got != want {
		t.Fatalf("records %d, want %d", got, want)
	}
	if r.mon.Epochs() != 0 {
		t.Fatalf("fault-free run produced %d epochs", r.mon.Epochs())
	}
	for _, sb := range r.dep.Standbys {
		if sb.Activated() {
			t.Fatalf("standby %d activated without a crash", sb.ID())
		}
	}
}

// TestAppTokenHolderCrash is acceptance case (a): a non-coordinator token
// holder crashes inside its critical section; the token is regenerated,
// every surviving requester completes, and no safety violation occurs.
func TestAppTokenHolderCrash(t *testing.T) {
	victim := mutex.ID(2) // first app of cluster 0
	entries := 0
	r := buildRig(t, 2, func(r *rig, id mutex.ID, inner mutex.Callbacks) mutex.Callbacks {
		if id != victim {
			return inner
		}
		return mutex.Callbacks{OnAcquire: func() {
			inner.OnAcquire()
			entries++
			if entries == 2 {
				r.crash(victim) // fail-stop the instant it re-enters the CS
			}
		}}
	})
	r.drive(t)
	r.assertClean(t)
	if r.mon.CrashExits() != 1 {
		t.Fatalf("crash exits %d, want 1 (victim died inside the CS)", r.mon.CrashExits())
	}
	if r.mon.Epochs() == 0 {
		t.Fatal("no regeneration epoch after a token-holder crash")
	}
	if lat := r.mon.RecoveryLatencies(); len(lat) != 1 || lat[0] <= 0 {
		t.Fatalf("recovery latencies %v, want one positive sample", lat)
	}
	// Survivors: 8 apps × 6 critical sections, plus the victim's 2.
	if got, want := len(r.runner.Records()), 8*6+2; got != want {
		t.Fatalf("records %d, want %d", got, want)
	}
	for _, sb := range r.dep.Standbys {
		if sb.Activated() {
			t.Fatalf("standby %d activated though only an app crashed", sb.ID())
		}
	}
}

// The remaining acceptance cases — coordinator crash, coordinator crash
// while IN, frozen cluster (single and both levels), staggered multi-
// crash, lossy holder crash — live as declarative fixtures under
// testdata/scenarios/ and run via internal/scenario's corpus sweep.
// TestAppTokenHolderCrash above stays as the Go-coded guard so a
// scenario-engine regression cannot silently mask a recovery one.

// TestFaultyRunDeterministic: the same seed renders a byte-identical
// trace — including crash, regeneration-epoch and recovery events — and
// identical records; a different seed diverges.
func TestFaultyRunDeterministic(t *testing.T) {
	run := func(seed int64) (string, int) {
		victim := mutex.ID(7) // an app of cluster 1
		entries := 0
		r := buildRig(t, seed, func(r *rig, id mutex.ID, inner mutex.Callbacks) mutex.Callbacks {
			if id != victim {
				return inner
			}
			return mutex.Callbacks{OnAcquire: func() {
				inner.OnAcquire()
				entries++
				if entries == 1 {
					r.crash(victim)
				}
			}}
		})
		r.drive(t)
		r.assertClean(t)
		return r.tr.Dump(), len(r.runner.Records())
	}
	d1, n1 := run(11)
	d2, n2 := run(11)
	if d1 != d2 {
		t.Fatal("same seed produced different traces")
	}
	if n1 != n2 {
		t.Fatalf("same seed produced %d vs %d records", n1, n2)
	}
	if !strings.Contains(d1, "crash") || !strings.Contains(d1, "epoch intra1") {
		t.Fatalf("trace misses crash/epoch events:\n%.600s", d1)
	}
	if d3, _ := run(12); d3 == d1 {
		t.Fatal("different seeds produced identical traces")
	}
}

// idleInst is a token-less stub algorithm instance for detector-only tests.
type idleInst struct{}

func (idleInst) Request()                          {}
func (idleInst) Release()                          {}
func (idleInst) Deliver(mutex.ID, mutex.Message)   {}
func (idleInst) HasPending() bool                  { return false }
func (idleInst) HoldsToken() bool                  { return false }
func (idleInst) State() mutex.State                { return mutex.NoReq }

// TestRestartHeartbeatUnsuspects is the detector regression for the rejoin
// path: a suspicion formed while a node was down must be rescinded by its
// fresh post-restart heartbeats within one probe census — before any round
// acts on it. The observable is the tick-time minority rule: with the
// stale suspicion cleared, a later unrelated crash leaves the observer
// hearing 3 of 4 members (no freeze); with it retained, the observer would
// count 2 of 4 and spuriously minority-freeze.
func TestRestartHeartbeatUnsuspects(t *testing.T) {
	g := topology.Uniform(1, 4, 10*time.Millisecond, 10*time.Millisecond)
	sim := des.New()
	net := simnet.New(sim, g, simnet.Options{Seed: 1})
	ids := []mutex.ID{0, 1, 2, 3}
	factory := func(mutex.Config) (mutex.Instance, error) { return idleInst{}, nil }
	members := make([]*Member, len(ids))
	for i, id := range ids {
		id := id
		opts := Options{Period: 10 * time.Millisecond, Timeout: 45 * time.Millisecond}
		if id == 0 {
			// The leader never suspects (and so never rounds): the test
			// isolates the heartbeat path from the census path.
			opts.Timeout = 4 * time.Second
		}
		m, err := NewMember(Config{
			Group: "g", Self: id, Members: ids, Holder: 0,
			Factory: factory, Env: net.Endpoint(id), Clock: sim,
			CrashedSelf: func() bool { return net.ProcessDown(id) },
			Opts:        opts,
		})
		if err != nil {
			t.Fatal(err)
		}
		net.Register(id, m)
		members[i] = m
	}
	for _, m := range members {
		m.Start()
	}
	sim.After(1*time.Millisecond, func() { net.Crash(2) })
	sim.After(60*time.Millisecond, func() { net.Restart(2) })
	sim.After(115*time.Millisecond, func() { net.Crash(3) })
	runUntil := func(at des.Time) {
		for sim.Now() < at {
			if !sim.Step() {
				t.Fatal("event queue drained unexpectedly")
			}
		}
	}
	obs := members[1]
	runUntil(100 * time.Millisecond)
	if s := obs.Stats(); s.Suspicions != 1 {
		t.Fatalf("observer suspicions %d before second crash, want 1 (the downed node)", s.Suspicions)
	}
	runUntil(250 * time.Millisecond)
	s := obs.Stats()
	if s.Suspicions != 2 {
		t.Fatalf("observer suspicions %d, want 2 (one per crash; the first rescinded by restart heartbeats)", s.Suspicions)
	}
	if s.MinorityFreezes != 0 || s.Minority {
		t.Fatalf("observer minority-froze (freezes=%d, minority=%v): stale suspicion of the restarted node survived its heartbeats", s.MinorityFreezes, s.Minority)
	}
	if rs := members[2].Stats(); rs.Restarts != 1 || !rs.Rejoining {
		t.Fatalf("restarted member stats %+v, want Restarts=1 and Rejoining (no epoch admitted it yet)", rs)
	}
}

// TestRestartRejoinCompletes is the full-lifecycle acceptance: an
// application token holder crashes inside its critical section, the node
// restarts, the amnesiac member is re-admitted under a live epoch, the
// revived process finishes its remaining critical sections, and the
// monitor samples one rejoin latency.
func TestRestartRejoinCompletes(t *testing.T) {
	victim := mutex.ID(2) // first app of cluster 0
	entries := 0
	r := buildRig(t, 3, func(r *rig, id mutex.ID, inner mutex.Callbacks) mutex.Callbacks {
		if id != victim {
			return inner
		}
		return mutex.Callbacks{OnAcquire: func() {
			inner.OnAcquire()
			entries++
			if entries == 2 {
				r.crash(victim)
				r.sim.After(150*time.Millisecond, func() { r.restart(victim) })
			}
		}}
	})
	r.drive(t)
	r.assertClean(t)
	if r.mon.CrashExits() != 1 {
		t.Fatalf("crash exits %d, want 1", r.mon.CrashExits())
	}
	// The revived victim re-runs the 5 critical sections the crash
	// forfeited: 8 survivors × 6, plus the victim's 2 pre-crash and 5
	// post-rejoin entries.
	if got, want := len(r.runner.Records()), 8*6+2+5; got != want {
		t.Fatalf("records %d, want %d (revived process must finish its forfeited critical sections)", got, want)
	}
	if r.mon.Restarts() != 1 {
		t.Fatalf("monitor restarts %d, want 1", r.mon.Restarts())
	}
	if r.mon.Rejoins() < 1 {
		t.Fatal("monitor recorded no rejoin")
	}
	if lat := r.mon.RejoinLatencies(); len(lat) != 1 || lat[0] <= 0 {
		t.Fatalf("rejoin latencies %v, want one positive sample", lat)
	}
	vm := r.dep.Members[2] // intra members are ordered by cluster then id
	if vm.ID() != victim {
		t.Fatalf("member order changed: got id %d", vm.ID())
	}
	if s := vm.Stats(); s.Restarts != 1 || s.Rejoins != 1 || s.Rejoining {
		t.Fatalf("victim member stats %+v, want Restarts=1 Rejoins=1 and not rejoining", s)
	}
	for _, sb := range r.dep.Standbys {
		if sb.Activated() {
			t.Fatalf("standby %d activated though only an app crash-restarted", sb.ID())
		}
	}
}

// TestPartitionMinorityFreezeHeals cuts cluster 0 (2 of the 6 inter
// members) off the grid mid-run: the minority side must freeze rather than
// regenerate the inter token, requests on the cut side queue frozen, and
// the heal re-admits the strays so every process still completes — with a
// byte-identical trace per seed.
func TestPartitionMinorityFreezeHeals(t *testing.T) {
	run := func(seed int64) (dump string, records int) {
		r := buildRig(t, seed, nil)
		r.sim.After(100*time.Millisecond, func() {
			r.net.Partition([]int{0, 1, 2, 3, 4})
			r.tr.Record(trace.Custom, 0, mutex.None, "partition")
		})
		r.sim.After(1*time.Second, func() {
			r.net.Heal()
			r.tr.Record(trace.Custom, 0, mutex.None, "heal")
		})
		r.drive(t)
		r.assertClean(t)
		var freezes, minorityRegens int64
		for _, m := range r.dep.Members {
			if m.Group() != "inter" || m.ID() > 1 {
				continue
			}
			s := m.Stats()
			freezes += s.MinorityFreezes
			minorityRegens += s.Regenerations
			if s.Minority {
				t.Fatalf("inter member %d still minority-frozen after heal", m.ID())
			}
		}
		if freezes == 0 {
			t.Fatal("no inter member on the cut side minority-froze")
		}
		if minorityRegens != 0 {
			t.Fatalf("minority side announced %d regenerations; the quorum gate must forbid that", minorityRegens)
		}
		if c := r.net.Counters(); c.DroppedPartition == 0 {
			t.Fatal("no message was dropped at the cut")
		}
		return r.tr.Dump(), len(r.runner.Records())
	}
	d1, n1 := run(4)
	if want := 9 * 6; n1 != want {
		t.Fatalf("records %d, want %d (no process crashed, so the frozen queue must drain on heal)", n1, want)
	}
	d2, n2 := run(4)
	if d1 != d2 || n1 != n2 {
		t.Fatal("same seed produced different partitioned runs")
	}
	if !strings.Contains(d1, "partition") || !strings.Contains(d1, "heal") {
		t.Fatalf("trace misses partition/heal marks:\n%.400s", d1)
	}
}
