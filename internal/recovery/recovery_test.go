package recovery

import (
	"strings"
	"testing"
	"time"

	"gridmutex/internal/check"
	"gridmutex/internal/core"
	"gridmutex/internal/des"
	"gridmutex/internal/faults"
	"gridmutex/internal/mutex"
	"gridmutex/internal/simnet"
	"gridmutex/internal/topology"
	"gridmutex/internal/trace"
	"gridmutex/internal/workload"
)

func TestEpochOrder(t *testing.T) {
	cases := []struct {
		a, b Epoch
		less bool
	}{
		{Epoch{0, mutex.None}, Epoch{1, 3}, true},
		{Epoch{1, 3}, Epoch{0, mutex.None}, false},
		{Epoch{2, 1}, Epoch{2, 4}, true},
		{Epoch{2, 4}, Epoch{2, 4}, false},
		{Epoch{3, 9}, Epoch{4, 0}, true},
	}
	for _, c := range cases {
		if got := c.a.Less(c.b); got != c.less {
			t.Errorf("%v.Less(%v) = %v, want %v", c.a, c.b, got, c.less)
		}
	}
}

func TestWrappedTransparency(t *testing.T) {
	inner := Heartbeat{} // any message will do
	w := Wrapped{E: Epoch{3, 7}, Inner: inner}
	if w.Kind() != inner.Kind() {
		t.Errorf("wrapped kind %q, want inner kind %q", w.Kind(), inner.Kind())
	}
	if w.Size() != inner.Size()+8 {
		t.Errorf("wrapped size %d, want inner+8 = %d", w.Size(), inner.Size()+8)
	}
}

// rig is one simulated crash-tolerant deployment under workload.
type rig struct {
	sim    *des.Simulator
	net    *simnet.Network
	grid   *topology.Grid
	mon    *check.Monitor
	runner *workload.Runner
	dep    *Deployment
	tr     *trace.Tracer
}

// buildRig assembles a 3-cluster deployment (5 nodes each: primary,
// standby, 3 apps) running naimi-naimi under a short-period detector.
// wrapCB, when non-nil, may wrap the workload callbacks per app id.
func buildRig(t *testing.T, seed int64, wrapCB func(r *rig, id mutex.ID, inner mutex.Callbacks) mutex.Callbacks) *rig {
	t.Helper()
	g := topology.Uniform(3, 5, time.Millisecond, 20*time.Millisecond)
	sim := des.New()
	tr := trace.New(func() time.Duration { return sim.Now() }, 1<<18)
	net := simnet.New(sim, g, simnet.Options{Seed: seed, Trace: tr})
	mon := check.NewMonitor(sim)
	runner, err := workload.NewRunner(sim, workload.Params{
		Alpha: 5 * time.Millisecond, Rho: 6, CSPerProcess: 6, Seed: seed,
	}, mon)
	if err != nil {
		t.Fatal(err)
	}
	r := &rig{sim: sim, net: net, grid: g, mon: mon, runner: runner, tr: tr}
	appCB := func(id mutex.ID) mutex.Callbacks {
		inner := runner.Callbacks(id)
		if wrapCB == nil {
			return inner
		}
		return wrapCB(r, id, inner)
	}
	intra, inter := StaggeredTimeouts(20*time.Millisecond, 10*time.Millisecond)
	dep, err := Build(net, g, core.Spec{Intra: "naimi", Inter: "naimi"}, appCB, sim, BuildOptions{
		Intra:    intra,
		Inter:    inter,
		NodeDown: net.Down,
		OnEpoch: func(group string, self mutex.ID, e Epoch, members []mutex.ID, holder mutex.ID) {
			tr.Record(trace.Custom, self, holder, "epoch "+group+" "+e.String())
			mon.BeginEpoch(group)
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	r.dep = dep
	runner.Bind(dep.Apps)
	runner.Start()
	return r
}

// crash fail-stops a node: network, workload and monitor bookkeeping.
func (r *rig) crash(id mutex.ID) {
	r.net.Crash(int(id))
	r.runner.Crash(id)
	r.mon.Crashed(id)
	r.tr.Record(trace.Custom, id, mutex.None, "crash")
}

// drive steps the simulation until the workload completes (heartbeats
// keep the queue non-empty, so Run would never return), then stops the
// detectors and drains.
func (r *rig) drive(t *testing.T) {
	t.Helper()
	const limit = 5_000_000
	for !r.runner.Done() {
		if r.sim.Processed() > limit {
			t.Fatalf("workload not done after %d events at %v; outstanding=%d waiting=%d",
				r.sim.Processed(), r.sim.Now(), r.runner.Outstanding(), r.runner.Waiting())
		}
		if !r.sim.Step() {
			t.Fatal("event queue drained before workload completion")
		}
	}
	r.dep.Stop()
	if err := r.sim.RunCapped(limit); err != nil {
		t.Fatal(err)
	}
}

func (r *rig) assertClean(t *testing.T) {
	t.Helper()
	for _, v := range r.mon.Violations() {
		t.Errorf("violation: %s", v)
	}
	r.mon.AssertQuiescent()
	if !r.mon.Ok() {
		t.Fatalf("monitor not ok after quiescence check: %v", r.mon.Violations())
	}
}

// TestFaultFreeComplete: with no faults the deployment behaves like the
// plain composition — full completion, no violations, no epochs.
func TestFaultFreeComplete(t *testing.T) {
	r := buildRig(t, 1, nil)
	r.drive(t)
	r.assertClean(t)
	if got, want := int64(len(r.runner.Records())), int64(9*6); got != want {
		t.Fatalf("records %d, want %d", got, want)
	}
	if r.mon.Epochs() != 0 {
		t.Fatalf("fault-free run produced %d epochs", r.mon.Epochs())
	}
	for _, sb := range r.dep.Standbys {
		if sb.Activated() {
			t.Fatalf("standby %d activated without a crash", sb.ID())
		}
	}
}

// TestAppTokenHolderCrash is acceptance case (a): a non-coordinator token
// holder crashes inside its critical section; the token is regenerated,
// every surviving requester completes, and no safety violation occurs.
func TestAppTokenHolderCrash(t *testing.T) {
	victim := mutex.ID(2) // first app of cluster 0
	entries := 0
	r := buildRig(t, 2, func(r *rig, id mutex.ID, inner mutex.Callbacks) mutex.Callbacks {
		if id != victim {
			return inner
		}
		return mutex.Callbacks{OnAcquire: func() {
			inner.OnAcquire()
			entries++
			if entries == 2 {
				r.crash(victim) // fail-stop the instant it re-enters the CS
			}
		}}
	})
	r.drive(t)
	r.assertClean(t)
	if r.mon.CrashExits() != 1 {
		t.Fatalf("crash exits %d, want 1 (victim died inside the CS)", r.mon.CrashExits())
	}
	if r.mon.Epochs() == 0 {
		t.Fatal("no regeneration epoch after a token-holder crash")
	}
	if lat := r.mon.RecoveryLatencies(); len(lat) != 1 || lat[0] <= 0 {
		t.Fatalf("recovery latencies %v, want one positive sample", lat)
	}
	// Survivors: 8 apps × 6 critical sections, plus the victim's 2.
	if got, want := len(r.runner.Records()), 8*6+2; got != want {
		t.Fatalf("records %d, want %d", got, want)
	}
	for _, sb := range r.dep.Standbys {
		if sb.Activated() {
			t.Fatalf("standby %d activated though only an app crashed", sb.ID())
		}
	}
}

// TestCoordinatorCrash is acceptance case (b): the cluster-0 primary —
// the initial inter token holder — crashes at a fixed virtual instant;
// its standby takes over both groups, the inter token is recovered, and
// every application (including cluster 0's) completes its workload.
func TestCoordinatorCrash(t *testing.T) {
	r := buildRig(t, 3, nil)
	sched := faults.Schedule{{At: 50 * time.Millisecond, Node: 0, Kind: faults.Crash}}
	sched.Apply(r.sim, faults.Actions{
		Crash:   func(node int) { r.crash(mutex.ID(node)) },
		Restart: func(node int) { r.net.Restart(node) },
	})
	r.drive(t)
	r.assertClean(t)
	if got, want := len(r.runner.Records()), 9*6; got != want {
		t.Fatalf("records %d, want %d", got, want)
	}
	if !r.dep.Standbys[0].Activated() {
		t.Fatal("cluster-0 standby did not take over")
	}
	if r.dep.Standbys[1].Activated() || r.dep.Standbys[2].Activated() {
		t.Fatal("standby of an unaffected cluster activated")
	}
	if r.mon.Epochs() < 2 {
		t.Fatalf("%d epochs; want at least 2 (intra cluster 0 and inter)", r.mon.Epochs())
	}
}

// TestCoordinatorCrashWhileIn crashes the primary at the worst moment:
// exactly when one of its applications enters the critical section, i.e.
// while the coordinator is IN and holds the inter token. The standby must
// inherit the inter claim (Member.AdoptCS) so the inter token is
// regenerated in this cluster, not handed to another cluster while the
// application is still inside its CS.
func TestCoordinatorCrashWhileIn(t *testing.T) {
	primary := mutex.ID(0)
	crashed := false
	r := buildRig(t, 4, func(r *rig, id mutex.ID, inner mutex.Callbacks) mutex.Callbacks {
		if r.grid.ClusterOf(int(id)) != 0 {
			return inner
		}
		return mutex.Callbacks{OnAcquire: func() {
			inner.OnAcquire()
			if !crashed {
				crashed = true
				r.crash(primary) // the granting coordinator is IN right now
			}
		}}
	})
	r.drive(t)
	r.assertClean(t)
	if !crashed {
		t.Fatal("trigger never fired")
	}
	if got, want := len(r.runner.Records()), 9*6; got != want {
		t.Fatalf("records %d, want %d", got, want)
	}
	if !r.dep.Standbys[0].Activated() {
		t.Fatal("cluster-0 standby did not take over")
	}
	if c := r.dep.Standbys[0].Coordinator(); c == nil {
		t.Fatal("activated standby has no coordinator")
	}
}

// TestFrozenCluster: losing both the primary and the standby of a cluster
// is not survivable for that cluster — its group freezes (safety over
// liveness) — but the rest of the grid completes unharmed.
func TestFrozenCluster(t *testing.T) {
	r := buildRig(t, 5, nil)
	// Crash cluster 1's primary and standby before any workload activity
	// can move the global token there.
	sched := faults.Schedule{
		{At: 1 * time.Millisecond, Node: 5, Kind: faults.Crash},
		{At: 2 * time.Millisecond, Node: 6, Kind: faults.Crash},
	}
	sched.Apply(r.sim, faults.Actions{
		Crash:   func(node int) { r.crash(mutex.ID(node)) },
		Restart: func(node int) { r.net.Restart(node) },
	})
	// Cluster 1's apps can never finish; run for a bounded horizon.
	r.sim.RunFor(4 * time.Second)
	r.dep.Stop()
	if err := r.sim.RunCapped(5_000_000); err != nil {
		t.Fatal(err)
	}
	for _, v := range r.mon.Violations() {
		t.Errorf("violation: %s", v)
	}
	// Clusters 0 and 2 complete fully; cluster 1 freezes.
	perCluster := map[int]int{}
	for _, rec := range r.runner.Records() {
		perCluster[rec.Cluster]++
	}
	if perCluster[0] != 3*6 || perCluster[2] != 3*6 {
		t.Fatalf("surviving clusters incomplete: %v", perCluster)
	}
	frozen := false
	for _, m := range r.dep.Members {
		if strings.HasPrefix(m.Group(), "intra1") && m.Stats().Frozen {
			frozen = true
		}
	}
	if !frozen {
		t.Fatal("no cluster-1 member reports a frozen group")
	}
}

// TestFaultyRunDeterministic: the same seed renders a byte-identical
// trace — including crash, regeneration-epoch and recovery events — and
// identical records; a different seed diverges.
func TestFaultyRunDeterministic(t *testing.T) {
	run := func(seed int64) (string, int) {
		victim := mutex.ID(7) // an app of cluster 1
		entries := 0
		r := buildRig(t, seed, func(r *rig, id mutex.ID, inner mutex.Callbacks) mutex.Callbacks {
			if id != victim {
				return inner
			}
			return mutex.Callbacks{OnAcquire: func() {
				inner.OnAcquire()
				entries++
				if entries == 1 {
					r.crash(victim)
				}
			}}
		})
		r.drive(t)
		r.assertClean(t)
		return r.tr.Dump(), len(r.runner.Records())
	}
	d1, n1 := run(11)
	d2, n2 := run(11)
	if d1 != d2 {
		t.Fatal("same seed produced different traces")
	}
	if n1 != n2 {
		t.Fatalf("same seed produced %d vs %d records", n1, n2)
	}
	if !strings.Contains(d1, "crash") || !strings.Contains(d1, "epoch intra1") {
		t.Fatalf("trace misses crash/epoch events:\n%.600s", d1)
	}
	if d3, _ := run(12); d3 == d1 {
		t.Fatal("different seeds produced identical traces")
	}
}
