package recovery

import (
	"strings"
	"testing"
	"time"

	"gridmutex/internal/check"
	"gridmutex/internal/core"
	"gridmutex/internal/des"
	"gridmutex/internal/mutex"
	"gridmutex/internal/simnet"
	"gridmutex/internal/topology"
	"gridmutex/internal/trace"
	"gridmutex/internal/workload"
)

func TestEpochOrder(t *testing.T) {
	cases := []struct {
		a, b Epoch
		less bool
	}{
		{Epoch{0, mutex.None}, Epoch{1, 3}, true},
		{Epoch{1, 3}, Epoch{0, mutex.None}, false},
		{Epoch{2, 1}, Epoch{2, 4}, true},
		{Epoch{2, 4}, Epoch{2, 4}, false},
		{Epoch{3, 9}, Epoch{4, 0}, true},
	}
	for _, c := range cases {
		if got := c.a.Less(c.b); got != c.less {
			t.Errorf("%v.Less(%v) = %v, want %v", c.a, c.b, got, c.less)
		}
	}
}

func TestWrappedTransparency(t *testing.T) {
	inner := Heartbeat{} // any message will do
	w := Wrapped{E: Epoch{3, 7}, Inner: inner}
	if w.Kind() != inner.Kind() {
		t.Errorf("wrapped kind %q, want inner kind %q", w.Kind(), inner.Kind())
	}
	if w.Size() != inner.Size()+8 {
		t.Errorf("wrapped size %d, want inner+8 = %d", w.Size(), inner.Size()+8)
	}
}

// rig is one simulated crash-tolerant deployment under workload.
type rig struct {
	sim    *des.Simulator
	net    *simnet.Network
	grid   *topology.Grid
	mon    *check.Monitor
	runner *workload.Runner
	dep    *Deployment
	tr     *trace.Tracer
}

// buildRig assembles a 3-cluster deployment (5 nodes each: primary,
// standby, 3 apps) running naimi-naimi under a short-period detector.
// wrapCB, when non-nil, may wrap the workload callbacks per app id.
func buildRig(t *testing.T, seed int64, wrapCB func(r *rig, id mutex.ID, inner mutex.Callbacks) mutex.Callbacks) *rig {
	t.Helper()
	g := topology.Uniform(3, 5, time.Millisecond, 20*time.Millisecond)
	sim := des.New()
	tr := trace.New(func() time.Duration { return sim.Now() }, 1<<18)
	net := simnet.New(sim, g, simnet.Options{Seed: seed, Trace: tr})
	mon := check.NewMonitor(sim)
	runner, err := workload.NewRunner(sim, workload.Params{
		Alpha: 5 * time.Millisecond, Rho: 6, CSPerProcess: 6, Seed: seed,
	}, mon)
	if err != nil {
		t.Fatal(err)
	}
	r := &rig{sim: sim, net: net, grid: g, mon: mon, runner: runner, tr: tr}
	appCB := func(id mutex.ID) mutex.Callbacks {
		inner := runner.Callbacks(id)
		if wrapCB == nil {
			return inner
		}
		return wrapCB(r, id, inner)
	}
	intra, inter := StaggeredTimeouts(20*time.Millisecond, 10*time.Millisecond)
	dep, err := Build(net, g, core.Spec{Intra: "naimi", Inter: "naimi"}, appCB, sim, BuildOptions{
		Intra:    intra,
		Inter:    inter,
		NodeDown: net.Down,
		OnEpoch: func(group string, self mutex.ID, e Epoch, members []mutex.ID, holder mutex.ID) {
			tr.Record(trace.Custom, self, holder, "epoch "+group+" "+e.String())
			mon.BeginEpoch(group)
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	r.dep = dep
	runner.Bind(dep.Apps)
	runner.Start()
	return r
}

// crash fail-stops a node: network, workload and monitor bookkeeping.
func (r *rig) crash(id mutex.ID) {
	r.net.Crash(int(id))
	r.runner.Crash(id)
	r.mon.Crashed(id)
	r.tr.Record(trace.Custom, id, mutex.None, "crash")
}

// drive steps the simulation until the workload completes (heartbeats
// keep the queue non-empty, so Run would never return), then stops the
// detectors and drains.
func (r *rig) drive(t *testing.T) {
	t.Helper()
	const limit = 5_000_000
	for !r.runner.Done() {
		if r.sim.Processed() > limit {
			t.Fatalf("workload not done after %d events at %v; outstanding=%d waiting=%d",
				r.sim.Processed(), r.sim.Now(), r.runner.Outstanding(), r.runner.Waiting())
		}
		if !r.sim.Step() {
			t.Fatal("event queue drained before workload completion")
		}
	}
	r.dep.Stop()
	if err := r.sim.RunCapped(limit); err != nil {
		t.Fatal(err)
	}
}

func (r *rig) assertClean(t *testing.T) {
	t.Helper()
	for _, v := range r.mon.Violations() {
		t.Errorf("violation: %s", v)
	}
	r.mon.AssertQuiescent()
	if !r.mon.Ok() {
		t.Fatalf("monitor not ok after quiescence check: %v", r.mon.Violations())
	}
}

// TestFaultFreeComplete: with no faults the deployment behaves like the
// plain composition — full completion, no violations, no epochs.
func TestFaultFreeComplete(t *testing.T) {
	r := buildRig(t, 1, nil)
	r.drive(t)
	r.assertClean(t)
	if got, want := int64(len(r.runner.Records())), int64(9*6); got != want {
		t.Fatalf("records %d, want %d", got, want)
	}
	if r.mon.Epochs() != 0 {
		t.Fatalf("fault-free run produced %d epochs", r.mon.Epochs())
	}
	for _, sb := range r.dep.Standbys {
		if sb.Activated() {
			t.Fatalf("standby %d activated without a crash", sb.ID())
		}
	}
}

// TestAppTokenHolderCrash is acceptance case (a): a non-coordinator token
// holder crashes inside its critical section; the token is regenerated,
// every surviving requester completes, and no safety violation occurs.
func TestAppTokenHolderCrash(t *testing.T) {
	victim := mutex.ID(2) // first app of cluster 0
	entries := 0
	r := buildRig(t, 2, func(r *rig, id mutex.ID, inner mutex.Callbacks) mutex.Callbacks {
		if id != victim {
			return inner
		}
		return mutex.Callbacks{OnAcquire: func() {
			inner.OnAcquire()
			entries++
			if entries == 2 {
				r.crash(victim) // fail-stop the instant it re-enters the CS
			}
		}}
	})
	r.drive(t)
	r.assertClean(t)
	if r.mon.CrashExits() != 1 {
		t.Fatalf("crash exits %d, want 1 (victim died inside the CS)", r.mon.CrashExits())
	}
	if r.mon.Epochs() == 0 {
		t.Fatal("no regeneration epoch after a token-holder crash")
	}
	if lat := r.mon.RecoveryLatencies(); len(lat) != 1 || lat[0] <= 0 {
		t.Fatalf("recovery latencies %v, want one positive sample", lat)
	}
	// Survivors: 8 apps × 6 critical sections, plus the victim's 2.
	if got, want := len(r.runner.Records()), 8*6+2; got != want {
		t.Fatalf("records %d, want %d", got, want)
	}
	for _, sb := range r.dep.Standbys {
		if sb.Activated() {
			t.Fatalf("standby %d activated though only an app crashed", sb.ID())
		}
	}
}

// The remaining acceptance cases — coordinator crash, coordinator crash
// while IN, frozen cluster (single and both levels), staggered multi-
// crash, lossy holder crash — live as declarative fixtures under
// testdata/scenarios/ and run via internal/scenario's corpus sweep.
// TestAppTokenHolderCrash above stays as the Go-coded guard so a
// scenario-engine regression cannot silently mask a recovery one.

// TestFaultyRunDeterministic: the same seed renders a byte-identical
// trace — including crash, regeneration-epoch and recovery events — and
// identical records; a different seed diverges.
func TestFaultyRunDeterministic(t *testing.T) {
	run := func(seed int64) (string, int) {
		victim := mutex.ID(7) // an app of cluster 1
		entries := 0
		r := buildRig(t, seed, func(r *rig, id mutex.ID, inner mutex.Callbacks) mutex.Callbacks {
			if id != victim {
				return inner
			}
			return mutex.Callbacks{OnAcquire: func() {
				inner.OnAcquire()
				entries++
				if entries == 1 {
					r.crash(victim)
				}
			}}
		})
		r.drive(t)
		r.assertClean(t)
		return r.tr.Dump(), len(r.runner.Records())
	}
	d1, n1 := run(11)
	d2, n2 := run(11)
	if d1 != d2 {
		t.Fatal("same seed produced different traces")
	}
	if n1 != n2 {
		t.Fatalf("same seed produced %d vs %d records", n1, n2)
	}
	if !strings.Contains(d1, "crash") || !strings.Contains(d1, "epoch intra1") {
		t.Fatalf("trace misses crash/epoch events:\n%.600s", d1)
	}
	if d3, _ := run(12); d3 == d1 {
		t.Fatal("different seeds produced identical traces")
	}
}
