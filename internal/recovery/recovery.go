// Package recovery adds crash tolerance to the token algorithms and their
// composition: a heartbeat-based failure detector and a token-regeneration
// controller, both driven entirely by virtual-time events so that faulty
// runs stay byte-identical per seed.
//
// # Model
//
// Every algorithm group (one per cluster for the intra level, one global
// group for the inter level) is wrapped in epochs. A Member owns the group
// endpoint of one process: it runs the underlying algorithm instance for
// the current epoch, tags every algorithm message with the epoch, and
// exchanges heartbeats with the other members. When the lowest-id live
// member (the leader) suspects a peer — no heartbeat within the timeout —
// it runs a probe round: every unsuspected member reports whether it holds
// the token or is inside the critical section, and fences its current
// epoch (buffering algorithm messages) so a token in flight cannot slip
// past the census. The leader then announces a new epoch: the surviving
// membership, plus the token position — the holder found by the census,
// or, when the token died with a crashed node, a deterministically chosen
// regeneration holder. Every member rebuilds its algorithm instance for
// the new membership and re-issues its own outstanding request; messages
// from dead epochs are dropped, messages from future epochs are buffered
// until the announcement arrives.
//
// # Owner state
//
// A Member implements mutex.Instance, so owners (the workload, the
// composition coordinator) drive it exactly like a raw algorithm
// instance. The member tracks the owner's state (idle / requested /
// in-CS) across epochs: a rebuild re-requests on behalf of a requesting
// owner and re-seats (with a suppressed duplicate OnAcquire) the token
// under an owner that is inside its critical section.
//
// # What is and is not survivable
//
// Crashes of application processes — including one holding the token,
// even inside its critical section — and of cluster coordinators (with a
// standby taking over, see Build) are survivable. A group whose
// HolderPrefs all crashed freezes: regenerating the intra token at an
// application process would let the cluster enter critical sections
// without the global (inter) token, so the leader announces a frozen
// epoch (Holder == None) and the group stops — safety over liveness.
// Restarted nodes regain connectivity but are not re-admitted to their
// groups: the member retires on the down→up edge instead of acting on
// pre-crash state. Re-admission (state hand-off to a rejoining node) is
// future work.
//
// The failure detector is timeout-based, so safety of regeneration rests
// on the usual accuracy assumption: a live, reachable member is never
// suspected. Under the simulator latencies are bounded, so any Timeout
// exceeding the heartbeat period plus the maximum one-way delay makes the
// detector accurate in the absence of real crashes.
package recovery

import (
	"fmt"
	"sort"
	"time"

	"gridmutex/internal/des"
	"gridmutex/internal/mutex"
)

// Clock is the virtual time source and timer a Member runs on. The DES
// simulator implements it.
type Clock interface {
	Now() des.Time
	After(d time.Duration, f func())
}

// Epoch identifies one membership-and-token generation of a group. Epochs
// are totally ordered by (Seq, Leader); a member accepts any strictly
// greater epoch, so two concurrent leaders (possible only under detector
// inaccuracy) converge to the maximum.
type Epoch struct {
	// Seq increments on every announcement.
	Seq uint32
	// Leader is the member that announced the epoch (None for the initial
	// epoch, which is never announced).
	Leader mutex.ID
}

// Less reports whether e precedes o in epoch order.
func (e Epoch) Less(o Epoch) bool {
	if e.Seq != o.Seq {
		return e.Seq < o.Seq
	}
	return e.Leader < o.Leader
}

// String renders the epoch compactly.
func (e Epoch) String() string { return fmt.Sprintf("e%d@%d", e.Seq, e.Leader) }

// Heartbeat is the periodic aliveness beacon.
type Heartbeat struct{}

// Kind implements mutex.Message.
func (Heartbeat) Kind() string { return "rec.hb" }

// Size implements mutex.Message: a one-byte tag.
func (Heartbeat) Size() int { return 1 }

// Probe asks a member for its token census answer during round Round.
type Probe struct {
	Round uint32
	E     Epoch
}

// Kind implements mutex.Message.
func (Probe) Kind() string { return "rec.probe" }

// Size implements mutex.Message: tag + round + epoch.
func (Probe) Size() int { return 1 + 4 + 8 }

// ProbeAck answers a Probe: does the member hold the token, and is its
// owner inside the critical section (or claiming it, see Member.AdoptCS)?
type ProbeAck struct {
	Round uint32
	Holds bool
	InCS  bool
}

// Kind implements mutex.Message.
func (ProbeAck) Kind() string { return "rec.ack" }

// Size implements mutex.Message: tag + round + two flags.
func (ProbeAck) Size() int { return 1 + 4 + 2 }

// NewEpoch announces an epoch: the surviving membership and the token
// position. Holder == None announces a frozen epoch (see package doc).
type NewEpoch struct {
	E       Epoch
	Members []mutex.ID
	Holder  mutex.ID
}

// Kind implements mutex.Message.
func (NewEpoch) Kind() string { return "rec.epoch" }

// Size implements mutex.Message: tag + epoch + holder + member list.
func (m NewEpoch) Size() int { return 1 + 8 + 4 + 4*len(m.Members) }

// Wrapped carries an algorithm message tagged with its epoch. It is
// transparent for tracing and counters (inner kind, inner size plus tag).
type Wrapped struct {
	E     Epoch
	Inner mutex.Message
}

// Kind implements mutex.Message.
func (w Wrapped) Kind() string { return w.Inner.Kind() }

// Size implements mutex.Message.
func (w Wrapped) Size() int { return w.Inner.Size() + 8 }

// Options tune the failure detector.
type Options struct {
	// Period is the heartbeat interval. Default 50ms.
	Period time.Duration
	// Timeout is the silence after which a peer is suspected. It must
	// exceed Period plus the maximum one-way delay, or live members are
	// falsely suspected. Default 4×Period.
	Timeout time.Duration
	// ProbeTimeout bounds one probe round; unanswered members are
	// suspected and the round retried without them. Rounds normally finish
	// early, on the last ack. Default Timeout.
	ProbeTimeout time.Duration
}

func (o Options) withDefaults() Options {
	if o.Period <= 0 {
		o.Period = 50 * time.Millisecond
	}
	if o.Timeout <= 0 {
		o.Timeout = 4 * o.Period
	}
	if o.ProbeTimeout <= 0 {
		o.ProbeTimeout = o.Timeout
	}
	return o
}

// Config wires one Member.
type Config struct {
	// Group names the group, for observers and tracing.
	Group string
	// Self, Members, Holder describe the initial epoch exactly like a
	// mutex.Config.
	Self    mutex.ID
	Members []mutex.ID
	Holder  mutex.ID
	// Factory builds the underlying algorithm instance, once per epoch.
	Factory mutex.Factory
	// Env is the group's network endpoint (for a composed process, the
	// per-level env of its core.Process).
	Env mutex.Env
	// Clock drives heartbeats and timeouts.
	Clock Clock
	// Callbacks are the owner's callbacks; SetCallbacks can replace them
	// later (standby takeover).
	Callbacks mutex.Callbacks
	// HolderPrefs, when non-empty, restricts token regeneration to these
	// members in preference order; if none survives, the group freezes.
	// Empty means "lowest-id live member" — safe only when any member may
	// hold the token idle (true for the inter group, false for intra
	// groups, whose token must stay with a coordinator when no
	// application holds it).
	HolderPrefs []mutex.ID
	// CrashedSelf, when non-nil, reports whether this member's own node is
	// currently crashed — the oracle that keeps a dead node's virtual
	// timers from doing protocol work (simnet already suppresses its
	// messages). Typically a closure over simnet's ProcessDown.
	CrashedSelf func() bool
	// OnEpoch, when non-nil, fires after this member applies an epoch —
	// before buffered future-epoch messages are flushed, so a standby
	// taking over installs its callbacks ahead of any queued request.
	OnEpoch func(e Epoch, members []mutex.ID, holder mutex.ID)
	// Opts tunes the failure detector.
	Opts Options
}

// Stats counts recovery activity of one member.
type Stats struct {
	// Epochs is how many announcements this member applied.
	Epochs int64
	// Regenerations is how many epochs this member announced with a
	// regenerated (not census-found) holder.
	Regenerations int64
	// Rounds is how many probe rounds this member led.
	Rounds int64
	// Suspicions is how many peers this member suspected.
	Suspicions int64
	// StaleDropped counts dead-epoch messages dropped.
	StaleDropped int64
	// FencedDropped counts messages fenced during a probe round whose
	// epoch was then superseded.
	FencedDropped int64
	// HeartbeatsSent counts heartbeats emitted.
	HeartbeatsSent int64
	// Frozen reports whether the member's group froze.
	Frozen bool
	// Retired reports whether the member retired after its node restarted.
	Retired bool
}

type ownerState uint8

const (
	ownerIdle ownerState = iota
	ownerRequested
	ownerInCS
)

type bufferedMsg struct {
	from mutex.ID
	msg  Wrapped
}

// Member is one process's endpoint of a crash-tolerant group: a
// mutex.Instance that runs the configured algorithm under the current
// epoch and the failure detector that advances epochs. All entry points
// run on the owner's serial context (DES event handlers).
type Member struct {
	cfg  Config
	opts Options

	epoch  Epoch
	live   []mutex.ID // sorted membership of the current epoch
	holder mutex.ID   // initial holder of the current epoch
	inner  mutex.Instance
	cbs    mutex.Callbacks

	owner            ownerState
	suppressAcquire  bool
	releaseOnAcquire bool

	lastHeard map[mutex.ID]des.Time
	suspects  map[mutex.ID]bool

	probing bool
	round   uint32
	acks    map[mutex.ID]ProbeAck
	targets []mutex.ID

	fenced    bool
	fenceGen  uint64
	fencedBuf []bufferedMsg
	future    []bufferedMsg

	frozen  bool
	started bool
	stopped bool
	wasDown bool
	retired bool

	stats Stats
}

// NewMember builds a member and its initial-epoch algorithm instance.
// Call Start to begin heartbeating.
func NewMember(cfg Config) (*Member, error) {
	if cfg.Factory == nil {
		return nil, fmt.Errorf("recovery: nil factory")
	}
	if cfg.Env == nil {
		return nil, fmt.Errorf("recovery: nil env")
	}
	if cfg.Clock == nil {
		return nil, fmt.Errorf("recovery: nil clock")
	}
	m := &Member{
		cfg:       cfg,
		opts:      cfg.Opts.withDefaults(),
		epoch:     Epoch{Seq: 0, Leader: mutex.None},
		holder:    cfg.Holder,
		cbs:       cfg.Callbacks,
		lastHeard: make(map[mutex.ID]des.Time, len(cfg.Members)),
		suspects:  make(map[mutex.ID]bool),
	}
	m.live = append([]mutex.ID(nil), cfg.Members...)
	sort.Slice(m.live, func(i, j int) bool { return m.live[i] < m.live[j] })
	now := cfg.Clock.Now()
	for _, id := range m.live {
		m.lastHeard[id] = now
	}
	if err := m.buildInner(); err != nil {
		return nil, err
	}
	return m, nil
}

// ID returns the member's participant id.
func (m *Member) ID() mutex.ID { return m.cfg.Self }

// Group returns the configured group name.
func (m *Member) Group() string { return m.cfg.Group }

// Epoch returns the current epoch.
func (m *Member) Epoch() Epoch { return m.epoch }

// Live returns the current epoch's membership (sorted, shared slice —
// callers must not mutate).
func (m *Member) Live() []mutex.ID { return m.live }

// Stats returns a snapshot of recovery activity.
func (m *Member) Stats() Stats {
	s := m.stats
	s.Frozen = m.frozen
	s.Retired = m.retired
	return s
}

// SetCallbacks replaces the owner callbacks — the hook a standby
// coordinator uses when it takes over a crashed primary's groups.
func (m *Member) SetCallbacks(cbs mutex.Callbacks) { m.cbs = cbs }

// Start begins heartbeating and failure detection.
func (m *Member) Start() {
	if m.started {
		panic(fmt.Sprintf("recovery: member %d of %s started twice", m.cfg.Self, m.cfg.Group))
	}
	m.started = true
	m.cfg.Clock.After(m.opts.Period, m.tick)
}

// Stop halts the detector: the current tick chain ends and no further
// timers are armed, so a driven simulation can drain.
func (m *Member) Stop() { m.stopped = true }

// buildInner constructs the algorithm instance for the current epoch.
// Callbacks and the env are epoch-stamped: a superseded instance's late
// local upcalls are ignored and its late sends dropped by receivers.
func (m *Member) buildInner() error {
	e := m.epoch
	inst, err := m.cfg.Factory(mutex.Config{
		Self:    m.cfg.Self,
		Members: m.live,
		Holder:  m.holder,
		Env:     &epochEnv{m: m, e: e},
		Callbacks: mutex.Callbacks{
			OnAcquire: func() {
				if m.epoch == e {
					m.onInnerAcquire()
				}
			},
			OnPending: func() {
				if m.epoch == e && m.cbs.OnPending != nil {
					m.cbs.OnPending()
				}
			},
		},
	})
	if err != nil {
		return fmt.Errorf("recovery: %s instance for %d in %v: %w", m.cfg.Group, m.cfg.Self, e, err)
	}
	m.inner = inst
	return nil
}

// epochEnv tags every send of one epoch's instance with that epoch, so
// receivers can tell live traffic from a dead instance's stragglers.
type epochEnv struct {
	m *Member
	e Epoch
}

func (e *epochEnv) Send(to mutex.ID, msg mutex.Message) {
	e.m.cfg.Env.Send(to, Wrapped{E: e.e, Inner: msg})
}

func (e *epochEnv) Local(f func()) { e.m.cfg.Env.Local(f) }

func (m *Member) onInnerAcquire() {
	if m.releaseOnAcquire {
		// The owner released while an epoch rebuild's re-acquire was in
		// flight: drop the critical section the moment it lands.
		m.releaseOnAcquire = false
		m.suppressAcquire = false
		m.inner.Release()
		return
	}
	if m.suppressAcquire {
		// The re-acquire of an epoch rebuild (or an AdoptCS claim): the
		// owner is already in its critical section.
		m.suppressAcquire = false
		return
	}
	if m.owner != ownerRequested {
		panic(fmt.Sprintf("recovery: member %d of %s granted with owner state %d", m.cfg.Self, m.cfg.Group, m.owner))
	}
	m.owner = ownerInCS
	if m.cbs.OnAcquire != nil {
		m.cbs.OnAcquire()
	}
}

// Request implements mutex.Instance.
func (m *Member) Request() {
	if m.owner != ownerIdle {
		panic(fmt.Sprintf("recovery: member %d of %s requested in owner state %d", m.cfg.Self, m.cfg.Group, m.owner))
	}
	m.owner = ownerRequested
	if m.inner != nil {
		m.inner.Request()
	}
	// With no instance (excluded or frozen) the request is recorded in the
	// owner state; a future epoch re-issues it.
}

// Release implements mutex.Instance.
func (m *Member) Release() {
	if m.owner != ownerInCS {
		panic(fmt.Sprintf("recovery: member %d of %s released in owner state %d", m.cfg.Self, m.cfg.Group, m.owner))
	}
	m.owner = ownerIdle
	if m.inner == nil {
		return
	}
	if m.inner.State() == mutex.InCS {
		m.inner.Release()
		return
	}
	// An epoch rebuild's re-acquire (or an AdoptCS claim) has not landed
	// yet; release it on arrival.
	m.releaseOnAcquire = true
}

// AdoptCS transfers a crashed peer's critical-section claim to this
// member without a grant: the owner state becomes in-CS, so the next
// probe census regenerates the token here and the suppressed re-acquire
// seats it. A standby coordinator uses this to inherit its dead primary's
// inter-token possession while the cluster's intra token is still out
// serving an application.
func (m *Member) AdoptCS() {
	if m.owner != ownerIdle {
		panic(fmt.Sprintf("recovery: member %d of %s adopted CS in owner state %d", m.cfg.Self, m.cfg.Group, m.owner))
	}
	m.owner = ownerInCS
	if m.inner != nil && m.inner.State() == mutex.NoReq {
		m.suppressAcquire = true
		m.inner.Request()
	}
}

// HasPending implements mutex.Instance.
func (m *Member) HasPending() bool { return m.inner != nil && m.inner.HasPending() }

// HoldsToken implements mutex.Instance.
func (m *Member) HoldsToken() bool { return m.inner != nil && m.inner.HoldsToken() }

// State implements mutex.Instance, derived from the owner state (which
// survives epoch rebuilds, unlike the instance's own state).
func (m *Member) State() mutex.State {
	switch m.owner {
	case ownerRequested:
		return mutex.Req
	case ownerInCS:
		return mutex.InCS
	default:
		return mutex.NoReq
	}
}

// down reports whether this member's own node is crashed.
func (m *Member) down() bool { return m.cfg.CrashedSelf != nil && m.cfg.CrashedSelf() }

// tick is the heartbeat-period heartbeat/suspect/lead step.
func (m *Member) tick() {
	if m.stopped || m.retired {
		return
	}
	if m.down() {
		m.wasDown = true
		m.cfg.Clock.After(m.opts.Period, m.tick)
		return
	}
	if m.wasDown {
		// The node restarted. Acting on pre-crash state would corrupt the
		// group (stale claims, stale leadership), so the member retires;
		// re-admission is future work (see package doc).
		m.retired = true
		return
	}
	for _, id := range m.live {
		if id == m.cfg.Self {
			continue
		}
		m.cfg.Env.Send(id, Heartbeat{})
		m.stats.HeartbeatsSent++
	}
	if !m.frozen {
		now := m.cfg.Clock.Now()
		for _, id := range m.live {
			if id == m.cfg.Self || m.suspects[id] {
				continue
			}
			if time.Duration(now-m.lastHeard[id]) > m.opts.Timeout {
				m.suspects[id] = true
				m.stats.Suspicions++
			}
		}
		if !m.probing && m.isLeader() && m.anySuspectLive() {
			m.startRound()
		}
	}
	m.cfg.Clock.After(m.opts.Period, m.tick)
}

// isLeader reports whether this member is the lowest-id unsuspected live
// member — the one that runs probe rounds and announces epochs.
func (m *Member) isLeader() bool {
	for _, id := range m.live {
		if !m.suspects[id] {
			return id == m.cfg.Self
		}
	}
	return false
}

func (m *Member) anySuspectLive() bool {
	for _, id := range m.live {
		if m.suspects[id] {
			return true
		}
	}
	return false
}

// heard records aliveness evidence from a peer.
func (m *Member) heard(from mutex.ID) {
	if _, known := m.lastHeard[from]; !known {
		// Not part of the current membership universe (e.g. a retired or
		// excluded node): evidence is ignored, re-admission is future work.
		if !containsID(m.live, from) {
			return
		}
	}
	m.lastHeard[from] = m.cfg.Clock.Now()
	if m.suspects[from] && !m.probing {
		// A false suspicion cleared before any round acted on it.
		delete(m.suspects, from)
	}
}

// fence starts (or re-arms) the probe fence: current-epoch algorithm
// messages are buffered so a token in flight cannot slip past the census.
// If no announcement ends the fence — the round was aborted or its leader
// died — the buffer is flushed after a conservative deadline, preserving
// the token.
func (m *Member) fence() {
	m.fenced = true
	m.fenceGen++
	gen := m.fenceGen
	m.cfg.Clock.After(m.opts.ProbeTimeout+m.opts.Timeout, func() {
		if m.stopped || m.retired || !m.fenced || gen != m.fenceGen {
			return
		}
		m.fenced = false
		buf := m.fencedBuf
		m.fencedBuf = nil
		for _, b := range buf {
			if b.msg.E == m.epoch && m.inner != nil {
				m.inner.Deliver(b.from, b.msg.Inner)
			} else {
				m.stats.FencedDropped++
			}
		}
	})
}

// startRound begins a probe round: census every unsuspected live peer.
func (m *Member) startRound() {
	m.probing = true
	m.round++
	m.stats.Rounds++
	m.fence()
	m.acks = map[mutex.ID]ProbeAck{
		m.cfg.Self: {Round: m.round, Holds: m.HoldsToken(), InCS: m.owner == ownerInCS},
	}
	m.targets = m.targets[:0]
	for _, id := range m.live {
		if id == m.cfg.Self || m.suspects[id] {
			continue
		}
		m.targets = append(m.targets, id)
	}
	if len(m.targets) == 0 {
		m.finishRound()
		return
	}
	for _, id := range m.targets {
		m.cfg.Env.Send(id, Probe{Round: m.round, E: m.epoch})
	}
	round := m.round
	m.cfg.Clock.After(m.opts.ProbeTimeout, func() { m.roundTimeout(round) })
}

func (m *Member) roundTimeout(round uint32) {
	if m.stopped || m.retired || m.down() || !m.probing || round != m.round {
		return
	}
	// Unanswered members are suspected; retry with the smaller target set
	// (the round count is bounded by the membership size).
	missing := false
	for _, id := range m.targets {
		if _, ok := m.acks[id]; !ok {
			if !m.suspects[id] {
				m.suspects[id] = true
				m.stats.Suspicions++
			}
			missing = true
		}
	}
	m.probing = false
	if !m.isLeader() {
		// Leadership moved (a lower id came back): abandon the round and
		// let the fence deadline flush the buffer.
		return
	}
	if missing {
		m.startRound()
		return
	}
	m.probing = true
	m.finishRound()
}

func (m *Member) allAcked() bool {
	for _, id := range m.targets {
		if _, ok := m.acks[id]; !ok {
			return false
		}
	}
	return true
}

// finishRound turns the census into an epoch announcement.
func (m *Member) finishRound() {
	m.probing = false
	var newLive []mutex.ID
	for _, id := range m.live {
		if !m.suspects[id] {
			newLive = append(newLive, id)
		}
	}
	// With holder preferences configured, every preferred member dead
	// means the group can no longer be coordinated (for an intra group:
	// both the primary and the standby are gone) — freeze it even if an
	// application still holds the token, or the applications would keep
	// circulating the intra token with nothing coupling them to the inter
	// level.
	if len(m.cfg.HolderPrefs) > 0 {
		prefAlive := false
		for _, p := range m.cfg.HolderPrefs {
			if containsID(newLive, p) {
				prefAlive = true
				break
			}
		}
		if !prefAlive {
			m.announce(NewEpoch{
				E:       Epoch{Seq: m.epoch.Seq + 1, Leader: m.cfg.Self},
				Members: newLive,
				Holder:  mutex.None,
			})
			return
		}
	}
	// Token position: a member inside (or claiming) the critical section
	// wins, then an idle holder. Census answers exist for every survivor —
	// unanswered members were suspected out by roundTimeout.
	holder := mutex.None
	for _, id := range newLive {
		if m.acks[id].InCS {
			holder = id
			break
		}
	}
	if holder == mutex.None {
		for _, id := range newLive {
			if m.acks[id].Holds {
				holder = id
				break
			}
		}
	}
	if holder == mutex.None {
		// The token died with a crashed node: regenerate deterministically.
		if len(m.cfg.HolderPrefs) > 0 {
			for _, p := range m.cfg.HolderPrefs {
				if containsID(newLive, p) {
					holder = p
					break
				}
			}
		} else if len(newLive) > 0 {
			holder = newLive[0]
		}
		if holder != mutex.None {
			m.stats.Regenerations++
		}
	}
	m.announce(NewEpoch{
		E:       Epoch{Seq: m.epoch.Seq + 1, Leader: m.cfg.Self},
		Members: newLive,
		Holder:  holder,
	})
}

// announce sends an epoch to every survivor and applies it locally.
func (m *Member) announce(ne NewEpoch) {
	for _, id := range ne.Members {
		if id != m.cfg.Self {
			m.cfg.Env.Send(id, ne)
		}
	}
	m.applyNewEpoch(ne)
}

// applyNewEpoch installs a strictly greater epoch: new membership, a fresh
// algorithm instance, owner-state reconciliation, buffered-message flush.
func (m *Member) applyNewEpoch(ne NewEpoch) {
	if !m.epoch.Less(ne.E) {
		m.stats.StaleDropped++
		return
	}
	m.epoch = ne.E
	m.stats.Epochs++
	m.live = append([]mutex.ID(nil), ne.Members...)
	m.holder = ne.Holder
	m.suspects = make(map[mutex.ID]bool)
	m.probing = false
	m.suppressAcquire = false
	m.releaseOnAcquire = false
	// The fence dies with its epoch: everything it buffered is stale.
	m.stats.FencedDropped += int64(len(m.fencedBuf))
	m.fencedBuf = nil
	m.fenced = false
	now := m.cfg.Clock.Now()
	for _, id := range m.live {
		m.lastHeard[id] = now
	}
	switch {
	case ne.Holder == mutex.None:
		m.inner = nil
		m.frozen = true
	case !containsID(m.live, m.cfg.Self):
		// Excluded (a false suspicion): no instance; this member's owner
		// requests stay recorded but cannot be served.
		m.inner = nil
	default:
		if err := m.buildInner(); err != nil {
			// The factory accepted the initial shape; a strictly smaller
			// membership failing is a bug, not a runtime condition.
			panic(err)
		}
		switch m.owner {
		case ownerInCS:
			// The owner is inside its critical section: re-seat the token
			// under it, suppressing the duplicate grant.
			m.suppressAcquire = true
			m.inner.Request()
		case ownerRequested:
			m.inner.Request()
		}
	}
	// Owner hook before the flush: a standby taking over installs its
	// callbacks (and possibly an AdoptCS claim) ahead of queued traffic.
	if m.cfg.OnEpoch != nil {
		m.cfg.OnEpoch(ne.E, append([]mutex.ID(nil), m.live...), m.holder)
	}
	buf := m.future
	m.future = nil
	for _, b := range buf {
		switch {
		case b.msg.E == m.epoch:
			if m.inner != nil {
				m.inner.Deliver(b.from, b.msg.Inner)
			} else {
				m.stats.StaleDropped++
			}
		case m.epoch.Less(b.msg.E):
			m.future = append(m.future, b)
		default:
			m.stats.StaleDropped++
		}
	}
}

// Deliver implements mutex.Instance (and the handler contract): control
// messages drive the detector, Wrapped messages reach the current epoch's
// instance (or are buffered/dropped by epoch).
func (m *Member) Deliver(from mutex.ID, msg mutex.Message) {
	if m.stopped || m.retired || m.down() {
		return
	}
	switch t := msg.(type) {
	case Heartbeat:
		m.heard(from)
	case Probe:
		m.heard(from)
		if t.E.Less(m.epoch) {
			m.stats.StaleDropped++
			return
		}
		// Census: fence the epoch and answer.
		m.fence()
		m.cfg.Env.Send(from, ProbeAck{Round: t.Round, Holds: m.HoldsToken(), InCS: m.owner == ownerInCS})
	case ProbeAck:
		m.heard(from)
		if !m.probing || t.Round != m.round {
			return
		}
		m.acks[from] = t
		if m.allAcked() {
			m.finishRound()
		}
	case NewEpoch:
		m.heard(from)
		m.applyNewEpoch(t)
	case Wrapped:
		m.heard(from)
		switch {
		case t.E == m.epoch:
			if m.fenced {
				m.fencedBuf = append(m.fencedBuf, bufferedMsg{from: from, msg: t})
				return
			}
			if m.inner == nil {
				m.stats.StaleDropped++
				return
			}
			m.inner.Deliver(from, t.Inner)
		case m.epoch.Less(t.E):
			m.future = append(m.future, bufferedMsg{from: from, msg: t})
		default:
			m.stats.StaleDropped++
		}
	default:
		panic(fmt.Sprintf("recovery: member %d of %s received %T", m.cfg.Self, m.cfg.Group, msg))
	}
}

func containsID(ids []mutex.ID, id mutex.ID) bool {
	for _, x := range ids {
		if x == id {
			return true
		}
	}
	return false
}
