// Package recovery adds crash tolerance to the token algorithms and their
// composition: a heartbeat-based failure detector and a token-regeneration
// controller, both driven entirely by virtual-time events so that faulty
// runs stay byte-identical per seed.
//
// # Model
//
// Every algorithm group (one per cluster for the intra level, one global
// group for the inter level) is wrapped in epochs. A Member owns the group
// endpoint of one process: it runs the underlying algorithm instance for
// the current epoch, tags every algorithm message with the epoch, and
// exchanges heartbeats with the other members. When the lowest-id live
// member (the leader) suspects a peer — no heartbeat within the timeout —
// it runs a probe round: every unsuspected member reports whether it holds
// the token or is inside the critical section, and fences its current
// epoch (buffering algorithm messages) so a token in flight cannot slip
// past the census. The leader then announces a new epoch: the surviving
// membership, plus the token position — the holder found by the census,
// or, when the token died with a crashed node, a deterministically chosen
// regeneration holder. Every member rebuilds its algorithm instance for
// the new membership and re-issues its own outstanding request; messages
// from dead epochs are dropped, messages from future epochs are buffered
// until the announcement arrives.
//
// # Owner state
//
// A Member implements mutex.Instance, so owners (the workload, the
// composition coordinator) drive it exactly like a raw algorithm
// instance. The member tracks the owner's state (idle / requested /
// in-CS) across epochs: a rebuild re-requests on behalf of a requesting
// owner and re-seats (with a suppressed duplicate OnAcquire) the token
// under an owner that is inside its critical section.
//
// # What is and is not survivable
//
// Crashes of application processes — including one holding the token,
// even inside its critical section — and of cluster coordinators (with a
// standby taking over, see Build) are survivable. A group whose
// HolderPrefs all crashed freezes: regenerating the intra token at an
// application process would let the cluster enter critical sections
// without the global (inter) token, so the leader announces a frozen
// epoch (Holder == None) and the group stops — safety over liveness.
//
// # Rejoin
//
// A restarted node comes back amnesiac: on the down→up edge the member
// discards all protocol state except the epoch ordinal (modeled as
// stable storage — any strictly greater epoch is accepted, so keeping a
// stale lower bound only tightens the fence against pre-crash traffic)
// and enters the rejoining state. While rejoining it sends heartbeats —
// so peers that still count it as a member rescind their suspicion — and
// Rejoin beacons to the full configured membership, but it is otherwise
// protocol-silent: it answers no probes, leads no rounds, and buffers
// future-epoch algorithm traffic. Peers record the beacon and exclude a
// pending joiner from leadership, census targets and epoch membership
// for one detector Timeout (the join cooldown): the delay guarantees the
// group's normal crash recovery — in particular a cluster's staggered
// intra-before-inter reconstruction of critical-section claims — has run
// its course before the joiner is folded back in. Once the cooldown
// elapses, the leader runs an ordinary probe round and announces an
// epoch whose membership includes the joiner; applying that epoch
// rebuilds the joiner's algorithm instance from the shared configuration
// (the resync — sparse request arrays and parent pointers are
// reconstructed consistently everywhere because every member rebuilds
// from the same membership and holder), fires Config.OnRejoin so the
// composition layer can re-couple the bridge automaton, and ends the
// rejoining state. A joiner is always admitted state-less: amnesia
// cleared its claims, so its zero-valued census answer is truthful.
//
// # Partitions and minority freeze
//
// A network cut makes both sides suspect each other, which breaks the
// accuracy assumption regeneration rests on: if both sides censused and
// regenerated, the token would be doubled. Two quorum rules prevent it.
// First, a leader only announces an epoch when the surviving membership
// is a strict majority of the current epoch's membership; a census that
// ends below quorum freezes the member locally instead (minority
// freeze). Second, any member that can no longer hear a strict majority
// of its epoch's membership freezes without waiting to lead. A
// minority-frozen member discards its instance (stopping local grants —
// new owner requests are recorded in owner state, a queue bounded by one
// request per member), forfeits a critical-section claim through
// Config.OnMinority so the composition bridge can park, and beacons
// Rejoin like a restarted node. On heal the majority leader re-admits
// the strays through the join path; the resync epoch re-issues recorded
// requests, so the frozen queue drains in membership order, and
// pre-partition algorithm traffic is fenced off by its dead epoch.
// Liveness requires a majority side: a cut that leaves no strict
// majority freezes both sides until it heals (then the sides thaw by
// re-hearing each other and rebuild through a join round) — safety over
// liveness, exactly like the frozen-epoch rule.
//
// The failure detector is timeout-based, so safety of regeneration rests
// on the usual accuracy assumption: a live, reachable member is never
// suspected. Under the simulator latencies are bounded, so any Timeout
// exceeding the heartbeat period plus the maximum one-way delay makes the
// detector accurate in the absence of real crashes and partitions.
package recovery

import (
	"fmt"
	"sort"
	"time"

	"gridmutex/internal/des"
	"gridmutex/internal/mutex"
)

// Clock is the virtual time source and timer a Member runs on. The DES
// simulator implements it.
type Clock interface {
	Now() des.Time
	After(d time.Duration, f func())
}

// Epoch identifies one membership-and-token generation of a group. Epochs
// are totally ordered by (Seq, Leader); a member accepts any strictly
// greater epoch, so two concurrent leaders (possible only under detector
// inaccuracy) converge to the maximum.
type Epoch struct {
	// Seq increments on every announcement.
	Seq uint32
	// Leader is the member that announced the epoch (None for the initial
	// epoch, which is never announced).
	Leader mutex.ID
}

// Less reports whether e precedes o in epoch order.
func (e Epoch) Less(o Epoch) bool {
	if e.Seq != o.Seq {
		return e.Seq < o.Seq
	}
	return e.Leader < o.Leader
}

// String renders the epoch compactly.
func (e Epoch) String() string { return fmt.Sprintf("e%d@%d", e.Seq, e.Leader) }

// Heartbeat is the periodic aliveness beacon.
type Heartbeat struct{}

// Kind implements mutex.Message.
func (Heartbeat) Kind() string { return "rec.hb" }

// Size implements mutex.Message: a one-byte tag.
func (Heartbeat) Size() int { return 1 }

// Rejoin is the re-admission beacon: sent by an amnesiac restarted
// member, a minority-frozen member, and any member left without an
// algorithm instance (excluded by a false suspicion, or thawed from an
// even-split freeze), until an epoch folds the sender back in.
type Rejoin struct{}

// Kind implements mutex.Message.
func (Rejoin) Kind() string { return "rec.join" }

// Size implements mutex.Message: a one-byte tag.
func (Rejoin) Size() int { return 1 }

// Probe asks a member for its token census answer during round Round.
type Probe struct {
	Round uint32
	E     Epoch
}

// Kind implements mutex.Message.
func (Probe) Kind() string { return "rec.probe" }

// Size implements mutex.Message: tag + round + epoch.
func (Probe) Size() int { return 1 + 4 + 8 }

// ProbeAck answers a Probe: does the member hold the token, and is its
// owner inside the critical section (or claiming it, see Member.AdoptCS)?
type ProbeAck struct {
	Round uint32
	Holds bool
	InCS  bool
}

// Kind implements mutex.Message.
func (ProbeAck) Kind() string { return "rec.ack" }

// Size implements mutex.Message: tag + round + two flags.
func (ProbeAck) Size() int { return 1 + 4 + 2 }

// NewEpoch announces an epoch: the surviving membership and the token
// position. Holder == None announces a frozen epoch (see package doc).
type NewEpoch struct {
	E       Epoch
	Members []mutex.ID
	Holder  mutex.ID
}

// Kind implements mutex.Message.
func (NewEpoch) Kind() string { return "rec.epoch" }

// Size implements mutex.Message: tag + epoch + holder + member list.
func (m NewEpoch) Size() int { return 1 + 8 + 4 + 4*len(m.Members) }

// Wrapped carries an algorithm message tagged with its epoch. It is
// transparent for tracing and counters (inner kind, inner size plus tag).
type Wrapped struct {
	E     Epoch
	Inner mutex.Message
}

// Kind implements mutex.Message.
func (w Wrapped) Kind() string { return w.Inner.Kind() }

// Size implements mutex.Message.
func (w Wrapped) Size() int { return w.Inner.Size() + 8 }

// Options tune the failure detector.
type Options struct {
	// Period is the heartbeat interval. Default 50ms.
	Period time.Duration
	// Timeout is the silence after which a peer is suspected. It must
	// exceed Period plus the maximum one-way delay, or live members are
	// falsely suspected. Default 4×Period.
	Timeout time.Duration
	// ProbeTimeout bounds one probe round; unanswered members are
	// suspected and the round retried without them. Rounds normally finish
	// early, on the last ack. Default Timeout.
	ProbeTimeout time.Duration
}

func (o Options) withDefaults() Options {
	if o.Period <= 0 {
		o.Period = 50 * time.Millisecond
	}
	if o.Timeout <= 0 {
		o.Timeout = 4 * o.Period
	}
	if o.ProbeTimeout <= 0 {
		o.ProbeTimeout = o.Timeout
	}
	return o
}

// Config wires one Member.
type Config struct {
	// Group names the group, for observers and tracing.
	Group string
	// Self, Members, Holder describe the initial epoch exactly like a
	// mutex.Config.
	Self    mutex.ID
	Members []mutex.ID
	Holder  mutex.ID
	// Factory builds the underlying algorithm instance, once per epoch.
	Factory mutex.Factory
	// Env is the group's network endpoint (for a composed process, the
	// per-level env of its core.Process).
	Env mutex.Env
	// Clock drives heartbeats and timeouts.
	Clock Clock
	// Callbacks are the owner's callbacks; SetCallbacks can replace them
	// later (standby takeover).
	Callbacks mutex.Callbacks
	// HolderPrefs, when non-empty, restricts token regeneration to these
	// members in preference order; if none survives, the group freezes.
	// Empty means "lowest-id live member" — safe only when any member may
	// hold the token idle (true for the inter group, false for intra
	// groups, whose token must stay with a coordinator when no
	// application holds it).
	HolderPrefs []mutex.ID
	// CrashedSelf, when non-nil, reports whether this member's own node is
	// currently crashed — the oracle that keeps a dead node's virtual
	// timers from doing protocol work (simnet already suppresses its
	// messages). Typically a closure over simnet's ProcessDown.
	CrashedSelf func() bool
	// OnEpoch, when non-nil, fires after this member applies an epoch —
	// before buffered future-epoch messages are flushed, so a standby
	// taking over installs its callbacks ahead of any queued request.
	OnEpoch func(e Epoch, members []mutex.ID, holder mutex.ID)
	// OnRejoin, when non-nil, fires when this member is re-admitted after
	// a restart: the admitting epoch has been applied and the fresh
	// instance built, but neither OnEpoch nor the future-message flush
	// has run yet. The composition layer uses it to re-couple the bridge
	// (a restarted primary rebuilds its coordinator, or rejoins passively
	// when its standby already took over).
	OnRejoin func(e Epoch, members []mutex.ID, holder mutex.ID)
	// OnMinority, when non-nil, marks this member as a composition-bridge
	// endpoint. Entering the minority-frozen state then forfeits an in-CS
	// claim (the majority side will regenerate the token, and two claims
	// must not coexist after the heal) and fires OnMinority(true) so the
	// bridge can park; OnMinority(false) fires on thaw. Leave nil for
	// application-owned members: they keep their claim, which is safe
	// because a group without a majority anywhere never regenerates.
	OnMinority func(entered bool)
	// Opts tunes the failure detector.
	Opts Options
}

// Stats counts recovery activity of one member.
type Stats struct {
	// Epochs is how many announcements this member applied.
	Epochs int64
	// Regenerations is how many epochs this member announced with a
	// regenerated (not census-found) holder.
	Regenerations int64
	// Rounds is how many probe rounds this member led.
	Rounds int64
	// Suspicions is how many peers this member suspected.
	Suspicions int64
	// StaleDropped counts dead-epoch messages dropped.
	StaleDropped int64
	// FencedDropped counts messages fenced during a probe round whose
	// epoch was then superseded.
	FencedDropped int64
	// HeartbeatsSent counts heartbeats emitted.
	HeartbeatsSent int64
	// Restarts counts down→up edges: each makes the member amnesiac and
	// starts a rejoin (see package doc).
	Restarts int64
	// Rejoins counts completed re-admissions after a restart.
	Rejoins int64
	// MinorityFreezes counts entries into the minority-frozen state.
	MinorityFreezes int64
	// Frozen reports whether the member's group froze (no preferred
	// holder survived).
	Frozen bool
	// Minority reports whether the member is currently minority-frozen.
	Minority bool
	// Rejoining reports whether the member is awaiting re-admission
	// after a restart.
	Rejoining bool
}

type ownerState uint8

const (
	ownerIdle ownerState = iota
	ownerRequested
	ownerInCS
)

type bufferedMsg struct {
	from mutex.ID
	msg  Wrapped
}

// joinBid tracks one peer's Rejoin beacons: first starts the join
// cooldown, last detects a joiner that died again mid-join.
type joinBid struct {
	first des.Time
	last  des.Time
}

// Member is one process's endpoint of a crash-tolerant group: a
// mutex.Instance that runs the configured algorithm under the current
// epoch and the failure detector that advances epochs. All entry points
// run on the owner's serial context (DES event handlers).
type Member struct {
	cfg  Config
	opts Options

	epoch  Epoch
	live   []mutex.ID // sorted membership of the current epoch
	holder mutex.ID   // initial holder of the current epoch
	inner  mutex.Instance
	cbs    mutex.Callbacks

	owner            ownerState
	suppressAcquire  bool
	releaseOnAcquire bool

	lastHeard map[mutex.ID]des.Time
	suspects  map[mutex.ID]bool

	probing bool
	round   uint32
	acks    map[mutex.ID]ProbeAck
	targets []mutex.ID

	fenced    bool
	fenceGen  uint64
	fencedBuf []bufferedMsg
	future    []bufferedMsg

	frozen    bool
	started   bool
	stopped   bool
	wasDown   bool
	rejoining bool
	minority  bool

	pendingJoin map[mutex.ID]joinBid

	stats Stats
}

// NewMember builds a member and its initial-epoch algorithm instance.
// Call Start to begin heartbeating.
func NewMember(cfg Config) (*Member, error) {
	if cfg.Factory == nil {
		return nil, fmt.Errorf("recovery: nil factory")
	}
	if cfg.Env == nil {
		return nil, fmt.Errorf("recovery: nil env")
	}
	if cfg.Clock == nil {
		return nil, fmt.Errorf("recovery: nil clock")
	}
	m := &Member{
		cfg:       cfg,
		opts:      cfg.Opts.withDefaults(),
		epoch:     Epoch{Seq: 0, Leader: mutex.None},
		holder:    cfg.Holder,
		cbs:       cfg.Callbacks,
		lastHeard: make(map[mutex.ID]des.Time, len(cfg.Members)),
		suspects:  make(map[mutex.ID]bool),
	}
	m.live = append([]mutex.ID(nil), cfg.Members...)
	sort.Slice(m.live, func(i, j int) bool { return m.live[i] < m.live[j] })
	now := cfg.Clock.Now()
	for _, id := range m.live {
		m.lastHeard[id] = now
	}
	if err := m.buildInner(); err != nil {
		return nil, err
	}
	return m, nil
}

// ID returns the member's participant id.
func (m *Member) ID() mutex.ID { return m.cfg.Self }

// Group returns the configured group name.
func (m *Member) Group() string { return m.cfg.Group }

// Epoch returns the current epoch.
func (m *Member) Epoch() Epoch { return m.epoch }

// Live returns the current epoch's membership (sorted, shared slice —
// callers must not mutate).
func (m *Member) Live() []mutex.ID { return m.live }

// Stats returns a snapshot of recovery activity.
func (m *Member) Stats() Stats {
	s := m.stats
	s.Frozen = m.frozen
	s.Minority = m.minority
	s.Rejoining = m.rejoining
	return s
}

// SetCallbacks replaces the owner callbacks — the hook a standby
// coordinator uses when it takes over a crashed primary's groups.
func (m *Member) SetCallbacks(cbs mutex.Callbacks) { m.cbs = cbs }

// Start begins heartbeating and failure detection.
func (m *Member) Start() {
	if m.started {
		panic(fmt.Sprintf("recovery: member %d of %s started twice", m.cfg.Self, m.cfg.Group))
	}
	m.started = true
	m.cfg.Clock.After(m.opts.Period, m.tick)
}

// Stop halts the detector: the current tick chain ends and no further
// timers are armed, so a driven simulation can drain.
func (m *Member) Stop() { m.stopped = true }

// buildInner constructs the algorithm instance for the current epoch.
// Callbacks and the env are epoch-stamped: a superseded instance's late
// local upcalls are ignored and its late sends dropped by receivers.
func (m *Member) buildInner() error {
	e := m.epoch
	inst, err := m.cfg.Factory(mutex.Config{
		Self:    m.cfg.Self,
		Members: m.live,
		Holder:  m.holder,
		Env:     &epochEnv{m: m, e: e},
		Callbacks: mutex.Callbacks{
			OnAcquire: func() {
				if m.epoch == e {
					m.onInnerAcquire()
				}
			},
			OnPending: func() {
				if m.epoch == e && m.cbs.OnPending != nil {
					m.cbs.OnPending()
				}
			},
		},
	})
	if err != nil {
		return fmt.Errorf("recovery: %s instance for %d in %v: %w", m.cfg.Group, m.cfg.Self, e, err)
	}
	m.inner = inst
	return nil
}

// epochEnv tags every send of one epoch's instance with that epoch, so
// receivers can tell live traffic from a dead instance's stragglers.
type epochEnv struct {
	m *Member
	e Epoch
}

func (e *epochEnv) Send(to mutex.ID, msg mutex.Message) {
	e.m.cfg.Env.Send(to, Wrapped{E: e.e, Inner: msg})
}

func (e *epochEnv) Local(f func()) { e.m.cfg.Env.Local(f) }

func (m *Member) onInnerAcquire() {
	if m.releaseOnAcquire {
		// The owner released while an epoch rebuild's re-acquire was in
		// flight: drop the critical section the moment it lands.
		m.releaseOnAcquire = false
		m.suppressAcquire = false
		m.inner.Release()
		return
	}
	if m.suppressAcquire {
		// The re-acquire of an epoch rebuild (or an AdoptCS claim): the
		// owner is already in its critical section.
		m.suppressAcquire = false
		return
	}
	if m.owner != ownerRequested {
		panic(fmt.Sprintf("recovery: member %d of %s granted with owner state %d", m.cfg.Self, m.cfg.Group, m.owner))
	}
	m.owner = ownerInCS
	if m.cbs.OnAcquire != nil {
		m.cbs.OnAcquire()
	}
}

// Request implements mutex.Instance.
func (m *Member) Request() {
	if m.owner != ownerIdle {
		panic(fmt.Sprintf("recovery: member %d of %s requested in owner state %d", m.cfg.Self, m.cfg.Group, m.owner))
	}
	m.owner = ownerRequested
	if m.inner != nil {
		m.inner.Request()
	}
	// With no instance (excluded or frozen) the request is recorded in the
	// owner state; a future epoch re-issues it.
}

// Release implements mutex.Instance.
func (m *Member) Release() {
	if m.owner != ownerInCS {
		panic(fmt.Sprintf("recovery: member %d of %s released in owner state %d", m.cfg.Self, m.cfg.Group, m.owner))
	}
	m.owner = ownerIdle
	if m.inner == nil {
		return
	}
	if m.inner.State() == mutex.InCS {
		m.inner.Release()
		return
	}
	// An epoch rebuild's re-acquire (or an AdoptCS claim) has not landed
	// yet; release it on arrival.
	m.releaseOnAcquire = true
}

// AdoptCS transfers a crashed peer's critical-section claim to this
// member without a grant: the owner state becomes in-CS, so the next
// probe census regenerates the token here and the suppressed re-acquire
// seats it. A standby coordinator uses this to inherit its dead primary's
// inter-token possession while the cluster's intra token is still out
// serving an application.
func (m *Member) AdoptCS() {
	if m.owner != ownerIdle {
		panic(fmt.Sprintf("recovery: member %d of %s adopted CS in owner state %d", m.cfg.Self, m.cfg.Group, m.owner))
	}
	m.owner = ownerInCS
	if m.inner != nil && m.inner.State() == mutex.NoReq {
		m.suppressAcquire = true
		m.inner.Request()
	}
}

// HasPending implements mutex.Instance.
func (m *Member) HasPending() bool { return m.inner != nil && m.inner.HasPending() }

// HoldsToken implements mutex.Instance.
func (m *Member) HoldsToken() bool { return m.inner != nil && m.inner.HoldsToken() }

// State implements mutex.Instance, derived from the owner state (which
// survives epoch rebuilds, unlike the instance's own state).
func (m *Member) State() mutex.State {
	switch m.owner {
	case ownerRequested:
		return mutex.Req
	case ownerInCS:
		return mutex.InCS
	default:
		return mutex.NoReq
	}
}

// down reports whether this member's own node is crashed.
func (m *Member) down() bool { return m.cfg.CrashedSelf != nil && m.cfg.CrashedSelf() }

// tick is the heartbeat-period heartbeat/suspect/lead step.
func (m *Member) tick() {
	if m.stopped {
		return
	}
	if m.down() {
		m.wasDown = true
		m.cfg.Clock.After(m.opts.Period, m.tick)
		return
	}
	if m.wasDown {
		// The node restarted: it comes back amnesiac and earns its way
		// back in through the rejoin path (see package doc).
		m.wasDown = false
		m.amnesia()
	}
	for _, id := range m.live {
		if id == m.cfg.Self {
			continue
		}
		m.cfg.Env.Send(id, Heartbeat{})
		m.stats.HeartbeatsSent++
	}
	if !m.frozen && !m.rejoining {
		now := m.cfg.Clock.Now()
		for _, id := range m.live {
			if id == m.cfg.Self || m.suspects[id] {
				continue
			}
			if time.Duration(now-m.lastHeard[id]) > m.opts.Timeout {
				m.suspects[id] = true
				m.stats.Suspicions++
			}
		}
	}
	if m.rejoining || m.minority || (m.inner == nil && !m.frozen) {
		// Beacon for (re-)admission: an amnesiac rejoiner, a
		// minority-frozen member, and any member left without an
		// instance (false-suspicion exclusion, even-split thaw) all
		// need an epoch to fold them back in.
		for _, id := range m.cfg.Members {
			if id != m.cfg.Self {
				m.cfg.Env.Send(id, Rejoin{})
			}
		}
	}
	switch {
	case m.rejoining:
		// Protocol-silent until an epoch admits us.
	case m.minority:
		// Re-check the quorum: after an even split — both sides frozen,
		// no epoch ever announced — the heal lets the sides re-hear
		// each other (heartbeats rescind suspicion), and the group is
		// rebuilt through the beacon path above.
		if 2*m.reachable() > len(m.live) {
			m.exitMinority()
		}
	case m.frozen:
		// A frozen group revives only when a preferred holder rejoins.
		if !m.probing && m.isLeader() && m.anyJoinReady() {
			m.startRound()
		}
	case 2*m.reachable() <= len(m.live):
		// This member can no longer hear a strict majority of its
		// epoch's membership: it may sit on the losing side of a
		// partition whose majority is about to regenerate. Freeze now —
		// the cut costs one detector Timeout to notice, while the
		// majority's census needs Timeout plus a probe round, so the
		// freeze always lands first.
		m.enterMinority()
	default:
		if !m.probing && m.isLeader() && (m.anySuspectLive() || m.anyJoinReady()) {
			m.startRound()
		}
	}
	m.cfg.Clock.After(m.opts.Period, m.tick)
}

// amnesia resets the member on the down→up edge: every piece of protocol
// state is discarded except the epoch ordinal (modeled as stable storage
// — a stale lower bound only tightens the fence against pre-crash
// traffic) and the owner callbacks (the restarted process re-registers
// the same handlers; the composition layer swaps them via OnRejoin).
func (m *Member) amnesia() {
	m.rejoining = true
	m.stats.Restarts++
	m.minority = false
	m.frozen = false
	m.inner = nil
	m.owner = ownerIdle
	m.suppressAcquire = false
	m.releaseOnAcquire = false
	m.probing = false
	m.fenced = false
	m.fencedBuf = nil
	m.future = nil
	m.acks = nil
	m.targets = m.targets[:0]
	m.pendingJoin = nil
	m.suspects = make(map[mutex.ID]bool)
	m.live = append([]mutex.ID(nil), m.cfg.Members...)
	sort.Slice(m.live, func(i, j int) bool { return m.live[i] < m.live[j] })
	now := m.cfg.Clock.Now()
	for _, id := range m.live {
		m.lastHeard[id] = now
	}
}

// reachable counts the current-epoch members this member can still hear,
// itself included.
func (m *Member) reachable() int {
	n := 0
	for _, id := range m.live {
		if id == m.cfg.Self || !m.suspects[id] {
			n++
		}
	}
	return n
}

// enterMinority freezes a member that may sit on the losing side of a
// partition (or that censused a sub-majority survivor set): safety over
// liveness — see the package doc.
func (m *Member) enterMinority() {
	if m.minority {
		return
	}
	m.minority = true
	m.stats.MinorityFreezes++
	m.probing = false
	// The instance dies: no grant may be issued from a side the majority
	// may have censused out. Owner requests stay recorded in owner state
	// — the bounded frozen queue — and the resync epoch re-issues them.
	m.inner = nil
	m.stats.FencedDropped += int64(len(m.fencedBuf))
	m.fencedBuf = nil
	m.fenced = false
	if m.cfg.OnMinority != nil {
		// A composition bridge forfeits its critical-section claim: the
		// majority regenerates, and two claims must not meet at heal.
		if m.owner == ownerInCS {
			m.owner = ownerIdle
		}
		m.cfg.OnMinority(true)
	}
}

// exitMinority thaws a minority-frozen member; the instance is rebuilt
// by the resync epoch (the beacon path requests one).
func (m *Member) exitMinority() {
	m.minority = false
	if m.cfg.OnMinority != nil {
		m.cfg.OnMinority(false)
	}
}

// joinFresh reports whether a pending joiner is still beaconing.
func (m *Member) joinFresh(b joinBid) bool {
	return time.Duration(m.cfg.Clock.Now()-b.last) <= m.opts.Timeout
}

// joinReady reports whether a pending joiner's cooldown has elapsed: one
// detector Timeout of beaconing, so the group's normal crash recovery —
// in particular the staggered intra-before-inter reconstruction of
// critical-section claims — finishes before the joiner is folded in.
func (m *Member) joinReady(b joinBid) bool {
	return time.Duration(m.cfg.Clock.Now()-b.first) >= m.opts.Timeout
}

func (m *Member) anyJoinReady() bool {
	//lint:allow desdeterminism order-independent: a pure OR over the entries, no state or sends
	for _, b := range m.pendingJoin {
		if m.joinFresh(b) && m.joinReady(b) {
			return true
		}
	}
	return false
}

// isLeader reports whether this member runs probe rounds and announces
// epochs: the lowest-id unsuspected live member, skipping pending
// joiners (an amnesiac is protocol-silent, so it can neither lead nor be
// allowed to block leadership). If every candidate is a pending joiner —
// an even-split thaw, where the whole group beacons for a resync — the
// skip is waived so someone can lead the rebuild.
func (m *Member) isLeader() bool {
	fallback := mutex.None
	for _, id := range m.live {
		if m.suspects[id] {
			continue
		}
		if fallback == mutex.None {
			fallback = id
		}
		if b, ok := m.pendingJoin[id]; ok && m.joinFresh(b) {
			continue
		}
		return id == m.cfg.Self
	}
	return fallback == m.cfg.Self
}

func (m *Member) anySuspectLive() bool {
	for _, id := range m.live {
		if m.suspects[id] {
			return true
		}
	}
	return false
}

// heard records aliveness evidence from a peer.
func (m *Member) heard(from mutex.ID) {
	if _, known := m.lastHeard[from]; !known {
		// Not part of the current membership: heartbeats alone don't
		// re-admit — the Rejoin beacon path does.
		if !containsID(m.live, from) {
			return
		}
	}
	m.lastHeard[from] = m.cfg.Clock.Now()
	if m.suspects[from] && !m.probing {
		// A false suspicion cleared before any round acted on it.
		delete(m.suspects, from)
	}
}

// fence starts (or re-arms) the probe fence: current-epoch algorithm
// messages are buffered so a token in flight cannot slip past the census.
// If no announcement ends the fence — the round was aborted or its leader
// died — the buffer is flushed after a conservative deadline, preserving
// the token.
func (m *Member) fence() {
	m.fenced = true
	m.fenceGen++
	gen := m.fenceGen
	m.cfg.Clock.After(m.opts.ProbeTimeout+m.opts.Timeout, func() {
		if m.stopped || !m.fenced || gen != m.fenceGen {
			return
		}
		m.fenced = false
		buf := m.fencedBuf
		m.fencedBuf = nil
		for _, b := range buf {
			if b.msg.E == m.epoch && m.inner != nil {
				m.inner.Deliver(b.from, b.msg.Inner)
			} else {
				m.stats.FencedDropped++
			}
		}
	})
}

// startRound begins a probe round: census every unsuspected live peer.
func (m *Member) startRound() {
	m.probing = true
	m.round++
	m.stats.Rounds++
	m.fence()
	m.acks = map[mutex.ID]ProbeAck{
		m.cfg.Self: {Round: m.round, Holds: m.HoldsToken(), InCS: m.owner == ownerInCS},
	}
	m.targets = m.targets[:0]
	for _, id := range m.live {
		if id == m.cfg.Self || m.suspects[id] {
			continue
		}
		if b, ok := m.pendingJoin[id]; ok && m.joinFresh(b) {
			// A pending joiner answers no probes, and its state-less
			// census answer is implied — skip it so the round need not
			// time out on it.
			continue
		}
		m.targets = append(m.targets, id)
	}
	if len(m.targets) == 0 {
		m.finishRound()
		return
	}
	for _, id := range m.targets {
		m.cfg.Env.Send(id, Probe{Round: m.round, E: m.epoch})
	}
	round := m.round
	m.cfg.Clock.After(m.opts.ProbeTimeout, func() { m.roundTimeout(round) })
}

func (m *Member) roundTimeout(round uint32) {
	if m.stopped || m.down() || !m.probing || round != m.round {
		return
	}
	// Unanswered members are suspected; retry with the smaller target set
	// (the round count is bounded by the membership size).
	missing := false
	for _, id := range m.targets {
		if _, ok := m.acks[id]; !ok {
			if !m.suspects[id] {
				m.suspects[id] = true
				m.stats.Suspicions++
			}
			missing = true
		}
	}
	m.probing = false
	if !m.isLeader() {
		// Leadership moved (a lower id came back): abandon the round and
		// let the fence deadline flush the buffer.
		return
	}
	if missing {
		m.startRound()
		return
	}
	m.probing = true
	m.finishRound()
}

func (m *Member) allAcked() bool {
	for _, id := range m.targets {
		if _, ok := m.acks[id]; !ok {
			return false
		}
	}
	return true
}

// finishRound turns the census into an epoch announcement.
func (m *Member) finishRound() {
	m.probing = false
	var newLive []mutex.ID
	for _, id := range m.live {
		if m.suspects[id] {
			continue
		}
		if b, ok := m.pendingJoin[id]; ok && m.joinFresh(b) && !m.joinReady(b) {
			// Mid-cooldown joiner: keep it out of this epoch; the join
			// round after its cooldown admits it.
			continue
		}
		newLive = append(newLive, id)
	}
	// Fold in the joiners whose cooldown elapsed. A joiner is always
	// admitted state-less — amnesia (or the minority forfeit) cleared its
	// claims — so skipping its census answer is sound. Iterate sorted for
	// determinism; prune entries whose beacons lapsed (died again).
	joiners := make([]mutex.ID, 0, len(m.pendingJoin))
	for id := range m.pendingJoin {
		joiners = append(joiners, id)
	}
	sort.Slice(joiners, func(i, j int) bool { return joiners[i] < joiners[j] })
	for _, id := range joiners {
		b := m.pendingJoin[id]
		if !m.joinFresh(b) {
			delete(m.pendingJoin, id)
			continue
		}
		if !m.joinReady(b) {
			continue
		}
		if !containsID(newLive, id) {
			newLive = append(newLive, id)
		}
		delete(m.pendingJoin, id)
	}
	sort.Slice(newLive, func(i, j int) bool { return newLive[i] < newLive[j] })
	// Quorum gate: announcing an epoch from a sub-majority survivor set
	// would double the token if the other side of a partition does the
	// same — freeze locally instead and wait for the heal.
	if 2*len(newLive) <= len(m.live) {
		m.enterMinority()
		return
	}
	// With holder preferences configured, every preferred member dead
	// means the group can no longer be coordinated (for an intra group:
	// both the primary and the standby are gone) — freeze it even if an
	// application still holds the token, or the applications would keep
	// circulating the intra token with nothing coupling them to the inter
	// level.
	if len(m.cfg.HolderPrefs) > 0 {
		prefAlive := false
		for _, p := range m.cfg.HolderPrefs {
			if containsID(newLive, p) {
				prefAlive = true
				break
			}
		}
		if !prefAlive {
			m.announce(NewEpoch{
				E:       Epoch{Seq: m.epoch.Seq + 1, Leader: m.cfg.Self},
				Members: newLive,
				Holder:  mutex.None,
			})
			return
		}
	}
	// Token position: a member inside (or claiming) the critical section
	// wins, then an idle holder. Census answers exist for every survivor —
	// unanswered members were suspected out by roundTimeout.
	holder := mutex.None
	for _, id := range newLive {
		if m.acks[id].InCS {
			holder = id
			break
		}
	}
	if holder == mutex.None {
		for _, id := range newLive {
			if m.acks[id].Holds {
				holder = id
				break
			}
		}
	}
	if holder == mutex.None {
		// The token died with a crashed node: regenerate deterministically.
		if len(m.cfg.HolderPrefs) > 0 {
			for _, p := range m.cfg.HolderPrefs {
				if containsID(newLive, p) {
					holder = p
					break
				}
			}
		} else if len(newLive) > 0 {
			holder = newLive[0]
		}
		if holder != mutex.None {
			m.stats.Regenerations++
		}
	}
	m.announce(NewEpoch{
		E:       Epoch{Seq: m.epoch.Seq + 1, Leader: m.cfg.Self},
		Members: newLive,
		Holder:  holder,
	})
}

// announce sends an epoch to every survivor and applies it locally.
func (m *Member) announce(ne NewEpoch) {
	for _, id := range ne.Members {
		if id != m.cfg.Self {
			m.cfg.Env.Send(id, ne)
		}
	}
	m.applyNewEpoch(ne)
}

// applyNewEpoch installs a strictly greater epoch: new membership, a fresh
// algorithm instance, owner-state reconciliation, buffered-message flush.
func (m *Member) applyNewEpoch(ne NewEpoch) {
	if !m.epoch.Less(ne.E) {
		m.stats.StaleDropped++
		return
	}
	m.epoch = ne.E
	m.stats.Epochs++
	m.live = append([]mutex.ID(nil), ne.Members...)
	m.holder = ne.Holder
	m.suspects = make(map[mutex.ID]bool)
	m.probing = false
	m.suppressAcquire = false
	m.releaseOnAcquire = false
	// The fence dies with its epoch: everything it buffered is stale.
	m.stats.FencedDropped += int64(len(m.fencedBuf))
	m.fencedBuf = nil
	m.fenced = false
	now := m.cfg.Clock.Now()
	for _, id := range m.live {
		m.lastHeard[id] = now
	}
	// An admitted joiner is folded back in by this epoch.
	for _, id := range m.live {
		delete(m.pendingJoin, id)
	}
	m.frozen = ne.Holder == mutex.None
	switch {
	case m.frozen:
		m.inner = nil
	case !containsID(m.live, m.cfg.Self):
		// Excluded (a false suspicion): no instance; this member's owner
		// requests stay recorded but cannot be served until the beacon
		// path re-admits it.
		m.inner = nil
	default:
		if err := m.buildInner(); err != nil {
			// The factory accepted the initial shape; a strictly smaller
			// membership failing is a bug, not a runtime condition.
			panic(err)
		}
		switch m.owner {
		case ownerInCS:
			// The owner is inside its critical section: re-seat the token
			// under it, suppressing the duplicate grant.
			m.suppressAcquire = true
			m.inner.Request()
		case ownerRequested:
			m.inner.Request()
		}
	}
	if containsID(m.live, m.cfg.Self) {
		if m.minority {
			m.exitMinority()
		}
		if m.rejoining {
			// Re-admitted: the resync is this very epoch (every member
			// rebuilt its instance from the same membership and holder).
			m.rejoining = false
			m.stats.Rejoins++
			if m.cfg.OnRejoin != nil {
				m.cfg.OnRejoin(ne.E, append([]mutex.ID(nil), m.live...), m.holder)
			}
		}
	}
	// Owner hook before the flush: a standby taking over installs its
	// callbacks (and possibly an AdoptCS claim) ahead of queued traffic.
	if m.cfg.OnEpoch != nil {
		m.cfg.OnEpoch(ne.E, append([]mutex.ID(nil), m.live...), m.holder)
	}
	buf := m.future
	m.future = nil
	for _, b := range buf {
		switch {
		case b.msg.E == m.epoch:
			if m.inner != nil {
				m.inner.Deliver(b.from, b.msg.Inner)
			} else {
				m.stats.StaleDropped++
			}
		case m.epoch.Less(b.msg.E):
			m.future = append(m.future, b)
		default:
			m.stats.StaleDropped++
		}
	}
}

// Deliver implements mutex.Instance (and the handler contract): control
// messages drive the detector, Wrapped messages reach the current epoch's
// instance (or are buffered/dropped by epoch).
func (m *Member) Deliver(from mutex.ID, msg mutex.Message) {
	if m.stopped || m.down() {
		return
	}
	switch t := msg.(type) {
	case Heartbeat:
		m.heard(from)
	case Rejoin:
		m.heard(from)
		if m.rejoining || m.minority {
			// This member needs re-admission itself; it can't grant any.
			return
		}
		now := m.cfg.Clock.Now()
		b, ok := m.pendingJoin[from]
		if !ok || !m.joinFresh(b) {
			// First beacon (or beacons lapsed — the joiner died again):
			// the cooldown starts here.
			b.first = now
		}
		b.last = now
		if m.pendingJoin == nil {
			m.pendingJoin = make(map[mutex.ID]joinBid)
		}
		m.pendingJoin[from] = b
	case Probe:
		m.heard(from)
		if m.rejoining || m.minority {
			// Protocol-silent: an amnesiac (or forfeited) answer would
			// be meaningless; rounds exclude this member from their
			// targets anyway.
			return
		}
		if t.E.Less(m.epoch) {
			m.stats.StaleDropped++
			return
		}
		// Census: fence the epoch and answer.
		m.fence()
		m.cfg.Env.Send(from, ProbeAck{Round: t.Round, Holds: m.HoldsToken(), InCS: m.owner == ownerInCS})
	case ProbeAck:
		m.heard(from)
		if !m.probing || t.Round != m.round {
			return
		}
		m.acks[from] = t
		if m.allAcked() {
			m.finishRound()
		}
	case NewEpoch:
		m.heard(from)
		m.applyNewEpoch(t)
	case Wrapped:
		m.heard(from)
		switch {
		case t.E == m.epoch:
			if m.fenced {
				m.fencedBuf = append(m.fencedBuf, bufferedMsg{from: from, msg: t})
				return
			}
			if m.inner == nil {
				m.stats.StaleDropped++
				return
			}
			m.inner.Deliver(from, t.Inner)
		case m.epoch.Less(t.E):
			m.future = append(m.future, bufferedMsg{from: from, msg: t})
		default:
			m.stats.StaleDropped++
		}
	default:
		panic(fmt.Sprintf("recovery: member %d of %s received %T", m.cfg.Self, m.cfg.Group, msg))
	}
}

func containsID(ids []mutex.ID, id mutex.ID) bool {
	for _, x := range ids {
		if x == id {
			return true
		}
	}
	return false
}
