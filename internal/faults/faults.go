// Package faults generates and injects deterministic node-fault
// schedules for the simulated grid: which physical nodes crash (and
// possibly restart) at which virtual instants. A schedule is plain data —
// generated once from a seed, byte-identical for equal seeds — and is
// injected by scheduling ordinary virtual-time events on the simulator,
// so a faulty run is exactly as reproducible as a fault-free one.
//
// Two generator shapes cover the experiments:
//
//   - Windows: n distinct victim nodes crash at uniform instants within a
//     horizon and stay down for a uniform duration (or forever).
//   - OnCSEntry: a trigger fired by the workload when a chosen victim
//     enters its k-th critical section — the instant is not known a
//     priori, so it is expressed as a predicate rather than a timestamp.
//     Crashing a node the moment it enters the CS is the worst case for
//     token algorithms: the token dies with it.
//
// Targeting coordinators is a victim-list choice, not a separate
// mechanism: pass the coordinator node indices as the candidate set.
package faults

import (
	"fmt"
	"math/rand"
	"sort"
	"strings"
	"time"

	"gridmutex/internal/des"
)

// Kind distinguishes fault events.
type Kind uint8

const (
	// Crash fail-stops a node: messages to and from it are discarded.
	Crash Kind = iota
	// Restart revives a node's connectivity; protocol state is whatever
	// the recovery layer rebuilds.
	Restart
	// PartitionStart cuts the network into two sides: Event.Nodes versus
	// the rest. Links crossing the cut discard at delivery time.
	PartitionStart
	// PartitionEnd heals the active cut.
	PartitionEnd
)

// String names the kind.
func (k Kind) String() string {
	switch k {
	case Crash:
		return "crash"
	case Restart:
		return "restart"
	case PartitionStart:
		return "partition"
	case PartitionEnd:
		return "heal"
	default:
		return fmt.Sprintf("Kind(%d)", uint8(k))
	}
}

// Event is one scheduled fault.
type Event struct {
	// At is the virtual instant the fault fires.
	At des.Time
	// Node is the physical topology node affected (crash/restart kinds;
	// -1 for partition kinds).
	Node int
	// Kind is Crash, Restart, PartitionStart or PartitionEnd.
	Kind Kind
	// Nodes is the cut-off side of a PartitionStart; nil otherwise.
	Nodes []int
}

// Schedule is a time-ordered fault plan.
type Schedule []Event

// String renders the schedule one event per line — the canonical form the
// determinism tests compare byte for byte.
func (s Schedule) String() string {
	var b strings.Builder
	for _, e := range s {
		switch e.Kind {
		case PartitionStart:
			fmt.Fprintf(&b, "%v nodes=%v at=%v\n", e.Kind, e.Nodes, e.At)
		case PartitionEnd:
			fmt.Fprintf(&b, "%v at=%v\n", e.Kind, e.At)
		default:
			fmt.Fprintf(&b, "%v node=%d at=%v\n", e.Kind, e.Node, e.At)
		}
	}
	return b.String()
}

// sort orders events by (At, Node, Kind) — a total order, since a node
// has at most one event per kind per instant.
func (s Schedule) sort() {
	sort.Slice(s, func(i, j int) bool {
		if s[i].At != s[j].At {
			return s[i].At < s[j].At
		}
		if s[i].Node != s[j].Node {
			return s[i].Node < s[j].Node
		}
		return s[i].Kind < s[j].Kind
	})
}

// Actions are the callbacks a schedule drives when injected. Crash is
// typically a closure over simnet.Network.Crash plus the bookkeeping the
// run needs (marking the workload process dead, telling the check monitor);
// Restart mirrors it. Partition and Heal are needed only when the schedule
// carries partition events.
type Actions struct {
	Crash     func(node int)
	Restart   func(node int)
	Partition func(nodes []int)
	Heal      func()
}

// Apply injects the schedule: every event becomes one virtual-time event
// on the simulator. Call before the run starts; events in the simulator's
// past panic (des rejects them).
func (s Schedule) Apply(sim *des.Simulator, a Actions) {
	if a.Crash == nil || a.Restart == nil {
		panic("faults: nil action")
	}
	for _, e := range s {
		e := e
		switch e.Kind {
		case Crash:
			sim.At(e.At, func() { a.Crash(e.Node) })
		case Restart:
			sim.At(e.At, func() { a.Restart(e.Node) })
		case PartitionStart:
			if a.Partition == nil {
				panic("faults: schedule has partition events but Actions.Partition is nil")
			}
			sim.At(e.At, func() { a.Partition(e.Nodes) })
		case PartitionEnd:
			if a.Heal == nil {
				panic("faults: schedule has partition events but Actions.Heal is nil")
			}
			sim.At(e.At, func() { a.Heal() })
		default:
			panic(fmt.Sprintf("faults: unknown event kind %v", e.Kind))
		}
	}
}

// WindowsConfig parameterizes the Windows generator.
type WindowsConfig struct {
	// Seed makes the schedule deterministic: equal configs with equal
	// seeds render byte-identical schedules.
	Seed int64
	// Nodes is the victim candidate set (e.g. all application nodes, or
	// only coordinator nodes for coordinator-targeted campaigns).
	Nodes []int
	// Crashes is how many distinct victims crash (capped at len(Nodes)).
	Crashes int
	// Horizon bounds the crash instants: each is uniform in (0, Horizon].
	Horizon time.Duration
	// MinDown and MaxDown bound the down-time before the restart, uniform
	// in [MinDown, MaxDown]. MaxDown == 0 means victims never restart.
	MinDown, MaxDown time.Duration
}

// Windows draws a crash-window schedule: Crashes distinct victims from
// Nodes, each crashing once within the horizon and restarting after its
// down-time (if configured). The result is sorted and byte-identical per
// (config, seed).
func Windows(cfg WindowsConfig) Schedule {
	if cfg.Horizon <= 0 {
		panic("faults: non-positive horizon")
	}
	if cfg.MaxDown < cfg.MinDown {
		panic("faults: MaxDown before MinDown")
	}
	k := cfg.Crashes
	if k > len(cfg.Nodes) {
		k = len(cfg.Nodes)
	}
	if k <= 0 {
		return nil
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	// Distinct victims via a seeded permutation of the candidate list:
	// one crash window per node keeps crash/restart pairs well nested.
	perm := rng.Perm(len(cfg.Nodes))
	var s Schedule
	for i := 0; i < k; i++ {
		node := cfg.Nodes[perm[i]]
		at := des.Time(1 + rng.Int63n(int64(cfg.Horizon)))
		s = append(s, Event{At: at, Node: node, Kind: Crash})
		if cfg.MaxDown > 0 {
			down := cfg.MinDown
			if spread := int64(cfg.MaxDown - cfg.MinDown); spread > 0 {
				down += time.Duration(rng.Int63n(spread + 1))
			}
			s = append(s, Event{At: at + down, Node: node, Kind: Restart})
		}
	}
	s.sort()
	return s
}

// CSEntryTrigger is the crash-on-CS-entry fault: the Victim node crashes
// the instant it enters its Entry-th critical section (1-based). The
// workload harness fires it — the entry instant is a property of the run,
// not of the schedule.
type CSEntryTrigger struct {
	Victim int
	Entry  int
}

// String renders the trigger canonically.
func (t CSEntryTrigger) String() string {
	return fmt.Sprintf("crash node=%d on cs-entry #%d\n", t.Victim, t.Entry)
}

// PartitionConfig parameterizes the PartitionWindows generator.
type PartitionConfig struct {
	// Seed makes the schedule deterministic.
	Seed int64
	// Sides is the candidate cut-off node sets — typically one entry per
	// cluster, holding that cluster's node indices. Each window isolates
	// one seeded candidate.
	Sides [][]int
	// Windows is how many partition windows to draw. Windows never
	// overlap: the horizon is divided into equal slots, one window per
	// slot, so at most one cut is active at any instant (matching
	// simnet's single-cut model).
	Windows int
	// Horizon bounds the window instants.
	Horizon time.Duration
	// MinHeal and MaxHeal bound the cut duration, uniform in
	// [MinHeal, MaxHeal]. MaxHeal == 0 means the last window never heals.
	MinHeal, MaxHeal time.Duration
}

// PartitionWindows draws a partition schedule: each window isolates one
// seeded candidate side at a uniform instant within its slot and heals
// after a uniform duration (clamped to the slot, so cuts never overlap).
// The result is sorted and byte-identical per (config, seed).
func PartitionWindows(cfg PartitionConfig) Schedule {
	if cfg.Horizon <= 0 {
		panic("faults: non-positive horizon")
	}
	if cfg.MaxHeal < cfg.MinHeal {
		panic("faults: MaxHeal before MinHeal")
	}
	if len(cfg.Sides) == 0 || cfg.Windows <= 0 {
		return nil
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	slot := int64(cfg.Horizon) / int64(cfg.Windows)
	if slot <= 1 {
		panic("faults: horizon too short for the requested windows")
	}
	var s Schedule
	for w := 0; w < cfg.Windows; w++ {
		side := cfg.Sides[rng.Intn(len(cfg.Sides))]
		lo := des.Time(int64(w) * slot)
		at := lo + des.Time(1+rng.Int63n(slot-1))
		cut := append([]int(nil), side...)
		sort.Ints(cut)
		s = append(s, Event{At: at, Node: -1, Kind: PartitionStart, Nodes: cut})
		if cfg.MaxHeal > 0 {
			dur := cfg.MinHeal
			if spread := int64(cfg.MaxHeal - cfg.MinHeal); spread > 0 {
				dur += time.Duration(rng.Int63n(spread + 1))
			}
			heal := at + dur
			if limit := lo + des.Time(slot); heal >= limit {
				heal = limit - 1 // stay inside the slot: cuts never overlap
			}
			if heal <= at {
				heal = at + 1
			}
			s = append(s, Event{At: heal, Node: -1, Kind: PartitionEnd})
		}
	}
	s.sort()
	return s
}

// PartitionPulse draws a single fixed-length partition window: one seeded
// side from sides is cut off at a uniform instant in (0, startHorizon]
// and healed exactly duration later — the shape swept by the harness's
// partition experiment, where the cut length is the controlled variable
// and must not be clamped the way PartitionWindows clamps to its slots.
// The result is byte-identical per (arguments, seed).
func PartitionPulse(seed int64, sides [][]int, startHorizon, duration time.Duration) Schedule {
	if startHorizon <= 0 {
		panic("faults: non-positive start horizon")
	}
	if duration <= 0 {
		panic("faults: non-positive pulse duration")
	}
	if len(sides) == 0 {
		return nil
	}
	rng := rand.New(rand.NewSource(seed))
	side := sides[rng.Intn(len(sides))]
	at := des.Time(1 + rng.Int63n(int64(startHorizon)))
	cut := append([]int(nil), side...)
	sort.Ints(cut)
	return Schedule{
		{At: at, Node: -1, Kind: PartitionStart, Nodes: cut},
		{At: at + des.Time(duration), Node: -1, Kind: PartitionEnd},
	}
}

// OnCSEntry draws a crash-on-CS-entry trigger: a uniform victim from the
// candidate set and a uniform entry ordinal in [1, maxEntry].
func OnCSEntry(seed int64, victims []int, maxEntry int) CSEntryTrigger {
	if len(victims) == 0 {
		panic("faults: no victim candidates")
	}
	if maxEntry <= 0 {
		panic("faults: non-positive entry bound")
	}
	rng := rand.New(rand.NewSource(seed))
	return CSEntryTrigger{
		Victim: victims[rng.Intn(len(victims))],
		Entry:  1 + rng.Intn(maxEntry),
	}
}
