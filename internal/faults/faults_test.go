package faults

import (
	"fmt"
	"testing"
	"time"

	"gridmutex/internal/des"
)

func windowsConfig(seed int64) WindowsConfig {
	nodes := make([]int, 16)
	for i := range nodes {
		nodes[i] = i
	}
	return WindowsConfig{
		Seed:    seed,
		Nodes:   nodes,
		Crashes: 3,
		Horizon: time.Second,
		MinDown: 50 * time.Millisecond,
		MaxDown: 200 * time.Millisecond,
	}
}

// TestWindowsDeterministic: the same config and seed must render a
// byte-identical schedule — the property every faulty-run reproduction
// rests on.
func TestWindowsDeterministic(t *testing.T) {
	a := Windows(windowsConfig(7)).String()
	b := Windows(windowsConfig(7)).String()
	if a != b {
		t.Fatalf("same seed produced different schedules:\n%s\nvs\n%s", a, b)
	}
	if a == "" {
		t.Fatal("empty schedule")
	}
	if c := Windows(windowsConfig(8)).String(); c == a {
		t.Fatalf("seeds 7 and 8 produced the same schedule — generator ignores the seed:\n%s", a)
	}
}

// TestWindowsDenseSeedsNoCollision mirrors the harness seed-derivation
// test: a dense sweep of adjacent seeds must yield pairwise distinct
// schedules, or two "independent" fault campaigns would silently share
// their fault pattern.
func TestWindowsDenseSeedsNoCollision(t *testing.T) {
	seen := make(map[string]int64)
	for seed := int64(0); seed < 2000; seed++ {
		s := Windows(windowsConfig(seed)).String()
		if prev, dup := seen[s]; dup {
			t.Fatalf("seeds %d and %d derive the same schedule:\n%s", prev, seed, s)
		}
		seen[s] = seed
	}
}

// TestWindowsShape checks structural invariants: sorted events, distinct
// victims, crash before restart, instants within bounds.
func TestWindowsShape(t *testing.T) {
	s := Windows(windowsConfig(3))
	if len(s) != 6 {
		t.Fatalf("3 crashes with restarts should yield 6 events, got %d:\n%s", len(s), s)
	}
	crashAt := make(map[int]des.Time)
	for i, e := range s {
		if i > 0 && s[i-1].At > e.At {
			t.Fatalf("schedule not time-sorted at %d:\n%s", i, s)
		}
		switch e.Kind {
		case Crash:
			if _, dup := crashAt[e.Node]; dup {
				t.Fatalf("node %d crashes twice:\n%s", e.Node, s)
			}
			if e.At <= 0 || e.At > time.Second {
				t.Fatalf("crash instant %v outside (0, horizon]:\n%s", e.At, s)
			}
			crashAt[e.Node] = e.At
		case Restart:
			at, ok := crashAt[e.Node]
			if !ok {
				t.Fatalf("restart of node %d without crash:\n%s", e.Node, s)
			}
			down := e.At - at
			if down < 50*time.Millisecond || down > 200*time.Millisecond {
				t.Fatalf("down-time %v outside [min, max]:\n%s", down, s)
			}
		}
	}
}

// TestWindowsNoRestart: MaxDown == 0 means victims stay down.
func TestWindowsNoRestart(t *testing.T) {
	cfg := windowsConfig(1)
	cfg.MinDown, cfg.MaxDown = 0, 0
	s := Windows(cfg)
	if len(s) != 3 {
		t.Fatalf("want 3 crash-only events, got %d:\n%s", len(s), s)
	}
	for _, e := range s {
		if e.Kind != Crash {
			t.Fatalf("unexpected %v in no-restart schedule:\n%s", e.Kind, s)
		}
	}
}

// TestApply injects a schedule into a simulator and checks the actions
// fire at exactly the scheduled virtual instants, in schedule order.
func TestApply(t *testing.T) {
	s := Schedule{
		{At: 10 * time.Millisecond, Node: 2, Kind: Crash},
		{At: 30 * time.Millisecond, Node: 2, Kind: Restart},
		{At: 30 * time.Millisecond, Node: 5, Kind: Crash},
	}
	sim := des.New()
	var got []string
	s.Apply(sim, Actions{
		Crash:   func(node int) { got = append(got, fmt.Sprintf("crash %d @%v", node, sim.Now())) },
		Restart: func(node int) { got = append(got, fmt.Sprintf("restart %d @%v", node, sim.Now())) },
	})
	sim.Run()
	want := []string{"crash 2 @10ms", "restart 2 @30ms", "crash 5 @30ms"}
	if fmt.Sprint(got) != fmt.Sprint(want) {
		t.Fatalf("actions fired %v, want %v", got, want)
	}
}

// TestOnCSEntryDeterministic: the trigger is a pure function of its seed.
func TestOnCSEntryDeterministic(t *testing.T) {
	victims := []int{3, 5, 7, 9}
	a := OnCSEntry(11, victims, 5)
	if b := OnCSEntry(11, victims, 5); a != b {
		t.Fatalf("same seed drew different triggers: %v vs %v", a, b)
	}
	if a.Entry < 1 || a.Entry > 5 {
		t.Fatalf("entry ordinal %d outside [1, 5]", a.Entry)
	}
	found := false
	for _, v := range victims {
		if v == a.Victim {
			found = true
		}
	}
	if !found {
		t.Fatalf("victim %d not in candidate set %v", a.Victim, victims)
	}
	distinct := false
	for seed := int64(0); seed < 64 && !distinct; seed++ {
		if OnCSEntry(seed, victims, 5) != a {
			distinct = true
		}
	}
	if !distinct {
		t.Fatal("trigger ignores the seed")
	}
}
