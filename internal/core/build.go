package core

import (
	"fmt"

	"gridmutex/internal/algorithms"
	"gridmutex/internal/mutex"
	"gridmutex/internal/topology"
)

// Spec names the algorithms of a two-level composition, using the paper's
// "Intra-Inter" notation: Spec{"naimi", "martin"} is Naimi-Martin.
type Spec struct {
	Intra string
	Inter string
}

// String renders the paper's composition notation.
func (s Spec) String() string { return s.Intra + "-" + s.Inter }

// App is an application process endpoint: the workload drives Instance
// through Request/Release and receives OnAcquire through the callbacks it
// supplied at build time.
type App struct {
	// ID is the process (and topology node) identifier.
	ID mutex.ID
	// Cluster is the topology cluster the process lives in.
	Cluster int
	// Instance is the process's intra algorithm endpoint.
	Instance mutex.Instance
}

// Deployment is a wired grid: processes registered on the network,
// coordinators started, applications ready to issue requests.
type Deployment struct {
	// Apps lists the application processes in ascending ID order.
	Apps []App
	// Coordinators lists the per-cluster coordinators (empty for flat
	// deployments), in cluster order.
	Coordinators []*Coordinator
	// Procs holds the process dispatchers, indexed densely by process ID
	// (builders assign IDs 0..N-1 to topology nodes and the next integers
	// to intermediate coordinators). A slice instead of a map keeps the
	// per-process bookkeeping at 8 bytes and one cache-friendly indexed
	// load — at grid scale (10⁵+ processes) the map's buckets and per-entry
	// overhead were a measurable slice of the deployment's footprint.
	Procs []*Process
	// arena backs the Process values contiguously: one slab allocation
	// sized up front instead of N separate heap objects (structure-of-
	// arrays bookkeeping, DESIGN.md §14). Pointers into the arena are
	// stable because the slab never grows past its initial capacity;
	// newProcess falls back to individual allocation if a builder
	// under-estimated.
	arena []Process
}

// reserve sizes the arena for n processes; must run before newProcess.
func (d *Deployment) reserve(n int) { d.arena = make([]Process, 0, n) }

// newProcess carves a process out of the arena (or heap-allocates one if
// the arena is exhausted) and records it in the dense Procs table.
func (d *Deployment) newProcess(id mutex.ID, raw mutex.Env) *Process {
	var p *Process
	if len(d.arena) < cap(d.arena) {
		d.arena = d.arena[:len(d.arena)+1]
		p = &d.arena[len(d.arena)-1]
	} else {
		p = new(Process)
	}
	p.init(id, raw)
	for int(id) >= len(d.Procs) {
		d.Procs = append(d.Procs, nil)
	}
	d.Procs[id] = p
	return p
}

// CallbackFunc supplies the application-level callbacks for an app process;
// it may return zero Callbacks if the workload polls instead.
type CallbackFunc func(id mutex.ID) mutex.Callbacks

// BuildComposed assembles the paper's two-level architecture on the given
// network: within every cluster of the grid the first node hosts the
// coordinator and the remaining nodes host application processes; the
// spec's intra algorithm runs per cluster (coordinator = initial holder)
// and its inter algorithm runs among the coordinators (cluster 0's
// coordinator = initial holder).
//
// Every cluster must have at least 2 nodes (a coordinator plus one
// application process). BuildComposed is the two-level case of
// BuildMultiLevel.
func BuildComposed(net mutex.Fabric, grid *topology.Grid, spec Spec, appCB CallbackFunc, coordOpts ...func(*Coordinator)) (*Deployment, error) {
	return BuildMultiLevel(net, grid, []string{spec.Intra, spec.Inter}, nil, appCB, coordOpts...)
}

// BuildFlat assembles the paper's baseline: a single non-hierarchical
// instance of the named algorithm spanning every node of the grid, with
// node 0 as the initial holder. All nodes are application processes.
func BuildFlat(net mutex.Fabric, grid *topology.Grid, alg string, appCB CallbackFunc) (*Deployment, error) {
	factory, err := algorithms.Factory(alg)
	if err != nil {
		return nil, fmt.Errorf("core: %w", err)
	}
	members := make([]mutex.ID, grid.NumNodes())
	for i := range members {
		members[i] = mutex.ID(i)
	}
	d := &Deployment{}
	d.reserve(len(members))
	for _, id := range members {
		proc := d.newProcess(id, net.Endpoint(id))
		net.RegisterAt(id, int(id), proc)
		var cbs mutex.Callbacks
		if appCB != nil {
			cbs = appCB(id)
		}
		inst, err := factory(mutex.Config{
			Self: id, Members: members, Holder: 0,
			Env: proc.Env(0), Callbacks: cbs,
		})
		if err != nil {
			return nil, fmt.Errorf("core: instance for %d: %w", id, err)
		}
		proc.Attach(0, inst)
		d.Apps = append(d.Apps, App{ID: id, Cluster: grid.ClusterOf(int(id)), Instance: inst})
	}
	return d, nil
}
