package core_test

import (
	"fmt"
	"os"
	"strings"
	"testing"
	"time"

	"gridmutex/internal/core"
	"gridmutex/internal/explore"
	"gridmutex/internal/topology"
)

// compositionBuilder wires a two-cluster composed deployment onto the
// explorer's hand-stepped world: 2 clusters of 2 nodes each, so nodes 0
// and 2 host coordinators and nodes 1 and 3 are the drivable application
// processes. Coordinator automaton state and the per-level instances
// hidden behind each process dispatcher are exposed to the fingerprint
// cache through probes, so pruning cannot conflate states that differ
// only inside the hierarchy.
func compositionBuilder(spec core.Spec) explore.Builder {
	return func() (*explore.System, error) {
		sys := explore.NewSystem()
		grid := topology.Uniform(2, 2, time.Millisecond, 10*time.Millisecond)
		d, err := core.BuildComposed(sys.World, grid, spec, sys.Callbacks)
		if err != nil {
			return nil, err
		}
		for _, a := range d.Apps {
			sys.AddApp(a.ID, a.Instance)
		}
		for _, c := range d.Coordinators {
			c := c
			sys.AddProbe(func() string {
				return fmt.Sprintf("c%d=%s", c.ID(), c.State())
			})
		}
		for id, p := range d.Procs {
			id, p := id, p
			sys.AddProbe(func() string {
				var b strings.Builder
				fmt.Fprintf(&b, "p%d=", id)
				for lvl := core.Level(0); ; lvl++ {
					inst := p.Instance(lvl)
					if inst == nil {
						break
					}
					fmt.Fprintf(&b, "%d%t%t,", inst.State(), inst.HoldsToken(), inst.HasPending())
				}
				return b.String()
			})
		}
		return sys, nil
	}
}

// TestExploreComposition explores every bounded interleaving of a
// two-level Naimi-Martin composition: application requests funnel through
// the coordinators' intra/inter bridging, and no ordering of the
// envelope deliveries may violate mutual exclusion or leave a request
// stuck. GRIDMUTEX_EXPLORE_LONG=1 requires full exhaustion.
func TestExploreComposition(t *testing.T) {
	long := os.Getenv("GRIDMUTEX_EXPLORE_LONG") != ""
	b := compositionBuilder(core.Spec{Intra: "naimi", Inter: "martin"})
	// Four requests per app: with two drivable apps on a 2x2 grid the
	// composed space exhausts at ~1.5k schedules, past the >=1000-schedule
	// acceptance bar but still well under a second.
	opts := explore.Options{
		RequestsPerApp: 4,
		MaxSteps:       160,
	}
	if !long {
		opts.MaxSchedules = 2000
	}
	res, err := explore.ExploreDFS(b, opts)
	if err != nil {
		t.Fatal(err)
	}
	if res.Counterexample != nil {
		t.Fatalf("violation in %d schedules: %v\nschedule: %s\n%s",
			res.Schedules, res.Counterexample.Violations,
			res.Counterexample.Schedule, res.Counterexample.JSON())
	}
	if long {
		if !res.Exhausted {
			t.Fatalf("space not exhausted after %d schedules", res.Schedules)
		}
		if res.Schedules < 1000 {
			t.Fatalf("exhausted too quickly for the acceptance bar: %d schedules", res.Schedules)
		}
	}
	t.Logf("%d schedules, %d states, %d steps, %d pruned, %d truncated, exhausted=%v",
		res.Schedules, res.States, res.Steps, res.Pruned, res.Truncated, res.Exhausted)
}

// TestExploreCompositionRandom PCT-samples a second composition (different
// intra and inter algorithms) as a cheap diversity complement to the DFS.
func TestExploreCompositionRandom(t *testing.T) {
	b := compositionBuilder(core.Spec{Intra: "suzuki", Inter: "naimi"})
	res, err := explore.ExploreRandom(b, explore.Options{
		RequestsPerApp: 2,
		MaxSteps:       128,
		MaxSchedules:   100,
		Seed:           1,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Counterexample != nil {
		t.Fatalf("violation: %v\nschedule: %s",
			res.Counterexample.Violations, res.Counterexample.Schedule)
	}
}
