// Package core implements the paper's contribution: the hierarchical
// composition of token-based mutual exclusion algorithms (section 3).
//
// A grid deployment runs one intra-cluster algorithm instance per cluster
// and a single inter-cluster instance among per-cluster coordinators. The
// Coordinator type implements the bridge automaton of figures 1 and 2; the
// Process type multiplexes the several algorithm instances a process hosts
// over one network endpoint; Build* functions assemble whole deployments.
package core

import (
	"fmt"
	"sync"
	"sync/atomic"

	"gridmutex/internal/mutex"
)

// Level identifies which hierarchy layer a message belongs to: 0 is the
// intra-cluster layer, 1 the inter-cluster layer, higher values deeper
// hierarchies.
type Level uint8

// Envelope wraps an algorithm message with its hierarchy level so that one
// process endpoint can host instances of several layers.
type Envelope struct {
	Level Level
	Inner mutex.Message
}

// Kind implements mutex.Message; envelopes are transparent for tracing.
func (e Envelope) Kind() string { return e.Inner.Kind() }

// Size implements mutex.Message: inner size plus a one-byte level tag.
func (e Envelope) Size() int { return e.Inner.Size() + 1 }

// pooledEnvelope is an Envelope in a recycled heap box. Sending an
// Envelope by value boxes it into the mutex.Message interface — one
// heap allocation per message, which on the simulator hot path was the
// single largest allocation site. Boxes cycle through a per-process
// freelist instead: Send fills one, Deliver empties it and puts it back
// (into the *receiving* process's list, which is where the next send
// from that process finds it — the box population migrates but stays
// bounded by the in-flight high-water mark).
//
// Recycling is only sound when the transport delivers each sent message
// at most once and retains no reference afterwards, so it is gated on
// the raw endpoint advertising that contract (see deliversOnce). Fabrics
// that duplicate or log messages (algotest.World) and transports that
// serialize them (livenet's UDP wire) keep receiving plain Envelopes.
type pooledEnvelope struct {
	Envelope
}

// deliversOnce is the capability a raw endpoint implements to opt in to
// envelope recycling: every message passed to Send is delivered to the
// registered handler at most once, and no reference to it survives the
// delivery (drops are fine — an unreturned box is simply collected).
// Implementers are driven by a single-goroutine event loop (the DES),
// which is what lets the freelist skip all synchronization.
type deliversOnce interface {
	DeliversOnce()
}

// Process hosts the algorithm instances of one grid process and routes
// incoming envelopes to the right one. It implements the mutex.Handler
// contract.
//
// Attach and Deliver may run on different goroutines on live transports
// (the builder attaches while a socket reader is already live, and a
// permission-based algorithm broadcasts during coordinator boot), so the
// instance table is a copy-on-write slice indexed by level: Attach
// publishes a fresh copy under the mutex, Deliver loads it with a single
// atomic read — no lock on the per-message path. The instances
// themselves are still only ever entered from their process's serial
// context.
type Process struct {
	id     mutex.ID
	raw    mutex.Env
	pooled bool              // raw advertises deliversOnce: envelope boxes recycle
	boxes  []*pooledEnvelope // freelist; only touched when pooled (single goroutine)

	mu       sync.Mutex // serializes Attach
	attached []bool     // guarded by mu; occupancy, since nil instances may attach
	inst     atomic.Pointer[[]mutex.Instance]
}

// NewProcess creates a process with the given raw network endpoint.
func NewProcess(id mutex.ID, raw mutex.Env) *Process {
	p := new(Process)
	p.init(id, raw)
	return p
}

// init readies a zero Process in place; Deployment carves processes out of
// a contiguous arena instead of heap-allocating each one.
func (p *Process) init(id mutex.ID, raw mutex.Env) {
	_, once := raw.(deliversOnce)
	p.id, p.raw, p.pooled = id, raw, once
	p.inst.Store(new([]mutex.Instance))
}

// ID returns the process identifier.
func (p *Process) ID() mutex.ID { return p.id }

// Attach registers the instance serving the given level.
func (p *Process) Attach(level Level, inst mutex.Instance) {
	p.mu.Lock()
	defer p.mu.Unlock()
	if int(level) < len(p.attached) && p.attached[level] {
		panic(fmt.Sprintf("core: process %d already has an instance at level %d", p.id, level))
	}
	old := *p.inst.Load()
	n := max(len(old), int(level)+1)
	next := make([]mutex.Instance, n)
	copy(next, old)
	next[level] = inst
	for len(p.attached) < n {
		p.attached = append(p.attached, false)
	}
	p.attached[level] = true
	p.inst.Store(&next)
}

// Instance returns the instance at the level, or nil.
func (p *Process) Instance(level Level) mutex.Instance {
	tbl := *p.inst.Load()
	if int(level) >= len(tbl) {
		return nil
	}
	return tbl[level]
}

// Env returns the mutex.Env an instance at the given level must be
// constructed with: sends are wrapped in envelopes carrying the level.
func (p *Process) Env(level Level) mutex.Env {
	return &levelEnv{p: p, level: level}
}

// Deliver routes an incoming envelope to the instance at its level. A
// pooled box is copied out and returned to the pool before the instance
// runs, so nothing downstream can observe its reuse.
func (p *Process) Deliver(from mutex.ID, m mutex.Message) {
	var env Envelope
	switch v := m.(type) {
	case Envelope:
		env = v
	case *pooledEnvelope:
		env = v.Envelope
		v.Inner = nil
		p.boxes = append(p.boxes, v)
	default:
		panic(fmt.Sprintf("core: process %d received bare message %T", p.id, m))
	}
	tbl := *p.inst.Load()
	if int(env.Level) >= len(tbl) || tbl[env.Level] == nil {
		panic(fmt.Sprintf("core: process %d has no instance at level %d for %s", p.id, env.Level, env.Inner.Kind()))
	}
	tbl[env.Level].Deliver(from, env.Inner)
}

type levelEnv struct {
	p     *Process
	level Level
}

func (e *levelEnv) Send(to mutex.ID, m mutex.Message) {
	if e.p.pooled {
		var pe *pooledEnvelope
		if n := len(e.p.boxes); n > 0 {
			pe = e.p.boxes[n-1]
			e.p.boxes = e.p.boxes[:n-1]
		} else {
			//lint:allow allochygiene freelist growth: allocates only until the box population reaches the in-flight high-water mark, then steady state pops recycled boxes
			pe = new(pooledEnvelope)
		}
		pe.Level = e.level
		pe.Inner = m
		e.p.raw.Send(to, pe)
		return
	}
	//lint:allow allochygiene boxing fallback for transports without deliversOnce (duplicating fabrics, serializing wires); the pooled branch above keeps the DES hot path allocation-free
	e.p.raw.Send(to, Envelope{Level: e.level, Inner: m})
}

func (e *levelEnv) Local(f func()) { e.p.raw.Local(f) }
