// Package core implements the paper's contribution: the hierarchical
// composition of token-based mutual exclusion algorithms (section 3).
//
// A grid deployment runs one intra-cluster algorithm instance per cluster
// and a single inter-cluster instance among per-cluster coordinators. The
// Coordinator type implements the bridge automaton of figures 1 and 2; the
// Process type multiplexes the several algorithm instances a process hosts
// over one network endpoint; Build* functions assemble whole deployments.
package core

import (
	"fmt"
	"sync"

	"gridmutex/internal/mutex"
)

// Level identifies which hierarchy layer a message belongs to: 0 is the
// intra-cluster layer, 1 the inter-cluster layer, higher values deeper
// hierarchies.
type Level uint8

// Envelope wraps an algorithm message with its hierarchy level so that one
// process endpoint can host instances of several layers.
type Envelope struct {
	Level Level
	Inner mutex.Message
}

// Kind implements mutex.Message; envelopes are transparent for tracing.
func (e Envelope) Kind() string { return e.Inner.Kind() }

// Size implements mutex.Message: inner size plus a one-byte level tag.
func (e Envelope) Size() int { return e.Inner.Size() + 1 }

// Process hosts the algorithm instances of one grid process and routes
// incoming envelopes to the right one. It implements the mutex.Handler
// contract.
//
// Attach and Deliver may run on different goroutines on live transports
// (the builder attaches while a socket reader is already live, and a
// permission-based algorithm broadcasts during coordinator boot), so the
// instance table is guarded; the instances themselves are still only ever
// entered from their process's serial context.
type Process struct {
	id  mutex.ID
	raw mutex.Env

	mu   sync.RWMutex
	inst map[Level]mutex.Instance
}

// NewProcess creates a process with the given raw network endpoint.
func NewProcess(id mutex.ID, raw mutex.Env) *Process {
	return &Process{id: id, raw: raw, inst: make(map[Level]mutex.Instance)}
}

// ID returns the process identifier.
func (p *Process) ID() mutex.ID { return p.id }

// Attach registers the instance serving the given level.
func (p *Process) Attach(level Level, inst mutex.Instance) {
	p.mu.Lock()
	defer p.mu.Unlock()
	if _, dup := p.inst[level]; dup {
		panic(fmt.Sprintf("core: process %d already has an instance at level %d", p.id, level))
	}
	p.inst[level] = inst
}

// Instance returns the instance at the level, or nil.
func (p *Process) Instance(level Level) mutex.Instance {
	p.mu.RLock()
	defer p.mu.RUnlock()
	return p.inst[level]
}

// Env returns the mutex.Env an instance at the given level must be
// constructed with: sends are wrapped in envelopes carrying the level.
func (p *Process) Env(level Level) mutex.Env {
	return &levelEnv{p: p, level: level}
}

// Deliver routes an incoming envelope to the instance at its level.
func (p *Process) Deliver(from mutex.ID, m mutex.Message) {
	env, ok := m.(Envelope)
	if !ok {
		panic(fmt.Sprintf("core: process %d received bare message %T", p.id, m))
	}
	p.mu.RLock()
	inst, ok := p.inst[env.Level]
	p.mu.RUnlock()
	if !ok {
		panic(fmt.Sprintf("core: process %d has no instance at level %d for %s", p.id, env.Level, m.Kind()))
	}
	inst.Deliver(from, env.Inner)
}

type levelEnv struct {
	p     *Process
	level Level
}

func (e *levelEnv) Send(to mutex.ID, m mutex.Message) {
	e.p.raw.Send(to, Envelope{Level: e.level, Inner: m})
}

func (e *levelEnv) Local(f func()) { e.p.raw.Local(f) }
