package core_test

import (
	"testing"
	"time"

	"gridmutex/internal/check"
	"gridmutex/internal/core"
	"gridmutex/internal/des"
	"gridmutex/internal/reliable"
	"gridmutex/internal/simnet"
	"gridmutex/internal/topology"
	"gridmutex/internal/workload"
)

// runMultiLevel builds and drains a hierarchy, asserting safety and
// liveness.
func runMultiLevel(t *testing.T, grid *topology.Grid, algs []string, groups []int, params workload.Params) (*workload.Runner, *core.Deployment) {
	t.Helper()
	sim := des.New()
	net := simnet.New(sim, grid, simnet.Options{})
	mon := check.NewMonitor(sim)
	runner, err := workload.NewRunner(sim, params, mon)
	if err != nil {
		t.Fatal(err)
	}
	d, err := core.BuildMultiLevel(net, grid, algs, groups, runner.Callbacks)
	if err != nil {
		t.Fatal(err)
	}
	runner.Bind(d.Apps)
	runner.Start()
	if err := sim.RunCapped(5_000_000); err != nil {
		t.Fatalf("hierarchy did not drain: %v (outstanding %d)", err, runner.Outstanding())
	}
	mon.AssertQuiescent()
	if !mon.Ok() {
		t.Fatalf("violations: %v", mon.Violations()[0])
	}
	if !runner.Done() {
		t.Fatalf("liveness: %d outstanding", runner.Outstanding())
	}
	return runner, d
}

// TestThreeLevelHierarchy: 6 clusters grouped 2 regions of 3; naimi inside
// clusters, martin within regions, suzuki across regions.
func TestThreeLevelHierarchy(t *testing.T) {
	grid := topology.Uniform(6, 4, time.Millisecond, 20*time.Millisecond)
	params := workload.Params{
		Alpha: 4 * time.Millisecond, Rho: 15, Dist: workload.Exponential,
		CSPerProcess: 6, Seed: 31,
	}
	runner, d := runMultiLevel(t, grid, []string{"naimi", "martin", "suzuki"}, []int{3}, params)
	// 6 cluster coordinators + 2 region coordinators.
	if len(d.Coordinators) != 8 {
		t.Fatalf("%d coordinators, want 8", len(d.Coordinators))
	}
	if len(d.Apps) != 18 {
		t.Fatalf("%d apps, want 18", len(d.Apps))
	}
	if len(runner.Records()) != runner.ExpectedTotal() {
		t.Fatalf("%d records", len(runner.Records()))
	}
}

// TestFourLevelHierarchy: 8 clusters -> 4 pairs -> 2 super-groups -> top.
func TestFourLevelHierarchy(t *testing.T) {
	grid := topology.Uniform(8, 3, time.Millisecond, 16*time.Millisecond)
	params := workload.Params{
		Alpha: 3 * time.Millisecond, Rho: 25, Dist: workload.Exponential,
		CSPerProcess: 4, Seed: 33,
	}
	_, d := runMultiLevel(t, grid, []string{"naimi", "naimi", "naimi", "naimi"}, []int{2, 2}, params)
	// 8 + 4 + 2 coordinators.
	if len(d.Coordinators) != 14 {
		t.Fatalf("%d coordinators, want 14", len(d.Coordinators))
	}
}

// TestUnevenGroups: group size that does not divide the cluster count.
func TestUnevenGroups(t *testing.T) {
	grid := topology.Uniform(5, 3, time.Millisecond, 16*time.Millisecond)
	params := workload.Params{
		Alpha: 3 * time.Millisecond, Rho: 10, Dist: workload.Exponential,
		CSPerProcess: 4, Seed: 35,
	}
	_, d := runMultiLevel(t, grid, []string{"naimi", "suzuki", "naimi"}, []int{2}, params)
	// 5 cluster coordinators + 3 region coordinators (2+2+1).
	if len(d.Coordinators) != 8 {
		t.Fatalf("%d coordinators, want 8", len(d.Coordinators))
	}
}

// TestTwoLevelEquivalence: BuildComposed must behave exactly like the
// explicit two-level hierarchy (it delegates, but assert observable
// equality end to end).
func TestTwoLevelEquivalence(t *testing.T) {
	params := workload.Params{
		Alpha: 5 * time.Millisecond, Rho: 10, Dist: workload.Exponential,
		CSPerProcess: 6, Seed: 37,
	}
	run := func(multi bool) ([]workload.Record, int64) {
		grid := topology.Uniform(3, 4, time.Millisecond, 20*time.Millisecond)
		sim := des.New()
		net := simnet.New(sim, grid, simnet.Options{})
		runner, err := workload.NewRunner(sim, params, nil)
		if err != nil {
			t.Fatal(err)
		}
		var d *core.Deployment
		if multi {
			d, err = core.BuildMultiLevel(net, grid, []string{"naimi", "martin"}, nil, runner.Callbacks)
		} else {
			d, err = core.BuildComposed(net, grid, core.Spec{"naimi", "martin"}, runner.Callbacks)
		}
		if err != nil {
			t.Fatal(err)
		}
		runner.Bind(d.Apps)
		runner.Start()
		if err := sim.RunCapped(2_000_000); err != nil {
			t.Fatal(err)
		}
		return runner.Records(), net.Counters().Messages
	}
	recA, msgsA := run(false)
	recB, msgsB := run(true)
	if msgsA != msgsB {
		t.Fatalf("message counts differ: %d vs %d", msgsA, msgsB)
	}
	if len(recA) != len(recB) {
		t.Fatal("record counts differ")
	}
	for i := range recA {
		if recA[i] != recB[i] {
			t.Fatalf("records diverge at %d", i)
		}
	}
}

// TestMultiLevelReducesTopLevelTraffic: adding a middle level cuts traffic
// at the top level compared to a two-level build with the same clusters —
// the scalability rationale for deeper hierarchies.
func TestMultiLevelReducesTopLevelTraffic(t *testing.T) {
	params := workload.Params{
		Alpha: 4 * time.Millisecond, Rho: 5, Dist: workload.Exponential,
		CSPerProcess: 8, Seed: 39,
	}
	// Measure inter-cluster messages (anything crossing cluster
	// boundaries) in both architectures on the same grid.
	run := func(algs []string, groups []int) float64 {
		grid := topology.Uniform(6, 4, time.Millisecond, 24*time.Millisecond)
		sim := des.New()
		net := simnet.New(sim, grid, simnet.Options{})
		runner, err := workload.NewRunner(sim, params, nil)
		if err != nil {
			t.Fatal(err)
		}
		d, err := core.BuildMultiLevel(net, grid, algs, groups, runner.Callbacks)
		if err != nil {
			t.Fatal(err)
		}
		runner.Bind(d.Apps)
		runner.Start()
		if err := sim.RunCapped(5_000_000); err != nil {
			t.Fatal(err)
		}
		if !runner.Done() {
			t.Fatal("incomplete")
		}
		return float64(net.Counters().InterMessages) / float64(len(runner.Records()))
	}
	two := run([]string{"naimi", "suzuki"}, nil)
	three := run([]string{"naimi", "naimi", "suzuki"}, []int{3})
	if three >= two {
		t.Errorf("three-level inter traffic %.2f msgs/CS not below two-level %.2f", three, two)
	}
}

func TestMultiLevelValidation(t *testing.T) {
	grid := topology.Uniform(4, 3, time.Millisecond, 16*time.Millisecond)
	net := simnet.New(des.New(), grid, simnet.Options{})
	cases := []struct {
		name   string
		algs   []string
		groups []int
	}{
		{"too few levels", []string{"naimi"}, nil},
		{"mismatched groups", []string{"naimi", "naimi"}, []int{2}},
		{"missing groups", []string{"naimi", "naimi", "naimi"}, nil},
		{"unknown algorithm", []string{"naimi", "bogus", "naimi"}, []int{2}},
		{"zero group size", []string{"naimi", "naimi", "naimi"}, []int{0}},
	}
	for _, tc := range cases {
		if _, err := core.BuildMultiLevel(net, grid, tc.algs, tc.groups, nil); err == nil {
			t.Errorf("%s: accepted", tc.name)
		}
	}
}

// TestIntermediateCoordinatorsAreColocated: region coordinators must sit on
// a physical node of their region (latency realism).
func TestIntermediateCoordinatorColocation(t *testing.T) {
	grid := topology.Uniform(4, 3, time.Millisecond, 16*time.Millisecond)
	sim := des.New()
	net := simnet.New(sim, grid, simnet.Options{})
	d, err := core.BuildMultiLevel(net, grid, []string{"naimi", "naimi", "naimi"}, []int{2}, nil)
	if err != nil {
		t.Fatal(err)
	}
	// IDs beyond the topology are the region coordinators.
	extra := 0
	for id := range d.Procs {
		if int(id) >= grid.NumNodes() {
			extra++
		}
	}
	if extra != 2 {
		t.Fatalf("%d intermediate coordinators, want 2", extra)
	}
	sim.Run() // drain boot events; nothing should be in flight or panic
}

// TestKitchenSink enables everything at once — three levels, local bias,
// latency jitter, 10% loss under the reliable layer — and checks the full
// stack still upholds safety and liveness.
func TestKitchenSink(t *testing.T) {
	grid := topology.Uniform(4, 4, time.Millisecond, 14*time.Millisecond)
	sim := des.New()
	inner := simnet.New(sim, grid, simnet.Options{Jitter: 0.2, Seed: 21, Loss: 0.10})
	rel := reliable.Wrap(inner, sim, reliable.Options{RTO: 80 * time.Millisecond})
	mon := check.NewMonitor(sim)
	runner, err := workload.NewRunner(sim, workload.Params{
		Alpha: 4 * time.Millisecond, Rho: 10, Dist: workload.Exponential,
		CSPerProcess: 8, Seed: 21,
	}, mon)
	if err != nil {
		t.Fatal(err)
	}
	d, err := core.BuildMultiLevel(rel, grid, []string{"suzuki", "naimi", "martin"}, []int{2},
		runner.Callbacks, func(c *core.Coordinator) { c.SetLocalBias(2) })
	if err != nil {
		t.Fatal(err)
	}
	runner.Bind(d.Apps)
	runner.Start()
	mon.WatchLiveness(runner.Waiting, runner.Done, 5*time.Second)
	if err := sim.RunCapped(30_000_000); err != nil {
		t.Fatalf("did not drain: %v (outstanding %d)", err, runner.Outstanding())
	}
	mon.AssertQuiescent()
	if !mon.Ok() {
		t.Fatalf("violations: %v", mon.Violations()[0])
	}
	if !runner.Done() {
		t.Fatalf("liveness: %d outstanding", runner.Outstanding())
	}
	if rel.Stats().Retransmits == 0 {
		t.Error("loss produced no retransmissions")
	}
}
