package core

import (
	"fmt"

	"gridmutex/internal/mutex"
)

// CoordinatorState is the global composition state of a coordinator
// (figure 1(b) of the paper).
type CoordinatorState uint8

const (
	// Booting: the coordinator has not yet completed its initial
	// acquisition of the intra token.
	Booting CoordinatorState = iota
	// Out: no local application process wants the critical section. The
	// coordinator holds the intra token (Intra = CS) and does not
	// request the inter token (Inter = NO_REQ).
	Out
	// WaitForIn: local requests are pending; the coordinator still holds
	// the intra token (Intra = CS) and waits for the inter token
	// (Inter = REQ).
	WaitForIn
	// In: the coordinator holds the inter token (Inter = CS) and has
	// granted the intra token to a local application process
	// (Intra = NO_REQ).
	In
	// WaitForOut: the coordinator holds the inter token (Inter = CS) but
	// is reclaiming the intra token (Intra = REQ) in order to satisfy a
	// pending inter request.
	WaitForOut
)

// String returns the paper's name for the state.
func (s CoordinatorState) String() string {
	switch s {
	case Booting:
		return "BOOTING"
	case Out:
		return "OUT"
	case WaitForIn:
		return "WAIT_FOR_IN"
	case In:
		return "IN"
	case WaitForOut:
		return "WAIT_FOR_OUT"
	default:
		return fmt.Sprintf("CoordinatorState(%d)", uint8(s))
	}
}

// CoordinatorStats counts automaton activity, for tests and experiments.
type CoordinatorStats struct {
	// InterAcquisitions is how many times the inter token entered this
	// cluster on behalf of local requests.
	InterAcquisitions int64
	// InterHandoffs is how many times the coordinator reclaimed its
	// intra token and released the inter token to another cluster.
	InterHandoffs int64
	// BiasRounds is how many extra local serving rounds the local-bias
	// policy inserted (see SetLocalBias).
	BiasRounds int64
}

// Coordinator is the hybrid process of section 3.1: a participant of its
// cluster's intra algorithm (where it initially holds the token and is
// seen as an application process that never computes) and a participant of
// the inter algorithm run among all coordinators.
//
// The automaton couples the two instances: local pending requests drive
// InterCSRequest, the inter grant releases the intra token to the cluster,
// pending inter requests drive the reclaim of the intra token, and the
// reclaimed intra token allows InterCSRelease.
type Coordinator struct {
	id       mutex.ID
	state    CoordinatorState
	intra    mutex.Instance
	inter    mutex.Instance
	stats    CoordinatorStats
	observer func(from, to CoordinatorState)

	// localBias is the maximum number of extra local serving rounds the
	// coordinator may insert before honouring a pending inter request.
	localBias int
	biasLeft  int

	// forfeited records that the inter claim was surrendered by Isolate
	// while the coordinator was IN (or reclaiming): when the reclaim of
	// the intra token completes there is no handoff to perform.
	forfeited bool
}

// NewCoordinator creates an unwired coordinator. Construct the intra and
// inter instances with IntraCallbacks/InterCallbacks, then call Start.
func NewCoordinator(id mutex.ID) *Coordinator {
	return &Coordinator{id: id, state: Booting}
}

// SetLocalBias makes the coordinator serve up to k additional local
// requests before releasing the inter token to a waiting remote cluster —
// the strategy of Bertier, Arantes and Sens (JPDC 2006, cited in the
// paper's related work) of treating intra-cluster requests before
// inter-cluster ones. Remote waiting grows by at most k local critical
// sections per handoff, so liveness is preserved. k = 0 (the default) is
// the paper's plain automaton. Call before Start.
func (c *Coordinator) SetLocalBias(k int) {
	if k < 0 {
		panic("core: negative local bias")
	}
	if c.intra != nil {
		panic("core: SetLocalBias after Start")
	}
	c.localBias = k
}

// ID returns the coordinator's process identifier.
func (c *Coordinator) ID() mutex.ID { return c.id }

// State returns the current automaton state.
func (c *Coordinator) State() CoordinatorState { return c.state }

// Stats returns a snapshot of automaton activity counters.
func (c *Coordinator) Stats() CoordinatorStats { return c.stats }

// SetObserver installs a callback invoked on every automaton transition —
// the hook tracing and debugging tools attach to. Pass nil to detach.
func (c *Coordinator) SetObserver(f func(from, to CoordinatorState)) { c.observer = f }

// transition moves the automaton to a new state, notifying the observer.
func (c *Coordinator) transition(to CoordinatorState) {
	from := c.state
	c.state = to
	if c.observer != nil && from != to {
		c.observer(from, to)
	}
}

// IntraCallbacks returns the callbacks to construct the intra instance
// with.
func (c *Coordinator) IntraCallbacks() mutex.Callbacks {
	return mutex.Callbacks{OnAcquire: c.onIntraAcquire, OnPending: c.onIntraPending}
}

// InterCallbacks returns the callbacks to construct the inter instance
// with.
func (c *Coordinator) InterCallbacks() mutex.Callbacks {
	return mutex.Callbacks{OnAcquire: c.onInterAcquire, OnPending: c.onInterPending}
}

// Start wires the constructed instances and performs the initial intra
// token acquisition (every coordinator boots holding its cluster's intra
// token, per section 3.1). The coordinator must be the intra instance's
// initial holder, so the acquisition completes without any message.
func (c *Coordinator) Start(intra, inter mutex.Instance) {
	if c.intra != nil || c.inter != nil {
		panic(fmt.Sprintf("core: coordinator %d started twice", c.id))
	}
	if intra == nil || inter == nil {
		panic(fmt.Sprintf("core: coordinator %d started with nil instance", c.id))
	}
	c.intra = intra
	c.inter = inter
	c.intra.Request()
}

// Adopt wires a standby coordinator taking over a cluster after its
// primary crashed. Unlike Start, the automaton may begin in a state other
// than Booting, because the cluster's tokens are wherever crash recovery
// left them:
//
//   - Booting: the standby holds (or will acquire) the intra token and the
//     cluster does not own the global CS right — the normal boot path.
//   - In: the intra token is out with an application process and the
//     standby has inherited the dead primary's claim on the inter token,
//     so the cluster still owns the global CS right.
//
// Other states never survive a primary crash (they are transient message
// exchanges the recovery layer resolves into one of the two above).
func (c *Coordinator) Adopt(intra, inter mutex.Instance, st CoordinatorState) {
	if c.intra != nil || c.inter != nil {
		panic(fmt.Sprintf("core: coordinator %d started twice", c.id))
	}
	if intra == nil || inter == nil {
		panic(fmt.Sprintf("core: coordinator %d started with nil instance", c.id))
	}
	c.intra = intra
	c.inter = inter
	switch st {
	case Booting:
		c.intra.Request()
	case In:
		c.transition(In)
		c.maybeReclaimIntra()
	default:
		panic(fmt.Sprintf("core: coordinator %d cannot adopt state %v", c.id, st))
	}
}

// onIntraAcquire fires when the coordinator (re)gains the intra token:
// once at boot, and afterwards whenever a WAIT_FOR_OUT reclaim completes.
func (c *Coordinator) onIntraAcquire() {
	switch c.state {
	case Booting:
		c.transition(Out)
	case WaitForOut:
		if c.forfeited {
			// The inter claim was surrendered by Isolate: there is no
			// handoff to perform — park OUT holding the intra token.
			// Pending local requests fall through to maybeRequestInter,
			// queueing the cluster for the majority's regenerated inter
			// token; the grant arrives once the partition heals.
			c.forfeited = false
			c.transition(Out)
			break
		}
		if c.biasLeft > 0 && c.intra.HasPending() {
			// Local bias: applications queued behind the reclaim get
			// one more serving round before the handoff. The
			// coordinator stays WAIT_FOR_OUT (it still owes the inter
			// token) and cycles the intra token once more.
			c.biasLeft--
			c.stats.BiasRounds++
			c.intra.Release()
			c.intra.Request()
			return
		}
		// The cluster is quiescent again (or the bias budget is
		// spent): give the inter token to the requesting coordinator.
		c.transition(Out)
		c.stats.InterHandoffs++
		c.inter.Release()
	default:
		panic(fmt.Sprintf("core: coordinator %d acquired intra token in state %v", c.id, c.state))
	}
	// Application requests may have queued behind the coordinator's own
	// reclaim; serve them by starting a fresh inter acquisition.
	c.maybeRequestInter()
}

// onIntraPending fires when a local application request is blocked by the
// coordinator's possession of the intra token.
func (c *Coordinator) onIntraPending() {
	c.maybeRequestInter()
}

// onInterAcquire fires when the inter token arrives: the cluster now owns
// the critical section right, so the coordinator opens the intra level.
func (c *Coordinator) onInterAcquire() {
	if c.state != WaitForIn {
		panic(fmt.Sprintf("core: coordinator %d acquired inter token in state %v", c.id, c.state))
	}
	c.transition(In)
	c.stats.InterAcquisitions++
	// Hand the intra token to the waiting application process.
	c.intra.Release()
	// Other clusters may already be queued behind this acquisition.
	c.maybeReclaimIntra()
}

// onInterPending fires when another coordinator's request is blocked by
// this coordinator's possession of the inter token.
func (c *Coordinator) onInterPending() {
	c.maybeReclaimIntra()
}

// maybeRequestInter starts an inter acquisition if the coordinator is OUT
// and local requests are pending (lines 8-9 of figure 2).
func (c *Coordinator) maybeRequestInter() {
	if c.state == Out && c.intra.HasPending() {
		c.transition(WaitForIn)
		c.inter.Request()
	}
}

// maybeReclaimIntra starts reclaiming the intra token if the coordinator
// is IN and another cluster wants the inter token (lines 15-16 of
// figure 2).
func (c *Coordinator) maybeReclaimIntra() {
	if c.state == In && c.inter.HasPending() {
		c.transition(WaitForOut)
		c.biasLeft = c.localBias
		c.intra.Request()
	}
}

// Isolate parks the coordinator when its cluster lands on the minority
// side of a partition. The inter claim — if any — has been forfeited at
// the recovery layer (the majority side will regenerate the token), so
// the automaton must stop treating it as owned: an IN coordinator
// reclaims the intra token at once, stopping local grants, and the
// completed reclaim parks OUT without an inter release. Local requests
// queue behind the reclaim; Reconnect re-issues the inter acquisition,
// so the frozen queue drains once the partition heals.
func (c *Coordinator) Isolate() {
	switch c.state {
	case In:
		c.forfeited = true
		c.transition(WaitForOut)
		c.biasLeft = 0
		c.intra.Request()
	case WaitForOut:
		// The reclaim is already running; cancel any bias rounds and
		// skip the handoff when it completes.
		c.forfeited = true
		c.biasLeft = 0
	}
	// Out, WaitForIn, Booting: no claim to surrender. A WAIT_FOR_IN
	// request stays recorded at the minority-frozen inter member and is
	// re-issued by the resync epoch.
}

// Reconnect resumes the coordinator after its cluster rejoined the
// majority: if local requests queued up during the freeze, start the
// inter acquisition for them.
func (c *Coordinator) Reconnect() {
	c.maybeRequestInter()
}
