package core_test

import (
	"strings"
	"testing"
	"testing/quick"
	"time"

	"gridmutex/internal/algorithms"
	"gridmutex/internal/check"
	"gridmutex/internal/core"
	"gridmutex/internal/des"
	"gridmutex/internal/mutex"
	"gridmutex/internal/simnet"
	"gridmutex/internal/topology"
	"gridmutex/internal/trace"
	"gridmutex/internal/workload"
)

// runComposed executes a full composed deployment and returns the runner,
// network and monitor after the run drains.
func runComposed(t testing.TB, grid *topology.Grid, spec core.Spec, params workload.Params) (*workload.Runner, *simnet.Network, *check.Monitor, *core.Deployment) {
	t.Helper()
	sim := des.New()
	net := simnet.New(sim, grid, simnet.Options{})
	mon := check.NewMonitor(sim)
	runner, err := workload.NewRunner(sim, params, mon)
	if err != nil {
		t.Fatal(err)
	}
	d, err := core.BuildComposed(net, grid, spec, runner.Callbacks)
	if err != nil {
		t.Fatal(err)
	}
	runner.Bind(d.Apps)
	runner.Start()
	limit := uint64(runner.ExpectedTotal())*5000 + 200000
	if err := sim.RunCapped(limit); err != nil {
		t.Fatalf("%v: run did not drain: %v (outstanding %d)", spec, err, runner.Outstanding())
	}
	mon.AssertQuiescent()
	if !mon.Ok() {
		t.Fatalf("%v: property violations: %v", spec, mon.Violations()[0])
	}
	if !runner.Done() {
		t.Fatalf("%v: liveness: %d critical sections never granted", spec, runner.Outstanding())
	}
	return runner, net, mon, d
}

func smallGrid() *topology.Grid {
	return topology.Uniform(3, 5, time.Millisecond, 20*time.Millisecond)
}

func quickParams(seed int64, rho float64) workload.Params {
	return workload.Params{
		Alpha: 5 * time.Millisecond, Rho: rho, Dist: workload.Exponential,
		CSPerProcess: 8, Seed: seed,
	}
}

// TestComposedPaperPairs runs the nine compositions of the paper's three
// algorithms end to end.
func TestComposedPaperPairs(t *testing.T) {
	algs := []string{"martin", "naimi", "suzuki"}
	for _, intra := range algs {
		for _, inter := range algs {
			spec := core.Spec{Intra: intra, Inter: inter}
			t.Run(spec.String(), func(t *testing.T) {
				runner, _, mon, _ := runComposed(t, smallGrid(), spec, quickParams(7, 10))
				if got, want := int(mon.Entries()), runner.ExpectedTotal(); got != want {
					t.Fatalf("%d CS entries, want %d", got, want)
				}
			})
		}
	}
}

// TestComposedExtraAlgorithms exercises the additional plug-ins at both
// levels.
func TestComposedExtraAlgorithms(t *testing.T) {
	specs := []core.Spec{
		{"raymond", "naimi"}, {"naimi", "raymond"},
		{"central", "naimi"}, {"naimi", "central"},
		{"raymond", "central"}, {"central", "raymond"},
	}
	for _, spec := range specs {
		t.Run(spec.String(), func(t *testing.T) {
			runComposed(t, smallGrid(), spec, quickParams(11, 20))
		})
	}
}

// TestComposedContentionRegimes covers the paper's three parallelism
// regimes (N = 12 apps here, so low: rho<=12, intermediate, high:
// rho>=36).
func TestComposedContentionRegimes(t *testing.T) {
	for name, rho := range map[string]float64{"low": 4, "intermediate": 24, "high": 60} {
		t.Run(name, func(t *testing.T) {
			runComposed(t, smallGrid(), core.Spec{"naimi", "naimi"}, quickParams(13, rho))
		})
	}
}

// TestComposedInvariant asserts, at every application CS entry, the
// composition invariant of section 3.2: the entering process's coordinator
// is IN or WAIT_FOR_OUT, and no other coordinator is.
func TestComposedInvariant(t *testing.T) {
	grid := smallGrid()
	sim := des.New()
	net := simnet.New(sim, grid, simnet.Options{})
	mon := check.NewMonitor(sim)
	runner, err := workload.NewRunner(sim, quickParams(17, 8), mon)
	if err != nil {
		t.Fatal(err)
	}
	var d *core.Deployment
	violations := 0
	cb := func(id mutex.ID) mutex.Callbacks {
		inner := runner.Callbacks(id)
		return mutex.Callbacks{OnAcquire: func() {
			cluster := grid.ClusterOf(int(id))
			holders := 0
			for c, coord := range d.Coordinators {
				s := coord.State()
				holding := s == core.In || s == core.WaitForOut
				if holding {
					holders++
				}
				if c == cluster && !holding {
					t.Errorf("app %d entered CS but its coordinator is %v", id, s)
					violations++
				}
			}
			if holders != 1 {
				t.Errorf("%d coordinators in IN/WAIT_FOR_OUT during a CS, want 1", holders)
				violations++
			}
			inner.OnAcquire()
		}}
	}
	d, err = core.BuildComposed(net, grid, core.Spec{"naimi", "martin"}, cb)
	if err != nil {
		t.Fatal(err)
	}
	runner.Bind(d.Apps)
	runner.Start()
	if err := sim.RunCapped(2_000_000); err != nil {
		t.Fatal(err)
	}
	if !runner.Done() || !mon.Ok() {
		t.Fatalf("run incomplete (done=%v ok=%v %v)", runner.Done(), mon.Ok(), mon.Violations())
	}
	if violations > 0 {
		t.Fatalf("%d invariant violations", violations)
	}
}

// TestFlatDeployment runs the paper's baseline (original algorithm over
// the whole grid).
func TestFlatDeployment(t *testing.T) {
	for _, alg := range []string{"naimi", "martin", "suzuki"} {
		t.Run(alg, func(t *testing.T) {
			grid := topology.Uniform(3, 4, time.Millisecond, 20*time.Millisecond)
			sim := des.New()
			net := simnet.New(sim, grid, simnet.Options{})
			mon := check.NewMonitor(sim)
			runner, err := workload.NewRunner(sim, quickParams(19, 15), mon)
			if err != nil {
				t.Fatal(err)
			}
			d, err := core.BuildFlat(net, grid, alg, runner.Callbacks)
			if err != nil {
				t.Fatal(err)
			}
			if len(d.Apps) != grid.NumNodes() {
				t.Fatalf("flat deployment has %d apps, want %d", len(d.Apps), grid.NumNodes())
			}
			if len(d.Coordinators) != 0 {
				t.Fatal("flat deployment has coordinators")
			}
			runner.Bind(d.Apps)
			runner.Start()
			if err := sim.RunCapped(2_000_000); err != nil {
				t.Fatal(err)
			}
			mon.AssertQuiescent()
			if !mon.Ok() || !runner.Done() {
				t.Fatalf("flat run failed: %v", mon.Violations())
			}
		})
	}
}

// TestComposedReducesInterClusterMessages reproduces the qualitative claim
// of figure 4(b): under contention the composition sends far fewer
// inter-cluster messages than the original flat algorithm, because
// coordinators batch local requests into one inter request.
func TestComposedReducesInterClusterMessages(t *testing.T) {
	// Flat run over a 3x4 grid (12 apps).
	flatGrid := topology.Uniform(3, 4, time.Millisecond, 20*time.Millisecond)
	sim := des.New()
	net := simnet.New(sim, flatGrid, simnet.Options{})
	runner, err := workload.NewRunner(sim, quickParams(23, 4), nil)
	if err != nil {
		t.Fatal(err)
	}
	d, err := core.BuildFlat(net, flatGrid, "naimi", runner.Callbacks)
	if err != nil {
		t.Fatal(err)
	}
	runner.Bind(d.Apps)
	runner.Start()
	if err := sim.RunCapped(2_000_000); err != nil {
		t.Fatal(err)
	}
	flatInterPerCS := float64(net.Counters().InterMessages) / float64(len(runner.Records()))

	// Composed run with the same 12 apps (clusters get one extra node
	// hosting the coordinator).
	composedGrid := topology.Uniform(3, 5, time.Millisecond, 20*time.Millisecond)
	runner2, net2, _, _ := runComposed(t, composedGrid, core.Spec{"naimi", "naimi"}, quickParams(23, 4))
	composedInterPerCS := float64(net2.Counters().InterMessages) / float64(len(runner2.Records()))

	if composedInterPerCS >= flatInterPerCS {
		t.Fatalf("composition did not reduce inter-cluster traffic: composed %.2f vs flat %.2f msgs/CS",
			composedInterPerCS, flatInterPerCS)
	}
}

// TestComposedDeterminism: same seed, same everything.
func TestComposedDeterminism(t *testing.T) {
	r1, n1, _, _ := runComposed(t, smallGrid(), core.Spec{"naimi", "suzuki"}, quickParams(29, 12))
	r2, n2, _, _ := runComposed(t, smallGrid(), core.Spec{"naimi", "suzuki"}, quickParams(29, 12))
	if n1.Counters().Messages != n2.Counters().Messages {
		t.Fatalf("message counts differ: %d vs %d", n1.Counters().Messages, n2.Counters().Messages)
	}
	a, b := r1.Records(), r2.Records()
	if len(a) != len(b) {
		t.Fatal("record counts differ")
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("records diverge at %d: %+v vs %+v", i, a[i], b[i])
		}
	}
}

// TestPropertyComposedRandom drives random compositions, grids and seeds
// through the full stack.
func TestPropertyComposedRandom(t *testing.T) {
	algs := []string{"martin", "naimi", "suzuki", "raymond", "central"}
	f := func(seed int64, ia, ib uint8, rawClusters, rawSize uint8, rawRho uint16) bool {
		spec := core.Spec{Intra: algs[int(ia)%len(algs)], Inter: algs[int(ib)%len(algs)]}
		clusters := int(rawClusters%3) + 2
		size := int(rawSize%3) + 2
		grid := topology.Uniform(clusters, size, time.Millisecond, 15*time.Millisecond)
		params := workload.Params{
			Alpha: 4 * time.Millisecond, Rho: float64(rawRho % 80), Dist: workload.Exponential,
			CSPerProcess: 5, Seed: seed,
		}
		sim := des.New()
		net := simnet.New(sim, grid, simnet.Options{})
		mon := check.NewMonitor(sim)
		runner, err := workload.NewRunner(sim, params, mon)
		if err != nil {
			t.Log(err)
			return false
		}
		d, err := core.BuildComposed(net, grid, spec, runner.Callbacks)
		if err != nil {
			t.Log(err)
			return false
		}
		runner.Bind(d.Apps)
		runner.Start()
		if err := sim.RunCapped(3_000_000); err != nil {
			t.Logf("%v on %dx%d: %v", spec, clusters, size, err)
			return false
		}
		mon.AssertQuiescent()
		if !mon.Ok() {
			t.Logf("%v: %v", spec, mon.Violations()[0])
			return false
		}
		return runner.Done()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

func TestBuildErrors(t *testing.T) {
	grid := smallGrid()
	sim := des.New()
	net := simnet.New(sim, grid, simnet.Options{})
	if _, err := core.BuildComposed(net, grid, core.Spec{"nope", "naimi"}, nil); err == nil {
		t.Error("unknown intra accepted")
	}
	if _, err := core.BuildComposed(net, grid, core.Spec{"naimi", "nope"}, nil); err == nil {
		t.Error("unknown inter accepted")
	}
	if _, err := core.BuildFlat(net, grid, "nope", nil); err == nil {
		t.Error("unknown flat algorithm accepted")
	}
	tiny := topology.Uniform(2, 1, time.Millisecond, time.Millisecond)
	net2 := simnet.New(des.New(), tiny, simnet.Options{})
	if _, err := core.BuildComposed(net2, tiny, core.Spec{"naimi", "naimi"}, nil); err == nil {
		t.Error("single-node clusters accepted (no room for applications)")
	}
}

func TestSpecString(t *testing.T) {
	if got := (core.Spec{"naimi", "martin"}).String(); got != "naimi-martin" {
		t.Errorf("Spec.String() = %q", got)
	}
}

func TestProcessRoutingPanics(t *testing.T) {
	sim := des.New()
	grid := topology.Single(2, time.Millisecond)
	net := simnet.New(sim, grid, simnet.Options{})
	p := core.NewProcess(0, net.Endpoint(0))
	t.Run("bare message", func(t *testing.T) {
		defer func() {
			if recover() == nil {
				t.Error("bare message did not panic")
			}
		}()
		p.Deliver(1, fakeMsg{})
	})
	t.Run("unknown level", func(t *testing.T) {
		defer func() {
			if recover() == nil {
				t.Error("unknown level did not panic")
			}
		}()
		p.Deliver(1, core.Envelope{Level: 3, Inner: fakeMsg{}})
	})
	t.Run("duplicate attach", func(t *testing.T) {
		p.Attach(0, nil)
		defer func() {
			if recover() == nil {
				t.Error("duplicate attach did not panic")
			}
		}()
		p.Attach(0, nil)
	})
}

func TestEnvelopeMetadata(t *testing.T) {
	e := core.Envelope{Level: 1, Inner: fakeMsg{}}
	if e.Kind() != "fake" {
		t.Errorf("Kind = %q", e.Kind())
	}
	if e.Size() != (fakeMsg{}).Size()+1 {
		t.Errorf("Size = %d", e.Size())
	}
}

type fakeMsg struct{}

func (fakeMsg) Kind() string { return "fake" }
func (fakeMsg) Size() int    { return 10 }

// TestCompositionWithPermissionBasedAlgorithm: the Housni-Trehel flavour
// from the paper's related work — a token algorithm inside clusters,
// permission-based Ricart-Agrawala between coordinators — and the reverse.
func TestCompositionWithPermissionBasedAlgorithm(t *testing.T) {
	for _, spec := range []core.Spec{
		{Intra: "raymond", Inter: "ricart-agrawala"}, // Housni-Trehel style
		{Intra: "ricart-agrawala", Inter: "naimi"},
		{Intra: "ricart-agrawala", Inter: "ricart-agrawala"},
	} {
		spec := spec
		t.Run(spec.String(), func(t *testing.T) {
			runComposed(t, smallGrid(), spec, quickParams(41, 10))
		})
	}
}

// TestTraceReconstructsProtocolActivity runs a traced composed deployment
// and checks the recorded events tell a coherent story: coordinator
// transitions occur, inter tokens move between coordinator processes, and
// every send has a matching delivery.
func TestTraceReconstructsProtocolActivity(t *testing.T) {
	grid := smallGrid()
	sim := des.New()
	tr := trace.New(func() time.Duration { return time.Duration(sim.Now()) }, 1<<16)
	net := simnet.New(sim, grid, simnet.Options{Trace: tr})
	mon := check.NewMonitor(sim)
	runner, err := workload.NewRunner(sim, quickParams(43, 10), mon)
	if err != nil {
		t.Fatal(err)
	}
	d, err := core.BuildComposed(net, grid, core.Spec{"naimi", "naimi"}, runner.Callbacks)
	if err != nil {
		t.Fatal(err)
	}
	transitions := 0
	for _, c := range d.Coordinators {
		c := c
		c.SetObserver(func(from, to core.CoordinatorState) {
			transitions++
			tr.Record(trace.CoordState, c.ID(), -1, from.String()+"->"+to.String())
		})
	}
	runner.Bind(d.Apps)
	runner.Start()
	if err := sim.RunCapped(2_000_000); err != nil {
		t.Fatal(err)
	}
	if !runner.Done() || !mon.Ok() {
		t.Fatal("run failed")
	}
	if transitions == 0 {
		t.Fatal("no coordinator transitions observed")
	}
	sends := tr.Filter(trace.Send)
	delivers := tr.Filter(trace.Deliver)
	if len(sends) == 0 || len(sends) != len(delivers) {
		t.Fatalf("%d sends vs %d delivers", len(sends), len(delivers))
	}
	// Inter-level (naimi.token between coordinators) traffic must appear,
	// and only between coordinator processes.
	coords := map[mutex.ID]bool{}
	for _, c := range d.Coordinators {
		coords[c.ID()] = true
	}
	interTokens := 0
	for _, e := range delivers {
		if coords[e.From] && coords[e.To] && e.Detail == "naimi.token" {
			interTokens++
		}
	}
	if interTokens == 0 {
		t.Fatal("no inter token movement traced")
	}
	// The dump renders without issue and mentions a transition.
	if !strings.Contains(tr.Dump(), "WAIT_FOR_IN") {
		t.Fatal("dump lacks coordinator transitions")
	}
}

// TestComposedFullMatrix runs every available algorithm at both levels —
// the full pluggability claim of section 3.1, including the extra
// token-based plug-ins and the permission-based Ricart-Agrawala.
func TestComposedFullMatrix(t *testing.T) {
	algs := algorithms.Names()
	grid := topology.Uniform(2, 4, time.Millisecond, 12*time.Millisecond)
	for _, intra := range algs {
		for _, inter := range algs {
			spec := core.Spec{Intra: intra, Inter: inter}
			t.Run(spec.String(), func(t *testing.T) {
				params := workload.Params{
					Alpha: 3 * time.Millisecond, Rho: 12, Dist: workload.Exponential,
					CSPerProcess: 5, Seed: 53,
				}
				runComposed(t, grid, spec, params)
			})
		}
	}
}
