package core_test

import (
	"fmt"
	"testing"
	"time"

	"gridmutex/internal/check"
	"gridmutex/internal/core"
	"gridmutex/internal/des"
	"gridmutex/internal/reliable"
	"gridmutex/internal/simnet"
	"gridmutex/internal/topology"
	"gridmutex/internal/workload"
)

// TestComposedOverLossyFabric runs composed deployments over a simulated
// grid that drops messages, with the reliability layer wrapped around it:
// at both light (5%) and heavy (20%) loss every critical section must
// still be granted, with zero monitor violations. This is the end-to-end
// counterpart of the explorer's targeted drop schedules — random loss at
// scale instead of adversarial single drops.
func TestComposedOverLossyFabric(t *testing.T) {
	specs := []core.Spec{
		{Intra: "naimi", Inter: "martin"},
		{Intra: "suzuki", Inter: "naimi"},
	}
	for _, spec := range specs {
		for _, loss := range []float64{0.05, 0.2} {
			t.Run(fmt.Sprintf("%s/loss=%v", spec, loss), func(t *testing.T) {
				sim := des.New()
				grid := topology.Uniform(2, 3, time.Millisecond, 16*time.Millisecond)
				inner := simnet.New(sim, grid, simnet.Options{Loss: loss, Seed: 11})
				rel := reliable.Wrap(inner, sim, reliable.Options{RTO: 60 * time.Millisecond})

				mon := check.NewMonitor(sim)
				runner, err := workload.NewRunner(sim, workload.Params{
					Alpha: 5 * time.Millisecond, Rho: 15, Dist: workload.Exponential,
					CSPerProcess: 8, Seed: 11,
				}, mon)
				if err != nil {
					t.Fatal(err)
				}
				d, err := core.BuildComposed(rel, grid, spec, runner.Callbacks)
				if err != nil {
					t.Fatal(err)
				}
				runner.Bind(d.Apps)
				runner.Start()
				mon.WatchLiveness(runner.Waiting, runner.Done, 2*time.Second)
				if err := sim.RunCapped(50_000_000); err != nil {
					t.Fatal(err)
				}

				if !runner.Done() {
					t.Fatalf("stalled at %d/%d critical sections: %v",
						len(runner.Records()), runner.ExpectedTotal(), mon.Violations())
				}
				if got, want := len(runner.Records()), runner.ExpectedTotal(); got != want {
					t.Fatalf("granted %d critical sections, want %d", got, want)
				}
				mon.AssertQuiescent()
				if !mon.Ok() {
					t.Fatalf("monitor violations: %v", mon.Violations())
				}
				dropped := inner.Counters().Dropped
				if dropped == 0 {
					t.Fatalf("network dropped nothing at loss=%v; the test is vacuous", loss)
				}
				t.Logf("completed %d CS over %d dropped messages (%d retransmits)",
					len(runner.Records()), dropped, rel.Stats().Retransmits)
			})
		}
	}
}
