package core

import (
	"testing"

	"gridmutex/internal/mutex"
)

// stubInstance is a scripted mutex.Instance recording calls, with
// synchronous callbacks triggered by the test.
type stubInstance struct {
	cbs      mutex.Callbacks
	requests int
	releases int
	pending  bool
	holds    bool
	state    mutex.State
	// grantOnRequest immediately acquires when Request is called
	// (models the coordinator being the idle initial holder).
	grantOnRequest bool
	// stickyPending keeps pending set across Release (models a stream
	// of local requests arriving faster than they are served).
	stickyPending bool
}

func (s *stubInstance) Request() {
	s.requests++
	s.state = mutex.Req
	if s.grantOnRequest {
		s.acquire()
	}
}

func (s *stubInstance) acquire() {
	s.state = mutex.InCS
	s.holds = true
	if s.cbs.OnAcquire != nil {
		s.cbs.OnAcquire()
	}
}

func (s *stubInstance) Release() {
	s.releases++
	s.state = mutex.NoReq
	s.holds = false
	if !s.stickyPending {
		s.pending = false
	}
}

func (s *stubInstance) Deliver(mutex.ID, mutex.Message) {}
func (s *stubInstance) HasPending() bool                { return s.pending }
func (s *stubInstance) HoldsToken() bool                { return s.holds }
func (s *stubInstance) State() mutex.State              { return s.state }

// signalPending marks a pending request and fires the callback, as an
// algorithm would.
func (s *stubInstance) signalPending() {
	s.pending = true
	if s.cbs.OnPending != nil {
		s.cbs.OnPending()
	}
}

func newWiredCoordinator(t *testing.T) (*Coordinator, *stubInstance, *stubInstance) {
	t.Helper()
	c := NewCoordinator(7)
	intra := &stubInstance{grantOnRequest: true}
	inter := &stubInstance{}
	intra.cbs = c.IntraCallbacks()
	inter.cbs = c.InterCallbacks()
	c.Start(intra, inter)
	if c.State() != Out {
		t.Fatalf("after boot state = %v, want OUT", c.State())
	}
	return c, intra, inter
}

func TestCoordinatorBootAcquiresIntraToken(t *testing.T) {
	c, intra, inter := newWiredCoordinator(t)
	if intra.requests != 1 {
		t.Errorf("boot issued %d intra requests, want 1", intra.requests)
	}
	if inter.requests != 0 {
		t.Errorf("boot issued %d inter requests, want 0", inter.requests)
	}
	if c.ID() != 7 {
		t.Errorf("ID = %d, want 7", c.ID())
	}
}

// TestFullCycle drives OUT -> WAIT_FOR_IN -> IN -> WAIT_FOR_OUT -> OUT,
// the automaton of figure 1(b).
func TestFullCycle(t *testing.T) {
	c, intra, inter := newWiredCoordinator(t)

	// A local application request arrives while the coordinator holds
	// the intra token.
	intra.signalPending()
	if c.State() != WaitForIn {
		t.Fatalf("after intra pending: %v, want WAIT_FOR_IN", c.State())
	}
	if inter.requests != 1 {
		t.Fatalf("inter requests = %d, want 1", inter.requests)
	}
	// Still holding the intra token while waiting (Intra = CS).
	if !intra.holds {
		t.Fatal("intra token released before the inter token arrived")
	}

	// The inter token arrives.
	inter.acquire()
	if c.State() != In {
		t.Fatalf("after inter acquire: %v, want IN", c.State())
	}
	if intra.releases != 1 {
		t.Fatalf("intra releases = %d, want 1 (token handed to the application)", intra.releases)
	}

	// Another cluster asks for the inter token. The stub grants the
	// reclaim synchronously, so WAIT_FOR_OUT is transient and the
	// coordinator lands in OUT with the inter token released.
	inter.signalPending()
	if intra.requests != 2 {
		t.Fatalf("intra requests = %d, want 2 (reclaim)", intra.requests)
	}
	if c.State() != Out {
		t.Fatalf("after reclaim: %v, want OUT", c.State())
	}
	if inter.releases != 1 {
		t.Fatalf("inter releases = %d, want 1", inter.releases)
	}
	st := c.Stats()
	if st.InterAcquisitions != 1 || st.InterHandoffs != 1 {
		t.Fatalf("stats = %+v, want 1 acquisition and 1 handoff", st)
	}
}

// TestPendingLocalRequestsAfterHandoff: applications queued behind the
// coordinator's reclaim trigger a fresh inter acquisition right after the
// handoff.
func TestPendingLocalRequestsAfterHandoff(t *testing.T) {
	c, intra, inter := newWiredCoordinator(t)
	intra.signalPending()
	inter.acquire() // IN
	inter.signalPending()
	// While the coordinator reclaims, a local app queues behind it.
	// (The stub granted the reclaim synchronously; make pending visible
	// before the grant by setting it under grantOnRequest=false.)
	if c.State() != Out {
		t.Fatalf("state %v", c.State())
	}
	// New local request after handoff.
	intra.signalPending()
	if c.State() != WaitForIn {
		t.Fatalf("state %v, want WAIT_FOR_IN for the queued local request", c.State())
	}
	if inter.requests != 2 {
		t.Fatalf("inter requests = %d, want 2", inter.requests)
	}
}

// TestReclaimSeesQueuedLocalsAtAcquire: when the intra reclaim completes
// and local requests are already queued, the coordinator re-requests the
// inter token immediately (the HasPending check in onIntraAcquire).
func TestReclaimSeesQueuedLocalsAtAcquire(t *testing.T) {
	c := NewCoordinator(3)
	intra := &stubInstance{}
	inter := &stubInstance{}
	intra.cbs = c.IntraCallbacks()
	inter.cbs = c.InterCallbacks()
	intra.grantOnRequest = true
	c.Start(intra, inter)

	intra.signalPending()
	inter.acquire() // IN
	// Before the inter pending arrives, flip the intra stub to manual
	// grants so we can interleave.
	intra.grantOnRequest = false
	inter.signalPending() // WAIT_FOR_OUT, reclaim issued
	if c.State() != WaitForOut {
		t.Fatalf("state %v", c.State())
	}
	// A local app queues behind the reclaim.
	intra.pending = true
	// Reclaim completes.
	intra.acquire()
	if c.State() != WaitForIn {
		t.Fatalf("state %v, want WAIT_FOR_IN (queued local detected at acquire)", c.State())
	}
	if inter.releases != 1 {
		t.Fatalf("inter releases = %d, want 1", inter.releases)
	}
	if inter.requests != 2 {
		t.Fatalf("inter requests = %d, want 2", inter.requests)
	}
}

// TestSpuriousPendingNudgesAreSafe: OnPending may fire spuriously; the
// automaton must not double-request.
func TestSpuriousPendingNudges(t *testing.T) {
	c, intra, inter := newWiredCoordinator(t)
	intra.signalPending()
	intra.signalPending() // duplicate nudge in WAIT_FOR_IN
	if inter.requests != 1 {
		t.Fatalf("inter requests = %d after duplicate nudges, want 1", inter.requests)
	}
	inter.acquire()
	inter.signalPending()
	// The stub reclaim completed synchronously; repeat nudges while OUT
	// with no pending must do nothing.
	intra.pending = false
	inter.pending = false
	c.onIntraPending()
	c.onInterPending()
	if c.State() != Out {
		t.Fatalf("state %v after no-op nudges, want OUT", c.State())
	}
}

func TestCoordinatorPanics(t *testing.T) {
	t.Run("double start", func(t *testing.T) {
		c, intra, inter := newWiredCoordinator(t)
		defer func() {
			if recover() == nil {
				t.Error("double Start did not panic")
			}
		}()
		c.Start(intra, inter)
	})
	t.Run("nil instances", func(t *testing.T) {
		c := NewCoordinator(1)
		defer func() {
			if recover() == nil {
				t.Error("nil Start did not panic")
			}
		}()
		c.Start(nil, nil)
	})
	t.Run("unexpected inter acquire", func(t *testing.T) {
		_, _, inter := newWiredCoordinator(t)
		defer func() {
			if recover() == nil {
				t.Error("inter acquire in OUT did not panic")
			}
		}()
		inter.acquire()
	})
}

func TestCoordinatorStateString(t *testing.T) {
	want := map[CoordinatorState]string{
		Booting: "BOOTING", Out: "OUT", WaitForIn: "WAIT_FOR_IN",
		In: "IN", WaitForOut: "WAIT_FOR_OUT", CoordinatorState(99): "CoordinatorState(99)",
	}
	for s, w := range want {
		if got := s.String(); got != w {
			t.Errorf("%d.String() = %q, want %q", s, got, w)
		}
	}
}

// TestOnlyOneClusterInOrWaitForOut is checked structurally here with
// stubs; the end-to-end variant lives in build_test.go.
func TestInterCSExclusivityInvariantDoc(t *testing.T) {
	// IN and WAIT_FOR_OUT both correspond to Inter = CS; the inter
	// algorithm's safety property makes them exclusive across
	// coordinators. Nothing to execute with stubs — the invariant is
	// asserted over real runs in TestComposedInvariant.
}

// TestLocalBiasServesLocalsBeforeHandoff: with SetLocalBias(2), queued
// local requests get two extra serving rounds before the inter token is
// released.
func TestLocalBiasServesLocalsBeforeHandoff(t *testing.T) {
	c := NewCoordinator(5)
	intra := &stubInstance{grantOnRequest: true}
	inter := &stubInstance{}
	intra.cbs = c.IntraCallbacks()
	inter.cbs = c.InterCallbacks()
	c.SetLocalBias(2)
	c.Start(intra, inter)

	intra.signalPending()
	inter.acquire() // IN
	// Remote cluster asks; locals keep the intra queue non-empty, so the
	// reclaim loops through two bias rounds before handing off.
	intra.stickyPending = true
	intra.pending = true
	inter.signalPending()
	// Each grantOnRequest reclaim immediately re-acquires: 1 initial
	// reclaim + 2 bias rounds = 3 intra requests beyond boot and the
	// releases to match; then the handoff happens despite pending locals.
	if inter.releases != 1 {
		t.Fatalf("inter releases = %d, want 1 (handoff after bias budget)", inter.releases)
	}
	if got := c.Stats().BiasRounds; got != 2 {
		t.Fatalf("BiasRounds = %d, want 2", got)
	}
	// 1 boot + 1 reclaim + 2 bias re-requests.
	if intra.requests != 4 {
		t.Fatalf("intra requests = %d, want 4", intra.requests)
	}
	// After the handoff the pending locals trigger a fresh inter request.
	if c.State() != WaitForIn {
		t.Fatalf("state %v, want WAIT_FOR_IN", c.State())
	}
}

// TestLocalBiasStopsEarlyWhenQuiescent: bias rounds only run while locals
// are actually pending.
func TestLocalBiasStopsEarlyWhenQuiescent(t *testing.T) {
	c := NewCoordinator(5)
	intra := &stubInstance{grantOnRequest: true}
	inter := &stubInstance{}
	intra.cbs = c.IntraCallbacks()
	inter.cbs = c.InterCallbacks()
	c.SetLocalBias(8)
	c.Start(intra, inter)

	intra.signalPending()
	inter.acquire()
	intra.pending = false // locals done by the time the reclaim lands
	inter.signalPending()
	if got := c.Stats().BiasRounds; got != 0 {
		t.Fatalf("BiasRounds = %d, want 0", got)
	}
	if inter.releases != 1 || c.State() != Out {
		t.Fatalf("handoff missing: releases=%d state=%v", inter.releases, c.State())
	}
}

func TestSetLocalBiasPanics(t *testing.T) {
	t.Run("negative", func(t *testing.T) {
		c := NewCoordinator(1)
		defer func() {
			if recover() == nil {
				t.Error("no panic")
			}
		}()
		c.SetLocalBias(-1)
	})
	t.Run("after start", func(t *testing.T) {
		c, _, _ := newWiredCoordinator(t)
		defer func() {
			if recover() == nil {
				t.Error("no panic")
			}
		}()
		c.SetLocalBias(1)
	})
}
