package core

import (
	"fmt"

	"gridmutex/internal/algorithms"
	"gridmutex/internal/mutex"
	"gridmutex/internal/topology"
)

// BuildMultiLevel assembles the generalized hierarchy the paper's
// conclusion sketches: level 0 runs algs[0] inside every cluster, level 1
// runs algs[1] among cluster coordinators grouped groupSizes[0] clusters to
// a region, level 2 runs algs[2] among region coordinators, and so on; the
// final algorithm spans the top-level coordinators. len(algs) must be
// len(groupSizes)+2; BuildMultiLevel with no group sizes is exactly the
// paper's two-level architecture.
//
// Every group's coordinator is a fresh logical process co-located on the
// physical node of its first child's coordinator (intermediate coordinators
// are pure bridges, so co-location only affects latency, which is what a
// real deployment would do too). The same bridge automaton runs at every
// boundary: a coordinator at level k is the initial holder of its group's
// level-k instance and a member of the enclosing level-(k+1) instance.
func BuildMultiLevel(net mutex.Fabric, grid *topology.Grid, algs []string, groupSizes []int, appCB CallbackFunc, coordOpts ...func(*Coordinator)) (*Deployment, error) {
	factories := make([]mutex.Factory, len(algs))
	for i, name := range algs {
		f, err := algorithms.Factory(name)
		if err != nil {
			return nil, fmt.Errorf("core: level %d: %w", i, err)
		}
		factories[i] = f
	}
	return BuildMultiLevelWith(net, grid, factories, groupSizes, appCB, coordOpts...)
}

// BuildMultiLevelWith is BuildMultiLevel with explicit factories instead of
// registry names — the hook that lets wrappers (such as the adaptive inter
// algorithm) slot into any hierarchy level.
// Each coordOpt is applied to every coordinator before it starts (e.g.
// (*Coordinator).SetLocalBias via a closure).
func BuildMultiLevelWith(net mutex.Fabric, grid *topology.Grid, factories []mutex.Factory, groupSizes []int, appCB CallbackFunc, coordOpts ...func(*Coordinator)) (*Deployment, error) {
	if len(factories) < 2 {
		return nil, fmt.Errorf("core: hierarchy needs at least 2 levels, got %d", len(factories))
	}
	if len(factories) != len(groupSizes)+2 {
		return nil, fmt.Errorf("core: %d levels need %d group sizes, got %d", len(factories), len(factories)-2, len(groupSizes))
	}
	for i, f := range factories {
		if f == nil {
			return nil, fmt.Errorf("core: nil factory at level %d", i)
		}
	}
	for i, gs := range groupSizes {
		if gs < 1 {
			return nil, fmt.Errorf("core: group size %d at level %d", gs, i+1)
		}
	}

	// The process count is known up front — every topology node plus one
	// fresh coordinator per intermediate group — so the Deployment can
	// carve all Process values out of a single arena slab.
	total := grid.NumNodes()
	for n, i := grid.NumClusters(), 0; i < len(groupSizes); i++ {
		n = (n + groupSizes[i] - 1) / groupSizes[i]
		total += n
	}
	d := &Deployment{}
	d.reserve(total)
	nextID := mutex.ID(grid.NumNodes()) // fresh IDs for intermediate coordinators

	// bridge describes one unit's coordinator: the process that holds
	// the unit's token initially and represents it one level up.
	type bridge struct {
		coord *Coordinator
		proc  *Process
		node  int // physical node, for co-locating parents
		intra mutex.Instance
		inter mutex.Instance
	}

	// Level 0: one unit per cluster, exactly as in the two-level build.
	var units []*bridge
	for c := 0; c < grid.NumClusters(); c++ {
		if grid.ClusterSize(c) < 2 {
			return nil, fmt.Errorf("core: cluster %d has %d nodes; need a coordinator plus at least one application process", c, grid.ClusterSize(c))
		}
		nodes := grid.NodesIn(c)
		members := make([]mutex.ID, len(nodes))
		for i, n := range nodes {
			members[i] = mutex.ID(n)
		}
		coordID := members[0]
		br := &bridge{coord: NewCoordinator(coordID), node: nodes[0]}
		for _, id := range members {
			proc := d.newProcess(id, net.Endpoint(id))
			net.RegisterAt(id, int(id), proc)
			var cbs mutex.Callbacks
			if id == coordID {
				cbs = br.coord.IntraCallbacks()
			} else if appCB != nil {
				cbs = appCB(id)
			}
			inst, err := factories[0](mutex.Config{
				Self: id, Members: members, Holder: coordID,
				Env: proc.Env(0), Callbacks: cbs,
			})
			if err != nil {
				return nil, fmt.Errorf("core: level 0 instance for %d: %w", id, err)
			}
			proc.Attach(0, inst)
			if id == coordID {
				br.proc = proc
				br.intra = inst
			} else {
				d.Apps = append(d.Apps, App{ID: id, Cluster: c, Instance: inst})
			}
		}
		units = append(units, br)
		d.Coordinators = append(d.Coordinators, br.coord)
	}

	// Intermediate levels: group children, add a fresh bridge per group.
	for lvl := 1; lvl <= len(groupSizes); lvl++ {
		size := groupSizes[lvl-1]
		var parents []*bridge
		for start := 0; start < len(units); start += size {
			end := start + size
			if end > len(units) {
				end = len(units)
			}
			children := units[start:end]

			parentID := nextID
			nextID++
			proc := d.newProcess(parentID, net.Endpoint(parentID))
			net.RegisterAt(parentID, children[0].node, proc)
			parent := &bridge{coord: NewCoordinator(parentID), proc: proc, node: children[0].node}

			members := make([]mutex.ID, 0, len(children)+1)
			members = append(members, parentID)
			for _, ch := range children {
				members = append(members, ch.coord.ID())
			}
			// One instance endpoint per member: the parent uses its
			// intra callbacks, children their inter callbacks.
			for _, ch := range children {
				inst, err := factories[lvl](mutex.Config{
					Self: ch.coord.ID(), Members: members, Holder: parentID,
					Env: ch.proc.Env(Level(lvl)), Callbacks: ch.coord.InterCallbacks(),
				})
				if err != nil {
					return nil, fmt.Errorf("core: level %d instance for %d: %w", lvl, ch.coord.ID(), err)
				}
				ch.proc.Attach(Level(lvl), inst)
				ch.inter = inst
			}
			inst, err := factories[lvl](mutex.Config{
				Self: parentID, Members: members, Holder: parentID,
				Env: proc.Env(Level(lvl)), Callbacks: parent.coord.IntraCallbacks(),
			})
			if err != nil {
				return nil, fmt.Errorf("core: level %d instance for %d: %w", lvl, parentID, err)
			}
			proc.Attach(Level(lvl), inst)
			parent.intra = inst

			parents = append(parents, parent)
			d.Coordinators = append(d.Coordinators, parent.coord)
		}
		units = parents
	}

	// Top level: one instance among the remaining bridges, no new
	// coordinator; the first bridge holds the top token initially.
	top := len(factories) - 1
	members := make([]mutex.ID, len(units))
	for i, u := range units {
		members[i] = u.coord.ID()
	}
	for _, u := range units {
		inst, err := factories[top](mutex.Config{
			Self: u.coord.ID(), Members: members, Holder: members[0],
			Env: u.proc.Env(Level(top)), Callbacks: u.coord.InterCallbacks(),
		})
		if err != nil {
			return nil, fmt.Errorf("core: top level instance for %d: %w", u.coord.ID(), err)
		}
		u.proc.Attach(Level(top), inst)
		u.inter = inst
	}

	// Start every coordinator (each boots by acquiring its own unit's
	// token, which it holds initially, so ordering is immaterial). The
	// boot itself is posted to the coordinator's serial context: on live
	// fabrics a permission-based boot broadcasts, and another
	// coordinator's broadcast may already be in this process's mailbox.
	for _, c := range d.Coordinators {
		for _, opt := range coordOpts {
			opt(c)
		}
		// Find the bridge record: every coordinator was stored with
		// its instances at creation; reconstruct from the process.
		proc := d.Procs[c.ID()]
		var intra, inter mutex.Instance
		for lvl := 0; lvl < len(factories); lvl++ {
			if inst := proc.Instance(Level(lvl)); inst != nil {
				if intra == nil {
					intra = inst
				} else {
					inter = inst
				}
			}
		}
		proc.Env(0).Local(func() { c.Start(intra, inter) })
	}
	return d, nil
}
