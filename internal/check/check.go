// Package check implements runtime verification of the mutual exclusion
// properties: safety (at most one process in the critical section at any
// virtual instant) and bookkeeping that lets callers assert liveness (every
// request eventually granted).
package check

import (
	"fmt"
	"time"

	"gridmutex/internal/des"
	"gridmutex/internal/mutex"
)

// Clock is the time source a Monitor stamps its observations with. The DES
// simulator implements it; schedule exploration (internal/explore)
// substitutes a schedule-step counter so violations name the step they
// occurred at.
type Clock interface {
	Now() des.Time
}

// Monitor observes critical section entries and exits in virtual time.
// It is driven from DES event handlers, which run serially, so it needs no
// locking.
type Monitor struct {
	clock      Clock
	sched      *des.Simulator // non-nil only for simulator-backed monitors
	current    mutex.ID
	since      des.Time
	entries    int64
	exits      int64
	violations []string
	// MaxViolations bounds recording so a broken run does not hoard
	// memory; further violations are only counted.
	MaxViolations int
	suppressed    int64

	// Crash-recovery accounting (see Crashed and BeginEpoch).
	crashes    int64
	crashExits int64
	epochs     int64
	crashAt    des.Time
	crashOpen  bool
	latencies  []time.Duration

	// Restart-rejoin accounting (see Restarted and Rejoined).
	restarts   int64
	rejoins    int64
	restartAt  map[mutex.ID]des.Time
	rejoinLats []time.Duration
}

// NewMonitor returns a monitor bound to the simulator's clock.
func NewMonitor(sim *des.Simulator) *Monitor {
	return &Monitor{clock: sim, sched: sim, current: mutex.None, MaxViolations: 64}
}

// NewMonitorWithClock returns a monitor stamping observations with an
// arbitrary clock. WatchLiveness is unavailable on such a monitor (it needs
// a simulator to schedule its ticks); model-checking drivers use
// StepLiveness instead.
func NewMonitorWithClock(c Clock) *Monitor {
	if c == nil {
		panic("check: nil clock")
	}
	return &Monitor{clock: c, current: mutex.None, MaxViolations: 64}
}

// Enter records that id entered the critical section now.
func (m *Monitor) Enter(id mutex.ID) {
	if m.current != mutex.None {
		m.violate("safety: %d entered CS at %v while %d has held it since %v",
			id, m.clock.Now(), m.current, m.since)
	}
	m.current = id
	m.since = m.clock.Now()
	m.entries++
}

// Exit records that id left the critical section now.
func (m *Monitor) Exit(id mutex.ID) {
	if m.current != id {
		m.violate("protocol: %d exited CS at %v but holder is %d", id, m.clock.Now(), m.current)
	}
	m.current = mutex.None
	m.exits++
}

func (m *Monitor) violate(format string, args ...any) {
	if len(m.violations) >= m.MaxViolations {
		m.suppressed++
		return
	}
	m.violations = append(m.violations, fmt.Sprintf(format, args...))
}

// Reportf records an externally detected property violation through the
// monitor's accounting — the hook model-checking drivers
// (internal/explore) use so every violation, theirs or the monitor's own,
// surfaces through one Violations list.
func (m *Monitor) Reportf(format string, args ...any) { m.violate(format, args...) }

// Violations returns the recorded property violations.
func (m *Monitor) Violations() []string {
	out := append([]string(nil), m.violations...)
	if m.suppressed > 0 {
		out = append(out, fmt.Sprintf("... and %d more suppressed violations", m.suppressed))
	}
	return out
}

// Ok reports whether no violation occurred.
func (m *Monitor) Ok() bool { return len(m.violations) == 0 && m.suppressed == 0 }

// Entries returns the number of recorded critical section entries.
func (m *Monitor) Entries() int64 { return m.entries }

// Exits returns the number of recorded critical section exits.
func (m *Monitor) Exits() int64 { return m.exits }

// InCS returns the process currently inside the critical section, or
// mutex.None.
func (m *Monitor) InCS() mutex.ID { return m.current }

// Crashed records that id fail-stopped now. If id was inside the critical
// section the monitor vacates it: a crashed holder leaves the CS by dying,
// and quiescence accounting tracks the missing Exit separately as a crash
// exit. Crashed also opens a recovery-latency sample that the next
// BeginEpoch closes.
func (m *Monitor) Crashed(id mutex.ID) {
	m.crashes++
	if m.current == id {
		m.current = mutex.None
		m.crashExits++
	}
	m.crashAt = m.clock.Now()
	m.crashOpen = true
}

// BeginEpoch records a token-regeneration epoch for the named group.
// Safety inside the new epoch is still asserted by Enter/Exit — the crashed
// holder was vacated by Crashed, so two live processes overlapping in the
// CS trips the safety check exactly as without recovery; regeneration never
// legitimizes a double token. The first epoch after a crash closes the
// recovery-latency sample opened by Crashed.
func (m *Monitor) BeginEpoch(group string) {
	_ = group // groups are distinguished by the caller's tracing, not here
	m.epochs++
	if m.crashOpen {
		m.latencies = append(m.latencies, time.Duration(m.clock.Now()-m.crashAt))
		m.crashOpen = false
	}
}

// Restarted records that id's node came back up now. The restarted
// process is amnesiac and not yet a member of its groups, so nothing in
// the entry/exit accounting changes; Restarted opens a rejoin-latency
// sample that Rejoined closes. Post-rejoin critical-section entries are
// ordinary acquires — the crashed holder was already vacated by Crashed,
// so re-entry needs no special casing.
func (m *Monitor) Restarted(id mutex.ID) {
	m.restarts++
	if m.restartAt == nil {
		m.restartAt = make(map[mutex.ID]des.Time)
	}
	m.restartAt[id] = m.clock.Now()
}

// Rejoined records that a restarted id was re-admitted to its group —
// closing the rejoin-latency sample opened by Restarted. Extra rejoin
// notifications (the same process rejoins several groups) are counted
// but sample only the first, which is the one that makes the process
// serviceable again.
func (m *Monitor) Rejoined(id mutex.ID) {
	m.rejoins++
	if at, ok := m.restartAt[id]; ok {
		m.rejoinLats = append(m.rejoinLats, time.Duration(m.clock.Now()-at))
		delete(m.restartAt, id)
	}
}

// Restarts returns how many node restarts were recorded.
func (m *Monitor) Restarts() int64 { return m.restarts }

// Rejoins returns how many group re-admissions were recorded.
func (m *Monitor) Rejoins() int64 { return m.rejoins }

// RejoinLatencies returns one restart-to-readmission delay per restarted
// process that rejoined, in rejoin order.
func (m *Monitor) RejoinLatencies() []time.Duration {
	return append([]time.Duration(nil), m.rejoinLats...)
}

// Crashes returns how many crashes were recorded.
func (m *Monitor) Crashes() int64 { return m.crashes }

// CrashExits returns how many critical sections ended by their holder
// crashing rather than exiting.
func (m *Monitor) CrashExits() int64 { return m.crashExits }

// Epochs returns how many token-regeneration epochs were recorded.
func (m *Monitor) Epochs() int64 { return m.epochs }

// RecoveryLatencies returns one crash-to-first-regeneration delay per
// crash that was followed by an epoch, in crash order.
func (m *Monitor) RecoveryLatencies() []time.Duration {
	return append([]time.Duration(nil), m.latencies...)
}

// AssertQuiescent records a violation unless the critical section is free
// and entries match exits — call it after a run drains. Critical sections
// ended by a crash (see Crashed) count as exited: the holder left by dying.
func (m *Monitor) AssertQuiescent() {
	if m.current != mutex.None {
		m.violate("quiescence: %d still in CS at %v", m.current, m.clock.Now())
	}
	if m.entries != m.exits+m.crashExits {
		m.violate("quiescence: %d entries but %d exits and %d crash exits", m.entries, m.exits, m.crashExits)
	}
}

// WatchLiveness installs a stall detector. Every interval of virtual time
// it samples waiting() — processes with an ungranted request — and flags a
// liveness violation when a full interval passes with someone waiting at
// both of its ends and not a single critical section entry in between:
// grants normally occur within fractions of an interval, so system-wide
// silence across one while requests wait means deadlock. (Requiring
// waiting>0 at both ends keeps a request that was issued just before a
// tick and granted just after it from counting as silence.)
//
// The watchdog stops rescheduling once done() reports true or a stall has
// been recorded, so it never keeps an otherwise-drained simulation alive.
func (m *Monitor) WatchLiveness(waiting func() int, done func() bool, interval time.Duration) {
	if waiting == nil || done == nil {
		panic("check: nil watchdog callback")
	}
	if interval <= 0 {
		panic("check: non-positive watchdog interval")
	}
	if m.sched == nil {
		panic("check: WatchLiveness needs a simulator-backed monitor (use StepLiveness with NewMonitorWithClock)")
	}
	var tick func()
	lastEntries := m.entries
	armed := false
	tick = func() {
		if done() {
			return // workload complete; let the simulation drain
		}
		w := waiting()
		if armed && w > 0 && m.entries == lastEntries {
			m.violate("liveness: %d requests waiting but no CS entry between %v and %v",
				w, des.Time(m.clock.Now())-interval, m.clock.Now())
			return
		}
		armed = w > 0
		lastEntries = m.entries
		m.sched.After(interval, tick)
	}
	m.sched.After(interval, tick)
}

// StepLiveness is the bounded-liveness assertion of schedule exploration
// (internal/explore): once the system has no messages in flight, every
// waiting request must be granted within K further schedule steps. With no
// message pending, the only remaining transitions are local (requests,
// releases and the grants they cascade), of which a finite bounded number
// exists between any two deliveries — K consecutive quiet steps with a
// request still waiting therefore mean the request will never be granted
// (a lost token, a forgotten queue entry).
//
// Feed every schedule step to Step; a critical section entry or a message
// appearing in flight resets the counter. The first trip records one
// violation on the monitor and latches.
type StepLiveness struct {
	m           *Monitor
	k           int
	lastEntries int64
	quiet       int
	tripped     bool
}

// NewStepLiveness returns a step-bounded liveness assertion recording
// through m. k is the number of quiet steps tolerated.
func NewStepLiveness(m *Monitor, k int) *StepLiveness {
	if m == nil {
		panic("check: nil monitor")
	}
	if k <= 0 {
		panic("check: non-positive liveness bound")
	}
	return &StepLiveness{m: m, k: k}
}

// Step records one schedule step with the current number of waiting
// requests and in-flight messages.
func (s *StepLiveness) Step(waiting, inflight int) {
	if s.tripped {
		return
	}
	if s.m.Entries() != s.lastEntries {
		s.lastEntries = s.m.Entries()
		s.quiet = 0
	}
	if waiting == 0 || inflight > 0 {
		s.quiet = 0
		return
	}
	s.quiet++
	if s.quiet > s.k {
		s.tripped = true
		s.m.Reportf("liveness: %d requests waiting with no message in flight for %d schedule steps (bound %d)",
			waiting, s.quiet, s.k)
	}
}

// Tripped reports whether the bound has been exceeded.
func (s *StepLiveness) Tripped() bool { return s.tripped }
