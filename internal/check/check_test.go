package check

import (
	"strings"
	"testing"
	"time"

	"gridmutex/internal/des"
	"gridmutex/internal/mutex"
)

func TestCleanRun(t *testing.T) {
	sim := des.New()
	m := NewMonitor(sim)
	for i := 0; i < 5; i++ {
		id := i
		sim.At(des.Time(i)*time.Second, func() { m.Enter(mutex.ID(id)) })
		sim.At(des.Time(i)*time.Second+500*time.Millisecond, func() { m.Exit(mutex.ID(id)) })
	}
	sim.Run()
	m.AssertQuiescent()
	if !m.Ok() {
		t.Fatalf("violations on clean run: %v", m.Violations())
	}
	if m.Entries() != 5 || m.Exits() != 5 {
		t.Fatalf("entries/exits = %d/%d", m.Entries(), m.Exits())
	}
}

func TestOverlapDetected(t *testing.T) {
	sim := des.New()
	m := NewMonitor(sim)
	m.Enter(1)
	m.Enter(2)
	if m.Ok() {
		t.Fatal("overlap not detected")
	}
	v := m.Violations()
	if len(v) != 1 || !strings.Contains(v[0], "safety") {
		t.Fatalf("violations = %v", v)
	}
}

func TestWrongExiterDetected(t *testing.T) {
	sim := des.New()
	m := NewMonitor(sim)
	m.Enter(1)
	m.Exit(2)
	if m.Ok() {
		t.Fatal("wrong exiter not detected")
	}
	if !strings.Contains(m.Violations()[0], "protocol") {
		t.Fatalf("violations = %v", m.Violations())
	}
}

func TestQuiescenceViolations(t *testing.T) {
	sim := des.New()
	m := NewMonitor(sim)
	m.Enter(1)
	m.AssertQuiescent()
	if m.Ok() {
		t.Fatal("non-quiescent state accepted")
	}
	found := false
	for _, v := range m.Violations() {
		if strings.Contains(v, "quiescence") {
			found = true
		}
	}
	if !found {
		t.Fatalf("no quiescence violation recorded: %v", m.Violations())
	}
}

func TestInCS(t *testing.T) {
	sim := des.New()
	m := NewMonitor(sim)
	if m.InCS() != -1 {
		t.Fatal("fresh monitor reports an occupant")
	}
	m.Enter(3)
	if m.InCS() != 3 {
		t.Fatalf("InCS = %d", m.InCS())
	}
	m.Exit(3)
	if m.InCS() != -1 {
		t.Fatal("occupant not cleared on exit")
	}
}

func TestViolationCap(t *testing.T) {
	sim := des.New()
	m := NewMonitor(sim)
	m.MaxViolations = 3
	for i := 0; i < 10; i++ {
		m.Enter(1)
		m.Enter(2) // violation each time; also leaves current=2
		m.Exit(2)
		m.Exit(1) // wrong exiter half the time -> more violations
	}
	v := m.Violations()
	if len(v) != 4 { // 3 recorded + 1 summary line
		t.Fatalf("%d violation lines, want 3 + summary", len(v))
	}
	if !strings.Contains(v[3], "suppressed") {
		t.Fatalf("last line should summarize suppression: %q", v[3])
	}
	if m.Ok() {
		t.Fatal("Ok with suppressed violations")
	}
}

func TestWatchdogQuietOnProgress(t *testing.T) {
	sim := des.New()
	m := NewMonitor(sim)
	remaining := 5
	m.WatchLiveness(func() int { return remaining }, func() bool { return remaining == 0 }, 10*time.Millisecond)
	// A grant every 8ms: always progress between checks.
	for i := 1; i <= 5; i++ {
		id := mutex.ID(i)
		sim.At(des.Time(i)*8*time.Millisecond, func() {
			m.Enter(id)
			m.Exit(id)
			remaining--
		})
	}
	sim.Run()
	if !m.Ok() {
		t.Fatalf("watchdog flagged a live run: %v", m.Violations())
	}
}

// TestWatchdogQuietOnIdleTail: a long idle gap with nobody waiting (the
// exponential think-time tail) must not trip the detector.
func TestWatchdogQuietOnIdleTail(t *testing.T) {
	sim := des.New()
	m := NewMonitor(sim)
	waiting := 0
	done := false
	m.WatchLiveness(func() int { return waiting }, func() bool { return done }, 10*time.Millisecond)
	// One early grant, a 60ms idle gap (6 intervals, waiting = 0), then
	// a late request-and-grant pair.
	sim.At(time.Millisecond, func() { m.Enter(1); m.Exit(1) })
	sim.At(61*time.Millisecond, func() { waiting = 1 })
	sim.At(64*time.Millisecond, func() { m.Enter(2); m.Exit(2); waiting = 0; done = true })
	sim.Run()
	if !m.Ok() {
		t.Fatalf("watchdog flagged an idle tail: %v", m.Violations())
	}
}

func TestWatchdogDetectsStall(t *testing.T) {
	sim := des.New()
	m := NewMonitor(sim)
	m.WatchLiveness(func() int { return 3 }, func() bool { return false }, 10*time.Millisecond)
	// One early grant, then silence forever.
	sim.At(time.Millisecond, func() { m.Enter(1); m.Exit(1) })
	sim.Run()
	if m.Ok() {
		t.Fatal("stall not detected")
	}
	found := false
	for _, v := range m.Violations() {
		if strings.Contains(v, "liveness") {
			found = true
		}
	}
	if !found {
		t.Fatalf("no liveness violation: %v", m.Violations())
	}
	// The watchdog must have stopped: the simulation drained.
	if sim.Pending() != 0 {
		t.Fatal("watchdog kept the simulation alive")
	}
}

func TestWatchdogStopsWhenDone(t *testing.T) {
	sim := des.New()
	m := NewMonitor(sim)
	m.WatchLiveness(func() int { return 0 }, func() bool { return true }, time.Millisecond)
	sim.Run()
	if !m.Ok() || sim.Pending() != 0 {
		t.Fatal("watchdog misbehaved on an already-done workload")
	}
}

// TestWatchdogNeverGranted: requests outstanding from the first instant
// and not a single grant, ever — the pure starvation case, where
// lastEntries never moves off zero. The watchdog must flag it on its
// second tick and then let the simulation drain.
func TestWatchdogNeverGranted(t *testing.T) {
	sim := des.New()
	m := NewMonitor(sim)
	m.WatchLiveness(func() int { return 2 }, func() bool { return false }, 10*time.Millisecond)
	sim.Run()
	if m.Entries() != 0 {
		t.Fatalf("test expects zero grants, got %d", m.Entries())
	}
	v := m.Violations()
	if len(v) != 1 || !strings.Contains(v[0], "liveness") {
		t.Fatalf("violations = %v, want exactly one liveness stall", v)
	}
	// Armed on the first tick, flagged on the second: the reported window
	// must be [interval, 2*interval].
	if !strings.Contains(v[0], "between 10ms and 20ms") {
		t.Fatalf("stall window misreported: %q", v[0])
	}
	if sim.Pending() != 0 {
		t.Fatal("watchdog kept rescheduling after flagging the stall")
	}
}

// TestAllViolationsSuppressed: with MaxViolations = 0 nothing is recorded,
// only counted — yet the monitor must still fail the run and report how
// much it swallowed.
func TestAllViolationsSuppressed(t *testing.T) {
	sim := des.New()
	m := NewMonitor(sim)
	m.MaxViolations = 0
	m.Enter(1)
	m.Enter(2) // safety violation, suppressed
	m.Exit(3)  // protocol violation, suppressed
	m.Exit(1)  // protocol violation (CS already empty), suppressed
	if m.Ok() {
		t.Fatal("Ok() true with suppressed violations")
	}
	v := m.Violations()
	if len(v) != 1 {
		t.Fatalf("violations = %v, want only the suppression summary", v)
	}
	if !strings.Contains(v[0], "3 more suppressed") {
		t.Fatalf("suppression count wrong: %q", v[0])
	}
}

// TestQuiescenceEntryExitMismatch: the CS is free but the books do not
// balance (an exit without a matching entry). AssertQuiescent must report
// the count mismatch and only that — the occupancy check has nothing to
// say.
func TestQuiescenceEntryExitMismatch(t *testing.T) {
	sim := des.New()
	m := NewMonitor(sim)
	m.Enter(1)
	m.Exit(1)
	m.Exit(1) // spurious second exit: protocol violation, exits = 2
	before := len(m.Violations())
	m.AssertQuiescent()
	added := m.Violations()[before:]
	if len(added) != 1 {
		t.Fatalf("AssertQuiescent added %v, want exactly one violation", added)
	}
	if !strings.Contains(added[0], "1 entries but 2 exits") {
		t.Fatalf("mismatch misreported: %q", added[0])
	}
	if strings.Contains(added[0], "still in CS") {
		t.Fatalf("occupancy violation on a free CS: %q", added[0])
	}
}

func TestWatchdogPanics(t *testing.T) {
	m := NewMonitor(des.New())
	for name, f := range map[string]func(){
		"nil counter":   func() { m.WatchLiveness(nil, func() bool { return true }, time.Second) },
		"nil done":      func() { m.WatchLiveness(func() int { return 0 }, nil, time.Second) },
		"zero interval": func() { m.WatchLiveness(func() int { return 0 }, func() bool { return true }, 0) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s did not panic", name)
				}
			}()
			f()
		}()
	}
}
