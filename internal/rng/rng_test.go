package rng

import (
	"math/rand"
	"testing"
)

// TestStreamMatchesStdlib pins the package's whole reason to exist: the
// generator must be bit-identical to math/rand for every seed, across
// the derived distributions the simulator actually draws from.
func TestStreamMatchesStdlib(t *testing.T) {
	for _, seed := range []int64{0, 1, -1, 42, 89482311, -1 << 62, 1<<63 - 1} {
		ref := rand.New(rand.NewSource(seed))
		got := New(seed)
		for i := 0; i < 2000; i++ {
			switch i % 4 {
			case 0:
				if g, w := got.Int63(), ref.Int63(); g != w {
					t.Fatalf("seed %d draw %d: Int63 = %d, want %d", seed, i, g, w)
				}
			case 1:
				if g, w := got.Uint64(), ref.Uint64(); g != w {
					t.Fatalf("seed %d draw %d: Uint64 = %d, want %d", seed, i, g, w)
				}
			case 2:
				if g, w := got.Float64(), ref.Float64(); g != w {
					t.Fatalf("seed %d draw %d: Float64 = %v, want %v", seed, i, g, w)
				}
			case 3:
				if g, w := got.ExpFloat64(), ref.ExpFloat64(); g != w {
					t.Fatalf("seed %d draw %d: ExpFloat64 = %v, want %v", seed, i, g, w)
				}
			}
		}
	}
}

// TestCachedPathMatchesFresh verifies the second request for a seed (the
// memmove-from-cache path) yields the same stream as the first (the
// seed-from-scratch path), and that the generators are independent.
func TestCachedPathMatchesFresh(t *testing.T) {
	first := New(7001)
	var want [100]int64
	for i := range want {
		want[i] = first.Int63()
	}
	second := New(7001)
	for i := range want {
		if g := second.Int63(); g != want[i] {
			t.Fatalf("cached draw %d: %d, want %d", i, g, want[i])
		}
	}
	// Draining first must not have advanced second and vice versa.
	third := New(7001)
	if g := third.Int63(); g != want[0] {
		t.Fatalf("third generator not pristine: %d, want %d", g, want[0])
	}
}

func BenchmarkNewFresh(b *testing.B) {
	for i := 0; i < b.N; i++ {
		// Distinct seeds defeat the cache; measures full seeding. The
		// cache cap keeps the map bounded during long runs.
		New(int64(i) | 1<<50)
	}
}

func BenchmarkNewCached(b *testing.B) {
	New(99)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		New(99)
	}
}
