package harness

// The grid-scale sweep makes memory a first-class scaling axis: it runs a
// k-level composition on synthetic hierarchical trees (topology.NewTree)
// while N sweeps whole decades, and reports both the deterministic
// simulation outcomes (grants, events, messages per CS) and the
// non-deterministic machine measurements (bytes per process, peak heap,
// wall-clock throughput). The two kinds of output are kept strictly
// apart: Table renders only the deterministic columns, so committed
// figures stay byte-identical across machines, while the memory samples
// travel separately into benchmark records (gridbench -json).
//
// The point of the experiment is the memory model of DESIGN.md §14: with
// cluster-factored latency tables (O(C²+N) instead of O(N²)), sparse
// token-state vectors and arena-backed process bookkeeping, bytes per
// process should stay near-flat while N grows from 10² to 10⁵.

import (
	"fmt"
	"runtime"
	"strings"
	"time"

	"gridmutex/internal/check"
	"gridmutex/internal/core"
	"gridmutex/internal/des"
	"gridmutex/internal/simnet"
	"gridmutex/internal/topology"
	"gridmutex/internal/workload"
)

// gridScaleLeaf is the nodes per leaf cluster of the sweep's trees: one
// coordinator plus gridScaleLeaf-1 application processes.
const gridScaleLeaf = 10

// The sweep's latency model: leaf clusters exchange messages at
// gridScaleLeafRTT, root crossings cost gridScaleRootRTT, and each level
// below the root halves the RTT down to gridScaleMinLevelRTT so
// MinInterOneWay stays positive and meaningful.
const (
	gridScaleLeafRTT     = time.Millisecond
	gridScaleRootRTT     = 32 * time.Millisecond
	gridScaleMinLevelRTT = 2 * time.Millisecond
)

// GridScaleMem is the machine-dependent measurement of one sweep point.
// Nothing in here is deterministic — it never enters figure text.
type GridScaleMem struct {
	// Procs is the denominator: every simulated process (applications,
	// cluster coordinators and intermediate bridges).
	Procs int
	// BytesPerProc is the settled live heap the deployment added, divided
	// by Procs: (live after build − live before build) / Procs, both ends
	// measured after a forced collection.
	BytesPerProc float64
	// LiveBytes is the absolute settled live heap after the build.
	LiveBytes uint64
	// PeakBytes is the heap space obtained from the OS by the end of the
	// run (runtime.MemStats.HeapSys) — a peak-footprint proxy.
	PeakBytes uint64
	// WallMS and EventsPerSec time the simulation pass alone (build
	// excluded).
	WallMS       float64
	EventsPerSec float64
}

// GridScalePoint is one cell of the grid-scale sweep. All fields except
// Mem are deterministic functions of (N, seed).
type GridScalePoint struct {
	// N is the total topology node count; Clusters and Levels describe
	// the tree and the composition depth run on it.
	N, Clusters, Levels int
	// Apps is the number of application processes (N minus one
	// coordinator node per cluster).
	Apps int
	// Grants counts critical sections entered; Events the DES events
	// processed.
	Grants, Events int64
	// TotalMsgsPerCS and InterMsgsPerCS are sent-message counts
	// normalized per critical section.
	TotalMsgsPerCS, InterMsgsPerCS float64
	// Mem is the machine-dependent measurement (excluded from Table).
	Mem GridScaleMem
}

// GridScaleResult aggregates the sweep.
type GridScaleResult struct {
	Points []GridScalePoint
}

// GridScaleNs returns the swept N axis: two decades at quick scale, four
// at paper scale (the 10⁵ point is the grid-scale acceptance bar).
func GridScaleNs(paper bool) []int {
	if paper {
		return []int{100, 1_000, 10_000, 100_000}
	}
	return []int{100, 1_000}
}

// gridScaleTree derives the deterministic tree recipe for one sweep
// point: leaf clusters of gridScaleLeaf nodes, fan-outs of 10 from the
// root down (a lone remaining factor of 10 splits into 2×5 so every tree
// has at least two internal levels, i.e. every composition at least
// three algorithm levels), and per-level RTTs halving with depth. The
// returned group sizes align the composition hierarchy with the tree:
// level k+1 groups units by their tree parent at depth k.
func gridScaleTree(n int) (topology.TreeSpec, []int, error) {
	if n < 100 || n%gridScaleLeaf != 0 {
		return topology.TreeSpec{}, nil, fmt.Errorf("harness: grid-scale N %d must be a multiple of %d and at least 100", n, gridScaleLeaf)
	}
	clusters := n / gridScaleLeaf
	var fanouts []int
	for rest := clusters; rest > 1; {
		switch {
		case rest%10 == 0 && rest > 10:
			fanouts = append(fanouts, 10)
			rest /= 10
		case rest == 10 && len(fanouts) == 0:
			fanouts = append(fanouts, 2, 5)
			rest = 1
		default:
			fanouts = append(fanouts, rest)
			rest = 1
		}
	}
	if len(fanouts) < 2 {
		return topology.TreeSpec{}, nil, fmt.Errorf("harness: grid-scale N %d yields %d clusters; need at least two tree levels", n, clusters)
	}
	spec := topology.TreeSpec{
		Fanouts:  fanouts,
		LeafSize: gridScaleLeaf,
		LeafRTT:  gridScaleLeafRTT,
	}
	// Root crossings are slowest; each deeper level halves the RTT, with
	// a floor of gridScaleMinLevelRTT.
	rtt := gridScaleRootRTT
	for range fanouts {
		spec.LevelRTT = append(spec.LevelRTT, rtt)
		if rtt > gridScaleMinLevelRTT {
			rtt /= 2
		}
	}
	// BuildMultiLevel groups consecutive units, and consecutive tree
	// clusters share parents bottom-up, so the group sizes are the
	// fan-outs deepest-first, excluding the root (the top algorithm
	// level spans the root's children).
	groups := make([]int, 0, len(fanouts)-1)
	for i := len(fanouts) - 1; i >= 1; i-- {
		groups = append(groups, fanouts[i])
	}
	return spec, groups, nil
}

// RunGridScale sweeps N over ns, running one seeded simulation per point
// (single repetitions: the sweep measures scaling shape and machine
// footprint, not statistical aggregates). Points always run serially on
// the calling goroutine — concurrent runs would pollute each other's
// heap measurements. The deterministic fields of every point are a pure
// function of (N, seed); only Mem varies across machines.
func RunGridScale(ns []int, csPerProcess int, alpha time.Duration, seed int64, progress func(string)) (*GridScaleResult, error) {
	if csPerProcess < 1 {
		return nil, fmt.Errorf("harness: grid-scale CSPerProcess %d, need at least 1", csPerProcess)
	}
	if alpha <= 0 {
		return nil, fmt.Errorf("harness: grid-scale Alpha %v, need > 0", alpha)
	}
	res := &GridScaleResult{}
	for _, n := range ns {
		p, err := runGridScaleOnce(n, csPerProcess, alpha, seed)
		if err != nil {
			return nil, fmt.Errorf("harness: grid-scale N=%d: %w", n, err)
		}
		res.Points = append(res.Points, p)
		if progress != nil {
			progress(fmt.Sprintf("gridscale N=%-7d clusters=%-6d levels=%d  grants=%-7d events=%-9d  %7.0f B/proc  %6.2f Mev/s",
				p.N, p.Clusters, p.Levels, p.Grants, p.Events,
				p.Mem.BytesPerProc, p.Mem.EventsPerSec/1e6))
		}
	}
	return res, nil
}

func runGridScaleOnce(n, csPerProcess int, alpha time.Duration, seed int64) (GridScalePoint, error) {
	spec, groups, err := gridScaleTree(n)
	if err != nil {
		return GridScalePoint{}, err
	}
	g, err := topology.NewTree(spec)
	if err != nil {
		return GridScalePoint{}, err
	}
	levels := len(groups) + 2
	algs := make([]string, levels)
	for i := range algs {
		algs[i] = "naimi"
	}
	apps := g.NumClusters() * (gridScaleLeaf - 1)

	// Settle the heap and take the pre-build baseline; the build delta
	// over it is what the deployment itself costs.
	runtime.GC()
	var before runtime.MemStats
	runtime.ReadMemStats(&before)

	sim := des.New()
	net := simnet.New(sim, g, simnet.Options{Jitter: 0.05, Seed: seed})
	mon := check.NewMonitor(sim)
	// ρ = apps puts the mean idle time at apps·α: arrivals trickle in at
	// roughly the global service rate, so the sweep exercises a loaded
	// but not degenerate queue at every N.
	runner, err := workload.NewRunner(sim, workload.Params{
		Alpha: alpha, Rho: float64(apps), Dist: workload.Exponential,
		CSPerProcess: csPerProcess, Seed: seed,
	}, mon)
	if err != nil {
		return GridScalePoint{}, err
	}
	d, err := core.BuildMultiLevel(net, g, algs, groups, runner.Callbacks)
	if err != nil {
		return GridScalePoint{}, err
	}
	runner.Bind(d.Apps)

	runtime.GC()
	var built runtime.MemStats
	runtime.ReadMemStats(&built)

	runner.Start()
	mon.WatchLiveness(runner.Waiting, runner.Done, 2000*alpha)
	limit := uint64(runner.ExpectedTotal())*10_000 + 1_000_000
	//lint:allow desdeterminism wall-clock throughput is the point of GridScaleMem; it never enters figure text (Table renders deterministic columns only)
	start := time.Now()
	if err := sim.RunCapped(limit); err != nil {
		return GridScalePoint{}, fmt.Errorf("did not drain: %w (outstanding %d)", err, runner.Outstanding())
	}
	//lint:allow desdeterminism wall-clock throughput is the point of GridScaleMem; it never enters figure text (Table renders deterministic columns only)
	wall := time.Since(start)
	mon.AssertQuiescent()
	if !mon.Ok() {
		return GridScalePoint{}, fmt.Errorf("property violation: %s", mon.Violations()[0])
	}
	if !runner.Done() {
		return GridScalePoint{}, fmt.Errorf("liveness: %d requests unsatisfied", runner.Outstanding())
	}

	var after runtime.MemStats
	runtime.ReadMemStats(&after)

	p := GridScalePoint{
		N:        g.NumNodes(),
		Clusters: g.NumClusters(),
		Levels:   levels,
		Apps:     apps,
		Grants:   int64(len(runner.Records())),
		Events:   int64(sim.Processed()),
	}
	counters := net.Counters()
	if p.Grants > 0 {
		p.TotalMsgsPerCS = float64(counters.Messages) / float64(p.Grants)
		p.InterMsgsPerCS = float64(counters.InterMessages) / float64(p.Grants)
	}
	procs := len(d.Procs)
	p.Mem = GridScaleMem{
		Procs:     procs,
		LiveBytes: built.HeapAlloc,
		PeakBytes: after.HeapSys,
		WallMS:    float64(wall) / float64(time.Millisecond),
	}
	if procs > 0 && built.HeapAlloc > before.HeapAlloc {
		p.Mem.BytesPerProc = float64(built.HeapAlloc-before.HeapAlloc) / float64(procs)
	}
	if wall > 0 {
		p.Mem.EventsPerSec = float64(p.Events) / wall.Seconds()
	}
	return p, nil
}

// Table renders the sweep's deterministic columns only: every cell is a
// pure function of (N, seed), so the figure reproduces byte for byte on
// any machine. Memory and throughput live in GridScalePoint.Mem and are
// deliberately absent here.
func (r *GridScaleResult) Table(title string) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s — k-level composition on synthetic trees, N swept over decades\n", title)
	fmt.Fprintf(&b, "%10s %10s %8s %10s %12s %10s %10s\n",
		"N", "clusters", "levels", "grants", "events", "msgs/CS", "inter/CS")
	for i := range r.Points {
		p := &r.Points[i]
		fmt.Fprintf(&b, "%10d %10d %8d %10d %12d %10.2f %10.2f\n",
			p.N, p.Clusters, p.Levels, p.Grants, p.Events, p.TotalMsgsPerCS, p.InterMsgsPerCS)
	}
	return b.String()
}
