package harness

import (
	"fmt"
	"sort"
	"strings"
	"time"

	"gridmutex/internal/topology"
	"gridmutex/internal/workload"
)

// CompositionSystems returns the four curves of figures 4 and 5: the
// original Naimi-Trehel baseline and the three compositions with Naimi as
// the intra algorithm (section 4.1 fixes the intra algorithm to Naimi's
// because the inter algorithm dominates performance).
func CompositionSystems() []System {
	return []System{
		Flat("naimi"),
		Composed("naimi", "naimi"),
		Composed("naimi", "martin"),
		Composed("naimi", "suzuki"),
	}
}

// IntraSystems returns the three curves of figure 6: the inter algorithm
// fixed to Naimi's, the intra algorithm varying.
func IntraSystems() []System {
	return []System{
		Composed("naimi", "naimi"),
		Composed("martin", "naimi"),
		Composed("suzuki", "naimi"),
	}
}

// Metric selects which aggregate a table column shows.
type Metric uint8

const (
	// ObtainingMean is the mean obtaining time in ms (figures 4(a),
	// 6(a)).
	ObtainingMean Metric = iota
	// ObtainingStd is σ of the obtaining time in ms (figures 5(a),
	// 6(b)).
	ObtainingStd
	// ObtainingRelStd is σ/mean (figure 5(b)).
	ObtainingRelStd
	// InterMsgs is inter-cluster sent messages per CS (figure 4(b)).
	InterMsgs
	// TotalMsgs is all sent messages per CS.
	TotalMsgs
	// InterBytes is inter-cluster bytes per CS.
	InterBytes
	// Fairness is Jain's index over per-process mean obtaining times.
	Fairness
)

// String names the metric with its unit.
func (m Metric) String() string {
	switch m {
	case ObtainingMean:
		return "obtaining time mean (ms)"
	case ObtainingStd:
		return "obtaining time std dev (ms)"
	case ObtainingRelStd:
		return "obtaining time relative std dev"
	case InterMsgs:
		return "inter-cluster messages per CS"
	case TotalMsgs:
		return "total messages per CS"
	case InterBytes:
		return "inter-cluster bytes per CS"
	case Fairness:
		return "Jain fairness index of per-process mean obtaining time"
	default:
		return fmt.Sprintf("Metric(%d)", uint8(m))
	}
}

func (p *Point) metric(m Metric) float64 {
	switch m {
	case ObtainingMean:
		return p.Obtaining.Mean
	case ObtainingStd:
		return p.Obtaining.Std
	case ObtainingRelStd:
		return p.Obtaining.RelStd
	case InterMsgs:
		return p.InterMsgsPerCS
	case TotalMsgs:
		return p.TotalMsgsPerCS
	case InterBytes:
		return p.InterBytesPerCS
	case Fairness:
		return p.Fairness
	default:
		panic(fmt.Sprintf("harness: unknown metric %d", m))
	}
}

// Table renders one metric as an aligned text table: one row per ρ, one
// column per system — the same series the paper plots.
func (r *Result) Table(m Metric, title string) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s — %s\n", title, m)
	fmt.Fprintf(&b, "N = %d application processes, alpha = %v, %d CS/process, %d repetitions\n",
		r.Scale.N(), r.Scale.Alpha, r.Scale.CSPerProcess, r.Scale.Repetitions)
	fmt.Fprintf(&b, "%10s", "rho")
	for _, s := range r.Systems {
		fmt.Fprintf(&b, "  %20s", s.Name)
	}
	b.WriteByte('\n')
	for _, rho := range r.Scale.Rhos {
		fmt.Fprintf(&b, "%10.0f", rho)
		for _, s := range r.Systems {
			p := r.Point(s.Name, rho)
			if p == nil {
				fmt.Fprintf(&b, "  %20s", "-")
				continue
			}
			fmt.Fprintf(&b, "  %20.3f", p.metric(m))
		}
		b.WriteByte('\n')
	}
	return b.String()
}

// ScalePoint is one cell of the scalability experiment (section 4.7):
// total messages per CS as the number of clusters grows.
type ScalePoint struct {
	System         string
	Clusters       int
	TotalMsgsPerCS float64
	InterMsgsPerCS float64
	BytesPerCS     float64
	Events         int64
}

// ScalabilityResult aggregates the section 4.7 experiment.
type ScalabilityResult struct {
	Systems  []System
	Clusters []int
	Points   []ScalePoint
}

// Point returns the cell for (system, clusters), or nil.
func (r *ScalabilityResult) Point(system string, clusters int) *ScalePoint {
	for i := range r.Points {
		if r.Points[i].System == system && r.Points[i].Clusters == clusters {
			return &r.Points[i]
		}
	}
	return nil
}

// ScalabilitySystems returns the curves of the section 4.7 discussion:
// original Suzuki and Naimi against their self-compositions.
func ScalabilitySystems() []System {
	return []System{
		Flat("suzuki"),
		Composed("suzuki", "suzuki"),
		Flat("naimi"),
		Composed("naimi", "naimi"),
	}
}

// RunScalability sweeps the cluster count at a fixed intermediate ρ and
// reports per-CS message costs. scale.Clusters is ignored; clusters lists
// the x axis. Synthetic uniform topologies keep latency constant so only
// the node count varies.
func RunScalability(systems []System, scale Scale, clusters []int, progress func(string)) (*ScalabilityResult, error) {
	res := &ScalabilityResult{Systems: systems, Clusters: clusters}
	cells := make([]cell, 0, len(systems)*len(clusters))
	for _, sys := range systems {
		for _, k := range clusters {
			s := scale
			s.Clusters = k
			s.UseGrid5000 = false
			rho := 2 * float64(s.N()) // intermediate parallelism for every size
			cells = append(cells, cell{sys: sys, scale: s, rho: rho})
		}
	}
	emit := func(ci int, p *Point) {
		k := clusters[ci%len(clusters)]
		res.Points = append(res.Points, ScalePoint{
			System: p.System, Clusters: k,
			TotalMsgsPerCS: p.TotalMsgsPerCS,
			InterMsgsPerCS: p.InterMsgsPerCS,
			BytesPerCS:     p.InterBytesPerCS,
			Events:         p.Events,
		})
		if progress != nil {
			progress(fmt.Sprintf("%-22s clusters=%2d  msgs/CS=%7.2f  inter/CS=%6.2f",
				p.System, k, p.TotalMsgsPerCS, p.InterMsgsPerCS))
		}
	}
	if _, err := runCells(cells, scale.Workers, emit); err != nil {
		return nil, err
	}
	return res, nil
}

// Table renders the scalability experiment.
func (r *ScalabilityResult) Table(title string) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s — total messages per CS vs cluster count\n", title)
	fmt.Fprintf(&b, "%10s", "clusters")
	for _, s := range r.Systems {
		fmt.Fprintf(&b, "  %20s", s.Name)
	}
	b.WriteByte('\n')
	for _, k := range r.Clusters {
		fmt.Fprintf(&b, "%10d", k)
		for _, s := range r.Systems {
			p := r.Point(s.Name, k)
			if p == nil {
				fmt.Fprintf(&b, "  %20s", "-")
				continue
			}
			fmt.Fprintf(&b, "  %20.2f", p.TotalMsgsPerCS)
		}
		b.WriteByte('\n')
	}
	return b.String()
}

// Figure3Table renders the encoded Grid'5000 latency matrix for comparison
// against the paper's figure 3.
func Figure3Table() string {
	g := topology.Grid5000(1)
	var b strings.Builder
	b.WriteString("Figure 3 — Grid5000 RTT latencies (ms), measured matrix encoded verbatim\n")
	fmt.Fprintf(&b, "%10s", "from\\to")
	for c := 0; c < g.NumClusters(); c++ {
		fmt.Fprintf(&b, " %9s", g.ClusterName(c))
	}
	b.WriteByte('\n')
	for i := 0; i < g.NumClusters(); i++ {
		fmt.Fprintf(&b, "%10s", g.ClusterName(i))
		for j := 0; j < g.NumClusters(); j++ {
			fmt.Fprintf(&b, " %9.3f", float64(g.RTT(i, j).Microseconds())/1000)
		}
		b.WriteByte('\n')
	}
	return b.String()
}

// SortedSystemNames returns the experiment's system names sorted, mostly
// for stable test assertions.
func (r *Result) SortedSystemNames() []string {
	names := make([]string, len(r.Systems))
	for i, s := range r.Systems {
		names[i] = s.Name
	}
	sort.Strings(names)
	return names
}

// AdaptiveSystems returns the curves of the adaptive-composition ablation:
// the three static inter algorithms against the runtime-switching one.
func AdaptiveSystems() []System {
	return []System{
		Composed("naimi", "martin"),
		Composed("naimi", "naimi"),
		Composed("naimi", "suzuki"),
		Adaptive("naimi", "naimi"),
	}
}

// AdaptivePhases builds the phase schedule of the ablation: a saturated
// low-parallelism phase, then a sparse high-parallelism phase, then an
// intermediate one, with boundaries proportional to the expected run
// length so the schedule scales with the workload.
func AdaptivePhases(scale Scale) []workload.Phase {
	n := float64(scale.N())
	// A saturated system serves one CS per alpha; a full run therefore
	// spans at least N*CSPerProcess*alpha. Stretch by 1.5 for the
	// lighter phases.
	span := time.Duration(1.5 * n * float64(scale.CSPerProcess) * float64(scale.Alpha))
	return []workload.Phase{
		{Rho: n / 4, Until: span / 3},
		{Rho: 6 * n, Until: 2 * span / 3},
		{Rho: 1.5 * n},
	}
}

// RunPhased executes every system once per repetition under the scale's
// phase schedule, producing one aggregated Point per system (Rho is 0 in
// phased results).
func RunPhased(systems []System, scale Scale, progress func(string)) (*Result, error) {
	if len(scale.Phases) == 0 {
		return nil, fmt.Errorf("harness: RunPhased needs scale.Phases")
	}
	res := &Result{Systems: systems, Scale: scale}
	cells := make([]cell, len(systems))
	for i, sys := range systems {
		cells[i] = cell{sys: sys, scale: scale, rho: 0}
	}
	var emit func(int, *Point)
	if progress != nil {
		emit = func(_ int, p *Point) {
			progress(fmt.Sprintf("%-22s obtain=%8.2fms  inter/CS=%6.2f  switches=%d",
				p.System, p.Obtaining.Mean, p.InterMsgsPerCS, p.Switches))
		}
	}
	points, err := runCells(cells, scale.Workers, emit)
	if err != nil {
		return nil, err
	}
	res.Points = points
	return res, nil
}

// PhasedTable renders a phased experiment: one row per system, with the
// obtaining time broken down per workload phase.
func (r *Result) PhasedTable(title string) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s — phased workload (rho schedule: %v)\n", title, r.Scale.Phases)
	fmt.Fprintf(&b, "%-22s %12s", "system", "obtain(ms)")
	for i := range r.Scale.Phases {
		fmt.Fprintf(&b, " %11s", fmt.Sprintf("phase%d(ms)", i+1))
	}
	fmt.Fprintf(&b, " %10s %10s\n", "inter/CS", "switches")
	for _, p := range r.Points {
		fmt.Fprintf(&b, "%-22s %12.3f", p.System, p.Obtaining.Mean)
		for _, ph := range p.PhaseObtaining {
			fmt.Fprintf(&b, " %11.3f", ph.Mean)
		}
		fmt.Fprintf(&b, " %10.3f %10d\n", p.InterMsgsPerCS, p.Switches)
	}
	return b.String()
}

// BiasSystems returns the curves of the local-bias ablation: the plain
// composition against increasing Bertier-style bias budgets.
func BiasSystems() []System {
	return []System{
		Composed("naimi", "naimi"),
		Biased("naimi", "naimi", 2),
		Biased("naimi", "naimi", 8),
	}
}

// BiasTable renders the local-bias ablation with its dedicated columns.
func (r *Result) BiasTable(title string) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s — local-first bias (Bertier-style) at each rho\n", title)
	fmt.Fprintf(&b, "%-22s %8s %12s %12s %12s %12s\n",
		"system", "rho", "obtain(ms)", "inter/CS", "handoffs", "bias-rounds")
	for _, p := range r.Points {
		fmt.Fprintf(&b, "%-22s %8.0f %12.3f %12.3f %12d %12d\n",
			p.System, p.Rho, p.Obtaining.Mean, p.InterMsgsPerCS, p.Handoffs, p.BiasRounds)
	}
	return b.String()
}

// LocalitySystems returns the curves of the locality analysis: the
// original algorithm against the composition under a cluster-skewed
// workload.
func LocalitySystems() []System {
	return []System{
		Flat("naimi"),
		Composed("naimi", "naimi"),
	}
}

// RunLocality executes the locality experiment: one rho, the workload
// skewed toward cluster hot, obtaining time reported per cluster. The
// composition should serve the hot cluster far faster (the inter token
// parks there) while the original algorithm cannot exploit locality.
func RunLocality(systems []System, scale Scale, rho float64, hot int, skew float64, progress func(string)) (*Result, error) {
	scale.HotCluster, scale.HotSkew = hot, skew
	scale.Rhos = []float64{rho}
	return Run(systems, scale, progress)
}

// LocalityTable renders per-cluster obtaining times: one row per cluster,
// one column per system, the hot cluster marked.
func (r *Result) LocalityTable(title string, hot int) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s — obtaining time (ms) by requester cluster (hot cluster marked *)\n", title)
	fmt.Fprintf(&b, "%10s", "cluster")
	for _, s := range r.Systems {
		fmt.Fprintf(&b, "  %20s", s.Name)
	}
	b.WriteByte('\n')
	clusters := 0
	for i := range r.Points {
		if len(r.Points[i].PerCluster) > clusters {
			clusters = len(r.Points[i].PerCluster)
		}
	}
	for c := 0; c < clusters; c++ {
		mark := " "
		if c == hot {
			mark = "*"
		}
		fmt.Fprintf(&b, "%9d%s", c, mark)
		for _, s := range r.Systems {
			p := r.Point(s.Name, r.Scale.Rhos[0])
			if p == nil || c >= len(p.PerCluster) {
				fmt.Fprintf(&b, "  %20s", "-")
				continue
			}
			fmt.Fprintf(&b, "  %20.3f", p.PerCluster[c].Mean)
		}
		b.WriteByte('\n')
	}
	return b.String()
}
