package harness

import (
	"fmt"
	"strings"
	"time"

	"gridmutex/internal/check"
	"gridmutex/internal/core"
	"gridmutex/internal/des"
	"gridmutex/internal/faults"
	"gridmutex/internal/fleet"
	"gridmutex/internal/mutex"
	"gridmutex/internal/recovery"
	"gridmutex/internal/simnet"
	"gridmutex/internal/stats"
	"gridmutex/internal/workload"
)

// PartitionParams tunes the network-partition experiment on top of a
// Scale.
type PartitionParams struct {
	// Durations is the swept cut-window length axis: each repetition
	// isolates one seeded cluster for this long, then heals.
	Durations []time.Duration
	// Spec is the composition under test; zero value means naimi-naimi.
	Spec core.Spec
	// Period is the failure-detector heartbeat period; 0 means twice the
	// workload's alpha.
	Period time.Duration
}

// PartitionPoint is the aggregate of one (duration, ρ) cell: what a
// partition window of that length costs the grid — obtaining-time
// inflation, messages killed on the cut, minority freezes entered, and
// the token regenerations the majority performed while the cut-off side
// stayed frozen.
type PartitionPoint struct {
	Duration time.Duration
	Rho      float64
	// Obtaining aggregates the obtaining time (ms) of all grants,
	// including the post-heal drain of requests frozen during the cut.
	Obtaining stats.Summary
	// DroppedPartition counts messages discarded at delivery time because
	// their link crossed the active cut, across repetitions.
	DroppedPartition int64
	// MinorityFreezes counts entries into the minority-frozen state
	// across all recovery members and repetitions.
	MinorityFreezes int64
	// Regenerations counts epochs announced with a regenerated token —
	// the majority reclaiming a token the cut carried away.
	Regenerations int64
	// Epochs counts membership epochs across repetitions.
	Epochs int64
	// Grants counts critical sections entered across repetitions; the
	// workload completes in full, so this doubles as the completion
	// check's denominator.
	Grants int64
	// DetectorMsgsPerSec is the failure-detector message rate per second
	// of virtual time.
	DetectorMsgsPerSec float64
}

// PartitionResult is the partition-tolerance experiment: one point per
// (cut duration, ρ).
type PartitionResult struct {
	Params PartitionParams
	Scale  Scale
	Points []PartitionPoint
}

// Point returns the cell for (duration, rho), or nil.
func (r *PartitionResult) Point(duration time.Duration, rho float64) *PartitionPoint {
	for i := range r.Points {
		if r.Points[i].Duration == duration && r.Points[i].Rho == rho {
			return &r.Points[i]
		}
	}
	return nil
}

// partPartial is what one repetition contributes to its (duration, ρ)
// cell — accumulators and scalar counts, never raw records.
type partPartial struct {
	obtain                   stats.Accumulator
	dropped, freezes, regens int64
	epochs, grants           int64
	detectorMsgs             int64
	virtual                  time.Duration
}

// digestPartition folds one run's outcome into a partPartial.
func digestPartition(out partitionOutcome) partPartial {
	p := partPartial{
		dropped: out.counters.DroppedPartition,
		freezes: out.freezes,
		regens:  out.regens,
		epochs:  out.epochs,
		grants:  int64(len(out.records)),
		virtual: out.elapsed,
	}
	p.obtain.Sketch = true
	for _, r := range out.records {
		p.obtain.Push(float64(r.Obtaining()) / float64(time.Millisecond))
	}
	for _, k := range detectorKinds {
		p.detectorMsgs += out.counters.ByKind[k]
	}
	return p
}

// RunPartition sweeps the cut-window duration across the scale's ρ axis.
// Every repetition cuts one seeded cluster off the grid for the window,
// heals, and drives the workload to full completion: the minority side
// freezes (no spurious token regeneration on the cut-off side), the
// majority regenerates and keeps granting, and after the heal the frozen
// side rejoins through a resync epoch and drains its queued requests.
//
// The unit of fan-out is one (duration, ρ, repetition) shard, exactly as
// in RunRecovery: partials merge in repetition order, so the aggregate is
// byte-identical for every Workers setting.
func RunPartition(params PartitionParams, scale Scale, progress func(string)) (*PartitionResult, error) {
	if err := scale.Validate(); err != nil {
		return nil, err
	}
	if len(params.Durations) == 0 {
		return nil, fmt.Errorf("harness: RunPartition needs at least one cut duration")
	}
	if params.Spec == (core.Spec{}) {
		params.Spec = core.Spec{Intra: "naimi", Inter: "naimi"}
	}
	if params.Period <= 0 {
		params.Period = 2 * scale.Alpha
	}
	// A cut shorter than the failure-detection timeout is invisible to the
	// recovery layer: the messages it kills are lost without any member
	// suspecting anything, so a token that died on the cut is never
	// regenerated and the run stalls. The experiment therefore only admits
	// windows long enough to be detected with margin.
	_, inter := partitionTimeouts(params, scale)
	for _, d := range params.Durations {
		if d < 2*inter.Timeout {
			return nil, fmt.Errorf("harness: cut duration %v is below twice the inter detector timeout (%v): an undetected cut loses messages without triggering recovery", d, inter.Timeout)
		}
	}
	res := &PartitionResult{Params: params, Scale: scale}

	type shard struct {
		duration time.Duration
		rho      float64
		rep      int
	}
	var shards []shard
	for _, d := range params.Durations {
		for _, rho := range scale.Rhos {
			for rep := 0; rep < scale.Repetitions; rep++ {
				shards = append(shards, shard{d, rho, rep})
			}
		}
	}
	runShard := func(s shard) (partPartial, error) {
		seed := deriveSeed(scale.BaseSeed^int64(s.duration), s.rho, s.rep)
		out, err := runPartitionOnce(params, scale, s.duration, s.rho, seed)
		if err != nil {
			return partPartial{}, fmt.Errorf("harness: partition duration=%v rho=%g rep=%d: %w",
				s.duration, s.rho, s.rep, err)
		}
		return digestPartition(out), nil
	}

	var partials []partPartial
	if w := scale.Workers; w < 0 || w > 1 {
		var err error
		partials, err = fleet.Map(len(shards), w, func(i int) (partPartial, error) {
			return runShard(shards[i])
		})
		if err != nil {
			return nil, err
		}
	} else {
		partials = make([]partPartial, len(shards))
		for i := range shards {
			part, err := runShard(shards[i])
			if err != nil {
				return nil, err
			}
			partials[i] = part
		}
	}

	// Merge each cell's repetitions in index order.
	next := 0
	for _, d := range params.Durations {
		for _, rho := range scale.Rhos {
			p := PartitionPoint{Duration: d, Rho: rho}
			obtain := stats.Accumulator{Sketch: true}
			var detectorMsgs int64
			var virtual time.Duration
			for rep := 0; rep < scale.Repetitions; rep++ {
				part := &partials[next]
				next++
				obtain.Merge(&part.obtain)
				p.DroppedPartition += part.dropped
				p.MinorityFreezes += part.freezes
				p.Regenerations += part.regens
				p.Epochs += part.epochs
				p.Grants += part.grants
				detectorMsgs += part.detectorMsgs
				virtual += part.virtual
			}
			p.Obtaining = obtain.Summarize()
			if sec := virtual.Seconds(); sec > 0 {
				p.DetectorMsgsPerSec = float64(detectorMsgs) / sec
			}
			res.Points = append(res.Points, p)
			if progress != nil {
				progress(fmt.Sprintf("cut=%6s rho=%6.0f  obtain=%8.2fms  dropped=%6d  freezes=%4d",
					d, rho, p.Obtaining.Mean, p.DroppedPartition, p.MinorityFreezes))
			}
		}
	}
	return res, nil
}

// PartitionSweep derives the default partition experiment from a figure
// scale: two ρ values spanning the saturated and sparse regimes, and a
// cut-duration axis in multiples of the inter detector timeout — the
// shortest window the recovery layer can actually see (shorter cuts drop
// messages without any member suspecting anything; RunPartition rejects
// them).
func PartitionSweep(scale Scale) (PartitionParams, Scale) {
	n := float64(scale.N())
	scale.Rhos = []float64{n / 2, 4 * n}
	params := PartitionParams{Period: 2 * scale.Alpha}
	_, inter := partitionTimeouts(params, scale)
	params.Durations = []time.Duration{
		2 * inter.Timeout,
		4 * inter.Timeout,
		8 * inter.Timeout,
	}
	return params, scale
}

// partitionTimeouts derives the detector options the partition runs use,
// shared between the duration validation and the per-run build.
func partitionTimeouts(params PartitionParams, scale Scale) (intra, inter recovery.Options) {
	remote := scale.RemoteRTT
	if remote <= 0 {
		remote = 20 * time.Millisecond
	}
	return recovery.StaggeredTimeouts(params.Period, remote/2)
}

// partitionOutcome is what one partition run yields.
type partitionOutcome struct {
	records  []workload.Record
	freezes  int64
	regens   int64
	epochs   int64
	counters simnet.Counters
	elapsed  time.Duration
}

// runPartitionOnce executes one seeded run: build the crash-tolerant
// deployment, cut one seeded cluster off for the window, heal, and drive
// the full workload to completion under the recovery-aware monitor.
func runPartitionOnce(params PartitionParams, scale Scale, duration time.Duration, rho float64, seed int64) (partitionOutcome, error) {
	// Two reserved nodes per cluster (primary and standby), as in the
	// crash-recovery experiment.
	s := scale
	s.AppsPerCluster++
	g, err := grid(System{Spec: params.Spec}, s)
	if err != nil {
		return partitionOutcome{}, err
	}
	sim := des.New()
	net := simnet.New(sim, g, simnet.Options{Jitter: scale.Jitter, Seed: seed, KindCounts: true})
	mon := check.NewMonitor(sim)
	runner, err := workload.NewRunner(sim, workload.Params{
		Alpha: scale.Alpha, Rho: rho, Dist: workload.Exponential,
		CSPerProcess: scale.CSPerProcess, Seed: seed,
	}, mon)
	if err != nil {
		return partitionOutcome{}, err
	}

	// One seeded window: a seeded cluster is cut off at a seeded instant
	// within the run's opening stretch and healed after the duration.
	sides := make([][]int, g.NumClusters())
	for c := range sides {
		sides[c] = g.NodesIn(c)
	}
	horizon := scale.Alpha * time.Duration(scale.CSPerProcess)
	if horizon < 4*params.Period {
		horizon = 4 * params.Period
	}
	sched := faults.PartitionPulse(seed, sides, horizon, duration)
	sched.Apply(sim, faults.Actions{
		// The schedule carries only partition events by construction.
		Crash:     func(int) { panic("harness: partition schedule fired a crash") },
		Restart:   func(int) { panic("harness: partition schedule fired a restart") },
		Partition: net.Partition,
		Heal:      net.Heal,
	})

	intra, inter := partitionTimeouts(params, scale)
	dep, err := recovery.Build(net, g, params.Spec, runner.Callbacks, sim, recovery.BuildOptions{
		Intra:    intra,
		Inter:    inter,
		NodeDown: net.Down,
		OnEpoch: func(group string, self mutex.ID, e recovery.Epoch, members []mutex.ID, holder mutex.ID) {
			mon.BeginEpoch(group)
		},
		OnRejoin: func(group string, self mutex.ID, e recovery.Epoch) {
			mon.Rejoined(self)
		},
	})
	if err != nil {
		return partitionOutcome{}, err
	}
	runner.Bind(dep.Apps)
	runner.Start()
	limit := uint64(runner.ExpectedTotal())*10_000 + 1_000_000
	for !runner.Done() {
		if sim.Processed() > limit {
			return partitionOutcome{}, fmt.Errorf("liveness: %d requests unsatisfied after %d events",
				runner.Outstanding(), sim.Processed())
		}
		if !sim.Step() {
			return partitionOutcome{}, fmt.Errorf("queue drained with %d requests unsatisfied", runner.Outstanding())
		}
	}
	dep.Stop()
	if err := sim.RunCapped(limit); err != nil {
		return partitionOutcome{}, fmt.Errorf("did not drain: %w", err)
	}
	mon.AssertQuiescent()
	if !mon.Ok() {
		return partitionOutcome{}, fmt.Errorf("property violation: %s", mon.Violations()[0])
	}
	out := partitionOutcome{
		records:  runner.Records(),
		epochs:   mon.Epochs(),
		counters: net.Counters(),
		elapsed:  sim.Now(),
	}
	for _, m := range dep.Members {
		st := m.Stats()
		out.freezes += st.MinorityFreezes
		out.regens += st.Regenerations
	}
	return out, nil
}

// Table renders the partition experiment: obtaining-time inflation and
// degradation bookkeeping per (cut duration, ρ).
func (r *PartitionResult) Table(title string) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s — graceful degradation under a cluster partition window\n", title)
	fmt.Fprintf(&b, "N = %d application processes (+2 recovery nodes per cluster), alpha = %v, heartbeat %v, %d CS/process, %d repetitions\n",
		r.Scale.N(), r.Scale.Alpha, r.Params.Period, r.Scale.CSPerProcess, r.Scale.Repetitions)
	fmt.Fprintf(&b, "%10s %8s %12s %12s %10s %10s %8s %8s %10s\n",
		"cut", "rho", "obtain(ms)", "obtain-max", "dropped", "freezes", "regens", "epochs", "grants")
	for _, p := range r.Points {
		fmt.Fprintf(&b, "%10s %8.0f %12.3f %12.3f %10d %10d %8d %8d %10d\n",
			p.Duration, p.Rho, p.Obtaining.Mean, p.Obtaining.Max,
			p.DroppedPartition, p.MinorityFreezes, p.Regenerations, p.Epochs, p.Grants)
	}
	return b.String()
}
