package harness

import (
	"fmt"
	"math"
	"strings"
)

// chartHeight is the number of value rows in a rendered chart.
const chartHeight = 16

// chartColsPerRho is the horizontal spacing between consecutive ρ values.
const chartColsPerRho = 6

// seriesMarks label up to six systems on one chart.
var seriesMarks = []byte{'*', 'o', '+', 'x', '#', '@'}

// Chart renders the metric as an ASCII plot shaped like the paper's
// figures: ρ on the x axis, the metric on the y axis (log-scaled when the
// values span more than two decades), one mark per system.
func (r *Result) Chart(m Metric, title string) string {
	rhos := r.Scale.Rhos
	if len(rhos) == 0 || len(r.Systems) == 0 {
		return ""
	}
	// Collect values and the y range.
	minV, maxV := math.Inf(1), math.Inf(-1)
	vals := make([][]float64, len(r.Systems))
	for si, sys := range r.Systems {
		vals[si] = make([]float64, len(rhos))
		for xi, rho := range rhos {
			p := r.Point(sys.Name, rho)
			if p == nil {
				vals[si][xi] = math.NaN()
				continue
			}
			v := p.metric(m)
			vals[si][xi] = v
			if v < minV {
				minV = v
			}
			if v > maxV {
				maxV = v
			}
		}
	}
	if math.IsInf(minV, 1) {
		return ""
	}
	logY := minV > 0 && maxV/minV > 100
	scale := func(v float64) float64 {
		if logY {
			return math.Log(v)
		}
		return v
	}
	lo, hi := scale(minV), scale(maxV)
	if hi == lo {
		hi = lo + 1
	}
	row := func(v float64) int {
		// Row 0 is the top of the chart.
		frac := (scale(v) - lo) / (hi - lo)
		rw := chartHeight - 1 - int(math.Round(frac*float64(chartHeight-1)))
		if rw < 0 {
			rw = 0
		}
		if rw >= chartHeight {
			rw = chartHeight - 1
		}
		return rw
	}

	width := len(rhos)*chartColsPerRho + 2
	grid := make([][]byte, chartHeight)
	for i := range grid {
		grid[i] = []byte(strings.Repeat(" ", width))
	}
	for si := range vals {
		mark := seriesMarks[si%len(seriesMarks)]
		for xi, v := range vals[si] {
			if math.IsNaN(v) {
				continue
			}
			col := xi*chartColsPerRho + 2
			rw := row(v)
			if grid[rw][col] == ' ' {
				grid[rw][col] = mark
			} else {
				// Collision: offset one column so both marks show.
				for off := 1; off < chartColsPerRho-1; off++ {
					if grid[rw][col+off] == ' ' {
						grid[rw][col+off] = mark
						break
					}
				}
			}
		}
	}

	var b strings.Builder
	suffix := ""
	if logY {
		suffix = "  [log y]"
	}
	fmt.Fprintf(&b, "%s — %s%s\n", title, m, suffix)
	yLabel := func(rw int) string {
		frac := float64(chartHeight-1-rw) / float64(chartHeight-1)
		v := lo + frac*(hi-lo)
		if logY {
			v = math.Exp(v)
		}
		return fmt.Sprintf("%10.2f", v)
	}
	for rw := 0; rw < chartHeight; rw++ {
		label := strings.Repeat(" ", 10)
		if rw == 0 || rw == chartHeight-1 || rw == chartHeight/2 {
			label = yLabel(rw)
		}
		fmt.Fprintf(&b, "%s |%s\n", label, strings.TrimRight(string(grid[rw]), " "))
	}
	fmt.Fprintf(&b, "%s +%s\n", strings.Repeat(" ", 10), strings.Repeat("-", width))
	// X labels: ρ values.
	xl := []byte(strings.Repeat(" ", width+1))
	for xi, rho := range rhos {
		lbl := fmt.Sprintf("%g", rho)
		col := xi*chartColsPerRho + 2
		copy(xl[col:], lbl)
	}
	fmt.Fprintf(&b, "%s  %s  (rho)\n", strings.Repeat(" ", 10), strings.TrimRight(string(xl), " "))
	for si, sys := range r.Systems {
		fmt.Fprintf(&b, "%s %c = %s\n", strings.Repeat(" ", 10), seriesMarks[si%len(seriesMarks)], sys.Name)
	}
	return b.String()
}
