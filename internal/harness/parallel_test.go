package harness

import (
	"fmt"
	"reflect"
	"strings"
	"testing"
	"time"
)

// parallelScale is a small grid (2 systems x 3 rhos x 2 reps = 12 runs)
// so the equivalence tests stay fast under -race.
func parallelScale() Scale {
	s := QuickScale()
	s.Rhos = []float64{6, 24, 72}
	return s
}

func parallelSystems() []System {
	return []System{Flat("naimi"), Composed("naimi", "suzuki")}
}

// TestParallelMatchesSerial is the core equivalence property: a parallel
// run must be byte-identical to a serial one — same Points (every float,
// bit for bit), same rendered tables, same progress lines in the same
// order. More jobs than workers (12 runs on 3 workers) exercises the
// queue/claim path.
func TestParallelMatchesSerial(t *testing.T) {
	runWith := func(workers int) (*Result, []string) {
		s := parallelScale()
		s.Workers = workers
		var lines []string
		res, err := Run(parallelSystems(), s, func(l string) { lines = append(lines, l) })
		if err != nil {
			t.Fatalf("Run with %d workers failed: %v", workers, err)
		}
		return res, lines
	}
	serial, serialLines := runWith(1)
	for _, workers := range []int{3, -1} {
		par, parLines := runWith(workers)
		if !reflect.DeepEqual(serial.Points, par.Points) {
			t.Errorf("workers=%d: Points differ from serial", workers)
		}
		for _, m := range []Metric{ObtainingMean, ObtainingStd, InterMsgs, Fairness} {
			st, pt := serial.Table(m, "t"), par.Table(m, "t")
			if st != pt {
				t.Errorf("workers=%d: %v table differs:\nserial:\n%s\nparallel:\n%s", workers, m, st, pt)
			}
		}
		if !reflect.DeepEqual(serialLines, parLines) {
			t.Errorf("workers=%d: progress lines differ:\nserial:   %q\nparallel: %q",
				workers, serialLines, parLines)
		}
	}
}

// TestParallelScalabilityMatchesSerial covers the second cell builder:
// scalability cells vary the Scale per cell, so the index→cluster mapping
// must survive the fan-out.
func TestParallelScalabilityMatchesSerial(t *testing.T) {
	runWith := func(workers int) *ScalabilityResult {
		s := parallelScale()
		s.Workers = workers
		res, err := RunScalability([]System{Flat("naimi"), Composed("naimi", "naimi")}, s, []int{2, 3}, nil)
		if err != nil {
			t.Fatalf("RunScalability with %d workers failed: %v", workers, err)
		}
		return res
	}
	serial, par := runWith(1), runWith(4)
	if !reflect.DeepEqual(serial.Points, par.Points) {
		t.Fatal("parallel scalability points differ from serial")
	}
	if serial.Table("t") != par.Table("t") {
		t.Fatal("parallel scalability table differs from serial")
	}
}

// TestParallelErrorMatchesSerial: when a cell fails, the parallel run must
// report the same error a serial run would — the lowest (cell, rep) index
// failure, identically wrapped.
func TestParallelErrorMatchesSerial(t *testing.T) {
	runWith := func(workers int) error {
		s := parallelScale()
		s.Workers = workers
		_, err := Run([]System{Flat("naimi"), Flat("no-such-algorithm")}, s, nil)
		return err
	}
	serialErr, parErr := runWith(1), runWith(4)
	if serialErr == nil || parErr == nil {
		t.Fatalf("expected both paths to fail: serial=%v parallel=%v", serialErr, parErr)
	}
	if serialErr.Error() != parErr.Error() {
		t.Fatalf("error strings differ:\nserial:   %v\nparallel: %v", serialErr, parErr)
	}
}

// TestDeriveSeedNoCollisions sweeps a dense fractional ρ grid — closer
// together than the old int64(rho*7919) truncation could distinguish —
// crossed with repetitions, and requires every seed to be distinct.
func TestDeriveSeedNoCollisions(t *testing.T) {
	seen := make(map[int64]string)
	for i := 0; i < 2000; i++ {
		rho := 1 + float64(i)*1e-4
		for rep := 0; rep < 5; rep++ {
			seed := deriveSeed(1, rho, rep)
			key := fmt.Sprintf("rho=%v rep=%d", rho, rep)
			if prev, dup := seen[seed]; dup {
				t.Fatalf("seed collision: %s and %s both derive %d", prev, key, seed)
			}
			seen[seed] = key
		}
	}
}

// TestDeriveSeedIgnoresSystem documents the common-random-numbers pairing:
// the seed depends only on (base, ρ, rep), so every system replays the
// same arrival streams — and changing any one input changes the seed.
func TestDeriveSeedIgnoresSystem(t *testing.T) {
	base := deriveSeed(1, 90, 0)
	if deriveSeed(1, 90, 0) != base {
		t.Fatal("deriveSeed is not deterministic")
	}
	if deriveSeed(2, 90, 0) == base || deriveSeed(1, 91, 0) == base || deriveSeed(1, 90, 1) == base {
		t.Fatal("changing base, rho or rep did not change the seed")
	}
}

// TestScaleValidate covers the up-front dimension checks.
func TestScaleValidate(t *testing.T) {
	if err := QuickScale().Validate(); err != nil {
		t.Fatalf("QuickScale should validate: %v", err)
	}
	cases := []struct {
		name   string
		mutate func(*Scale)
		want   string
	}{
		{"repetitions", func(s *Scale) { s.Repetitions = 0 }, "Repetitions"},
		{"cs-per-process", func(s *Scale) { s.CSPerProcess = -1 }, "CSPerProcess"},
		{"apps-per-cluster", func(s *Scale) { s.AppsPerCluster = 0 }, "AppsPerCluster"},
		{"clusters", func(s *Scale) { s.Clusters = 0 }, "Clusters"},
	}
	for _, c := range cases {
		s := QuickScale()
		c.mutate(&s)
		err := s.Validate()
		if err == nil || !strings.Contains(err.Error(), c.want) {
			t.Errorf("%s: Validate() = %v, want error naming %s", c.name, err, c.want)
		}
		if _, runErr := Run(parallelSystems(), s, nil); runErr == nil {
			t.Errorf("%s: Run accepted an invalid scale", c.name)
		}
	}
}

// TestParallelSingleCellMatchesSerial: with (cell, repetition) shard
// fan-out, a single cell with two repetitions must still spread across
// workers — and stay byte-identical to the serial run.
func TestParallelSingleCellMatchesSerial(t *testing.T) {
	runWith := func(workers int) *Result {
		s := parallelScale()
		s.Rhos = []float64{12} // one cell
		s.Workers = workers
		res, err := Run([]System{Composed("naimi", "martin")}, s, nil)
		if err != nil {
			t.Fatalf("Run with %d workers failed: %v", workers, err)
		}
		return res
	}
	serial, par := runWith(1), runWith(4)
	if !reflect.DeepEqual(serial.Points, par.Points) {
		t.Fatal("single-cell multi-worker run differs from serial")
	}
}

// TestParallelRecoveryMatchesSerial: the crash-recovery sweep fans out by
// (period, ρ, repetition) shard; every Workers setting must render the
// same table.
func TestParallelRecoveryMatchesSerial(t *testing.T) {
	runWith := func(workers int) *RecoveryResult {
		s := recoveryTestScale()
		s.Workers = workers
		params := RecoveryParams{Periods: []time.Duration{10 * time.Millisecond, 40 * time.Millisecond}}
		res, err := RunRecovery(params, s, nil)
		if err != nil {
			t.Fatalf("RunRecovery with %d workers failed: %v", workers, err)
		}
		return res
	}
	serial := runWith(1)
	for _, workers := range []int{4, -1} {
		par := runWith(workers)
		if !reflect.DeepEqual(serial.Points, par.Points) {
			t.Errorf("workers=%d: recovery points differ from serial", workers)
		}
		if serial.Table("t") != par.Table("t") {
			t.Errorf("workers=%d: recovery table differs from serial", workers)
		}
	}
}
