package harness

import (
	"fmt"
	"strings"
	"time"

	"gridmutex/internal/check"
	"gridmutex/internal/core"
	"gridmutex/internal/des"
	"gridmutex/internal/faults"
	"gridmutex/internal/fleet"
	"gridmutex/internal/mutex"
	"gridmutex/internal/recovery"
	"gridmutex/internal/simnet"
	"gridmutex/internal/stats"
	"gridmutex/internal/workload"
)

// RecoveryParams tunes the crash-recovery experiment on top of a Scale.
type RecoveryParams struct {
	// Periods is the swept heartbeat-period axis.
	Periods []time.Duration
	// Spec is the composition under test; zero value means naimi-naimi.
	Spec core.Spec
	// CrashCoordinator targets the crash at coordinator (primary) nodes
	// instead of application token holders. Either way the victim is the
	// worst case for its class: it crashes the instant the cluster's
	// activity touches it (an application entering its CS, or the primary
	// granting one).
	CrashCoordinator bool
}

// RecoveryPoint is the aggregate of one (period, ρ) cell: how fast the
// composition regenerates the token after a deterministic worst-case
// crash, and what the failure detector costs in messages.
type RecoveryPoint struct {
	Period time.Duration
	Rho    float64
	// RecoveryLatency aggregates crash-to-first-regeneration delays in
	// milliseconds across repetitions.
	RecoveryLatency stats.Summary
	// Epochs counts regeneration epochs across repetitions.
	Epochs int64
	// Obtaining aggregates the obtaining time (ms) of the surviving
	// grants, for the latency-vs-overhead trade-off.
	Obtaining stats.Summary
	// DetectorMsgsPerSec is the failure-detector message rate (heartbeats,
	// probes, acks and epoch announcements) per second of virtual time —
	// the standing overhead of crash tolerance.
	DetectorMsgsPerSec float64
	// DetectorShare is the detector's fraction of all sent messages.
	DetectorShare float64
	// Grants counts critical sections entered across repetitions.
	Grants int64
}

// RecoveryResult is the crash-recovery experiment: one point per
// (heartbeat period, ρ).
type RecoveryResult struct {
	Params RecoveryParams
	Scale  Scale
	Points []RecoveryPoint
}

// Point returns the cell for (period, rho), or nil.
func (r *RecoveryResult) Point(period time.Duration, rho float64) *RecoveryPoint {
	for i := range r.Points {
		if r.Points[i].Period == period && r.Points[i].Rho == rho {
			return &r.Points[i]
		}
	}
	return nil
}

// detectorKinds are the message kinds the recovery layer adds.
var detectorKinds = []string{"rec.hb", "rec.probe", "rec.ack", "rec.epoch", "rec.join"}

// recPartial is what one crash-recovery repetition contributes to its
// (period, ρ) cell: accumulators and scalar counts, never raw records, so
// the parallel sweep buffers bounded state per repetition.
type recPartial struct {
	latency, obtain stats.Accumulator
	epochs, grants  int64
	detectorMsgs    int64
	totalMsgs       int64
	virtual         time.Duration
}

// digestRecovery folds one run's outcome into a recPartial.
func digestRecovery(out recoveryOutcome) recPartial {
	p := recPartial{
		epochs:    out.epochs,
		grants:    int64(len(out.records)),
		totalMsgs: out.counters.Messages,
		virtual:   out.elapsed,
	}
	p.latency.Sketch = true
	p.obtain.Sketch = true
	for _, d := range out.latencies {
		p.latency.Push(float64(d) / float64(time.Millisecond))
	}
	for _, r := range out.records {
		p.obtain.Push(float64(r.Obtaining()) / float64(time.Millisecond))
	}
	for _, k := range detectorKinds {
		p.detectorMsgs += out.counters.ByKind[k]
	}
	return p
}

// RunRecovery sweeps the heartbeat period across the scale's ρ axis. Every
// repetition injects one deterministic crash — drawn by faults.OnCSEntry
// from the repetition's seed — of a token-holding application process (or,
// with CrashCoordinator, of the primary whose cluster's application enters
// the CS), then measures the crash-to-regeneration latency and the
// detector's message overhead.
//
// The unit of fan-out is one (period, ρ, repetition) shard: Scale.Workers
// bounds how many run concurrently, each on a private Simulator, exactly
// like Run. Per-repetition partials merge in repetition order — never
// completion order — so the aggregate is byte-identical for every Workers
// setting.
func RunRecovery(params RecoveryParams, scale Scale, progress func(string)) (*RecoveryResult, error) {
	if err := scale.Validate(); err != nil {
		return nil, err
	}
	if len(params.Periods) == 0 {
		return nil, fmt.Errorf("harness: RunRecovery needs at least one heartbeat period")
	}
	if params.Spec == (core.Spec{}) {
		params.Spec = core.Spec{Intra: "naimi", Inter: "naimi"}
	}
	res := &RecoveryResult{Params: params, Scale: scale}

	type shard struct {
		period time.Duration
		rho    float64
		rep    int
	}
	var shards []shard
	for _, period := range params.Periods {
		for _, rho := range scale.Rhos {
			for rep := 0; rep < scale.Repetitions; rep++ {
				shards = append(shards, shard{period, rho, rep})
			}
		}
	}
	runShard := func(s shard) (recPartial, error) {
		seed := deriveSeed(scale.BaseSeed^int64(s.period), s.rho, s.rep)
		out, err := runRecoveryOnce(params, scale, s.period, s.rho, seed)
		if err != nil {
			return recPartial{}, fmt.Errorf("harness: recovery period=%v rho=%g rep=%d: %w",
				s.period, s.rho, s.rep, err)
		}
		return digestRecovery(out), nil
	}

	var partials []recPartial
	if w := scale.Workers; w < 0 || w > 1 {
		var err error
		partials, err = fleet.Map(len(shards), w, func(i int) (recPartial, error) {
			return runShard(shards[i])
		})
		if err != nil {
			return nil, err
		}
	} else {
		partials = make([]recPartial, len(shards))
		for i := range shards {
			part, err := runShard(shards[i])
			if err != nil {
				return nil, err
			}
			partials[i] = part
		}
	}

	// Merge each cell's repetitions in index order.
	next := 0
	for _, period := range params.Periods {
		for _, rho := range scale.Rhos {
			p := RecoveryPoint{Period: period, Rho: rho}
			latency := stats.Accumulator{Sketch: true}
			obtain := stats.Accumulator{Sketch: true}
			var detectorMsgs, totalMsgs int64
			var virtual time.Duration
			for rep := 0; rep < scale.Repetitions; rep++ {
				part := &partials[next]
				next++
				latency.Merge(&part.latency)
				obtain.Merge(&part.obtain)
				p.Epochs += part.epochs
				p.Grants += part.grants
				detectorMsgs += part.detectorMsgs
				totalMsgs += part.totalMsgs
				virtual += part.virtual
			}
			p.RecoveryLatency = latency.Summarize()
			p.Obtaining = obtain.Summarize()
			if sec := virtual.Seconds(); sec > 0 {
				p.DetectorMsgsPerSec = float64(detectorMsgs) / sec
			}
			if totalMsgs > 0 {
				p.DetectorShare = float64(detectorMsgs) / float64(totalMsgs)
			}
			res.Points = append(res.Points, p)
			if progress != nil {
				progress(fmt.Sprintf("period=%6s rho=%6.0f  recover=%8.2fms  detector=%7.1f msg/s",
					period, rho, p.RecoveryLatency.Mean, p.DetectorMsgsPerSec))
			}
		}
	}
	return res, nil
}

// recoveryOutcome is what one crash-recovery run yields.
type recoveryOutcome struct {
	records   []workload.Record
	latencies []time.Duration
	epochs    int64
	counters  simnet.Counters
	elapsed   time.Duration
}

// runRecoveryOnce executes one seeded run: build the crash-tolerant
// deployment (two extra nodes per cluster — primary and standby), inject
// one crash-on-CS-entry fault, drive the workload to completion of every
// survivor, and check safety with the recovery-aware monitor.
func runRecoveryOnce(params RecoveryParams, scale Scale, period time.Duration, rho float64, seed int64) (recoveryOutcome, error) {
	// Two reserved nodes per cluster (primary coordinator and standby) so
	// the application process count matches the other experiments.
	s := scale
	s.AppsPerCluster++ // grid() adds one for the coordinator; add the standby here
	g, err := grid(System{Spec: params.Spec}, s)
	if err != nil {
		return recoveryOutcome{}, err
	}
	sim := des.New()
	// KindCounts: the detector-overhead metric reads ByKind below.
	net := simnet.New(sim, g, simnet.Options{Jitter: scale.Jitter, Seed: seed, KindCounts: true})
	mon := check.NewMonitor(sim)
	runner, err := workload.NewRunner(sim, workload.Params{
		Alpha: scale.Alpha, Rho: rho, Dist: workload.Exponential,
		CSPerProcess: scale.CSPerProcess, Seed: seed,
	}, mon)
	if err != nil {
		return recoveryOutcome{}, err
	}

	crash := func(node int) {
		net.Crash(node)
		runner.Crash(mutex.ID(node))
		mon.Crashed(mutex.ID(node))
	}
	// Draw the victim and the trigger ordinal from the run seed. Candidate
	// victims are the application nodes; under CrashCoordinator the crash
	// is redirected to the victim's primary at the same trigger instant —
	// the moment the primary's cluster holds the global CS right.
	var appNodes []int
	for c := 0; c < g.NumClusters(); c++ {
		appNodes = append(appNodes, g.NodesIn(c)[2:]...)
	}
	trig := faults.OnCSEntry(seed, appNodes, scale.CSPerProcess)
	entries := 0
	fired := false
	appCB := func(id mutex.ID) mutex.Callbacks {
		inner := runner.Callbacks(id)
		if int(id) != trig.Victim {
			return inner
		}
		return mutex.Callbacks{OnAcquire: func() {
			inner.OnAcquire()
			entries++
			if entries == trig.Entry && !fired {
				fired = true
				if params.CrashCoordinator {
					crash(g.NodesIn(g.ClusterOf(trig.Victim))[0])
				} else {
					crash(trig.Victim)
				}
			}
		}}
	}

	remote := scale.RemoteRTT
	if remote <= 0 {
		remote = 20 * time.Millisecond
	}
	intra, inter := recovery.StaggeredTimeouts(period, remote/2)
	dep, err := recovery.Build(net, g, params.Spec, appCB, sim, recovery.BuildOptions{
		Intra:    intra,
		Inter:    inter,
		NodeDown: net.Down,
		OnEpoch: func(group string, self mutex.ID, e recovery.Epoch, members []mutex.ID, holder mutex.ID) {
			mon.BeginEpoch(group)
		},
	})
	if err != nil {
		return recoveryOutcome{}, err
	}
	runner.Bind(dep.Apps)
	runner.Start()
	// Heartbeats keep the event queue non-empty forever, so drive the run
	// step by step until the surviving workload completes, then stop the
	// detectors and drain.
	limit := uint64(runner.ExpectedTotal())*10_000 + 1_000_000
	for !runner.Done() {
		if sim.Processed() > limit {
			return recoveryOutcome{}, fmt.Errorf("liveness: %d requests unsatisfied after %d events",
				runner.Outstanding(), sim.Processed())
		}
		if !sim.Step() {
			return recoveryOutcome{}, fmt.Errorf("queue drained with %d requests unsatisfied", runner.Outstanding())
		}
	}
	dep.Stop()
	if err := sim.RunCapped(limit); err != nil {
		return recoveryOutcome{}, fmt.Errorf("did not drain: %w", err)
	}
	mon.AssertQuiescent()
	if !mon.Ok() {
		return recoveryOutcome{}, fmt.Errorf("property violation: %s", mon.Violations()[0])
	}
	return recoveryOutcome{
		records:   runner.Records(),
		latencies: mon.RecoveryLatencies(),
		epochs:    mon.Epochs(),
		counters:  net.Counters(),
		elapsed:   sim.Now(),
	}, nil
}

// Table renders the crash-recovery experiment: recovery latency and
// detector overhead per (heartbeat period, ρ).
func (r *RecoveryResult) Table(title string) string {
	var b strings.Builder
	target := "application token holder"
	if r.Params.CrashCoordinator {
		target = "coordinator of the active cluster"
	}
	fmt.Fprintf(&b, "%s — token regeneration after a crash of the %s\n", title, target)
	fmt.Fprintf(&b, "N = %d application processes (+2 recovery nodes per cluster), alpha = %v, %d CS/process, %d repetitions\n",
		r.Scale.N(), r.Scale.Alpha, r.Scale.CSPerProcess, r.Scale.Repetitions)
	fmt.Fprintf(&b, "%10s %8s %14s %14s %12s %12s %10s\n",
		"period", "rho", "recover(ms)", "recover-max", "detect/s", "det-share", "epochs")
	for _, p := range r.Points {
		fmt.Fprintf(&b, "%10s %8.0f %14.3f %14.3f %12.1f %12.4f %10d\n",
			p.Period, p.Rho, p.RecoveryLatency.Mean, p.RecoveryLatency.Max,
			p.DetectorMsgsPerSec, p.DetectorShare, p.Epochs)
	}
	return b.String()
}
