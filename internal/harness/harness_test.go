package harness

import (
	"math"
	"strings"
	"testing"
	"time"

	"gridmutex/internal/core"
	"gridmutex/internal/stats"
	"gridmutex/internal/topology"
)

// testScale is QuickScale with slightly more repetitions so shape
// assertions are stable.
func testScale() Scale {
	s := QuickScale()
	s.Repetitions = 3
	return s
}

func runComposition(t *testing.T) *Result {
	t.Helper()
	res, err := Run(CompositionSystems(), testScale(), nil)
	if err != nil {
		t.Fatal(err)
	}
	return res
}

// compositionResult is shared across shape tests (the run is the expensive
// part).
var compositionResult *Result

func composition(t *testing.T) *Result {
	t.Helper()
	if compositionResult == nil {
		compositionResult = runComposition(t)
	}
	return compositionResult
}

func TestRunProducesAllCells(t *testing.T) {
	res := composition(t)
	scale := testScale()
	if want := len(CompositionSystems()) * len(scale.Rhos); len(res.Points) != want {
		t.Fatalf("%d points, want %d", len(res.Points), want)
	}
	for _, p := range res.Points {
		wantGrants := int64(scale.N() * scale.CSPerProcess * scale.Repetitions)
		if p.Grants != wantGrants {
			t.Errorf("%s rho=%g: %d grants, want %d", p.System, p.Rho, p.Grants, wantGrants)
		}
		if p.Obtaining.Mean < 0 {
			t.Errorf("%s rho=%g: negative obtaining mean", p.System, p.Rho)
		}
	}
}

// TestShapeObtainingDecreasesWithRho: figure 4(a)'s dominant trend — less
// concurrency, shorter waits — must hold for every system.
func TestShapeObtainingDecreasesWithRho(t *testing.T) {
	res := composition(t)
	scale := testScale()
	first, last := scale.Rhos[0], scale.Rhos[len(scale.Rhos)-1]
	for _, s := range res.Systems {
		lo := res.Point(s.Name, first)
		hi := res.Point(s.Name, last)
		if lo == nil || hi == nil {
			t.Fatalf("missing cells for %s", s.Name)
		}
		if hi.Obtaining.Mean >= lo.Obtaining.Mean {
			t.Errorf("%s: obtaining did not fall with rho: %.2fms at rho=%g vs %.2fms at rho=%g",
				s.Name, lo.Obtaining.Mean, first, hi.Obtaining.Mean, last)
		}
	}
}

// TestShapeCompositionReducesInterMessages: figure 4(b) — at low ρ every
// composition sends far fewer inter-cluster messages than the original
// algorithm.
func TestShapeCompositionReducesInterMessages(t *testing.T) {
	res := composition(t)
	rho := testScale().Rhos[0]
	flat := res.Point("Naimi (original)", rho)
	for _, name := range []string{"Naimi-Naimi", "Naimi-Martin", "Naimi-Suzuki"} {
		p := res.Point(name, rho)
		if p.InterMsgsPerCS >= flat.InterMsgsPerCS {
			t.Errorf("%s sends %.2f inter msgs/CS, not below original's %.2f",
				name, p.InterMsgsPerCS, flat.InterMsgsPerCS)
		}
	}
}

// TestShapeFlatNaimiInterMessagesConstant: figure 4(b) — the original
// algorithm's inter-cluster message count is independent of ρ (requests are
// routed obliviously to location).
func TestShapeFlatNaimiInterMessagesConstant(t *testing.T) {
	res := composition(t)
	min, max := 1e18, 0.0
	for _, rho := range testScale().Rhos {
		v := res.Point("Naimi (original)", rho).InterMsgsPerCS
		if v < min {
			min = v
		}
		if v > max {
			max = v
		}
	}
	if max > 2*min {
		t.Errorf("original Naimi inter msgs/CS varies too much with rho: [%.2f, %.2f]", min, max)
	}
}

// TestShapeComposedInterMessagesGrowWithRho: figure 4(b) — with less
// concurrency coordinators batch fewer local requests per inter request,
// so inter traffic per CS rises.
func TestShapeComposedInterMessagesGrowWithRho(t *testing.T) {
	res := composition(t)
	scale := testScale()
	first, last := scale.Rhos[0], scale.Rhos[len(scale.Rhos)-1]
	for _, name := range []string{"Naimi-Naimi", "Naimi-Martin", "Naimi-Suzuki"} {
		lo := res.Point(name, first).InterMsgsPerCS
		hi := res.Point(name, last).InterMsgsPerCS
		if hi <= lo {
			t.Errorf("%s: inter msgs/CS did not grow with rho (%.3f -> %.3f)", name, lo, hi)
		}
	}
}

// TestShapeHighParallelismOrdering: section 4.3 — for ρ >= 3N the
// obtaining time orders Suzuki < Naimi <= Martin as inter algorithm
// (T_req dominates: 1 hop vs log(C) hops vs C/2 hops).
func TestShapeHighParallelismOrdering(t *testing.T) {
	res := composition(t)
	scale := testScale()
	rho := scale.Rhos[len(scale.Rhos)-1]
	suzuki := res.Point("Naimi-Suzuki", rho).Obtaining.Mean
	martin := res.Point("Naimi-Martin", rho).Obtaining.Mean
	if suzuki >= martin {
		t.Errorf("at rho=%g Suzuki-inter (%.2fms) should beat Martin-inter (%.2fms)", rho, suzuki, martin)
	}
}

// TestShapeLowParallelismMartinCheapest: section 4.7 — when almost all
// clusters are requesting, Martin's inter algorithm sends the fewest
// inter-cluster messages.
func TestShapeLowParallelismMartinCheapest(t *testing.T) {
	res := composition(t)
	rho := testScale().Rhos[0]
	martin := res.Point("Naimi-Martin", rho).InterMsgsPerCS
	suzuki := res.Point("Naimi-Suzuki", rho).InterMsgsPerCS
	if martin >= suzuki {
		t.Errorf("at rho=%g Martin-inter (%.2f msgs/CS) should undercut Suzuki-inter (%.2f)",
			rho, martin, suzuki)
	}
}

// TestShapeIntraChoiceMinor: figure 6(a) — the intra algorithm barely
// moves the obtaining time (the inter algorithm dominates).
func TestShapeIntraChoiceMinor(t *testing.T) {
	res, err := Run(IntraSystems(), testScale(), nil)
	if err != nil {
		t.Fatal(err)
	}
	for _, rho := range testScale().Rhos {
		min, max := 1e18, 0.0
		for _, s := range res.Systems {
			v := res.Point(s.Name, rho).Obtaining.Mean
			if v < min {
				min = v
			}
			if v > max {
				max = v
			}
		}
		if max > 1.6*min {
			t.Errorf("rho=%g: intra choice changes obtaining time by more than 60%% (%.2f..%.2f ms)",
				rho, min, max)
		}
	}
}

// TestScalabilityCompositionScalesBetter: section 4.7 — per-CS messages of
// Suzuki-Suzuki grow much slower with cluster count than original Suzuki.
func TestScalabilityCompositionScalesBetter(t *testing.T) {
	scale := testScale()
	scale.Repetitions = 2
	clusters := []int{2, 6}
	res, err := RunScalability(ScalabilitySystems(), scale, clusters, nil)
	if err != nil {
		t.Fatal(err)
	}
	growth := func(system string) float64 {
		lo := res.Point(system, clusters[0]).TotalMsgsPerCS
		hi := res.Point(system, clusters[1]).TotalMsgsPerCS
		return hi / lo
	}
	if g, f := growth("Suzuki-Suzuki"), growth("Suzuki (original)"); g >= f {
		t.Errorf("Suzuki-Suzuki grew %.2fx, original %.2fx — composition should scale better", g, f)
	}
}

func TestTableRendering(t *testing.T) {
	res := composition(t)
	for _, m := range []Metric{ObtainingMean, ObtainingStd, ObtainingRelStd, InterMsgs, TotalMsgs, InterBytes} {
		tab := res.Table(m, "Figure test")
		if !strings.Contains(tab, "Figure test") || !strings.Contains(tab, "rho") {
			t.Errorf("table for %v lacks header:\n%s", m, tab)
		}
		for _, s := range res.Systems {
			if !strings.Contains(tab, s.Name) {
				t.Errorf("table for %v lacks system %s", m, s.Name)
			}
		}
		lines := strings.Split(strings.TrimSpace(tab), "\n")
		if want := 3 + len(testScale().Rhos); len(lines) != want {
			t.Errorf("table for %v has %d lines, want %d", m, len(lines), want)
		}
	}
}

func TestMetricString(t *testing.T) {
	seen := map[string]bool{}
	for _, m := range []Metric{ObtainingMean, ObtainingStd, ObtainingRelStd, InterMsgs, TotalMsgs, InterBytes, Metric(99)} {
		s := m.String()
		if s == "" || seen[s] {
			t.Errorf("metric %d has bad or duplicate name %q", m, s)
		}
		seen[s] = true
	}
}

func TestFigure3Table(t *testing.T) {
	tab := Figure3Table()
	for _, want := range []string{"orsay", "bordeaux", "95.282", "98.398", "0.001"} {
		if !strings.Contains(tab, want) {
			t.Errorf("figure 3 table missing %q", want)
		}
	}
}

func TestRunDeterminism(t *testing.T) {
	a := runComposition(t)
	b := runComposition(t)
	for i := range a.Points {
		pa, pb := a.Points[i], b.Points[i]
		if pa.Obtaining.Mean != pb.Obtaining.Mean || pa.InterMsgsPerCS != pb.InterMsgsPerCS {
			t.Fatalf("nondeterministic cell %s rho=%g", pa.System, pa.Rho)
		}
	}
}

func TestGridValidation(t *testing.T) {
	scale := testScale()
	scale.UseGrid5000 = true
	scale.Clusters = 4
	if _, err := Run([]System{Flat("naimi")}, scale, nil); err == nil {
		t.Fatal("grid5000 with wrong cluster count accepted")
	}
}

func TestRunProgressCallback(t *testing.T) {
	scale := testScale()
	scale.Rhos = scale.Rhos[:1]
	scale.Repetitions = 1
	n := 0
	if _, err := Run([]System{Flat("central")}, scale, func(string) { n++ }); err != nil {
		t.Fatal(err)
	}
	if n != 1 {
		t.Fatalf("progress fired %d times, want 1", n)
	}
}

func TestPaperScaleShape(t *testing.T) {
	s := PaperScale()
	if s.N() != 180 {
		t.Errorf("paper N = %d, want 180", s.N())
	}
	if s.Alpha != 10*time.Millisecond || s.CSPerProcess != 100 || !s.UseGrid5000 {
		t.Errorf("paper scale mismatch: %+v", s)
	}
	// The rho sweep must cover all three regimes of N = 180.
	var low, mid, high bool
	for _, rho := range s.Rhos {
		switch {
		case rho <= 180:
			low = true
		case rho <= 540:
			mid = true
		default:
			high = true
		}
	}
	if !low || !mid || !high {
		t.Errorf("rho sweep %v does not cover all three parallelism regimes", s.Rhos)
	}
}

func TestSystemNaming(t *testing.T) {
	if got := Composed("naimi", "martin").Name; got != "Naimi-Martin" {
		t.Errorf("Composed name = %q", got)
	}
	if got := Flat("suzuki").Name; got != "Suzuki (original)" {
		t.Errorf("Flat name = %q", got)
	}
}

// TestAdaptivePhasedExperiment: the adaptive composition must complete the
// phased workload, commit switches, and stay in the same league as the
// static compositions.
func TestAdaptivePhasedExperiment(t *testing.T) {
	scale := testScale()
	scale.CSPerProcess = 25
	scale.Phases = AdaptivePhases(scale)
	res, err := RunPhased(AdaptiveSystems(), scale, nil)
	if err != nil {
		t.Fatal(err)
	}
	var adaptivePt *Point
	worst := 0.0
	for i := range res.Points {
		p := &res.Points[i]
		if p.System == "Naimi-Adaptive" {
			adaptivePt = p
			continue
		}
		if p.Obtaining.Mean > worst {
			worst = p.Obtaining.Mean
		}
		if p.Switches != 0 {
			t.Errorf("static system %s reports %d switches", p.System, p.Switches)
		}
	}
	if adaptivePt == nil {
		t.Fatal("no adaptive point")
	}
	if adaptivePt.Switches == 0 {
		t.Error("adaptive composition never switched during the phased workload")
	}
	if adaptivePt.Obtaining.Mean > 1.5*worst {
		t.Errorf("adaptive obtaining %.2fms far above worst static %.2fms",
			adaptivePt.Obtaining.Mean, worst)
	}
	tab := res.PhasedTable("Adaptive ablation")
	if !strings.Contains(tab, "Naimi-Adaptive") || !strings.Contains(tab, "switches") {
		t.Errorf("phased table malformed:\n%s", tab)
	}
}

func TestRunPhasedRequiresPhases(t *testing.T) {
	if _, err := RunPhased(AdaptiveSystems(), testScale(), nil); err == nil {
		t.Fatal("RunPhased without phases accepted")
	}
}

func TestScalabilityTableRendering(t *testing.T) {
	scale := testScale()
	scale.Repetitions = 1
	clusters := []int{2, 3}
	res, err := RunScalability([]System{Flat("central"), Composed("central", "central")}, scale, clusters, func(string) {})
	if err != nil {
		t.Fatal(err)
	}
	tab := res.Table("Scalability")
	if !strings.Contains(tab, "clusters") || !strings.Contains(tab, "Central (original)") {
		t.Fatalf("table malformed:\n%s", tab)
	}
	if res.Point("Central (original)", 2) == nil {
		t.Fatal("missing point")
	}
	if res.Point("Central (original)", 99) != nil || res.Point("nope", 2) != nil {
		t.Fatal("phantom point")
	}
}

func TestResultPointMisses(t *testing.T) {
	res := composition(t)
	if res.Point("nope", testScale().Rhos[0]) != nil {
		t.Fatal("phantom system point")
	}
	if res.Point("Naimi-Naimi", -1) != nil {
		t.Fatal("phantom rho point")
	}
	// A missing cell renders as '-'.
	partial := &Result{Systems: res.Systems, Scale: testScale()}
	tab := partial.Table(ObtainingMean, "empty")
	if !strings.Contains(tab, "-") {
		t.Fatal("missing cells not rendered")
	}
}

func TestSortedSystemNames(t *testing.T) {
	res := composition(t)
	names := res.SortedSystemNames()
	if len(names) != len(res.Systems) {
		t.Fatalf("%d names", len(names))
	}
	for i := 1; i < len(names); i++ {
		if names[i] < names[i-1] {
			t.Fatalf("names unsorted: %v", names)
		}
	}
}

func TestTitleHelper(t *testing.T) {
	if title("") != "" {
		t.Error("empty title")
	}
	if title("Naimi") != "Naimi" {
		t.Error("already-capitalized name changed")
	}
}

func TestRunOnceErrorPaths(t *testing.T) {
	scale := testScale()
	scale.Rhos = []float64{1}
	scale.Repetitions = 1
	// Unknown flat algorithm surfaces through Run.
	if _, err := Run([]System{{Name: "x", Flat: "bogus"}}, scale, nil); err == nil {
		t.Error("unknown flat accepted")
	}
	// Unknown composed algorithm.
	if _, err := Run([]System{{Name: "x", Spec: core.Spec{Intra: "bogus", Inter: "naimi"}}}, scale, nil); err == nil {
		t.Error("unknown intra accepted")
	}
	// Unknown adaptive intra.
	if _, err := Run([]System{{Name: "x", Spec: core.Spec{Intra: "bogus", Inter: "naimi"}, AdaptiveInter: true}}, scale, nil); err == nil {
		t.Error("unknown adaptive intra accepted")
	}
	// Unknown adaptive initial inter.
	if _, err := Run([]System{{Name: "x", Spec: core.Spec{Intra: "naimi", Inter: "bogus"}, AdaptiveInter: true}}, scale, nil); err == nil {
		t.Error("unknown adaptive inter accepted")
	}
	// Invalid workload (negative rho).
	scale.Rhos = []float64{-1}
	if _, err := Run([]System{Flat("naimi")}, scale, nil); err == nil {
		t.Error("negative rho accepted")
	}
}

func TestGridDefaultsForZeroLatencies(t *testing.T) {
	scale := testScale()
	scale.LocalRTT, scale.RemoteRTT = 0, 0 // grid() fills defaults
	scale.Rhos = []float64{5}
	scale.Repetitions = 1
	if _, err := Run([]System{Flat("central")}, scale, nil); err != nil {
		t.Fatal(err)
	}
}

// TestFairnessMetric: every system's Jain index is in (0,1], all processes
// eventually progress, and the metric renders in tables.
func TestFairnessMetric(t *testing.T) {
	res := composition(t)
	for _, p := range res.Points {
		if p.Fairness <= 0 || p.Fairness > 1 {
			t.Errorf("%s rho=%g: fairness %v out of (0,1]", p.System, p.Rho, p.Fairness)
		}
		// The workload gives every process the same number of CS, so
		// per-process mean waits should be in the same ballpark: Jain
		// well above the 1/N lower bound.
		if p.Fairness < 0.5 {
			t.Errorf("%s rho=%g: fairness %v suspiciously low", p.System, p.Rho, p.Fairness)
		}
	}
	tab := res.Table(Fairness, "Fairness")
	if !strings.Contains(tab, "Jain") {
		t.Fatalf("fairness table header:\n%s", tab)
	}
}

func TestChartRendering(t *testing.T) {
	res := composition(t)
	chart := res.Chart(ObtainingMean, "Figure 4(a)")
	if chart == "" {
		t.Fatal("empty chart")
	}
	for _, want := range []string{"Figure 4(a)", "(rho)", "* = Naimi (original)", "o = Naimi-Naimi"} {
		if !strings.Contains(chart, want) {
			t.Errorf("chart missing %q:\n%s", want, chart)
		}
	}
	// Every series mark must appear in the plot area.
	for _, mark := range []string{"*", "o", "+", "x"} {
		if strings.Count(chart, mark) < len(testScale().Rhos)/2 {
			t.Errorf("mark %q underrepresented", mark)
		}
	}
	// Log scaling kicks in for wide ranges (obtaining spans >100x at
	// quick scale? if not, no [log y] — just ensure it renders for the
	// message metric too).
	c2 := res.Chart(InterMsgs, "Figure 4(b)")
	if !strings.Contains(c2, "Figure 4(b)") {
		t.Fatal("message chart failed")
	}
	// Degenerate cases.
	empty := &Result{Systems: res.Systems, Scale: Scale{}}
	if empty.Chart(ObtainingMean, "x") != "" {
		t.Fatal("chart of empty result")
	}
}

// TestChartMonotonicPlacement: in figure 4(a) the obtaining time falls
// with rho, so the first column's mark must be on a higher row (smaller
// index = nearer the top) than the last column's.
func TestChartMonotonicPlacement(t *testing.T) {
	res := composition(t)
	chart := res.Chart(ObtainingMean, "fig")
	lines := strings.Split(chart, "\n")
	var plot []string
	for _, l := range lines {
		if strings.Contains(l, "|") {
			plot = append(plot, l[strings.Index(l, "|")+1:])
		}
	}
	firstCol, lastCol := 2, (len(testScale().Rhos)-1)*chartColsPerRho+2
	rowOf := func(col int) int {
		for i, l := range plot {
			if col < len(l) && l[col] != ' ' {
				return i
			}
		}
		return -1
	}
	rf, rl := rowOf(firstCol), rowOf(lastCol)
	if rf == -1 || rl == -1 {
		t.Fatalf("marks not found in columns %d/%d:\n%s", firstCol, lastCol, chart)
	}
	if rf >= rl {
		t.Errorf("low-rho mark (row %d) should be above high-rho mark (row %d)", rf, rl)
	}
}

// TestLocalBiasReducesHandoffs: the Bertier-style local-first policy
// batches more local work per inter acquisition, so under contention the
// number of inter handoffs falls while safety and liveness hold.
func TestLocalBiasReducesHandoffs(t *testing.T) {
	scale := testScale()
	scale.Rhos = []float64{4} // saturated: every cluster always has locals
	scale.CSPerProcess = 20
	res, err := Run([]System{
		Composed("naimi", "naimi"),
		Biased("naimi", "naimi", 4),
	}, scale, nil)
	if err != nil {
		t.Fatal(err)
	}
	plain := res.Point("Naimi-Naimi", 4)
	biased := res.Point("Naimi-Naimi (bias 4)", 4)
	if biased.BiasRounds == 0 {
		t.Fatal("bias never kicked in")
	}
	if plain.BiasRounds != 0 {
		t.Fatal("plain composition reports bias rounds")
	}
	if biased.Handoffs >= plain.Handoffs {
		t.Errorf("bias did not reduce handoffs: %d vs %d", biased.Handoffs, plain.Handoffs)
	}
	// Fewer handoffs means fewer inter messages per CS.
	if biased.InterMsgsPerCS >= plain.InterMsgsPerCS {
		t.Errorf("bias did not reduce inter traffic: %.3f vs %.3f",
			biased.InterMsgsPerCS, plain.InterMsgsPerCS)
	}
}

// TestCustomMatrixScale: an operator-supplied RTT matrix drives the run.
func TestCustomMatrixScale(t *testing.T) {
	m, err := topology.ParseMatrixSpec(strings.NewReader(`
from a b
a 0.1 10
b 10 0.1
`))
	if err != nil {
		t.Fatal(err)
	}
	scale := testScale()
	scale.CustomMatrix = m
	scale.AppsPerCluster = 3
	scale.Rhos = []float64{8}
	scale.Repetitions = 1
	if scale.N() != 6 {
		t.Fatalf("N = %d, want 6 (2 clusters x 3 apps)", scale.N())
	}
	res, err := Run([]System{Flat("naimi"), Composed("naimi", "naimi")}, scale, nil)
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range res.Points {
		if p.Grants != int64(scale.N()*scale.CSPerProcess) {
			t.Errorf("%s: %d grants", p.System, p.Grants)
		}
	}
}

// TestLossyReliableRun: the harness can run experiments over a lossy
// fabric when the reliable layer is enabled.
func TestLossyReliableRun(t *testing.T) {
	scale := testScale()
	scale.Rhos = []float64{10}
	scale.Repetitions = 1
	scale.Loss = 0.1
	scale.Reliable = true
	res, err := Run([]System{Composed("naimi", "suzuki")}, scale, nil)
	if err != nil {
		t.Fatal(err)
	}
	p := &res.Points[0]
	if p.Grants != int64(scale.N()*scale.CSPerProcess) {
		t.Fatalf("grants %d", p.Grants)
	}
	// Retransmissions inflate traffic: per-CS messages exceed the
	// loss-free run's.
	clean := testScale()
	clean.Rhos = []float64{10}
	clean.Repetitions = 1
	resClean, err := Run([]System{Composed("naimi", "suzuki")}, clean, nil)
	if err != nil {
		t.Fatal(err)
	}
	if p.TotalMsgsPerCS <= resClean.Points[0].TotalMsgsPerCS {
		t.Errorf("lossy+reliable traffic %.2f not above clean %.2f",
			p.TotalMsgsPerCS, resClean.Points[0].TotalMsgsPerCS)
	}
}

// TestLocalityExperiment: with the workload skewed toward cluster 0, the
// composition serves the hot cluster's requests much faster than the
// original algorithm relative to the rest of the grid, because the inter
// token parks in the busy cluster.
func TestLocalityExperiment(t *testing.T) {
	scale := testScale()
	scale.CSPerProcess = 25
	scale.Repetitions = 2
	// High parallelism plus an 8x hot cluster: remote requests are rare,
	// so the composition parks the inter token in the busy cluster.
	res, err := RunLocality(LocalitySystems(), scale, 100, 0, 8, nil)
	if err != nil {
		t.Fatal(err)
	}
	rho := 100.0
	flat := res.Point("Naimi (original)", rho)
	comp := res.Point("Naimi-Naimi", rho)
	if len(flat.PerCluster) != 3 || len(comp.PerCluster) != 3 {
		t.Fatalf("per-cluster breakdown missing: %d/%d", len(flat.PerCluster), len(comp.PerCluster))
	}
	// The skew shows in volume: the hot cluster produced the same number
	// of grants per process but requested them in a third of the time —
	// check it got a per-cluster series at all and that the composition
	// serves it absolutely faster than the original algorithm does.
	// (Relative hot/overall ratios are NOT a reliable discriminator:
	// flat Naimi-Trehel's path reversal also adapts to locality.)
	if comp.PerCluster[0].Mean >= flat.PerCluster[0].Mean {
		t.Errorf("composition does not serve the hot cluster faster: %.2f vs %.2f ms",
			comp.PerCluster[0].Mean, flat.PerCluster[0].Mean)
	}
	tab := res.LocalityTable("Locality", 0)
	if !strings.Contains(tab, "0*") || !strings.Contains(tab, "Naimi-Naimi") {
		t.Fatalf("locality table malformed:\n%s", tab)
	}
}

// TestSketchPercentilesMatchExact pins the accuracy trade-off of the
// sketch-backed percentile path the figures run on (fig4/fig5 share the
// same Points): P50/P95/P99 of the obtaining time must stay within 1%
// relative error of exact order statistics over the raw records.
func TestSketchPercentilesMatchExact(t *testing.T) {
	scale := QuickScale()
	scale.Rhos = []float64{24}
	// Enough grants (12 procs × 50 CS × 4 reps = 2400 samples) that exact
	// order statistics are themselves stable at P99: with only a couple
	// hundred samples the gap between adjacent tail order statistics
	// exceeds the 1% budget regardless of the estimator.
	scale.CSPerProcess = 50
	scale.Repetitions = 4
	sys := Composed("naimi", "martin")
	res, err := Run([]System{sys}, scale, nil)
	if err != nil {
		t.Fatal(err)
	}
	p := res.Points[0]
	if !p.Obtaining.PercentilesComputed {
		t.Fatal("cell summary has no percentiles")
	}

	// Recompute exactly: replay each repetition's run and retain every
	// obtaining sample in repetition order.
	exact := stats.Accumulator{Retain: true}
	for rep := 0; rep < scale.Repetitions; rep++ {
		out, err := runOnce(sys, scale, 24, deriveSeed(scale.BaseSeed, 24, rep))
		if err != nil {
			t.Fatal(err)
		}
		for _, r := range out.records {
			exact.Push(float64(r.Obtaining()) / float64(time.Millisecond))
		}
	}
	if exact.N() != p.Obtaining.N {
		t.Fatalf("replay produced %d samples, cell has %d", exact.N(), p.Obtaining.N)
	}
	check := func(name string, got, want float64) {
		t.Helper()
		if want == 0 {
			t.Fatalf("%s: exact percentile is 0", name)
		}
		if rel := math.Abs(got-want) / want; rel > 0.01 {
			t.Errorf("%s: sketch %v vs exact %v (rel err %.4f, budget 0.01)", name, got, want, rel)
		}
	}
	check("P50", p.Obtaining.P50, exact.Percentile(0.50))
	check("P95", p.Obtaining.P95, exact.Percentile(0.95))
	check("P99", p.Obtaining.P99, exact.Percentile(0.99))
}
