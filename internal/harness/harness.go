// Package harness runs the paper's experiments: it assembles a deployment
// (a composition or a flat original algorithm) on the simulated grid,
// drives the parameterized workload through it for several repetitions and
// aggregates the three metrics of section 4.1 — obtaining time, number of
// inter-cluster sent messages, and the standard deviation of the obtaining
// time.
package harness

import (
	"fmt"
	"sort"
	"time"

	"gridmutex/internal/adaptive"
	"gridmutex/internal/algorithms"
	"gridmutex/internal/check"
	"gridmutex/internal/core"
	"gridmutex/internal/des"
	"gridmutex/internal/mutex"
	"gridmutex/internal/reliable"
	"gridmutex/internal/simnet"
	"gridmutex/internal/stats"
	"gridmutex/internal/topology"
	"gridmutex/internal/trace"
	"gridmutex/internal/workload"
)

// System identifies one curve: an "Intra-Inter" composition, a flat
// original algorithm, or a composition whose inter algorithm adapts at
// runtime.
type System struct {
	// Name labels the curve, e.g. "Naimi-Martin" or "Naimi (original)".
	Name string
	// Flat names the original algorithm when non-empty; Spec is then
	// ignored.
	Flat string
	// Spec is the composition to run when Flat is empty. With
	// AdaptiveInter set, Spec.Inter is only the initial algorithm.
	Spec core.Spec
	// AdaptiveInter wraps the inter level in the adaptive switching
	// protocol driven by a GapPolicy.
	AdaptiveInter bool
	// LocalBias configures the Bertier-style local-first policy: up to
	// this many extra local serving rounds before each inter handoff.
	LocalBias int
}

// Composed returns the System for an intra-inter pair, labeled in the
// paper's notation.
func Composed(intra, inter string) System {
	return System{Name: title(intra) + "-" + title(inter), Spec: core.Spec{Intra: intra, Inter: inter}}
}

// Flat returns the System for an original (non-hierarchical) algorithm.
func Flat(alg string) System {
	return System{Name: title(alg) + " (original)", Flat: alg}
}

// Adaptive returns the System for a composition whose inter level starts
// as initialInter and switches at runtime.
func Adaptive(intra, initialInter string) System {
	return System{
		Name:          title(intra) + "-Adaptive",
		Spec:          core.Spec{Intra: intra, Inter: initialInter},
		AdaptiveInter: true,
	}
}

// Biased returns a composition whose coordinators serve up to k extra
// local requests before each inter handoff (Bertier-style local bias).
func Biased(intra, inter string, k int) System {
	return System{
		Name:      fmt.Sprintf("%s-%s (bias %d)", title(intra), title(inter), k),
		Spec:      core.Spec{Intra: intra, Inter: inter},
		LocalBias: k,
	}
}

func title(s string) string {
	if s == "" {
		return s
	}
	b := []byte(s)
	if b[0] >= 'a' && b[0] <= 'z' {
		b[0] -= 'a' - 'A'
	}
	return string(b)
}

// Scale bundles the experiment dimensions so every figure can run at the
// paper's size or at a fast test size.
type Scale struct {
	// Clusters is the number of clusters; when UseGrid5000 is set it
	// must be at most 9 and the Figure 3 latencies are used.
	Clusters int
	// AppsPerCluster is the number of application processes per cluster
	// (composed deployments add one coordinator node per cluster).
	AppsPerCluster int
	// UseGrid5000 selects the measured Figure 3 latency matrix; when
	// false a uniform synthetic grid is used.
	UseGrid5000 bool
	// CustomMatrix, when non-nil, supplies an operator-measured
	// cluster RTT matrix instead (see topology.ParseMatrixSpec); it
	// overrides UseGrid5000 and Clusters.
	CustomMatrix *topology.Matrix
	// LocalRTT/RemoteRTT configure the synthetic grid when UseGrid5000
	// is false.
	LocalRTT, RemoteRTT time.Duration
	// CSPerProcess is the number of critical sections per process (100
	// in the paper).
	CSPerProcess int
	// Repetitions is how many seeded runs are averaged per point (10 in
	// the paper).
	Repetitions int
	// Rhos is the swept degree-of-parallelism axis. Ignored when Phases
	// is set.
	Rhos []float64
	// Phases, when non-empty, replaces the fixed ρ by a virtual-time
	// schedule (adaptive-composition experiments).
	Phases []workload.Phase
	// Alpha is the critical section duration (10 ms in the paper).
	Alpha time.Duration
	// BaseSeed derives every run's seed.
	BaseSeed int64
	// Jitter is the per-message latency jitter fraction.
	Jitter float64
	// Loss drops each message with this probability; set Reliable too or
	// the run will stall (the algorithms assume reliable channels).
	Loss float64
	// Reliable wraps the fabric in the sequencing/ack/retransmission
	// layer of internal/reliable.
	Reliable bool
	// HotCluster and HotSkew skew the workload toward one cluster (see
	// workload.Params); HotSkew <= 1 disables the skew.
	HotCluster int
	HotSkew    float64
	// TraceCapacity, when positive, attaches a trace ring buffer of that
	// many events to every run's fabric. The determinism regression test
	// uses it: two runs with the same seed must dump identical traces.
	TraceCapacity int
}

// N returns the total number of application processes.
func (s Scale) N() int {
	if s.CustomMatrix != nil {
		return len(s.CustomMatrix.Names) * s.AppsPerCluster
	}
	return s.Clusters * s.AppsPerCluster
}

// PaperScale reproduces the evaluation dimensions of section 4.1: 9
// Grid'5000 clusters, 20 application processes each (N = 180), 100 critical
// sections of 10 ms per process, 10 repetitions per point, ρ swept over the
// three parallelism regimes.
func PaperScale() Scale {
	return Scale{
		Clusters:       9,
		AppsPerCluster: 20,
		UseGrid5000:    true,
		CSPerProcess:   100,
		Repetitions:    10,
		Alpha:          10 * time.Millisecond,
		Rhos:           []float64{45, 90, 135, 180, 270, 360, 450, 540, 720, 1080},
		BaseSeed:       1,
		Jitter:         0.05,
	}
}

// QuickScale is a down-scaled configuration for tests and benchmarks: 3
// clusters of 4 (N = 12), preserving the three ρ regimes around the
// smaller N.
func QuickScale() Scale {
	return Scale{
		Clusters:       3,
		AppsPerCluster: 4,
		LocalRTT:       time.Millisecond,
		RemoteRTT:      20 * time.Millisecond,
		CSPerProcess:   10,
		Repetitions:    2,
		Alpha:          5 * time.Millisecond,
		Rhos:           []float64{3, 6, 12, 24, 36, 48, 72},
		BaseSeed:       1,
		Jitter:         0.05,
	}
}

// Point is the aggregate of all repetitions of one (system, ρ) cell.
type Point struct {
	System string
	Rho    float64
	// Obtaining aggregates the obtaining time in milliseconds across
	// all repetitions' grants.
	Obtaining stats.Summary
	// InterMsgsPerCS / IntraMsgsPerCS / TotalMsgsPerCS are sent-message
	// counts normalized per critical section.
	InterMsgsPerCS, IntraMsgsPerCS, TotalMsgsPerCS float64
	// InterBytesPerCS normalizes modeled wire bytes crossing cluster
	// boundaries per critical section.
	InterBytesPerCS float64
	// Grants counts critical sections entered across repetitions.
	Grants int64
	// Switches counts committed adaptive algorithm switches across
	// repetitions (adaptive systems only).
	Switches int64
	// PhaseObtaining breaks the obtaining time down by workload phase
	// (phased runs only), binned by grant instant.
	PhaseObtaining []stats.Summary
	// Fairness is Jain's fairness index over the per-process mean
	// obtaining times: 1 means every process waited equally on average.
	Fairness float64
	// Handoffs counts inter-token handoffs across repetitions; BiasRounds
	// counts extra local serving rounds inserted by the local-bias policy.
	Handoffs, BiasRounds int64
	// PerCluster breaks the obtaining time down by the requester's
	// cluster, exposing the grid's latency heterogeneity.
	PerCluster []stats.Summary
	// CIHalf is the half-width of the 95% confidence interval of the
	// mean obtaining time, computed over the per-repetition means (0
	// with fewer than 2 repetitions).
	CIHalf float64
}

// Result is a full experiment: one Point per (system, ρ).
type Result struct {
	Systems []System
	Scale   Scale
	Points  []Point // len(Systems) * len(Rhos), system-major
}

// Point returns the cell for (system name, rho), or nil.
func (r *Result) Point(system string, rho float64) *Point {
	for i := range r.Points {
		if r.Points[i].System == system && r.Points[i].Rho == rho {
			return &r.Points[i]
		}
	}
	return nil
}

// Run executes the experiment: every system at every ρ, Repetitions times
// each. Progress, when non-nil, receives a line per completed cell.
func Run(systems []System, scale Scale, progress func(string)) (*Result, error) {
	res := &Result{Systems: systems, Scale: scale}
	for _, sys := range systems {
		for _, rho := range scale.Rhos {
			p, err := runCell(sys, scale, rho)
			if err != nil {
				return nil, fmt.Errorf("harness: %s at rho=%g: %w", sys.Name, rho, err)
			}
			res.Points = append(res.Points, *p)
			if progress != nil {
				progress(fmt.Sprintf("%-22s rho=%6.0f  obtain=%8.2fms  inter/CS=%6.2f",
					sys.Name, rho, p.Obtaining.Mean, p.InterMsgsPerCS))
			}
		}
	}
	return res, nil
}

func runCell(sys System, scale Scale, rho float64) (*Point, error) {
	var obtain stats.Accumulator
	phaseObtain := make([]stats.Accumulator, len(scale.Phases))
	var perCluster []stats.Accumulator
	var repMeans []float64
	perProc := make(map[mutex.ID]*stats.Accumulator)
	var interMsgs, intraMsgs, totalMsgs, interBytes, grants, switches int64
	var handoffs, biasRounds int64
	for rep := 0; rep < scale.Repetitions; rep++ {
		seed := scale.BaseSeed + int64(rep)*1_000_003 + int64(rho*7919)
		out, err := runOnce(sys, scale, rho, seed)
		if err != nil {
			return nil, fmt.Errorf("repetition %d: %w", rep, err)
		}
		var repObtain stats.Accumulator
		repObtain.Compact = true
		for _, r := range out.records {
			ms := float64(r.Obtaining()) / float64(time.Millisecond)
			obtain.Push(ms)
			repObtain.Push(ms)
			if len(scale.Phases) > 0 {
				phaseObtain[phaseOf(scale.Phases, r.AcquiredAt)].Push(ms)
			}
			pp := perProc[r.ID]
			if pp == nil {
				pp = &stats.Accumulator{Compact: true}
				perProc[r.ID] = pp
			}
			pp.Push(ms)
			for r.Cluster >= len(perCluster) {
				perCluster = append(perCluster, stats.Accumulator{Compact: true})
			}
			perCluster[r.Cluster].Push(ms)
		}
		repMeans = append(repMeans, repObtain.Mean())
		grants += int64(len(out.records))
		interMsgs += out.counters.InterMessages
		intraMsgs += out.counters.IntraMessages
		totalMsgs += out.counters.Messages
		interBytes += out.counters.InterBytes
		switches += out.switches
		handoffs += out.handoffs
		biasRounds += out.biasRounds
	}
	p := &Point{System: sys.Name, Rho: rho, Obtaining: obtain.Summarize(), Grants: grants, Switches: switches}
	for i := range phaseObtain {
		p.PhaseObtaining = append(p.PhaseObtaining, phaseObtain[i].Summarize())
	}
	// Walk processes in ID order: float summation inside JainIndex is not
	// associative, so map order would perturb the fairness digit.
	ids := make([]mutex.ID, 0, len(perProc))
	for id := range perProc {
		ids = append(ids, id)
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	means := make([]float64, 0, len(ids))
	for _, id := range ids {
		means = append(means, perProc[id].Mean())
	}
	p.Fairness = stats.JainIndex(means)
	p.Handoffs = handoffs
	p.BiasRounds = biasRounds
	p.CIHalf = stats.CI95Half(repMeans)
	for i := range perCluster {
		p.PerCluster = append(p.PerCluster, perCluster[i].Summarize())
	}
	if grants > 0 {
		g := float64(grants)
		p.InterMsgsPerCS = float64(interMsgs) / g
		p.IntraMsgsPerCS = float64(intraMsgs) / g
		p.TotalMsgsPerCS = float64(totalMsgs) / g
		p.InterBytesPerCS = float64(interBytes) / g
	}
	return p, nil
}

// grid builds the run topology: composed deployments reserve one extra
// node per cluster for the coordinator so that the application process
// count matches flat runs.
func grid(sys System, scale Scale) (*topology.Grid, error) {
	per := scale.AppsPerCluster
	if sys.Flat == "" {
		per++
	}
	if scale.CustomMatrix != nil {
		return scale.CustomMatrix.Grid(per)
	}
	if scale.UseGrid5000 {
		if scale.Clusters != 9 {
			return nil, fmt.Errorf("grid5000 topology has 9 clusters, not %d", scale.Clusters)
		}
		return topology.Grid5000(per), nil
	}
	local, remote := scale.LocalRTT, scale.RemoteRTT
	if local <= 0 {
		local = time.Millisecond
	}
	if remote <= 0 {
		remote = 20 * time.Millisecond
	}
	return topology.Uniform(scale.Clusters, per, local, remote), nil
}

// outcome is what one simulation run yields.
type outcome struct {
	records  []workload.Record
	counters simnet.Counters
	// switches is the number of committed adaptive switches (adaptive
	// systems only).
	switches int64
	// handoffs and biasRounds aggregate coordinator stats.
	handoffs, biasRounds int64
	// traceDump is the rendered event trace (Scale.TraceCapacity > 0 only).
	traceDump string
}

func runOnce(sys System, scale Scale, rho float64, seed int64) (outcome, error) {
	g, err := grid(sys, scale)
	if err != nil {
		return outcome{}, err
	}
	sim := des.New()
	var tr *trace.Tracer
	if scale.TraceCapacity > 0 {
		tr = trace.New(sim.Now, scale.TraceCapacity)
	}
	net := simnet.New(sim, g, simnet.Options{Jitter: scale.Jitter, Seed: seed, Loss: scale.Loss, Trace: tr})
	var fabric mutex.Fabric = net
	if scale.Reliable {
		// RTO above the largest simulated round trip keeps spurious
		// retransmissions rare.
		fabric = reliable.Wrap(net, sim, reliable.Options{RTO: 4 * scale.RemoteRTT})
	}
	mon := check.NewMonitor(sim)
	runner, err := workload.NewRunner(sim, workload.Params{
		Alpha: scale.Alpha, Rho: rho, Phases: scale.Phases, Dist: workload.Exponential,
		CSPerProcess: scale.CSPerProcess, Seed: seed,
		HotCluster: scale.HotCluster, HotSkew: scale.HotSkew,
	}, mon)
	if err != nil {
		return outcome{}, err
	}
	var coordOpts []func(*core.Coordinator)
	if sys.LocalBias > 0 {
		k := sys.LocalBias
		coordOpts = append(coordOpts, func(c *core.Coordinator) { c.SetLocalBias(k) })
	}
	var d *core.Deployment
	switch {
	case sys.Flat != "":
		d, err = core.BuildFlat(fabric, g, sys.Flat, runner.Callbacks)
	case sys.AdaptiveInter:
		var intraF mutex.Factory
		intraF, err = algorithms.Factory(sys.Spec.Intra)
		if err != nil {
			return outcome{}, err
		}
		var adaptF mutex.Factory
		adaptF, err = adaptive.NewFactory(adaptive.Config{
			Initial: sys.Spec.Inter,
			NewPolicy: func() adaptive.Policy {
				return adaptive.NewGapPolicy(sim.Now, scale.Alpha)
			},
		})
		if err != nil {
			return outcome{}, err
		}
		d, err = core.BuildMultiLevelWith(fabric, g, []mutex.Factory{intraF, adaptF}, nil, runner.Callbacks, coordOpts...)
	default:
		d, err = core.BuildComposed(fabric, g, sys.Spec, runner.Callbacks, coordOpts...)
	}
	if err != nil {
		return outcome{}, err
	}
	runner.Bind(d.Apps)
	runner.Start()
	// The watchdog reports a precise stall instant long before the event
	// cap would: a waiting request is granted within fractions of the
	// interval under any load, so a full interval of global silence
	// while requests wait is a deadlock.
	mon.WatchLiveness(runner.Waiting, runner.Done, 2000*scale.Alpha)
	limit := uint64(runner.ExpectedTotal())*10_000 + 1_000_000
	if err := sim.RunCapped(limit); err != nil {
		return outcome{}, fmt.Errorf("did not drain: %w (outstanding %d)", err, runner.Outstanding())
	}
	mon.AssertQuiescent()
	if !mon.Ok() {
		return outcome{}, fmt.Errorf("property violation: %s", mon.Violations()[0])
	}
	if !runner.Done() {
		return outcome{}, fmt.Errorf("liveness: %d requests unsatisfied", runner.Outstanding())
	}
	out := outcome{records: runner.Records(), counters: net.Counters(), traceDump: tr.Dump()}
	for _, c := range d.Coordinators {
		out.handoffs += c.Stats().InterHandoffs
		out.biasRounds += c.Stats().BiasRounds
	}
	if sys.AdaptiveInter && len(d.Coordinators) > 0 {
		proc := d.Procs[d.Coordinators[0].ID()]
		if w, ok := proc.Instance(1).(*adaptive.Instance); ok {
			out.switches = w.Generation()
		}
	}
	return out, nil
}

// phaseOf returns the index of the phase in force at virtual instant t.
func phaseOf(phases []workload.Phase, t des.Time) int {
	for i := range phases {
		if i == len(phases)-1 || t < phases[i].Until {
			return i
		}
	}
	return len(phases) - 1
}
