// Package harness runs the paper's experiments: it assembles a deployment
// (a composition or a flat original algorithm) on the simulated grid,
// drives the parameterized workload through it for several repetitions and
// aggregates the three metrics of section 4.1 — obtaining time, number of
// inter-cluster sent messages, and the standard deviation of the obtaining
// time.
package harness

import (
	"fmt"
	"math"
	"time"

	"gridmutex/internal/adaptive"
	"gridmutex/internal/algorithms"
	"gridmutex/internal/check"
	"gridmutex/internal/core"
	"gridmutex/internal/des"
	"gridmutex/internal/fleet"
	"gridmutex/internal/mutex"
	"gridmutex/internal/reliable"
	"gridmutex/internal/simnet"
	"gridmutex/internal/stats"
	"gridmutex/internal/topology"
	"gridmutex/internal/trace"
	"gridmutex/internal/workload"
)

// System identifies one curve: an "Intra-Inter" composition, a flat
// original algorithm, or a composition whose inter algorithm adapts at
// runtime.
type System struct {
	// Name labels the curve, e.g. "Naimi-Martin" or "Naimi (original)".
	Name string
	// Flat names the original algorithm when non-empty; Spec is then
	// ignored.
	Flat string
	// Spec is the composition to run when Flat is empty. With
	// AdaptiveInter set, Spec.Inter is only the initial algorithm.
	Spec core.Spec
	// AdaptiveInter wraps the inter level in the adaptive switching
	// protocol driven by a GapPolicy.
	AdaptiveInter bool
	// LocalBias configures the Bertier-style local-first policy: up to
	// this many extra local serving rounds before each inter handoff.
	LocalBias int
}

// Composed returns the System for an intra-inter pair, labeled in the
// paper's notation.
func Composed(intra, inter string) System {
	return System{Name: title(intra) + "-" + title(inter), Spec: core.Spec{Intra: intra, Inter: inter}}
}

// Flat returns the System for an original (non-hierarchical) algorithm.
func Flat(alg string) System {
	return System{Name: title(alg) + " (original)", Flat: alg}
}

// Adaptive returns the System for a composition whose inter level starts
// as initialInter and switches at runtime.
func Adaptive(intra, initialInter string) System {
	return System{
		Name:          title(intra) + "-Adaptive",
		Spec:          core.Spec{Intra: intra, Inter: initialInter},
		AdaptiveInter: true,
	}
}

// Biased returns a composition whose coordinators serve up to k extra
// local requests before each inter handoff (Bertier-style local bias).
func Biased(intra, inter string, k int) System {
	return System{
		Name:      fmt.Sprintf("%s-%s (bias %d)", title(intra), title(inter), k),
		Spec:      core.Spec{Intra: intra, Inter: inter},
		LocalBias: k,
	}
}

func title(s string) string {
	if s == "" {
		return s
	}
	b := []byte(s)
	if b[0] >= 'a' && b[0] <= 'z' {
		b[0] -= 'a' - 'A'
	}
	return string(b)
}

// Scale bundles the experiment dimensions so every figure can run at the
// paper's size or at a fast test size.
type Scale struct {
	// Clusters is the number of clusters; when UseGrid5000 is set it
	// must be at most 9 and the Figure 3 latencies are used.
	Clusters int
	// AppsPerCluster is the number of application processes per cluster
	// (composed deployments add one coordinator node per cluster).
	AppsPerCluster int
	// UseGrid5000 selects the measured Figure 3 latency matrix; when
	// false a uniform synthetic grid is used.
	UseGrid5000 bool
	// CustomMatrix, when non-nil, supplies an operator-measured
	// cluster RTT matrix instead (see topology.ParseMatrixSpec); it
	// overrides UseGrid5000 and Clusters.
	CustomMatrix *topology.Matrix
	// LocalRTT/RemoteRTT configure the synthetic grid when UseGrid5000
	// is false.
	LocalRTT, RemoteRTT time.Duration
	// CSPerProcess is the number of critical sections per process (100
	// in the paper).
	CSPerProcess int
	// Repetitions is how many seeded runs are averaged per point (10 in
	// the paper).
	Repetitions int
	// Rhos is the swept degree-of-parallelism axis. Ignored when Phases
	// is set.
	Rhos []float64
	// Phases, when non-empty, replaces the fixed ρ by a virtual-time
	// schedule (adaptive-composition experiments).
	Phases []workload.Phase
	// Alpha is the critical section duration (10 ms in the paper).
	Alpha time.Duration
	// BaseSeed derives every run's seed.
	BaseSeed int64
	// Jitter is the per-message latency jitter fraction.
	Jitter float64
	// Loss drops each message with this probability; set Reliable too or
	// the run will stall (the algorithms assume reliable channels).
	Loss float64
	// Reliable wraps the fabric in the sequencing/ack/retransmission
	// layer of internal/reliable.
	Reliable bool
	// HotCluster and HotSkew skew the workload toward one cluster (see
	// workload.Params); HotSkew <= 1 disables the skew.
	HotCluster int
	HotSkew    float64
	// TraceCapacity, when positive, attaches a trace ring buffer of that
	// many events to every run's fabric. The determinism regression test
	// uses it: two runs with the same seed must dump identical traces.
	TraceCapacity int
	// Workers bounds how many repetitions run concurrently, each on its
	// own private Simulator (the goroutine fan-out lives in
	// internal/fleet; this package stays goroutine-free). 0 or 1 keeps
	// every run on the calling goroutine; negative means GOMAXPROCS.
	// Aggregates are byte-identical for every setting: per-repetition
	// partials are merged by (system, ρ, rep) index, never by completion
	// order.
	Workers int
	// LPs, when positive, runs each repetition on the conservative
	// parallel scheduler (internal/des.Windows): one logical process per
	// cluster with the topology's minimum inter-cluster one-way delay as
	// lookahead, and up to LPs worker goroutines executing the windows.
	// Outcomes are byte-identical for every positive value — LPs only
	// caps the workers; LPs=1 runs the same windowed schedule serially.
	// Ineligible configurations (adaptive inter level, reliable layer,
	// loss, or a multi-cluster topology with zero inter-cluster latency)
	// fall back to the classic single-simulator path. Note the windowed
	// scheduler draws different (equally deterministic) random streams
	// than the classic path: compare LP runs with LP runs.
	LPs int
}

// Validate rejects degenerate experiment dimensions. Without it,
// Repetitions < 1 or CSPerProcess < 1 silently yield empty-but-plausible
// points (zeroed aggregates that render like real data).
func (s Scale) Validate() error {
	if s.Repetitions < 1 {
		return fmt.Errorf("harness: Repetitions %d, need at least 1", s.Repetitions)
	}
	if s.CSPerProcess < 1 {
		return fmt.Errorf("harness: CSPerProcess %d, need at least 1", s.CSPerProcess)
	}
	if s.AppsPerCluster < 1 {
		return fmt.Errorf("harness: AppsPerCluster %d, need at least 1", s.AppsPerCluster)
	}
	if s.CustomMatrix == nil && s.Clusters < 1 {
		return fmt.Errorf("harness: Clusters %d, need at least 1", s.Clusters)
	}
	return nil
}

// N returns the total number of application processes.
func (s Scale) N() int {
	if s.CustomMatrix != nil {
		return len(s.CustomMatrix.Names) * s.AppsPerCluster
	}
	return s.Clusters * s.AppsPerCluster
}

// PaperScale reproduces the evaluation dimensions of section 4.1: 9
// Grid'5000 clusters, 20 application processes each (N = 180), 100 critical
// sections of 10 ms per process, 10 repetitions per point, ρ swept over the
// three parallelism regimes.
func PaperScale() Scale {
	return Scale{
		Clusters:       9,
		AppsPerCluster: 20,
		UseGrid5000:    true,
		CSPerProcess:   100,
		Repetitions:    10,
		Alpha:          10 * time.Millisecond,
		Rhos:           []float64{45, 90, 135, 180, 270, 360, 450, 540, 720, 1080},
		BaseSeed:       1,
		Jitter:         0.05,
	}
}

// QuickScale is a down-scaled configuration for tests and benchmarks: 3
// clusters of 4 (N = 12), preserving the three ρ regimes around the
// smaller N.
func QuickScale() Scale {
	return Scale{
		Clusters:       3,
		AppsPerCluster: 4,
		LocalRTT:       time.Millisecond,
		RemoteRTT:      20 * time.Millisecond,
		CSPerProcess:   10,
		Repetitions:    2,
		Alpha:          5 * time.Millisecond,
		Rhos:           []float64{3, 6, 12, 24, 36, 48, 72},
		BaseSeed:       1,
		Jitter:         0.05,
	}
}

// Point is the aggregate of all repetitions of one (system, ρ) cell.
type Point struct {
	System string
	Rho    float64
	// Obtaining aggregates the obtaining time in milliseconds across
	// all repetitions' grants.
	Obtaining stats.Summary
	// InterMsgsPerCS / IntraMsgsPerCS / TotalMsgsPerCS are sent-message
	// counts normalized per critical section.
	InterMsgsPerCS, IntraMsgsPerCS, TotalMsgsPerCS float64
	// InterBytesPerCS normalizes modeled wire bytes crossing cluster
	// boundaries per critical section.
	InterBytesPerCS float64
	// Grants counts critical sections entered across repetitions.
	Grants int64
	// Switches counts committed adaptive algorithm switches across
	// repetitions (adaptive systems only).
	Switches int64
	// PhaseObtaining breaks the obtaining time down by workload phase
	// (phased runs only), binned by grant instant.
	PhaseObtaining []stats.Summary
	// Fairness is Jain's fairness index over the per-process mean
	// obtaining times: 1 means every process waited equally on average.
	Fairness float64
	// Handoffs counts inter-token handoffs across repetitions; BiasRounds
	// counts extra local serving rounds inserted by the local-bias policy.
	Handoffs, BiasRounds int64
	// PerCluster breaks the obtaining time down by the requester's
	// cluster, exposing the grid's latency heterogeneity.
	PerCluster []stats.Summary
	// CIHalf is the half-width of the 95% confidence interval of the
	// mean obtaining time, computed over the per-repetition means (0
	// with fewer than 2 repetitions).
	CIHalf float64
	// Events counts DES events processed across the cell's repetitions —
	// the simulator-throughput denominator benchmark records report.
	Events int64
}

// Result is a full experiment: one Point per (system, ρ).
type Result struct {
	Systems []System
	Scale   Scale
	Points  []Point // len(Systems) * len(Rhos), system-major
}

// Point returns the cell for (system name, rho), or nil.
func (r *Result) Point(system string, rho float64) *Point {
	for i := range r.Points {
		if r.Points[i].System == system && r.Points[i].Rho == rho {
			return &r.Points[i]
		}
	}
	return nil
}

// Run executes the experiment: every system at every ρ, Repetitions times
// each, fanning repetitions out across Scale.Workers goroutines (each on
// its own Simulator). Progress, when non-nil, receives a line per
// completed cell. Results are independent of Workers.
func Run(systems []System, scale Scale, progress func(string)) (*Result, error) {
	res := &Result{Systems: systems, Scale: scale}
	cells := make([]cell, 0, len(systems)*len(scale.Rhos))
	for _, sys := range systems {
		for _, rho := range scale.Rhos {
			cells = append(cells, cell{sys: sys, scale: scale, rho: rho})
		}
	}
	var emit func(int, *Point)
	if progress != nil {
		emit = func(_ int, p *Point) {
			progress(fmt.Sprintf("%-22s rho=%6.0f  obtain=%8.2fms  inter/CS=%6.2f",
				p.System, p.Rho, p.Obtaining.Mean, p.InterMsgsPerCS))
		}
	}
	points, err := runCells(cells, scale.Workers, emit)
	if err != nil {
		return nil, err
	}
	res.Points = points
	return res, nil
}

// splitmix64 is the finalizer of Steele et al.'s SplitMix64 generator: a
// bijective avalanche mix in which every input bit affects every output
// bit.
func splitmix64(z uint64) uint64 {
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// deriveSeed mixes (BaseSeed, ρ, rep) into one run seed. ρ enters through
// its IEEE-754 bit pattern, so arbitrarily close fractional sweep values
// draw distinct streams (the previous int64(rho*7919) truncation collided
// for ρ closer than 1/7919), and each component passes through the
// splitmix64 finalizer so additive rep/ρ strides cannot alias across
// cells. The seed deliberately ignores the system under test: every
// system replays the same random streams per (ρ, rep) — common random
// numbers — which is what keeps cross-system curve differences paired.
func deriveSeed(base int64, rho float64, rep int) int64 {
	z := splitmix64(uint64(base) + 0x9e3779b97f4a7c15)
	z = splitmix64(z ^ math.Float64bits(rho))
	z = splitmix64(z ^ uint64(rep))
	return int64(z)
}

// cell is one (system, scale, ρ) experiment cell; Repetitions seeded runs
// aggregate into one Point. Each cell carries its own Scale because some
// experiments (scalability) vary dimensions per cell.
type cell struct {
	sys   System
	scale Scale
	rho   float64
}

// repPartial is the digest one repetition contributes to its cell:
// accumulators and counters, never raw records, so a parallel run buffers
// bounded state per repetition. Only obtain carries a percentile backend —
// a t-digest sketch, so even million-CS repetitions stay O(compression);
// every other accumulator stays compact.
type repPartial struct {
	obtain     stats.Accumulator
	phase      []stats.Accumulator
	perProc    []stats.Accumulator // indexed by process ID (dense)
	perCluster []stats.Accumulator
	counters   simnet.Counters
	grants     int64
	events     int64
	switches   int64
	handoffs   int64
	biasRounds int64
}

// digest folds one run's records into a repPartial. It walks records in
// grant order, which the single-threaded simulation makes deterministic.
func digest(scale Scale, out outcome) repPartial {
	p := repPartial{
		counters:   out.counters,
		grants:     int64(len(out.records)),
		events:     int64(out.events),
		switches:   out.switches,
		handoffs:   out.handoffs,
		biasRounds: out.biasRounds,
	}
	p.obtain.Sketch = true
	p.phase = make([]stats.Accumulator, len(scale.Phases))
	for _, r := range out.records {
		ms := float64(r.Obtaining()) / float64(time.Millisecond)
		p.obtain.Push(ms)
		if len(scale.Phases) > 0 {
			p.phase[phaseOf(scale.Phases, r.AcquiredAt)].Push(ms)
		}
		for int(r.ID) >= len(p.perProc) {
			p.perProc = append(p.perProc, stats.Accumulator{})
		}
		p.perProc[r.ID].Push(ms)
		for r.Cluster >= len(p.perCluster) {
			p.perCluster = append(p.perCluster, stats.Accumulator{})
		}
		p.perCluster[r.Cluster].Push(ms)
	}
	return p
}

// mergeCell folds one cell's per-repetition partials into its Point,
// always in repetition order — never completion order — which is what
// makes serial and parallel runs byte-identical.
func mergeCell(c cell, partials []repPartial) (*Point, error) {
	obtain := stats.Accumulator{Sketch: true}
	phase := make([]stats.Accumulator, len(c.scale.Phases))
	var perProc, perCluster []stats.Accumulator
	repMeans := make([]float64, 0, len(partials))
	var interMsgs, intraMsgs, totalMsgs, interBytes, grants, events, switches int64
	var handoffs, biasRounds int64
	for rep := range partials {
		part := &partials[rep]
		if part.grants == 0 {
			return nil, fmt.Errorf("repetition %d produced no grants", rep)
		}
		obtain.Merge(&part.obtain)
		for i := range part.phase {
			phase[i].Merge(&part.phase[i])
		}
		for len(perProc) < len(part.perProc) {
			perProc = append(perProc, stats.Accumulator{})
		}
		for i := range part.perProc {
			perProc[i].Merge(&part.perProc[i])
		}
		for len(perCluster) < len(part.perCluster) {
			perCluster = append(perCluster, stats.Accumulator{})
		}
		for i := range part.perCluster {
			perCluster[i].Merge(&part.perCluster[i])
		}
		repMeans = append(repMeans, part.obtain.Mean())
		grants += part.grants
		events += part.events
		interMsgs += part.counters.InterMessages
		intraMsgs += part.counters.IntraMessages
		totalMsgs += part.counters.Messages
		interBytes += part.counters.InterBytes
		switches += part.switches
		handoffs += part.handoffs
		biasRounds += part.biasRounds
	}
	p := &Point{System: c.sys.Name, Rho: c.rho, Obtaining: obtain.Summarize(),
		Grants: grants, Switches: switches, Events: events}
	for i := range phase {
		p.PhaseObtaining = append(p.PhaseObtaining, phase[i].Summarize())
	}
	// Walk processes in ID (slice index) order: float summation inside
	// JainIndex is not associative, so any other order would perturb the
	// fairness digit.
	means := make([]float64, 0, len(perProc))
	for i := range perProc {
		if perProc[i].N() > 0 {
			means = append(means, perProc[i].Mean())
		}
	}
	p.Fairness = stats.JainIndex(means)
	p.Handoffs = handoffs
	p.BiasRounds = biasRounds
	p.CIHalf = stats.CI95Half(repMeans)
	for i := range perCluster {
		p.PerCluster = append(p.PerCluster, perCluster[i].Summarize())
	}
	if grants > 0 {
		g := float64(grants)
		p.InterMsgsPerCS = float64(interMsgs) / g
		p.IntraMsgsPerCS = float64(intraMsgs) / g
		p.TotalMsgsPerCS = float64(totalMsgs) / g
		p.InterBytesPerCS = float64(interBytes) / g
	}
	return p, nil
}

// runCells executes every (cell, repetition) simulation and merges the
// partials by (cell, rep) index. workers 0 or 1 keeps everything on the
// calling goroutine (zero goroutines on the per-run path); otherwise the
// fan-out happens in internal/fleet, one job per repetition, each on a
// private Simulator. emit, when non-nil, receives each merged Point in
// cell order.
func runCells(cells []cell, workers int, emit func(i int, p *Point)) ([]Point, error) {
	for i := range cells {
		if err := cells[i].scale.Validate(); err != nil {
			return nil, err
		}
	}
	type job struct{ cell, rep int }
	var jobs []job
	for ci := range cells {
		for rep := 0; rep < cells[ci].scale.Repetitions; rep++ {
			jobs = append(jobs, job{ci, rep})
		}
	}
	runJob := func(j job) (repPartial, error) {
		c := cells[j.cell]
		out, err := runOnce(c.sys, c.scale, c.rho, deriveSeed(c.scale.BaseSeed, c.rho, j.rep))
		if err != nil {
			return repPartial{}, fmt.Errorf("harness: %s at rho=%g: repetition %d: %w",
				c.sys.Name, c.rho, j.rep, err)
		}
		return digest(c.scale, out), nil
	}
	merge := func(ci int, partials []repPartial) (*Point, error) {
		p, err := mergeCell(cells[ci], partials)
		if err != nil {
			return nil, fmt.Errorf("harness: %s at rho=%g: %w", cells[ci].sys.Name, cells[ci].rho, err)
		}
		if emit != nil {
			emit(ci, p)
		}
		return p, nil
	}

	points := make([]Point, 0, len(cells))
	if workers < 0 || workers > 1 {
		partials, err := fleet.Map(len(jobs), workers, func(i int) (repPartial, error) {
			return runJob(jobs[i])
		})
		if err != nil {
			return nil, err
		}
		next := 0
		for ci := range cells {
			reps := cells[ci].scale.Repetitions
			p, err := merge(ci, partials[next:next+reps])
			if err != nil {
				return nil, err
			}
			next += reps
			points = append(points, *p)
		}
		return points, nil
	}
	// Serial path: run and merge cell by cell so progress streams as the
	// experiment advances, exactly as before.
	ji := 0
	for ci := range cells {
		reps := cells[ci].scale.Repetitions
		partials := make([]repPartial, reps)
		for r := 0; r < reps; r++ {
			part, err := runJob(jobs[ji])
			if err != nil {
				return nil, err
			}
			partials[r] = part
			ji++
		}
		p, err := merge(ci, partials)
		if err != nil {
			return nil, err
		}
		points = append(points, *p)
	}
	return points, nil
}

// grid builds the run topology: composed deployments reserve one extra
// node per cluster for the coordinator so that the application process
// count matches flat runs.
func grid(sys System, scale Scale) (*topology.Grid, error) {
	per := scale.AppsPerCluster
	if sys.Flat == "" {
		per++
	}
	if scale.CustomMatrix != nil {
		return scale.CustomMatrix.Grid(per)
	}
	if scale.UseGrid5000 {
		if scale.Clusters != 9 {
			return nil, fmt.Errorf("grid5000 topology has 9 clusters, not %d", scale.Clusters)
		}
		return topology.Grid5000(per), nil
	}
	local, remote := scale.LocalRTT, scale.RemoteRTT
	if local <= 0 {
		local = time.Millisecond
	}
	if remote <= 0 {
		remote = 20 * time.Millisecond
	}
	return topology.Uniform(scale.Clusters, per, local, remote), nil
}

// outcome is what one simulation run yields.
type outcome struct {
	records  []workload.Record
	counters simnet.Counters
	// switches is the number of committed adaptive switches (adaptive
	// systems only).
	switches int64
	// handoffs and biasRounds aggregate coordinator stats.
	handoffs, biasRounds int64
	// events is the number of DES events the run processed.
	events uint64
	// traceDump is the rendered event trace (Scale.TraceCapacity > 0 only).
	traceDump string
}

func runOnce(sys System, scale Scale, rho float64, seed int64) (outcome, error) {
	g, err := grid(sys, scale)
	if err != nil {
		return outcome{}, err
	}
	if lpEligible(sys, scale, g) {
		return runOnceLP(sys, scale, rho, seed)
	}
	sim := des.New()
	var tr *trace.Tracer
	if scale.TraceCapacity > 0 {
		tr = trace.New(sim.Now, scale.TraceCapacity)
	}
	net := simnet.New(sim, g, simnet.Options{Jitter: scale.Jitter, Seed: seed, Loss: scale.Loss, Trace: tr})
	var fabric mutex.Fabric = net
	if scale.Reliable {
		// RTO above the largest simulated round trip keeps spurious
		// retransmissions rare.
		fabric = reliable.Wrap(net, sim, reliable.Options{RTO: 4 * scale.RemoteRTT})
	}
	mon := check.NewMonitor(sim)
	runner, err := workload.NewRunner(sim, workload.Params{
		Alpha: scale.Alpha, Rho: rho, Phases: scale.Phases, Dist: workload.Exponential,
		CSPerProcess: scale.CSPerProcess, Seed: seed,
		HotCluster: scale.HotCluster, HotSkew: scale.HotSkew,
	}, mon)
	if err != nil {
		return outcome{}, err
	}
	var coordOpts []func(*core.Coordinator)
	if sys.LocalBias > 0 {
		k := sys.LocalBias
		coordOpts = append(coordOpts, func(c *core.Coordinator) { c.SetLocalBias(k) })
	}
	var d *core.Deployment
	switch {
	case sys.Flat != "":
		d, err = core.BuildFlat(fabric, g, sys.Flat, runner.Callbacks)
	case sys.AdaptiveInter:
		var intraF mutex.Factory
		intraF, err = algorithms.Factory(sys.Spec.Intra)
		if err != nil {
			return outcome{}, err
		}
		var adaptF mutex.Factory
		adaptF, err = adaptive.NewFactory(adaptive.Config{
			Initial: sys.Spec.Inter,
			NewPolicy: func() adaptive.Policy {
				return adaptive.NewGapPolicy(sim.Now, scale.Alpha)
			},
		})
		if err != nil {
			return outcome{}, err
		}
		d, err = core.BuildMultiLevelWith(fabric, g, []mutex.Factory{intraF, adaptF}, nil, runner.Callbacks, coordOpts...)
	default:
		d, err = core.BuildComposed(fabric, g, sys.Spec, runner.Callbacks, coordOpts...)
	}
	if err != nil {
		return outcome{}, err
	}
	runner.Bind(d.Apps)
	runner.Start()
	// The watchdog reports a precise stall instant long before the event
	// cap would: a waiting request is granted within fractions of the
	// interval under any load, so a full interval of global silence
	// while requests wait is a deadlock.
	mon.WatchLiveness(runner.Waiting, runner.Done, 2000*scale.Alpha)
	limit := uint64(runner.ExpectedTotal())*10_000 + 1_000_000
	if err := sim.RunCapped(limit); err != nil {
		return outcome{}, fmt.Errorf("did not drain: %w (outstanding %d)", err, runner.Outstanding())
	}
	mon.AssertQuiescent()
	if !mon.Ok() {
		return outcome{}, fmt.Errorf("property violation: %s", mon.Violations()[0])
	}
	if !runner.Done() {
		return outcome{}, fmt.Errorf("liveness: %d requests unsatisfied", runner.Outstanding())
	}
	out := outcome{records: runner.Records(), counters: net.Counters(),
		events: sim.Processed(), traceDump: tr.Dump()}
	for _, c := range d.Coordinators {
		out.handoffs += c.Stats().InterHandoffs
		out.biasRounds += c.Stats().BiasRounds
	}
	if sys.AdaptiveInter && len(d.Coordinators) > 0 {
		proc := d.Procs[d.Coordinators[0].ID()]
		if w, ok := proc.Instance(1).(*adaptive.Instance); ok {
			out.switches = w.Generation()
		}
	}
	return out, nil
}

// phaseOf returns the index of the phase in force at virtual instant t.
func phaseOf(phases []workload.Phase, t des.Time) int {
	for i := range phases {
		if i == len(phases)-1 || t < phases[i].Until {
			return i
		}
	}
	return len(phases) - 1
}
