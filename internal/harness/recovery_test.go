package harness

import (
	"strings"
	"testing"
	"time"
)

func recoveryTestScale() Scale {
	s := QuickScale()
	s.AppsPerCluster = 3
	s.CSPerProcess = 5
	s.Repetitions = 2
	s.Rhos = []float64{6}
	return s
}

func TestRunRecoveryTokenHolder(t *testing.T) {
	params := RecoveryParams{Periods: []time.Duration{10 * time.Millisecond}}
	res, err := RunRecovery(params, recoveryTestScale(), nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Points) != 1 {
		t.Fatalf("points %d, want 1", len(res.Points))
	}
	p := res.Points[0]
	if p.Epochs == 0 {
		t.Error("no regeneration epochs despite an injected crash per repetition")
	}
	if p.RecoveryLatency.N == 0 || p.RecoveryLatency.Mean <= 0 {
		t.Errorf("recovery latency %+v, want positive samples", p.RecoveryLatency)
	}
	if p.DetectorMsgsPerSec <= 0 {
		t.Error("no detector traffic recorded")
	}
	if p.Grants == 0 {
		t.Error("no grants recorded")
	}
	tab := res.Table("test")
	if !strings.Contains(tab, "recover(ms)") || !strings.Contains(tab, "application token holder") {
		t.Errorf("table misses headers:\n%s", tab)
	}
}

func TestRunRecoveryCoordinator(t *testing.T) {
	params := RecoveryParams{
		Periods:          []time.Duration{10 * time.Millisecond},
		CrashCoordinator: true,
	}
	res, err := RunRecovery(params, recoveryTestScale(), nil)
	if err != nil {
		t.Fatal(err)
	}
	p := res.Points[0]
	if p.Epochs == 0 {
		t.Error("no regeneration epochs despite a coordinator crash per repetition")
	}
	if !strings.Contains(res.Table("test"), "coordinator of the active cluster") {
		t.Error("table misses the coordinator-target header")
	}
}

// TestRunRecoveryDeterministic: the whole sweep is a pure function of the
// base seed.
func TestRunRecoveryDeterministic(t *testing.T) {
	params := RecoveryParams{Periods: []time.Duration{10 * time.Millisecond}}
	a, err := RunRecovery(params, recoveryTestScale(), nil)
	if err != nil {
		t.Fatal(err)
	}
	b, err := RunRecovery(params, recoveryTestScale(), nil)
	if err != nil {
		t.Fatal(err)
	}
	if a.Table("x") != b.Table("x") {
		t.Fatal("same base seed produced different recovery tables")
	}
}
