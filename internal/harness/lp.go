package harness

import (
	"fmt"
	"time"

	"gridmutex/internal/core"
	"gridmutex/internal/des"
	"gridmutex/internal/mutex"
	"gridmutex/internal/simnet"
	"gridmutex/internal/topology"
	"gridmutex/internal/trace"
	"gridmutex/internal/workload"
)

// lpEligible reports whether a run can use the window-barrier scheduler.
// The LP path shards every per-run mutable structure by cluster; features
// that thread one shared object through the whole run — the adaptive
// switching policy, the reliable retransmission layer and its loss model —
// stay on the classic single-simulator path. A multi-cluster topology
// with a zero inter-cluster latency admits no lookahead, so it falls back
// to serial execution rather than deadlocking at a zero-width window.
func lpEligible(sys System, scale Scale, g *topology.Grid) bool {
	if scale.LPs < 1 || sys.AdaptiveInter || scale.Reliable || scale.Loss > 0 {
		return false
	}
	if g.NumClusters() == 1 {
		return true
	}
	lookahead, ok := g.MinInterOneWay()
	return ok && lookahead > 0
}

// lpRunnerSeed derives the workload seed of one logical process. The salt
// keeps these streams disjoint from simnet's per-LP jitter streams, which
// mix the same run seed.
func lpRunnerSeed(seed int64, lp int) int64 {
	z := splitmix64(uint64(seed) ^ 0x6c62272e07bb0142)
	return int64(splitmix64(z + 0x9e3779b97f4a7c15*uint64(lp+1)))
}

// runOnceLP is runOnce on the conservative parallel scheduler: one
// logical process per cluster, lookahead from the topology's minimum
// inter-cluster one-way delay, scale.LPs worker goroutines executing the
// lookahead windows. Every run-scoped structure — workload runner, rng
// stream, tracer, counter shard — is owned by one LP, and the cross-LP
// results merge by LP index, so the outcome is byte-identical for every
// worker count (the determinism contract the LP-equivalence CI pass
// enforces). The random streams differ from the classic path's by
// construction: LP results compare against LP results, never classic.
func runOnceLP(sys System, scale Scale, rho float64, seed int64) (outcome, error) {
	g, err := grid(sys, scale)
	if err != nil {
		return outcome{}, err
	}
	clusters := g.NumClusters()
	lookahead, _ := g.MinInterOneWay() // zero for single-cluster grids: legal with one LP
	win := des.NewWindows(clusters, lookahead, scale.LPs)

	var tracers []*trace.Tracer
	if scale.TraceCapacity > 0 {
		tracers = make([]*trace.Tracer, clusters)
		for i := range tracers {
			tracers[i] = trace.New(win.LP(i).Now, scale.TraceCapacity)
		}
	}
	net := simnet.NewLP(win, g, g.ClusterOf, simnet.Options{
		Jitter: scale.Jitter, Seed: seed, Traces: tracers,
	})

	// One workload runner per LP, each drawing idle times from its own
	// stream and recording grants locally; safety is re-derived from the
	// merged records after the parallel phase (a live monitor would be
	// shared mutable state across LPs).
	runners := make([]*workload.Runner, clusters)
	for i := range runners {
		runners[i], err = workload.NewRunner(win.LP(i), workload.Params{
			Alpha: scale.Alpha, Rho: rho, Phases: scale.Phases, Dist: workload.Exponential,
			CSPerProcess: scale.CSPerProcess, Seed: lpRunnerSeed(seed, i),
			HotCluster: scale.HotCluster, HotSkew: scale.HotSkew,
		}, nil)
		if err != nil {
			return outcome{}, err
		}
	}
	callbacks := func(id mutex.ID) mutex.Callbacks {
		// Application IDs are topology node indices, so the owning
		// runner is the node's cluster's.
		return runners[g.ClusterOf(int(id))].Callbacks(id)
	}

	var coordOpts []func(*core.Coordinator)
	if sys.LocalBias > 0 {
		k := sys.LocalBias
		coordOpts = append(coordOpts, func(c *core.Coordinator) { c.SetLocalBias(k) })
	}
	var d *core.Deployment
	if sys.Flat != "" {
		d, err = core.BuildFlat(net, g, sys.Flat, callbacks)
	} else {
		d, err = core.BuildComposed(net, g, sys.Spec, callbacks, coordOpts...)
	}
	if err != nil {
		return outcome{}, err
	}

	// Partition the built apps by cluster and hand each runner its own.
	byCluster := make([][]core.App, clusters)
	for _, a := range d.Apps {
		byCluster[a.Cluster] = append(byCluster[a.Cluster], a)
	}
	expected := 0
	for i, r := range runners {
		r.Bind(byCluster[i])
		r.Start()
		expected += r.ExpectedTotal()
	}

	// No liveness watchdog: its periodic tick is global state. A stalled
	// run either drains with ungranted requests (caught by Done below)
	// or livelocks into the event cap.
	limit := uint64(expected)*10_000 + 1_000_000
	if err := win.RunCapped(limit); err != nil {
		outstanding := 0
		for _, r := range runners {
			outstanding += r.Outstanding()
		}
		return outcome{}, fmt.Errorf("did not drain: %w (outstanding %d)", err, outstanding)
	}
	parts := make([][]workload.Record, clusters)
	for i, r := range runners {
		parts[i] = r.Records()
	}
	records := workload.MergeRecords(parts)
	mon := workload.ReplayMonitor(records, scale.Alpha)
	mon.AssertQuiescent()
	if !mon.Ok() {
		return outcome{}, fmt.Errorf("property violation: %s", mon.Violations()[0])
	}
	for _, r := range runners {
		if !r.Done() {
			return outcome{}, fmt.Errorf("liveness: %d requests unsatisfied", r.Outstanding())
		}
	}
	out := outcome{records: records, counters: net.Counters(), events: win.Processed()}
	if scale.TraceCapacity > 0 {
		out.traceDump = trace.Merge(tracers).Dump()
	}
	for _, c := range d.Coordinators {
		out.handoffs += c.Stats().InterHandoffs
		out.biasRounds += c.Stats().BiasRounds
	}
	return out, nil
}

// lookaheadFor reports the window scheduler's lookahead for a scale, for
// documentation and benchmarking output. Zero means single-cluster (one
// unbounded LP) or no usable lookahead.
func lookaheadFor(g *topology.Grid) time.Duration {
	if g.NumClusters() == 1 {
		return 0
	}
	lookahead, _ := g.MinInterOneWay()
	return lookahead
}
