package harness

import (
	"strings"
	"testing"
	"time"
)

func partitionTestScale() Scale {
	s := QuickScale()
	s.AppsPerCluster = 3
	s.CSPerProcess = 5
	s.Repetitions = 2
	s.Rhos = []float64{6}
	return s
}

func TestRunPartitionWindow(t *testing.T) {
	params := PartitionParams{Durations: []time.Duration{400 * time.Millisecond}}
	res, err := RunPartition(params, partitionTestScale(), nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Points) != 1 {
		t.Fatalf("points %d, want 1", len(res.Points))
	}
	p := res.Points[0]
	if p.DroppedPartition == 0 {
		t.Error("no messages dropped on the cut despite a partition window per repetition")
	}
	if p.Grants == 0 {
		t.Error("no grants recorded")
	}
	// Every repetition runs the full workload to completion: 9 apps x 5
	// CS x 2 repetitions.
	scale := partitionTestScale()
	want := int64(scale.N() * scale.CSPerProcess * scale.Repetitions)
	if p.Grants != want {
		t.Errorf("grants %d, want %d (full completion after the heal)", p.Grants, want)
	}
	if p.DetectorMsgsPerSec <= 0 {
		t.Error("no detector traffic recorded")
	}
	// The cut outlasts the inter detector timeout, so the cut-off side —
	// 2 of 6 inter members — must have entered the minority freeze.
	if p.MinorityFreezes == 0 {
		t.Error("no minority freezes despite a detectable cut per repetition")
	}
	tab := res.Table("test")
	if !strings.Contains(tab, "obtain(ms)") || !strings.Contains(tab, "partition window") {
		t.Errorf("table misses headers:\n%s", tab)
	}
}

// TestRunPartitionDeterministic: the whole sweep is a pure function of
// the base seed, for serial and parallel workers alike.
func TestRunPartitionDeterministic(t *testing.T) {
	params := PartitionParams{Durations: []time.Duration{400 * time.Millisecond}}
	a, err := RunPartition(params, partitionTestScale(), nil)
	if err != nil {
		t.Fatal(err)
	}
	b, err := RunPartition(params, partitionTestScale(), nil)
	if err != nil {
		t.Fatal(err)
	}
	if a.Table("x") != b.Table("x") {
		t.Fatal("same base seed produced different partition tables")
	}
}

// TestParallelPartitionEquivalence: worker fan-out must not change a
// single byte of the aggregate.
func TestParallelPartitionEquivalence(t *testing.T) {
	params := PartitionParams{Durations: []time.Duration{400 * time.Millisecond}}
	serial := partitionTestScale()
	serial.Workers = 1
	parallel := partitionTestScale()
	parallel.Workers = 4
	a, err := RunPartition(params, serial, nil)
	if err != nil {
		t.Fatal(err)
	}
	b, err := RunPartition(params, parallel, nil)
	if err != nil {
		t.Fatal(err)
	}
	if a.Table("x") != b.Table("x") {
		t.Fatal("workers=1 and workers=4 produced different partition tables")
	}
}
