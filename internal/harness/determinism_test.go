package harness

import (
	"fmt"
	"reflect"
	"strings"
	"testing"
)

// TestRunDeterministic is the determinism regression test the gridlint
// suite exists to protect: one full grid experiment, run twice with the
// same seed, must produce a byte-identical event trace and identical
// workload records. Any wall-clock read, unsorted map walk or stray
// goroutine on the simulation path shows up here as a diff.
func TestRunDeterministic(t *testing.T) {
	scale := QuickScale()
	scale.CSPerProcess = 5
	scale.Repetitions = 1
	scale.TraceCapacity = 1 << 17

	for _, sys := range []System{
		Composed("naimi", "naimi"),
		Flat("central"),
	} {
		first, err := runOnce(sys, scale, 6, scale.BaseSeed)
		if err != nil {
			t.Fatalf("%s: first run: %v", sys.Name, err)
		}
		second, err := runOnce(sys, scale, 6, scale.BaseSeed)
		if err != nil {
			t.Fatalf("%s: second run: %v", sys.Name, err)
		}
		if first.traceDump == "" {
			t.Fatalf("%s: empty trace; TraceCapacity not wired through", sys.Name)
		}
		if first.traceDump != second.traceDump {
			t.Errorf("%s: same seed produced different traces:\n%s", sys.Name, firstDiff(first.traceDump, second.traceDump))
		}
		if !reflect.DeepEqual(first.records, second.records) {
			t.Errorf("%s: same seed produced different workload records", sys.Name)
		}
		if !reflect.DeepEqual(first.counters, second.counters) {
			t.Errorf("%s: same seed produced different message counters:\n  %+v\n  %+v", sys.Name, first.counters, second.counters)
		}
	}
}

// TestRunSeedSensitivity guards the other direction: different seeds must
// actually perturb the schedule, or the determinism test is vacuous.
func TestRunSeedSensitivity(t *testing.T) {
	scale := QuickScale()
	scale.CSPerProcess = 5
	scale.Repetitions = 1
	scale.TraceCapacity = 1 << 17

	sys := Composed("naimi", "naimi")
	a, err := runOnce(sys, scale, 6, 1)
	if err != nil {
		t.Fatal(err)
	}
	b, err := runOnce(sys, scale, 6, 2)
	if err != nil {
		t.Fatal(err)
	}
	if a.traceDump == b.traceDump {
		t.Error("seeds 1 and 2 produced identical traces; seed is not reaching the run")
	}
}

// firstDiff renders the first trace line where two dumps diverge.
func firstDiff(a, b string) string {
	al, bl := strings.Split(a, "\n"), strings.Split(b, "\n")
	for i := 0; i < len(al) && i < len(bl); i++ {
		if al[i] != bl[i] {
			return fmt.Sprintf("line %d:\n  first:  %s\n  second: %s", i+1, al[i], bl[i])
		}
	}
	return fmt.Sprintf("traces differ in length: %d vs %d lines", len(al), len(bl))
}
