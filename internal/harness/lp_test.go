package harness

import (
	"reflect"
	"testing"
	"time"

	"gridmutex/internal/topology"
)

// lpScale is a small-but-real configuration for the window scheduler:
// jitter on, tracing on, several clusters.
func lpScale(lps int) Scale {
	s := QuickScale()
	s.CSPerProcess = 5
	s.Repetitions = 1
	s.TraceCapacity = 1 << 17
	s.LPs = lps
	return s
}

// requireIdentical asserts two outcomes are byte-identical: trace dump,
// records, counters and event count.
func requireIdentical(t *testing.T, label string, a, b outcome) {
	t.Helper()
	if a.traceDump != b.traceDump {
		t.Errorf("%s: different traces:\n%s", label, firstDiff(a.traceDump, b.traceDump))
	}
	if !reflect.DeepEqual(a.records, b.records) {
		t.Errorf("%s: different workload records", label)
	}
	if !reflect.DeepEqual(a.counters, b.counters) {
		t.Errorf("%s: different counters:\n  %+v\n  %+v", label, a.counters, b.counters)
	}
	if a.events != b.events {
		t.Errorf("%s: processed %d vs %d events", label, a.events, b.events)
	}
}

// TestLPWorkerIdentity is the tentpole contract: the windowed scheduler
// must produce byte-identical outcomes whether its windows execute on 1
// worker or many. Run with -race to also certify the parallel execution
// is properly synchronized.
func TestLPWorkerIdentity(t *testing.T) {
	for _, sys := range []System{
		Composed("naimi", "naimi"),
		Composed("martin", "suzuki"),
		Flat("central"),
	} {
		serial, err := runOnce(sys, lpScale(1), 6, 1)
		if err != nil {
			t.Fatalf("%s lps=1: %v", sys.Name, err)
		}
		if serial.traceDump == "" {
			t.Fatalf("%s: empty trace; LP tracing not wired", sys.Name)
		}
		if len(serial.records) == 0 {
			t.Fatalf("%s: no grants recorded", sys.Name)
		}
		for _, lps := range []int{2, 4, 8} {
			par, err := runOnce(sys, lpScale(lps), 6, 1)
			if err != nil {
				t.Fatalf("%s lps=%d: %v", sys.Name, lps, err)
			}
			requireIdentical(t, sys.Name, serial, par)
		}
	}
}

// TestLPRepeatDeterminism: the LP path is deterministic per seed, like
// the classic path.
func TestLPRepeatDeterminism(t *testing.T) {
	sys := Composed("naimi", "naimi")
	a, err := runOnce(sys, lpScale(4), 6, 7)
	if err != nil {
		t.Fatal(err)
	}
	b, err := runOnce(sys, lpScale(4), 6, 7)
	if err != nil {
		t.Fatal(err)
	}
	requireIdentical(t, sys.Name, a, b)

	c, err := runOnce(sys, lpScale(4), 6, 8)
	if err != nil {
		t.Fatal(err)
	}
	if c.traceDump == a.traceDump {
		t.Error("different seeds produced identical LP traces")
	}
}

// TestLPSingleCluster: a one-cluster topology degenerates to one LP with
// an unbounded window; the scheduler must still run to completion and
// stay worker-count invariant.
func TestLPSingleCluster(t *testing.T) {
	scale := lpScale(1)
	scale.Clusters = 1
	sys := Flat("naimi")
	serial, err := runOnce(sys, scale, 6, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(serial.records) == 0 {
		t.Fatal("no grants")
	}
	scale.LPs = 4
	par, err := runOnce(sys, scale, 6, 1)
	if err != nil {
		t.Fatal(err)
	}
	requireIdentical(t, sys.Name, serial, par)
}

// TestLPZeroInterLatencyFallsBack: a multi-cluster matrix with zero
// inter-cluster RTT admits no lookahead. The run must fall back to the
// classic serial path — identical to LPs=0 — rather than deadlock.
func TestLPZeroInterLatencyFallsBack(t *testing.T) {
	zero := &topology.Matrix{
		Names: []string{"a", "b"},
		RTT: [][]time.Duration{
			{time.Millisecond, 0},
			{0, time.Millisecond},
		},
	}
	scale := lpScale(4)
	scale.CustomMatrix = zero
	sys := Composed("naimi", "naimi")
	lp, err := runOnce(sys, scale, 6, 1)
	if err != nil {
		t.Fatal(err)
	}
	scale.LPs = 0
	classic, err := runOnce(sys, scale, 6, 1)
	if err != nil {
		t.Fatal(err)
	}
	requireIdentical(t, "zero-latency fallback", lp, classic)
}

// TestLPIneligibleFallsBack: configurations the LP scheduler cannot
// shard (reliable layer, loss, adaptive inter) run classically and still
// produce their usual results.
func TestLPIneligibleFallsBack(t *testing.T) {
	scale := lpScale(4)
	scale.Reliable = true
	sys := Composed("naimi", "naimi")
	lp, err := runOnce(sys, scale, 6, 1)
	if err != nil {
		t.Fatal(err)
	}
	scale.LPs = 0
	classic, err := runOnce(sys, scale, 6, 1)
	if err != nil {
		t.Fatal(err)
	}
	requireIdentical(t, "reliable fallback", lp, classic)
}
