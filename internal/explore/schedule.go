package explore

import (
	"encoding/json"
	"fmt"
)

// JSON serializes the schedule as a JSON list of step choices — the
// counterexample format documented in DESIGN.md ("Schedule exploration").
func (s Schedule) JSON() []byte {
	b, err := json.MarshalIndent(s, "", "  ")
	if err != nil {
		// Choices are plain data; marshalling cannot fail.
		panic(fmt.Sprintf("explore: marshalling schedule: %v", err))
	}
	return b
}

// ParseSchedule parses the JSON list produced by Schedule.JSON.
func ParseSchedule(data []byte) (Schedule, error) {
	var s Schedule
	if err := json.Unmarshal(data, &s); err != nil {
		return nil, fmt.Errorf("explore: parsing schedule: %w", err)
	}
	return s, nil
}

// JSON serializes the counterexample (schedule plus violations).
func (c *Counterexample) JSON() []byte {
	b, err := json.MarshalIndent(c, "", "  ")
	if err != nil {
		panic(fmt.Sprintf("explore: marshalling counterexample: %v", err))
	}
	return b
}

// Replay re-executes a schedule against a freshly built system exactly as
// the explorers do — stopping at the first violation, running the
// terminal-state assertions if the schedule ends with nothing enabled —
// and returns the violations it produces (empty means the schedule runs
// clean). A choice that is not applicable in the state it is reached in
// (a hand-edited or over-minimized schedule) returns an error.
func Replay(b Builder, sched Schedule, opts Options) ([]string, error) {
	o := opts.fill()
	sys, err := build(b, o)
	if err != nil {
		return nil, err
	}
	bud := o.budget()
	for _, c := range sched {
		bud.use(c)
		if err := sys.apply(c); err != nil {
			if !sys.mon.Ok() {
				// The inapplicability itself surfaced as a violation
				// (e.g. a panic out of an instance).
				return sys.mon.Violations(), nil
			}
			return nil, err
		}
		if !sys.mon.Ok() {
			return sys.mon.Violations(), nil
		}
	}
	if len(sys.enabled(o, bud)) == 0 {
		sys.checkTerminal(o)
	}
	return sys.mon.Violations(), nil
}

// Minimize greedily delta-debugs a violating schedule: it repeatedly
// tries deleting each step and keeps any deletion after which the
// schedule still produces a violation, until no single deletion survives.
// It returns the minimized schedule and the violations its replay
// produces (the byte-exact strings a later Replay of the same schedule
// yields again).
func Minimize(b Builder, sched Schedule, opts Options) (Schedule, []string, error) {
	cur := append(Schedule(nil), sched...)
	v, err := Replay(b, cur, opts)
	if err != nil {
		return nil, nil, err
	}
	if len(v) == 0 {
		return nil, nil, fmt.Errorf("explore: schedule to minimize does not violate")
	}
	improved := true
	for improved {
		improved = false
		for i := 0; i < len(cur); i++ {
			cand := append(append(Schedule(nil), cur[:i]...), cur[i+1:]...)
			cv, err := Replay(b, cand, opts)
			if err != nil || len(cv) == 0 {
				continue // deletion breaks reproduction; keep the step
			}
			cur, v = cand, cv
			improved = true
			i--
		}
	}
	return cur, v, nil
}
