package explore

import "fmt"

// Result summarizes an exploration.
type Result struct {
	// Schedules is the number of distinct schedules executed.
	Schedules int
	// Steps is the total number of choice applications across all
	// schedules (replayed prefixes included).
	Steps int64
	// Exhausted reports that the bounded choice tree was fully explored
	// (DFS only).
	Exhausted bool
	// Truncated counts schedules cut at MaxSteps before reaching a
	// terminal state.
	Truncated int
	// Pruned counts extensions cut by the state-fingerprint cache.
	Pruned int
	// States is the number of distinct state fingerprints seen.
	States int
	// Counterexample is the first violating schedule found, or nil.
	Counterexample *Counterexample
}

// Counterexample is a violating schedule plus the violations it produces.
// Replaying the schedule against the same builder reproduces the
// violations byte-for-byte.
type Counterexample struct {
	Schedule   Schedule `json:"schedule"`
	Violations []string `json:"violations"`
}

// frame is one depth of the DFS: the choices enabled there and which is
// currently taken.
type frame struct {
	choices []Choice
	cur     int
}

// ExploreDFS enumerates the bounded choice tree of the system depth-first
// and stops at the first violation. The checker is stateless: every
// schedule rebuilds the system and replays the decided prefix (executions
// are deterministic, so the replay lands in the identical state). A cache
// of state fingerprints prunes extending a state already explored with at
// least as much remaining depth; see the fingerprint method for what the
// fingerprint does and does not capture.
func ExploreDFS(b Builder, opts Options) (*Result, error) {
	o := opts.fill()
	if o.MaxSchedules <= 0 {
		o.MaxSchedules = 100000
	}
	var stack []frame
	cache := make(map[string]int) // fingerprint -> max remaining depth explored
	res := &Result{}

	for res.Schedules < o.MaxSchedules {
		sys, err := build(b, o)
		if err != nil {
			return nil, err
		}
		res.Schedules++
		bud := o.budget()
		fpKey := func() string { return bud.String() + sys.fingerprint() }

		var sched Schedule
		violated, pruned := false, false

		// Replay the decided prefix. Only the deepest frame's edge is
		// new (its cur advanced in the last backtrack), so only it can
		// surface a fresh violation; checking every step is simply
		// uniform.
		for i := range stack {
			c := stack[i].choices[stack[i].cur]
			bud.use(c)
			if err := sys.apply(c); err != nil {
				return nil, fmt.Errorf("explore: nondeterministic build: replay diverged: %w", err)
			}
			sched = append(sched, c)
			res.Steps++
			if !sys.mon.Ok() {
				violated = true
				break
			}
		}

		// The state behind the one new replayed edge gets the same
		// cache treatment extension states do.
		if !violated && len(stack) > 0 && !o.NoPrune {
			key, remaining := fpKey(), o.MaxSteps-len(sched)
			if seen, ok := cache[key]; ok && seen >= remaining {
				res.Pruned++
				pruned = true
			} else {
				cache[key] = remaining
			}
		}

		// Extend greedily: take the first enabled choice at each new
		// depth until terminal, bound, prune or violation.
		for !violated && !pruned {
			if len(sched) >= o.MaxSteps {
				res.Truncated++
				break
			}
			en := sys.enabled(o, bud)
			if len(en) == 0 {
				sys.checkTerminal(o)
				violated = !sys.mon.Ok()
				break
			}
			stack = append(stack, frame{choices: en})
			c := en[0]
			bud.use(c)
			if err := sys.apply(c); err != nil {
				return nil, fmt.Errorf("explore: enabled choice failed to apply: %w", err)
			}
			sched = append(sched, c)
			res.Steps++
			if !sys.mon.Ok() {
				violated = true
				break
			}
			if !o.NoPrune {
				key, remaining := fpKey(), o.MaxSteps-len(sched)
				if seen, ok := cache[key]; ok && seen >= remaining {
					res.Pruned++
					break
				}
				cache[key] = remaining
			}
		}

		if violated {
			res.States = len(cache)
			res.Counterexample = &Counterexample{Schedule: sched, Violations: sys.mon.Violations()}
			return res, nil
		}

		// Backtrack to the next unexplored sibling.
		advanced := false
		for len(stack) > 0 {
			last := &stack[len(stack)-1]
			if last.cur+1 < len(last.choices) {
				last.cur++
				advanced = true
				break
			}
			stack = stack[:len(stack)-1]
		}
		if !advanced {
			res.Exhausted = true
			break
		}
	}
	res.States = len(cache)
	return res, nil
}
