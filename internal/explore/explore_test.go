package explore_test

import (
	"bytes"
	"strings"
	"testing"

	"gridmutex/internal/algorithms"
	"gridmutex/internal/explore"
	"gridmutex/internal/mutex"
)

// fragileCentral is a deliberately broken central-server token algorithm:
// the server trusts every token-return message without sequencing, so a
// duplicated return mints a second token and two clients end up in the
// critical section together. It exists to prove the explorer catches the
// class of bug the fault actions model.
type fcReq struct{}

func (fcReq) Kind() string { return "fc.req" }
func (fcReq) Size() int    { return 8 }

type fcGrant struct{}

func (fcGrant) Kind() string { return "fc.grant" }
func (fcGrant) Size() int    { return 8 }

type fcRet struct{}

func (fcRet) Kind() string { return "fc.ret" }
func (fcRet) Size() int    { return 8 }

type fragileCentral struct {
	cfg    mutex.Config
	server mutex.ID
	state  mutex.State
	token  bool     // client: token held; server: token home
	busy   bool     // server only: token granted out
	out    mutex.ID // server only: whom the token is granted to
	queue  []mutex.ID
}

func newFragileCentral(cfg mutex.Config) (mutex.Instance, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	return &fragileCentral{cfg: cfg, server: cfg.Holder, token: cfg.Self == cfg.Holder, out: mutex.None}, nil
}

func (n *fragileCentral) fire() {
	n.state = mutex.InCS
	if cb := n.cfg.Callbacks.OnAcquire; cb != nil {
		n.cfg.Env.Local(cb)
	}
}

func (n *fragileCentral) serveNext() {
	if n.busy || !n.token || n.state == mutex.InCS {
		return
	}
	if n.state == mutex.Req {
		n.fire()
		return
	}
	if len(n.queue) > 0 {
		next := n.queue[0]
		n.queue = n.queue[1:]
		n.busy = true
		n.out = next
		n.cfg.Env.Send(next, fcGrant{})
	}
}

func (n *fragileCentral) Request() {
	n.state = mutex.Req
	if n.cfg.Self == n.server {
		n.serveNext()
		return
	}
	if n.token { // stale duplicate grant left a token behind: use it (the bug)
		n.fire()
		return
	}
	n.cfg.Env.Send(n.server, fcReq{})
}

func (n *fragileCentral) Release() {
	n.state = mutex.NoReq
	if n.cfg.Self == n.server {
		n.serveNext()
		return
	}
	n.token = false
	n.cfg.Env.Send(n.server, fcRet{})
}

func (n *fragileCentral) Deliver(from mutex.ID, m mutex.Message) {
	switch m.(type) {
	case fcReq:
		// Duplicate requests are deduplicated against the queue and the
		// outstanding grant (this part is robust); the returns below
		// are not.
		if from == n.out {
			return
		}
		for _, q := range n.queue {
			if q == from {
				return
			}
		}
		n.queue = append(n.queue, from)
		n.serveNext()
	case fcGrant:
		n.token = true
		if n.state == mutex.Req {
			n.fire()
		}
	case fcRet:
		// BUG: no sequencing — a duplicated return re-homes a token
		// that is still out.
		n.busy = false
		n.out = mutex.None
		n.token = true
		n.serveNext()
	}
}

func (n *fragileCentral) HasPending() bool { return len(n.queue) > 0 }
func (n *fragileCentral) HoldsToken() bool {
	if n.cfg.Self == n.server {
		return n.token && !n.busy
	}
	return n.token
}
func (n *fragileCentral) State() mutex.State { return n.state }

func fragileBuilder(n int) explore.Builder {
	return explore.FlatBuilder(newFragileCentral, n)
}

// TestDFSExhaustsCleanSystem: without faults the fragile algorithm is
// actually correct, and the 3-node/1-request space is small enough to
// exhaust completely.
func TestDFSExhaustsCleanSystem(t *testing.T) {
	res, err := explore.ExploreDFS(fragileBuilder(3), explore.Options{
		RequestsPerApp:    1,
		MaxSteps:          64,
		CheckTokenHolders: true,
		WantTokenHolders:  1,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Counterexample != nil {
		t.Fatalf("unexpected violation: %v\nschedule: %s", res.Counterexample.Violations, res.Counterexample.Schedule)
	}
	if !res.Exhausted {
		t.Fatalf("space not exhausted after %d schedules", res.Schedules)
	}
	if res.Schedules < 10 || res.States < 10 {
		t.Fatalf("implausibly small exploration: %d schedules, %d states", res.Schedules, res.States)
	}
	t.Logf("exhausted: %d schedules, %d states, %d steps, %d pruned", res.Schedules, res.States, res.Steps, res.Pruned)
}

func dupOpts() explore.Options {
	return explore.Options{
		RequestsPerApp: 2,
		MaxSteps:       48,
		MaxDuplicates:  1,
	}
}

// TestDuplicationBugCaught is the end-to-end counterexample pipeline: the
// DFS finds the duplicate-return double token, the schedule minimizes,
// and the minimized schedule replays to the same violation byte-for-byte,
// including through a JSON round trip.
func TestDuplicationBugCaught(t *testing.T) {
	b := fragileBuilder(3)
	opts := dupOpts()
	res, err := explore.ExploreDFS(b, opts)
	if err != nil {
		t.Fatal(err)
	}
	if res.Counterexample == nil {
		t.Fatalf("duplicate-delivery bug not found in %d schedules", res.Schedules)
	}
	cex := res.Counterexample
	safety := false
	for _, v := range cex.Violations {
		if strings.HasPrefix(v, "safety:") {
			safety = true
		}
	}
	if !safety {
		t.Fatalf("expected a safety violation, got %v", cex.Violations)
	}

	min, vio, err := explore.Minimize(b, cex.Schedule, opts)
	if err != nil {
		t.Fatal(err)
	}
	if len(min) > len(cex.Schedule) {
		t.Fatalf("minimization grew the schedule: %d -> %d", len(cex.Schedule), len(min))
	}
	if len(vio) == 0 {
		t.Fatal("minimized schedule reports no violations")
	}

	// Byte-for-byte replay: twice directly, once through JSON.
	replayed, err := explore.Replay(b, min, opts)
	if err != nil {
		t.Fatal(err)
	}
	want := strings.Join(vio, "\n")
	if got := strings.Join(replayed, "\n"); got != want {
		t.Fatalf("replay diverged from minimizer:\n got: %s\nwant: %s", got, want)
	}
	parsed, err := explore.ParseSchedule(min.JSON())
	if err != nil {
		t.Fatal(err)
	}
	replayed2, err := explore.Replay(b, parsed, opts)
	if err != nil {
		t.Fatal(err)
	}
	if got := strings.Join(replayed2, "\n"); got != want {
		t.Fatalf("JSON round-tripped replay diverged:\n got: %s\nwant: %s", got, want)
	}
	t.Logf("counterexample %d steps, minimized to %d: %s", len(cex.Schedule), len(min), min)
	t.Logf("violation: %s", want)
}

// TestDropDeadlockCaught: a single dropped message deadlocks the fragile
// algorithm and the terminal/bounded-liveness assertions report it.
func TestDropDeadlockCaught(t *testing.T) {
	res, err := explore.ExploreDFS(fragileBuilder(3), explore.Options{
		RequestsPerApp: 1,
		MaxSteps:       48,
		MaxDrops:       1,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Counterexample == nil {
		t.Fatalf("drop deadlock not found in %d schedules", res.Schedules)
	}
	found := false
	for _, v := range res.Counterexample.Violations {
		if strings.HasPrefix(v, "terminal:") || strings.HasPrefix(v, "liveness:") || strings.HasPrefix(v, "quiescence:") {
			found = true
		}
	}
	if !found {
		t.Fatalf("expected a terminal/liveness violation, got %v", res.Counterexample.Violations)
	}
}

// TestDFSDeterministic: the same options produce the identical
// counterexample, byte for byte.
func TestDFSDeterministic(t *testing.T) {
	b := fragileBuilder(3)
	opts := dupOpts()
	r1, err := explore.ExploreDFS(b, opts)
	if err != nil {
		t.Fatal(err)
	}
	r2, err := explore.ExploreDFS(b, opts)
	if err != nil {
		t.Fatal(err)
	}
	if r1.Counterexample == nil || r2.Counterexample == nil {
		t.Fatal("expected counterexamples from both runs")
	}
	if !bytes.Equal(r1.Counterexample.JSON(), r2.Counterexample.JSON()) {
		t.Fatalf("DFS not deterministic:\n%s\nvs\n%s", r1.Counterexample.JSON(), r2.Counterexample.JSON())
	}
	if r1.Schedules != r2.Schedules || r1.Steps != r2.Steps {
		t.Fatalf("DFS accounting not deterministic: %+v vs %+v", r1, r2)
	}
}

// TestExploreRandomFindsBug: the PCT sampler finds the duplication bug
// too, deterministically for a fixed seed.
func TestExploreRandomFindsBug(t *testing.T) {
	b := fragileBuilder(3)
	opts := dupOpts()
	opts.Seed = 42
	opts.MaxSchedules = 2000
	r1, err := explore.ExploreRandom(b, opts)
	if err != nil {
		t.Fatal(err)
	}
	if r1.Counterexample == nil {
		t.Fatalf("PCT sampler missed the bug in %d schedules", r1.Schedules)
	}
	r2, err := explore.ExploreRandom(b, opts)
	if err != nil {
		t.Fatal(err)
	}
	if r2.Counterexample == nil || !bytes.Equal(r1.Counterexample.JSON(), r2.Counterexample.JSON()) {
		t.Fatal("PCT sampler not deterministic for a fixed seed")
	}
	// A different seed still finds it (the bug is not seed-dependent),
	// though possibly after a different number of samples.
	opts.Seed = 7
	r3, err := explore.ExploreRandom(b, opts)
	if err != nil {
		t.Fatal(err)
	}
	if r3.Counterexample == nil {
		t.Fatalf("PCT sampler with seed 7 missed the bug in %d schedules", r3.Schedules)
	}
}

// TestReplayInapplicable: a schedule that references a message that is
// not in flight errors instead of silently diverging.
func TestReplayInapplicable(t *testing.T) {
	sched := explore.Schedule{{Op: explore.OpDeliver, From: 1, To: 2}}
	if _, err := explore.Replay(fragileBuilder(3), sched, explore.Options{}); err == nil {
		t.Fatal("expected an error replaying an inapplicable schedule")
	}
}

// TestScheduleJSONRoundTrip: serialization preserves every field.
func TestScheduleJSONRoundTrip(t *testing.T) {
	in := explore.Schedule{
		{Op: explore.OpRequest, Node: 2},
		{Op: explore.OpDeliver, From: 2, To: 0},
		{Op: explore.OpDuplicate, From: 0, To: 1},
		{Op: explore.OpDeliver, From: 0, To: 1, Idx: 1},
		{Op: explore.OpDrop, From: 0, To: 1},
		{Op: explore.OpRelease, Node: 1},
	}
	out, err := explore.ParseSchedule(in.JSON())
	if err != nil {
		t.Fatal(err)
	}
	if len(out) != len(in) {
		t.Fatalf("round trip changed length: %d -> %d", len(in), len(out))
	}
	for i := range in {
		if in[i] != out[i] {
			t.Fatalf("step %d changed: %+v -> %+v", i, in[i], out[i])
		}
	}
}

// crashBuilder explores a real registered algorithm under crash faults.
func crashBuilder(t *testing.T, name string, n int) explore.Builder {
	t.Helper()
	f, err := algorithms.Factory(name)
	if err != nil {
		t.Fatal(err)
	}
	return explore.FlatBuilder(f, n)
}

// TestCrashExploreSafeDFS: under a budget of one fail-stop crash at any
// schedule point, no delivery ordering of the token algorithms produces a
// safety violation — survivors may stall (the token died), but two
// processes never overlap in the critical section. Safety-only mode: the
// liveness assertions are off (see Options.MaxCrashes).
func TestCrashExploreSafeDFS(t *testing.T) {
	for _, alg := range []string{"naimi", "suzuki"} {
		alg := alg
		t.Run(alg, func(t *testing.T) {
			res, err := explore.ExploreDFS(crashBuilder(t, alg, 3), explore.Options{
				RequestsPerApp: 1,
				MaxSteps:       40,
				MaxCrashes:     1,
				MaxSchedules:   4000,
			})
			if err != nil {
				t.Fatal(err)
			}
			if res.Counterexample != nil {
				t.Fatalf("safety violation under a crash:\n%s\n%v",
					res.Counterexample.Schedule, res.Counterexample.Violations)
			}
			if res.Schedules < 50 {
				t.Fatalf("implausibly small crash exploration: %d schedules", res.Schedules)
			}
			t.Logf("%s: %d schedules, %d states, %d pruned", alg, res.Schedules, res.States, res.Pruned)
		})
	}
}

// TestCrashExploreRandom: the PCT sampler drives crash steps too.
func TestCrashExploreRandom(t *testing.T) {
	res, err := explore.ExploreRandom(crashBuilder(t, "naimi", 3), explore.Options{
		RequestsPerApp: 2,
		MaxSteps:       64,
		MaxCrashes:     1,
		MaxSchedules:   80,
		Seed:           7,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Counterexample != nil {
		t.Fatalf("safety violation under a crash:\n%s\n%v",
			res.Counterexample.Schedule, res.Counterexample.Violations)
	}
}

// TestCrashScheduleReplay: a hand-written schedule containing a crash step
// replays cleanly and deterministically, including through JSON.
func TestCrashScheduleReplay(t *testing.T) {
	b := crashBuilder(t, "naimi", 3)
	opts := explore.Options{RequestsPerApp: 1, MaxSteps: 40, MaxCrashes: 1}
	sched := explore.Schedule{
		{Op: explore.OpCrash, Node: 0}, // the initial token holder dies
		{Op: explore.OpRequest, Node: 1},
		{Op: explore.OpDeliver, From: 1, To: 0}, // request into the void
	}
	v, err := explore.Replay(b, sched, opts)
	if err != nil {
		t.Fatal(err)
	}
	if len(v) != 0 {
		t.Fatalf("clean crash schedule reported violations: %v", v)
	}
	parsed, err := explore.ParseSchedule(sched.JSON())
	if err != nil {
		t.Fatal(err)
	}
	v2, err := explore.Replay(b, parsed, opts)
	if err != nil {
		t.Fatal(err)
	}
	if len(v2) != 0 {
		t.Fatalf("JSON round-tripped crash schedule reported violations: %v", v2)
	}
	// A second crash exceeds the budget's enabled set but Replay still
	// applies it mechanically; crashing the same node twice is an error.
	if _, err := explore.Replay(b, explore.Schedule{
		{Op: explore.OpCrash, Node: 0},
		{Op: explore.OpCrash, Node: 0},
	}, opts); err == nil {
		t.Fatal("double crash of one node replayed without error")
	}
}

// TestRestartExploreSafeDFS: under a budget of one crash and one amnesiac
// restart, no ordering of crash, restart, deliveries, and requests
// produces a safety violation. The rebuilt instance never believes it
// holds the token (FlatBuilder points its Holder at another member), so a
// claim that died with the crash is never resurrected — the restarted
// process may stall waiting on a dead token, but two processes never
// overlap in the critical section. Safety-only mode, as with crashes.
func TestRestartExploreSafeDFS(t *testing.T) {
	for _, alg := range []string{"naimi", "suzuki"} {
		alg := alg
		t.Run(alg, func(t *testing.T) {
			res, err := explore.ExploreDFS(crashBuilder(t, alg, 3), explore.Options{
				RequestsPerApp: 1,
				MaxSteps:       32,
				MaxCrashes:     1,
				MaxRestarts:    1,
				MaxSchedules:   4000,
			})
			if err != nil {
				t.Fatal(err)
			}
			if res.Counterexample != nil {
				t.Fatalf("safety violation under crash+restart:\n%s\n%v",
					res.Counterexample.Schedule, res.Counterexample.Violations)
			}
			if res.Schedules < 50 {
				t.Fatalf("implausibly small restart exploration: %d schedules", res.Schedules)
			}
			t.Logf("%s: %d schedules, %d states, %d pruned", alg, res.Schedules, res.States, res.Pruned)
		})
	}
}

// TestPartitionExploreSafeDFS: isolating any single node behind a cut —
// every message crossing it dropped at delivery time — and healing it at
// any schedule point never produces a safety violation. Requests on the
// majority side may stall while the token holder is cut off; the heal
// step lets in-flight traffic resume.
func TestPartitionExploreSafeDFS(t *testing.T) {
	for _, alg := range []string{"naimi", "suzuki"} {
		alg := alg
		t.Run(alg, func(t *testing.T) {
			res, err := explore.ExploreDFS(crashBuilder(t, alg, 3), explore.Options{
				RequestsPerApp: 1,
				MaxSteps:       32,
				MaxPartitions:  1,
				MaxSchedules:   4000,
			})
			if err != nil {
				t.Fatal(err)
			}
			if res.Counterexample != nil {
				t.Fatalf("safety violation under a partition:\n%s\n%v",
					res.Counterexample.Schedule, res.Counterexample.Violations)
			}
			if res.Schedules < 50 {
				t.Fatalf("implausibly small partition exploration: %d schedules", res.Schedules)
			}
			t.Logf("%s: %d schedules, %d states, %d pruned", alg, res.Schedules, res.States, res.Pruned)
		})
	}
}

// TestFaultExploreRandom: the PCT sampler drives restart, partition, and
// heal steps alongside crashes, deterministically for a fixed seed.
func TestFaultExploreRandom(t *testing.T) {
	res, err := explore.ExploreRandom(crashBuilder(t, "suzuki", 3), explore.Options{
		RequestsPerApp: 2,
		MaxSteps:       64,
		MaxCrashes:     1,
		MaxRestarts:    1,
		MaxPartitions:  1,
		MaxSchedules:   60,
		Seed:           11,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Counterexample != nil {
		t.Fatalf("safety violation under crash/restart/partition:\n%s\n%v",
			res.Counterexample.Schedule, res.Counterexample.Violations)
	}
}

// TestRestartScheduleReplay: a hand-written schedule exercising every new
// fault op replays cleanly, survives a JSON round trip, and the
// inapplicable variants error instead of silently diverging.
func TestRestartScheduleReplay(t *testing.T) {
	b := crashBuilder(t, "naimi", 3)
	opts := explore.Options{RequestsPerApp: 1, MaxSteps: 40, MaxCrashes: 1, MaxRestarts: 1, MaxPartitions: 1}
	sched := explore.Schedule{
		{Op: explore.OpCrash, Node: 0}, // the initial holder dies with its token
		{Op: explore.OpRestart, Node: 0},
		// The resync epoch designated node 1 (lowest survivor) holder;
		// the revived node 0 re-requests across a cut-off node 2.
		{Op: explore.OpPartition, Node: 2},
		{Op: explore.OpRequest, Node: 0},
		{Op: explore.OpDeliver, From: 0, To: 1},
		{Op: explore.OpHeal},
	}
	v, err := explore.Replay(b, sched, opts)
	if err != nil {
		t.Fatal(err)
	}
	if len(v) != 0 {
		t.Fatalf("clean restart schedule reported violations: %v", v)
	}
	parsed, err := explore.ParseSchedule(sched.JSON())
	if err != nil {
		t.Fatal(err)
	}
	v2, err := explore.Replay(b, parsed, opts)
	if err != nil {
		t.Fatal(err)
	}
	if len(v2) != 0 {
		t.Fatalf("JSON round-tripped restart schedule reported violations: %v", v2)
	}
	// Restarting a node that never crashed is an error.
	if _, err := explore.Replay(b, explore.Schedule{
		{Op: explore.OpRestart, Node: 0},
	}, opts); err == nil {
		t.Fatal("restart of a live node replayed without error")
	}
	// A second concurrent cut and a heal without a cut are errors.
	if _, err := explore.Replay(b, explore.Schedule{
		{Op: explore.OpPartition, Node: 0},
		{Op: explore.OpPartition, Node: 1},
	}, opts); err == nil {
		t.Fatal("overlapping partition cuts replayed without error")
	}
	if _, err := explore.Replay(b, explore.Schedule{
		{Op: explore.OpHeal},
	}, opts); err == nil {
		t.Fatal("heal without an active cut replayed without error")
	}
}
