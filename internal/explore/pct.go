package explore

import (
	"fmt"
	"math"
	"math/rand"
)

// ExploreRandom samples the schedule space with PCT-style randomized
// priorities (Burckhardt et al.'s probabilistic concurrency testing,
// adapted from threads to schedule actors): every actor — an ordered
// message link or an application node — draws a random priority at first
// sight, each step runs the highest-priority enabled choice, and at a few
// random change points the just-scheduled actor's priority drops below
// everyone else's. This concentrates probability on schedules with few
// preemptions, where ordering bugs overwhelmingly live, while staying
// fully deterministic for a given Seed.
//
// Like ExploreDFS it stops at the first violation; MaxSchedules bounds the
// number of samples (default 200).
func ExploreRandom(b Builder, opts Options) (*Result, error) {
	o := opts.fill()
	if o.MaxSchedules <= 0 {
		o.MaxSchedules = 200
	}
	res := &Result{}
	for i := 0; i < o.MaxSchedules; i++ {
		rng := rand.New(rand.NewSource(o.Seed + int64(i)))
		sys, err := build(b, o)
		if err != nil {
			return nil, err
		}
		res.Schedules++
		bud := o.budget()

		// Priority change points: distinct schedule depths, drawn once
		// per schedule.
		ncp := o.PriorityChangePoints
		if max := o.MaxSteps - 1; ncp > max {
			ncp = max
		}
		cps := make(map[int]bool, ncp)
		for len(cps) < ncp {
			cps[1+rng.Intn(o.MaxSteps)] = true
		}

		prio := make(map[string]float64)
		demoted := 0.0 // strictly decreasing floor for demoted actors
		// Actors: each node (its requests and releases), each link's
		// deliveries, and each link's fault actions separately — a fault
		// sharing its link's priority would always lose the in-order tie
		// to the delivery and never fire.
		actorKey := func(c Choice) string {
			switch c.Op {
			case OpRequest, OpRelease:
				return fmt.Sprintf("n%d", c.Node)
			case OpCrash, OpRestart, OpPartition:
				// Fault steps are their own actor per node: sharing the
				// node's priority would schedule the fault instead of
				// every request it precedes in the enabled order.
				return fmt.Sprintf("%s%d", c.Op, c.Node)
			case OpHeal:
				return "heal"
			case OpDeliver:
				return fmt.Sprintf("l%d>%d", c.From, c.To)
			default:
				return fmt.Sprintf("%s%d>%d", c.Op, c.From, c.To)
			}
		}

		var sched Schedule
		violated := false
		for len(sched) < o.MaxSteps {
			en := sys.enabled(o, bud)
			if len(en) == 0 {
				sys.checkTerminal(o)
				violated = !sys.mon.Ok()
				break
			}
			best, bestP := 0, math.Inf(-1)
			for j, c := range en {
				k := actorKey(c)
				p, ok := prio[k]
				if !ok {
					p = rng.Float64()
					prio[k] = p
				}
				if p > bestP {
					bestP, best = p, j
				}
			}
			c := en[best]
			bud.use(c)
			if err := sys.apply(c); err != nil {
				return nil, fmt.Errorf("explore: enabled choice failed to apply: %w", err)
			}
			sched = append(sched, c)
			res.Steps++
			if !sys.mon.Ok() {
				violated = true
				break
			}
			if cps[len(sched)] {
				demoted--
				prio[actorKey(c)] = demoted
			}
		}
		if violated {
			res.Counterexample = &Counterexample{Schedule: sched, Violations: sys.mon.Violations()}
			return res, nil
		}
		if len(sched) >= o.MaxSteps {
			res.Truncated++
		}
	}
	return res, nil
}
